package hipa

import "hipa/internal/harness"

// ReproConfig parameterises a paper-reproduction run: the scale divisor
// (applied to both datasets and machine capacities), the iteration count,
// and an optional dataset subset.
type ReproConfig = harness.Config

// NewReproConfig returns the default reproduction configuration (divisor
// 256, 20 iterations, full catalog).
func NewReproConfig() *ReproConfig { return harness.NewConfig() }

// ReproTable is a rendered experiment result; call Render(w) to print it.
type ReproTable = harness.Table

// ReproTable1 regenerates Table 1 (graph descriptions + intra/inter edges
// per partition).
func ReproTable1(cfg *ReproConfig) ([]harness.Table1Row, *ReproTable, error) {
	return harness.Table1(cfg)
}

// ReproTable2 regenerates Table 2 (execution time of the five engines on
// the six graphs).
func ReproTable2(cfg *ReproConfig) ([]harness.Table2Row, *ReproTable, error) {
	return harness.Table2(cfg)
}

// ReproOverhead regenerates the §4.2 preprocessing-overhead analysis.
func ReproOverhead(cfg *ReproConfig) ([]harness.OverheadRow, *ReproTable, error) {
	return harness.Overhead(cfg)
}

// ReproFig5 regenerates Fig. 5 (memory accesses per edge, local/remote).
func ReproFig5(cfg *ReproConfig) ([]harness.Fig5Row, *ReproTable, error) {
	return harness.Fig5(cfg)
}

// ReproFig6 regenerates Fig. 6 (scalability over thread counts).
func ReproFig6(cfg *ReproConfig) ([]harness.Fig6Series, *ReproTable, error) {
	return harness.Fig6(cfg)
}

// ReproFig7 regenerates Fig. 7 (partition-size sensitivity: time + LLC).
func ReproFig7(cfg *ReproConfig) ([]harness.Fig7Point, *ReproTable, error) {
	return harness.Fig7(cfg)
}

// ReproTable3 regenerates Table 3 (partition size on Haswell vs Skylake).
func ReproTable3(cfg *ReproConfig) ([]harness.Table3Row, *ReproTable, error) {
	return harness.Table3(cfg)
}

// ReproSingleNode regenerates the §4.5 single-node experiment.
func ReproSingleNode(cfg *ReproConfig) (*harness.SingleNodeResult, *ReproTable, error) {
	return harness.SingleNode(cfg)
}

// ReproAblations runs HiPa's design ablations (compression, edge balancing,
// thread-data pinning) on the named dataset.
func ReproAblations(cfg *ReproConfig, dataset string) ([]harness.AblationResult, *ReproTable, error) {
	return harness.Ablations(cfg, dataset)
}

// ReproNodeScaling projects HiPa onto 1/2/4/8-node machines (the paper's
// §4.5 expectation).
func ReproNodeScaling(cfg *ReproConfig, dataset string) ([]harness.NodeScalingRow, *ReproTable, error) {
	return harness.NodeScaling(cfg, dataset)
}
