// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact, reporting the headline metrics), plus
// ablation benches for the design choices in DESIGN.md §4 and
// micro-benchmarks of the substrates.
//
// The scale divisor defaults to 1024 (fast); set HIPA_BENCH_DIVISOR to run
// closer to paper scale, e.g.:
//
//	HIPA_BENCH_DIVISOR=256 go test -bench=. -benchmem
package hipa

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"hipa/internal/cachesim"
	"hipa/internal/engines/common"
	"hipa/internal/harness"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/partition"
)

func benchDivisor() int {
	if s := os.Getenv("HIPA_BENCH_DIVISOR"); s != "" {
		if d, err := strconv.Atoi(s); err == nil && d >= 1 {
			return d
		}
	}
	return 1024
}

var (
	benchCfgOnce sync.Once
	benchCfgVal  *harness.Config
)

// benchCfg returns a shared harness config so dataset generation is done
// once per bench binary run.
func benchCfg() *harness.Config {
	benchCfgOnce.Do(func() {
		benchCfgVal = harness.NewConfig()
		benchCfgVal.Divisor = benchDivisor()
		benchCfgVal.Iterations = 20
	})
	return benchCfgVal
}

// BenchmarkTable1 regenerates Table 1 (graph statistics, intra/inter edges
// per partition).
func BenchmarkTable1(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var inter float64
			for _, r := range rows {
				inter += r.InterPerPartition
			}
			b.ReportMetric(inter/float64(len(rows)), "inter-edges/partition")
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (execution time of the five engines
// on the six graphs) and reports HiPa's average speedup over the best
// alternative — the paper's headline 1.11-1.45x.
func BenchmarkTable2(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var speedup float64
			for _, r := range rows {
				_, best := r.Best("HiPa")
				speedup += best / r.Seconds["HiPa"]
			}
			b.ReportMetric(speedup/float64(len(rows)), "hipa-speedup-vs-best")
		}
	}
}

// BenchmarkOverhead regenerates the §4.2 preprocessing-overhead analysis.
func BenchmarkOverhead(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.Overhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var am float64
			for _, r := range rows {
				am += r.AmortizeIters
			}
			b.ReportMetric(am/float64(len(rows)), "amortize-iters")
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5 (memory accesses per edge) and reports
// the remote-access reduction of HiPa over the best oblivious baseline.
func BenchmarkFig5(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var hipaRemote, pprRemote float64
			for _, r := range rows {
				hipaRemote += r.RemoteMApE["HiPa"]
				pprRemote += r.RemoteMApE["p-PR"]
			}
			b.ReportMetric(pprRemote/hipaRemote, "remote-reduction-vs-p-PR")
			b.ReportMetric(hipaRemote/float64(len(rows)), "hipa-remote-MApE")
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6 (scalability) and reports the oblivious
// engines' degradation at 40 threads.
func BenchmarkFig6(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		series, _, err := harness.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				if s.Engine == "p-PR" || s.Engine == "GPOP" {
					best := s.SecondsAt[0]
					for _, v := range s.SecondsAt {
						if v < best {
							best = v
						}
					}
					b.ReportMetric(s.SecondsAt[len(s.SecondsAt)-1]/best, s.Engine+"-degradation-at-40")
				}
			}
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7 (partition-size sensitivity) and reports
// HiPa's best partition size (paper: 256KB on Skylake).
func BenchmarkFig7(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		points, _, err := harness.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			best, bestSec := 0, 0.0
			for _, p := range points {
				if p.Engine == "HiPa" && (best == 0 || p.Seconds < bestSec) {
					best, bestSec = p.PaperBytes, p.Seconds
				}
			}
			b.ReportMetric(float64(best)/1024, "hipa-best-partition-KB")
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (Haswell vs Skylake partition-size
// sensitivity).
func BenchmarkTable3(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Method == "HiPa" {
					b.ReportMetric(float64(r.BestSize())/1024, r.Microarch+"-best-KB")
				}
			}
		}
	}
}

// BenchmarkSingleNode regenerates the §4.5 single-node experiment.
func BenchmarkSingleNode(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		r, _, err := harness.SingleNode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.OneNodeSeconds/r.TwoNodeSeconds, "1node-vs-2node")
		}
	}
}

// --- Ablation benches (DESIGN.md §4) ---

func benchAblation(b *testing.B, mut func(*Options)) {
	cfg := benchCfg()
	g, err := cfg.Graph("journal")
	if err != nil {
		b.Fatal(err)
	}
	m, err := cfg.Machine("skylake")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		o := cfg.PaperOptions("hipa", m)
		mut(&o)
		res, err := HiPa.Run(g, o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Model.EstimatedSeconds, "modelled-s")
			b.ReportMetric(res.Model.MApE, "bytes/edge")
			b.ReportMetric(100*res.Model.RemoteFraction, "remote-%")
		}
	}
}

// BenchmarkAblationBaseline is full HiPa (reference point for the ablations).
func BenchmarkAblationBaseline(b *testing.B) { benchAblation(b, func(o *Options) {}) }

// BenchmarkAblationNoCompression disables inter-edge compression (§3.4).
func BenchmarkAblationNoCompression(b *testing.B) {
	benchAblation(b, func(o *Options) { o.NoCompress = true })
}

// BenchmarkAblationVertexBalanced replaces edge-balanced NUMA partitioning
// with the naive vertex split the paper rejects (§3.1).
func BenchmarkAblationVertexBalanced(b *testing.B) {
	benchAblation(b, func(o *Options) { o.VertexBalanced = true })
}

// BenchmarkAblationFCFS replaces thread-data pinning with first-come-first-
// serve partition claiming (§3.2-3.3).
func BenchmarkAblationFCFS(b *testing.B) {
	benchAblation(b, func(o *Options) { o.FCFS = true })
}

// --- Real-execution benches (wall-clock of the parallel Go engines) ---

// BenchmarkEngineWallClock measures the real parallel execution of each
// engine on the journal analog (5 iterations per op).
func BenchmarkEngineWallClock(b *testing.B) {
	cfg := benchCfg()
	g, err := cfg.Graph("journal")
	if err != nil {
		b.Fatal(err)
	}
	g.BuildIn()
	m, err := cfg.Machine("skylake")
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range Engines() {
		b.Run(e.Name(), func(b *testing.B) {
			o := cfg.PaperOptions(e.Name(), m)
			o.Iterations = 5
			b.SetBytes(g.NumEdges() * 5 * 4)
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(g, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Prepare-pipeline benches ---

// BenchmarkPrepare measures HiPa's full Prepare pipeline — partition
// hierarchy, compressed message layout, inverse degrees (the fingerprint is
// memoized on the shared graph after the first op) — on the largest catalog
// analog, serial vs 8 workers. Artifacts are bit-identical across settings
// (tested in enginetest), so the ratio is pure build speedup.
func BenchmarkPrepare(b *testing.B) {
	cfg := benchCfg()
	g, err := cfg.Graph("mpi")
	if err != nil {
		b.Fatal(err)
	}
	m, err := cfg.Machine("skylake")
	if err != nil {
		b.Fatal(err)
	}
	for _, pc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"workers8", 8}} {
		b.Run(pc.name, func(b *testing.B) {
			o := cfg.PaperOptions("hipa", m)
			o.PrepCache = nil // every op pays the cold build
			o.PrepParallelism = pc.workers
			b.SetBytes(g.NumEdges() * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := HiPa.Prepare(g, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrepareLayout isolates the layout stage of the pipeline at serial
// vs 8-worker parallelism.
func BenchmarkPrepareLayout(b *testing.B) {
	cfg := benchCfg()
	g, err := cfg.Graph("mpi")
	if err != nil {
		b.Fatal(err)
	}
	h, err := partition.Build(g, partition.Config{PartitionBytes: cfg.PartBytes(256 << 10), BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 20})
	if err != nil {
		b.Fatal(err)
	}
	for _, pc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"workers8", 8}} {
		b.Run(pc.name, func(b *testing.B) {
			b.SetBytes(g.NumEdges() * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := layout.BuildWorkers(g, h, true, pc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate micro-benches ---

// BenchmarkPartitionBuild measures hierarchical partitioning throughput.
func BenchmarkPartitionBuild(b *testing.B) {
	cfg := benchCfg()
	g, err := cfg.Graph("journal")
	if err != nil {
		b.Fatal(err)
	}
	pc := partition.Config{PartitionBytes: cfg.PartBytes(256 << 10), BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 20}
	b.SetBytes(g.NumEdges() * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Build(g, pc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLayoutBuild measures compressed-layout construction throughput.
func BenchmarkLayoutBuild(b *testing.B) {
	cfg := benchCfg()
	g, err := cfg.Graph("journal")
	if err != nil {
		b.Fatal(err)
	}
	h, err := partition.Build(g, partition.Config{PartitionBytes: cfg.PartBytes(256 << 10), BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 20})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(g.NumEdges() * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.Build(g, h, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScatterGatherIteration measures one full scatter-gather PageRank
// iteration of the shared execution core.
func BenchmarkScatterGatherIteration(b *testing.B) {
	cfg := benchCfg()
	g, err := cfg.Graph("journal")
	if err != nil {
		b.Fatal(err)
	}
	h, err := partition.Build(g, partition.Config{PartitionBytes: cfg.PartBytes(256 << 10), BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 4})
	if err != nil {
		b.Fatal(err)
	}
	lay, err := layout.Build(g, h, true)
	if err != nil {
		b.Fatal(err)
	}
	state := common.NewSGState(g, h, lay, 0.85, 8)
	b.SetBytes(g.NumEdges() * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		common.RunSupersteps(common.SuperstepConfig{Threads: 8, Iterations: 1}, common.FCFSKernels(state))
	}
}

// BenchmarkGenerate measures catalog graph generation.
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := Generate("journal", benchDivisor())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(g.NumEdges() * 8)
	}
}

// BenchmarkCacheSim measures the exact cache simulator's access throughput.
func BenchmarkCacheSim(b *testing.B) {
	s := cachesim.NewSystem(machine.SkylakeSilver4210())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(i%40, uint64(i*64)%(1<<26))
	}
}

// BenchmarkAlgorithms measures the future-work kernels.
func BenchmarkAlgorithms(b *testing.B) {
	cfg := benchCfg()
	g, err := cfg.Graph("journal")
	if err != nil {
		b.Fatal(err)
	}
	ac := AlgoConfig{Threads: 8, PartitionBytes: cfg.PartBytes(256 << 10)}
	x := make([]float32, g.NumVertices())
	for i := range x {
		x[i] = 1
	}
	b.Run("SpMV", func(b *testing.B) {
		b.SetBytes(g.NumEdges() * 4)
		for i := 0; i < b.N; i++ {
			if _, err := SpMV(g, x, ac); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BFS", func(b *testing.B) {
		b.SetBytes(g.NumEdges() * 4)
		for i := 0; i < b.N; i++ {
			if _, err := BFS(g, 0, ac); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PageRankDelta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PageRankDelta(g, DeltaOptions{Config: ac, Epsilon: 1e-7, MaxIterations: 20}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
