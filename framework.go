package hipa

import "hipa/internal/framework"

// FrameworkConfig configures the generic partition-centric framework (the
// paper's §6 "more generic use scenarios"): vertex programs in
// gather-apply-scatter form running on the HiPa substrate with convergence
// by deactivation.
type FrameworkConfig = framework.Config

// WCCResult holds weakly-connected-component labels.
type WCCResult = framework.Result[uint32]

// WCC computes weakly connected components (labels are each component's
// smallest vertex ID).
func WCC(g *Graph, cfg FrameworkConfig) (*WCCResult, error) {
	return framework.WCC(g, cfg)
}

// HopsResult holds single-source hop distances.
type HopsResult = framework.Result[int32]

// UnreachableHops is the distance label of unreached vertices.
const UnreachableHops = framework.Unreachable

// Hops computes shortest hop distances from source along out-edges
// (unweighted SSSP) via min-plus label correction.
func Hops(g *Graph, source VertexID, cfg FrameworkConfig) (*HopsResult, error) {
	return framework.Hops(g, source, cfg)
}

// Reachable computes forward reachability flags (0/1) from source.
func Reachable(g *Graph, source VertexID, cfg FrameworkConfig) (*WCCResult, error) {
	return framework.Reachable(g, source, cfg)
}
