package hipa

import (
	"hipa/internal/engines/common"
	deltaengine "hipa/internal/engines/delta"
	"hipa/internal/engines/ec"
	"hipa/internal/engines/gpop"
	hipaengine "hipa/internal/engines/hipa"
	"hipa/internal/engines/nb"
	"hipa/internal/engines/polymer"
	"hipa/internal/engines/ppr"
	"hipa/internal/engines/vpr"
	"hipa/internal/graph"
	"hipa/internal/platform"
)

// Engine is one PageRank implementation. All five engines compute the same
// damped PageRank with dangling-mass redistribution and produce identical
// rank vectors (to float32 precision).
type Engine = common.Engine

// Options configures an engine run. The zero value selects the paper's
// defaults: the Skylake testbed, the engine's tuned thread count and
// partition size, 20 iterations, damping 0.85.
type Options = common.Options

// WarmStart carries a previous run's rank vector (and optionally the graph
// delta separating the versions) into Options.Warm for incremental
// re-ranking. Supported by HiPa and Delta; other engines reject it.
type WarmStart = common.WarmStart

// Result is the outcome of an engine run: the rank vector, real wall-clock
// timings, the simulated-machine performance report (Model), and the
// simulated scheduler statistics (Sched).
type Result = common.Result

// Platform is the execution substrate an engine runs on: a modelled
// microarchitecture (scheduler simulation, NUMA placement, and cost
// accounting feeding Result.Model) or the pass-through native platform.
// Set Options.Platform to choose; nil selects the modelled platform of
// Options.Machine.
type Platform = platform.Platform

// NewModeledPlatform returns the full-simulation platform for m (nil
// selects the Skylake testbed).
func NewModeledPlatform(m *Machine) Platform { return platform.NewModeled(m) }

// NewNativePlatform returns the pass-through platform: engines run as
// plain parallel Go programs with zero modelling overhead, and every
// modelled metric in Result.Model is reported as zero — never fabricated.
// m (nil selects Skylake) still drives structural decisions such as
// partition sizing.
func NewNativePlatform(m *Machine) Platform { return platform.NewNative(m) }

// Prepared is an engine's immutable preprocessing artifact — the partition
// hierarchy and compressed layout for partition-centric engines, the
// transpose and degree arrays for vertex-centric ones. Build it once with
// Prepare, then execute the iterative phase any number of times (including
// concurrently) with Exec.
type Prepared = common.Prepared

// PrepCache is a content-keyed, bounded LRU cache of preprocessing
// artifacts. Set Options.PrepCache to share artifacts across runs that use
// the same graph and partitioning parameters; nil (the default) rebuilds on
// every Prepare.
type PrepCache = common.PrepCache

// PrepStats are a PrepCache's hit/miss/eviction counters; Misses counts
// artifact builds.
type PrepStats = common.PrepStats

// NewPrepCache returns a PrepCache holding at most capacity artifacts
// (capacity <= 0 selects a small default).
func NewPrepCache(capacity int) *PrepCache { return common.NewPrepCache(capacity) }

// Prepare runs the engine's preprocessing phase only, returning the
// reusable artifact. Run is equivalent to Prepare followed by Exec.
func Prepare(e Engine, g *Graph, o Options) (*Prepared, error) { return e.Prepare(g, o) }

// Exec runs the engine's iterative phase against a previously Prepared
// artifact. The artifact must come from the same engine with compatible
// options; Exec validates and errors otherwise. A single Prepared is safe
// for concurrent Exec calls.
func Exec(e Engine, prep *Prepared, o Options) (*Result, error) { return e.Exec(prep, o) }

// The five implementations evaluated in the paper (§4.1).
var (
	// HiPa is the paper's contribution: hierarchical NUMA- and cache-aware
	// partitioning with thread-data pinning (Algorithm 2).
	HiPa Engine = hipaengine.Engine{}
	// PPR is p-PR, the hand-optimized NUMA-oblivious partition-centric
	// baseline (PCPM re-implementation).
	PPR Engine = ppr.Engine{}
	// VPR is v-PR, the hand-optimized pull-based vertex-centric baseline.
	VPR Engine = vpr.Engine{}
	// GPOP is the partition-centric framework baseline (1MB partitions,
	// per-partition state, frontier disabled for PageRank).
	GPOP Engine = gpop.Engine{}
	// Polymer is the NUMA-aware vertex-centric framework baseline.
	Polymer Engine = polymer.Engine{}
)

// The two frontier-aware engines built on the generalized superstep driver.
// Neither is bit-identical to the paper five (pruning and asynchrony trade
// float32 exactness for skipped work), so they are registered separately
// from the paper's reporting set.
var (
	// EC is EC-HiPa: HiPa's execution shape with early partition
	// convergence — whole partitions retire from the active set once every
	// vertex in them changes by less than the tolerance.
	EC Engine = ec.Engine{}
	// NB is NB-PR: barrierless non-blocking PageRank (Eedi et al.) with
	// atomic rank publication and round-based termination detection.
	NB Engine = nb.Engine{}
	// Delta is Delta-PR: delta-propagation PageRank on HiPa's partitioned
	// substrate with a vertex-granular frontier — the warm-start engine of
	// versioned graphs (Options.Warm resumes from a previous version's
	// ranks, seeding the frontier sparsely from the mutation delta).
	Delta Engine = deltaengine.Engine{}
)

// Engines returns the five engines evaluated in the paper, in its reporting
// order. Paper-shape comparisons (experiments, the webrank example) iterate
// exactly this set.
func Engines() []Engine { return []Engine{HiPa, PPR, VPR, GPOP, Polymer} }

// AllEngines returns every registered engine: the paper five followed by
// the frontier-aware additions.
func AllEngines() []Engine { return []Engine{HiPa, PPR, VPR, GPOP, Polymer, EC, NB, Delta} }

// ReferencePageRank is the sequential float64 ground-truth implementation
// used to validate every engine.
func ReferencePageRank(g *Graph, iterations int, damping float64) []float64 {
	return common.ReferencePageRank(g, iterations, damping)
}

// RankSum returns the sum of a rank vector (≈1 for a correct run).
func RankSum(ranks []float32) float64 { return common.RankSum(ranks) }

// TopK returns the k highest-ranked vertices in descending rank order.
func TopK(ranks []float32, k int) []VertexID {
	if k > len(ranks) {
		k = len(ranks)
	}
	idx := make([]VertexID, len(ranks))
	for i := range idx {
		idx[i] = graph.VertexID(i)
	}
	// Partial selection sort is fine for small k; sort fully otherwise.
	if k*len(ranks) > 1<<22 {
		sortByRank(idx, ranks)
		return idx[:k]
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if ranks[idx[j]] > ranks[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

func sortByRank(idx []VertexID, ranks []float32) {
	// Simple heap-free quicksort by descending rank.
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for lo < hi {
			p := ranks[idx[(lo+hi)/2]]
			i, j := lo, hi
			for i <= j {
				for ranks[idx[i]] > p {
					i++
				}
				for ranks[idx[j]] < p {
					j--
				}
				if i <= j {
					idx[i], idx[j] = idx[j], idx[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j)
				lo = i
			} else {
				qs(i, hi)
				hi = j
			}
		}
	}
	if len(idx) > 1 {
		qs(0, len(idx)-1)
	}
}
