package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != 1 {
		t.Errorf("Workers(-3) = %d, want 1", got)
	}
}

func TestFit(t *testing.T) {
	if got := Fit(8, 10); got != 1 {
		t.Errorf("Fit(8, 10) = %d, want 1 (tiny input)", got)
	}
	if got := Fit(8, 1<<30); got != 8 {
		t.Errorf("Fit(8, 1<<30) = %d, want 8", got)
	}
	if got := Fit(1000, 1<<40); got != fitCap {
		t.Errorf("Fit(1000, huge) = %d, want cap %d", got, fitCap)
	}
	if got := Fit(0, 100); got != 1 {
		t.Errorf("Fit(0, 100) = %d, want 1", got)
	}
}

func TestBoundsCoverAndOrder(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 0}, {1, 10}, {3, 10}, {10, 3}, {7, 7}, {4, 1000001},
	} {
		b := Bounds(tc.workers, tc.n)
		if len(b) != tc.workers+1 || b[0] != 0 || b[tc.workers] != tc.n {
			t.Fatalf("Bounds(%d,%d) = %v", tc.workers, tc.n, b)
		}
		for w := 0; w < tc.workers; w++ {
			if b[w] > b[w+1] {
				t.Fatalf("Bounds(%d,%d) not monotone: %v", tc.workers, tc.n, b)
			}
		}
	}
}

func TestBlocksVisitEveryIndexOnce(t *testing.T) {
	const n = 1013
	for _, workers := range []int{1, 2, 3, 8, 2000} {
		seen := make([]int32, n)
		Blocks(workers, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestWeightedBoundsBalance(t *testing.T) {
	// Heavily skewed weights: one item carries half the total.
	n := 100
	prefix := make([]int64, n+1)
	for i := 0; i < n; i++ {
		w := int64(1)
		if i == 10 {
			w = 100
		}
		prefix[i+1] = prefix[i] + w
	}
	b := WeightedBounds(4, prefix)
	if b[0] != 0 || b[4] != n {
		t.Fatalf("bounds = %v", b)
	}
	// The heavy item must sit alone-ish: the range containing index 10 should
	// not also absorb most of the remaining items.
	for w := 0; w < 4; w++ {
		if b[w] <= 10 && 10 < b[w+1] {
			if b[w+1]-b[w] > 60 {
				t.Fatalf("heavy range too wide: %v", b)
			}
		}
	}
	// Every index covered exactly once.
	seen := make([]bool, n)
	WeightedBlocks(4, prefix, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i] = true
		}
	})
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not covered", i)
		}
	}
}
