// Package par is the shared bounded-worker helper behind the parallel
// Prepare pipeline: CSR/CSC construction, graph fingerprinting, and the
// partition/layout builds all fan work out through it.
//
// Every splitter in this package is deterministic: chunk boundaries depend
// only on the worker count and the input sizes, never on scheduling. The
// prep-pipeline callers additionally arrange that each output element is
// written by exactly one worker and that its value does not depend on the
// chunking, which is what makes preprocessing artifacts bit-identical at any
// parallelism setting (pinned by the golden engine tests).
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a parallelism request to a concrete worker count: a
// positive value is used as given, 0 selects runtime.GOMAXPROCS(0) (use all
// cores), and anything negative degenerates to 1 (serial).
func Workers(requested int) int {
	switch {
	case requested > 0:
		return requested
	case requested == 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// fitCap bounds the worker count regardless of item count; per-worker count
// arrays in the counting-sort passes cost O(workers·keys) memory, so an
// unbounded fan-out on a many-core host would trade a little speed for a lot
// of space.
const fitCap = 64

// fitGrain is the minimum number of items that justifies one extra worker;
// below it, goroutine and cache-line overheads eat the win.
const fitGrain = 1 << 15

// Fit caps an already-resolved worker count to what `items` units of work can
// productively use: at most one worker per fitGrain items, and never more
// than fitCap. The result is at least 1.
func Fit(workers int, items int64) int {
	if max := 1 + int(items/fitGrain); workers > max {
		workers = max
	}
	if workers > fitCap {
		workers = fitCap
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run runs fn(w) for w in [0, workers) on one goroutine each and waits for
// all of them. workers <= 1 runs fn(0) inline.
func Run(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// Bounds cuts [0, n) into `workers` contiguous half-open ranges of nearly
// equal length, returning the workers+1 boundaries. Boundaries depend only on
// workers and n; ranges are empty when workers > n.
func Bounds(workers, n int) []int {
	b := make([]int, workers+1)
	for w := 1; w <= workers; w++ {
		b[w] = int(int64(n) * int64(w) / int64(workers))
	}
	return b
}

// Blocks runs fn(w, lo, hi) in parallel for each of the `workers` contiguous
// ranges produced by Bounds(workers, n).
func Blocks(workers, n int, fn func(w, lo, hi int)) {
	if workers <= 1 || n <= 1 {
		fn(0, 0, n)
		return
	}
	b := Bounds(workers, n)
	Run(workers, func(w int) { fn(w, b[w], b[w+1]) })
}

// WeightedBounds cuts [0, n) into `workers` contiguous ranges of
// approximately equal total weight, where prefix (length n+1, prefix[0]=0)
// is the prefix sum of per-item weights. Boundaries depend only on prefix
// and workers, and are monotone: boundary w is the smallest index whose
// prefix weight reaches w/workers of the total.
func WeightedBounds(workers int, prefix []int64) []int {
	n := len(prefix) - 1
	b := make([]int, workers+1)
	b[workers] = n
	total := prefix[n]
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		lo, hi := b[w-1], n
		for lo < hi {
			mid := (lo + hi) / 2
			if prefix[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		b[w] = lo
	}
	return b
}

// WeightedBlocks runs fn(w, lo, hi) in parallel for each of the `workers`
// ranges produced by WeightedBounds(workers, prefix).
func WeightedBlocks(workers int, prefix []int64, fn func(w, lo, hi int)) {
	n := len(prefix) - 1
	if workers <= 1 || n <= 1 {
		fn(0, 0, n)
		return
	}
	b := WeightedBounds(workers, prefix)
	Run(workers, func(w int) { fn(w, b[w], b[w+1]) })
}
