package algorithms

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hipa/internal/engines/common"
	"hipa/internal/gen"
	"hipa/internal/graph"
)

// refWeightedSpMV is the sequential ground truth.
func refWeightedSpMV(g *graph.Graph, x, w []float32) []float32 {
	y := make([]float32, g.NumVertices())
	off := g.OutOffsets()
	adj := g.OutEdges()
	for u := 0; u < g.NumVertices(); u++ {
		for i := off[u]; i < off[u+1]; i++ {
			y[adj[i]] += w[i] * x[u]
		}
	}
	return y
}

func TestWeightedSpMVMatchesReference(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 800, Edges: 10000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 8))
	x := make([]float32, g.NumVertices())
	for i := range x {
		x[i] = rng.Float32()
	}
	w := make([]float32, g.NumEdges())
	for i := range w {
		w[i] = rng.Float32() * 3
	}
	got, err := WeightedSpMV(g, x, w, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := refWeightedSpMV(g, x, w)
	for v := range want {
		if math.Abs(float64(got[v]-want[v])) > 1e-2*(1+math.Abs(float64(want[v]))) {
			t.Fatalf("y[%d] = %f, want %f", v, got[v], want[v])
		}
	}
}

func TestWeightedSpMVUnitWeightsEqualSpMV(t *testing.T) {
	g, err := gen.Uniform(500, 6000, 72)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, g.NumVertices())
	for i := range x {
		x[i] = float32(i % 7)
	}
	ones := make([]float32, g.NumEdges())
	for i := range ones {
		ones[i] = 1
	}
	a, err := WeightedSpMV(g, x, ones, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpMV(g, x, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if math.Abs(float64(a[v]-b[v])) > 1e-3 {
			t.Fatalf("unit-weighted [%d] = %f vs unweighted %f", v, a[v], b[v])
		}
	}
}

func TestWeightedSpMVErrors(t *testing.T) {
	g, _ := gen.Uniform(10, 20, 1)
	w := make([]float32, g.NumEdges())
	if _, err := WeightedSpMV(g, make([]float32, 3), w, testCfg()); err == nil {
		t.Error("expected error for x length mismatch")
	}
	if _, err := WeightedSpMV(g, make([]float32, 10), w[:5], testCfg()); err == nil {
		t.Error("expected error for weight length mismatch")
	}
}

// Property: multi-edges keep distinct weights (each CSR slot counted once).
func TestPropertyWeightedSpMVMultiEdges(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		n := rng.IntN(60) + 2
		b := graph.NewBuilder(n)
		for i := 0; i < rng.IntN(300); i++ {
			// Small vertex range forces plenty of duplicate edges.
			b.AddEdge(graph.VertexID(rng.IntN(n)), graph.VertexID(rng.IntN(n)))
		}
		g := b.Build()
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.IntN(5))
		}
		w := make([]float32, g.NumEdges())
		for i := range w {
			w[i] = float32(rng.IntN(4))
		}
		got, err := WeightedSpMV(g, x, w, testCfg())
		if err != nil {
			return false
		}
		want := refWeightedSpMV(g, x, w)
		for v := range want {
			if math.Abs(float64(got[v]-want[v])) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPersonalizedPageRank(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 1000, Edges: 12000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	src := []graph.VertexID{7}
	ranks, err := PersonalizedPageRank(g, src, 30, 0.85, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Mass conserved.
	var sum float64
	for _, r := range ranks {
		sum += float64(r)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("personalized rank sum = %f", sum)
	}
	// The source dominates its own personalized ranking.
	for v, r := range ranks {
		if graph.VertexID(v) != 7 && float64(r) > float64(ranks[7]) {
			// Allowed only for extremely central hubs; the source's restart
			// mass should usually win. Check it is at least top-5.
			top := 0
			for _, r2 := range ranks {
				if r2 > ranks[7] {
					top++
				}
			}
			if top > 5 {
				t.Fatalf("source rank %g ranked below %d vertices", ranks[7], top)
			}
			break
		}
	}
	// Sequential reference for personalized PR.
	ref := refPersonalized(g, src, 30, 0.85)
	for v := range ref {
		if math.Abs(ref[v]-float64(ranks[v])) > 1e-4 {
			t.Fatalf("rank[%d] = %g, want %g", v, ranks[v], ref[v])
		}
	}
}

func refPersonalized(g *graph.Graph, sources []graph.VertexID, iters int, d float64) []float64 {
	n := g.NumVertices()
	tele := make([]float64, n)
	for _, s := range sources {
		tele[s] += 1 / float64(len(sources))
	}
	rank := append([]float64(nil), tele...)
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for v := 0; v < n; v++ {
			deg := g.OutDegree(graph.VertexID(v))
			if deg == 0 {
				dangling += rank[v]
				continue
			}
			c := rank[v] / float64(deg)
			for _, dst := range g.OutNeighbors(graph.VertexID(v)) {
				next[dst] += c
			}
		}
		restart := (1 - d) + d*dangling
		for v := 0; v < n; v++ {
			rank[v] = restart*tele[v] + d*next[v]
		}
	}
	return rank
}

func TestPersonalizedPageRankErrors(t *testing.T) {
	g, _ := gen.Uniform(10, 30, 2)
	if _, err := PersonalizedPageRank(g, nil, 5, 0.85, testCfg()); err == nil {
		t.Error("expected error for no sources")
	}
	if _, err := PersonalizedPageRank(g, []graph.VertexID{99}, 5, 0.85, testCfg()); err == nil {
		t.Error("expected error for bad source")
	}
	if _, err := PersonalizedPageRank(g, []graph.VertexID{0}, 0, 0.85, testCfg()); err == nil {
		t.Error("expected error for zero iterations")
	}
	if _, err := PersonalizedPageRank(g, []graph.VertexID{0}, 5, 2, testCfg()); err == nil {
		t.Error("expected error for bad damping")
	}
}

// Uniform personalization over ALL vertices equals standard PageRank.
func TestPersonalizedUniformEqualsStandard(t *testing.T) {
	g, err := gen.Uniform(300, 3000, 74)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]graph.VertexID, g.NumVertices())
	for i := range all {
		all[i] = graph.VertexID(i)
	}
	got, err := PersonalizedPageRank(g, all, 15, 0.85, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	ref := common.ReferencePageRank(g, 15, 0.85)
	for v := range ref {
		if math.Abs(ref[v]-float64(got[v])) > 1e-4 {
			t.Fatalf("uniform personalization [%d] = %g, want %g", v, got[v], ref[v])
		}
	}
}
