package algorithms

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hipa/internal/engines/common"
	"hipa/internal/gen"
	"hipa/internal/graph"
)

func testCfg() Config {
	return Config{Threads: 4, PartitionBytes: 256, NumNodes: 2}
}

// refSpMV is the sequential ground truth: y[v] = sum over in-edges x[u].
func refSpMV(g *graph.Graph, x []float32) []float32 {
	y := make([]float32, g.NumVertices())
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.OutNeighbors(graph.VertexID(u)) {
			y[v] += x[u]
		}
	}
	return y
}

func TestSpMVMatchesReference(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 1000, Edges: 12000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, g.NumVertices())
	rng := rand.New(rand.NewPCG(1, 2))
	for i := range x {
		x[i] = rng.Float32()
	}
	got, err := SpMV(g, x, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := refSpMV(g, x)
	for v := range want {
		if math.Abs(float64(got[v]-want[v])) > 1e-3*(1+math.Abs(float64(want[v]))) {
			t.Fatalf("SpMV[%d] = %f, want %f", v, got[v], want[v])
		}
	}
}

func TestSpMVErrors(t *testing.T) {
	g, _ := gen.Uniform(10, 20, 1)
	if _, err := SpMV(g, make([]float32, 5), testCfg()); err == nil {
		t.Error("expected error for length mismatch")
	}
	empty := graph.NewBuilder(0).Build()
	if _, err := SpMV(empty, nil, testCfg()); err == nil {
		t.Error("expected error for empty graph")
	}
}

func TestSpMVIterateCountsPaths(t *testing.T) {
	// Path graph 0->1->2->3: starting from e0, k applications move the unit.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	x := []float32{1, 0, 0, 0}
	y, err := SpMVIterate(g, x, 3, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 0, 1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
	if _, err := SpMVIterate(g, x, -1, testCfg()); err == nil {
		t.Error("expected error for negative k")
	}
	y0, _ := SpMVIterate(g, x, 0, testCfg())
	if y0[0] != 1 {
		t.Error("k=0 should return a copy of x")
	}
}

// Property: SpMV is linear: A(x+z) = Ax + Az.
func TestPropertySpMVLinear(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		n := rng.IntN(200) + 10
		b := graph.NewBuilder(n)
		for i := 0; i < rng.IntN(1000); i++ {
			b.AddEdge(graph.VertexID(rng.IntN(n)), graph.VertexID(rng.IntN(n)))
		}
		g := b.Build()
		x := make([]float32, n)
		z := make([]float32, n)
		sum := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.IntN(8))
			z[i] = float32(rng.IntN(8))
			sum[i] = x[i] + z[i]
		}
		ax, err := SpMV(g, x, testCfg())
		if err != nil {
			return false
		}
		az, err := SpMV(g, z, testCfg())
		if err != nil {
			return false
		}
		asum, err := SpMV(g, sum, testCfg())
		if err != nil {
			return false
		}
		for v := range asum {
			if math.Abs(float64(asum[v]-(ax[v]+az[v]))) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankDeltaEpsilonZeroMatchesReference(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 800, Edges: 10000, OutAlpha: 2.0, InAlpha: 0.8, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 12
	res, err := PageRankDelta(g, DeltaOptions{Config: testCfg(), Epsilon: 0, MaxIterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	ref := common.ReferencePageRank(g, iters, common.DefaultDamping)
	for v := range ref {
		if math.Abs(float64(res.Ranks[v])-ref[v]) > 1e-4*ref[v]+1e-5 {
			t.Fatalf("rank[%d] = %g, want %g", v, res.Ranks[v], ref[v])
		}
	}
	if s := common.RankSum(res.Ranks); math.Abs(s-1) > 1e-3 {
		t.Errorf("rank sum = %f", s)
	}
}

func TestPageRankDeltaEpsilonPrunes(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 1500, Edges: 20000, OutAlpha: 2.1, InAlpha: 1.0, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PageRankDelta(g, DeltaOptions{Config: testCfg(), Epsilon: 1e-7, MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	// The active set must shrink over iterations and eventually converge.
	first := res.ActiveHistory[0]
	last := res.ActiveHistory[len(res.ActiveHistory)-1]
	if last >= first {
		t.Errorf("active set did not shrink: %v", res.ActiveHistory)
	}
	// Result approximates the converged PageRank.
	ref := common.ReferencePageRank(g, 50, common.DefaultDamping)
	var worst float64
	for v := range ref {
		if d := math.Abs(float64(res.Ranks[v]) - ref[v]); d > worst {
			worst = d
		}
	}
	if worst > 1e-4 {
		t.Errorf("worst abs error vs converged PR: %g", worst)
	}
}

// danglingHeavyGraph builds a 400-vertex graph where only the first half has
// out-edges: half the rank mass is dangling and redistributed uniformly every
// iteration, the case where delta propagation is easiest to get wrong (the
// dangling deltas travel through the redistribution term, not the edges).
func danglingHeavyGraph() *graph.Graph {
	b := graph.NewBuilder(400)
	x := uint64(0x9E3779B97F4A7C15)
	for v := 0; v < 200; v++ {
		for k := 0; k < 3; k++ {
			x = x*6364136223846793005 + 1442695040888963407
			b.AddEdge(graph.VertexID(v), graph.VertexID(int(x>>33)%400))
		}
	}
	return b.Build()
}

// TestPageRankDeltaMatchesExactRanks is the correctness gate the bench-only
// coverage lacked: a converged PageRankDelta run (small epsilon, generous
// budget) must agree with exact power-iteration ranks within epsilon on each
// example graph, including the dangling-heavy one.
func TestPageRankDeltaMatchesExactRanks(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"power-law", func() (*graph.Graph, error) {
			return gen.PowerLaw(gen.PowerLawConfig{Vertices: 1000, Edges: 12000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 61})
		}},
		{"uniform", func() (*graph.Graph, error) {
			return gen.Uniform(600, 7000, 7)
		}},
		{"dangling-heavy", func() (*graph.Graph, error) {
			return danglingHeavyGraph(), nil
		}},
	}
	const budget = 200
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			res, err := PageRankDelta(g, DeltaOptions{Config: testCfg(), Epsilon: 1e-8, MaxIterations: budget})
			if err != nil {
				t.Fatal(err)
			}
			if res.Iterations >= budget {
				t.Errorf("delta computation never converged within %d iterations", budget)
			}
			ref := common.ReferencePageRank(g, budget, common.DefaultDamping)
			var worst float64
			for v := range ref {
				if d := math.Abs(float64(res.Ranks[v]) - ref[v]); d > worst {
					worst = d
				}
			}
			// float32 accumulation against a float64 reference: 1e-5 is ~40×
			// the ulp of a typical rank here and far below any rank's value.
			if worst > 1e-5 {
				t.Errorf("worst abs error vs exact ranks: %g, want <= 1e-5", worst)
			}
			if s := common.RankSum(res.Ranks); math.Abs(s-1) > 1e-3 {
				t.Errorf("rank sum = %f, want 1", s)
			}
		})
	}
}

func TestPageRankDeltaErrors(t *testing.T) {
	g, _ := gen.Uniform(10, 20, 1)
	if _, err := PageRankDelta(g, DeltaOptions{Config: testCfg(), Damping: 2}); err == nil {
		t.Error("expected error for damping out of range")
	}
	if _, err := PageRankDelta(g, DeltaOptions{Config: testCfg(), Epsilon: -1}); err == nil {
		t.Error("expected error for negative epsilon")
	}
	empty := graph.NewBuilder(0).Build()
	if _, err := PageRankDelta(empty, DeltaOptions{Config: testCfg()}); err == nil {
		t.Error("expected error for empty graph")
	}
}

func refBFSLevels(g *graph.Graph, src graph.VertexID) []int32 {
	levels := make([]int32, g.NumVertices())
	for i := range levels {
		levels[i] = -1
	}
	levels[src] = 0
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.OutNeighbors(u) {
			if levels[v] == -1 {
				levels[v] = levels[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return levels
}

func TestBFSMatchesReference(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 2000, Edges: 30000, OutAlpha: 2.0, InAlpha: 0.9, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 0, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := refBFSLevels(g, 0)
	visited := 0
	for v := range want {
		if res.Levels[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, res.Levels[v], want[v])
		}
		if want[v] >= 0 {
			visited++
		}
	}
	if res.Visited != visited {
		t.Errorf("Visited = %d, want %d", res.Visited, visited)
	}
	// Parent consistency: parent of v is one level shallower and has an
	// edge to v.
	for v := 0; v < g.NumVertices(); v++ {
		if res.Levels[v] <= 0 {
			continue
		}
		p := res.Parents[v]
		if res.Levels[p] != res.Levels[v]-1 {
			t.Fatalf("parent level of %d: %d, want %d", v, res.Levels[p], res.Levels[v]-1)
		}
		found := false
		for _, d := range g.OutNeighbors(p) {
			if d == graph.VertexID(v) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("parent %d has no edge to %d", p, v)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	// 2,3,4 unreachable.
	g := b.Build()
	res, err := BFS(g, 0, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 2 {
		t.Errorf("Visited = %d, want 2", res.Visited)
	}
	for _, v := range []int{2, 3, 4} {
		if res.Levels[v] != -1 {
			t.Errorf("unreachable vertex %d has level %d", v, res.Levels[v])
		}
	}
}

func TestBFSErrors(t *testing.T) {
	g, _ := gen.Uniform(10, 20, 1)
	if _, err := BFS(g, 99, testCfg()); err == nil {
		t.Error("expected error for bad source")
	}
	empty := graph.NewBuilder(0).Build()
	if _, err := BFS(empty, 0, testCfg()); err == nil {
		t.Error("expected error for empty graph")
	}
}

// Property: BFS levels satisfy the triangle property — for every edge (u,v),
// level(v) <= level(u)+1 when u is reachable.
func TestPropertyBFSLevels(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		n := rng.IntN(300) + 2
		b := graph.NewBuilder(n)
		for i := 0; i < rng.IntN(1500); i++ {
			b.AddEdge(graph.VertexID(rng.IntN(n)), graph.VertexID(rng.IntN(n)))
		}
		g := b.Build()
		src := graph.VertexID(rng.IntN(n))
		res, err := BFS(g, src, testCfg())
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			if res.Levels[u] < 0 {
				continue
			}
			for _, v := range g.OutNeighbors(graph.VertexID(u)) {
				if res.Levels[v] < 0 || res.Levels[v] > res.Levels[u]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Regression: on graphs smaller than the thread count, the worker count
// must still equal the partition group count (found by fuzz-order quick
// seeds: 4 threads on a 3-vertex graph used to panic).
func TestTinyGraphThreadClamp(t *testing.T) {
	for n := 1; n <= 8; n++ {
		b := graph.NewBuilder(n)
		for v := 0; v+1 < n; v++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID(v+1))
		}
		g := b.Build()
		x := make([]float32, n)
		x[0] = 1
		if _, err := SpMV(g, x, Config{Threads: 4, PartitionBytes: 16, NumNodes: 2}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		w := make([]float32, g.NumEdges())
		if _, err := WeightedSpMV(g, x, w, Config{Threads: 4, PartitionBytes: 16, NumNodes: 2}); err != nil {
			t.Fatalf("weighted n=%d: %v", n, err)
		}
		if _, err := BFS(g, 0, Config{Threads: 7, PartitionBytes: 16, NumNodes: 2}); err != nil {
			t.Fatalf("bfs n=%d: %v", n, err)
		}
	}
}
