package algorithms

import (
	"fmt"

	"hipa/internal/engines/common"
	"hipa/internal/execbuf"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/partition"
)

// MaxBatch is the widest rank block the kernels support. The per-partition
// scratch the hot loops keep on the stack ([MaxBatch] contribution and
// dangling buffers) is sized by it, so batched Execs stay allocation-free
// at any width up to this bound.
const MaxBatch = 64

// BlockSG is the rank-B generalization of the partition-centric
// scatter-gather kernel (common.SGState): B PageRank columns advance in
// lockstep through one pass over the graph per iteration, so the graph
// structure — intra CSR, message metadata, destination lists — is streamed
// once per batch instead of once per query (the multi-RHS form of the PCPM
// traffic argument).
//
// Layout: rank state is vertex-interleaved, column j of vertex v at
// ranks[v*B+j], so one cache line carries up to 16 columns of the same
// vertex and the per-vertex random accesses of the batch amortize across
// the block. Ranks are double-buffered: an iteration reads ranksCur
// everywhere and writes ranksNext inside the owning partition, which lets
// the gather phase decode inter-partition messages by reading the source
// vertex's rank block directly — there is no B-wide bins array. The decoded
// value ranksCur[u*B+j] * Inv[u] is the exact multiply the scalar kernel
// materializes into its bins during scatter, applied to the accumulators in
// the same block/message/destination order, so a uniform column at B=1 is
// bit-identical to the scalar HiPa engine.
//
// Each column carries its own restart vector: a nil/empty seed set is the
// uniform PageRank column ((1-d)/n teleport everywhere), a non-empty seed
// set is a personalized column teleporting (and redistributing dangling
// mass) back to its seeds only. Columns converge independently: a
// per-column L∞ residual below the tolerance retires the column from the
// active list, after which it contributes no scatter, decode, or update
// work — its trajectory, iteration count included, is the one it would have
// at any other batch width.
//
// All reductions (dangling fold, residual fold, retirement) are serial and
// in global partition/column order, so results are bit-deterministic at any
// worker count.
type BlockSG struct {
	G    *graph.Graph
	Lay  *layout.Layout
	Hier *partition.Hierarchy
	Inv  []float32

	B       int
	Damping float64
	Tol     float64 // per-column retirement threshold; 0 disables retirement

	ranksCur  []float32 // n*B, read-only during an iteration
	ranksNext []float32 // n*B, gather writes the owning partition's rows
	acc       []float32 // n*B accumulators, zeroed after each gather
	seedAdd   []float32 // n*B sparse teleport addends of personalized columns

	baseS  [MaxBatch]float32 // (1-d)/n for uniform columns, 0 for seeded
	redisS [MaxBatch]float32 // d*S_j/n for uniform columns, set by Reduce

	seeds [][]graph.VertexID // per column; nil/empty = uniform

	partDang   []float64 // P*B per-partition per-column dangling, overwritten by gather
	lanes      []float64 // threads*laneStride per-thread per-column residual maxima
	laneStride int       // B rounded to a cache line of float64s

	cols     []int32 // active columns, filtered in place by FoldResidual
	colIters []int32 // iterations each column actually executed

	lastDangling float64 // active-column dangling sum of the last Reduce
	started      int     // iterations begun; selects the final rank buffer

	// Modelled-traffic accounting, folded serially in Reduce: colSteps is
	// Σ over supersteps of the active column count (per-column work), and
	// lineSteps is Σ of ceil(active*4/64) — the 64-byte lines one vertex's
	// rank block spans at the active width (line-granular traffic).
	colSteps  int64
	lineSteps int64
}

// NewBlockSG builds the blocked execution state for len(seedSets) columns
// on top of a scratch arena (nil gets a private one). Column j starts at
// its restart distribution: uniform 1/n when seedSets[j] is empty,
// 1/len(seeds) on the seeds and 0 elsewhere otherwise. Seed vertices must
// be in range and per-column duplicate-free (the engine validates).
func NewBlockSG(g *graph.Graph, hier *partition.Hierarchy, lay *layout.Layout, inv []float32,
	damping, tol float64, threads int, seedSets [][]graph.VertexID, arena *execbuf.Arena) (*BlockSG, error) {
	b := len(seedSets)
	if b < 1 || b > MaxBatch {
		return nil, fmt.Errorf("blocksg: batch width %d outside [1,%d]", b, MaxBatch)
	}
	if threads < 1 {
		return nil, fmt.Errorf("blocksg: threads %d < 1", threads)
	}
	if arena == nil {
		arena = &execbuf.Arena{}
	}
	n := g.NumVertices()
	P := hier.NumPartitions()
	s := &BlockSG{
		G: g, Lay: lay, Hier: hier, Inv: inv,
		B: b, Damping: damping, Tol: tol,
		seedAdd:    arena.SeedAdd(n * b),
		partDang:   arena.PartDanglingBlock(P * b),
		laneStride: (b + 7) &^ 7,
		cols:       arena.Cols(b),
		colIters:   arena.ColIters(b),
		seeds:      seedSets,
	}
	s.ranksCur, s.ranksNext = arena.RanksBlockPair(n * b)
	s.acc = arena.AccBlock(n * b)
	s.lanes = arena.ColLanes(threads * s.laneStride)

	// Restart distributions and the per-column update constants.
	var init [MaxBatch]float32
	uniform := float32(1.0 / float64(n))
	for j := 0; j < b; j++ {
		s.cols[j] = int32(j)
		if len(seedSets[j]) == 0 {
			init[j] = uniform
			s.baseS[j] = float32((1 - damping) / float64(n))
		}
	}
	for i := 0; i < n*b; i += b {
		copy(s.ranksCur[i:i+b], init[:b])
	}
	for j, sv := range seedSets {
		if len(sv) == 0 {
			continue
		}
		w := float32(1.0 / float64(len(sv)))
		for _, v := range sv {
			if int(v) >= n {
				return nil, fmt.Errorf("blocksg: column %d seed %d outside graph of %d vertices", j, v, n)
			}
			s.ranksCur[int(v)*b+j] = w
		}
	}

	// Iteration-zero dangling invariant: partDang holds the initial
	// distribution's per-partition per-column dangling mass, exactly what a
	// gather pass under these ranks would have written. Serial, so the seed
	// is worker-count independent like every other fold here.
	for p := 0; p < P; p++ {
		part := hier.Partitions[p]
		var dang [MaxBatch]float64
		for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
			if inv[v] != 0 {
				continue
			}
			rb := s.ranksCur[v*b : v*b+b]
			for j := 0; j < b; j++ {
				dang[j] += float64(rb[j])
			}
		}
		copy(s.partDang[p*b:(p+1)*b], dang[:b])
	}
	return s, nil
}

// StartIteration swaps the double-buffered rank blocks so the ranks the
// previous gather wrote become the read side. Runs serially before each
// iteration's scatter.
func (s *BlockSG) StartIteration(it int) {
	if it > 0 {
		s.ranksCur, s.ranksNext = s.ranksNext, s.ranksCur
	}
	s.started++
}

// ScatterPartition applies partition p's intra-edges for every active
// column: acc[d*B+j] += ranksCur[v*B+j] * Inv[v], the same contribution
// stream as the scalar scatter. Inter-partition traffic needs no scatter
// work at all — the gather side reads source rank blocks directly.
func (s *BlockSG) ScatterPartition(p int, tid int) {
	_ = tid
	part := s.Hier.Partitions[p]
	lay := s.Lay
	b := s.B
	cols := s.cols
	ranks, inv, acc := s.ranksCur, s.Inv, s.acc
	intraOff := lay.IntraOff

	var cb [MaxBatch]float32
	for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
		lo, hi := intraOff[v], intraOff[v+1]
		if lo == hi {
			continue
		}
		iv := inv[v]
		rb := ranks[v*b : v*b+b : v*b+b]
		for k, j := range cols {
			cb[k] = rb[j] * iv
		}
		for _, d := range lay.IntraDst[lo:hi:hi] {
			ab := acc[int(d)*b : int(d)*b+b : int(d)*b+b]
			for k, j := range cols {
				ab[j] += cb[k]
			}
		}
	}
}

// Reduce runs serially between the phases: folds the per-partition dangling
// blocks into each active column's redistribution term (uniform columns) or
// refreshed seed addends (personalized columns), and advances the
// per-column iteration counters and traffic accounting. The fold is in
// global partition order per column, independent of the thread layout.
func (s *BlockSG) Reduce() {
	b := s.B
	n := s.G.NumVertices()
	d := s.Damping
	var total float64
	for _, j := range s.cols {
		var sum float64
		for p := 0; p*b < len(s.partDang); p++ {
			sum += s.partDang[p*b+int(j)]
		}
		total += sum
		if sv := s.seeds[j]; len(sv) == 0 {
			if n > 0 {
				s.redisS[j] = float32(d * sum / float64(n))
			}
		} else {
			w := 1.0 / float64(len(sv))
			add := float32((1-d)*w + d*sum*w)
			for _, v := range sv {
				s.seedAdd[int(v)*b+int(j)] = add
			}
		}
		s.colIters[j]++
	}
	s.lastDangling = total
	active := int64(len(s.cols))
	s.colSteps += active
	s.lineSteps += (active*4 + 63) / 64
}

// GatherPartition decodes the inter-partition messages targeting p by
// reading each message's source rank block from the read-side buffer —
// ranksCur[u*B+j] * Inv[u] is bitwise the value the scalar kernel binned
// during scatter, applied in the same block/message/destination order —
// then recomputes p's rank rows into the write-side buffer:
//
//	next = baseS[j] + d*acc + redisS[j] + seedAdd[v*B+j]
//
// (left-associated; the trailing addend is 0.0 for uniform columns, a
// bitwise no-op on their non-negative ranks, so the B=1 uniform update is
// exactly the scalar one). The partition's per-column dangling mass under
// the new ranks overwrites its partDang block, and per-column residual
// maxima fold into the thread's lane.
func (s *BlockSG) GatherPartition(p int, tid int) {
	lay := s.Lay
	b := s.B
	cols := s.cols
	ranks, inv, acc := s.ranksCur, s.Inv, s.acc

	var cb [MaxBatch]float32
	for _, bi := range lay.DstBlocks[p] {
		blk := lay.Blocks[bi]
		src := lay.MsgSrc[blk.MsgStart:blk.MsgEnd:blk.MsgEnd]
		msgOff := lay.MsgDstOff[blk.MsgStart : blk.MsgEnd+1 : blk.MsgEnd+1]
		for i, u := range src {
			iv := inv[u]
			rb := ranks[int(u)*b : int(u)*b+b : int(u)*b+b]
			for k, j := range cols {
				cb[k] = rb[j] * iv
			}
			lo, hi := msgOff[i], msgOff[i+1]
			for _, dv := range lay.MsgDst[lo:hi:hi] {
				ab := acc[int(dv)*b : int(dv)*b+b : int(dv)*b+b]
				for k, j := range cols {
					ab[j] += cb[k]
				}
			}
		}
	}

	part := s.Hier.Partitions[p]
	next := s.ranksNext
	seedAdd := s.seedAdd
	d := float32(s.Damping)
	lanes := s.lanes[tid*s.laneStride : (tid+1)*s.laneStride : (tid+1)*s.laneStride]
	var dang [MaxBatch]float64
	for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
		i := v * b
		dangling := inv[v] == 0
		for k, j := range cols {
			old := ranks[i+int(j)]
			nv := s.baseS[j] + d*acc[i+int(j)] + s.redisS[j] + seedAdd[i+int(j)]
			next[i+int(j)] = nv
			acc[i+int(j)] = 0
			if dangling {
				dang[k] += float64(nv)
			}
			diff := float64(nv - old)
			if diff < 0 {
				diff = -diff
			}
			if diff > lanes[j] {
				lanes[j] = diff
			}
		}
	}
	pd := s.partDang[p*b : (p+1)*b : (p+1)*b]
	for k, j := range cols {
		pd[j] = dang[k]
	}
}

// FoldResidual folds the per-thread residual lanes into per-column maxima,
// retires columns whose residual fell below the tolerance (order-preserving
// in-place filter of the active list; a retired column's rank rows are
// mirrored into the read-side buffer so both buffers carry its final ranks
// through later swaps), clears the lanes, and returns the maximum residual
// over the columns still active — 0 once every column has retired, which
// stops the driver. Serial (the driver's residual slot).
func (s *BlockSG) FoldResidual() float64 {
	b := s.B
	n := s.G.NumVertices()
	threads := len(s.lanes) / s.laneStride
	var max float64
	keep := s.cols[:0]
	for _, j := range s.cols {
		var m float64
		for t := 0; t < threads; t++ {
			if v := s.lanes[t*s.laneStride+int(j)]; v > m {
				m = v
			}
		}
		if s.Tol > 0 && m < s.Tol {
			// Retired: mirror the final column into the read-side buffer so
			// the post-iteration swap (and every later one) is harmless.
			for i := int(j); i < n*b; i += b {
				s.ranksCur[i] = s.ranksNext[i]
			}
			continue
		}
		keep = append(keep, j)
		if m > max {
			max = m
		}
	}
	s.cols = keep
	clear(s.lanes)
	return max
}

// LastDanglingMass reports the active-column dangling sum folded by the
// most recent Reduce, for per-iteration statistics.
func (s *BlockSG) LastDanglingMass() float64 { return s.lastDangling }

// FinalRanks returns the vertex-interleaved rank block holding the latest
// completed iteration's ranks (the initial distributions before any
// iteration ran). The slice aliases arena memory — copy columns out before
// releasing the arena.
func (s *BlockSG) FinalRanks() []float32 {
	if s.started == 0 {
		return s.ranksCur
	}
	return s.ranksNext
}

// CopyColumn copies column j of the final rank block into dst (length
// NumVertices).
func (s *BlockSG) CopyColumn(j int, dst []float32) {
	final := s.FinalRanks()
	b := s.B
	for v := range dst {
		dst[v] = final[v*b+j]
	}
}

// ColumnIterations reports how many iterations each column executed —
// retired columns stop counting, so at any batch width a column's count
// matches its solo run.
func (s *BlockSG) ColumnIterations() []int32 { return s.colIters }

// ActiveColumns reports how many columns are still iterating.
func (s *BlockSG) ActiveColumns() int { return len(s.cols) }

// ColSteps is the summed active-column count over all executed supersteps —
// the Σ_t B_active(t) factor of the per-column modelled traffic.
func (s *BlockSG) ColSteps() int64 { return s.colSteps }

// LineSteps is the summed per-vertex rank-block line count over all
// executed supersteps — Σ_t ceil(B_active(t)*4/64), the factor of all
// line-granular (random and message-payload) modelled traffic.
func (s *BlockSG) LineSteps() int64 { return s.lineSteps }

// PinnedKernels adapts the blocked kernel to the superstep driver under
// HiPa's pinned thread-data mapping: thread tid owns exactly the partitions
// of groups[tid] in both phases. All function values are created here, once
// per Exec, keeping the driver's zero-allocations-per-iteration guarantee.
func (s *BlockSG) PinnedKernels(groups []partition.Group) common.PhaseKernels {
	scatter := &blockGroupPhase{s: s, groups: groups, phase: (*BlockSG).ScatterPartition}
	gather := &blockGroupPhase{s: s, groups: groups, phase: (*BlockSG).GatherPartition}
	return common.PhaseKernels{
		StartIteration: s.StartIteration,
		Scatter:        scatter.run,
		Reduce:         s.Reduce,
		Gather:         gather.run,
		Residual:       s.FoldResidual,
		DanglingMass:   s.LastDanglingMass,
	}
}

// blockGroupPhase walks one thread's pinned partition group through a
// partition-level kernel, mirroring the scalar driver's groupPhase.
type blockGroupPhase struct {
	s      *BlockSG
	groups []partition.Group
	phase  func(s *BlockSG, p, tid int)
}

func (g *blockGroupPhase) run(tid int) {
	gr := g.groups[tid]
	for p := gr.PartStart; p < gr.PartEnd; p++ {
		g.phase(g.s, p, tid)
	}
}
