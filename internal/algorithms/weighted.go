package algorithms

import (
	"fmt"

	"hipa/internal/engines/common"
	"hipa/internal/graph"
)

// WeightedSpMV computes y[v] = Σ_{(u,v)∈E} w(u,v)·x[u] for an edge-weight
// function given as a weight per edge in CSR order (weights[i] belongs to
// the i-th entry of g's out-edge array).
//
// Weights break the inter-edge compression of §3.4 — two edges from the same
// source to the same partition no longer carry the same value — so this
// kernel runs partition-centric but uncompressed: the partition structure
// still provides cache-resident accumulators and NUMA-local streaming, which
// is the part of HiPa that generalises (§1: "Our discussions and
// optimizations proposed for PageRank can also be applied to SpMV").
func WeightedSpMV(g *graph.Graph, x []float32, weights []float32, cfg Config) ([]float32, error) {
	n := g.NumVertices()
	if len(x) != n {
		return nil, fmt.Errorf("algorithms: x has %d entries for %d vertices", len(x), n)
	}
	if int64(len(weights)) != g.NumEdges() {
		return nil, fmt.Errorf("algorithms: %d weights for %d edges", len(weights), g.NumEdges())
	}
	p, err := prepare(g, cfg)
	if err != nil {
		return nil, err
	}
	y := make([]float32, n)
	off := g.OutOffsets()
	adj := g.OutEdges()

	// Weighted updates cannot share compressed messages, so each thread
	// pulls the in-edges targeting its own partitions instead — writes stay
	// owner-exclusive and cache-resident, reads stream the weighted edges.
	g.BuildIn()
	inOff := g.InOffsets()
	inAdj := g.InEdges()
	// Map each in-edge position back to its CSR slot (the weight index) by
	// replaying the exact scan order the CSC construction used: in-lists
	// were filled by iterating sources in order, so the i-th CSR slot
	// targeting v is the i-th entry of v's in-list. Exact for multi-edges.
	widx := make([]int64, g.NumEdges())
	cursor := make([]int64, n)
	for u := 0; u < n; u++ {
		for i := off[u]; i < off[u+1]; i++ {
			d := adj[i]
			widx[inOff[d]+cursor[d]] = i
			cursor[d]++
		}
	}

	bar := common.NewBarrier(p.cfg.Threads)
	common.RunThreads(p.cfg.Threads, func(tid int) {
		gr := p.hier.Groups[tid]
		for pi := gr.PartStart; pi < gr.PartEnd; pi++ {
			part := p.hier.Partitions[pi]
			for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
				var acc float32
				for ii := inOff[v]; ii < inOff[v+1]; ii++ {
					acc += weights[widx[ii]] * x[inAdj[ii]]
				}
				y[v] = acc
			}
		}
		bar.Wait()
	})
	return y, nil
}

// PersonalizedPageRank computes PageRank with a personalized teleport
// vector: instead of restarting uniformly, the random surfer restarts at the
// given source vertices (uniformly among them). Dangling mass also returns
// to the sources. Built on the same partition-centric substrate.
func PersonalizedPageRank(g *graph.Graph, sources []graph.VertexID, iterations int, damping float64, cfg Config) ([]float32, error) {
	n := g.NumVertices()
	if len(sources) == 0 {
		return nil, fmt.Errorf("algorithms: need at least one source")
	}
	for _, s := range sources {
		if int(s) >= n {
			return nil, fmt.Errorf("algorithms: source %d out of range [0,%d)", s, n)
		}
	}
	if iterations < 1 {
		return nil, fmt.Errorf("algorithms: need at least one iteration")
	}
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("algorithms: damping %g out of (0,1)", damping)
	}
	p, err := prepare(g, cfg)
	if err != nil {
		return nil, err
	}

	teleport := make([]float32, n)
	share := float32(1.0 / float64(len(sources)))
	for _, s := range sources {
		teleport[s] += share
	}
	inv := common.InvOutDegrees(g)
	rank := append([]float32(nil), teleport...)
	send := make([]float32, n)
	acc := make([]float32, n)
	bins := make([]float32, p.lay.NumMessages())
	bar := common.NewBarrier(p.cfg.Threads)
	d := float32(damping)

	for it := 0; it < iterations; it++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if inv[v] == 0 {
				dangling += float64(rank[v])
				send[v] = 0
				continue
			}
			send[v] = rank[v] * inv[v]
		}
		common.RunThreads(p.cfg.Threads, func(tid int) {
			p.propagate(send, acc, bins, bar, tid)
		})
		restart := float32(1-damping) + d*float32(dangling)
		for v := 0; v < n; v++ {
			rank[v] = restart*teleport[v] + d*acc[v]
			acc[v] = 0
		}
	}
	return rank, nil
}
