// Package algorithms implements the paper's future-work extensions (§6) on
// top of the HiPa substrate: sparse matrix-vector multiplication (SpMV),
// PageRank-Delta, and breadth-first search. Each algorithm reuses the
// hierarchical partitioning (internal/partition) and the compressed
// partition-centric layout (internal/layout) with persistent pinned-style
// worker threads, exactly as the HiPa PageRank engine does.
package algorithms

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/partition"
)

// Config configures the parallel substrate for the algorithms.
type Config struct {
	// Threads is the number of worker threads (0 = GOMAXPROCS).
	Threads int
	// PartitionBytes is the cache-able partition size (0 = 256KB).
	PartitionBytes int
	// NumNodes is the number of NUMA nodes to partition for (0 = 2).
	NumNodes int
}

func (c Config) withDefaults(n int) Config {
	if c.Threads == 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.PartitionBytes == 0 {
		c.PartitionBytes = 256 << 10
	}
	if c.NumNodes == 0 {
		c.NumNodes = 2
	}
	// Clamp to the vertex count first, then round to a node multiple (one
	// partition group per thread, evenly over nodes) with a floor of one
	// thread per node — the rounding must come last so the thread count
	// always equals the group count.
	if c.Threads > n {
		c.Threads = n
	}
	if c.Threads < c.NumNodes {
		c.Threads = c.NumNodes
	}
	c.Threads = (c.Threads / c.NumNodes) * c.NumNodes
	return c
}

// prepared bundles the HiPa substrate for one graph.
type prepared struct {
	g    *graph.Graph
	hier *partition.Hierarchy
	lay  *layout.Layout
	cfg  Config
}

func prepare(g *graph.Graph, cfg Config) (*prepared, error) {
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("algorithms: empty graph")
	}
	cfg = cfg.withDefaults(g.NumVertices())
	hier, err := partition.Build(g, partition.Config{
		PartitionBytes: cfg.PartitionBytes,
		BytesPerVertex: 4,
		NumNodes:       cfg.NumNodes,
		GroupsPerNode:  cfg.Threads / cfg.NumNodes,
	})
	if err != nil {
		return nil, err
	}
	lay, err := layout.Build(g, hier, true)
	if err != nil {
		return nil, err
	}
	return &prepared{g: g, hier: hier, lay: lay, cfg: cfg}, nil
}

// propagate computes y[v] = Σ_{u→v} x[u] with the partition-centric
// scatter-gather: each thread scatters its own partitions' compressed
// messages and intra-edges, then gathers the messages targeting its
// partitions. y must be zeroed; x and y may not alias.
func (p *prepared) propagate(x, y []float32, bins []float32, bar *common.Barrier, tid int) {
	gr := p.hier.Groups[tid]
	lay := p.lay
	// Scatter.
	for pi := gr.PartStart; pi < gr.PartEnd; pi++ {
		part := p.hier.Partitions[pi]
		for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
			xv := x[v]
			if xv == 0 {
				continue
			}
			for _, d := range lay.IntraDst[lay.IntraOff[v]:lay.IntraOff[v+1]] {
				y[d] += xv
			}
		}
		for bi := lay.SrcBlockStart[pi]; bi < lay.SrcBlockEnd[pi]; bi++ {
			b := lay.Blocks[bi]
			for m := b.MsgStart; m < b.MsgEnd; m++ {
				bins[m] = x[lay.MsgSrc[m]]
			}
		}
	}
	bar.Wait()
	// Gather.
	for pi := gr.PartStart; pi < gr.PartEnd; pi++ {
		for _, bi := range lay.DstBlocks[pi] {
			b := lay.Blocks[bi]
			for m := b.MsgStart; m < b.MsgEnd; m++ {
				val := bins[m]
				if val == 0 {
					continue
				}
				for _, d := range lay.MsgDst[lay.MsgDstOff[m]:lay.MsgDstOff[m+1]] {
					y[d] += val
				}
			}
		}
	}
	bar.Wait()
}

// SpMV computes y = A^T·x where A is the graph's adjacency matrix with unit
// weights: y[v] = Σ_{u→v} x[u]. This is the kernel the paper identifies as
// the generalisation of PageRank ("the computation of PageRank can be
// interpreted as iterative sparse matrix-vector multiplications", §1).
func SpMV(g *graph.Graph, x []float32, cfg Config) ([]float32, error) {
	if len(x) != g.NumVertices() {
		return nil, fmt.Errorf("algorithms: x has %d entries for %d vertices", len(x), g.NumVertices())
	}
	p, err := prepare(g, cfg)
	if err != nil {
		return nil, err
	}
	y := make([]float32, len(x))
	bins := make([]float32, p.lay.NumMessages())
	bar := common.NewBarrier(p.cfg.Threads)
	common.RunThreads(p.cfg.Threads, func(tid int) {
		p.propagate(x, y, bins, bar, tid)
	})
	return y, nil
}

// SpMVIterate applies y ← A^T·y k times (power iteration without
// normalisation), returning the final vector. Useful for k-hop counts.
func SpMVIterate(g *graph.Graph, x []float32, k int, cfg Config) ([]float32, error) {
	if k < 0 {
		return nil, fmt.Errorf("algorithms: negative iteration count %d", k)
	}
	cur := append([]float32(nil), x...)
	for i := 0; i < k; i++ {
		next, err := SpMV(g, cur, cfg)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// DeltaOptions configures PageRankDelta.
type DeltaOptions struct {
	Config
	// Damping factor (0 = 0.85).
	Damping float64
	// Epsilon is the minimum |delta| for a vertex to propagate; 0 makes
	// the computation exactly equal to standard PageRank.
	Epsilon float64
	// MaxIterations bounds the run (0 = 20).
	MaxIterations int
}

// DeltaResult reports the outcome of PageRankDelta.
type DeltaResult struct {
	Ranks      []float32
	Iterations int
	// ActiveHistory records the number of delta-propagating vertices per
	// iteration; with Epsilon > 0 it shrinks as the computation converges.
	ActiveHistory []int
}

// PageRankDelta computes PageRank incrementally: each iteration propagates
// only the rank *changes* (deltas) of vertices whose delta exceeds Epsilon,
// the standard delta-optimisation the paper lists as future work (§6). With
// Epsilon = 0 the result equals standard PageRank after the same number of
// iterations.
//
// This is the reference (serial recurrence) form; the registered engine
// form — partitioned, pinned, warm-startable from a versioned-graph delta —
// lives in internal/engines/delta and keeps the same recurrence.
func PageRankDelta(g *graph.Graph, o DeltaOptions) (*DeltaResult, error) {
	p, err := prepare(g, o.Config)
	if err != nil {
		return nil, err
	}
	if o.Damping == 0 {
		o.Damping = common.DefaultDamping
	}
	if o.Damping <= 0 || o.Damping >= 1 {
		return nil, fmt.Errorf("algorithms: damping %g out of (0,1)", o.Damping)
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = common.DefaultIterations
	}
	if o.Epsilon < 0 {
		return nil, fmt.Errorf("algorithms: negative epsilon")
	}

	n := g.NumVertices()
	d := float32(o.Damping)
	inv := common.InvOutDegrees(g)

	// rank starts at the PageRank iteration's fixed offset; delta carries
	// the mass movement. Iteration i of standard PR corresponds to:
	//   rank_i(v) = rank_{i-1}(v) + delta_i(v)
	// with delta_0 = 1/n (the initial mass), and
	//   delta_{i+1}(v) = d·( Σ_{u→v} delta_i(u)/outdeg(u) + S_i/n )
	//                  + [i == 0]·((1-d)/n - 1/n + ...)
	// We implement the equivalent accumulation form: rank = Σ contributions.
	rank := make([]float32, n)
	delta := make([]float32, n)
	send := make([]float32, n) // delta_i(u)/outdeg(u), gated by epsilon
	acc := make([]float32, n)
	base := float32((1 - o.Damping) / float64(n))
	init := float32(1.0 / float64(n))
	for v := range rank {
		rank[v] = init
		delta[v] = init
	}

	res := &DeltaResult{}
	bins := make([]float32, p.lay.NumMessages())
	bar := common.NewBarrier(p.cfg.Threads)
	eps := float32(o.Epsilon)

	for it := 0; it < o.MaxIterations; it++ {
		active := 0
		var danglingDelta float64
		for v := 0; v < n; v++ {
			dv := delta[v]
			ad := dv
			if ad < 0 {
				ad = -ad
			}
			if inv[v] == 0 {
				danglingDelta += float64(dv)
				send[v] = 0
				continue
			}
			if ad > eps {
				send[v] = dv * inv[v]
				active++
			} else {
				send[v] = 0
			}
		}
		res.ActiveHistory = append(res.ActiveHistory, active)
		if active == 0 && danglingDelta == 0 {
			break
		}
		common.RunThreads(p.cfg.Threads, func(tid int) {
			p.propagate(send, acc, bins, bar, tid)
		})
		redis := d * float32(danglingDelta/float64(n))
		for v := 0; v < n; v++ {
			nd := d*acc[v] + redis
			if it == 0 {
				// First iteration: the rank formula replaces the uniform
				// initial mass with base + propagated mass.
				nd += base - init
			}
			delta[v] = nd
			rank[v] += nd
			acc[v] = 0
		}
		res.Iterations++
	}
	res.Ranks = rank
	return res, nil
}

// BFSResult reports a breadth-first search.
type BFSResult struct {
	// Levels[v] is the BFS depth of v, or -1 if unreachable.
	Levels []int32
	// Parents[v] is the BFS tree parent, or the vertex itself for the
	// source, or undefined for unreachable vertices.
	Parents []graph.VertexID
	// Visited is the number of reached vertices.
	Visited int
}

// BFS runs a level-synchronous parallel breadth-first search from source,
// with threads working over the hierarchical partitions (the paper's §6
// extension). Parent updates use compare-and-swap; the resulting levels are
// deterministic (parents may vary between runs within a level).
func BFS(g *graph.Graph, source graph.VertexID, cfg Config) (*BFSResult, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("algorithms: empty graph")
	}
	if int(source) >= n {
		return nil, fmt.Errorf("algorithms: source %d out of range [0,%d)", source, n)
	}
	p, err := prepare(g, cfg)
	if err != nil {
		return nil, err
	}
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	parents := make([]int32, n)
	for i := range parents {
		parents[i] = -1
	}
	levels[source] = 0
	parents[source] = int32(source)

	frontier := []graph.VertexID{source}
	visited := 1
	off := g.OutOffsets()
	adj := g.OutEdges()
	var nextCount atomic.Int64
	for depth := int32(1); len(frontier) > 0; depth++ {
		// Split the frontier across threads; collect next frontier
		// per-thread then concatenate (deterministic levels, parent CAS).
		parts := make([][]graph.VertexID, p.cfg.Threads)
		nextCount.Store(0)
		common.RunThreads(p.cfg.Threads, func(tid int) {
			lo := len(frontier) * tid / p.cfg.Threads
			hi := len(frontier) * (tid + 1) / p.cfg.Threads
			var next []graph.VertexID
			for _, u := range frontier[lo:hi] {
				for _, v := range adj[off[u]:off[u+1]] {
					if atomic.LoadInt32(&parents[v]) != -1 {
						continue
					}
					if atomic.CompareAndSwapInt32(&parents[v], -1, int32(u)) {
						levels[v] = depth
						next = append(next, v)
					}
				}
			}
			parts[tid] = next
			nextCount.Add(int64(len(next)))
		})
		frontier = frontier[:0]
		for _, part := range parts {
			frontier = append(frontier, part...)
		}
		visited += len(frontier)
	}

	out := &BFSResult{
		Levels:  levels,
		Parents: make([]graph.VertexID, n),
		Visited: visited,
	}
	for i, pr := range parents {
		if pr >= 0 {
			out.Parents[i] = graph.VertexID(pr)
		}
	}
	return out, nil
}
