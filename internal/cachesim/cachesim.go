// Package cachesim implements a trace-driven, set-associative, LRU cache
// hierarchy simulator: private L1 and L2 per physical core (shared by the
// core's two hyper-threads) and a shared per-node last-level cache, with
// both inclusive (Haswell) and non-inclusive/victim (Skylake) LLC policies.
//
// It substitutes for the hardware cache performance counters the paper reads
// (LLC hits and hit ratios, Fig. 7): engines replay their memory reference
// streams through a System and read the counters back. The simulator is the
// exact model; the fast analytic model in internal/perfmodel is
// cross-validated against it in tests.
//
// A System is not safe for concurrent use; drive it from one goroutine.
package cachesim

import (
	"fmt"

	"hipa/internal/machine"
)

// Level identifies where an access was satisfied.
type Level int

const (
	// HitL1 means the line was found in the private L1.
	HitL1 Level = iota
	// HitL2 means the line was found in the private L2.
	HitL2
	// HitLLC means the line was found in the node's shared LLC.
	HitLLC
	// Memory means all cache levels missed.
	Memory
)

// String returns the conventional level name.
func (l Level) String() string {
	switch l {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitLLC:
		return "LLC"
	default:
		return "MEM"
	}
}

// cache is one set-associative LRU cache. Tags are stored as tag+1 so the
// zero value means invalid.
type cache struct {
	sets     int
	assoc    int
	lineBits uint
	setMask  uint64
	tags     []uint64 // sets*assoc entries, tag+1, 0 = invalid
	stamps   []uint64 // LRU timestamps, parallel to tags
	clock    uint64

	hits, misses uint64
}

func newCache(c machine.Cache) *cache {
	sets := c.Sets()
	lineBits := uint(0)
	for 1<<lineBits < c.LineBytes {
		lineBits++
	}
	return &cache{
		sets:     sets,
		assoc:    c.Assoc,
		lineBits: lineBits,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*c.Assoc),
		stamps:   make([]uint64, sets*c.Assoc),
	}
}

// lineOf maps an address to its line number.
func (c *cache) lineOf(addr uint64) uint64 { return addr >> c.lineBits }

// setIndex maps a line to its set. Sets counts are powers of two for the
// presets; for non-power-of-two set counts we fall back to modulo.
func (c *cache) setIndex(line uint64) int {
	if c.sets&(c.sets-1) == 0 {
		return int(line & c.setMask)
	}
	return int(line % uint64(c.sets))
}

// lookup probes for the line; on hit it refreshes LRU state.
func (c *cache) lookup(line uint64) bool {
	base := c.setIndex(line) * c.assoc
	stored := line + 1
	for i := 0; i < c.assoc; i++ {
		if c.tags[base+i] == stored {
			c.clock++
			c.stamps[base+i] = c.clock
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// insert places the line, evicting the LRU way if needed. It returns the
// evicted line and whether an eviction of a valid line occurred.
func (c *cache) insert(line uint64) (victim uint64, evicted bool) {
	base := c.setIndex(line) * c.assoc
	stored := line + 1
	// Already present (e.g. refilled by a sibling path): refresh only.
	for i := 0; i < c.assoc; i++ {
		if c.tags[base+i] == stored {
			c.clock++
			c.stamps[base+i] = c.clock
			return 0, false
		}
	}
	// Free way?
	lruIdx, lruStamp := -1, ^uint64(0)
	for i := 0; i < c.assoc; i++ {
		if c.tags[base+i] == 0 {
			c.clock++
			c.tags[base+i] = stored
			c.stamps[base+i] = c.clock
			return 0, false
		}
		if c.stamps[base+i] < lruStamp {
			lruStamp = c.stamps[base+i]
			lruIdx = i
		}
	}
	victim = c.tags[base+lruIdx] - 1
	c.clock++
	c.tags[base+lruIdx] = stored
	c.stamps[base+lruIdx] = c.clock
	return victim, true
}

// invalidate removes the line if present.
func (c *cache) invalidate(line uint64) {
	base := c.setIndex(line) * c.assoc
	stored := line + 1
	for i := 0; i < c.assoc; i++ {
		if c.tags[base+i] == stored {
			c.tags[base+i] = 0
			return
		}
	}
}

// contains probes without touching LRU or counters (for invariant checks).
func (c *cache) contains(line uint64) bool {
	base := c.setIndex(line) * c.assoc
	stored := line + 1
	for i := 0; i < c.assoc; i++ {
		if c.tags[base+i] == stored {
			return true
		}
	}
	return false
}

// Stats holds hit/miss counters for one cache level aggregated over the
// system.
type Stats struct {
	Hits, Misses uint64
}

// Ratio returns Hits / (Hits + Misses), or 0 when no accesses occurred.
func (s Stats) Ratio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// System simulates the cache hierarchy of a machine.
type System struct {
	mach      *machine.Machine
	l1        []*cache // per physical core
	l2        []*cache // per physical core
	llc       []*cache // per node
	inclusive bool
	lineBytes int
}

// NewSystem builds a cache system for m.
func NewSystem(m *machine.Machine) *System {
	if err := m.Validate(); err != nil {
		panic("cachesim: " + err.Error())
	}
	s := &System{
		mach:      m,
		inclusive: m.LLCInclusive,
		lineBytes: m.L1.LineBytes,
	}
	for i := 0; i < m.PhysicalCores(); i++ {
		s.l1 = append(s.l1, newCache(m.L1))
		s.l2 = append(s.l2, newCache(m.L2))
	}
	for i := 0; i < m.NUMANodes; i++ {
		s.llc = append(s.llc, newCache(m.LLC))
	}
	return s
}

// LineBytes returns the cache line size.
func (s *System) LineBytes() int { return s.lineBytes }

// Access simulates one memory reference by the given logical core and
// returns the level that satisfied it. addr is a byte address in the
// simulated address space.
func (s *System) Access(logical int, addr uint64) Level {
	phys := s.mach.PhysicalOfLogical(logical)
	node := s.mach.NodeOfLogical(logical)
	l1, l2, llc := s.l1[phys], s.l2[phys], s.llc[node]
	line := l1.lineOf(addr)

	if l1.lookup(line) {
		return HitL1
	}
	if l2.lookup(line) {
		// Promote to L1.
		s.fillL1(phys, line)
		return HitL2
	}
	if llc.lookup(line) {
		s.fillL2(phys, node, line)
		s.fillL1(phys, line)
		if !s.inclusive {
			// Non-inclusive/victim LLC: the line moves up; drop it from LLC
			// so capacity is not duplicated (Skylake behaviour).
			llc.invalidate(line)
		}
		return HitLLC
	}
	// Memory fill.
	if s.inclusive {
		// Inclusive: fill LLC too; LLC evictions back-invalidate L1/L2 of
		// every core on the node.
		if victim, ev := llc.insert(line); ev {
			s.backInvalidate(node, victim)
		}
	}
	// Non-inclusive Skylake: memory fills go straight to L2/L1; the LLC is
	// populated by L2 victims (handled in fillL2).
	s.fillL2(phys, node, line)
	s.fillL1(phys, line)
	return Memory
}

func (s *System) fillL1(phys int, line uint64) {
	s.l1[phys].insert(line) // L1 victims are clean drops in this model
}

func (s *System) fillL2(phys, node int, line uint64) {
	victim, ev := s.l2[phys].insert(line)
	if !ev {
		return
	}
	// The L2 victim may still be in L1; keep L1 coherent with the model's
	// simple exclusive-above-L2 assumption by dropping it.
	s.l1[phys].invalidate(victim)
	if !s.inclusive {
		// Victim cache behaviour: evicted L2 lines land in the LLC.
		if llcVictim, llcEv := s.llc[node].insert(victim); llcEv {
			_ = llcVictim // clean drop to memory
		}
	}
}

func (s *System) backInvalidate(node int, line uint64) {
	first := node * s.mach.CoresPerNode
	for p := first; p < first+s.mach.CoresPerNode; p++ {
		s.l1[p].invalidate(line)
		s.l2[p].invalidate(line)
	}
}

// L1Stats returns aggregate L1 counters.
func (s *System) L1Stats() Stats { return sumStats(s.l1) }

// L2Stats returns aggregate L2 counters.
func (s *System) L2Stats() Stats { return sumStats(s.l2) }

// LLCStats returns aggregate LLC counters.
func (s *System) LLCStats() Stats { return sumStats(s.llc) }

func sumStats(cs []*cache) Stats {
	var st Stats
	for _, c := range cs {
		st.Hits += c.hits
		st.Misses += c.misses
	}
	return st
}

// Reset clears all cache contents and counters.
func (s *System) Reset() {
	for i := range s.l1 {
		s.l1[i] = newCache(s.mach.L1)
		s.l2[i] = newCache(s.mach.L2)
	}
	for i := range s.llc {
		s.llc[i] = newCache(s.mach.LLC)
	}
}

// CheckInclusion verifies the inclusive-LLC invariant (every valid L2 line
// is present in its node's LLC). It returns an error naming the first
// violation and is intended for tests; it is a no-op for non-inclusive
// systems.
func (s *System) CheckInclusion() error {
	if !s.inclusive {
		return nil
	}
	for p, l2 := range s.l2 {
		node := p / s.mach.CoresPerNode
		for _, t := range l2.tags {
			if t == 0 {
				continue
			}
			if !s.llc[node].contains(t - 1) {
				return fmt.Errorf("cachesim: L2 of core %d holds line %d absent from node %d LLC", p, t-1, node)
			}
		}
	}
	return nil
}
