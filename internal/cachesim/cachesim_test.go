package cachesim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hipa/internal/machine"
)

// tinyMachine returns a machine with very small caches so eviction paths are
// exercised quickly: 2 nodes x 2 cores x 2 HT, 256B L1, 1KB L2, 4KB LLC.
func tinyMachine(inclusive bool) *machine.Machine {
	m := &machine.Machine{
		Name: "tiny", Microarch: "test",
		NUMANodes: 2, CoresPerNode: 2, ThreadsPerCore: 2,
		L1:             machine.Cache{SizeBytes: 256, LineBytes: 64, Assoc: 2, LatencyNS: 1},
		L2:             machine.Cache{SizeBytes: 1024, LineBytes: 64, Assoc: 4, LatencyNS: 4},
		LLC:            machine.Cache{SizeBytes: 4096, LineBytes: 64, Assoc: 4, LatencyNS: 16},
		LLCInclusive:   inclusive,
		DRAMBytes:      1 << 30,
		LocalLatencyNS: 80, RemoteLatencyNS: 140,
		LocalBandwidth: 16e9, RemoteBandwidth: 2.5e9, NodeBandwidth: 60e9,
		InterconnectGBps: 20, ThreadMigrationNS: 1000, ThreadSpawnNS: 100, SyncBarrierNS: 50,
		CPUGHz: 2,
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

func TestColdMissThenHit(t *testing.T) {
	s := NewSystem(tinyMachine(false))
	if lv := s.Access(0, 0x1000); lv != Memory {
		t.Fatalf("first access = %v, want MEM", lv)
	}
	if lv := s.Access(0, 0x1000); lv != HitL1 {
		t.Fatalf("second access = %v, want L1", lv)
	}
	// Same line, different byte.
	if lv := s.Access(0, 0x1004); lv != HitL1 {
		t.Fatalf("same-line access = %v, want L1", lv)
	}
	// Different line.
	if lv := s.Access(0, 0x1040); lv != Memory {
		t.Fatalf("next-line access = %v, want MEM", lv)
	}
}

func TestHyperThreadsSharePrivateCaches(t *testing.T) {
	s := NewSystem(tinyMachine(false))
	s.Access(0, 0x2000) // logical 0 warms the line
	// Logical 1 is the HT sibling on the same physical core: must hit L1.
	if lv := s.Access(1, 0x2000); lv != HitL1 {
		t.Fatalf("sibling access = %v, want L1", lv)
	}
	// Logical 2 is a different physical core: must miss private caches.
	if lv := s.Access(2, 0x2000); lv == HitL1 || lv == HitL2 {
		t.Fatalf("other-core access = %v, want LLC or MEM", lv)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	s := NewSystem(tinyMachine(false))
	// L1: 256B, 64B lines, 2-way => 2 sets. Fill set 0 beyond capacity.
	// Lines 0, 2, 4 all map to set 0 (line number even).
	s.Access(0, 0*64)
	s.Access(0, 2*64)
	s.Access(0, 4*64) // evicts line 0 from L1; still in L2
	if lv := s.Access(0, 0*64); lv != HitL2 {
		t.Fatalf("evicted-from-L1 access = %v, want L2", lv)
	}
}

func TestNonInclusiveVictimLLC(t *testing.T) {
	s := NewSystem(tinyMachine(false))
	// L2 is 1KB/4-way/64B => 4 sets. Lines that map to L2 set 0: multiples
	// of 4. Fill 5 such lines: line 0 gets evicted from L2 into LLC.
	for i := 0; i < 5; i++ {
		s.Access(0, uint64(i*4*64))
	}
	// Line 0 must now be an LLC hit (victim cache), not memory.
	if lv := s.Access(0, 0); lv != HitLLC {
		t.Fatalf("victim access = %v, want LLC", lv)
	}
	// And after the LLC hit it moved back up; LLC no longer holds it
	// (non-inclusive move), so a sweep of L1+L2 then re-access goes to MEM
	// only after eviction again. Direct re-access is an L1 hit:
	if lv := s.Access(0, 0); lv != HitL1 {
		t.Fatalf("promoted access = %v, want L1", lv)
	}
}

func TestInclusiveLLCInvariant(t *testing.T) {
	s := NewSystem(tinyMachine(true))
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 20000; i++ {
		core := rng.IntN(8)
		addr := uint64(rng.IntN(1 << 14))
		s.Access(core, addr)
		if i%1000 == 0 {
			if err := s.CheckInclusion(); err != nil {
				t.Fatalf("after %d accesses: %v", i, err)
			}
		}
	}
	if err := s.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	m := tinyMachine(true)
	s := NewSystem(m)
	// Warm a line on core 0.
	s.Access(0, 0)
	// Thrash the LLC from another core on the same node until the line is
	// evicted from the LLC; the back-invalidation must purge core 0's L1/L2.
	// LLC: 4KB/4-way/64B => 16 sets; line 0 maps to set 0; lines that map to
	// set 0 are multiples of 16 lines (1024B).
	for i := 1; i <= 4; i++ {
		s.Access(2, uint64(i*16*64)) // logical 2 = physical 1, same node 0
	}
	// Line 0 should have been evicted from LLC (LRU among 5 candidates) and
	// back-invalidated everywhere.
	if lv := s.Access(0, 0); lv != Memory {
		t.Fatalf("access after back-invalidation = %v, want MEM", lv)
	}
}

func TestLLCSharedPerNode(t *testing.T) {
	s := NewSystem(tinyMachine(false))
	// Core 0 (node 0) evicts a line into LLC; core 2 (physical 1, node 0)
	// should hit it in LLC. Core on node 1 should not.
	for i := 0; i < 5; i++ {
		s.Access(0, uint64(i*4*64))
	}
	if lv := s.Access(2, 0); lv != HitLLC {
		t.Fatalf("same-node other-core = %v, want LLC", lv)
	}
	s2 := NewSystem(tinyMachine(false))
	for i := 0; i < 5; i++ {
		s2.Access(0, uint64(i*4*64))
	}
	if lv := s2.Access(4, 0); lv != Memory { // logical 4 = node 1
		t.Fatalf("cross-node access = %v, want MEM (separate LLC)", lv)
	}
}

func TestLRUOrder(t *testing.T) {
	s := NewSystem(tinyMachine(false))
	// L1 set 0 holds 2 ways. Touch A, B, then A again; insert C: B must be
	// the LRU victim, so A stays in L1.
	A, B, C := uint64(0*128), uint64(1*128), uint64(2*128) // all even lines -> L1 set 0
	s.Access(0, A)
	s.Access(0, B)
	s.Access(0, A) // refresh A
	s.Access(0, C) // evict B
	if lv := s.Access(0, A); lv != HitL1 {
		t.Fatalf("A = %v, want L1 (B should have been the LRU victim)", lv)
	}
	if lv := s.Access(0, B); lv == HitL1 {
		t.Fatal("B should have been evicted from L1")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := NewSystem(tinyMachine(false))
	s.Access(0, 0)
	s.Access(0, 0)
	s.Access(0, 0)
	l1 := s.L1Stats()
	if l1.Hits != 2 || l1.Misses != 1 {
		t.Fatalf("L1 stats = %+v, want 2 hits 1 miss", l1)
	}
	if r := l1.Ratio(); r < 0.66 || r > 0.67 {
		t.Errorf("ratio = %f", r)
	}
	var zero Stats
	if zero.Ratio() != 0 {
		t.Error("zero stats ratio should be 0")
	}
}

func TestReset(t *testing.T) {
	s := NewSystem(tinyMachine(false))
	s.Access(0, 0)
	s.Reset()
	if st := s.L1Stats(); st.Hits+st.Misses != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if lv := s.Access(0, 0); lv != Memory {
		t.Fatal("Reset did not clear contents")
	}
}

// Property: working sets that fit in L1 never miss after the first sweep.
func TestPropertySmallWorkingSetStaysInL1(t *testing.T) {
	f := func(seed uint64) bool {
		s := NewSystem(tinyMachine(false))
		rng := rand.New(rand.NewPCG(seed, 7))
		// 4 distinct lines spread across both L1 sets: 2 even, 2 odd.
		addrs := []uint64{0, 64, 128, 192}
		for _, a := range addrs {
			s.Access(0, a)
		}
		for i := 0; i < 200; i++ {
			a := addrs[rng.IntN(len(addrs))]
			if s.Access(0, a) != HitL1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: hit+miss counts at L1 equal total accesses.
func TestPropertyCountsBalance(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		s := NewSystem(tinyMachine(seed%2 == 0))
		rng := rand.New(rand.NewPCG(seed, 13))
		for i := 0; i < n; i++ {
			s.Access(rng.IntN(8), uint64(rng.IntN(1<<15)))
		}
		st := s.L1Stats()
		return st.Hits+st.Misses == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSkylakePresetGeometry(t *testing.T) {
	s := NewSystem(machine.SkylakeSilver4210())
	// Sequential sweep of 2MB from one core: after the sweep, re-sweeping
	// the last 512KB should hit in L2 (1MB capacity).
	const mb = 1 << 20
	for a := uint64(0); a < 2*mb; a += 64 {
		s.Access(0, a)
	}
	hits := 0
	total := 0
	for a := uint64(2*mb - 512*1024); a < 2*mb; a += 64 {
		lv := s.Access(0, a)
		total++
		if lv == HitL1 || lv == HitL2 {
			hits++
		}
	}
	if float64(hits)/float64(total) < 0.95 {
		t.Errorf("recent 512KB only %d/%d in private caches", hits, total)
	}
}

func TestLevelString(t *testing.T) {
	for lv, want := range map[Level]string{HitL1: "L1", HitL2: "L2", HitLLC: "LLC", Memory: "MEM"} {
		if lv.String() != want {
			t.Errorf("%d.String() = %q, want %q", lv, lv.String(), want)
		}
	}
}
