package platform

import (
	"fmt"

	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/partition"
	"hipa/internal/perfmodel"
)

// Cycle cost constants for the analytic model. They set the compute
// component of the estimate (absolute scale); the memory components come
// from the machine parameters.
const (
	// CyclesPerEdge covers the add/multiply plus index arithmetic of one
	// edge traversal.
	CyclesPerEdge = 5.0
	// CyclesPerMessage covers encoding/decoding one compressed inter-edge
	// message.
	CyclesPerMessage = 4.0
	// CyclesPerVertex covers the per-vertex rank recomputation.
	CyclesPerVertex = 10.0
	// AtomicPenaltyCycles is the extra cost of an atomic read-modify-write
	// on a contended line (the Polymer-style frameworks' push updates).
	AtomicPenaltyCycles = 12.0
	// WorkingSetSlack scales a partition's vertex bytes to its full cache
	// working set: vertex subset + resident part of the edge subset + the
	// scatter buffer must co-reside in L2 (§4.5: "the size of a vertex
	// subset is supposed to be smaller than the L2 cache size, so that the
	// edge subset and buffer are co-located").
	WorkingSetSlack = 1.5
	// FCFSWorkingSetSlack is the working-set factor for first-come-first-
	// serve partition processing: threads hop across non-contiguous
	// partitions and keep more live bin pages resident than HiPa's pinned
	// threads over the contiguous per-group layout (§3.4), so their
	// resident set per partition is larger. This is the mechanism behind
	// the oblivious engines' degradation beyond the physical core count
	// (Fig. 6).
	FCFSWorkingSetSlack = 2.25
)

// Accounting accumulates per-thread memory and compute events against a
// pool's placement. A zero Accounting (from the Native platform) ignores
// every call: the engines account unconditionally and pay only a nil test.
//
// Engines feed it either with the aggregate run descriptions
// (AddPartitionRun / AddVertexRun — event counts driven by the real layout)
// or with the fine-grained Account* primitives.
type Accounting struct {
	m      *machine.Machine // nil => no-op (Native)
	nodes  []int
	shared []bool
	costs  []perfmodel.ThreadCost

	barriers    int64
	schedCostNS float64

	// Random-access classification context, set by AddPartitionRun and used
	// by AccountRandom: the cached working set per thread.
	partBytes     int64
	slack         float64
	capBytes      int64
	threadsOnNode []int
}

// Enabled reports whether events are being recorded (false on Native).
func (a *Accounting) Enabled() bool { return a.m != nil }

// Costs exposes the accumulated per-thread costs — the perfmodel input
// Finalize prices. nil on Native.
func (a *Accounting) Costs() []perfmodel.ThreadCost { return a.costs }

// Barriers exposes the accumulated barrier count.
func (a *Accounting) Barriers() int64 { return a.barriers }

// AccountBarriers adds n barrier synchronisations to the run.
func (a *Accounting) AccountBarriers(n int64) {
	if a.m == nil {
		return
	}
	a.barriers += n
}

// AccountCompute adds raw compute cycles to thread t.
func (a *Accounting) AccountCompute(t int, cycles float64) {
	if a.m == nil {
		return
	}
	a.costs[t].ComputeCycles += cycles
}

// AccountAtomic adds the atomic read-modify-write penalty for count
// operations on thread t.
func (a *Accounting) AccountAtomic(t int, count int64) {
	if a.m == nil {
		return
	}
	a.costs[t].ComputeCycles += AtomicPenaltyCycles * float64(count)
}

// AccountRead classifies `bytes` of streamed reads by thread t against the
// node the data lives on (dataNode < 0 means interleaved).
func (a *Accounting) AccountRead(t int, dataNode int, bytes int64) {
	a.stream(t, dataNode, bytes)
}

// AccountWrite classifies `bytes` of streamed writes by thread t. Streamed
// reads and writes price identically in the bandwidth model; the two names
// keep call sites self-describing.
func (a *Accounting) AccountWrite(t int, dataNode int, bytes int64) {
	a.stream(t, dataNode, bytes)
}

// AccountRandom classifies `count` random accesses by thread t within its
// partition working set across L2/LLC/DRAM fractions. Requires the working-
// set context established by AddPartitionRun.
func (a *Accounting) AccountRandom(t int, dataNode int, count int64) {
	a.random(t, dataNode, count)
}

// stream splits bytes into local/remote for a thread given the node the
// data lives on (dataNode < 0 means interleaved).
func (a *Accounting) stream(t int, dataNode int, bytes int64) {
	if a.m == nil || bytes == 0 {
		return
	}
	c := &a.costs[t]
	if dataNode >= 0 {
		if dataNode == c.Node {
			c.StreamLocalBytes += bytes
		} else {
			c.StreamRemoteBytes += bytes
		}
		return
	}
	local := bytes / int64(a.m.NUMANodes)
	c.StreamLocalBytes += local
	c.StreamRemoteBytes += bytes - local
}

// random classifies count random accesses across L2/LLC/DRAM fractions
// using the partition working-set context.
func (a *Accounting) random(t int, dataNode int, count int64) {
	if a.m == nil || count == 0 {
		return
	}
	m := a.m
	c := &a.costs[t]
	fL2, fLLC, fDRAM := perfmodel.ClassifyPartitionRandom(m, a.partBytes, a.slack, c.PhysShared, a.threadsOnNode[c.Node], a.capBytes)
	c.L2Accesses += int64(float64(count) * fL2)
	c.LLCAccesses += int64(float64(count) * fLLC)
	dram := int64(float64(count) * fDRAM)
	if dram == 0 {
		return
	}
	if dataNode < 0 {
		local := dram / int64(m.NUMANodes)
		c.RandomLocal += local
		c.RandomRemote += dram - local
	} else if dataNode == c.Node {
		c.RandomLocal += dram
	} else {
		c.RandomRemote += dram
	}
}

// PartitionRun describes a partition-centric scatter-gather run (HiPa,
// p-PR, GPOP) for aggregate accounting.
type PartitionRun struct {
	Hier   *partition.Hierarchy
	Lay    *layout.Layout
	Lookup *partition.LookupTable

	// PartThread[p] is the thread that processes partition p (the pinned
	// assignment for HiPa, or the modelled average assignment for FCFS
	// engines).
	PartThread []int32

	// NUMAAware marks data placed on the owning node (HiPa); otherwise
	// arrays are effectively interleaved across nodes and a 1/NUMANodes
	// fraction of traffic is local.
	NUMAAware bool

	Iterations int
	// PartIters, when non-nil, overrides Iterations per partition: entry p is
	// the number of iterations partition p actually executed. Frontier-aware
	// engines pass their executed-iteration counters here so modelled traffic
	// scales with the active set instead of iters × verts; barrier counts
	// still use Iterations (the driver ran that many supersteps). Must have
	// one entry per partition when set.
	PartIters []int32
	// ExtraBytesPerPartition models per-partition framework state streamed
	// each phase (GPOP's Flags/State fields, §4.5).
	ExtraBytesPerPartition int64
	// ExtraCyclesPerEdge models framework bookkeeping on the edge path
	// (GPOP's generality layer; 0 for the hand-coded engines).
	ExtraCyclesPerEdge float64
	// WorkingSetSlack overrides the default WorkingSetSlack factor when
	// non-zero. Pinned threads over the contiguous per-group layout (§3.4)
	// keep a tight resident set (default 1.5×); FCFS threads hop across
	// non-contiguous partitions and keep more live bin pages resident, so
	// the oblivious engines pass FCFSWorkingSetSlack — this is the L2
	// contention that makes them degrade past the physical core count
	// (§3.3.1, Fig. 6).
	WorkingSetSlack float64
}

// AddPartitionRun classifies the memory events of a partition-centric
// scatter-gather run into the accumulators, plus the barrier count (three
// per iteration). Event counts are exact (driven by the real layout);
// placement classification is exact for NUMA-aware runs and expectation-
// based for interleaved ones. The placement comes from the pool the
// Accounting was opened on.
func (a *Accounting) AddPartitionRun(s PartitionRun) error {
	if a.m == nil {
		return nil
	}
	if len(a.nodes) == 0 {
		return fmt.Errorf("platform: no threads in accounting")
	}
	if len(s.PartThread) != s.Hier.NumPartitions() {
		return fmt.Errorf("platform: PartThread has %d entries for %d partitions", len(s.PartThread), s.Hier.NumPartitions())
	}
	if s.PartIters != nil && len(s.PartIters) != s.Hier.NumPartitions() {
		return fmt.Errorf("platform: PartIters has %d entries for %d partitions", len(s.PartIters), s.Hier.NumPartitions())
	}
	nThreads := len(a.nodes)
	m := a.m
	// LLC demand counts only *active* threads (those owning at least one
	// partition); a huge partition size can leave most threads idle.
	active := make([]bool, nThreads)
	for _, t := range s.PartThread {
		if int(t) >= 0 && int(t) < nThreads {
			active[t] = true
		}
	}
	threadsOnNode := make([]int, m.NUMANodes)
	for t, nd := range a.nodes {
		if active[t] {
			threadsOnNode[nd]++
		}
	}

	// Per-partition aggregates from the layout.
	P := s.Hier.NumPartitions()
	msgsOut := make([]int64, P)
	dstsOut := make([]int64, P)
	msgsIn := make([]int64, P)
	dstsIn := make([]int64, P)
	for _, b := range s.Lay.Blocks {
		nm := b.Messages()
		nd := s.Lay.MsgDstOff[b.MsgEnd] - s.Lay.MsgDstOff[b.MsgStart]
		msgsOut[b.SrcPart] += nm
		dstsOut[b.SrcPart] += nd
		msgsIn[b.DstPart] += nm
		dstsIn[b.DstPart] += nd
	}

	slack := s.WorkingSetSlack
	if slack == 0 {
		slack = WorkingSetSlack
	}
	// Establish the random-access classification context for this run (also
	// used by any subsequent AccountRandom calls).
	a.partBytes = int64(s.Hier.VerticesPerPartition * s.Hier.Config.BytesPerVertex)
	a.slack = slack
	// The aggregate LLC demand can never exceed the per-node footprint of
	// the vertex attribute arrays (rank + accumulator); without this cap
	// the model overstates DRAM spill for large partitions on small graphs
	// (cross-checked against the exact simulator in internal/validate).
	a.capBytes = int64(s.Hier.NumVertices) * int64(s.Hier.Config.BytesPerVertex) * 2 / int64(m.NUMANodes)
	a.threadsOnNode = threadsOnNode

	iters := int64(s.Iterations)
	vb := int64(s.Hier.Config.BytesPerVertex)
	for p := 0; p < P; p++ {
		t := int(s.PartThread[p])
		if t < 0 || t >= nThreads {
			return fmt.Errorf("platform: partition %d assigned to thread %d of %d", p, t, nThreads)
		}
		// A frontier-aware run charges each partition only the iterations it
		// actually executed: a pruned partition stops generating traffic.
		itersP := iters
		if s.PartIters != nil {
			itersP = int64(s.PartIters[p])
		}
		part := s.Hier.Partitions[p]
		vp := int64(part.Vertices())
		intra := s.Lay.IntraOff[part.VertexEnd] - s.Lay.IntraOff[part.VertexStart]

		// Where p's data lives: its own node when NUMA-aware, interleaved
		// otherwise.
		dataNode := -1
		if s.NUMAAware {
			dataNode = int(s.Lookup.PartNode[p])
		}

		// --- Scatter phase (per iteration) ---
		// Stream: rank slice, intra-edge structure, message sources.
		a.stream(t, dataNode, itersP*(vp*vb+intra*4+msgsOut[p]*4))
		// Bin writes: bins live with the *destination* partition when
		// NUMA-aware, so cross-node messages are the remote traffic of the
		// scatter phase (Fig. 1's "node 2 sends out updated data").
		if s.NUMAAware {
			for bi := s.Lay.SrcBlockStart[p]; bi < s.Lay.SrcBlockEnd[p]; bi++ {
				b := s.Lay.Blocks[bi]
				a.stream(t, int(s.Lookup.PartNode[b.DstPart]), itersP*b.Messages()*4)
			}
		} else {
			a.stream(t, -1, itersP*msgsOut[p]*4)
		}
		// Random: intra-edge accumulator updates stay inside the cached
		// partition.
		a.random(t, dataNode, itersP*intra)

		// --- Gather phase (per iteration) ---
		// Stream: bins targeting q (local when NUMA-aware), destination
		// lists, rank recompute (read accumulator + write rank).
		a.stream(t, dataNode, itersP*(msgsIn[p]*4+dstsIn[p]*4+vp*vb*2))
		// Random: decoded destination updates within the cached partition.
		a.random(t, dataNode, itersP*dstsIn[p])

		// Framework per-partition state (GPOP), streamed each phase.
		if s.ExtraBytesPerPartition > 0 {
			a.stream(t, -1, itersP*2*s.ExtraBytesPerPartition)
		}

		// Compute.
		a.costs[t].ComputeCycles += float64(itersP) * ((CyclesPerEdge+s.ExtraCyclesPerEdge)*float64(intra+dstsIn[p]) +
			CyclesPerVertex*2*float64(vp) +
			CyclesPerMessage*float64(msgsOut[p]+msgsIn[p]))
	}
	// Three barriers per iteration: after scatter, after gather, after the
	// dangling-mass reduction. The driver runs every superstep over the full
	// pool, so barriers scale with Iterations even under pruning.
	a.barriers += iters * 3
	return nil
}

// BatchRun describes a blocked (rank-B) partition-centric scatter-gather
// run — the batched personalized-PageRank engine — for aggregate
// accounting. Its traffic shape differs structurally from PartitionRun:
// there is no bins array (the gather decodes messages by reading source
// rank blocks directly), graph structure is streamed once per superstep
// regardless of the batch width, and all per-rank traffic scales with the
// *active* column count, which per-column convergence shrinks over time.
type BatchRun struct {
	Hier   *partition.Hierarchy
	Lay    *layout.Layout
	Lookup *partition.LookupTable

	// PartThread[p] is the pinned thread of partition p.
	PartThread []int32
	// NUMAAware marks data placed on the owning node (the batched engine
	// always pins; the field mirrors PartitionRun for symmetry).
	NUMAAware bool

	// Supersteps is the number of driver iterations executed (structure
	// streams and barriers scale with it).
	Batch      int
	Supersteps int
	// ColSteps is Σ over supersteps of the active column count — the factor
	// of all per-column streamed traffic and compute.
	ColSteps int64
	// LineSteps is Σ over supersteps of ceil(active*4/64) — how many 64-byte
	// lines one vertex's rank block spans at the active width, the factor of
	// all line-granular (random and message-payload) traffic.
	LineSteps int64
}

// AddBatchRun classifies the memory events of a blocked scatter-gather run
// into the accumulators, plus the barrier count (three per superstep).
// Event counts are exact (driven by the real layout and the kernel's
// measured ColSteps/LineSteps); placement mirrors AddPartitionRun.
//
// The gather phase's message decode reads the source vertex's rank block —
// a vertex-random access into the *source* partition's rank array, the
// access the scalar engine's bins exist to avoid. It is charged as line
// fills at full cost (LineSteps × 64 bytes per message, remote when the
// source partition lives on another node): at paper scale the rank block
// array dwarfs every cache, so the no-reuse regime is the honest one, and
// it keeps the B=1 batched path priced worse than scalar HiPa — which is
// exactly the amortization the batch width exists to buy (one line carries
// up to 16 columns of the same source vertex).
func (a *Accounting) AddBatchRun(s BatchRun) error {
	if a.m == nil {
		return nil
	}
	if len(a.nodes) == 0 {
		return fmt.Errorf("platform: no threads in accounting")
	}
	if len(s.PartThread) != s.Hier.NumPartitions() {
		return fmt.Errorf("platform: PartThread has %d entries for %d partitions", len(s.PartThread), s.Hier.NumPartitions())
	}
	if s.Batch < 1 {
		return fmt.Errorf("platform: batch width %d < 1", s.Batch)
	}
	nThreads := len(a.nodes)
	m := a.m
	active := make([]bool, nThreads)
	for _, t := range s.PartThread {
		if int(t) >= 0 && int(t) < nThreads {
			active[t] = true
		}
	}
	threadsOnNode := make([]int, m.NUMANodes)
	for t, nd := range a.nodes {
		if active[t] {
			threadsOnNode[nd]++
		}
	}

	// Per-partition aggregates from the layout (gather side only — the
	// blocked scatter does no message work).
	P := s.Hier.NumPartitions()
	msgsIn := make([]int64, P)
	dstsIn := make([]int64, P)
	for _, b := range s.Lay.Blocks {
		msgsIn[b.DstPart] += b.Messages()
		dstsIn[b.DstPart] += s.Lay.MsgDstOff[b.MsgEnd] - s.Lay.MsgDstOff[b.MsgStart]
	}

	// Random-access classification context: the cached working set is the
	// partition's rank-block rows, B columns wide.
	vb := int64(s.Hier.Config.BytesPerVertex)
	a.partBytes = int64(s.Hier.VerticesPerPartition) * vb * int64(s.Batch)
	a.slack = WorkingSetSlack
	a.capBytes = int64(s.Hier.NumVertices) * vb * int64(s.Batch) * 2 / int64(m.NUMANodes)
	a.threadsOnNode = threadsOnNode

	steps := int64(s.Supersteps)
	for p := 0; p < P; p++ {
		t := int(s.PartThread[p])
		if t < 0 || t >= nThreads {
			return fmt.Errorf("platform: partition %d assigned to thread %d of %d", p, t, nThreads)
		}
		part := s.Hier.Partitions[p]
		vp := int64(part.Vertices())
		intra := s.Lay.IntraOff[part.VertexEnd] - s.Lay.IntraOff[part.VertexStart]

		dataNode := -1
		if s.NUMAAware {
			dataNode = int(s.Lookup.PartNode[p])
		}

		// Structure streams, once per superstep whatever the width: intra
		// CSR (scatter), message sources and destination lists (gather).
		a.stream(t, dataNode, steps*(intra*4+msgsIn[p]*4+dstsIn[p]*4))

		// Per-column rank streams: scatter's rank-block read plus gather's
		// accumulator read and rank write, 4 bytes per vertex per active
		// column.
		a.stream(t, dataNode, s.ColSteps*vp*vb*3)

		// Message payload: the gather reads each message's source rank block
		// from the node the source partition lives on — line fills at the
		// active width (see the doc comment on the no-reuse regime).
		if s.NUMAAware {
			for _, bi := range s.Lay.DstBlocks[p] {
				b := s.Lay.Blocks[bi]
				a.stream(t, int(s.Lookup.PartNode[b.SrcPart]), s.LineSteps*b.Messages()*64)
			}
		} else {
			a.stream(t, -1, s.LineSteps*msgsIn[p]*64)
		}

		// Random accumulator updates inside the cached partition block: one
		// line-granular access per intra edge / decoded destination per
		// rank-block line.
		a.random(t, dataNode, s.LineSteps*(intra+dstsIn[p]))

		// Compute scales with the active column count.
		a.costs[t].ComputeCycles += float64(s.ColSteps) * (CyclesPerEdge*float64(intra+dstsIn[p]) +
			CyclesPerVertex*2*float64(vp) +
			CyclesPerMessage*float64(msgsIn[p]))
	}
	a.barriers += steps * 3
	return nil
}

// VertexRun describes a vertex-centric pull run (v-PR, Polymer) for
// aggregate accounting.
type VertexRun struct {
	G *graph.Graph

	// Bounds are the per-thread destination vertex ranges (len threads+1).
	Bounds []int

	// NUMAAware places each thread's in-edge structure and rank slice on
	// its node and counts true source-locality (Polymer); otherwise
	// interleaved.
	NUMAAware bool
	// FrontierBytesPerVertex models framework frontier machinery streamed
	// per vertex per iteration (Polymer; 0 for hand-coded v-PR).
	FrontierBytesPerVertex int64
	// AtomicUpdates adds the atomic-operation penalty per edge (Polymer's
	// push-style updates; §4.3 "suffering from atomic operations").
	AtomicUpdates bool
	// FrameworkCyclesPerEdge models per-edge framework overhead (virtual
	// dispatch, work-stealing bookkeeping). 0 for the hand-coded v-PR;
	// calibrated against Table 2 for the Polymer-like framework.
	FrameworkCyclesPerEdge float64
	// SpatialReuseFactor divides the random-miss count: a NUMA-aware
	// framework that clusters each node's in-edges by source locality
	// (Polymer's sub-graph construction) reuses each fetched line for
	// several nearby edges. 0 or 1 means no reuse (v-PR's global pull).
	SpatialReuseFactor float64
	// BoundaryRemoteFraction is the share of random misses that cross
	// nodes in a NUMA-aware engine (sub-graph boundary vertices fetched
	// from the owning node). Ignored when NUMAAware is false.
	BoundaryRemoteFraction float64

	Iterations int
	// ThreadIters, when non-nil, overrides Iterations per thread: entry t is
	// the number of rounds thread t actually executed. The barrierless
	// engine passes its per-worker round counts here — workers run unequal
	// round counts and never synchronise, so the run is also charged zero
	// barriers. Must have one entry per thread when set.
	ThreadIters []int64
}

// AddVertexRun classifies the events of a pull/push vertex-centric run into
// the accumulators, plus the barrier count (two per iteration).
func (a *Accounting) AddVertexRun(s VertexRun) error {
	if a.m == nil {
		return nil
	}
	nThreads := len(a.nodes)
	if nThreads == 0 || len(s.Bounds) != nThreads+1 {
		return fmt.Errorf("platform: bad vertex run (threads=%d bounds=%d)", nThreads, len(s.Bounds))
	}
	if !s.G.HasInEdges() {
		return fmt.Errorf("platform: vertex accounting needs in-edges")
	}
	if s.ThreadIters != nil && len(s.ThreadIters) != nThreads {
		return fmt.Errorf("platform: ThreadIters has %d entries for %d threads", len(s.ThreadIters), nThreads)
	}
	m := a.m
	threadsOnNode := make([]int, m.NUMANodes)
	for _, nd := range a.nodes {
		threadsOnNode[nd]++
	}

	n := s.G.NumVertices()
	inOff := s.G.InOffsets()
	iters := int64(s.Iterations)

	// Real pull engines schedule vertex chunks dynamically, so the load
	// balance approaches the LPT bound: every thread gets ≈ |E|/T in-edges,
	// floored by the largest single vertex (a vertex's pull cannot be split
	// without atomics). The static Bounds drive locality and vertex counts;
	// edge loads use the dynamic-balance estimate.
	totalIn := inOff[n]
	evenE := totalIn / int64(nThreads)
	var maxIn int64
	for v := 0; v < n; v++ {
		if d := inOff[v+1] - inOff[v]; d > maxIn {
			maxIn = d
		}
	}
	slowestE := evenE
	if maxIn > slowestE {
		slowestE = maxIn
	}
	// Distribute the remainder so totals stay exact: thread 0 carries the
	// hub-bound load, others share the rest evenly.
	restE := totalIn - slowestE
	otherE := int64(0)
	if nThreads > 1 {
		otherE = restE / int64(nThreads-1)
	}
	edgesOf := func(t int) int64 {
		if t == 0 {
			return slowestE
		}
		if t == nThreads-1 {
			return restE - otherE*int64(nThreads-2)
		}
		return otherE
	}

	// The random-read working set: the contribution array spans all
	// vertices for an oblivious engine; a NUMA-aware engine's references
	// concentrate on its own node's slice (Polymer's sub-graphs), shrinking
	// the effective working set per node.
	for t := 0; t < nThreads; t++ {
		lo, hi := s.Bounds[t], s.Bounds[t+1]
		verts := int64(hi - lo)
		inEdges := edgesOf(t)
		c := &a.costs[t]

		// A barrierless run charges each worker its own round count.
		itersT := iters
		if s.ThreadIters != nil {
			itersT = s.ThreadIters[t]
		}

		dataNode := -1
		if s.NUMAAware {
			dataNode = c.Node
		}
		// Streams: in-edge structure (4B per edge + 8B offsets per vertex),
		// contribution write + rank write (4B each per vertex).
		stream := itersT * (inEdges*4 + verts*8 + verts*8)
		if s.FrontierBytesPerVertex > 0 {
			stream += itersT * verts * s.FrontierBytesPerVertex
		}
		if dataNode >= 0 {
			c.StreamLocalBytes += stream
		} else {
			local := stream / int64(m.NUMANodes)
			c.StreamLocalBytes += local
			c.StreamRemoteBytes += stream - local
		}

		// Random contribution reads: one per in-edge. The effective cache
		// for one thread's random reads is its node's LLC plus its own L2.
		ws := int64(n) * 4
		llcCap := int64(m.LLC.SizeBytes) + int64(m.L2.SizeBytes)
		if s.NUMAAware && m.NUMANodes > 0 {
			// Polymer-style sub-graphs: each node holds a local replica of
			// the contribution slice it reads, so the random working set is
			// the per-node share.
			ws /= int64(m.NUMANodes)
		}
		pHit := 1.0
		if ws > llcCap {
			pHit = float64(llcCap) / float64(ws)
		}
		hits := int64(float64(itersT*inEdges) * pHit)
		misses := itersT*inEdges - hits
		if s.SpatialReuseFactor > 1 {
			// Clustered in-edges reuse each fetched line for several edges.
			misses = int64(float64(misses) / s.SpatialReuseFactor)
		}
		c.LLCAccesses += hits
		if s.NUMAAware {
			// Misses go to the node-local replica except for sub-graph
			// boundary vertices fetched from the owning node; the replicas
			// are merged once per iteration (4 bytes per remote vertex over
			// the interconnect).
			remote := int64(float64(misses) * s.BoundaryRemoteFraction)
			c.RandomLocal += misses - remote
			c.RandomRemote += remote
			c.StreamRemoteBytes += itersT * verts * 4 * int64(m.NUMANodes-1)
		} else {
			lm := misses / int64(m.NUMANodes)
			c.RandomLocal += lm
			c.RandomRemote += misses - lm
		}

		// Compute. The pull path has a dependent load per edge, costing more
		// than the partition engines' streamed edge work.
		perEdge := 2*CyclesPerEdge + s.FrameworkCyclesPerEdge
		if s.AtomicUpdates {
			perEdge += AtomicPenaltyCycles
		}
		cyc := float64(itersT) * (perEdge*float64(inEdges) + CyclesPerVertex*float64(verts))
		c.ComputeCycles += cyc
	}
	// Two barriers per iteration (contribution pass, rank pass) — unless the
	// run was barrierless (per-thread round counts): then nothing ever
	// synchronised.
	if s.ThreadIters == nil {
		a.barriers += iters * 2
	}
	return nil
}

// FCFSAssignment models the steady-state outcome of first-come-first-serve
// partition claiming for the analytic cost model: dynamic scheduling
// approximates a greedy least-loaded assignment, so each partition (in
// order) goes to the thread with the least accumulated edge work. With many
// small partitions this is near-perfectly balanced; with fewer partitions
// than threads (GPOP's 1MB partitions on a small graph) the imbalance the
// paper observes emerges naturally.
func FCFSAssignment(h *partition.Hierarchy, threads int) []int32 {
	out := make([]int32, h.NumPartitions())
	load := make([]int64, threads)
	for p, part := range h.Partitions {
		best := 0
		for t := 1; t < threads; t++ {
			if load[t] < load[best] {
				best = t
			}
		}
		out[p] = int32(best)
		load[best] += part.EdgeCount + 1
	}
	return out
}
