package platform

import (
	"hipa/internal/cachesim"
	"hipa/internal/machine"
	"hipa/internal/memsim"
	"hipa/internal/perfmodel"
	"hipa/internal/sched"
)

// Modeled is the simulated platform: spawns run through the deterministic
// scheduler simulation, accounting classifies events against the machine's
// cache and NUMA geometry, and Finalize prices the run with the analytic
// model. One Modeled value per machine; safe for concurrent use.
type Modeled struct {
	m *machine.Machine
}

// NewModeled wraps a simulated machine as a platform. nil selects the
// Skylake preset.
func NewModeled(m *machine.Machine) *Modeled {
	if m == nil {
		m = machine.SkylakeSilver4210()
	}
	return &Modeled{m: m}
}

// Name implements Platform with the microarchitecture family ("skylake",
// "haswell") — the same names the -platform CLI flag accepts.
func (p *Modeled) Name() string { return p.m.Microarch }

// Machine implements Platform.
func (p *Modeled) Machine() *machine.Machine { return p.m }

// Modeled implements Platform.
func (p *Modeled) Modeled() bool { return true }

// SpawnPinned implements Platform: Algorithm 2's lifecycle on the scheduler
// simulation — threads spawned once, bound to distinct logical cores, at
// most `threads` migrations for the whole run.
func (p *Modeled) SpawnPinned(seed uint64, threads int) (*Pool, error) {
	sc := sched.New(p.m, seed)
	pool, stats, err := sc.RunPinnedThreads(threads)
	if err != nil {
		return nil, err
	}
	nodes, shared := ThreadPlacement(pool, p.m)
	pinned := make([]int, len(pool))
	for i, t := range pool {
		pinned[i] = t.Logical
	}
	return &Pool{
		Threads: threads,
		Nodes:   nodes,
		Shared:  shared,
		Stats:   stats,
		m:       p.m,
		pinned:  pinned,
	}, nil
}

// SpawnOblivious implements Platform: Algorithm 1's thread lifecycle. The
// returned placement is a representative snapshot (the first region's pool)
// from an identically seeded scheduler; the stats cover the full lifecycle
// of `regions` pool spawn/terminate rounds.
func (p *Modeled) SpawnOblivious(seed uint64, regions, threads int, bindNodes bool) (*Pool, error) {
	m := p.m
	// Placement snapshot from an identical-seed scheduler's first pool.
	snap := sched.New(m, seed)
	pool := snap.SpawnN(threads, sched.PlacementRandom)
	if bindNodes {
		for i, t := range pool {
			if err := snap.Bind(t, i%m.NUMANodes); err != nil {
				return nil, err
			}
		}
	}
	nodes, shared := ThreadPlacement(pool, m)

	// Full lifecycle stats.
	sc := sched.New(m, seed)
	stats, err := sc.RunObliviousRegions(regions, threads, bindNodes)
	if err != nil {
		return nil, err
	}
	return &Pool{
		Threads: threads,
		Nodes:   nodes,
		Shared:  shared,
		Stats:   stats,
		m:       m,
	}, nil
}

// NewAccounting implements Platform: per-thread cost accumulators primed
// with the pool's placement.
func (p *Modeled) NewAccounting(pool *Pool) *Accounting {
	costs := make([]perfmodel.ThreadCost, pool.Threads)
	for t := range costs {
		costs[t].Node = pool.Nodes[t]
		costs[t].PhysShared = pool.Shared[t]
	}
	return &Accounting{
		m:           p.m,
		nodes:       pool.Nodes,
		shared:      pool.Shared,
		costs:       costs,
		schedCostNS: pool.Stats.CostNS,
	}
}

// Finalize implements Platform: the accumulated per-thread costs become the
// perfmodel input and the analytic estimate is computed.
func (p *Modeled) Finalize(a *Accounting, shape RunShape) (*perfmodel.Report, error) {
	return perfmodel.Estimate(perfmodel.Run{
		Machine:              p.m,
		Threads:              a.costs,
		Barriers:             a.barriers,
		SchedCostNS:          a.schedCostNS,
		EdgesProcessed:       shape.EdgesProcessed,
		Iterations:           shape.Iterations,
		UncoordinatedStreams: shape.UncoordinatedStreams,
	})
}

// NewCacheSystem opens the exact cache simulation for this platform's
// machine (used by the validation harness, not the analytic fast path).
func (p *Modeled) NewCacheSystem() *cachesim.System { return cachesim.NewSystem(p.m) }

// NewMemorySpace opens the NUMA placement simulation for this platform's
// machine.
func (p *Modeled) NewMemorySpace() *memsim.Space { return memsim.NewSpace(p.m) }
