// Package platform is the execution substrate the PageRank engines run on:
// one interface binding a machine.Machine to its scheduler simulation, NUMA
// placement, cache simulation, and per-thread cost accounting.
//
// Every HiPa design decision is a function of the platform — topology,
// placement, cache geometry, scheduler behaviour (paper §3–§4) — so the
// engines never touch machine/sched/memsim/cachesim/perfmodel directly.
// They speak to a Platform:
//
//	Spawn*        simulate the thread lifecycle, yielding a Pool (the
//	              placement: NUMA node and hyper-thread sharing per thread)
//	NewAccounting open per-thread cost accumulators for the run
//	Account*      classify memory events into those accumulators
//	Finalize      turn the accumulators into the perfmodel input and price
//	              the run
//
// Two implementations exist. Modeled wraps a simulated machine (the Skylake
// and Haswell presets) and produces the paper-shape performance reports.
// Native skips all modelling: spawns are free, accounting is a no-op, and
// Finalize returns a zero-valued report — modelled metrics are reported as
// zero, never fabricated — so pure wall-clock runs pay nothing for the
// substrate.
package platform

import (
	"fmt"

	"hipa/internal/machine"
	"hipa/internal/obs"
	"hipa/internal/perfmodel"
	"hipa/internal/sched"
)

// Platform binds a machine description to scheduling, placement, and cost
// accounting. Implementations are stateless and safe for concurrent use;
// all per-run state lives in Pool and Accounting values.
type Platform interface {
	// Name identifies the platform ("skylake", "haswell", "native", ...).
	Name() string
	// Machine returns the topology the platform describes. Native platforms
	// keep a real topology too: engines still need node counts and default
	// thread counts for structural decisions.
	Machine() *machine.Machine
	// Modeled reports whether the platform prices runs on the simulated
	// machine. When false, Account* calls are no-ops and Finalize returns a
	// zero report.
	Modeled() bool
	// SpawnPinned simulates Algorithm 2's thread lifecycle: threads spawned
	// once, each pinned to a distinct logical core for the whole run.
	SpawnPinned(seed uint64, threads int) (*Pool, error)
	// SpawnOblivious simulates Algorithm 1's lifecycle: a fresh pool of
	// `threads` workers per parallel region, placed arbitrarily by the OS.
	// bindNodes retrofits NUMA binding onto the oblivious model
	// (Polymer-style), triggering the migration storm of §3.3.2.
	SpawnOblivious(seed uint64, regions, threads int, bindNodes bool) (*Pool, error)
	// NewAccounting opens per-thread cost accumulators against the pool's
	// placement.
	NewAccounting(pool *Pool) *Accounting
	// Finalize prices the accumulated events, producing the performance
	// report (the perfmodel input and output in one step).
	Finalize(a *Accounting, shape RunShape) (*perfmodel.Report, error)
}

// RunShape carries the run-level quantities Finalize needs beyond the
// per-thread accumulators.
type RunShape struct {
	// Iterations actually performed (after tolerance-based early exit).
	Iterations int
	// EdgesProcessed across all iterations (for MApE).
	EdgesProcessed int64
	// UncoordinatedStreams marks per-phase thread pools whose streams are
	// not coordinated with data placement (Algorithm-1 engines).
	UncoordinatedStreams bool
}

// Pool is the outcome of a simulated thread-lifecycle spawn: the per-thread
// NUMA placement the cost model prices, plus the scheduler activity stats.
// On a Native platform only Threads is populated.
type Pool struct {
	// Threads is the worker count.
	Threads int
	// Nodes[t] is the NUMA node thread t runs on (nil on Native). Engines
	// that derive placement from data ownership rather than the scheduler
	// snapshot (Polymer's sub-graph-per-node structure) may overwrite
	// entries before opening an Accounting.
	Nodes []int
	// Shared[t] reports whether thread t's hyper-thread sibling is also
	// busy (nil on Native).
	Shared []bool
	// Stats is the simulated scheduler activity (zero on Native).
	Stats sched.Stats

	m      *machine.Machine // nil on Native
	pinned []int            // logical core per thread for pinned pools
}

// SetLanes names one trace lane per pool thread plus the serial runner lane
// (one past the last worker). Pinned pools carry their simulated placement
// in the lane name ("t03 node1 cpu23"); oblivious pools the representative
// first-region node; native pools just the index.
func (p *Pool) SetLanes(tr *obs.Trace) {
	if tr == nil {
		return
	}
	for i := 0; i < p.Threads; i++ {
		switch {
		case p.pinned != nil:
			tr.SetLane(i, fmt.Sprintf("t%02d node%d cpu%02d", i, p.m.NodeOfLogical(p.pinned[i]), p.pinned[i]))
		case p.Nodes != nil:
			tr.SetLane(i, fmt.Sprintf("t%02d node%d", i, p.Nodes[i]))
		default:
			tr.SetLane(i, fmt.Sprintf("t%02d", i))
		}
	}
	tr.SetLane(p.Threads, "runner")
}

// ThreadPlacement derives the model inputs from a simulated thread pool:
// each thread's NUMA node and whether it shares a physical core with another
// pool thread (the hyper-thread contention condition).
func ThreadPlacement(pool []*sched.Thread, m *machine.Machine) (nodes []int, shared []bool) {
	nodes = make([]int, len(pool))
	shared = make([]bool, len(pool))
	perPhys := make([]int, m.PhysicalCores())
	for _, t := range pool {
		perPhys[m.PhysicalOfLogical(t.Logical)]++
	}
	for i, t := range pool {
		nodes[i] = m.NodeOfLogical(t.Logical)
		shared[i] = perPhys[m.PhysicalOfLogical(t.Logical)] >= 2
	}
	return nodes, shared
}
