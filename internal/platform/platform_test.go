package platform_test

import (
	"testing"

	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/partition"
	"hipa/internal/perfmodel"
	"hipa/internal/platform"
	"hipa/internal/sched"
)

func TestThreadPlacement(t *testing.T) {
	m := machine.SkylakeSilver4210()
	s := sched.New(m, 1)
	pool, _, err := s.RunPinnedThreads(40)
	if err != nil {
		t.Fatal(err)
	}
	nodes, shared := platform.ThreadPlacement(pool, m)
	n0 := 0
	for i := range nodes {
		if nodes[i] == 0 {
			n0++
		}
		if !shared[i] {
			t.Fatalf("40 threads on 20 physical cores: thread %d should be HT-shared", i)
		}
	}
	if n0 != 20 {
		t.Fatalf("node 0 threads = %d, want 20", n0)
	}

	s2 := sched.New(m, 2)
	pool2, _, err := s2.RunPinnedThreads(20)
	if err != nil {
		t.Fatal(err)
	}
	_, shared2 := platform.ThreadPlacement(pool2, m)
	for i := range shared2 {
		if shared2[i] {
			t.Fatalf("20 pinned threads spread over physical cores: thread %d should not share", i)
		}
	}
}

func buildFixture(t *testing.T) (*graph.Graph, *partition.Hierarchy, *layout.Layout, *partition.LookupTable) {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 2048, Edges: 30000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	h, err := partition.Build(g, partition.Config{PartitionBytes: 512, BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.Build(g, h, true)
	if err != nil {
		t.Fatal(err)
	}
	return g, h, l, partition.BuildLookup(h)
}

// partitionCosts runs one AddPartitionRun through a fresh Accounting on the
// given placement and returns the accumulated costs and barriers.
func partitionCosts(t *testing.T, pf *platform.Modeled, nodes []int, shared []bool, run platform.PartitionRun) ([]perfmodel.ThreadCost, int64) {
	t.Helper()
	a := pf.NewAccounting(&platform.Pool{Threads: len(nodes), Nodes: nodes, Shared: shared})
	if err := a.AddPartitionRun(run); err != nil {
		t.Fatal(err)
	}
	return a.Costs(), a.Barriers()
}

func TestAddPartitionRunNUMAAwareLessRemote(t *testing.T) {
	_, h, l, lt := buildFixture(t)
	pf := platform.NewModeled(machine.SkylakeSilver4210())
	nThreads := len(h.Groups)
	nodes := make([]int, nThreads)
	shareds := make([]bool, nThreads)
	for i, gr := range h.Groups {
		nodes[i] = gr.Node
	}
	run := platform.PartitionRun{
		Hier: h, Lay: l, Lookup: lt,
		PartThread: lt.PartThread,
		NUMAAware:  true, Iterations: 10,
	}
	costsAware, barriers := partitionCosts(t, pf, nodes, shareds, run)
	if barriers != 30 {
		t.Errorf("barriers = %d, want 30", barriers)
	}
	run.NUMAAware = false
	costsObliv, _ := partitionCosts(t, pf, nodes, shareds, run)
	sum := func(cs []perfmodel.ThreadCost) (local, remote int64) {
		for _, c := range cs {
			local += c.StreamLocalBytes
			remote += c.StreamRemoteBytes
		}
		return
	}
	la, ra := sum(costsAware)
	lo, ro := sum(costsObliv)
	fa := float64(ra) / float64(la+ra)
	fo := float64(ro) / float64(lo+ro)
	if fa >= fo {
		t.Fatalf("NUMA-aware remote fraction %.3f should be below oblivious %.3f", fa, fo)
	}
	// The paper's headline: oblivious partition-centric ~49% remote,
	// HiPa ~14%. Loose sanity bounds here.
	if fo < 0.3 {
		t.Errorf("oblivious remote fraction %.3f unexpectedly low", fo)
	}
	if fa > 0.35 {
		t.Errorf("aware remote fraction %.3f unexpectedly high", fa)
	}
}

func TestAddPartitionRunErrors(t *testing.T) {
	_, h, l, lt := buildFixture(t)
	pf := platform.NewModeled(machine.SkylakeSilver4210())
	a := pf.NewAccounting(&platform.Pool{Threads: 0})
	if err := a.AddPartitionRun(platform.PartitionRun{Hier: h, Lay: l, Lookup: lt, PartThread: lt.PartThread}); err == nil {
		t.Error("expected error for no threads")
	}
	a = pf.NewAccounting(&platform.Pool{Threads: 1, Nodes: []int{0}, Shared: []bool{false}})
	if err := a.AddPartitionRun(platform.PartitionRun{
		Hier: h, Lay: l, Lookup: lt,
		PartThread: []int32{0, 1},
	}); err == nil {
		t.Error("expected error for PartThread size mismatch")
	}
}

func TestAddVertexRunLocalityContrast(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 4096, Edges: 50000, OutAlpha: 2.0, InAlpha: 1.0, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	g.BuildIn()
	// Scale the machine so the rank array (16KB) exceeds the LLC and real
	// DRAM misses appear.
	pf := platform.NewModeled(machine.Scaled(machine.SkylakeSilver4210(), 4096))
	threads := 8
	bounds := splitByWeight(g.InOffsets(), threads)
	nodes := make([]int, threads)
	shared := make([]bool, threads)
	for i := range nodes {
		nodes[i] = i * 2 / threads
	}
	run := platform.VertexRun{
		G: g, Bounds: bounds, Iterations: 5,
	}
	vertexCosts := func(run platform.VertexRun) ([]perfmodel.ThreadCost, int64) {
		a := pf.NewAccounting(&platform.Pool{Threads: threads, Nodes: nodes, Shared: shared})
		if err := a.AddVertexRun(run); err != nil {
			t.Fatal(err)
		}
		return a.Costs(), a.Barriers()
	}
	costsObliv, barriers := vertexCosts(run)
	if barriers != 10 {
		t.Errorf("barriers = %d, want 10", barriers)
	}
	run.NUMAAware = true
	costsAware, _ := vertexCosts(run)
	remFrac := func(cs []perfmodel.ThreadCost) float64 {
		var loc, rem int64
		for _, c := range cs {
			loc += c.StreamLocalBytes + c.RandomLocal*64
			rem += c.StreamRemoteBytes + c.RandomRemote*64
		}
		return float64(rem) / float64(loc+rem)
	}
	if remFrac(costsAware) >= remFrac(costsObliv) {
		t.Fatalf("NUMA-aware vertex engine should have lower remote fraction: %.3f vs %.3f",
			remFrac(costsAware), remFrac(costsObliv))
	}
}

// splitByWeight mirrors common.SplitByWeight for the fixture (platform must
// not import engines/common).
func splitByWeight(prefix []int64, parts int) []int {
	n := len(prefix) - 1
	bounds := make([]int, parts+1)
	bounds[parts] = n
	total := prefix[n]
	for p := 1; p < parts; p++ {
		target := total * int64(p) / int64(parts)
		lo, hi := bounds[p-1], n
		for lo < hi {
			mid := (lo + hi) / 2
			if prefix[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > bounds[p-1] && prefix[lo]-target > target-prefix[lo-1] {
			lo--
		}
		bounds[p] = lo
	}
	return bounds
}

func TestAddVertexRunErrors(t *testing.T) {
	g, _ := gen.Uniform(100, 500, 1)
	pf := platform.NewModeled(machine.SkylakeSilver4210())
	a := pf.NewAccounting(&platform.Pool{Threads: 0})
	if err := a.AddVertexRun(platform.VertexRun{G: g}); err == nil {
		t.Error("expected error for empty run")
	}
	a = pf.NewAccounting(&platform.Pool{Threads: 1, Nodes: []int{0}, Shared: []bool{false}})
	if err := a.AddVertexRun(platform.VertexRun{
		G: g, Bounds: []int{0, 100}, Iterations: 1,
	}); err == nil {
		t.Error("expected error for missing in-edges")
	}
}

// TestModeledSpawnsMatchScheduler: the platform's spawn paths are thin,
// deterministic wrappers over the scheduler simulation — same seed, same
// placement and stats.
func TestModeledSpawnsMatchScheduler(t *testing.T) {
	m := machine.SkylakeSilver4210()
	pf := platform.NewModeled(m)
	p1, err := pf.SpawnPinned(7, 40)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pf.SpawnPinned(7, 40)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Stats != p2.Stats {
		t.Errorf("same seed, different pinned stats: %+v vs %+v", p1.Stats, p2.Stats)
	}
	for i := range p1.Nodes {
		if p1.Nodes[i] != p2.Nodes[i] || p1.Shared[i] != p2.Shared[i] {
			t.Fatalf("same seed, different placement at thread %d", i)
		}
	}
	if p1.Stats.Spawned != 40 {
		t.Errorf("pinned spawns = %d, want 40", p1.Stats.Spawned)
	}

	ob, err := pf.SpawnOblivious(7, 10, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if ob.Stats.Spawned != 10*20 {
		t.Errorf("oblivious spawns = %d, want 200 (fresh pool per region)", ob.Stats.Spawned)
	}
}

// TestNativeSemantics: the Native platform reports modelled metrics as
// zero, never fabricated — and performs no scheduler simulation.
func TestNativeSemantics(t *testing.T) {
	pf := platform.NewNative(nil)
	if pf.Modeled() {
		t.Fatal("Native.Modeled() = true")
	}
	if pf.Name() != "native" {
		t.Fatalf("name = %q", pf.Name())
	}
	if pf.Machine() == nil {
		t.Fatal("Native must keep a topology for structural decisions")
	}
	pool, err := pf.SpawnPinned(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Threads != 16 || pool.Nodes != nil || pool.Shared != nil {
		t.Fatalf("native pool should carry only the thread count: %+v", pool)
	}
	if pool.Stats != (sched.Stats{}) {
		t.Fatalf("native pool has scheduler stats: %+v", pool.Stats)
	}
	a := pf.NewAccounting(pool)
	if a.Enabled() {
		t.Fatal("native accounting should be disabled")
	}
	// Accounting calls must be harmless no-ops.
	a.AccountRead(3, 0, 1<<20)
	a.AccountWrite(3, -1, 1<<20)
	a.AccountRandom(3, 0, 1000)
	a.AccountAtomic(3, 10)
	a.AccountCompute(3, 1e6)
	a.AccountBarriers(5)
	if err := a.AddPartitionRun(platform.PartitionRun{}); err != nil {
		t.Fatalf("native AddPartitionRun: %v", err)
	}
	if err := a.AddVertexRun(platform.VertexRun{}); err != nil {
		t.Fatalf("native AddVertexRun: %v", err)
	}
	rep, err := pf.Finalize(a, platform.RunShape{Iterations: 9, EdgesProcessed: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("native Finalize must return a non-nil zero report")
	}
	if rep.Iterations != 9 {
		t.Errorf("native report iterations = %d, want 9", rep.Iterations)
	}
	if rep.EstimatedSeconds != 0 || rep.LocalBytes != 0 || rep.RemoteBytes != 0 || rep.LLCAccesses != 0 {
		t.Errorf("native report must be zero-valued, got %+v", rep)
	}
}
