package platform

import (
	"hipa/internal/machine"
	"hipa/internal/perfmodel"
)

// Native is the pass-through platform for pure wall-clock runs: spawns cost
// nothing and produce no placement, accounting calls are no-ops, and
// Finalize returns a zero-valued report. Modelled metrics are reported as
// zero, never fabricated — a zero EstimatedSeconds means "not modelled",
// and consumers must not read it as "instant".
//
// Native still carries a machine description: engines use the topology
// (node counts, logical cores, cache-derived partition-size defaults) for
// structural decisions even when nothing is priced.
type Native struct {
	m *machine.Machine
}

// NewNative wraps a topology as a pass-through platform. nil selects the
// Skylake preset (its topology matches common host core counts).
func NewNative(m *machine.Machine) *Native {
	if m == nil {
		m = machine.SkylakeSilver4210()
	}
	return &Native{m: m}
}

// Name implements Platform.
func (p *Native) Name() string { return "native" }

// Machine implements Platform (topology only; nothing is priced on it).
func (p *Native) Machine() *machine.Machine { return p.m }

// Modeled implements Platform.
func (p *Native) Modeled() bool { return false }

// SpawnPinned implements Platform: no scheduler simulation runs; the pool
// carries only the thread count.
func (p *Native) SpawnPinned(seed uint64, threads int) (*Pool, error) {
	return &Pool{Threads: threads}, nil
}

// SpawnOblivious implements Platform: no scheduler simulation runs.
func (p *Native) SpawnOblivious(seed uint64, regions, threads int, bindNodes bool) (*Pool, error) {
	return &Pool{Threads: threads}, nil
}

// NewAccounting implements Platform: a no-op accumulator (every Account*
// call returns immediately).
func (p *Native) NewAccounting(pool *Pool) *Accounting {
	return &Accounting{}
}

// Finalize implements Platform: a zero report, with only the structural
// iteration count filled in so iteration-agreement invariants hold.
func (p *Native) Finalize(a *Accounting, shape RunShape) (*perfmodel.Report, error) {
	return &perfmodel.Report{Iterations: shape.Iterations}, nil
}
