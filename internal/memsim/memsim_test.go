package memsim

import (
	"sync"
	"testing"
	"testing/quick"

	"hipa/internal/machine"
)

func sky() *machine.Machine { return machine.SkylakeSilver4210() }

func TestOnNodePlacement(t *testing.T) {
	s := NewSpace(sky())
	r, err := s.Alloc("ranks", 10*PageBytes, OnNode(1))
	if err != nil {
		t.Fatal(err)
	}
	for off := int64(0); off < r.Size; off += PageBytes {
		if r.NodeAt(off) != 1 {
			t.Fatalf("page at %d on node %d, want 1", off, r.NodeAt(off))
		}
	}
	pages := r.PagesOnNode(2)
	if pages[0] != 0 || pages[1] != 10 {
		t.Fatalf("PagesOnNode = %v", pages)
	}
}

func TestOnNodeWraps(t *testing.T) {
	s := NewSpace(sky())
	r := s.MustAlloc("x", PageBytes, OnNode(5)) // 5 % 2 = 1
	if r.NodeAt(0) != 1 {
		t.Fatalf("OnNode(5) on 2-node machine placed on %d, want 1", r.NodeAt(0))
	}
}

func TestInterleavePlacement(t *testing.T) {
	s := NewSpace(sky())
	r := s.MustAlloc("edges", 8*PageBytes, Interleave{})
	for pg := 0; pg < 8; pg++ {
		want := pg % 2
		if got := r.NodeAt(int64(pg) * PageBytes); got != want {
			t.Fatalf("page %d on node %d, want %d", pg, got, want)
		}
	}
	pages := r.PagesOnNode(2)
	if pages[0] != 4 || pages[1] != 4 {
		t.Fatalf("PagesOnNode = %v, want [4 4]", pages)
	}
}

func TestSlicedPlacement(t *testing.T) {
	s := NewSpace(sky())
	// First 3 pages node 0, rest node 1.
	r := s.MustAlloc("attrs", 10*PageBytes, Sliced{Bounds: []int64{3 * PageBytes, 10 * PageBytes}})
	for pg := 0; pg < 10; pg++ {
		want := 0
		if pg >= 3 {
			want = 1
		}
		if got := r.NodeAt(int64(pg) * PageBytes); got != want {
			t.Fatalf("page %d on node %d, want %d", pg, got, want)
		}
	}
}

func TestSlicedBeyondLastBound(t *testing.T) {
	s := NewSpace(sky())
	// Bounds cover only the first page; later pages fall to the last slice.
	r := s.MustAlloc("a", 3*PageBytes, Sliced{Bounds: []int64{PageBytes, 2 * PageBytes}})
	if r.NodeAt(2*PageBytes+10) != 1 {
		t.Fatal("pages past the last bound should belong to the last slice's node")
	}
}

func TestAllocErrors(t *testing.T) {
	s := NewSpace(sky())
	if _, err := s.Alloc("bad", 0, OnNode(0)); err == nil {
		t.Error("expected error for zero size")
	}
	if _, err := s.Alloc("bad", -5, OnNode(0)); err == nil {
		t.Error("expected error for negative size")
	}
}

func TestAddressesDisjointAndNonZero(t *testing.T) {
	s := NewSpace(sky())
	a := s.MustAlloc("a", 100, OnNode(0))
	b := s.MustAlloc("b", PageBytes*2+1, OnNode(0))
	c := s.MustAlloc("c", 1, OnNode(0))
	if a.Base == 0 {
		t.Error("address 0 must never be allocated")
	}
	ends := func(r *Region) uint64 { return r.Base + uint64(r.Size) }
	if ends(a) > b.Base || ends(b) > c.Base {
		t.Fatalf("regions overlap: a=[%d,%d) b=[%d,%d) c=[%d,%d)",
			a.Base, ends(a), b.Base, ends(b), c.Base, ends(c))
	}
	if len(s.Regions()) != 3 {
		t.Errorf("Regions() has %d entries", len(s.Regions()))
	}
	if s.TotalBytes() != 100+PageBytes*2+1+1 {
		t.Errorf("TotalBytes = %d", s.TotalBytes())
	}
}

func TestNodeAtPanicsOutOfRange(t *testing.T) {
	s := NewSpace(sky())
	r := s.MustAlloc("a", 10, OnNode(0))
	for _, bad := range []int64{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NodeAt(%d) did not panic", bad)
				}
			}()
			r.NodeAt(bad)
		}()
	}
}

func TestCountersClassification(t *testing.T) {
	s := NewSpace(sky())
	r := s.MustAlloc("ranks", 2*PageBytes, Sliced{Bounds: []int64{PageBytes, 2 * PageBytes}})
	var c Counters
	c.Record(r, 0, 4, 0)             // page 0 on node 0, core node 0: local
	c.Record(r, PageBytes+8, 4, 0)   // page 1 on node 1, core node 0: remote
	c.Record(r, PageBytes+16, 64, 1) // local for node 1
	if c.LocalAccesses != 2 || c.RemoteAccesses != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.LocalBytes != 68 || c.RemoteBytes != 4 {
		t.Fatalf("bytes = %+v", c)
	}
	if f := c.RemoteFraction(); f < 0.05 || f > 0.06 {
		t.Errorf("RemoteFraction = %f", f)
	}
}

func TestCountersMergeAndRecordN(t *testing.T) {
	var a, b Counters
	a.RecordN(true, 10, 4)
	b.RecordN(false, 5, 8)
	a.Merge(b)
	if a.LocalBytes != 40 || a.RemoteBytes != 40 || a.LocalAccesses != 10 || a.RemoteAccesses != 5 {
		t.Fatalf("merged = %+v", a)
	}
	if a.TotalBytes() != 80 {
		t.Errorf("TotalBytes = %d", a.TotalBytes())
	}
	var zero Counters
	if zero.RemoteFraction() != 0 {
		t.Error("zero counters RemoteFraction should be 0")
	}
}

func TestAtomicCountersConcurrent(t *testing.T) {
	s := NewSpace(sky())
	r := s.MustAlloc("shared", 4*PageBytes, Interleave{})
	var ac AtomicCounters
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ac.Record(r, int64((i%4)*PageBytes), 4, w%2)
			}
		}(w)
	}
	wg.Wait()
	snap := ac.Snapshot()
	if snap.LocalAccesses+snap.RemoteAccesses != workers*per {
		t.Fatalf("lost updates: %+v", snap)
	}
	// Interleaved pages, alternating core nodes: exactly half local.
	if snap.LocalAccesses != workers*per/2 {
		t.Fatalf("local = %d, want %d", snap.LocalAccesses, workers*per/2)
	}
}

// Property: every page of an interleaved region is owned by a valid node and
// consecutive pages alternate on a 2-node machine.
func TestPropertyInterleaveAlternates(t *testing.T) {
	f := func(szRaw uint16) bool {
		size := int64(szRaw)%100*PageBytes + 1
		s := NewSpace(sky())
		r := s.MustAlloc("x", size, Interleave{})
		pages := int((size + PageBytes - 1) / PageBytes)
		for pg := 0; pg < pages; pg++ {
			if r.NodeAt(int64(pg)*PageBytes) != pg%2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: classification is consistent — an access is local iff NodeAt
// equals the core's node.
func TestPropertyClassification(t *testing.T) {
	f := func(offRaw uint16, coreNode uint8) bool {
		s := NewSpace(sky())
		r := s.MustAlloc("x", 64*PageBytes, Interleave{})
		off := int64(offRaw) % r.Size
		node := int(coreNode) % 2
		var c Counters
		c.Record(r, off, 4, node)
		local := r.NodeAt(off) == node
		return (c.LocalAccesses == 1) == local
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
