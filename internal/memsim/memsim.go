// Package memsim models NUMA memory placement and accounting: a simulated
// address space whose allocations ("regions") are placed on NUMA nodes
// page-by-page under a chosen policy, and counters that classify every
// access as local or remote given the node the accessing core belongs to.
//
// It substitutes for two things the paper uses that Go cannot reach: the
// libnuma-style placement of arrays on chosen nodes (§3.4's "graph vertices,
// edges and attributes are subdivided into discrete physical pages on
// different NUMA node" mapped into one contiguous virtual range) and the
// uncore performance counters that measure local/remote DRAM traffic
// (Fig. 5's MApE breakdown).
package memsim

import (
	"fmt"
	"sync/atomic"

	"hipa/internal/machine"
)

// PageBytes is the simulated OS page size used for placement granularity.
const PageBytes = 4096

// Placement decides which node owns each page of a region.
type Placement interface {
	// NodeOf returns the owning node for the page with the given index,
	// given the total page count and node count.
	NodeOf(page, totalPages, nodes int) int
	// String describes the policy.
	String() string
}

// OnNode places every page on one node (numactl --membind style).
type OnNode int

// NodeOf implements Placement.
func (o OnNode) NodeOf(page, totalPages, nodes int) int { return int(o) % nodes }

// String implements Placement.
func (o OnNode) String() string { return fmt.Sprintf("on-node(%d)", int(o)) }

// Interleave places pages round-robin across all nodes (numactl
// --interleave). This is what a NUMA-oblivious allocation effectively looks
// like for large shared arrays touched by all threads.
type Interleave struct{}

// NodeOf implements Placement.
func (Interleave) NodeOf(page, totalPages, nodes int) int { return page % nodes }

// String implements Placement.
func (Interleave) String() string { return "interleave" }

// Sliced places contiguous byte ranges on explicit nodes: Bounds[i] is the
// exclusive end offset (in bytes) of node i's slice. This models HiPa's
// contiguous virtual address space whose physical pages live on the NUMA
// node that owns the corresponding partition range (§3.4). A page whose
// start offset falls in slice i is owned by node i.
type Sliced struct {
	Bounds []int64
}

// NodeOf implements Placement.
func (s Sliced) NodeOf(page, totalPages, nodes int) int {
	off := int64(page) * PageBytes
	for i, end := range s.Bounds {
		if off < end {
			return i % nodes
		}
	}
	return (len(s.Bounds) - 1) % nodes
}

// String implements Placement.
func (s Sliced) String() string { return fmt.Sprintf("sliced(%d slices)", len(s.Bounds)) }

// Region is one simulated allocation.
type Region struct {
	Name string
	Base uint64 // simulated byte address of the first byte
	Size int64
	// nodeOf[p] is the NUMA node owning page p.
	nodeOf []uint8
}

// NodeAt returns the node owning the page containing the given byte offset.
func (r *Region) NodeAt(offset int64) int {
	if offset < 0 || offset >= r.Size {
		panic(fmt.Sprintf("memsim: offset %d out of range [0,%d) in region %s", offset, r.Size, r.Name))
	}
	return int(r.nodeOf[offset/PageBytes])
}

// Addr returns the simulated address of the given byte offset, for feeding
// the cache simulator.
func (r *Region) Addr(offset int64) uint64 { return r.Base + uint64(offset) }

// PagesOnNode returns how many of the region's pages live on each node.
func (r *Region) PagesOnNode(nodes int) []int64 {
	out := make([]int64, nodes)
	for _, n := range r.nodeOf {
		out[n]++
	}
	return out
}

// Space is a simulated address space. Allocations are appended; addresses
// never overlap. Not safe for concurrent Alloc; regions are immutable after
// allocation and safe for concurrent reads.
type Space struct {
	mach    *machine.Machine
	next    uint64
	regions []*Region
}

// NewSpace returns an empty address space for machine m.
func NewSpace(m *machine.Machine) *Space {
	// Start above zero so address 0 is never valid.
	return &Space{mach: m, next: PageBytes}
}

// Machine returns the machine this space belongs to.
func (s *Space) Machine() *machine.Machine { return s.mach }

// Alloc creates a region of the given size placed per policy.
func (s *Space) Alloc(name string, size int64, p Placement) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("memsim: allocation %q must have positive size, got %d", name, size)
	}
	pages := int((size + PageBytes - 1) / PageBytes)
	r := &Region{
		Name:   name,
		Base:   s.next,
		Size:   size,
		nodeOf: make([]uint8, pages),
	}
	nodes := s.mach.NUMANodes
	for pg := 0; pg < pages; pg++ {
		n := p.NodeOf(pg, pages, nodes)
		if n < 0 || n >= nodes {
			return nil, fmt.Errorf("memsim: policy %s produced node %d for %d-node machine", p, n, nodes)
		}
		r.nodeOf[pg] = uint8(n)
	}
	s.next += uint64(pages) * PageBytes
	s.regions = append(s.regions, r)
	return r, nil
}

// MustAlloc is Alloc that panics on error, for initialisation paths whose
// sizes are known positive.
func (s *Space) MustAlloc(name string, size int64, p Placement) *Region {
	r, err := s.Alloc(name, size, p)
	if err != nil {
		panic(err)
	}
	return r
}

// Regions returns all allocations in allocation order.
func (s *Space) Regions() []*Region { return s.regions }

// TotalBytes returns the total allocated bytes.
func (s *Space) TotalBytes() int64 {
	var t int64
	for _, r := range s.regions {
		t += r.Size
	}
	return t
}

// Counters accumulates classified memory traffic. The zero value is ready to
// use. Counters are not synchronised: use one per thread and Merge, or use
// AtomicCounters for shared accumulation.
type Counters struct {
	// LocalBytes and RemoteBytes are DRAM traffic classified by whether the
	// accessing core's node owns the page.
	LocalBytes, RemoteBytes int64
	// LocalAccesses / RemoteAccesses count discrete accesses.
	LocalAccesses, RemoteAccesses int64
}

// Record classifies an access of size bytes at offset within region r, made
// by a core on node coreNode.
func (c *Counters) Record(r *Region, offset int64, bytes int, coreNode int) {
	if r.NodeAt(offset) == coreNode {
		c.LocalBytes += int64(bytes)
		c.LocalAccesses++
	} else {
		c.RemoteBytes += int64(bytes)
		c.RemoteAccesses++
	}
}

// RecordN classifies n accesses of the same kind in one call (fast path for
// analytic accounting where the classification is known to be uniform).
func (c *Counters) RecordN(local bool, n int64, bytesEach int) {
	if local {
		c.LocalAccesses += n
		c.LocalBytes += n * int64(bytesEach)
	} else {
		c.RemoteAccesses += n
		c.RemoteBytes += n * int64(bytesEach)
	}
}

// Merge adds other into c.
func (c *Counters) Merge(other Counters) {
	c.LocalBytes += other.LocalBytes
	c.RemoteBytes += other.RemoteBytes
	c.LocalAccesses += other.LocalAccesses
	c.RemoteAccesses += other.RemoteAccesses
}

// TotalBytes returns local + remote traffic.
func (c Counters) TotalBytes() int64 { return c.LocalBytes + c.RemoteBytes }

// RemoteFraction returns the share of bytes that were remote, 0 if none.
func (c Counters) RemoteFraction() float64 {
	t := c.TotalBytes()
	if t == 0 {
		return 0
	}
	return float64(c.RemoteBytes) / float64(t)
}

// AtomicCounters is a synchronised variant for accumulation from multiple
// goroutines.
type AtomicCounters struct {
	localBytes, remoteBytes       atomic.Int64
	localAccesses, remoteAccesses atomic.Int64
}

// Record classifies an access; safe for concurrent use.
func (a *AtomicCounters) Record(r *Region, offset int64, bytes int, coreNode int) {
	if r.NodeAt(offset) == coreNode {
		a.localBytes.Add(int64(bytes))
		a.localAccesses.Add(1)
	} else {
		a.remoteBytes.Add(int64(bytes))
		a.remoteAccesses.Add(1)
	}
}

// Snapshot returns the current totals as plain Counters.
func (a *AtomicCounters) Snapshot() Counters {
	return Counters{
		LocalBytes:     a.localBytes.Load(),
		RemoteBytes:    a.remoteBytes.Load(),
		LocalAccesses:  a.localAccesses.Load(),
		RemoteAccesses: a.remoteAccesses.Load(),
	}
}
