package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"slices"

	"hipa/internal/platform"
)

// AllocBaselineVersion is the schema_version written into BENCH_*.json
// allocation baselines. Bump it when the measurement protocol or the field
// meanings change; Compare refuses to diff across versions. v2 added the
// frontier-aware engines (EC-HiPa, NB-PR) and the per-engine
// frontier-effectiveness fields; v3 added Delta-PR to the engine set and
// the dynamic-replay section (per-batch warm vs cold convergence
// iterations).
const AllocBaselineVersion = 3

// Baseline iteration counts of the differential measurement: per-iteration
// cost is (allocs at iterLong - allocs at iterShort) / (iterLong -
// iterShort), so every per-Exec fixed cost cancels.
const (
	allocIterShort = 4
	allocIterLong  = 12
)

// AllocMeasurement is one engine's allocation profile in an AllocBaseline.
type AllocMeasurement struct {
	// AllocsPerIter and BytesPerIter are the steady-state per-superstep heap
	// costs — 0 by design, gated exactly (they are deterministic: the hot
	// loop either allocates or it does not).
	AllocsPerIter int64 `json:"allocs_per_iter"`
	BytesPerIter  int64 `json:"bytes_per_iter"`
	// ExecAllocs and ExecBytes are the fixed per-Exec costs (worker pool
	// spawn, kernel construction, the one rank copy-out) at the short
	// iteration count, gated with slack — small runtime/Go-version drift here
	// is not a hot-path regression.
	ExecAllocs int64 `json:"exec_allocs"`
	ExecBytes  int64 `json:"exec_bytes"`
	// Frontier-effectiveness profile of one Exec at the long iteration
	// count, recorded for the frontier-aware engines only (all zero for the
	// dense five, whose Result.Frontier is nil): how many supersteps
	// actually ran, the executed share of the dense vertex-iteration space,
	// and the partition-iterations pruned away. Gated with slack — the
	// fields pin that pruning keeps engaging, not an exact trajectory.
	IterationsExecuted int     `json:"iterations_executed,omitempty"`
	ActiveFraction     float64 `json:"active_fraction,omitempty"`
	PartitionsSkipped  int64   `json:"partitions_skipped,omitempty"`
}

// DynamicBatch is one mutation batch of the dynamic-replay profile: how
// many iterations the sparse warm path (Delta-PR seeded from the graph
// delta on an Advance-patched artifact) spent converging against a cold
// HiPa re-rank of the same version, and how much of the graph the batch
// perturbed. The replay is deterministic (fixed stream seed), so the
// trajectory is stable enough to gate with slack.
type DynamicBatch struct {
	WarmIterations    int     `json:"warm_iterations"`
	ColdIterations    int     `json:"cold_iterations"`
	PerturbedFraction float64 `json:"perturbed_fraction"`
}

// AllocBaseline is the committed allocation-trajectory schema
// (BENCH_pagerank.json). Regenerate with:
//
//	go run ./cmd/hipabench -baseline BENCH_pagerank.json -baseline-write \
//	    -divisor <divisor> -datasets <dataset>
type AllocBaseline struct {
	SchemaVersion int    `json:"schema_version"`
	Suite         string `json:"suite"`
	Dataset       string `json:"dataset"`
	Divisor       int    `json:"divisor"`
	IterShort     int    `json:"iter_short"`
	IterLong      int    `json:"iter_long"`
	// Go records the toolchain that produced the numbers — informational
	// only, never compared.
	Go      string                      `json:"go"`
	Engines map[string]AllocMeasurement `json:"engines"`
	// Dynamic is the warm-vs-cold convergence trajectory of the dynamic
	// mutation replay on the same dataset — the incremental re-rank claim
	// (sparse warm starts converge in ≥2× fewer iterations) pinned per batch.
	Dynamic []DynamicBatch `json:"dynamic,omitempty"`
}

// median returns the middle value of xs (xs is sorted in place).
func median(xs []int64) int64 {
	slices.Sort(xs)
	return xs[len(xs)/2]
}

// measureAllocs mirrors testing.AllocsPerRun (warm-up call, GOMAXPROCS(1),
// averaged malloc-counter deltas) but reports bytes alongside counts.
func measureAllocs(runs int, f func()) (allocs, bytes int64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm: pools, free lists, lazily-built state
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	r := uint64(runs)
	return int64((after.Mallocs - before.Mallocs) / r), int64((after.TotalAlloc - before.TotalAlloc) / r)
}

// MeasureAllocBaseline profiles the steady-state Exec allocation behaviour
// of every engine on the named dataset and returns the baseline document.
// Measurements always run on the native platform: the modelled scheduler
// simulation allocates per simulated region by design, while the shared
// kernel path underneath is what the baseline pins.
func (c *Config) MeasureAllocBaseline(dataset string) (*AllocBaseline, error) {
	g, err := c.Graph(dataset)
	if err != nil {
		return nil, err
	}
	m, err := c.DefaultMachine()
	if err != nil {
		return nil, err
	}
	b := &AllocBaseline{
		SchemaVersion: AllocBaselineVersion,
		Suite:         "pagerank",
		Dataset:       dataset,
		Divisor:       c.Divisor,
		IterShort:     allocIterShort,
		IterLong:      allocIterLong,
		Go:            runtime.Version(),
		Engines:       map[string]AllocMeasurement{},
	}
	for _, e := range AllEngines() {
		o := c.PaperOptions(e.Name(), m)
		o.Platform = platform.NewNative(m)
		prep, err := e.Prepare(g, o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		exec := func(iters int) func() {
			oo := o
			oo.Iterations = iters
			return func() {
				if _, err := e.Exec(prep, oo); err != nil {
					panic(fmt.Sprintf("%s: Exec: %v", e.Name(), err))
				}
			}
		}
		// The differential is repeated and the median taken: the hot loop's
		// allocations are deterministic, but TotalAlloc also sees the
		// runtime's own background allocations (timers, GC bookkeeping),
		// which can tip a 0-bytes/iteration engine to ±1 in a single trial.
		const runs = 10
		const trials = 3
		span := int64(allocIterLong - allocIterShort)
		perIterAllocs := make([]int64, trials)
		perIterBytes := make([]int64, trials)
		var shortAllocs, shortBytes int64
		for trial := 0; trial < trials; trial++ {
			sa, sb := measureAllocs(runs, exec(allocIterShort))
			la, lb := measureAllocs(runs, exec(allocIterLong))
			perIterAllocs[trial] = (la - sa) / span
			perIterBytes[trial] = (lb - sb) / span
			if trial == 0 {
				shortAllocs, shortBytes = sa, sb
			}
		}
		meas := AllocMeasurement{
			AllocsPerIter: median(perIterAllocs),
			BytesPerIter:  median(perIterBytes),
			ExecAllocs:    shortAllocs,
			ExecBytes:     shortBytes,
		}
		// Frontier-effectiveness profile: one more Exec at the long count,
		// this time inspecting the result instead of the allocator.
		oo := o
		oo.Iterations = allocIterLong
		res, err := e.Exec(prep, oo)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if rep := res.Frontier; rep != nil {
			meas.IterationsExecuted = rep.IterationsExecuted
			meas.ActiveFraction = rep.ActiveFraction()
			meas.PartitionsSkipped = rep.PartitionsSkipped
		}
		b.Engines[e.Name()] = meas
	}
	// Dynamic-replay profile: the warm-vs-cold iteration trajectory of the
	// incremental re-rank experiment on the same dataset.
	rows, _, err := Dynamic(c, dataset)
	if err != nil {
		return nil, fmt.Errorf("dynamic replay: %w", err)
	}
	for _, r := range rows {
		b.Dynamic = append(b.Dynamic, DynamicBatch{
			WarmIterations:    r.DeltaIterations,
			ColdIterations:    r.ColdIterations,
			PerturbedFraction: r.PerturbedFraction,
		})
	}
	return b, nil
}

// Compare diffs a measured baseline against the committed one and returns
// one human-readable regression per violated gate (empty slice = pass).
// Per-iteration allocs and bytes are gated exactly; per-Exec fixed costs
// get 25% + 64-alloc/16KB headroom for runtime and toolchain drift.
func (b *AllocBaseline) Compare(measured *AllocBaseline) []string {
	var regressions []string
	fail := func(format string, args ...any) {
		regressions = append(regressions, fmt.Sprintf(format, args...))
	}
	if b.SchemaVersion != measured.SchemaVersion {
		fail("schema version mismatch: baseline v%d, measured v%d", b.SchemaVersion, measured.SchemaVersion)
		return regressions
	}
	if b.Dataset != measured.Dataset || b.Divisor != measured.Divisor ||
		b.IterShort != measured.IterShort || b.IterLong != measured.IterLong {
		fail("measurement shape mismatch: baseline (%s, divisor %d, iters %d/%d) vs measured (%s, divisor %d, iters %d/%d)",
			b.Dataset, b.Divisor, b.IterShort, b.IterLong,
			measured.Dataset, measured.Divisor, measured.IterShort, measured.IterLong)
		return regressions
	}
	for name, want := range b.Engines {
		got, ok := measured.Engines[name]
		if !ok {
			fail("%s: missing from measurement", name)
			continue
		}
		if got.AllocsPerIter != want.AllocsPerIter {
			fail("%s: allocs/iteration %d, baseline %d (exact gate)", name, got.AllocsPerIter, want.AllocsPerIter)
		}
		if got.BytesPerIter != want.BytesPerIter {
			fail("%s: bytes/iteration %d, baseline %d (exact gate)", name, got.BytesPerIter, want.BytesPerIter)
		}
		if limit := want.ExecAllocs + want.ExecAllocs/4 + 64; got.ExecAllocs > limit {
			fail("%s: per-Exec allocs %d exceed baseline %d (limit %d)", name, got.ExecAllocs, want.ExecAllocs, limit)
		}
		if limit := want.ExecBytes + want.ExecBytes/4 + 16<<10; got.ExecBytes > limit {
			fail("%s: per-Exec bytes %d exceed baseline %d (limit %d)", name, got.ExecBytes, want.ExecBytes, limit)
		}
		// Frontier-effectiveness gates (frontier-aware engines only): the
		// iteration count may drift ±25% and the active fraction ±0.1, but
		// an engine whose baseline pruned must still prune.
		if want.IterationsExecuted > 0 {
			lo, hi := want.IterationsExecuted*3/4, want.IterationsExecuted*5/4+1
			if got.IterationsExecuted < lo || got.IterationsExecuted > hi {
				fail("%s: iterations executed %d outside baseline %d ±25%%", name, got.IterationsExecuted, want.IterationsExecuted)
			}
			if d := got.ActiveFraction - want.ActiveFraction; d < -0.1 || d > 0.1 {
				fail("%s: active fraction %.3f drifted from baseline %.3f by more than 0.1", name, got.ActiveFraction, want.ActiveFraction)
			}
			if want.PartitionsSkipped > 0 && got.PartitionsSkipped == 0 {
				fail("%s: baseline skipped %d partition-iterations, measurement skipped none — pruning stopped engaging", name, want.PartitionsSkipped)
			}
		}
	}
	// Dynamic-replay gates: warm must beat cold strictly in every batch, and
	// the trajectory may drift only within slack (±25%+1 iterations, ±0.1
	// perturbed fraction) of the committed baseline.
	if len(b.Dynamic) != len(measured.Dynamic) {
		fail("dynamic replay: baseline has %d batches, measurement has %d", len(b.Dynamic), len(measured.Dynamic))
	} else {
		for i, want := range b.Dynamic {
			got := measured.Dynamic[i]
			if got.WarmIterations >= got.ColdIterations {
				fail("dynamic batch %d: warm path spent %d iterations, cold %d — warm starts stopped paying off", i+1, got.WarmIterations, got.ColdIterations)
			}
			if lo, hi := want.WarmIterations*3/4-1, want.WarmIterations*5/4+1; got.WarmIterations < lo || got.WarmIterations > hi {
				fail("dynamic batch %d: warm iterations %d outside baseline %d ±25%%+1", i+1, got.WarmIterations, want.WarmIterations)
			}
			if lo, hi := want.ColdIterations*3/4-1, want.ColdIterations*5/4+1; got.ColdIterations < lo || got.ColdIterations > hi {
				fail("dynamic batch %d: cold iterations %d outside baseline %d ±25%%+1", i+1, got.ColdIterations, want.ColdIterations)
			}
			if d := got.PerturbedFraction - want.PerturbedFraction; d < -0.1 || d > 0.1 {
				fail("dynamic batch %d: perturbed fraction %.3f drifted from baseline %.3f by more than 0.1", i+1, got.PerturbedFraction, want.PerturbedFraction)
			}
		}
	}
	return regressions
}

// WriteJSONFile writes the baseline document, indented, trailing newline.
func (b *AllocBaseline) WriteJSONFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadAllocBaseline loads a committed baseline document.
func ReadAllocBaseline(path string) (*AllocBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b AllocBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.SchemaVersion != AllocBaselineVersion {
		return nil, fmt.Errorf("%s: schema_version %d, this build understands %d", path, b.SchemaVersion, AllocBaselineVersion)
	}
	return &b, nil
}
