package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"slices"

	"hipa/internal/engines/bppr"
	"hipa/internal/platform"
)

// AllocBaselineVersion is the schema_version written into BENCH_*.json
// allocation baselines. Bump it when the measurement protocol or the field
// meanings change; Compare refuses to diff across versions. v2 added the
// frontier-aware engines (EC-HiPa, NB-PR) and the per-engine
// frontier-effectiveness fields; v3 added Delta-PR to the engine set and
// the dynamic-replay section (per-batch warm vs cold convergence
// iterations); v4 added B-PPR to the engine set, the batched-PPR traffic
// section (modelled bytes-moved-per-query per batch width, with the 4x
// amortization gate at B=16), and the batched path's own steady-state
// allocation differential.
const AllocBaselineVersion = 4

// Baseline iteration counts of the differential measurement: per-iteration
// cost is (allocs at iterLong - allocs at iterShort) / (iterLong -
// iterShort), so every per-Exec fixed cost cancels.
const (
	allocIterShort = 4
	allocIterLong  = 12
)

// AllocMeasurement is one engine's allocation profile in an AllocBaseline.
type AllocMeasurement struct {
	// AllocsPerIter and BytesPerIter are the steady-state per-superstep heap
	// costs — 0 by design, gated exactly (they are deterministic: the hot
	// loop either allocates or it does not).
	AllocsPerIter int64 `json:"allocs_per_iter"`
	BytesPerIter  int64 `json:"bytes_per_iter"`
	// ExecAllocs and ExecBytes are the fixed per-Exec costs (worker pool
	// spawn, kernel construction, the one rank copy-out) at the short
	// iteration count, gated with slack — small runtime/Go-version drift here
	// is not a hot-path regression.
	ExecAllocs int64 `json:"exec_allocs"`
	ExecBytes  int64 `json:"exec_bytes"`
	// Frontier-effectiveness profile of one Exec at the long iteration
	// count, recorded for the frontier-aware engines only (all zero for the
	// dense five, whose Result.Frontier is nil): how many supersteps
	// actually ran, the executed share of the dense vertex-iteration space,
	// and the partition-iterations pruned away. Gated with slack — the
	// fields pin that pruning keeps engaging, not an exact trajectory.
	IterationsExecuted int     `json:"iterations_executed,omitempty"`
	ActiveFraction     float64 `json:"active_fraction,omitempty"`
	PartitionsSkipped  int64   `json:"partitions_skipped,omitempty"`
}

// DynamicBatch is one mutation batch of the dynamic-replay profile: how
// many iterations the sparse warm path (Delta-PR seeded from the graph
// delta on an Advance-patched artifact) spent converging against a cold
// HiPa re-rank of the same version, and how much of the graph the batch
// perturbed. The replay is deterministic (fixed stream seed), so the
// trajectory is stable enough to gate with slack.
type DynamicBatch struct {
	WarmIterations    int     `json:"warm_iterations"`
	ColdIterations    int     `json:"cold_iterations"`
	PerturbedFraction float64 `json:"perturbed_fraction"`
}

// BatchPoint is one width of the batched-PPR amortization profile: the
// modelled DRAM traffic per query when width-B batches share each
// superstep's structure stream. The query workload is deterministic
// (BatchQueries), so the trajectory is stable enough to gate with slack.
type BatchPoint struct {
	B             int     `json:"b"`
	BytesPerQuery float64 `json:"bytes_per_query"`
}

// AllocBaseline is the committed allocation-trajectory schema
// (BENCH_pagerank.json). Regenerate with:
//
//	go run ./cmd/hipabench -baseline BENCH_pagerank.json -baseline-write \
//	    -divisor <divisor> -datasets <dataset>
type AllocBaseline struct {
	SchemaVersion int    `json:"schema_version"`
	Suite         string `json:"suite"`
	Dataset       string `json:"dataset"`
	Divisor       int    `json:"divisor"`
	IterShort     int    `json:"iter_short"`
	IterLong      int    `json:"iter_long"`
	// Go records the toolchain that produced the numbers — informational
	// only, never compared.
	Go      string                      `json:"go"`
	Engines map[string]AllocMeasurement `json:"engines"`
	// Dynamic is the warm-vs-cold convergence trajectory of the dynamic
	// mutation replay on the same dataset — the incremental re-rank claim
	// (sparse warm starts converge in ≥2× fewer iterations) pinned per batch.
	Dynamic []DynamicBatch `json:"dynamic,omitempty"`
	// Batch is the modelled bytes-moved-per-query sweep of the batched
	// multi-source PPR engine over BatchWidths — the amortization claim
	// (B=16 at least 4× cheaper per query than B=1) pinned per width.
	Batch []BatchPoint `json:"batch,omitempty"`
	// BatchAllocsPerIter/BatchBytesPerIter are the steady-state
	// per-superstep heap costs of the batched (width-16) ExecBatch path —
	// zero by design, gated exactly like the per-engine figures.
	BatchAllocsPerIter int64 `json:"batch_allocs_per_iter"`
	BatchBytesPerIter  int64 `json:"batch_bytes_per_iter"`
}

// median returns the middle value of xs (xs is sorted in place).
func median(xs []int64) int64 {
	slices.Sort(xs)
	return xs[len(xs)/2]
}

// measureAllocs mirrors testing.AllocsPerRun (warm-up call, GOMAXPROCS(1),
// averaged malloc-counter deltas) but reports bytes alongside counts.
func measureAllocs(runs int, f func()) (allocs, bytes int64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm: pools, free lists, lazily-built state
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	r := uint64(runs)
	return int64((after.Mallocs - before.Mallocs) / r), int64((after.TotalAlloc - before.TotalAlloc) / r)
}

// MeasureAllocBaseline profiles the steady-state Exec allocation behaviour
// of every engine on the named dataset and returns the baseline document.
// Measurements always run on the native platform: the modelled scheduler
// simulation allocates per simulated region by design, while the shared
// kernel path underneath is what the baseline pins.
func (c *Config) MeasureAllocBaseline(dataset string) (*AllocBaseline, error) {
	g, err := c.Graph(dataset)
	if err != nil {
		return nil, err
	}
	m, err := c.DefaultMachine()
	if err != nil {
		return nil, err
	}
	b := &AllocBaseline{
		SchemaVersion: AllocBaselineVersion,
		Suite:         "pagerank",
		Dataset:       dataset,
		Divisor:       c.Divisor,
		IterShort:     allocIterShort,
		IterLong:      allocIterLong,
		Go:            runtime.Version(),
		Engines:       map[string]AllocMeasurement{},
	}
	for _, e := range AllEngines() {
		o := c.PaperOptions(e.Name(), m)
		o.Platform = platform.NewNative(m)
		prep, err := e.Prepare(g, o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		exec := func(iters int) func() {
			oo := o
			oo.Iterations = iters
			return func() {
				if _, err := e.Exec(prep, oo); err != nil {
					panic(fmt.Sprintf("%s: Exec: %v", e.Name(), err))
				}
			}
		}
		// The differential is repeated and the median taken: the hot loop's
		// allocations are deterministic, but TotalAlloc also sees the
		// runtime's own background allocations (timers, GC bookkeeping),
		// which can tip a 0-bytes/iteration engine to ±1 in a single trial.
		const runs = 10
		const trials = 3
		span := int64(allocIterLong - allocIterShort)
		perIterAllocs := make([]int64, trials)
		perIterBytes := make([]int64, trials)
		var shortAllocs, shortBytes int64
		for trial := 0; trial < trials; trial++ {
			sa, sb := measureAllocs(runs, exec(allocIterShort))
			la, lb := measureAllocs(runs, exec(allocIterLong))
			perIterAllocs[trial] = (la - sa) / span
			perIterBytes[trial] = (lb - sb) / span
			if trial == 0 {
				shortAllocs, shortBytes = sa, sb
			}
		}
		meas := AllocMeasurement{
			AllocsPerIter: median(perIterAllocs),
			BytesPerIter:  median(perIterBytes),
			ExecAllocs:    shortAllocs,
			ExecBytes:     shortBytes,
		}
		// Frontier-effectiveness profile: one more Exec at the long count,
		// this time inspecting the result instead of the allocator.
		oo := o
		oo.Iterations = allocIterLong
		res, err := e.Exec(prep, oo)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if rep := res.Frontier; rep != nil {
			meas.IterationsExecuted = rep.IterationsExecuted
			meas.ActiveFraction = rep.ActiveFraction()
			meas.PartitionsSkipped = rep.PartitionsSkipped
		}
		b.Engines[e.Name()] = meas
	}
	// Dynamic-replay profile: the warm-vs-cold iteration trajectory of the
	// incremental re-rank experiment on the same dataset.
	rows, _, err := Dynamic(c, dataset)
	if err != nil {
		return nil, fmt.Errorf("dynamic replay: %w", err)
	}
	for _, r := range rows {
		b.Dynamic = append(b.Dynamic, DynamicBatch{
			WarmIterations:    r.DeltaIterations,
			ColdIterations:    r.ColdIterations,
			PerturbedFraction: r.PerturbedFraction,
		})
	}
	// Batched-PPR traffic profile: the modelled bytes-moved-per-query sweep
	// on the same dataset (zero traffic when the config is native-only).
	batchRows, _, err := Batch(c, dataset)
	if err != nil {
		return nil, fmt.Errorf("batch sweep: %w", err)
	}
	for _, r := range batchRows {
		b.Batch = append(b.Batch, BatchPoint{B: r.B, BytesPerQuery: r.BytesPerQuery})
	}
	// Batched-path allocation differential: a width-16 ExecBatch measured
	// exactly like the scalar engines. The retirement tolerance is pushed
	// out of reach so the short and long runs execute exactly the requested
	// superstep counts and the differential spans a known distance.
	bo := c.PaperOptions(bppr.Name, m)
	bo.Platform = platform.NewNative(m)
	bo.Tolerance = 1e-30
	bprep, err := (bppr.Engine{}).Prepare(g, bo)
	if err != nil {
		return nil, fmt.Errorf("batched prepare: %w", err)
	}
	bq := BatchQueries(g, 16)
	bexec := func(iters int) func() {
		oo := bo
		oo.Iterations = iters
		return func() {
			if _, err := bppr.ExecBatch(bprep, oo, bq); err != nil {
				panic(fmt.Sprintf("batched Exec: %v", err))
			}
		}
	}
	{
		const runs = 10
		const trials = 3
		span := int64(allocIterLong - allocIterShort)
		perIterAllocs := make([]int64, trials)
		perIterBytes := make([]int64, trials)
		for trial := 0; trial < trials; trial++ {
			sa, sb := measureAllocs(runs, bexec(allocIterShort))
			la, lb := measureAllocs(runs, bexec(allocIterLong))
			perIterAllocs[trial] = (la - sa) / span
			perIterBytes[trial] = (lb - sb) / span
		}
		b.BatchAllocsPerIter = median(perIterAllocs)
		b.BatchBytesPerIter = median(perIterBytes)
	}
	return b, nil
}

// Compare diffs a measured baseline against the committed one and returns
// one human-readable regression per violated gate (empty slice = pass).
// Per-iteration allocs and bytes are gated exactly; per-Exec fixed costs
// get 25% + 64-alloc/16KB headroom for runtime and toolchain drift.
func (b *AllocBaseline) Compare(measured *AllocBaseline) []string {
	var regressions []string
	fail := func(format string, args ...any) {
		regressions = append(regressions, fmt.Sprintf(format, args...))
	}
	if b.SchemaVersion != measured.SchemaVersion {
		fail("schema version mismatch: baseline v%d, measured v%d", b.SchemaVersion, measured.SchemaVersion)
		return regressions
	}
	if b.Dataset != measured.Dataset || b.Divisor != measured.Divisor ||
		b.IterShort != measured.IterShort || b.IterLong != measured.IterLong {
		fail("measurement shape mismatch: baseline (%s, divisor %d, iters %d/%d) vs measured (%s, divisor %d, iters %d/%d)",
			b.Dataset, b.Divisor, b.IterShort, b.IterLong,
			measured.Dataset, measured.Divisor, measured.IterShort, measured.IterLong)
		return regressions
	}
	for name, want := range b.Engines {
		got, ok := measured.Engines[name]
		if !ok {
			fail("%s: missing from measurement", name)
			continue
		}
		if got.AllocsPerIter != want.AllocsPerIter {
			fail("%s: allocs/iteration %d, baseline %d (exact gate)", name, got.AllocsPerIter, want.AllocsPerIter)
		}
		if got.BytesPerIter != want.BytesPerIter {
			fail("%s: bytes/iteration %d, baseline %d (exact gate)", name, got.BytesPerIter, want.BytesPerIter)
		}
		if limit := want.ExecAllocs + want.ExecAllocs/4 + 64; got.ExecAllocs > limit {
			fail("%s: per-Exec allocs %d exceed baseline %d (limit %d)", name, got.ExecAllocs, want.ExecAllocs, limit)
		}
		if limit := want.ExecBytes + want.ExecBytes/4 + 16<<10; got.ExecBytes > limit {
			fail("%s: per-Exec bytes %d exceed baseline %d (limit %d)", name, got.ExecBytes, want.ExecBytes, limit)
		}
		// Frontier-effectiveness gates (frontier-aware engines only): the
		// iteration count may drift ±25% and the active fraction ±0.1, but
		// an engine whose baseline pruned must still prune.
		if want.IterationsExecuted > 0 {
			lo, hi := want.IterationsExecuted*3/4, want.IterationsExecuted*5/4+1
			if got.IterationsExecuted < lo || got.IterationsExecuted > hi {
				fail("%s: iterations executed %d outside baseline %d ±25%%", name, got.IterationsExecuted, want.IterationsExecuted)
			}
			if d := got.ActiveFraction - want.ActiveFraction; d < -0.1 || d > 0.1 {
				fail("%s: active fraction %.3f drifted from baseline %.3f by more than 0.1", name, got.ActiveFraction, want.ActiveFraction)
			}
			if want.PartitionsSkipped > 0 && got.PartitionsSkipped == 0 {
				fail("%s: baseline skipped %d partition-iterations, measurement skipped none — pruning stopped engaging", name, want.PartitionsSkipped)
			}
		}
	}
	// Dynamic-replay gates: warm must beat cold strictly in every batch, and
	// the trajectory may drift only within slack (±25%+1 iterations, ±0.1
	// perturbed fraction) of the committed baseline.
	if len(b.Dynamic) != len(measured.Dynamic) {
		fail("dynamic replay: baseline has %d batches, measurement has %d", len(b.Dynamic), len(measured.Dynamic))
	} else {
		for i, want := range b.Dynamic {
			got := measured.Dynamic[i]
			if got.WarmIterations >= got.ColdIterations {
				fail("dynamic batch %d: warm path spent %d iterations, cold %d — warm starts stopped paying off", i+1, got.WarmIterations, got.ColdIterations)
			}
			if lo, hi := want.WarmIterations*3/4-1, want.WarmIterations*5/4+1; got.WarmIterations < lo || got.WarmIterations > hi {
				fail("dynamic batch %d: warm iterations %d outside baseline %d ±25%%+1", i+1, got.WarmIterations, want.WarmIterations)
			}
			if lo, hi := want.ColdIterations*3/4-1, want.ColdIterations*5/4+1; got.ColdIterations < lo || got.ColdIterations > hi {
				fail("dynamic batch %d: cold iterations %d outside baseline %d ±25%%+1", i+1, got.ColdIterations, want.ColdIterations)
			}
			if d := got.PerturbedFraction - want.PerturbedFraction; d < -0.1 || d > 0.1 {
				fail("dynamic batch %d: perturbed fraction %.3f drifted from baseline %.3f by more than 0.1", i+1, got.PerturbedFraction, want.PerturbedFraction)
			}
		}
	}
	// Batched-PPR gates: the hot loop of the batched path stays
	// allocation-free (exact, like the per-engine figures), the per-width
	// traffic drifts at most ±25% from the committed trajectory, and the
	// amortization claim holds absolutely — bytes-moved-per-query at B=16 at
	// least 4× lower than at B=1.
	if measured.BatchAllocsPerIter != b.BatchAllocsPerIter {
		fail("batched path: allocs/iteration %d, baseline %d (exact gate)", measured.BatchAllocsPerIter, b.BatchAllocsPerIter)
	}
	if measured.BatchBytesPerIter != b.BatchBytesPerIter {
		fail("batched path: bytes/iteration %d, baseline %d (exact gate)", measured.BatchBytesPerIter, b.BatchBytesPerIter)
	}
	if len(b.Batch) != len(measured.Batch) {
		fail("batch sweep: baseline has %d widths, measurement has %d", len(b.Batch), len(measured.Batch))
	} else {
		var q1, q16 float64
		for i, want := range b.Batch {
			got := measured.Batch[i]
			if got.B != want.B {
				fail("batch sweep point %d: width %d, baseline %d", i, got.B, want.B)
				continue
			}
			if got.BytesPerQuery < want.BytesPerQuery*0.75 || got.BytesPerQuery > want.BytesPerQuery*1.25 {
				fail("batch B=%d: %.0f bytes/query outside baseline %.0f ±25%%", got.B, got.BytesPerQuery, want.BytesPerQuery)
			}
			switch got.B {
			case 1:
				q1 = got.BytesPerQuery
			case 16:
				q16 = got.BytesPerQuery
			}
		}
		if q1 > 0 && 4*q16 > q1 {
			fail("batch amortization: %.0f bytes/query at B=16 vs %.0f at B=1 (%.2fx, want at least 4x)", q16, q1, q1/q16)
		}
	}
	return regressions
}

// WriteJSONFile writes the baseline document, indented, trailing newline.
func (b *AllocBaseline) WriteJSONFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadAllocBaseline loads a committed baseline document.
func ReadAllocBaseline(path string) (*AllocBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b AllocBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.SchemaVersion != AllocBaselineVersion {
		return nil, fmt.Errorf("%s: schema_version %d, this build understands %d", path, b.SchemaVersion, AllocBaselineVersion)
	}
	return &b, nil
}
