// Package harness regenerates every table and figure of the paper's
// evaluation section as code: given a scale divisor, it generates the
// dataset analogs, scales the simulated machine by the same factor (so
// cache-to-working-set ratios match the paper's), runs the five engines with
// the paper's settings, and renders the same rows/series the paper reports.
//
// Experiment index (see DESIGN.md §3):
//
//	Table1     — graph statistics + intra/inter edges per 1MB partition
//	Table2     — PageRank execution time, 5 engines × 6 graphs
//	Overhead   — §4.2 preprocessing overhead and amortization
//	Fig5       — memory accesses per edge, local/remote split
//	Fig6       — scalability over thread counts on journal
//	Fig7       — LLC traffic + execution time over partition sizes
//	Table3     — partition-size sensitivity on Haswell vs Skylake
//	SingleNode — §4.5 single-node vs 2-node HiPa
//	Ablations  — design-choice ablations from DESIGN.md §4
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"hipa/internal/engines/bppr"
	"hipa/internal/engines/common"
	"hipa/internal/engines/delta"
	"hipa/internal/engines/ec"
	"hipa/internal/engines/gpop"
	"hipa/internal/engines/hipa"
	"hipa/internal/engines/nb"
	"hipa/internal/engines/polymer"
	"hipa/internal/engines/ppr"
	"hipa/internal/engines/vpr"
	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/machine"
	"hipa/internal/platform"
)

// Config parameterises a reproduction run.
type Config struct {
	// Divisor scales dataset vertex counts and machine capacities down from
	// paper scale. gen.DefaultDivisor (256) keeps the full suite at ~25M
	// edges.
	Divisor int
	// Iterations per timed run; the paper uses 20.
	Iterations int
	// Datasets restricts the experiments; nil means the full catalog.
	Datasets []string
	// SchedSeed seeds the simulated OS scheduler.
	SchedSeed uint64
	// Preset names the machine preset experiments run on when they don't
	// pick one themselves (Table 3 sweeps both); NewConfig sets "skylake".
	Preset string
	// Native runs every engine on the pass-through native platform: real
	// wall-clock execution with no scheduler/cache/cost modelling, so all
	// modelled columns report zero (see platform.Native).
	Native bool
	// Prep is the shared preprocessing-artifact cache threaded into every
	// engine run via PaperOptions, so sweep experiments (Fig. 6's thread
	// counts, Fig. 7's partition sizes, Table 2's grid) build each (graph,
	// partition-size) artifact exactly once. nil disables reuse.
	Prep *common.PrepCache
	// PrepParallelism is the Prepare-pipeline worker count threaded into
	// every engine run via PaperOptions (0 = all cores, positive = that
	// many). Artifacts are bit-identical at any setting.
	PrepParallelism int

	mu    sync.Mutex
	cache map[string]*graph.Graph
}

// NewConfig returns the default configuration (paper settings at divisor
// 256).
func NewConfig() *Config {
	return &Config{
		Divisor:    gen.DefaultDivisor,
		Iterations: common.DefaultIterations,
		SchedSeed:  0xC0FFEE,
		Preset:     "skylake",
		Prep:       common.NewPrepCache(64),
	}
}

// DatasetNames returns the configured dataset list.
func (c *Config) DatasetNames() []string {
	if len(c.Datasets) > 0 {
		return c.Datasets
	}
	return gen.Names()
}

// Graph returns the (cached) analog of the named dataset.
func (c *Config) Graph(name string) (*graph.Graph, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.cache[name]; ok {
		return g, nil
	}
	g, err := gen.GenerateByName(name, c.Divisor)
	if err != nil {
		return nil, err
	}
	if c.cache == nil {
		c.cache = map[string]*graph.Graph{}
	}
	c.cache[name] = g
	return g, nil
}

// Machine returns the named preset scaled by the divisor.
func (c *Config) Machine(preset string) (*machine.Machine, error) {
	f, ok := machine.Presets[preset]
	if !ok {
		return nil, fmt.Errorf("harness: unknown machine preset %q", preset)
	}
	return machine.Scaled(f(), c.Divisor), nil
}

// DefaultMachine returns the configured preset (Config.Preset, "skylake"
// when unset) scaled by the divisor — what every experiment that doesn't
// sweep microarchitectures runs on.
func (c *Config) DefaultMachine() (*machine.Machine, error) {
	preset := c.Preset
	if preset == "" {
		preset = "skylake"
	}
	return c.Machine(preset)
}

// PartBytes converts a paper-scale partition size to the scaled equivalent.
func (c *Config) PartBytes(paperBytes int) int {
	b := paperBytes / c.Divisor
	if b < 16 {
		b = 16
	}
	return b
}

// Engines returns the five engines in the paper's reporting order.
// Paper-shape experiments iterate exactly this set.
func Engines() []common.Engine {
	return []common.Engine{hipa.Engine{}, ppr.Engine{}, vpr.Engine{}, gpop.Engine{}, polymer.Engine{}}
}

// AllEngines returns every registered engine: the paper five followed by
// the frontier-aware additions (EC-HiPa, NB-PR, Delta-PR) and the batched
// personalized-PageRank engine (B-PPR).
func AllEngines() []common.Engine {
	return append(Engines(), ec.Engine{}, nb.Engine{}, delta.Engine{}, bppr.Engine{})
}

// engineAliases maps short -engine spellings to registry names.
var engineAliases = map[string]string{
	"ec":    ec.Name,
	"nb":    nb.Name,
	"delta": delta.Name,
	"bppr":  bppr.Name,
}

// EngineNames returns every accepted -engine value: the registry names in
// order, short aliases appended.
func EngineNames() []string {
	var names []string
	for _, e := range AllEngines() {
		names = append(names, e.Name())
	}
	return append(names, "ec", "nb", "delta", "bppr")
}

// EngineByName looks an engine up by its registry name (case-insensitive)
// or a short alias ("ec", "nb", "delta"). The error of an unknown name lists every
// accepted value.
func EngineByName(name string) (common.Engine, error) {
	if full, ok := engineAliases[strings.ToLower(name)]; ok {
		name = full
	}
	for _, e := range AllEngines() {
		if strings.EqualFold(e.Name(), name) {
			return e, nil
		}
	}
	return nil, fmt.Errorf("harness: unknown engine %q (choose from %s)", name, strings.Join(EngineNames(), ", "))
}

// PaperOptions returns the paper's tuned settings (§4.1) for the given
// engine on machine m at the configured scale: 40 threads and 256KB
// partitions for HiPa, 20 threads for p-PR (256KB) and GPOP (1MB), 40
// threads for v-PR and Polymer.
func (c *Config) PaperOptions(engineName string, m *machine.Machine) common.Options {
	o := common.Options{
		Machine:         m,
		Iterations:      c.Iterations,
		SchedSeed:       c.SchedSeed,
		PrepCache:       c.Prep,
		PrepParallelism: c.PrepParallelism,
	}
	if c.Native {
		o.Platform = platform.NewNative(m)
	}
	switch strings.ToLower(engineName) {
	case "hipa", "ec-hipa", "ec", "delta-pr", "delta", "b-ppr", "bppr":
		// EC-HiPa, Delta-PR, and B-PPR share HiPa's execution shape and
		// tuning; their pruning/retirement tolerances default inside the
		// engines when Tolerance is zero.
		o.Threads = m.LogicalCores()
		o.PartitionBytes = c.PartBytes(256 << 10)
	case "p-pr":
		o.Threads = m.PhysicalCores()
		o.PartitionBytes = c.PartBytes(256 << 10)
	case "gpop":
		o.Threads = m.PhysicalCores()
		o.PartitionBytes = c.PartBytes(1 << 20)
	default: // v-PR, Polymer, NB-PR
		o.Threads = m.LogicalCores()
	}
	return o
}

// Seconds returns the run time experiments report for res: the modelled
// estimate on a simulated platform, the real wall-clock time on the native
// platform (where modelled metrics are zero by contract, never fabricated).
func (c *Config) Seconds(res *common.Result) float64 {
	if c.Native {
		return res.WallSeconds
	}
	return res.Model.EstimatedSeconds
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as RFC-4180-style CSV (title and notes as
// comment lines), for piping into plotting tools.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("# " + t.Title + "\n")
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("# " + n + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderJSON writes the table as an indented JSON object
// ({"title","header","rows","notes"}), the machine-readable form hipabench
// emits for benchmark trajectories (BENCH_*.json).
func (t *Table) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.Title, t.Header, t.Rows, t.Notes})
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
