package harness

import (
	"encoding/json"
	"io"

	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/machine"
	"hipa/internal/obs"
	"hipa/internal/perfmodel"
	"hipa/internal/sched"
)

// RunReport is the machine-readable record of one engine run: the Result's
// scalars, the analytic model report, the simulated scheduler stats, the
// per-iteration statistics, and the collector's counters/gauges/phase
// timers. It is what `hipapr -stats` writes and what benchmark
// trajectories (BENCH_*.json) are built from.
type RunReport struct {
	Engine     string `json:"engine"`
	Vertices   int    `json:"vertices"`
	Edges      int64  `json:"edges"`
	Threads    int    `json:"threads"`
	Iterations int    `json:"iterations"`
	Machine    string `json:"machine,omitempty"`

	WallSeconds float64 `json:"wall_seconds"`
	// PrepSeconds is this run's artifact-acquisition wall time; on a prep-
	// cache hit it is the fetch cost, and PrepBuildSeconds keeps the cold
	// construction cost of the artifact served.
	PrepSeconds      float64 `json:"prep_seconds"`
	PrepBuildSeconds float64 `json:"prep_build_seconds"`
	PrepFromCache    bool    `json:"prep_from_cache,omitempty"`

	Model *perfmodel.Report `json:"model,omitempty"`
	Sched sched.Stats       `json:"sched"`

	Iters []obs.IterationStats `json:"iterations_detail,omitempty"`

	Counters map[string]int64   `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	Phases   map[string]float64 `json:"phase_seconds,omitempty"`
}

// NewRunReport assembles the report for one run. g and m may be nil when
// unknown; rec may be nil (Result.Iters is used either way, so reports from
// un-instrumented runs still carry the scalar fields).
func NewRunReport(g *graph.Graph, m *machine.Machine, res *common.Result, rec *obs.Recorder) *RunReport {
	r := &RunReport{
		Engine:           res.Engine,
		Threads:          res.Threads,
		Iterations:       res.Iterations,
		WallSeconds:      res.WallSeconds,
		PrepSeconds:      res.PrepSeconds,
		PrepBuildSeconds: res.PrepBuildSeconds,
		PrepFromCache:    res.PrepFromCache,
		Model:            res.Model,
		Sched:            res.Sched,
		Iters:            res.Iters,
	}
	if g != nil {
		r.Vertices = g.NumVertices()
		r.Edges = g.NumEdges()
	}
	if m != nil {
		r.Machine = m.String()
	}
	if c := rec.C(); c != nil {
		r.Counters = c.Counters()
		r.Gauges = c.Gauges()
		r.Phases = c.Phases()
	}
	return r
}

// WriteJSON writes the report as indented JSON. Struct field order and
// encoding/json's sorted map keys keep the output deterministic for a
// deterministic run.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSONFile writes the report to path atomically (temp file + rename),
// so an interrupted run never leaves a truncated report.
func (r *RunReport) WriteJSONFile(path string) error {
	return obs.WriteFileAtomic(path, r.WriteJSON)
}
