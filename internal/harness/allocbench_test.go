package harness

import (
	"path/filepath"
	"testing"
)

// TestMeasureAllocBaselineZeroPerIteration runs the real measurement at test
// scale and pins the headline property the committed BENCH_pagerank.json
// records: zero steady-state allocations per iteration for every engine.
func TestMeasureAllocBaselineZeroPerIteration(t *testing.T) {
	cfg := testConfig()
	b, err := cfg.MeasureAllocBaseline("journal")
	if err != nil {
		t.Fatal(err)
	}
	if b.SchemaVersion != AllocBaselineVersion || b.Suite != "pagerank" {
		t.Errorf("header = v%d %q, want v%d pagerank", b.SchemaVersion, b.Suite, AllocBaselineVersion)
	}
	if len(b.Engines) != len(AllEngines()) {
		t.Fatalf("measured %d engines, want %d", len(b.Engines), len(AllEngines()))
	}
	for name, m := range b.Engines {
		if m.AllocsPerIter != 0 || m.BytesPerIter != 0 {
			t.Errorf("%s: %d allocs (%d B) per steady-state iteration, want 0", name, m.AllocsPerIter, m.BytesPerIter)
		}
		if m.ExecAllocs <= 0 {
			t.Errorf("%s: per-Exec allocs = %d, expected a positive fixed cost", name, m.ExecAllocs)
		}
	}
	// The frontier-aware engines carry an effectiveness profile; the dense
	// five must not.
	for _, name := range []string{"EC-HiPa", "NB-PR", "Delta-PR"} {
		if m := b.Engines[name]; m.IterationsExecuted <= 0 || m.ActiveFraction <= 0 {
			t.Errorf("%s: frontier profile missing: %+v", name, m)
		}
	}
	for _, e := range Engines() {
		if m := b.Engines[e.Name()]; m.IterationsExecuted != 0 || m.ActiveFraction != 0 || m.PartitionsSkipped != 0 {
			t.Errorf("%s: dense engine has a frontier profile: %+v", e.Name(), m)
		}
	}

	// The dynamic-replay profile must be present with warm beating cold in
	// every batch — the incremental re-rank claim the baseline pins.
	if len(b.Dynamic) != dynamicBatches {
		t.Fatalf("dynamic profile has %d batches, want %d", len(b.Dynamic), dynamicBatches)
	}
	for i, batch := range b.Dynamic {
		if batch.WarmIterations >= batch.ColdIterations {
			t.Errorf("dynamic batch %d: warm %d vs cold %d iterations — warm start did not pay off", i+1, batch.WarmIterations, batch.ColdIterations)
		}
		if batch.PerturbedFraction <= 0 {
			t.Errorf("dynamic batch %d: perturbed fraction %g, want > 0", i+1, batch.PerturbedFraction)
		}
	}

	// The batched-PPR profile: one point per width, monotone amortization
	// down to B=16, and an allocation-free batched hot loop.
	if len(b.Batch) != len(BatchWidths) {
		t.Fatalf("batch profile has %d widths, want %d", len(b.Batch), len(BatchWidths))
	}
	for i, p := range b.Batch {
		if p.B != BatchWidths[i] || p.BytesPerQuery <= 0 {
			t.Errorf("batch point %d = %+v, want width %d with positive traffic", i, p, BatchWidths[i])
		}
	}
	if b.BatchAllocsPerIter != 0 || b.BatchBytesPerIter != 0 {
		t.Errorf("batched path: %d allocs (%d B) per steady-state iteration, want 0", b.BatchAllocsPerIter, b.BatchBytesPerIter)
	}

	// Round-trip through the on-disk format.
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := b.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadAllocBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if regressions := loaded.Compare(b); len(regressions) != 0 {
		t.Errorf("self-comparison reported regressions: %v", regressions)
	}
}

func TestAllocBaselineCompareGates(t *testing.T) {
	base := &AllocBaseline{
		SchemaVersion: AllocBaselineVersion, Suite: "pagerank", Dataset: "journal",
		Divisor: 1024, IterShort: 4, IterLong: 12,
		Engines: map[string]AllocMeasurement{
			"HiPa":    {AllocsPerIter: 0, BytesPerIter: 0, ExecAllocs: 30, ExecBytes: 30000},
			"EC-HiPa": {ExecAllocs: 30, ExecBytes: 30000, IterationsExecuted: 12, ActiveFraction: 0.8, PartitionsSkipped: 40},
		},
		Dynamic: []DynamicBatch{{WarmIterations: 4, ColdIterations: 10, PerturbedFraction: 0.004}},
		Batch: []BatchPoint{
			{B: 1, BytesPerQuery: 48_000_000},
			{B: 4, BytesPerQuery: 16_000_000},
			{B: 16, BytesPerQuery: 7_400_000},
			{B: 64, BytesPerQuery: 7_600_000},
		},
	}
	clone := func(mutate func(*AllocBaseline)) *AllocBaseline {
		c := *base
		c.Engines = map[string]AllocMeasurement{}
		for k, v := range base.Engines {
			c.Engines[k] = v
		}
		c.Dynamic = append([]DynamicBatch(nil), base.Dynamic...)
		c.Batch = append([]BatchPoint(nil), base.Batch...)
		mutate(&c)
		return &c
	}
	cases := []struct {
		name    string
		mutate  func(*AllocBaseline)
		flagged bool
	}{
		{"identical", func(*AllocBaseline) {}, false},
		{"one alloc per iteration", func(b *AllocBaseline) {
			b.Engines["HiPa"] = AllocMeasurement{AllocsPerIter: 1, BytesPerIter: 64, ExecAllocs: 30, ExecBytes: 30000}
		}, true},
		{"per-Exec drift within slack", func(b *AllocBaseline) {
			b.Engines["HiPa"] = AllocMeasurement{ExecAllocs: 35, ExecBytes: 33000}
		}, false},
		{"per-Exec blowup", func(b *AllocBaseline) {
			b.Engines["HiPa"] = AllocMeasurement{ExecAllocs: 500, ExecBytes: 30000}
		}, true},
		{"engine missing", func(b *AllocBaseline) { delete(b.Engines, "HiPa") }, true},
		{"shape mismatch", func(b *AllocBaseline) { b.Divisor = 256 }, true},
		{"frontier drift within slack", func(b *AllocBaseline) {
			b.Engines["EC-HiPa"] = AllocMeasurement{ExecAllocs: 30, ExecBytes: 30000, IterationsExecuted: 13, ActiveFraction: 0.85, PartitionsSkipped: 25}
		}, false},
		{"iteration-count blowup", func(b *AllocBaseline) {
			b.Engines["EC-HiPa"] = AllocMeasurement{ExecAllocs: 30, ExecBytes: 30000, IterationsExecuted: 20, ActiveFraction: 0.8, PartitionsSkipped: 40}
		}, true},
		{"active-fraction drift", func(b *AllocBaseline) {
			b.Engines["EC-HiPa"] = AllocMeasurement{ExecAllocs: 30, ExecBytes: 30000, IterationsExecuted: 12, ActiveFraction: 0.95, PartitionsSkipped: 40}
		}, true},
		{"pruning stopped engaging", func(b *AllocBaseline) {
			b.Engines["EC-HiPa"] = AllocMeasurement{ExecAllocs: 30, ExecBytes: 30000, IterationsExecuted: 12, ActiveFraction: 0.8, PartitionsSkipped: 0}
		}, true},
		{"dynamic drift within slack", func(b *AllocBaseline) {
			b.Dynamic[0] = DynamicBatch{WarmIterations: 5, ColdIterations: 11, PerturbedFraction: 0.05}
		}, false},
		{"dynamic warm stopped paying off", func(b *AllocBaseline) {
			b.Dynamic[0] = DynamicBatch{WarmIterations: 10, ColdIterations: 10, PerturbedFraction: 0.004}
		}, true},
		{"dynamic warm-iteration blowup", func(b *AllocBaseline) {
			b.Dynamic[0] = DynamicBatch{WarmIterations: 8, ColdIterations: 10, PerturbedFraction: 0.004}
		}, true},
		{"dynamic perturbed-fraction drift", func(b *AllocBaseline) {
			b.Dynamic[0] = DynamicBatch{WarmIterations: 4, ColdIterations: 10, PerturbedFraction: 0.2}
		}, true},
		{"dynamic batch-count mismatch", func(b *AllocBaseline) {
			b.Dynamic = append(b.Dynamic, DynamicBatch{WarmIterations: 4, ColdIterations: 10})
		}, true},
		{"batch traffic drift within slack", func(b *AllocBaseline) {
			b.Batch[2] = BatchPoint{B: 16, BytesPerQuery: 8_000_000}
		}, false},
		{"batch traffic blowup", func(b *AllocBaseline) {
			b.Batch[2] = BatchPoint{B: 16, BytesPerQuery: 11_000_000}
		}, true},
		{"batch amortization regression", func(b *AllocBaseline) {
			// Every width drifts within per-point slack, but B=1 slides down
			// and B=16 up until the absolute 4x claim no longer holds.
			b.Batch[0] = BatchPoint{B: 1, BytesPerQuery: 36_100_000}
			b.Batch[2] = BatchPoint{B: 16, BytesPerQuery: 9_200_000}
		}, true},
		{"batch width-count mismatch", func(b *AllocBaseline) {
			b.Batch = b.Batch[:3]
		}, true},
		{"batched path allocates", func(b *AllocBaseline) {
			b.BatchAllocsPerIter = 2
			b.BatchBytesPerIter = 128
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := base.Compare(clone(tc.mutate))
			if (len(got) > 0) != tc.flagged {
				t.Errorf("regressions = %v, want flagged=%v", got, tc.flagged)
			}
		})
	}
}
