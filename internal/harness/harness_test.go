package harness

import (
	"bytes"
	"strings"
	"testing"
)

// testConfig returns a fast configuration that still preserves the paper's
// cache-to-working-set ratios (divisor applied to both data and machine).
func testConfig() *Config {
	cfg := NewConfig()
	cfg.Divisor = 1024
	cfg.Iterations = 10
	return cfg
}

func TestConfigHelpers(t *testing.T) {
	cfg := testConfig()
	if got := cfg.PartBytes(256 << 10); got != 256 {
		t.Errorf("PartBytes(256K) = %d, want 256", got)
	}
	if got := cfg.PartBytes(1); got != 16 {
		t.Errorf("PartBytes floor = %d, want 16", got)
	}
	if _, err := cfg.Machine("skylake"); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Machine("bogus"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
	if _, err := cfg.Graph("journal"); err != nil {
		t.Fatal(err)
	}
	// Cached: same pointer.
	g1, _ := cfg.Graph("journal")
	g2, _ := cfg.Graph("journal")
	if g1 != g2 {
		t.Error("graph cache miss")
	}
	if _, err := cfg.Graph("bogus"); err == nil {
		t.Error("expected error for unknown dataset")
	}
	names := cfg.DatasetNames()
	if len(names) != 6 {
		t.Errorf("DatasetNames = %v", names)
	}
	if _, err := EngineByName("hipa"); err != nil {
		t.Error("EngineByName should be case-insensitive")
	}
	if _, err := EngineByName("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestPaperOptions(t *testing.T) {
	cfg := testConfig()
	m, _ := cfg.Machine("skylake")
	if o := cfg.PaperOptions("hipa", m); o.Threads != 40 || o.PartitionBytes != 256 {
		t.Errorf("hipa options: %+v", o)
	}
	if o := cfg.PaperOptions("p-PR", m); o.Threads != 20 || o.PartitionBytes != 256 {
		t.Errorf("p-PR options: %+v", o)
	}
	if o := cfg.PaperOptions("GPOP", m); o.Threads != 20 || o.PartitionBytes != 1024 {
		t.Errorf("GPOP options: %+v", o)
	}
	if o := cfg.PaperOptions("v-PR", m); o.Threads != 40 {
		t.Errorf("v-PR options: %+v", o)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T ==", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"journal", "kron"}
	rows, tbl, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Vertices <= 0 || r.Edges <= 0 {
			t.Errorf("%s: empty analog", r.Dataset)
		}
		// Paper Table 1: inter-edges per 1MB partition vastly outnumber
		// intra-edges for all datasets.
		if r.InterPerPartition <= r.IntraPerPartition {
			t.Errorf("%s: inter (%.0f) should exceed intra (%.0f) per partition",
				r.Dataset, r.InterPerPartition, r.IntraPerPartition)
		}
	}
}

// The headline claim (Table 2): HiPa is the fastest implementation on every
// graph, with speedup over the best alternative roughly in the paper's band.
func TestTable2HiPaWinsEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog experiment")
	}
	cfg := testConfig()
	rows, tbl, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("table rows = %d", len(tbl.Rows))
	}
	for _, r := range rows {
		bestName, best := r.Best("HiPa")
		h := r.Seconds["HiPa"]
		if h >= best {
			t.Errorf("%s: HiPa %.4fs not fastest (best is %s at %.4fs)", r.Dataset, h, bestName, best)
			continue
		}
		speedup := best / h
		// Paper band is 1.11–1.45x; allow a generous envelope for the
		// simulated substrate but fail if HiPa stops being meaningfully
		// ahead or implausibly far ahead.
		if speedup < 1.02 || speedup > 3.0 {
			t.Errorf("%s: speedup vs best = %.2f outside plausible band", r.Dataset, speedup)
		}
	}
}

// Fig. 5's claims: HiPa has the lowest remote share; the NUMA-oblivious
// engines sit near 50% remote; partition-centric engines move far fewer
// bytes per edge than vertex-centric ones.
func TestFig5MemoryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog experiment")
	}
	cfg := testConfig()
	rows, _, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RemoteFrac["HiPa"] >= 0.25 {
			t.Errorf("%s: HiPa remote fraction %.2f too high", r.Dataset, r.RemoteFrac["HiPa"])
		}
		for _, obliv := range []string{"p-PR", "v-PR", "GPOP"} {
			if f := r.RemoteFrac[obliv]; f < 0.4 || f > 0.6 {
				t.Errorf("%s: %s remote fraction %.2f, want ~0.5", r.Dataset, obliv, f)
			}
			if r.RemoteFrac["HiPa"] >= r.RemoteFrac[obliv] {
				t.Errorf("%s: HiPa remote >= %s remote", r.Dataset, obliv)
			}
		}
		// Polymer: NUMA-aware, low remote share (paper ~10%).
		if f := r.RemoteFrac["Polymer"]; f > 0.25 {
			t.Errorf("%s: Polymer remote fraction %.2f too high", r.Dataset, f)
		}
		// v-PR's MApE dwarfs the partition-centric engines on the large
		// graphs (rank array far beyond LLC).
		if r.Dataset != "journal" && r.MApE["v-PR"] < 2*r.MApE["HiPa"] {
			t.Errorf("%s: v-PR MApE %.1f not >> HiPa %.1f", r.Dataset, r.MApE["v-PR"], r.MApE["HiPa"])
		}
	}
}

// Fig. 6's claims: the conventional partition-centric engines peak before 40
// threads and degrade when all logical cores are used; HiPa and the
// vertex-centric engines do not degrade meaningfully.
func TestFig6ScalabilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	cfg := testConfig()
	series, _, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig6Series{}
	for _, s := range series {
		byName[s.Engine] = s
	}
	for _, name := range []string{"p-PR", "GPOP"} {
		s := byName[name]
		if best := s.BestThreads(); best >= 40 {
			t.Errorf("%s: best thread count %d, want < 40 (contention past physical cores)", name, best)
		}
		// Degradation at 40 vs own best should be noticeable (paper ~2x).
		best := s.SecondsAt[0]
		for _, v := range s.SecondsAt {
			if v < best {
				best = v
			}
		}
		at40 := s.SecondsAt[len(s.SecondsAt)-1]
		if at40/best < 1.2 {
			t.Errorf("%s: degradation at 40 threads only %.2fx, want >= 1.2x", name, at40/best)
		}
	}
	for _, name := range []string{"HiPa", "v-PR", "Polymer"} {
		s := byName[name]
		best := s.SecondsAt[0]
		for _, v := range s.SecondsAt {
			if v < best {
				best = v
			}
		}
		at40 := s.SecondsAt[len(s.SecondsAt)-1]
		if at40/best > 1.15 {
			t.Errorf("%s: should not degrade at 40 threads (%.2fx of best)", name, at40/best)
		}
		// And all engines improve massively from 2 threads.
		if s.SecondsAt[0]/at40 < 2 {
			t.Errorf("%s: no parallel speedup (2 threads only %.2fx of 40)", name, s.SecondsAt[0]/at40)
		}
	}
}

// Fig. 7's claims: HiPa's best partition size is at or below 256KB; times
// rise sharply beyond 512KB; LLC traffic surges once partitions spill L2.
func TestFig7PartitionSizeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	cfg := testConfig()
	points, _, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perEngine := map[string][]Fig7Point{}
	for _, p := range points {
		perEngine[p.Engine] = append(perEngine[p.Engine], p)
	}
	for name, ps := range perEngine {
		best := ps[0]
		var at256, at8M Fig7Point
		var llcSmall, llcBig int64
		for _, p := range ps {
			if p.Seconds < best.Seconds {
				best = p
			}
			switch p.PaperBytes {
			case 256 << 10:
				at256 = p
				llcSmall = p.LLCAccesses
			case 8 << 20:
				at8M = p
				llcBig = p.LLCAccesses
			}
		}
		if best.PaperBytes > 1<<20 {
			t.Errorf("%s: best partition size %d, want <= 1MB", name, best.PaperBytes)
		}
		if at8M.Seconds < 2*at256.Seconds {
			t.Errorf("%s: 8MB partitions only %.2fx slower than 256KB, want sharp degradation",
				name, at8M.Seconds/at256.Seconds)
		}
		if llcBig <= llcSmall {
			t.Errorf("%s: LLC traffic did not surge with partition size (%d -> %d)", name, llcSmall, llcBig)
		}
	}
}

// Table 3's claim: the optimal partition size is smaller on Haswell (256KB
// L2) than the 512KB cliff, and both microarchitectures degrade sharply at
// 512KB; the Skylake optimum sits at 128-256KB (quarter of the 1MB L2).
func TestTable3MicroarchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	cfg := testConfig()
	cfg.Datasets = []string{"journal", "wiki"} // keep the sweep fast
	rows, _, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	// The paper's textual finding is about HiPa: optimum 256KB (L2/4) on
	// Skylake, 128KB (L2/2) on Haswell, sharp degradation at 512KB. (The
	// paper's own Table 3 numbers are inconsistent with its text for the
	// baselines; we assert the text's claims for the method under study.)
	for _, r := range rows {
		if r.Method != "HiPa" {
			continue
		}
		if r.BestSize() > 256<<10 {
			t.Errorf("%s/HiPa: best size %d, want <= 256KB", r.Microarch, r.BestSize())
		}
		best := r.Normalized[0]
		for _, v := range r.Normalized {
			if v < best {
				best = v
			}
		}
		if r.Normalized[len(r.Normalized)-1] < best*1.05 {
			t.Errorf("%s/HiPa: no degradation at 512KB: %v", r.Microarch, r.Normalized)
		}
	}
	// HiPa's Haswell optimum must not be larger than its Skylake optimum
	// (smaller L2 => smaller partitions).
	var hasw, sky Table3Row
	for _, r := range rows {
		if r.Method == "HiPa" {
			if r.Microarch == "haswell" {
				hasw = r
			} else {
				sky = r
			}
		}
	}
	if hasw.BestSize() > sky.BestSize() {
		t.Errorf("HiPa: Haswell optimum %d exceeds Skylake optimum %d", hasw.BestSize(), sky.BestSize())
	}
}

func TestOverheadAmortization(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"journal"}
	rows, _, err := Overhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.PrepSeconds <= 0 || r.PerIteration <= 0 {
		t.Fatalf("timings missing: %+v", r)
	}
	if r.AmortizeIters <= 0 {
		t.Errorf("amortization not computed: %+v", r)
	}
	if r.PrepCachedSeconds <= 0 {
		t.Errorf("cached prep time not measured: %+v", r)
	}
}

// TestFig6PrepCacheReuse: across Fig. 6's 5-engine × 7-thread-count sweep,
// the shared prep cache builds each artifact exactly once — one per
// partition-centric engine configuration (HiPa, p-PR, GPOP) plus one vertex
// artifact shared by v-PR and Polymer. The other 31 runs are hits, because
// thread count is not part of the artifact key.
func TestFig6PrepCacheReuse(t *testing.T) {
	cfg := testConfig()
	if _, _, err := Fig6(cfg); err != nil {
		t.Fatal(err)
	}
	s := cfg.Prep.Stats()
	if s.Misses != 4 {
		t.Errorf("artifact builds = %d, want 4 (thread sweep must reuse)", s.Misses)
	}
	runs := int64(5 * len(Fig6ThreadCounts))
	if s.Hits != runs-4 {
		t.Errorf("hits = %d, want %d", s.Hits, runs-4)
	}
	if s.Evictions != 0 {
		t.Errorf("evictions = %d, want 0", s.Evictions)
	}
}

func TestSingleNodeExperiment(t *testing.T) {
	cfg := testConfig()
	r, tbl, err := SingleNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("table rows = %d", len(tbl.Rows))
	}
	// Paper §4.5: single-node HiPa (all contention on one node) is slower
	// than 2-node HiPa at the same thread count.
	if r.OneNodeSeconds <= r.TwoNodeSeconds {
		t.Errorf("1-node HiPa (%.5f) should be slower than 2-node (%.5f)", r.OneNodeSeconds, r.TwoNodeSeconds)
	}
	// And GPOP remains the slowest of the partition-centric trio.
	if r.GPOPSeconds <= r.TwoNodeSeconds {
		t.Errorf("GPOP (%.5f) should be slower than 2-node HiPa (%.5f)", r.GPOPSeconds, r.TwoNodeSeconds)
	}
}

// Ablations: every removed design ingredient must cost something — either
// time, traffic, or scheduler events.
func TestAblationsShape(t *testing.T) {
	cfg := testConfig()
	results, tbl, err := Ablations(cfg, "journal")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 || len(tbl.Rows) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	full := results[0]
	byName := map[string]AblationResult{}
	for _, r := range results {
		byName[r.Variant] = r
	}
	if nc := byName["no-compression"]; nc.MApE <= full.MApE {
		t.Errorf("disabling compression should raise MApE: %.2f vs %.2f", nc.MApE, full.MApE)
	}
	if fc := byName["fcfs-no-pinning"]; fc.Remote <= full.Remote {
		t.Errorf("FCFS should raise remote fraction: %.3f vs %.3f", fc.Remote, full.Remote)
	}
	if fc := byName["fcfs-no-pinning"]; fc.Seconds <= full.Seconds {
		t.Errorf("FCFS should be slower: %.5f vs %.5f", fc.Seconds, full.Seconds)
	}
}

func TestNodeScaling(t *testing.T) {
	cfg := testConfig()
	rows, tbl, err := NodeScaling(cfg, "journal")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More nodes must keep helping (the §4.5 expectation): monotone speedup.
	for i := 1; i < len(rows); i++ {
		if rows[i].Seconds >= rows[i-1].Seconds {
			t.Errorf("%d nodes (%.5fs) not faster than %d nodes (%.5fs)",
				rows[i].Nodes, rows[i].Seconds, rows[i-1].Nodes, rows[i-1].Seconds)
		}
	}
	if rows[0].RemoteFrac != 0 {
		t.Errorf("1-node remote fraction = %f, want 0", rows[0].RemoteFrac)
	}
}

func TestFrontierExperimentShape(t *testing.T) {
	cfg := testConfig()
	rows, tbl, err := Frontier(cfg, "journal")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (HiPa, EC-HiPa, NB-PR)", len(rows))
	}
	byName := map[string]FrontierRow{}
	for _, r := range rows {
		byName[r.Engine] = r
		if r.Iterations >= frontierBudget {
			t.Errorf("%s never converged within %d iterations", r.Engine, frontierBudget)
		}
	}
	if h := byName["HiPa"]; h.ActiveFraction != 1 || h.PartitionsSkipped != 0 {
		t.Errorf("dense HiPa row must report the full active set: %+v", h)
	}
	ecRow := byName["EC-HiPa"]
	if ecRow.PartitionsSkipped <= 0 || ecRow.ActiveFraction >= 1 {
		t.Errorf("EC-HiPa pruned nothing: %+v", ecRow)
	}
	// Accuracy gates: the synchronous engines stay within 10× the tolerance;
	// NB-PR's chaotic iteration on a power-law graph gets the same 200×
	// headroom as its hammer test (hub in-degree amplifies a sub-tolerance
	// residual).
	for name, limit := range map[string]float64{"HiPa": 10, "EC-HiPa": 10, "NB-PR": 200} {
		if r := byName[name]; r.MaxAbsDiff > limit*FrontierTolerance {
			t.Errorf("%s: max abs error %g vs exact ranks, want <= %g", name, r.MaxAbsDiff, limit*FrontierTolerance)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "has,comma"}, {"q\"uote", "x"}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# T\n", "a,b\n", `"has,comma"`, `"q""uote"`, "# n\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

// TestDynamicExperiment runs the incremental re-rank replay and gates the
// headline claim: the sparse warm path converges in at least 2× fewer
// iterations than cold re-ranking, at cold-level accuracy, with modelled
// traffic savings to match.
func TestDynamicExperiment(t *testing.T) {
	cfg := testConfig()
	rows, tbl, err := Dynamic(cfg, "journal")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != dynamicBatches || len(tbl.Rows) != dynamicBatches {
		t.Fatalf("rows = %d, want %d", len(rows), dynamicBatches)
	}
	var cold, warm, delta int
	for _, r := range rows {
		if r.Inserted == 0 && r.Deleted == 0 {
			t.Errorf("batch %d applied no effective mutations", r.Batch)
		}
		if r.PerturbedFraction <= 0 || r.PerturbedFraction > 1 {
			t.Errorf("batch %d: perturbed fraction %g out of range", r.Batch, r.PerturbedFraction)
		}
		if r.MaxAbsDiff > 10*FrontierTolerance {
			t.Errorf("batch %d: warm delta drifted %g from cold (limit %g)", r.Batch, r.MaxAbsDiff, 10*FrontierTolerance)
		}
		if r.ColdBytes > 0 && r.DeltaBytes >= r.ColdBytes {
			t.Errorf("batch %d: sparse warm run modelled %d bytes, cold %d — no traffic saved", r.Batch, r.DeltaBytes, r.ColdBytes)
		}
		cold += r.ColdIterations
		warm += r.WarmIterations
		delta += r.DeltaIterations
	}
	if 2*delta > cold {
		t.Errorf("sparse warm path spent %d iterations vs %d cold — want at least 2× fewer", delta, cold)
	}
	if warm >= cold {
		t.Errorf("dense warm path spent %d iterations vs %d cold — warm starts should converge faster", warm, cold)
	}
}
