package harness

import (
	"fmt"
	"math"

	"hipa/internal/engines/bppr"
	"hipa/internal/engines/common"
	"hipa/internal/engines/delta"
	"hipa/internal/engines/ec"
	"hipa/internal/engines/hipa"
	"hipa/internal/engines/nb"
	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/machine"
	"hipa/internal/partition"
)

// ---------------------------------------------------------------- Table 1

// Table1Row is one dataset's statistics (paper Table 1).
type Table1Row struct {
	Dataset           string
	Vertices          int
	Edges             int64
	IntraPerPartition float64 // at the paper's 1MB reference partition size
	InterPerPartition float64
}

// Table1 regenerates the graph-description table, including the
// intra/inter-edges per 1MB partition columns.
func Table1(cfg *Config) ([]Table1Row, *Table, error) {
	var rows []Table1Row
	t := &Table{
		Title:  "Table 1: Graph descriptions (scaled by divisor " + fmt.Sprint(cfg.Divisor) + ")",
		Header: []string{"graph", "vertices", "edges", "intra/part", "inter/part"},
		Notes: []string{
			"intra/inter are per-partition averages at the paper's 1MB reference size (scaled)",
			fmt.Sprintf("paper sizes are %dx larger; densities and skew match", cfg.Divisor),
		},
	}
	for _, name := range cfg.DatasetNames() {
		g, err := cfg.Graph(name)
		if err != nil {
			return nil, nil, err
		}
		h, err := partition.Build(g, partition.Config{
			PartitionBytes: cfg.PartBytes(1 << 20),
			BytesPerVertex: 4,
			NumNodes:       1,
			GroupsPerNode:  1,
		})
		if err != nil {
			return nil, nil, err
		}
		loc := partition.ComputeEdgeLocality(g, h)
		row := Table1Row{
			Dataset:           name,
			Vertices:          g.NumVertices(),
			Edges:             g.NumEdges(),
			IntraPerPartition: loc.IntraPerPartition,
			InterPerPartition: loc.InterPerPartition,
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(row.Vertices), fmt.Sprint(row.Edges),
			fmt.Sprintf("%.0f", row.IntraPerPartition),
			fmt.Sprintf("%.0f", row.InterPerPartition),
		})
	}
	return rows, t, nil
}

// ---------------------------------------------------------------- Table 2

// Table2Row holds one dataset's modelled execution times per engine.
type Table2Row struct {
	Dataset string
	Seconds map[string]float64 // engine name -> modelled seconds
	Wall    map[string]float64 // engine name -> real wall seconds
}

// Best returns the fastest engine other than skip.
func (r Table2Row) Best(skip string) (string, float64) {
	bestName, best := "", 0.0
	for name, s := range r.Seconds {
		if name == skip {
			continue
		}
		if bestName == "" || s < best {
			bestName, best = name, s
		}
	}
	return bestName, best
}

// Table2 regenerates the execution-time comparison (paper Table 2): 20
// iterations of PageRank under each engine's tuned settings.
func Table2(cfg *Config) ([]Table2Row, *Table, error) {
	m, err := cfg.DefaultMachine()
	if err != nil {
		return nil, nil, err
	}
	engines := Engines()
	t := &Table{
		Title:  fmt.Sprintf("Table 2: PageRank execution time (modelled seconds, %d iterations)", cfg.Iterations),
		Header: []string{"graph", "HiPa", "p-PR", "v-PR", "GPOP", "Polymer", "speedup-vs-best"},
		Notes: []string{
			"modelled on the scaled Skylake machine; the paper's shape (HiPa fastest) is the claim under test",
		},
	}
	var rows []Table2Row
	for _, name := range cfg.DatasetNames() {
		g, err := cfg.Graph(name)
		if err != nil {
			return nil, nil, err
		}
		row := Table2Row{Dataset: name, Seconds: map[string]float64{}, Wall: map[string]float64{}}
		for _, e := range engines {
			res, err := e.Run(g, cfg.PaperOptions(e.Name(), m))
			if err != nil {
				return nil, nil, fmt.Errorf("table2 %s/%s: %w", name, e.Name(), err)
			}
			row.Seconds[e.Name()] = cfg.Seconds(res)
			row.Wall[e.Name()] = res.WallSeconds
		}
		rows = append(rows, row)
		_, best := row.Best("HiPa")
		t.Rows = append(t.Rows, []string{
			name,
			f3(row.Seconds["HiPa"]), f3(row.Seconds["p-PR"]), f3(row.Seconds["v-PR"]),
			f3(row.Seconds["GPOP"]), f3(row.Seconds["Polymer"]),
			f2(best / row.Seconds["HiPa"]),
		})
	}
	return rows, t, nil
}

// ---------------------------------------------------------------- Overhead

// OverheadRow reports preprocessing cost and amortization (§4.2), cold and
// cached: PrepSeconds is the one-time artifact build, PrepCachedSeconds the
// artifact-fetch cost when a primed PrepCache serves a later query on the
// same graph — the "serve many PageRank queries" workload.
type OverheadRow struct {
	Dataset           string
	PrepSeconds       float64 // cold preprocessing wall time
	PrepCachedSeconds float64 // artifact fetch from a primed cache
	PerIteration      float64 // real per-iteration wall time
	AmortizeIters     float64 // cold prep / per-iteration
}

// Overhead regenerates the §4.2 preprocessing-overhead analysis for HiPa.
func Overhead(cfg *Config) ([]OverheadRow, *Table, error) {
	m, err := cfg.DefaultMachine()
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Preprocessing overhead of HiPa (§4.2, real wall time on host)",
		Header: []string{"graph", "prep-cold(s)", "prep-cached(s)", "per-iter(s)", "amortized-by(iters)"},
		Notes: []string{
			"the paper reports amortization by ~12.7 iterations on average",
			"prep-cached is the artifact-fetch cost once a PrepCache is primed (prepare-once / exec-many serving)",
		},
	}
	e := hipa.Engine{}
	var rows []OverheadRow
	for _, name := range cfg.DatasetNames() {
		g, err := cfg.Graph(name)
		if err != nil {
			return nil, nil, err
		}
		o := cfg.PaperOptions("hipa", m)

		// Cold build: bypass the cache so the full §4.2 overhead is paid.
		cold := o
		cold.PrepCache = nil
		coldPrep, err := e.Prepare(g, cold)
		if err != nil {
			return nil, nil, err
		}
		// Cached fetch: prime the config's cache, then measure a reuse.
		if _, err := e.Prepare(g, o); err != nil {
			return nil, nil, err
		}
		warmPrep, err := e.Prepare(g, o)
		if err != nil {
			return nil, nil, err
		}
		res, err := e.Exec(warmPrep, o)
		if err != nil {
			return nil, nil, err
		}

		perIter := res.WallSeconds / float64(res.Iterations)
		row := OverheadRow{
			Dataset:           name,
			PrepSeconds:       coldPrep.PrepSeconds,
			PrepCachedSeconds: warmPrep.PrepSeconds,
			PerIteration:      perIter,
		}
		if perIter > 0 {
			row.AmortizeIters = row.PrepSeconds / perIter
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%.4f", row.PrepSeconds),
			fmt.Sprintf("%.4f", row.PrepCachedSeconds),
			fmt.Sprintf("%.4f", row.PerIteration), fmt.Sprintf("%.1f", row.AmortizeIters)})
	}
	return rows, t, nil
}

// ---------------------------------------------------------------- Fig. 5

// Fig5Row holds one dataset's memory-accesses-per-edge breakdown.
type Fig5Row struct {
	Dataset string
	// Per engine: total MApE, remote MApE, remote fraction.
	MApE       map[string]float64
	RemoteMApE map[string]float64
	RemoteFrac map[string]float64
}

// Fig5 regenerates the memory-utility figure: MApE (total and remote) for
// every engine on every graph.
func Fig5(cfg *Config) ([]Fig5Row, *Table, error) {
	m, err := cfg.DefaultMachine()
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Fig. 5: Memory accesses per edge (bytes; remote share in parens)",
		Header: []string{"graph", "HiPa", "p-PR", "v-PR", "GPOP", "Polymer"},
		Notes: []string{
			"paper averages: HiPa 9.57 (13.8% remote), p-PR 9.37 (48.9%), GPOP 8.89 (53.0%), v-PR 47.31 (50.9%), Polymer 26.66 (10.1%)",
		},
	}
	var rows []Fig5Row
	for _, name := range cfg.DatasetNames() {
		g, err := cfg.Graph(name)
		if err != nil {
			return nil, nil, err
		}
		row := Fig5Row{Dataset: name, MApE: map[string]float64{}, RemoteMApE: map[string]float64{}, RemoteFrac: map[string]float64{}}
		cells := []string{name}
		for _, e := range Engines() {
			res, err := e.Run(g, cfg.PaperOptions(e.Name(), m))
			if err != nil {
				return nil, nil, fmt.Errorf("fig5 %s/%s: %w", name, e.Name(), err)
			}
			row.MApE[e.Name()] = res.Model.MApE
			row.RemoteMApE[e.Name()] = res.Model.RemoteMApE
			row.RemoteFrac[e.Name()] = res.Model.RemoteFraction
			cells = append(cells, fmt.Sprintf("%.1f (%s)", res.Model.MApE, pct(res.Model.RemoteFraction)))
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, cells)
	}
	return rows, t, nil
}

// ---------------------------------------------------------------- Fig. 6

// Fig6ThreadCounts are the paper's x-axis points.
var Fig6ThreadCounts = []int{2, 4, 8, 16, 20, 32, 40}

// Fig6Series is one engine's normalized execution times over thread counts.
type Fig6Series struct {
	Engine string
	// SecondsAt[i] is the modelled time at Fig6ThreadCounts[i].
	SecondsAt []float64
	// Normalized[i] = SecondsAt[i] / SecondsAt(40 threads), as in Fig. 6.
	Normalized []float64
}

// BestThreads returns the thread count with the lowest modelled time.
func (s Fig6Series) BestThreads() int {
	best := 0
	for i := range s.SecondsAt {
		if s.SecondsAt[i] < s.SecondsAt[best] {
			best = i
		}
	}
	return Fig6ThreadCounts[best]
}

// Fig6 regenerates the scalability study on journal.
func Fig6(cfg *Config) ([]Fig6Series, *Table, error) {
	m, err := cfg.DefaultMachine()
	if err != nil {
		return nil, nil, err
	}
	g, err := cfg.Graph("journal")
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Fig. 6: Normalized execution time vs threads (journal)",
		Header: append([]string{"engine"}, mapStr(Fig6ThreadCounts, func(n int) string { return fmt.Sprint(n) })...),
		Notes: []string{
			"normalized by each engine's own 40-thread time, as in the paper",
			"paper shape: HiPa/v-PR/Polymer keep improving to 40; p-PR best ~16, GPOP best ~20, both ~2x worse at 40",
		},
	}
	var out []Fig6Series
	for _, e := range Engines() {
		s := Fig6Series{Engine: e.Name()}
		for _, th := range Fig6ThreadCounts {
			o := cfg.PaperOptions(e.Name(), m)
			o.Threads = th
			res, err := e.Run(g, o)
			if err != nil {
				return nil, nil, fmt.Errorf("fig6 %s@%d: %w", e.Name(), th, err)
			}
			s.SecondsAt = append(s.SecondsAt, cfg.Seconds(res))
		}
		at40 := s.SecondsAt[len(s.SecondsAt)-1]
		cells := []string{e.Name()}
		for _, sec := range s.SecondsAt {
			s.Normalized = append(s.Normalized, sec/at40)
			cells = append(cells, f2(sec/at40))
		}
		out = append(out, s)
		t.Rows = append(t.Rows, cells)
	}
	return out, t, nil
}

// ---------------------------------------------------------------- Fig. 7

// Fig7Sizes are the paper's partition-size sweep points (paper scale).
var Fig7Sizes = []int{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}

// Fig7Point is one (engine, size) measurement.
type Fig7Point struct {
	Engine      string
	PaperBytes  int
	Seconds     float64
	LLCAccesses int64
	LLCHitRatio float64
}

// Fig7 regenerates the partition-size sensitivity study on journal for the
// three partition-centric engines.
func Fig7(cfg *Config) ([]Fig7Point, *Table, error) {
	m, err := cfg.DefaultMachine()
	if err != nil {
		return nil, nil, err
	}
	g, err := cfg.Graph("journal")
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Fig. 7: Execution time and LLC traffic vs partition size (journal)",
		Header: []string{"engine", "size", "seconds", "LLC-accesses", "LLC-hit-ratio"},
		Notes: []string{
			"paper shape: best HiPa time at 256KB (quarter of L2); LLC traffic surges past 256KB",
			"sizes are paper-scale labels; actual sizes divided by the divisor",
		},
	}
	var out []Fig7Point
	for _, name := range []string{"HiPa", "p-PR", "GPOP"} {
		e, err := EngineByName(name)
		if err != nil {
			return nil, nil, err
		}
		for _, paperBytes := range Fig7Sizes {
			o := cfg.PaperOptions(name, m)
			o.PartitionBytes = cfg.PartBytes(paperBytes)
			res, err := e.Run(g, o)
			if err != nil {
				return nil, nil, fmt.Errorf("fig7 %s@%d: %w", name, paperBytes, err)
			}
			p := Fig7Point{
				Engine:      name,
				PaperBytes:  paperBytes,
				Seconds:     cfg.Seconds(res),
				LLCAccesses: res.Model.LLCAccesses,
				LLCHitRatio: res.Model.LLCHitRatio(),
			}
			out = append(out, p)
			t.Rows = append(t.Rows, []string{name, sizeLabel(paperBytes), f3(p.Seconds),
				fmt.Sprint(p.LLCAccesses), f2(p.LLCHitRatio)})
		}
	}
	return out, t, nil
}

// ---------------------------------------------------------------- Table 3

// Table3Sizes are the sweep points of Table 3 (paper scale).
var Table3Sizes = []int{64 << 10, 128 << 10, 256 << 10, 512 << 10}

// Table3Row is one (microarch, method) series of normalized times.
type Table3Row struct {
	Microarch  string
	Method     string
	Normalized []float64 // aligned with Table3Sizes
}

// BestSize returns the paper-scale partition size with the lowest time.
func (r Table3Row) BestSize() int {
	best := 0
	for i := range r.Normalized {
		if r.Normalized[i] < r.Normalized[best] {
			best = i
		}
	}
	return Table3Sizes[best]
}

// Table3 regenerates the microarchitecture sensitivity study: normalized
// execution time per partition size on Haswell and Skylake, averaged over
// the four graphs that fit the Haswell machine (kron and mpi excluded, as
// in the paper).
func Table3(cfg *Config) ([]Table3Row, *Table, error) {
	datasets := []string{"journal", "pld", "wiki", "twitter"}
	if len(cfg.Datasets) > 0 {
		datasets = cfg.Datasets
	}
	t := &Table{
		Title:  "Table 3: Normalized execution time by partition size (Haswell vs Skylake)",
		Header: []string{"march", "method", "64K", "128K", "256K", "512K", "best"},
		Notes: []string{
			"normalized by 128K on Haswell and 256K on Skylake, averaged over journal/pld/wiki/twitter (paper method)",
			"paper finding: optimum 256KB (L2/4) on Skylake, 128KB (L2/2) on Haswell; both degrade sharply at 512KB",
		},
	}
	var rows []Table3Row
	for _, arch := range []string{"haswell", "skylake"} {
		m, err := cfg.Machine(arch)
		if err != nil {
			return nil, nil, err
		}
		normIdx := 2 // 256K for skylake
		if arch == "haswell" {
			normIdx = 1 // 128K
		}
		for _, method := range []string{"HiPa", "p-PR", "GPOP"} {
			e, err := EngineByName(method)
			if err != nil {
				return nil, nil, err
			}
			avg := make([]float64, len(Table3Sizes))
			for _, name := range datasets {
				g, err := cfg.Graph(name)
				if err != nil {
					return nil, nil, err
				}
				secs := make([]float64, len(Table3Sizes))
				for i, paperBytes := range Table3Sizes {
					o := cfg.PaperOptions(method, m)
					o.PartitionBytes = cfg.PartBytes(paperBytes)
					if arch == "haswell" {
						// The Haswell testbed runs one thread per physical
						// core (its 256KB L2 cannot host two partition
						// working sets); this is what makes its optimum
						// land at L2/2 = 128KB while Skylake's HT-shared
						// 1MB L2 lands at L2/4 = 256KB (§4.5).
						o.Threads = m.PhysicalCores()
					}
					res, err := e.Run(g, o)
					if err != nil {
						return nil, nil, fmt.Errorf("table3 %s/%s/%s: %w", arch, method, name, err)
					}
					secs[i] = cfg.Seconds(res)
				}
				for i := range secs {
					avg[i] += secs[i] / secs[normIdx] / float64(len(datasets))
				}
			}
			row := Table3Row{Microarch: arch, Method: method, Normalized: avg}
			rows = append(rows, row)
			cells := []string{arch, method}
			for _, v := range avg {
				cells = append(cells, f2(v))
			}
			cells = append(cells, sizeLabel(row.BestSize()))
			t.Rows = append(t.Rows, cells)
		}
	}
	return rows, t, nil
}

// ---------------------------------------------------------------- §4.5 single node

// SingleNodeResult compares 1-node and 2-node deployments at equal thread
// counts (§4.5).
type SingleNodeResult struct {
	OneNodeSeconds float64 // HiPa, 1 node, 20 threads
	TwoNodeSeconds float64 // HiPa, 2 nodes, 20 threads
	PPRSeconds     float64 // p-PR, 2 nodes (oblivious), 20 threads
	GPOPSeconds    float64 // GPOP, 20 threads
}

// SingleNode regenerates the single-node experiment on journal.
func SingleNode(cfg *Config) (*SingleNodeResult, *Table, error) {
	g, err := cfg.Graph("journal")
	if err != nil {
		return nil, nil, err
	}
	two, err := cfg.DefaultMachine()
	if err != nil {
		return nil, nil, err
	}
	one := machine.SingleNode(two)

	r := &SingleNodeResult{}
	oHipa1 := cfg.PaperOptions("hipa", one)
	oHipa1.Threads = one.LogicalCores() // 20 threads on the single node
	res, err := (hipa.Engine{}).Run(g, oHipa1)
	if err != nil {
		return nil, nil, err
	}
	r.OneNodeSeconds = cfg.Seconds(res)

	oHipa2 := cfg.PaperOptions("hipa", two)
	oHipa2.Threads = 20
	res, err = (hipa.Engine{}).Run(g, oHipa2)
	if err != nil {
		return nil, nil, err
	}
	r.TwoNodeSeconds = cfg.Seconds(res)

	for name, dst := range map[string]*float64{"p-PR": &r.PPRSeconds, "GPOP": &r.GPOPSeconds} {
		e, err := EngineByName(name)
		if err != nil {
			return nil, nil, err
		}
		o := cfg.PaperOptions(name, two)
		o.Threads = 20
		res, err := e.Run(g, o)
		if err != nil {
			return nil, nil, err
		}
		*dst = cfg.Seconds(res)
	}

	t := &Table{
		Title:  "§4.5: Single-node vs 2-node at 20 threads (journal, modelled seconds)",
		Header: []string{"config", "seconds"},
		Rows: [][]string{
			{"HiPa 1-node/20t", fmt.Sprintf("%.5f", r.OneNodeSeconds)},
			{"HiPa 2-node/20t", fmt.Sprintf("%.5f", r.TwoNodeSeconds)},
			{"p-PR 2-node/20t", fmt.Sprintf("%.5f", r.PPRSeconds)},
			{"GPOP 2-node/20t", fmt.Sprintf("%.5f", r.GPOPSeconds)},
		},
		Notes: []string{"paper: 0.44s vs 0.39s vs 0.41s vs 1.14s — single-node HiPa loses to 2-node HiPa"},
	}
	return r, t, nil
}

// ---------------------------------------------------------------- node scaling

// NodeScalingRow reports HiPa on an N-node machine derivative.
type NodeScalingRow struct {
	Nodes      int
	Threads    int
	Seconds    float64
	RemoteFrac float64
	Speedup    float64 // vs the 1-node machine
}

// NodeScaling projects HiPa onto 1/2/4/8-node Skylake derivatives (the
// paper's §4.5 expectation that more nodes boost HiPa further), using all
// logical cores of each machine on the largest catalog graph requested.
func NodeScaling(cfg *Config, dataset string) ([]NodeScalingRow, *Table, error) {
	g, err := cfg.Graph(dataset)
	if err != nil {
		return nil, nil, err
	}
	base, err := cfg.DefaultMachine()
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Node scaling projection: HiPa on 1/2/4/8-node machines (" + dataset + ")",
		Header: []string{"nodes", "threads", "seconds", "remote", "speedup-vs-1node"},
		Notes:  []string{"§4.5: \"we expect the performance of HiPa to be further boosted in 4-node and 8-node machines\""},
	}
	var rows []NodeScalingRow
	var oneNode float64
	for _, nodes := range []int{1, 2, 4, 8} {
		m := machine.WithNodes(base, nodes)
		o := cfg.PaperOptions("hipa", m)
		o.Threads = m.LogicalCores()
		res, err := (hipa.Engine{}).Run(g, o)
		if err != nil {
			return nil, nil, err
		}
		if nodes == 1 {
			oneNode = cfg.Seconds(res)
		}
		row := NodeScalingRow{
			Nodes:      nodes,
			Threads:    res.Threads,
			Seconds:    cfg.Seconds(res),
			RemoteFrac: res.Model.RemoteFraction,
			Speedup:    oneNode / cfg.Seconds(res),
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nodes), fmt.Sprint(row.Threads), fmt.Sprintf("%.5f", row.Seconds),
			pct(row.RemoteFrac), f2(row.Speedup),
		})
	}
	return rows, t, nil
}

// ---------------------------------------------------------------- frontier

// FrontierTolerance is the convergence tolerance the frontier experiment
// runs every engine to; the per-partition retirement threshold of EC-HiPa
// and the round-termination threshold of NB-PR use the same value so the
// work-saved columns are comparable.
const FrontierTolerance = 1e-6

// frontierBudget bounds the run-to-convergence iteration count.
const frontierBudget = 200

// FrontierRow reports one engine's work-saved-vs-accuracy trade-off: dense
// HiPa as the exact baseline, then the frontier-aware engines, all run to
// FrontierTolerance. VertexIters is the executed vertex-iteration count (a
// dense engine accrues iterations × vertices); MaxAbsDiff is measured
// against exact power-iteration ranks.
type FrontierRow struct {
	Engine            string
	Iterations        int
	ActiveFraction    float64
	VertexIters       int64
	PartitionsSkipped int64
	MaxAbsDiff        float64
	Seconds           float64
}

// Frontier regenerates the work-saved-vs-accuracy comparison of the
// frontier-aware engines (EC-HiPa partition pruning, NB-PR barrierless
// rounds) against dense HiPa on the named dataset (EXPERIMENTS.md).
func Frontier(cfg *Config, dataset string) ([]FrontierRow, *Table, error) {
	m, err := cfg.DefaultMachine()
	if err != nil {
		return nil, nil, err
	}
	g, err := cfg.Graph(dataset)
	if err != nil {
		return nil, nil, err
	}
	exact := common.ReferencePageRank(g, frontierBudget, common.DefaultDamping)
	t := &Table{
		Title:  fmt.Sprintf("Frontier engines: work saved vs accuracy (%s, tolerance %g)", dataset, FrontierTolerance),
		Header: []string{"engine", "iters", "active%", "vertex-iters", "parts-skipped", "max-abs-diff", "seconds"},
		Notes: []string{
			"every engine runs to the same tolerance; max-abs-diff is vs exact power-iteration ranks",
			"active% is the executed share of the dense vertex-iteration space (100% = no pruning)",
		},
	}
	var rows []FrontierRow
	for _, e := range []common.Engine{hipa.Engine{}, ec.Engine{}, nb.Engine{}} {
		o := cfg.PaperOptions(e.Name(), m)
		o.Iterations = frontierBudget
		o.Tolerance = FrontierTolerance
		res, err := e.Run(g, o)
		if err != nil {
			return nil, nil, fmt.Errorf("frontier %s/%s: %w", dataset, e.Name(), err)
		}
		var diff float64
		for v := range exact {
			if d := math.Abs(float64(res.Ranks[v]) - exact[v]); d > diff {
				diff = d
			}
		}
		row := FrontierRow{
			Engine:     e.Name(),
			Iterations: res.Iterations,
			MaxAbsDiff: diff,
			Seconds:    cfg.Seconds(res),
		}
		if rep := res.Frontier; rep != nil {
			row.ActiveFraction = rep.ActiveFraction()
			row.VertexIters = rep.ActiveVertexIterations
			row.PartitionsSkipped = rep.PartitionsSkipped
		} else {
			row.ActiveFraction = 1
			row.VertexIters = int64(res.Iterations) * int64(g.NumVertices())
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			row.Engine, fmt.Sprint(row.Iterations), pct(row.ActiveFraction),
			fmt.Sprint(row.VertexIters), fmt.Sprint(row.PartitionsSkipped),
			fmt.Sprintf("%.2e", row.MaxAbsDiff), fmt.Sprintf("%.5f", row.Seconds),
		})
	}
	return rows, t, nil
}

// ---------------------------------------------------------------- ablations

// AblationResult compares HiPa against its own design ablations on one
// dataset (DESIGN.md §4).
type AblationResult struct {
	Variant string
	Seconds float64
	MApE    float64
	Remote  float64
	Sched   int64 // migrations
}

// Ablations runs HiPa's design ablations on the named dataset.
func Ablations(cfg *Config, dataset string) ([]AblationResult, *Table, error) {
	m, err := cfg.DefaultMachine()
	if err != nil {
		return nil, nil, err
	}
	g, err := cfg.Graph(dataset)
	if err != nil {
		return nil, nil, err
	}
	variants := []struct {
		name string
		mut  func(*common.Options)
	}{
		{"HiPa (full)", func(o *common.Options) {}},
		{"no-compression", func(o *common.Options) { o.NoCompress = true }},
		{"vertex-balanced", func(o *common.Options) { o.VertexBalanced = true }},
		{"fcfs-no-pinning", func(o *common.Options) { o.FCFS = true }},
	}
	t := &Table{
		Title:  "Ablations of HiPa design choices (" + dataset + ")",
		Header: []string{"variant", "seconds", "MApE", "remote%", "migrations"},
	}
	var out []AblationResult
	for _, v := range variants {
		o := cfg.PaperOptions("hipa", m)
		v.mut(&o)
		res, err := (hipa.Engine{}).Run(g, o)
		if err != nil {
			return nil, nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		a := AblationResult{
			Variant: v.name,
			Seconds: cfg.Seconds(res),
			MApE:    res.Model.MApE,
			Remote:  res.Model.RemoteFraction,
			Sched:   res.Sched.Migrations,
		}
		out = append(out, a)
		t.Rows = append(t.Rows, []string{a.Variant, f3(a.Seconds), f2(a.MApE), pct(a.Remote), fmt.Sprint(a.Sched)})
	}
	return out, t, nil
}

// ---------------------------------------------------------------- helpers

func sizeLabel(bytes int) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%dM", bytes>>20)
	default:
		return fmt.Sprintf("%dK", bytes>>10)
	}
}

func mapStr[T any](xs []T, f func(T) string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}

// ---------------------------------------------------------------- dynamic

// Replay shape of the dynamic experiment: a fixed number of deterministic
// mutation batches (dynamicSeed fixes the stream) so re-runs and the
// committed baseline see identical version histories.
const (
	dynamicBatches = 4
	dynamicSeed    = 42
)

// DynamicRow reports one mutation batch of the dynamic replay: the cost of
// re-ranking the new version cold (full HiPa Run) against the two warm
// paths — HiPa resuming densely from the previous version's converged ranks
// and Delta-PR seeded sparsely from the graph delta — all run to the same
// tolerance on an artifact patched forward with Prepared.Advance.
type DynamicRow struct {
	Batch             int
	Inserted          int
	Deleted           int
	PerturbedFraction float64 // perturbed vertices / total vertices
	ColdIterations    int
	WarmIterations    int     // HiPa, dense warm resume
	DeltaIterations   int     // Delta-PR, sparse delta seeding
	MaxAbsDiff        float64 // warm Delta-PR ranks vs the cold run
	ColdBytes         int64   // modelled local+remote DRAM traffic, cold
	DeltaBytes        int64   // and for the sparse warm run
	ColdSeconds       float64
	DeltaSeconds      float64
}

// IterationSpeedup is the convergence-work ratio of the batch: cold
// iterations per sparse-warm iteration.
func (r DynamicRow) IterationSpeedup() float64 {
	if r.DeltaIterations == 0 {
		return 0
	}
	return float64(r.ColdIterations) / float64(r.DeltaIterations)
}

// Dynamic regenerates the incremental re-rank experiment (EXPERIMENTS.md):
// replay dynamicBatches deterministic mutation batches against a versioned
// copy of the named dataset and compare cold re-ranking with the warm-start
// paths at every version. The headline claim the committed baseline gates:
// the sparse warm path converges in at least 2× fewer iterations than cold.
func Dynamic(cfg *Config, dataset string) ([]DynamicRow, *Table, error) {
	m, err := cfg.DefaultMachine()
	if err != nil {
		return nil, nil, err
	}
	g, err := cfg.Graph(dataset)
	if err != nil {
		return nil, nil, err
	}
	vg := graph.NewVersioned(g)
	batchSize := g.NumVertices() / 512
	if batchSize < 8 {
		batchSize = 8
	}
	stream, err := gen.NewMutationStream(vg, dynamicSeed, batchSize)
	if err != nil {
		return nil, nil, fmt.Errorf("dynamic %s: %w", dataset, err)
	}
	o := cfg.PaperOptions("hipa", m)
	o.Iterations = frontierBudget
	o.Tolerance = FrontierTolerance

	hipaEng, deltaEng := hipa.Engine{}, delta.Engine{}
	hipaPrep, err := hipaEng.Prepare(g, o)
	if err != nil {
		return nil, nil, fmt.Errorf("dynamic %s: base prepare: %w", dataset, err)
	}
	deltaPrep, err := deltaEng.Prepare(g, o)
	if err != nil {
		return nil, nil, fmt.Errorf("dynamic %s: base prepare: %w", dataset, err)
	}
	base, err := hipaEng.Exec(hipaPrep, o)
	if err != nil {
		return nil, nil, fmt.Errorf("dynamic %s: base run: %w", dataset, err)
	}
	warmHipa, warmDelta := base.Ranks, base.Ranks

	t := &Table{
		Title:  fmt.Sprintf("Dynamic replay: warm-start vs cold re-rank (%s, %d batches of %d mutations, tolerance %g)", dataset, dynamicBatches, batchSize, FrontierTolerance),
		Header: []string{"batch", "+edges", "-edges", "perturbed%", "cold-iters", "warm-iters", "delta-iters", "speedup", "max-abs-diff", "bytes-saved%"},
		Notes: []string{
			"cold re-ranks the new version from scratch; warm resumes HiPa densely from the previous ranks;",
			"delta seeds Delta-PR sparsely from the graph delta on an artifact patched forward with Advance",
			"speedup is cold-iters/delta-iters; bytes-saved% compares modelled DRAM traffic of delta vs cold",
		},
	}
	var rows []DynamicRow
	prevVer := vg.Version()
	for i := 0; i < dynamicBatches; i++ {
		if _, _, err := stream.Batches(1); err != nil {
			return nil, nil, fmt.Errorf("dynamic %s: batch %d: %w", dataset, i, err)
		}
		ver := vg.Version()
		d, err := vg.DeltaBetween(prevVer, ver)
		if err != nil {
			return nil, nil, fmt.Errorf("dynamic %s: batch %d: %w", dataset, i, err)
		}
		prevVer = ver
		if hipaPrep, err = hipaPrep.Advance(d, o); err != nil {
			return nil, nil, fmt.Errorf("dynamic %s: batch %d: hipa advance: %w", dataset, i, err)
		}
		if deltaPrep, err = deltaPrep.Advance(d, o); err != nil {
			return nil, nil, fmt.Errorf("dynamic %s: batch %d: delta advance: %w", dataset, i, err)
		}
		cold, err := hipaEng.Run(d.Next, o)
		if err != nil {
			return nil, nil, fmt.Errorf("dynamic %s: batch %d: cold: %w", dataset, i, err)
		}
		oW := o
		oW.Warm = &common.WarmStart{Ranks: warmHipa}
		wh, err := hipaEng.Exec(hipaPrep, oW)
		if err != nil {
			return nil, nil, fmt.Errorf("dynamic %s: batch %d: warm hipa: %w", dataset, i, err)
		}
		oD := o
		oD.Warm = &common.WarmStart{Ranks: warmDelta, Delta: d}
		wd, err := deltaEng.Exec(deltaPrep, oD)
		if err != nil {
			return nil, nil, fmt.Errorf("dynamic %s: batch %d: warm delta: %w", dataset, i, err)
		}
		warmHipa, warmDelta = wh.Ranks, wd.Ranks

		row := DynamicRow{
			Batch:             i + 1,
			Inserted:          d.Inserted,
			Deleted:           d.Deleted,
			PerturbedFraction: float64(len(d.Perturbed)) / float64(g.NumVertices()),
			ColdIterations:    cold.Iterations,
			WarmIterations:    wh.Iterations,
			DeltaIterations:   wd.Iterations,
			ColdSeconds:       cfg.Seconds(cold),
			DeltaSeconds:      cfg.Seconds(wd),
		}
		for v := range cold.Ranks {
			if diff := math.Abs(float64(wd.Ranks[v]) - float64(cold.Ranks[v])); diff > row.MaxAbsDiff {
				row.MaxAbsDiff = diff
			}
		}
		if cold.Model != nil && wd.Model != nil {
			row.ColdBytes = cold.Model.LocalBytes + cold.Model.RemoteBytes
			row.DeltaBytes = wd.Model.LocalBytes + wd.Model.RemoteBytes
		}
		rows = append(rows, row)
		saved := "n/a"
		if row.ColdBytes > 0 {
			saved = pct(1 - float64(row.DeltaBytes)/float64(row.ColdBytes))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.Batch), fmt.Sprint(row.Inserted), fmt.Sprint(row.Deleted),
			pct(row.PerturbedFraction), fmt.Sprint(row.ColdIterations),
			fmt.Sprint(row.WarmIterations), fmt.Sprint(row.DeltaIterations),
			f2(row.IterationSpeedup()), fmt.Sprintf("%.2e", row.MaxAbsDiff), saved,
		})
	}
	return rows, t, nil
}

// ---------------------------------------------------------------- batch

// BatchWidths are the sweep points of the batched-PPR amortization study.
var BatchWidths = []int{1, 4, 16, 64}

// batchQuerySeed fixes the deterministic personalized-query workload, so
// re-runs and the committed baseline measure identical batches.
const batchQuerySeed = 0xB1077

// BatchQueries returns the experiment's deterministic seeded-query workload
// for g: count personalized queries whose seed sets (1–3 distinct vertices
// each) come from an LCG stream fixed by batchQuerySeed.
func BatchQueries(g *graph.Graph, count int) []bppr.Query {
	n := uint64(g.NumVertices())
	state := uint64(batchQuerySeed)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 11
	}
	qs := make([]bppr.Query, count)
	for q := range qs {
		want := 1 + q%3
		seeds := make([]graph.VertexID, 0, want)
		for len(seeds) < want {
			v := graph.VertexID(next() % n)
			dup := false
			for _, s := range seeds {
				if s == v {
					dup = true
					break
				}
			}
			if !dup {
				seeds = append(seeds, v)
			}
		}
		qs[q] = bppr.Query{Seeds: seeds}
	}
	return qs
}

// BatchRow reports one width of the batched-PPR sweep: the modelled DRAM
// traffic per query when width-B batches share each superstep's structure
// stream, against the same queries' cost at width 1.
type BatchRow struct {
	B             int
	Supersteps    int   // driver iterations (the slowest column's count)
	ColSteps      int64 // Σ active columns per superstep (retirement-aware work)
	BytesPerQuery float64
	Amortization  float64 // BytesPerQuery at B=1 divided by this row's
	BatchSeconds  float64 // modelled whole-batch latency — what every query in the batch observes
	PerQuery      float64 // BatchSeconds / B, the amortized per-query cost
}

// Batch regenerates the batched multi-source PPR amortization study
// (EXPERIMENTS.md): the same deterministic personalized-query workload
// executed by B-PPR at widths BatchWidths over one shared Prepared artifact,
// run to per-column convergence. The headline claim the bench gate enforces:
// modelled bytes-moved-per-query at B=16 is at least 4x lower than at B=1,
// because the graph structure and message stream are read once per superstep
// regardless of width while per-column traffic only grows with the rank
// block.
func Batch(cfg *Config, dataset string) ([]BatchRow, *Table, error) {
	m, err := cfg.DefaultMachine()
	if err != nil {
		return nil, nil, err
	}
	g, err := cfg.Graph(dataset)
	if err != nil {
		return nil, nil, err
	}
	e := bppr.Engine{}
	o := cfg.PaperOptions(bppr.Name, m)
	o.Iterations = frontierBudget // run to per-column retirement, not an iteration cap
	prep, err := e.Prepare(g, o)
	if err != nil {
		return nil, nil, fmt.Errorf("batch %s: prepare: %w", dataset, err)
	}
	queries := BatchQueries(g, BatchWidths[len(BatchWidths)-1])
	t := &Table{
		Title:  fmt.Sprintf("Batched PPR: modelled bytes moved per query vs batch width (%s, tolerance %g)", dataset, bppr.DefaultTolerance),
		Header: []string{"B", "supersteps", "col-steps", "bytes/query", "amortize-x", "batch-secs", "secs/query"},
		Notes: []string{
			"width B executes the first B queries of the fixed workload as one batch over a shared artifact",
			"bytes/query is modelled local+remote DRAM traffic divided by B; amortize-x is relative to B=1",
			"batch-secs is the modelled whole-batch latency — the completion time every query in the batch observes",
			"modelled columns are zero on the native platform",
		},
	}
	var rows []BatchRow
	var base float64
	for _, b := range BatchWidths {
		br, err := bppr.ExecBatch(prep, o, queries[:b])
		if err != nil {
			return nil, nil, fmt.Errorf("batch %s: width %d: %w", dataset, b, err)
		}
		row := BatchRow{
			B:             b,
			Supersteps:    br.Supersteps,
			ColSteps:      br.ColSteps,
			BytesPerQuery: br.BytesPerQuery,
			BatchSeconds:  br.Model.EstimatedSeconds,
		}
		if cfg.Native {
			row.BatchSeconds = br.WallSeconds
		}
		row.PerQuery = row.BatchSeconds / float64(b)
		if b == BatchWidths[0] {
			base = row.BytesPerQuery
		}
		if row.BytesPerQuery > 0 {
			row.Amortization = base / row.BytesPerQuery
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.B), fmt.Sprint(row.Supersteps), fmt.Sprint(row.ColSteps),
			fmt.Sprintf("%.0f", row.BytesPerQuery), f2(row.Amortization),
			fmt.Sprintf("%.5f", row.BatchSeconds), fmt.Sprintf("%.5f", row.PerQuery),
		})
	}
	return rows, t, nil
}
