package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// tracePID is the process id stamped on every event. The whole run is one
// simulated process; lanes distinguish simulated threads.
const tracePID = 1

// traceEvent is one Chrome trace_event record. Field order is the export
// order (encoding/json preserves struct order), so the format is stable and
// golden-testable.
type traceEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	TS   int64            `json:"ts"` // microseconds since trace origin
	Dur  int64            `json:"dur,omitempty"`
	PID  int              `json:"pid"`
	TID  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// traceFile is the exported JSON object, loadable in chrome://tracing and
// Perfetto.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// Trace collects phase spans from concurrently running (simulated) threads
// and exports them in the Chrome trace_event JSON format: one lane per
// simulated thread (named after its sched placement), one complete ("X")
// event per span. All methods are no-ops on a nil receiver and safe for
// concurrent use.
type Trace struct {
	mu     sync.Mutex
	origin time.Time
	lanes  map[int]string
	spans  []traceEvent
}

// NewTrace returns a trace whose timestamps are measured from now.
func NewTrace() *Trace {
	return &Trace{origin: time.Now(), lanes: map[int]string{}}
}

// SetLane names the lane of simulated thread tid, e.g. "t03 node1 cpu12".
// Lane names become thread_name metadata events so trace viewers label the
// row with the thread's simulated placement.
func (t *Trace) SetLane(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.lanes[tid] = name
	t.mu.Unlock()
}

// Span records a completed span on thread tid's lane from start to now.
// iter >= 0 is attached as the span's "iter" argument (use -1 for spans
// outside the iteration loop, e.g. preprocessing).
func (t *Trace) Span(tid int, name string, iter int, start time.Time) {
	if t == nil {
		return
	}
	end := time.Now()
	ts := start.Sub(t.origin).Microseconds()
	if ts < 0 {
		ts = 0
	}
	dur := end.Sub(start).Microseconds()
	if dur < 0 {
		dur = 0
	}
	t.addSpan(tid, name, iter, ts, dur)
}

// AddSpanAt records a span with explicit microsecond timestamps. It exists
// for deterministic construction in tests and offline converters; engines
// use Span.
func (t *Trace) AddSpanAt(tid int, name string, iter int, tsMicros, durMicros int64) {
	if t == nil {
		return
	}
	t.addSpan(tid, name, iter, tsMicros, durMicros)
}

func (t *Trace) addSpan(tid int, name string, iter int, ts, dur int64) {
	ev := traceEvent{Name: name, Ph: "X", TS: ts, Dur: dur, PID: tracePID, TID: tid}
	if iter >= 0 {
		ev.Args = map[string]int64{"iter": int64(iter)}
	}
	t.mu.Lock()
	t.spans = append(t.spans, ev)
	t.mu.Unlock()
}

// NumSpans returns the number of recorded spans.
func (t *Trace) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// WriteJSON exports the trace: thread_name metadata events first (by lane),
// then the spans sorted by (timestamp, lane, name) so output is
// deterministic for a deterministic input and timestamps are monotonically
// non-decreasing.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil trace")
	}
	t.mu.Lock()
	events := make([]traceEvent, 0, len(t.lanes)+len(t.spans))
	tids := make([]int, 0, len(t.lanes))
	for tid := range t.lanes {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]int64{},
		})
	}
	spans := make([]traceEvent, len(t.spans))
	copy(spans, t.spans)
	laneNames := make(map[int]string, len(t.lanes))
	for tid, name := range t.lanes {
		laneNames[tid] = name
	}
	t.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	events = append(events, spans...)

	// thread_name metadata carries a string arg, which traceEvent's int64
	// args cannot express; emit those records by hand, then the spans via
	// the struct encoder. Field order matches traceEvent.
	if _, err := io.WriteString(w, "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n"); err != nil {
		return err
	}
	for i, ev := range events {
		var line []byte
		if ev.Ph == "M" {
			name, _ := json.Marshal(laneNames[ev.TID])
			line = []byte(fmt.Sprintf(`{"name":"thread_name","ph":"M","ts":0,"pid":%d,"tid":%d,"args":{"name":%s}}`, ev.PID, ev.TID, name))
		} else {
			var err error
			line, err = json.Marshal(ev)
			if err != nil {
				return err
			}
		}
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "    %s%s\n", line, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "  ]\n}\n")
	return err
}
