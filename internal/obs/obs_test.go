package obs

import (
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every entry point must be a no-op on nil receivers: this is the
	// "no collector configured costs nothing" contract engines rely on.
	var r *Recorder
	var c *Collector
	var tr *Trace
	c.Add("x", 1)
	c.Set("x", 1)
	c.AddPhase("x", time.Second)
	c.Phase("x")()
	if c.Counters() != nil || c.Gauges() != nil || c.Phases() != nil {
		t.Error("nil collector snapshots must be nil")
	}
	tr.SetLane(0, "a")
	tr.Span(0, "a", 0, time.Now())
	tr.AddSpanAt(0, "a", 0, 0, 1)
	if tr.NumSpans() != 0 {
		t.Error("nil trace must record nothing")
	}
	r.RecordIteration(IterationStats{})
	r.AnnotateModel(1, 1, 64, 1, true)
	if r.C() != nil || r.T() != nil || r.IterationStats() != nil {
		t.Error("nil recorder accessors must return nil")
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add("edges", 2)
			}
		}()
	}
	wg.Wait()
	c.Set("rank_sum", 1.0)
	c.AddPhase("prep", 250*time.Millisecond)
	c.AddPhase("prep", 250*time.Millisecond)
	if got := c.Counters()["edges"]; got != 1600 {
		t.Errorf("edges = %d, want 1600", got)
	}
	if got := c.Gauges()["rank_sum"]; got != 1.0 {
		t.Errorf("rank_sum = %g, want 1", got)
	}
	if got := c.Phases()["prep"]; got != 0.5 {
		t.Errorf("prep = %gs, want 0.5", got)
	}
}

func TestCollectorPhaseTimer(t *testing.T) {
	c := NewCollector()
	stop := c.Phase("work")
	time.Sleep(10 * time.Millisecond)
	stop()
	if got := c.Phases()["work"]; got < 0.005 {
		t.Errorf("work phase = %gs, want >= 5ms", got)
	}
}

func TestRecorderIterations(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 4; i++ {
		r.RecordIteration(IterationStats{Iter: i, Residual: 1.0 / float64(i+1)})
	}
	its := r.IterationStats()
	if len(its) != 4 {
		t.Fatalf("got %d iterations, want 4", len(its))
	}
	for i, it := range its {
		if it.Iter != i {
			t.Errorf("iteration %d has Iter=%d", i, it.Iter)
		}
	}
}

func TestAnnotateModelPinned(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 4; i++ {
		r.RecordIteration(IterationStats{Iter: i})
	}
	r.AnnotateModel(4000, 400, 64, 7, true)
	its := r.IterationStats()
	if its[0].SchedMigrations != 7 || its[1].SchedMigrations != 0 {
		t.Errorf("pinned migrations: iter0=%d iter1=%d, want 7/0", its[0].SchedMigrations, its[1].SchedMigrations)
	}
	for _, it := range its {
		if it.LocalBytes != 1000 || it.RemoteBytes != 100 {
			t.Errorf("iter %d traffic = %d/%d, want 1000/100", it.Iter, it.LocalBytes, it.RemoteBytes)
		}
		if it.LocalAccesses != 1000/64 || it.RemoteAccesses != 100/64 {
			t.Errorf("iter %d accesses = %d/%d", it.Iter, it.LocalAccesses, it.RemoteAccesses)
		}
	}
}

func TestAnnotateModelSpread(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 3; i++ {
		r.RecordIteration(IterationStats{Iter: i})
	}
	r.AnnotateModel(300, 30, 64, 7, false)
	var total int64
	for _, it := range r.IterationStats() {
		total += it.SchedMigrations
	}
	if total != 7 {
		t.Errorf("spread migrations sum = %d, want 7 (no migration lost to rounding)", total)
	}
}
