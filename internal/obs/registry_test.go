package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if r.Counter("test_total") != c {
		t.Error("same name+labels returned a different counter handle")
	}
	if r.Counter("test_total", "engine", "HiPa") == c {
		t.Error("different labels shared a handle")
	}

	g := r.Gauge("test_gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("metric_a")
	defer func() {
		if recover() == nil {
			t.Error("requesting a counter family as a gauge did not panic")
		}
	}()
	r.Gauge("metric_a")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	r.Counter("bad-name")
}

func TestLabelSignatureSortedAndEscaped(t *testing.T) {
	if got := labelSignature([]string{"b", "2", "a", "1"}); got != `a="1",b="2"` {
		t.Errorf("signature = %q, want sorted keys", got)
	}
	if got := labelSignature([]string{"k", "a\"b\\c\nd"}); got != `k="a\"b\\c\nd"` {
		t.Errorf("escaped signature = %q", got)
	}
}

func TestBucketIndexAndUpperConsistent(t *testing.T) {
	// Every positive in-range value must land in a bucket whose bound range
	// contains it: BucketUpper(i-1) < v <= BucketUpper(i).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := math.Ldexp(rng.Float64()+0.5, rng.Intn(50)-30)
		ix := bucketIndex(v)
		if ix <= histUnderflowIx || ix >= histOverflowIx {
			t.Fatalf("in-range value %g landed in edge bucket %d", v, ix)
		}
		if v > BucketUpper(ix) {
			t.Fatalf("v=%g above its bucket bound %g (bucket %d)", v, BucketUpper(ix), ix)
		}
		if lower := BucketUpper(ix - 1); v <= lower {
			t.Fatalf("v=%g at or below previous bound %g (bucket %d)", v, lower, ix)
		}
	}
	// Edge values.
	if bucketIndex(0) != histUnderflowIx || bucketIndex(-1) != histUnderflowIx || bucketIndex(math.NaN()) != histUnderflowIx {
		t.Error("non-positive/NaN values must land in the underflow bucket")
	}
	if bucketIndex(math.MaxFloat64) != histOverflowIx {
		t.Error("huge values must land in the overflow bucket")
	}
	if !math.IsInf(BucketUpper(histOverflowIx), 1) {
		t.Error("overflow bucket bound must be +Inf")
	}
	// Bucket bounds are strictly increasing, so cumulative exposition is
	// well-ordered.
	for i := 1; i < histNumBuckets; i++ {
		if !(BucketUpper(i) > BucketUpper(i-1)) {
			t.Fatalf("bounds not increasing at %d: %g <= %g", i, BucketUpper(i), BucketUpper(i-1))
		}
	}
}

// TestHistogramQuantileBounds checks the advertised estimate bound against
// an exact sorted reference: for any q, the estimate E of the true
// rank-⌈q·n⌉ sample v satisfies v <= E <= v·(1 + 1/8).
func TestHistogramQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Histogram{}
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Latency-like log-uniform spread over ~9 decades.
		v := math.Ldexp(rng.Float64()+0.5, rng.Intn(30)-20)
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Float64s(samples)
	snap := h.Snapshot()
	if snap.Count != uint64(len(samples)) {
		t.Fatalf("Count = %d, want %d", snap.Count, len(samples))
	}
	if snap.Min != samples[0] || snap.Max != samples[len(samples)-1] {
		t.Errorf("Min/Max = %g/%g, want %g/%g", snap.Min, snap.Max, samples[0], samples[len(samples)-1])
	}
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		rank := int(math.Ceil(q * float64(len(samples))))
		if rank < 1 {
			rank = 1
		}
		exact := samples[rank-1]
		est := snap.Quantile(q)
		if est < exact || est > exact*(1+1.0/histSubBuckets)+1e-12 {
			t.Errorf("q=%g: estimate %g outside [%g, %g]", q, est, exact, exact*(1+1.0/histSubBuckets))
		}
	}
	// The exact mean is carried alongside the buckets.
	var sum float64
	for _, v := range samples {
		sum += v
	}
	if got := snap.Mean(); math.Abs(got-sum/float64(len(samples))) > 1e-9*math.Abs(sum) {
		t.Errorf("Mean = %g, want %g", got, sum/float64(len(samples)))
	}
}

func TestHistogramSnapshotMergeAssociative(t *testing.T) {
	mk := func(seed int64, n int) HistogramSnapshot {
		rng := rand.New(rand.NewSource(seed))
		h := &Histogram{}
		for i := 0; i < n; i++ {
			h.Observe(math.Ldexp(rng.Float64()+0.5, rng.Intn(20)-10))
		}
		return h.Snapshot()
	}
	a, b, c := mk(1, 1000), mk(2, 500), mk(3, 1)

	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if left.Count != right.Count || left.Min != right.Min || left.Max != right.Max {
		t.Errorf("merge not associative: %+v vs %+v", left, right)
	}
	if math.Abs(left.Sum-right.Sum) > 1e-9*math.Abs(left.Sum) {
		t.Errorf("merged sums diverge: %g vs %g", left.Sum, right.Sum)
	}
	for i := range left.Counts {
		if left.Counts[i] != right.Counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, left.Counts[i], right.Counts[i])
		}
	}
	// Commutative, and merging an empty snapshot is the identity.
	ab, ba := a.Merge(b), b.Merge(a)
	if ab.Count != ba.Count || ab.Min != ba.Min || ab.Max != ba.Max {
		t.Error("merge not commutative")
	}
	id := a.Merge(HistogramSnapshot{})
	if id.Count != a.Count || id.Min != a.Min || id.Max != a.Max || id.Sum != a.Sum {
		t.Error("merging the empty snapshot changed the result")
	}
}

// TestHistogramConcurrentHammer records from many goroutines while scrapers
// snapshot and render concurrently; run under -race this is the registry's
// main concurrency gate. Final totals must be exact once writers quiesce.
// (Mid-flight, a snapshot's bucket sum and Count may disagree in either
// direction — they are independent atomics — so the scrapers only exercise
// the read paths; exactness is asserted after the barrier.)
func TestHistogramConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hammer_seconds", "engine", "test")
	c := r.Counter("hammer_total")
	const writers = 8
	const perWriter = 5000
	var writersWG, scrapersWG sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		scrapersWG.Add(1)
		go func() {
			defer scrapersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Snapshot()
				if snap.Count > 0 && (snap.Min < 0 || snap.Max >= 1) {
					t.Errorf("mid-flight min/max %g/%g outside sampled range [0,1)", snap.Min, snap.Max)
					return
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(seed int64) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(rng.Float64())
				c.Inc()
			}
		}(int64(w))
	}
	writersWG.Wait()
	close(stop)
	scrapersWG.Wait()
	if h.Count() != writers*perWriter || c.Value() != writers*perWriter {
		t.Errorf("totals = %d/%d, want %d", h.Count(), c.Value(), writers*perWriter)
	}
	snap := h.Snapshot()
	var cum uint64
	for _, n := range snap.Counts {
		cum += n
	}
	if cum != uint64(writers*perWriter) {
		t.Errorf("bucket sum = %d, want %d", cum, writers*perWriter)
	}
	if snap.Min < 0 || snap.Max >= 1 {
		t.Errorf("min/max %g/%g outside the sampled range [0,1)", snap.Min, snap.Max)
	}
}
