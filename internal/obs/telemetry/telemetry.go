// Package telemetry serves the process-wide obs.Registry over HTTP: a
// Prometheus /metrics endpoint, the stdlib pprof profiler, a liveness
// probe, and a ring buffer of recent run reports as JSON. It is the
// substrate a long-lived hipaserve mounts per-endpoint and what the CLIs
// expose behind -metrics-addr so a long -repeat loop is live-inspectable.
//
// The server deliberately uses its own private mux instead of
// http.DefaultServeMux: importing net/http/pprof for its side effect would
// register profiling handlers on the default mux for every binary linking
// this package, whether or not telemetry was requested.
package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"hipa/internal/obs"
)

// DefaultRunLogSize is how many recent run reports /runs retains when the
// Options do not say otherwise.
const DefaultRunLogSize = 64

// RunLog is a fixed-capacity ring buffer of recent run reports. Values are
// stored as provided (typically *harness.RunReport) and marshalled to JSON
// at serve time; the zero value is unusable — use NewRunLog. All methods
// are safe for concurrent use and no-ops on a nil receiver.
type RunLog struct {
	mu   sync.Mutex
	buf  []runEntry
	next uint64 // total appends; buf[next%len(buf)] is the oldest slot
}

type runEntry struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Report any       `json:"report"`
}

// NewRunLog returns a ring buffer retaining the last size reports
// (DefaultRunLogSize when size <= 0).
func NewRunLog(size int) *RunLog {
	if size <= 0 {
		size = DefaultRunLogSize
	}
	return &RunLog{buf: make([]runEntry, 0, size)}
}

// Add appends one run report, evicting the oldest when full.
func (l *RunLog) Add(report any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	e := runEntry{Seq: l.next, Time: time.Now().UTC(), Report: report}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next%uint64(cap(l.buf))] = e
	}
	l.next++
	l.mu.Unlock()
}

// Len returns the number of retained reports.
func (l *RunLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// entries returns the retained reports oldest-first.
func (l *RunLog) entries() []runEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]runEntry, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		out = append(out, l.buf...)
		return out
	}
	start := l.next % uint64(cap(l.buf))
	for i := 0; i < len(l.buf); i++ {
		out = append(out, l.buf[(start+uint64(i))%uint64(len(l.buf))])
	}
	return out
}

// Options configures a Server. The zero value serves obs.Default() with a
// fresh DefaultRunLogSize run log and drains in-flight requests fully on
// Close.
type Options struct {
	// Registry is the metrics registry /metrics exposes; obs.Default()
	// when nil.
	Registry *obs.Registry
	// Runs is the run-report ring /runs serves; a fresh ring when nil.
	Runs *RunLog
	// RunLogSize sizes the fresh ring when Runs is nil.
	RunLogSize int
	// ShutdownTimeout bounds how long Close waits for connections to go
	// idle before giving up on the graceful path. 0 waits indefinitely —
	// a slow scraper mid-/metrics always receives its full response.
	// Regardless of the timeout, Close and Shutdown return only after
	// every in-flight handler has finished (responses are drained, never
	// cut off mid-write).
	ShutdownTimeout time.Duration
}

// Server is a live telemetry HTTP server. Create with Start, stop with
// Close (or Shutdown for caller-controlled deadlines).
type Server struct {
	reg     *obs.Registry
	runs    *RunLog
	ln      net.Listener
	srv     *http.Server
	timeout time.Duration
	active  sync.WaitGroup // in-flight handlers

	done chan struct{}
	err  error
}

// Start binds addr (e.g. "127.0.0.1:0") and serves telemetry until Close.
// It returns once the listener is bound, so s.Addr() is immediately
// scrapeable.
func Start(addr string, opts Options) (*Server, error) {
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	runs := opts.Runs
	if runs == nil {
		runs = NewRunLog(opts.RunLogSize)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, runs: runs, ln: ln, timeout: opts.ShutdownTimeout, done: make(chan struct{})}
	s.srv = &http.Server{Handler: s.track(s.Handler()), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.err = err
		}
	}()
	return s, nil
}

// Addr returns the bound listen address, e.g. "127.0.0.1:43817".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Runs returns the run-report ring so callers can push reports as they
// complete.
func (s *Server) Runs() *RunLog { return s.runs }

// track counts in-flight handlers so Shutdown can drain them: the stdlib
// Shutdown only waits for connections to go *idle* within its context, so a
// response still being written when the deadline fires would otherwise be
// abandoned mid-flight.
func (s *Server) track(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.active.Add(1)
		defer s.active.Done()
		h.ServeHTTP(w, r)
	})
}

// Close shuts the server down gracefully: the listener stops accepting, the
// graceful idle wait is bounded by Options.ShutdownTimeout (unbounded when
// 0), and in-flight handlers are always drained to completion before Close
// returns — a scrape racing the shutdown receives its full exposition.
func (s *Server) Close() error {
	ctx := context.Background()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	return s.Shutdown(ctx)
}

// Shutdown is Close with a caller-supplied context bounding the graceful
// idle-connection wait. Even when ctx expires first, Shutdown returns only
// after every in-flight handler has completed, so no scrape response is
// dropped; only keep-alive connections sitting idle are abandoned early.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	s.active.Wait()
	<-s.done
	if err == nil {
		err = s.err
	}
	return err
}

// Handler returns the telemetry routing table (NewMux over the server's
// registry and run ring), so hipaserve can mount the same endpoints on its
// own server.
func (s *Server) Handler() http.Handler {
	return NewMux(s.reg, s.runs)
}

// NewMux builds the telemetry routing table over an arbitrary registry and
// run ring: /metrics, /healthz, /runs, /debug/pprof/*, and a plain-text
// index at /. reg nil selects obs.Default(); runs may be nil (the /runs
// document is then empty). hipaserve mounts this beside its query
// endpoints, so one listener serves both traffic and introspection.
func NewMux(reg *obs.Registry, runs *RunLog) *http.ServeMux {
	if reg == nil {
		reg = obs.Default()
	}
	h := &muxHandlers{reg: reg, runs: runs}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/healthz", h.handleHealthz)
	mux.HandleFunc("/runs", h.handleRuns)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", h.handleIndex)
	return mux
}

// muxHandlers backs NewMux: the endpoint implementations over a registry
// and a run ring, with no server lifecycle attached.
type muxHandlers struct {
	reg  *obs.Registry
	runs *RunLog
}

func (s *muxHandlers) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	if err := s.reg.WritePrometheus(w); err != nil {
		// Headers are already sent; nothing useful left to report.
		return
	}
}

func (s *muxHandlers) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *muxHandlers) handleRuns(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Runs []runEntry `json:"runs"`
	}{s.runs.entries()}); err != nil {
		return
	}
}

func (s *muxHandlers) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "hipa telemetry")
	fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
	fmt.Fprintln(w, "  /healthz       liveness probe")
	fmt.Fprintln(w, "  /runs          recent run reports (JSON)")
	fmt.Fprintln(w, "  /debug/pprof/  Go profiler")
}
