package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hipa/internal/obs"
)

func startTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(b), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("tele_requests_total", "engine", "HiPa").Add(3)
	reg.Histogram("tele_seconds").Observe(0.25)
	s := startTestServer(t, Options{Registry: reg})

	code, body, hdr := get(t, s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	doc, err := obs.ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics not valid exposition: %v\n%s", err, body)
	}
	if !doc.HasSeries("tele_requests_total", "engine", "HiPa") || !doc.HasFamily("tele_seconds") {
		t.Errorf("registered series missing from /metrics:\n%s", body)
	}

	code, body, _ = get(t, s.URL()+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, _ = get(t, s.URL()+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _, _ = get(t, s.URL()+"/no/such/page"); code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", code)
	}
}

func TestServerRuns(t *testing.T) {
	s := startTestServer(t, Options{RunLogSize: 4})
	type fakeReport struct {
		Engine string `json:"engine"`
		Run    int    `json:"run"`
	}
	// Push more than the capacity so /runs shows eviction with stable
	// sequence numbers.
	for i := 0; i < 6; i++ {
		s.Runs().Add(fakeReport{Engine: "HiPa", Run: i})
	}
	code, body, hdr := get(t, s.URL()+"/runs")
	if code != http.StatusOK {
		t.Fatalf("/runs status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/runs Content-Type = %q", ct)
	}
	var doc struct {
		Runs []struct {
			Seq    uint64     `json:"seq"`
			Report fakeReport `json:"report"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/runs not valid JSON: %v\n%s", err, body)
	}
	if len(doc.Runs) != 4 {
		t.Fatalf("/runs retained %d, want 4", len(doc.Runs))
	}
	// Oldest-first, the first two evicted.
	for i, r := range doc.Runs {
		if want := uint64(i + 2); r.Seq != want || r.Report.Run != i+2 {
			t.Errorf("runs[%d] = seq %d run %d, want %d", i, r.Seq, r.Report.Run, want)
		}
	}
}

func TestServerPprof(t *testing.T) {
	s := startTestServer(t, Options{Registry: obs.NewRegistry()})
	code, body, _ := get(t, s.URL()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (goroutine profile missing)", code)
	}
	if code, _, _ := get(t, s.URL()+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
}

func TestRunLogRingAndNilSafety(t *testing.T) {
	l := NewRunLog(2)
	if l.Len() != 0 {
		t.Errorf("fresh ring Len = %d", l.Len())
	}
	l.Add("a")
	l.Add("b")
	l.Add("c")
	if l.Len() != 2 {
		t.Errorf("ring Len = %d, want 2", l.Len())
	}
	got := l.entries()
	if len(got) != 2 || got[0].Report != "b" || got[1].Report != "c" {
		t.Errorf("entries = %+v, want oldest-first [b c]", got)
	}
	if NewRunLog(0).buf == nil || cap(NewRunLog(0).buf) != DefaultRunLogSize {
		t.Error("NewRunLog(0) did not default the capacity")
	}
	var nilLog *RunLog
	nilLog.Add("ignored") // must not panic
	if nilLog.Len() != 0 || nilLog.entries() != nil {
		t.Error("nil RunLog not inert")
	}
}

// slowReport is a run report whose JSON marshalling stalls — a stand-in for
// a scraper on a slow link, letting the shutdown-drain contract be tested
// without a large payload. started is closed when marshalling begins.
type slowReport struct {
	delay   time.Duration
	started chan struct{}
	once    *atomic.Bool
}

func (r slowReport) MarshalJSON() ([]byte, error) {
	if r.once.CompareAndSwap(false, true) {
		close(r.started)
	}
	time.Sleep(r.delay)
	return []byte(`"slow"`), nil
}

// TestCloseDrainsSlowScrape is the regression test for the shutdown path
// dropping in-flight responses: a scrape that is mid-response when Close is
// called must receive its complete body, and Close must not return before
// the handler has finished.
func TestCloseDrainsSlowScrape(t *testing.T) {
	rep := slowReport{delay: 300 * time.Millisecond, started: make(chan struct{}), once: new(atomic.Bool)}
	runs := NewRunLog(4)
	runs.Add(rep)
	// A short timeout: the graceful idle wait expires while the handler is
	// still marshalling, which is exactly when the old code abandoned the
	// response.
	s, err := Start("127.0.0.1:0", Options{Registry: obs.NewRegistry(), Runs: runs, ShutdownTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		body string
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get(s.URL() + "/runs")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- scrape{body: string(b), err: err}
	}()

	<-rep.started // the handler is now inside the slow marshal
	closed := make(chan error, 1)
	start := time.Now()
	go func() { closed <- s.Close() }()

	select {
	case err := <-closed:
		if waited := time.Since(start); waited < rep.delay/2 {
			t.Errorf("Close returned after %v with a %v handler in flight (err=%v) — in-flight response not drained", waited, rep.delay, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}

	select {
	case sc := <-got:
		if sc.err != nil {
			t.Fatalf("slow scrape failed across shutdown: %v", sc.err)
		}
		if !strings.Contains(sc.body, `"slow"`) {
			t.Errorf("slow scrape body truncated: %q", sc.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow scrape never completed")
	}
}

// TestShutdownNoTimeoutWaitsForHandlers: the default configuration (zero
// ShutdownTimeout) must wait for in-flight work with no deadline at all.
func TestShutdownNoTimeoutWaitsForHandlers(t *testing.T) {
	rep := slowReport{delay: 150 * time.Millisecond, started: make(chan struct{}), once: new(atomic.Bool)}
	runs := NewRunLog(4)
	runs.Add(rep)
	s, err := Start("127.0.0.1:0", Options{Registry: obs.NewRegistry(), Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(s.URL() + "/runs")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-rep.started
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request did not complete")
	}
}

// TestNewMuxStandalone: the exported mux serves the telemetry endpoints
// without a Server lifecycle — the shape hipaserve mounts beside its query
// handlers.
func TestNewMuxStandalone(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("mux_total").Add(7)
	srv := httptest.NewServer(NewMux(reg, nil))
	defer srv.Close()
	code, body, _ := get(t, srv.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "mux_total 7") {
		t.Errorf("/metrics via standalone mux = %d %q", code, body)
	}
	code, body, _ = get(t, srv.URL+"/runs")
	if code != http.StatusOK || !strings.Contains(body, `"runs"`) {
		t.Errorf("/runs with a nil ring = %d %q, want an empty runs document", code, body)
	}
}

func TestStartRejectsBadAddress(t *testing.T) {
	if _, err := Start("256.256.256.256:0", Options{}); err == nil {
		t.Error("Start on an unroutable address did not error")
	}
}

func ExampleServer() {
	reg := obs.NewRegistry()
	reg.Counter("example_total").Inc()
	s, err := Start("127.0.0.1:0", Options{Registry: reg})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Close()
	resp, err := http.Get(s.URL() + "/healthz")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	fmt.Print(string(b))
	// Output: ok
}
