package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// buildDeterministicTrace constructs the fixture exported to the golden
// file: two simulated threads plus a runner lane, two iterations of
// scatter/gather with a reduce and apply in between — the span shapes the
// engines emit.
func buildDeterministicTrace() *Trace {
	tr := NewTrace()
	tr.SetLane(0, "t00 node0 cpu00")
	tr.SetLane(1, "t01 node1 cpu20")
	tr.SetLane(2, "runner")
	tr.AddSpanAt(0, "prep:partition", -1, 0, 120)
	tr.AddSpanAt(0, "prep:layout", -1, 120, 80)
	for it := 0; it < 2; it++ {
		base := int64(200 + it*400)
		tr.AddSpanAt(0, "scatter", it, base, 90)
		tr.AddSpanAt(1, "scatter", it, base+5, 100)
		tr.AddSpanAt(2, "reduce", it, base+110, 10)
		tr.AddSpanAt(0, "gather", it, base+125, 95)
		tr.AddSpanAt(1, "gather", it, base+125, 105)
		tr.AddSpanAt(2, "apply", it, base+235, 8)
	}
	return tr
}

// TestTraceGolden pins the exported trace_event format: stable field
// ordering, byte-identical output for identical input. Run with
// -update-golden after an intentional format change.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildDeterministicTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace export drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTraceValidJSON checks the export parses as the trace_event container
// format and that timestamps come out monotonically non-decreasing, which
// chrome://tracing and Perfetto rely on.
func TestTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildDeterministicTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   int64           `json:"ts"`
			Dur  int64           `json:"dur"`
			PID  int             `json:"pid"`
			TID  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	meta, spans := 0, 0
	lastTS := int64(-1)
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if spans > 0 {
				t.Error("metadata events must precede all spans")
			}
		case "X":
			spans++
			if ev.TS < lastTS {
				t.Errorf("timestamps not monotonic: %d after %d", ev.TS, lastTS)
			}
			lastTS = ev.TS
			if ev.Dur < 0 {
				t.Errorf("negative duration %d", ev.Dur)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta != 3 {
		t.Errorf("got %d thread_name events, want 3", meta)
	}
	if spans != 14 {
		t.Errorf("got %d spans, want 14", spans)
	}
}

func TestTraceRealClockSpans(t *testing.T) {
	tr := NewTrace()
	tr.SetLane(0, "t00")
	start := time.Now()
	time.Sleep(2 * time.Millisecond)
	tr.Span(0, "scatter", 0, start)
	if tr.NumSpans() != 1 {
		t.Fatalf("spans = %d, want 1", tr.NumSpans())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Dur int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" && ev.Dur < 1000 {
			t.Errorf("span duration = %dus, want >= 1000us", ev.Dur)
		}
	}
}
