package obs

import (
	"math"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition bytes for a small
// registry: family ordering, series ordering, HELP escaping, cumulative
// non-empty histogram buckets, and value formatting are all load-bearing for
// scrapers, so any change must show up here.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("test_requests_total", "Total requests.")
	r.Counter("test_requests_total").Add(42)
	r.Gauge("test_temp", "zone", "b").Set(-2)
	r.Gauge("test_temp", "zone", "a").Set(1.5)
	h := r.Histogram("test_lat_seconds")
	// 0.5, 1, 2 sit at the bottom of octaves whose first-sub-bucket bounds
	// (1.125 * 2^e) are exactly representable, keeping the golden stable.
	h.Observe(0.5)
	h.Observe(1)
	h.Observe(2)

	const want = `# TYPE test_lat_seconds histogram
test_lat_seconds_bucket{le="0.5625"} 1
test_lat_seconds_bucket{le="1.125"} 2
test_lat_seconds_bucket{le="2.25"} 3
test_lat_seconds_bucket{le="+Inf"} 3
test_lat_seconds_sum 3.5
test_lat_seconds_count 3
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total 42
# TYPE test_temp gauge
test_temp{zone="a"} 1.5
test_temp{zone="b"} -2
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestWritePrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("esc_total", "line one\nline two \\ done")
	r.Counter("esc_total").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# HELP esc_total line one\nline two \\ done`) {
		t.Errorf("HELP not escaped:\n%s", sb.String())
	}
}

// TestExpositionRoundTrip feeds a rendered registry back through the strict
// parser: everything /metrics serves must satisfy the rules promcheck
// enforces in CI.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("rt_seconds", "Round-trip histogram.")
	h := r.Histogram("rt_seconds", "engine", "HiPa", "phase", "scatter")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e-4)
	}
	r.Counter("rt_total", "k", `quote " slash \ nl`+"\n").Add(7)
	r.Gauge("rt_gauge").Set(math.Inf(1))

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	doc, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("rendered exposition rejected by parser: %v\n%s", err, sb.String())
	}
	if doc.Types["rt_seconds"] != "histogram" || doc.Types["rt_total"] != "counter" || doc.Types["rt_gauge"] != "gauge" {
		t.Errorf("parsed types = %v", doc.Types)
	}
	if !doc.HasFamily("rt_seconds") || !doc.HasSeries("rt_seconds", "engine", "HiPa", "phase", "scatter") {
		t.Error("histogram family/series not found after round trip")
	}
	if !doc.HasSeries("rt_total", "k", `quote " slash \ nl`+"\n") {
		t.Error("escaped label value did not round-trip")
	}
	if doc.HasSeries("rt_seconds", "engine", "GPOP") {
		t.Error("HasSeries matched a label value that was never registered")
	}
	// The +Inf bucket and _count agree for a quiesced histogram.
	var inf, count float64
	for _, s := range doc.Series {
		switch {
		case s.Name == "rt_seconds_bucket" && s.Labels["le"] == "+Inf":
			inf = s.Value
		case s.Name == "rt_seconds_count":
			count = s.Value
		}
	}
	if inf != 100 || count != 100 {
		t.Errorf("+Inf bucket/count = %g/%g, want 100/100", inf, count)
	}
	// A gauge rendered as +Inf parses back to +Inf.
	found := false
	for _, s := range doc.Series {
		if s.Name == "rt_gauge" {
			found = true
			if !math.IsInf(s.Value, 1) {
				t.Errorf("rt_gauge = %g, want +Inf", s.Value)
			}
		}
	}
	if !found {
		t.Error("rt_gauge missing from parsed series")
	}
}

func TestParseExpositionAcceptsTimestamps(t *testing.T) {
	doc, err := ParseExposition(strings.NewReader("m_total 5 1712345678\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 1 || doc.Series[0].Value != 5 {
		t.Errorf("parsed %+v", doc.Series)
	}
}

func TestParseExpositionErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"invalid metric name", "bad-name 1\n"},
		{"missing value", "m_total\n"},
		{"garbage value", "m_total abc\n"},
		{"invalid timestamp", "m_total 1 soon\n"},
		{"unquoted label value", "m_total{k=v} 1\n"},
		{"unterminated label value", `m_total{k="v} 1` + "\n"},
		{"bad escape", `m_total{k="\q"} 1` + "\n"},
		{"invalid label name", `m_total{bad-key="v"} 1` + "\n"},
		{"malformed TYPE", "# TYPE m_total\n"},
		{"unknown TYPE", "# TYPE m_total matrix\n"},
		{"TYPE re-declared", "# TYPE m_total counter\n# TYPE m_total gauge\n"},
		{"malformed HELP", "# HELP\nm_total 1\n"},
		{"bucket without le", `m_bucket{engine="x"} 1` + "\n"},
		{"non-cumulative buckets", "m_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3\n"},
	}
	for _, tc := range cases {
		if _, err := ParseExposition(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: parser accepted %q", tc.name, tc.doc)
		}
	}
}

func TestParseExpositionBucketMonotonicityPerSeries(t *testing.T) {
	// Distinct label sets are independent bucket chains: a lower count on a
	// different series is not a monotonicity violation.
	doc := "m_bucket{engine=\"a\",le=\"1\"} 5\n" +
		"m_bucket{engine=\"a\",le=\"2\"} 7\n" +
		"m_bucket{engine=\"b\",le=\"1\"} 2\n" +
		"m_bucket{engine=\"b\",le=\"+Inf\"} 2\n"
	if _, err := ParseExposition(strings.NewReader(doc)); err != nil {
		t.Errorf("independent series rejected: %v", err)
	}
}
