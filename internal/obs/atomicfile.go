package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes the output of write to path atomically: the
// content goes to a temporary file in path's directory, which is renamed
// over path only after a successful write and close. An interrupted or
// failing export can therefore never leave a truncated file at path — the
// old content (or absence) survives, and the temporary file is removed.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // committed past the cleanup path
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("obs: commit %s: %w", path, err)
	}
	return nil
}

// WriteJSONFile exports the trace to path atomically (temp file + rename),
// so an interrupted run cannot leave a truncated, unparseable trace.
func (t *Trace) WriteJSONFile(path string) error {
	if t == nil {
		return fmt.Errorf("obs: nil trace")
	}
	return WriteFileAtomic(path, t.WriteJSON)
}
