package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// renameFile is swapped by tests to inject commit failures; production code
// always goes through os.Rename.
var renameFile = os.Rename

// WriteFileAtomic writes the output of write to path atomically: the
// content goes to a temporary file in path's directory, which is fsynced,
// closed, and renamed over path only after a successful write. An
// interrupted or failing export can therefore never leave a truncated file
// at path — the old content (or absence) survives, and the temporary file
// is removed on every failure path, including a failed rename. The fsync
// before the rename keeps the atomicity guarantee across a crash: without
// it, a power loss shortly after the rename could commit the name to a file
// whose data blocks never reached the disk.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // committed past the cleanup path
	if err := renameFile(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("obs: commit %s: %w", path, err)
	}
	return nil
}

// WriteJSONFile exports the trace to path atomically (temp file + rename),
// so an interrupted run cannot leave a truncated, unparseable trace.
func (t *Trace) WriteJSONFile(path string) error {
	if t == nil {
		return fmt.Errorf("obs: nil trace")
	}
	return WriteFileAtomic(path, t.WriteJSON)
}
