// Package obs is the engine telemetry layer: counters, gauges, and phase
// timers (Collector), span-style tracing with Chrome trace_event export
// (Trace), and per-iteration execution statistics (IterationStats), bundled
// per run by a Recorder.
//
// The package substitutes for the hardware observability the paper's
// evaluation leans on (VTune thread-migration counters, LLC traffic, memory
// accesses per edge, §3.3/§4): every engine run can surface per-iteration
// progress and convergence, phase-level timing, and exportable metrics.
//
// Everything is opt-in and nil-safe: a nil *Recorder, *Collector, or *Trace
// accepts every call as a no-op, so engines instrument their hot paths
// unconditionally and an un-instrumented run pays only a pointer test.
// Only the standard library is used.
package obs

import (
	"sync"
	"time"
)

// IterationStats records one PageRank iteration of one engine run. The
// in-loop fields (wall time, residual, dangling mass) are measured live at
// the iteration barrier; the simulated-machine fields (local/remote
// accesses, scheduler migrations) are annotated after the run from the
// analytic model, apportioned per iteration.
type IterationStats struct {
	// Iter is the zero-based iteration index.
	Iter int `json:"iter"`
	// WallSeconds is the real elapsed time of this iteration.
	WallSeconds float64 `json:"wall_seconds"`
	// Residual is the L∞ rank change of the iteration (the convergence
	// metric checked against Options.Tolerance).
	Residual float64 `json:"residual"`
	// DanglingMass is the summed rank of dangling vertices redistributed
	// this iteration.
	DanglingMass float64 `json:"dangling_mass"`

	// ActiveVertices / ActivePartitions are the active-set sizes of the
	// iteration for frontier-aware engines: how many vertices/partitions
	// actually executed. Zero (and omitted from JSON) for the dense engines,
	// which touch everything every iteration.
	ActiveVertices   int64 `json:"active_vertices,omitempty"`
	ActivePartitions int   `json:"active_partitions,omitempty"`

	// LocalBytes / RemoteBytes are the modelled DRAM traffic of the
	// iteration on the simulated machine, split by NUMA locality.
	LocalBytes  int64 `json:"local_bytes"`
	RemoteBytes int64 `json:"remote_bytes"`
	// LocalAccesses / RemoteAccesses are the same traffic in cache-line
	// sized accesses (the unit of the paper's MApE figures).
	LocalAccesses  int64 `json:"local_accesses"`
	RemoteAccesses int64 `json:"remote_accesses"`
	// SchedMigrations is the simulated thread migrations attributed to the
	// iteration: all at iteration 0 for pinned engines (Algorithm 2), spread
	// across iterations for per-phase thread pools (Algorithm 1).
	SchedMigrations int64 `json:"sched_migrations"`
}

// Collector accumulates named counters, gauges, and phase timers. All
// methods are safe for concurrent use and are no-ops on a nil receiver.
type Collector struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	phases   map[string]float64 // accumulated seconds
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		phases:   map[string]float64{},
	}
}

// Add increments counter name by delta.
func (c *Collector) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

// Set records gauge name at value v (last write wins).
func (c *Collector) Set(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.gauges[name] = v
	c.mu.Unlock()
}

// AddPhase accrues d onto phase timer name.
func (c *Collector) AddPhase(name string, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.phases[name] += d.Seconds()
	c.mu.Unlock()
}

var nopStop = func() {}

// Phase starts the named phase timer and returns the stop function:
//
//	defer rec.C().Phase("prep")()
//
// On a nil receiver no clock is read and the returned stop is a no-op.
func (c *Collector) Phase(name string) func() {
	if c == nil {
		return nopStop
	}
	start := time.Now()
	return func() { c.AddPhase(name, time.Since(start)) }
}

// Counters returns a copy of the counter map.
func (c *Collector) Counters() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// Gauges returns a copy of the gauge map.
func (c *Collector) Gauges() map[string]float64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.gauges))
	for k, v := range c.gauges {
		out[k] = v
	}
	return out
}

// Phases returns a copy of the phase-timer map (seconds).
func (c *Collector) Phases() map[string]float64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.phases))
	for k, v := range c.phases {
		out[k] = v
	}
	return out
}

// Recorder bundles the telemetry of one engine run. Engines receive it via
// Options.Obs; a nil Recorder disables all instrumentation. The Collector
// and Trace fields are optional — leave either nil to skip that signal.
type Recorder struct {
	Collector *Collector
	Trace     *Trace

	mu    sync.Mutex
	iters []IterationStats
}

// NewRecorder returns a Recorder with a Collector and a Trace attached.
func NewRecorder() *Recorder {
	return &Recorder{Collector: NewCollector(), Trace: NewTrace()}
}

// C returns the recorder's collector; nil-safe (nil recorder → nil
// collector, whose methods are themselves no-ops).
func (r *Recorder) C() *Collector {
	if r == nil {
		return nil
	}
	return r.Collector
}

// T returns the recorder's trace; nil-safe.
func (r *Recorder) T() *Trace {
	if r == nil {
		return nil
	}
	return r.Trace
}

// RecordIteration appends one iteration's statistics.
func (r *Recorder) RecordIteration(s IterationStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.iters = append(r.iters, s)
	r.mu.Unlock()
}

// IterationStats returns the recorded iterations in order.
func (r *Recorder) IterationStats() []IterationStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]IterationStats, len(r.iters))
	copy(out, r.iters)
	return out
}

// AnnotateModel distributes a run's modelled DRAM traffic and scheduler
// migrations over the recorded iterations: the analytic model is linear in
// the iteration count, so each iteration carries an equal share of the
// traffic, while migrations are all charged to iteration 0 for pinned
// engines (Algorithm 2 binds once at spawn) and spread evenly for
// per-phase thread pools (Algorithm 1 respawns every region).
func (r *Recorder) AnnotateModel(localBytes, remoteBytes int64, lineBytes int, migrations int64, pinned bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int64(len(r.iters))
	if n == 0 {
		return
	}
	if lineBytes <= 0 {
		lineBytes = 64
	}
	lb, rb := localBytes/n, remoteBytes/n
	for i := range r.iters {
		it := &r.iters[i]
		it.LocalBytes = lb
		it.RemoteBytes = rb
		it.LocalAccesses = lb / int64(lineBytes)
		it.RemoteAccesses = rb / int64(lineBytes)
		if pinned {
			if i == 0 {
				it.SchedMigrations = migrations
			} else {
				it.SchedMigrations = 0
			}
		} else {
			it.SchedMigrations = migrations / n
			if int64(i) < migrations%n {
				it.SchedMigrations++
			}
		}
	}
}
