package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicWritesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "first" {
		t.Fatalf("content = %q", b)
	}
	// Overwrite goes through the same temp+rename path.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "second" {
		t.Fatalf("content after overwrite = %q", b)
	}
}

func TestWriteFileAtomicFailedWritePreservesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage") // partial output must be discarded
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "precious" {
		t.Errorf("failed write clobbered the old file: %q", b)
	}
	// The temporary file must not survive the failure.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "out.json" {
			t.Errorf("leftover temp file %q after failed write", e.Name())
		}
	}
}

// TestWriteFileAtomicFailedRenameCleansUp injects a failure into the commit
// rename: the old content must survive, the error must surface, and the
// temporary file must not be leaked into the directory.
func TestWriteFileAtomicFailedRenamePreservesOldAndRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("rename boom")
	orig := renameFile
	renameFile = func(oldpath, newpath string) error { return boom }
	defer func() { renameFile = orig }()

	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new content that never lands")
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected rename failure", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "precious" {
		t.Errorf("failed rename clobbered the old file: %q", b)
	}
	entries, derr := os.ReadDir(dir)
	if derr != nil {
		t.Fatal(derr)
	}
	for _, e := range entries {
		if e.Name() != "out.json" {
			t.Errorf("leaked temp file %q after failed rename", e.Name())
		}
	}
}

func TestTraceWriteJSONFile(t *testing.T) {
	tr := NewTrace()
	tr.SetLane(0, "worker-0")
	tr.AddSpanAt(0, "scatter", 1, 0, 100)
	tr.AddSpanAt(0, "gather", 1, 100, 50)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The export must be a well-formed trace_event document: chrome://tracing
	// refuses truncated JSON, which is exactly what atomicity protects.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("exported trace has no events")
	}
	var nilTrace *Trace
	if err := nilTrace.WriteJSONFile(path); err == nil {
		t.Error("nil trace export did not error")
	}
}

func TestWriteFileAtomicBadDirectory(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), func(w io.Writer) error {
		return fmt.Errorf("unreachable")
	})
	if err == nil {
		t.Error("write into a missing directory did not error")
	}
}
