package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the process-wide half of the telemetry layer: a Registry of
// named counters, gauges, and streaming log-bucketed histograms that outlive
// any single run (the per-run Collector/Recorder half lives in obs.go).
// Recording is lock-free — counters and histogram buckets are plain atomics,
// gauges and histogram sums use small CAS loops — so engines can record from
// the superstep hot path without breaking the zero-allocations-per-iteration
// invariant. Registration (get-or-create of a metric handle) takes a mutex
// and may allocate; hot paths resolve their handles once, up front.

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; Add never allocates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down. All methods are safe
// for concurrent use and never allocate.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge at v (last write wins).
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket geometry: log-bucketed with histSubBuckets buckets per
// power of two, covering [2^histMinExp, 2^(histMaxExp+1)). The geometry is
// fixed for every histogram, so snapshots from different histograms (or
// different processes of the same build) merge bucket-by-bucket, and the
// relative quantile-estimation error is bounded by the in-octave bucket
// ratio: an estimate E for a true value v in range satisfies
// v <= E <= v * (1 + 1/histSubBuckets).
//
// With 8 sub-buckets over exponents [-40, 23] the histogram spans ~1e-12 to
// ~1.6e7 — residuals down to float32 noise, latencies from nanoseconds to
// hours, byte counts to tens of MB — in 514 fixed buckets (~4KB of atomics).
const (
	histMinExp      = -40
	histMaxExp      = 23
	histSubBuckets  = 8
	histSubShift    = 3 // log2(histSubBuckets)
	histRangeCount  = (histMaxExp - histMinExp + 1) * histSubBuckets
	histNumBuckets  = histRangeCount + 2 // + underflow and overflow buckets
	histUnderflowIx = 0
	histOverflowIx  = histNumBuckets - 1
)

// Histogram is a streaming log-bucketed distribution. Observe is lock-free
// and allocation-free (three atomic adds and two bounded CAS loops), so it
// is safe to call from the superstep hot path; Snapshot returns an immutable
// copy that a scraper reads without stopping writers.
type Histogram struct {
	counts  [histNumBuckets]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 CAS accumulator
	// minOrd/maxOrd hold orderedBits(sample)+1, so the zero value means "no
	// sample yet" and a real 0.0 sample is still representable.
	minOrd atomic.Uint64
	maxOrd atomic.Uint64
}

// orderedBits maps a non-NaN float64 to a uint64 that sorts in the same
// order (the usual sign-flip trick), letting min/max be maintained with
// integer CAS.
func orderedBits(v float64) uint64 {
	b := math.Float64bits(v)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

func fromOrderedBits(o uint64) float64 {
	if o&(1<<63) != 0 {
		return math.Float64frombits(o &^ (1 << 63))
	}
	return math.Float64frombits(^o)
}

// bucketIndex maps a value to its bucket. Values <= 0 (and values below the
// smallest bound) land in the underflow bucket, values beyond the largest
// bound in the overflow bucket; both are counted, so Count and Sum stay
// exact even when a sample escapes the bucketed range.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return histUnderflowIx
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52&0x7FF) - 1023
	if exp < histMinExp {
		return histUnderflowIx
	}
	if exp > histMaxExp {
		return histOverflowIx
	}
	sub := int(bits >> (52 - histSubShift) & (histSubBuckets - 1))
	return 1 + (exp-histMinExp)*histSubBuckets + sub
}

// BucketUpper returns the inclusive upper bound of bucket i — the "le" value
// of the Prometheus exposition. The underflow bucket's bound is the smallest
// representable bucket edge; the overflow bucket's is +Inf.
func BucketUpper(i int) float64 {
	switch {
	case i <= histUnderflowIx:
		return math.Ldexp(1, histMinExp)
	case i >= histOverflowIx:
		return math.Inf(1)
	}
	o, s := (i-1)/histSubBuckets, (i-1)%histSubBuckets
	return math.Ldexp(1+float64(s+1)/histSubBuckets, histMinExp+o)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	if !math.IsNaN(v) {
		ord := orderedBits(v) + 1 // +1 keeps 0 free as the "unset" sentinel
		for {
			old := h.minOrd.Load()
			if old != 0 && old <= ord {
				break
			}
			if h.minOrd.CompareAndSwap(old, ord) {
				break
			}
		}
		for {
			old := h.maxOrd.Load()
			if old >= ord {
				break
			}
			if h.maxOrd.CompareAndSwap(old, ord) {
				break
			}
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns an immutable copy of the histogram. Writers may race with
// the copy, so a snapshot taken mid-Observe can be ahead/behind by in-flight
// samples, but it is always internally plausible (bucket sums are monotone
// reads of monotone counters) and two snapshots merge exactly.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Counts: make([]uint64, histNumBuckets)}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.Sum()
	if mo := h.minOrd.Load(); mo != 0 {
		s.Min = fromOrderedBits(mo - 1)
	}
	if mo := h.maxOrd.Load(); mo != 0 {
		s.Max = fromOrderedBits(mo - 1)
	}
	return s
}

// HistogramSnapshot is an immutable histogram state: mergeable (Merge is
// commutative and associative because the bucket geometry is fixed) and
// queryable for bounded-error quantile estimates.
type HistogramSnapshot struct {
	Counts []uint64 // len histNumBuckets; Counts[i] samples in bucket i
	Count  uint64
	Sum    float64
	Min    float64 // smallest sample; 0 when Count == 0
	Max    float64 // largest sample; 0 when Count == 0
}

// Merge returns the snapshot of the union of the two sample streams.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if len(s.Counts) == 0 {
		s.Counts = make([]uint64, histNumBuckets)
	}
	m := HistogramSnapshot{Counts: make([]uint64, histNumBuckets)}
	copy(m.Counts, s.Counts)
	for i, c := range o.Counts {
		m.Counts[i] += c
	}
	m.Count = s.Count + o.Count
	m.Sum = s.Sum + o.Sum
	switch {
	case s.Count == 0:
		m.Min, m.Max = o.Min, o.Max
	case o.Count == 0:
		m.Min, m.Max = s.Min, s.Max
	default:
		m.Min, m.Max = math.Min(s.Min, o.Min), math.Max(s.Max, o.Max)
	}
	return m
}

// Mean returns the exact sample mean (Sum/Count), or 0 for an empty
// snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) as the upper bound of the
// bucket holding the rank-⌈q·Count⌉ sample, clamped to [Min, Max]. For
// samples inside the bucketed range the estimate E of a true value v
// satisfies v <= E <= v·(1 + 1/8). Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	est := s.Max
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			est = BucketUpper(i)
			break
		}
	}
	if est < s.Min {
		est = s.Min
	}
	if est > s.Max {
		est = s.Max
	}
	return est
}

// metricType tags a registry family for the exposition format.
type metricType uint8

const (
	typeCounter metricType = iota + 1
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric with any number of label-distinguished series.
type family struct {
	name   string
	help   string
	typ    metricType
	series map[string]any // label signature -> *Counter | *Gauge | *Histogram
}

// Registry is a concurrency-safe collection of named metrics. Metric handles
// are created on first request (get-or-create) and live for the registry's
// lifetime; the handles themselves record lock-free. A Registry is
// exposition-ready at any time via WritePrometheus.
//
// Metric and label names must match [a-zA-Z_:][a-zA-Z0-9_:]* (the Prometheus
// rules); requesting the same name with a different metric type, or passing
// an odd-length label list, panics — both are programmer errors, caught at
// the registration site.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// defaultRegistry is the process-wide registry behind Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry: the one the engines, the prep
// cache, and the arena pool record into, and the one the telemetry server
// exposes at /metrics.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter for name with the given label pairs
// (key1, value1, key2, value2, ...), creating it on first request.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.metric(name, typeCounter, labels).(*Counter)
}

// Gauge returns the gauge for name with the given label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.metric(name, typeGauge, labels).(*Gauge)
}

// Histogram returns the histogram for name with the given label pairs.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.metric(name, typeHistogram, labels).(*Histogram)
}

// SetHelp attaches HELP text to the named family (created as needed on the
// family's first metric). Help set before any series exists is kept.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		// Family type is fixed by the first metric request; remember the help
		// on a typeless placeholder until then.
		f = &family{name: name, series: map[string]any{}}
		r.families[name] = f
	}
	f.help = help
}

func (r *Registry) metric(name string, typ metricType, labels []string) any {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, typ: typ, series: map[string]any{}}
		r.families[name] = f
	}
	if f.typ == 0 {
		f.typ = typ // help-only placeholder adopts the first requested type
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q requested as %s but registered as %s", name, typ, f.typ))
	}
	m := f.series[sig]
	if m == nil {
		switch typ {
		case typeCounter:
			m = &Counter{}
		case typeGauge:
			m = &Gauge{}
		default:
			m = &Histogram{}
		}
		f.series[sig] = m
	}
	return m
}

// labelSignature canonicalizes label pairs into the exposition form,
// sorted by key: `k1="v1",k2="v2"`. Empty labels produce "".
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q (want key, value pairs)", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validMetricName(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
