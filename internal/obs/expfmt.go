package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format (version
// 0.0.4) by hand — no client library — plus a strict parser used by the CI
// telemetry smoke (cmd/promcheck) and the exposition golden tests.

// ExpositionContentType is the Content-Type a /metrics endpoint serves.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every metric of the registry in the Prometheus
// text exposition format. Output is deterministic for a given registry
// state: families are sorted by name, series by label signature, and
// histogram buckets are emitted cumulatively with only non-empty buckets
// (plus the mandatory "+Inf") listed.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the family structure under the lock; metric values are read
	// atomically afterwards so a slow writer never blocks recording.
	type seriesRef struct {
		sig string
		m   any
	}
	type familyRef struct {
		name   string
		help   string
		typ    metricType
		series []seriesRef
	}
	fams := make([]familyRef, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		if len(f.series) == 0 {
			continue
		}
		fr := familyRef{name: f.name, help: f.help, typ: f.typ}
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			fr.series = append(fr.series, seriesRef{sig, f.series[sig]})
		}
		fams = append(fams, fr)
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch m := s.m.(type) {
			case *Counter:
				writeSeries(bw, f.name, s.sig, "", formatInt(m.Value()))
			case *Gauge:
				writeSeries(bw, f.name, s.sig, "", formatFloat(m.Value()))
			case *Histogram:
				snap := m.Snapshot()
				var cum uint64
				for i, c := range snap.Counts {
					cum += c
					if c == 0 || i == histOverflowIx {
						continue
					}
					writeSeries(bw, f.name+"_bucket", joinSig(s.sig, `le="`+formatFloat(BucketUpper(i))+`"`), "", formatInt(int64(cum)))
				}
				writeSeries(bw, f.name+"_bucket", joinSig(s.sig, `le="+Inf"`), "", formatInt(int64(snap.Count)))
				writeSeries(bw, f.name+"_sum", s.sig, "", formatFloat(snap.Sum))
				writeSeries(bw, f.name+"_count", s.sig, "", formatInt(int64(snap.Count)))
			}
		}
	}
	return bw.Flush()
}

func writeSeries(w io.Writer, name, sig, extra, value string) {
	labels := joinSig(sig, extra)
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
}

func joinSig(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "," + b
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// ExpositionSeries is one parsed sample line of an exposition document.
type ExpositionSeries struct {
	Name   string            // metric name as written (incl. _bucket/_sum suffixes)
	Labels map[string]string // nil when the series has no labels
	Value  float64
}

// Exposition is a parsed Prometheus text document.
type Exposition struct {
	// Types maps family name to the declared TYPE.
	Types map[string]string
	// Series holds every sample line in document order.
	Series []ExpositionSeries
}

// HasFamily reports whether the document declared or sampled the family:
// either a TYPE line for name, or a series line whose name is name or a
// histogram sub-series of it.
func (e *Exposition) HasFamily(name string) bool {
	if _, ok := e.Types[name]; ok {
		return true
	}
	for _, s := range e.Series {
		if s.Name == name || s.Name == name+"_bucket" || s.Name == name+"_sum" || s.Name == name+"_count" {
			return true
		}
	}
	return false
}

// HasSeries reports whether any sample line has the given name and carries
// every given label pair (extra labels on the line are allowed).
func (e *Exposition) HasSeries(name string, labels ...string) bool {
	for _, s := range e.Series {
		if s.Name != name && s.Name != name+"_bucket" && s.Name != name+"_sum" && s.Name != name+"_count" {
			continue
		}
		ok := true
		for i := 0; i+1 < len(labels); i += 2 {
			if s.Labels[labels[i]] != labels[i+1] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// ParseExposition validates a Prometheus text exposition document and
// returns its parsed form. It enforces the structural rules a scraper
// relies on: well-formed comment lines, valid metric and label names,
// quoted and escaped label values, parseable sample values, and cumulative
// non-decreasing histogram bucket counts per series.
func ParseExposition(r io.Reader) (*Exposition, error) {
	doc := &Exposition{Types: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	// bucketCum tracks the last cumulative bucket count per (name, non-le
	// labels) to enforce monotonicity.
	bucketCum := map[string]float64{}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(doc, line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if strings.HasSuffix(s.Name, "_bucket") {
			if _, ok := s.Labels["le"]; !ok {
				return nil, fmt.Errorf("line %d: histogram bucket series %q without le label", lineNo, s.Name)
			}
			key := bucketKey(s)
			if prev, ok := bucketCum[key]; ok && s.Value < prev {
				return nil, fmt.Errorf("line %d: bucket counts of %s not cumulative (%g after %g)", lineNo, key, s.Value, prev)
			}
			bucketCum[key] = s.Value
		}
		doc.Series = append(doc.Series, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

func bucketKey(s ExpositionSeries) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		b.WriteByte('{')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
		b.WriteByte('}')
	}
	return b.String()
}

func parseComment(doc *Exposition, line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("TYPE line with invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if prev, ok := doc.Types[name]; ok && prev != typ {
			return fmt.Errorf("family %q re-declared as %s (was %s)", name, typ, prev)
		}
		doc.Types[name] = typ
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	}
	return nil
}

func parseSample(line string) (ExpositionSeries, error) {
	var s ExpositionSeries
	rest := line
	// Metric name.
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' && rest[i] != '\t' {
		i++
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[i:]
	// Optional label set.
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// Value, optionally followed by a timestamp.
	valueField := rest
	if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		valueField = rest[:sp]
		ts := strings.TrimSpace(rest[sp:])
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return s, fmt.Errorf("invalid timestamp %q", ts)
		}
	}
	v, err := parseValue(valueField)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parseValue(field string) (float64, error) {
	switch field {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	case "":
		return 0, fmt.Errorf("missing sample value")
	}
	v, err := strconv.ParseFloat(field, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid sample value %q", field)
	}
	return v, nil
}

// parseLabels parses a `{k="v",...}` label block starting at s[0] == '{'
// and returns the index one past the closing brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		// Skip whitespace; allow a trailing comma before '}'.
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(s) && s[i] != '=' && s[i] != '}' {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			return 0, nil, fmt.Errorf("malformed label block %q", s)
		}
		name := strings.TrimSpace(s[start:i])
		if !validMetricName(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("bad escape \\%c in %q", s[i], s)
				}
				i++
				continue
			}
			b.WriteByte(c)
			i++
		}
		labels[name] = b.String()
	}
}
