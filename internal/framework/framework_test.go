package framework

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hipa/internal/gen"
	"hipa/internal/graph"
)

func testCfg() Config {
	return Config{Threads: 4, PartitionBytes: 256, NumNodes: 2, MaxIterations: 200}
}

// refComponents computes weak components with a sequential union-find.
func refComponents(g *graph.Graph) []int {
	parent := make([]int, g.NumVertices())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.OutNeighbors(graph.VertexID(v)) {
			union(v, int(d))
		}
	}
	out := make([]int, g.NumVertices())
	for v := range out {
		out[v] = find(v)
	}
	return out
}

func TestWCCMatchesUnionFind(t *testing.T) {
	// A graph with several components: three chains plus isolated vertices.
	b := graph.NewBuilder(20)
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {5, 6}, {7, 6}, {10, 11}, {11, 12}, {12, 10}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	res, err := WCC(g, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	ref := refComponents(g)
	// Same partition into components: labels equal iff reference roots equal.
	for u := 0; u < g.NumVertices(); u++ {
		for v := u + 1; v < g.NumVertices(); v++ {
			same := ref[u] == ref[v]
			gotSame := res.Values[u] == res.Values[v]
			if same != gotSame {
				t.Fatalf("component disagreement for (%d,%d): ref %v, got %v", u, v, same, gotSame)
			}
		}
	}
	// Labels are canonical: the minimum vertex ID of the component.
	if res.Values[0] != 0 || res.Values[3] != 0 {
		t.Errorf("chain 0-3 label = %d, want 0", res.Values[3])
	}
	if res.Values[4] != 4 {
		t.Errorf("isolated vertex label = %d, want 4", res.Values[4])
	}
}

func TestWCCRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		n := rng.IntN(300) + 2
		b := graph.NewBuilder(n)
		for i := 0; i < rng.IntN(2*n); i++ {
			b.AddEdge(graph.VertexID(rng.IntN(n)), graph.VertexID(rng.IntN(n)))
		}
		g := b.Build()
		res, err := WCC(g, testCfg())
		if err != nil {
			return false
		}
		ref := refComponents(g)
		canon := map[int]uint32{}
		for v := 0; v < n; v++ {
			if want, ok := canon[ref[v]]; ok {
				if res.Values[v] != want {
					return false
				}
			} else {
				canon[ref[v]] = res.Values[v]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHopsMatchesBFSLevels(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 1500, Edges: 20000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Hops(g, 0, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Sequential BFS reference.
	want := make([]int32, g.NumVertices())
	for i := range want {
		want[i] = Unreachable
	}
	want[0] = 0
	queue := []graph.VertexID{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.OutNeighbors(u) {
			if want[v] == Unreachable {
				want[v] = want[u] + 1
				queue = append(queue, v)
			}
		}
	}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("hops[%d] = %d, want %d", v, res.Values[v], want[v])
		}
	}
}

func TestReachable(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4) // not reachable from 0
	g := b.Build()
	res, err := Reachable(g, 0, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 1, 1, 0, 0, 0}
	for v, w := range want {
		if res.Values[v] != w {
			t.Fatalf("reach[%d] = %d, want %d", v, res.Values[v], w)
		}
	}
}

func TestFrameworkConvergenceBookkeeping(t *testing.T) {
	// A simple chain: activity should decrease monotonically to zero and
	// the run must terminate before MaxIterations.
	b := graph.NewBuilder(50)
	for v := 0; v < 49; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1))
	}
	g := b.Build()
	res, err := Hops(g, 0, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || res.Iterations >= 200 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	last := res.ActiveHistory[len(res.ActiveHistory)-1]
	if last != 0 {
		t.Fatalf("final active count = %d, want 0", last)
	}
	// On a chain, exactly one vertex is active per level.
	for i, a := range res.ActiveHistory[:len(res.ActiveHistory)-1] {
		if a != 1 {
			t.Fatalf("iteration %d: active = %d, want 1 on a chain", i, a)
		}
	}
}

func TestFrameworkMaxIterations(t *testing.T) {
	// An oscillating program would never converge; MaxIterations must bound
	// it. Use Hops on a cycle but with MaxIterations 3: labels keep
	// improving around the ring longer than 3 iterations.
	b := graph.NewBuilder(64)
	for v := 0; v < 64; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%64))
	}
	g := b.Build()
	cfg := testCfg()
	cfg.MaxIterations = 3
	res, err := Hops(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Fatalf("iterations = %d, want <= 3", res.Iterations)
	}
}

func TestFrameworkEmptyGraph(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	if _, err := WCC(empty, testCfg()); err == nil {
		t.Fatal("expected error for empty graph")
	}
}

func TestFrameworkThreadCounts(t *testing.T) {
	g, err := gen.Uniform(500, 4000, 71)
	if err != nil {
		t.Fatal(err)
	}
	var first []uint32
	for _, threads := range []int{1, 2, 4, 8, 16} {
		cfg := testCfg()
		cfg.Threads = threads
		res, err := WCC(g, cfg)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if first == nil {
			first = res.Values
			continue
		}
		for v := range first {
			if res.Values[v] != first[v] {
				t.Fatalf("threads=%d: nondeterministic WCC at %d", threads, v)
			}
		}
	}
}
