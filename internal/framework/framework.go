// Package framework generalises the HiPa substrate into a small
// partition-centric graph processing framework — the "more generic use
// scenarios" the paper's conclusion calls for (§6). A computation is a
// vertex program in gather-apply-scatter form; the framework runs it with
// HiPa's machinery: hierarchical partitioning, compressed inter-edge
// messages, persistent worker threads with one pinned partition group each,
// and per-iteration phase barriers.
//
// Unlike PageRank (where every vertex is active every iteration), generic
// programs converge by deactivation: a vertex that does not change stops
// scattering, and the computation ends when no vertex is active. The
// framework tracks activity per vertex and skips inactive sources.
//
// The message type is generic; programs supply the combine operator and its
// identity (a commutative monoid), so min/max/sum/or computations (WCC,
// SSSP, reachability, degree statistics, PageRank) all fit.
package framework

import (
	"fmt"
	"runtime"

	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/partition"
)

// Value is the constraint on vertex/message values.
type Value interface {
	~float32 | ~float64 | ~uint32 | ~int32 | ~int64
}

// Program defines one partition-centric computation.
type Program[V Value] interface {
	// Init returns vertex v's initial value and whether v starts active.
	Init(v graph.VertexID) (V, bool)
	// Identity is the accumulator identity element (e.g. 0 for sum, +inf
	// for min).
	Identity() V
	// Combine merges two messages; it must be commutative and associative.
	Combine(a, b V) V
	// Scatter produces the message an active vertex v with value val sends
	// along each of its out-edges. The edge's destination is not visible —
	// partition-centric scatter writes one compressed value per
	// (vertex, destination partition) pair, exactly like HiPa's PageRank.
	Scatter(v graph.VertexID, val V) V
	// Apply folds the combined incoming messages into v's value, returning
	// the new value and whether v changed (changed vertices are active in
	// the next iteration). Apply is called only for vertices that received
	// at least one message.
	Apply(v graph.VertexID, old, acc V) (V, bool)
}

// Config configures a framework run.
type Config struct {
	// Threads (0 = GOMAXPROCS), PartitionBytes (0 = 256KB), NumNodes (0 = 2)
	// configure the HiPa substrate.
	Threads        int
	PartitionBytes int
	NumNodes       int
	// MaxIterations bounds the run (0 = 100).
	MaxIterations int
}

// Result reports a framework run.
type Result[V Value] struct {
	Values     []V
	Iterations int
	// ActiveHistory is the number of scattering vertices per iteration.
	ActiveHistory []int
}

// Run executes the program to convergence (or MaxIterations).
func Run[V Value](g *graph.Graph, prog Program[V], cfg Config) (*Result[V], error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("framework: empty graph")
	}
	if cfg.Threads == 0 {
		cfg.Threads = runtime.GOMAXPROCS(0)
	}
	if cfg.PartitionBytes == 0 {
		cfg.PartitionBytes = 256 << 10
	}
	if cfg.NumNodes == 0 {
		cfg.NumNodes = 2
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 100
	}
	if cfg.Threads < cfg.NumNodes {
		cfg.Threads = cfg.NumNodes
	}
	cfg.Threads = (cfg.Threads / cfg.NumNodes) * cfg.NumNodes

	hier, err := partition.Build(g, partition.Config{
		PartitionBytes: cfg.PartitionBytes,
		BytesPerVertex: 4,
		NumNodes:       cfg.NumNodes,
		GroupsPerNode:  cfg.Threads / cfg.NumNodes,
	})
	if err != nil {
		return nil, fmt.Errorf("framework: %w", err)
	}
	lay, err := layout.Build(g, hier, true)
	if err != nil {
		return nil, fmt.Errorf("framework: %w", err)
	}

	values := make([]V, n)
	active := make([]bool, n)
	nextActive := make([]bool, n)
	for v := 0; v < n; v++ {
		values[v], active[v] = prog.Init(graph.VertexID(v))
	}
	id := prog.Identity()
	acc := make([]V, n)
	gotMsg := make([]bool, n)
	for v := range acc {
		acc[v] = id
	}
	bins := make([]V, lay.NumMessages())
	binValid := make([]bool, lay.NumMessages())

	res := &Result[V]{}
	bar := common.NewBarrier(cfg.Threads)
	activeCounts := make([]int, cfg.Threads)
	stop := false

	common.RunThreads(cfg.Threads, func(tid int) {
		gr := hier.Groups[tid]
		for it := 0; it < cfg.MaxIterations; it++ {
			// --- Scatter: own partitions' active vertices ---
			count := 0
			for pi := gr.PartStart; pi < gr.PartEnd; pi++ {
				part := hier.Partitions[pi]
				for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
					if !active[v] {
						continue
					}
					count++
					msg := prog.Scatter(graph.VertexID(v), values[v])
					// Intra-edges: combine directly into local accumulators.
					for _, d := range lay.IntraDst[lay.IntraOff[v]:lay.IntraOff[v+1]] {
						if gotMsg[d] {
							acc[d] = prog.Combine(acc[d], msg)
						} else {
							acc[d] = msg
							gotMsg[d] = true
						}
					}
				}
				// Compressed messages, block-streamed.
				for bi := lay.SrcBlockStart[pi]; bi < lay.SrcBlockEnd[pi]; bi++ {
					b := lay.Blocks[bi]
					for m := b.MsgStart; m < b.MsgEnd; m++ {
						src := lay.MsgSrc[m]
						if active[src] {
							bins[m] = prog.Scatter(src, values[src])
							binValid[m] = true
						} else {
							binValid[m] = false
						}
					}
				}
			}
			activeCounts[tid] = count
			bar.WaitLeader(func() {
				total := 0
				for i, c := range activeCounts {
					total += c
					activeCounts[i] = 0
				}
				res.ActiveHistory = append(res.ActiveHistory, total)
				if total == 0 {
					stop = true
				} else {
					res.Iterations++
				}
			})
			if stop {
				return
			}
			// --- Gather + apply: own partitions ---
			for pi := gr.PartStart; pi < gr.PartEnd; pi++ {
				for _, bi := range lay.DstBlocks[pi] {
					b := lay.Blocks[bi]
					for m := b.MsgStart; m < b.MsgEnd; m++ {
						if !binValid[m] {
							continue
						}
						val := bins[m]
						for _, d := range lay.MsgDst[lay.MsgDstOff[m]:lay.MsgDstOff[m+1]] {
							if gotMsg[d] {
								acc[d] = prog.Combine(acc[d], val)
							} else {
								acc[d] = val
								gotMsg[d] = true
							}
						}
					}
				}
				part := hier.Partitions[pi]
				for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
					if gotMsg[v] {
						nv, changed := prog.Apply(graph.VertexID(v), values[v], acc[v])
						values[v] = nv
						nextActive[v] = changed
						acc[v] = id
						gotMsg[v] = false
					} else {
						nextActive[v] = false
					}
				}
			}
			bar.WaitLeader(func() {
				active, nextActive = nextActive, active
			})
		}
	})
	res.Values = values
	return res, nil
}
