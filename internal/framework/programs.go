package framework

import (
	"math"

	"hipa/internal/graph"
)

// WCCProgram computes weakly connected components by min-label propagation:
// every vertex starts with its own ID and adopts the smallest ID it hears.
// Run it on a symmetrised graph (graph.Symmetrize) — weak connectivity
// ignores edge direction.
type WCCProgram struct{}

// Init implements Program.
func (WCCProgram) Init(v graph.VertexID) (uint32, bool) { return uint32(v), true }

// Identity implements Program.
func (WCCProgram) Identity() uint32 { return math.MaxUint32 }

// Combine implements Program (min).
func (WCCProgram) Combine(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Scatter implements Program.
func (WCCProgram) Scatter(_ graph.VertexID, val uint32) uint32 { return val }

// Apply implements Program.
func (WCCProgram) Apply(_ graph.VertexID, old, acc uint32) (uint32, bool) {
	if acc < old {
		return acc, true
	}
	return old, false
}

// WCC computes weakly connected component labels for g (symmetrising
// internally). Vertices in the same component share a label; labels are the
// smallest vertex ID in the component.
func WCC(g *graph.Graph, cfg Config) (*Result[uint32], error) {
	return Run[uint32](g.Symmetrize(), WCCProgram{}, cfg)
}

// HopsProgram computes single-source shortest hop counts (unweighted SSSP)
// by min-plus label correction: dist(v) = min over in-neighbors dist(u)+1.
type HopsProgram struct {
	Source graph.VertexID
}

// Unreachable is the distance label of unreached vertices.
const Unreachable = int32(math.MaxInt32)

// Init implements Program.
func (p HopsProgram) Init(v graph.VertexID) (int32, bool) {
	if v == p.Source {
		return 0, true
	}
	return Unreachable, false
}

// Identity implements Program.
func (HopsProgram) Identity() int32 { return Unreachable }

// Combine implements Program (min).
func (HopsProgram) Combine(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Scatter implements Program (relax by one hop).
func (HopsProgram) Scatter(_ graph.VertexID, val int32) int32 {
	if val == Unreachable {
		return Unreachable
	}
	return val + 1
}

// Apply implements Program.
func (HopsProgram) Apply(_ graph.VertexID, old, acc int32) (int32, bool) {
	if acc < old {
		return acc, true
	}
	return old, false
}

// Hops computes shortest hop distances from source along out-edges.
func Hops(g *graph.Graph, source graph.VertexID, cfg Config) (*Result[int32], error) {
	return Run[int32](g, HopsProgram{Source: source}, cfg)
}

// ReachProgram computes forward reachability from a source as a 0/1 flag
// with logical-or combination.
type ReachProgram struct {
	Source graph.VertexID
}

// Init implements Program.
func (p ReachProgram) Init(v graph.VertexID) (uint32, bool) {
	if v == p.Source {
		return 1, true
	}
	return 0, false
}

// Identity implements Program.
func (ReachProgram) Identity() uint32 { return 0 }

// Combine implements Program (or).
func (ReachProgram) Combine(a, b uint32) uint32 { return a | b }

// Scatter implements Program.
func (ReachProgram) Scatter(_ graph.VertexID, val uint32) uint32 { return val }

// Apply implements Program.
func (ReachProgram) Apply(_ graph.VertexID, old, acc uint32) (uint32, bool) {
	if acc == 1 && old == 0 {
		return 1, true
	}
	return old, false
}

// Reachable returns the forward-reachability flags from source.
func Reachable(g *graph.Graph, source graph.VertexID, cfg Config) (*Result[uint32], error) {
	return Run[uint32](g, ReachProgram{Source: source}, cfg)
}
