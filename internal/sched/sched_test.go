package sched

import (
	"testing"
	"testing/quick"

	"hipa/internal/machine"
)

func sky() *machine.Machine { return machine.SkylakeSilver4210() }

func TestSpawnPlacesOnFreeCores(t *testing.T) {
	s := New(sky(), 1)
	pool := s.SpawnN(40, PlacementRandom)
	seen := map[int]bool{}
	for _, th := range pool {
		if seen[th.Logical] {
			t.Fatalf("two threads on logical %d while free cores existed", th.Logical)
		}
		seen[th.Logical] = true
	}
	if got := s.Stats().Spawned; got != 40 {
		t.Errorf("Spawned = %d", got)
	}
}

func TestSpawnOversubscribed(t *testing.T) {
	s := New(sky(), 2)
	s.SpawnN(50, PlacementRandom) // 40 logical cores, 10 doubled up
	nodes := s.ThreadsOnNode()
	if nodes[0]+nodes[1] != 50 {
		t.Fatalf("ThreadsOnNode = %v", nodes)
	}
}

func TestBindMigratesAcrossNodes(t *testing.T) {
	s := New(sky(), 3)
	th := s.Spawn(PlacementSequential) // deterministic: logical 0, node 0
	if th.Node(s.Machine()) != 0 {
		t.Fatalf("sequential spawn on node %d", th.Node(s.Machine()))
	}
	if err := s.Bind(th, 1); err != nil {
		t.Fatal(err)
	}
	if th.Node(s.Machine()) != 1 {
		t.Fatal("Bind did not move the thread")
	}
	st := s.Stats()
	if st.Migrations != 1 || st.CrossNodeMigrations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Binding again to the same node must not migrate.
	if err := s.Bind(th, 1); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Migrations != 1 {
		t.Fatal("redundant bind migrated")
	}
}

func TestBindErrors(t *testing.T) {
	s := New(sky(), 4)
	th := s.Spawn(PlacementRandom)
	if err := s.Bind(th, 5); err == nil {
		t.Error("expected error for bad node")
	}
	s.Terminate(th)
	if err := s.Bind(th, 0); err == nil {
		t.Error("expected error for dead thread")
	}
}

func TestPinToLogical(t *testing.T) {
	s := New(sky(), 5)
	th := s.Spawn(PlacementSequential)
	if err := s.PinToLogical(th, 25); err != nil {
		t.Fatal(err)
	}
	if th.Logical != 25 || th.BoundNode != 1 || th.PinnedLogical != 25 {
		t.Fatalf("thread = %+v", th)
	}
	if err := s.PinToLogical(th, 99); err == nil {
		t.Error("expected error for out-of-range logical core")
	}
}

func TestTerminateFreesCore(t *testing.T) {
	s := New(sky(), 6)
	th := s.Spawn(PlacementSequential)
	core := th.Logical
	s.Terminate(th)
	s.Terminate(th) // idempotent
	if got := s.Stats().Terminated; got != 1 {
		t.Fatalf("Terminated = %d, want 1 (idempotent)", got)
	}
	th2 := s.Spawn(PlacementSequential)
	if th2.Logical != core {
		t.Errorf("freed core %d not reused, got %d", core, th2.Logical)
	}
	if len(s.LiveThreads()) != 1 {
		t.Errorf("LiveThreads = %d", len(s.LiveThreads()))
	}
}

func TestContendedPhysicalCores(t *testing.T) {
	s := New(sky(), 7)
	// Pin two threads to HT siblings 0 and 1 -> 1 contended physical core.
	a := s.Spawn(PlacementRandom)
	b := s.Spawn(PlacementRandom)
	if err := s.PinToLogical(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.PinToLogical(b, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.ContendedPhysicalCores(); got != 1 {
		t.Fatalf("ContendedPhysicalCores = %d, want 1", got)
	}
	// Move b to its own physical core.
	if err := s.PinToLogical(b, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.ContendedPhysicalCores(); got != 0 {
		t.Fatalf("ContendedPhysicalCores = %d, want 0", got)
	}
}

// The paper's counting argument (§3.3.2): 10 iterations, 2 phases, 8 threads
// per region on a 2-node machine creates 160 threads, and in the worst case
// every one of them migrates; the pinned model spawns once and migrates at
// most #threads times.
func TestPaperMigrationCountingArgument(t *testing.T) {
	m := &machine.Machine{
		Name: "paper-example", Microarch: "test",
		NUMANodes: 2, CoresPerNode: 4, ThreadsPerCore: 2,
		L1:           machine.Cache{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatencyNS: 1},
		L2:           machine.Cache{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, LatencyNS: 4},
		LLC:          machine.Cache{SizeBytes: 8 << 20, LineBytes: 64, Assoc: 16, LatencyNS: 15},
		LLCInclusive: true, DRAMBytes: 1 << 30,
		LocalLatencyNS: 80, RemoteLatencyNS: 140,
		LocalBandwidth: 16e9, RemoteBandwidth: 2.5e9, NodeBandwidth: 60e9, InterconnectGBps: 20,
		ThreadMigrationNS: 1000, ThreadSpawnNS: 100, SyncBarrierNS: 50, CPUGHz: 2,
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	oblivious := New(m, 42)
	st, err := oblivious.RunObliviousRegions(10*2, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spawned != 160 {
		t.Fatalf("oblivious spawns = %d, want 160 (10 iters x 2 phases x 8 threads)", st.Spawned)
	}
	if st.Migrations > 160 {
		t.Fatalf("oblivious migrations %d exceed spawn count", st.Migrations)
	}

	pinned := New(m, 42)
	pool, st2, err := pinned.RunPinnedThreads(16)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Spawned != 16 {
		t.Fatalf("pinned spawns = %d, want 16 (all logical cores)", st2.Spawned)
	}
	if st2.Migrations > 16 {
		t.Fatalf("pinned migrations = %d, must be <= 16", st2.Migrations)
	}
	// With random placement, the oblivious model migrates roughly half its
	// 160 threads; it must migrate strictly more than the pinned model.
	if st.Migrations <= st2.Migrations {
		t.Fatalf("oblivious migrations (%d) should exceed pinned (%d)", st.Migrations, st2.Migrations)
	}
	if len(pool) != 16 {
		t.Fatal("pool size")
	}
	// Pinned threads must sit on distinct logical cores, node-block layout.
	seen := map[int]bool{}
	for i, th := range pool {
		if seen[th.Logical] {
			t.Fatalf("pinned threads share logical core %d", th.Logical)
		}
		seen[th.Logical] = true
		wantNode := i / 8
		if th.BoundNode != wantNode {
			t.Fatalf("thread %d bound to node %d, want %d", i, th.BoundNode, wantNode)
		}
	}
}

func TestRunPinnedThreadsTooMany(t *testing.T) {
	s := New(sky(), 8)
	if _, _, err := s.RunPinnedThreads(41); err == nil {
		t.Fatal("expected error for more threads than logical cores")
	}
}

func TestRunPinnedThreadsPartial(t *testing.T) {
	s := New(sky(), 9)
	pool, _, err := s.RunPinnedThreads(20) // half the machine
	if err != nil {
		t.Fatal(err)
	}
	nodes := s.ThreadsOnNode()
	if nodes[0] != 10 || nodes[1] != 10 {
		t.Fatalf("ThreadsOnNode = %v, want [10 10]", nodes)
	}
	_ = pool
}

func TestDeterminism(t *testing.T) {
	a, b := New(sky(), 77), New(sky(), 77)
	pa := a.SpawnN(10, PlacementRandom)
	pb := b.SpawnN(10, PlacementRandom)
	for i := range pa {
		if pa[i].Logical != pb[i].Logical {
			t.Fatal("same seed produced different placements")
		}
	}
}

// Property: a bound thread always ends up on its bound node, and live-count
// bookkeeping stays consistent.
func TestPropertyBindInvariant(t *testing.T) {
	f := func(seed uint64, ops []uint8) bool {
		s := New(sky(), seed)
		var threads []*Thread
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				threads = append(threads, s.Spawn(PlacementRandom))
			case 2:
				if len(threads) > 0 {
					th := threads[int(op)%len(threads)]
					if th.alive {
						node := int(op>>4) % 2
						if err := s.Bind(th, node); err != nil {
							return false
						}
						if th.Node(s.Machine()) != node {
							return false
						}
					}
				}
			case 3:
				if len(threads) > 0 {
					s.Terminate(threads[int(op)%len(threads)])
				}
			}
		}
		// Bookkeeping: live threads equals spawned - terminated.
		st := s.Stats()
		return int64(len(s.LiveThreads())) == st.Spawned-st.Terminated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
