// Package sched simulates the operating-system thread scheduler of a NUMA
// multicore machine: thread creation on arbitrary logical cores, affinity
// binding to NUMA nodes or explicit logical cores, and the thread migrations
// that binding triggers when a thread starts on the wrong node.
//
// It substitutes for pthread affinity plus the VTune thread-migration
// counters used in the paper (§3.3). The paper's two processing models are
// both expressible:
//
//   - Algorithm 1 (NUMA-oblivious scatter-gather): every parallel region
//     spawns a fresh thread pool, so over I iterations with two phases and T
//     threads, up to I×2×T spawns occur, each risking a migration when bound.
//   - Algorithm 2 (HiPa): T threads are spawned once, bound once, and live
//     for the whole computation, so at most T migrations occur.
//
// Placement is deterministic given the seed. A Scheduler is not safe for
// concurrent use.
package sched

import (
	"fmt"
	"math/rand/v2"

	"hipa/internal/machine"
)

// Placement selects how the simulated OS chooses a logical core for a new
// thread.
type Placement int

const (
	// PlacementRandom mimics a real OS under load: a uniformly random free
	// logical core (random core if all are busy), with no awareness of
	// physical-core pairing — two new threads may land on hyper-thread
	// siblings even when whole physical cores are idle (§3.3.1).
	PlacementRandom Placement = iota
	// PlacementSequential packs threads onto logical cores in index order;
	// useful for deterministic unit tests.
	PlacementSequential
)

// Thread is one simulated software thread.
type Thread struct {
	ID      int
	Logical int // current logical core
	// BoundNode is the NUMA node the thread is bound to, or -1 if unbound.
	BoundNode int
	// PinnedLogical is >= 0 if the thread has hard affinity to one logical
	// core.
	PinnedLogical int
	alive         bool
}

// Node returns the NUMA node the thread currently runs on.
func (t *Thread) Node(m *machine.Machine) int { return m.NodeOfLogical(t.Logical) }

// Stats accumulates scheduler events and their modelled costs. The json
// tags define the stable machine-readable form exported by the obs run
// reports.
type Stats struct {
	Spawned    int64 `json:"spawned"`
	Terminated int64 `json:"terminated"`
	Bindings   int64 `json:"bindings"`
	// Migrations counts thread moves to a different logical core caused by
	// binding or pinning.
	Migrations int64 `json:"migrations"`
	// CrossNodeMigrations is the subset of Migrations that crossed NUMA
	// nodes (the expensive kind: context transfer through remote memory).
	CrossNodeMigrations int64 `json:"cross_node_migrations"`
	// CostNS is the summed modelled cost of spawns and migrations.
	CostNS float64 `json:"cost_ns"`
}

// Scheduler simulates the OS scheduler for one machine.
type Scheduler struct {
	mach    *machine.Machine
	rng     *rand.Rand
	nextID  int
	threads []*Thread
	// load[l] is the number of live threads currently on logical core l.
	load  []int
	stats Stats
}

// New returns a scheduler for machine m with a deterministic placement
// stream derived from seed.
func New(m *machine.Machine, seed uint64) *Scheduler {
	return &Scheduler{
		mach: m,
		rng:  rand.New(rand.NewPCG(seed, 0xA5A5A5A5)),
		load: make([]int, m.LogicalCores()),
	}
}

// Machine returns the scheduler's machine.
func (s *Scheduler) Machine() *machine.Machine { return s.mach }

// Stats returns a copy of the accumulated statistics.
func (s *Scheduler) Stats() Stats { return s.stats }

// LiveThreads returns the currently live threads.
func (s *Scheduler) LiveThreads() []*Thread {
	var out []*Thread
	for _, t := range s.threads {
		if t.alive {
			out = append(out, t)
		}
	}
	return out
}

// Spawn creates one thread placed per the given policy and returns it.
func (s *Scheduler) Spawn(p Placement) *Thread {
	logical := s.pick(p)
	t := &Thread{
		ID:            s.nextID,
		Logical:       logical,
		BoundNode:     -1,
		PinnedLogical: -1,
		alive:         true,
	}
	s.nextID++
	s.threads = append(s.threads, t)
	s.load[logical]++
	s.stats.Spawned++
	s.stats.CostNS += s.mach.ThreadSpawnNS
	return t
}

// SpawnN creates n threads.
func (s *Scheduler) SpawnN(n int, p Placement) []*Thread {
	out := make([]*Thread, n)
	for i := range out {
		out[i] = s.Spawn(p)
	}
	return out
}

func (s *Scheduler) pick(p Placement) int {
	n := len(s.load)
	switch p {
	case PlacementSequential:
		best, bestLoad := 0, s.load[0]
		for l := 1; l < n; l++ {
			if s.load[l] < bestLoad {
				best, bestLoad = l, s.load[l]
			}
		}
		return best
	default:
		// A real OS mostly load-balances across physical cores first, but
		// not reliably — the paper's §3.3.1 point is that "it might occur
		// that two selected logic cores correspond to the same physical
		// core". Model: 75% of placements pick a logical core on a fully
		// idle physical core when one exists; the rest pick any free
		// logical core; oversubscribed spawns land anywhere.
		var idlePhys, free []int
		for l, ld := range s.load {
			if ld > 0 {
				continue
			}
			free = append(free, l)
			sib := s.mach.SiblingOfLogical(l)
			if sib < 0 || s.load[sib] == 0 {
				idlePhys = append(idlePhys, l)
			}
		}
		if len(idlePhys) > 0 && s.rng.Float64() < 0.75 {
			return idlePhys[s.rng.IntN(len(idlePhys))]
		}
		if len(free) > 0 {
			return free[s.rng.IntN(len(free))]
		}
		return s.rng.IntN(n)
	}
}

// Bind binds t to a NUMA node. If t currently runs on a different node it
// migrates to a logical core on the target node (least-loaded, tie-broken by
// index), which counts as a cross-node migration with its modelled cost.
func (s *Scheduler) Bind(t *Thread, node int) error {
	if node < 0 || node >= s.mach.NUMANodes {
		return fmt.Errorf("sched: bind to node %d of %d-node machine", node, s.mach.NUMANodes)
	}
	if !t.alive {
		return fmt.Errorf("sched: thread %d is terminated", t.ID)
	}
	s.stats.Bindings++
	t.BoundNode = node
	if t.Node(s.mach) == node {
		return nil
	}
	// Migration to the least-loaded logical core on the target node.
	lo := node * s.mach.LogicalPerNode()
	hi := lo + s.mach.LogicalPerNode()
	best, bestLoad := lo, s.load[lo]
	for l := lo + 1; l < hi; l++ {
		if s.load[l] < bestLoad {
			best, bestLoad = l, s.load[l]
		}
	}
	s.migrate(t, best)
	return nil
}

// PinToLogical gives t hard affinity to one logical core, migrating if
// needed. This is what HiPa's thread-data pinning uses after node binding.
func (s *Scheduler) PinToLogical(t *Thread, logical int) error {
	if logical < 0 || logical >= s.mach.LogicalCores() {
		return fmt.Errorf("sched: pin to logical %d of %d", logical, s.mach.LogicalCores())
	}
	if !t.alive {
		return fmt.Errorf("sched: thread %d is terminated", t.ID)
	}
	t.PinnedLogical = logical
	t.BoundNode = s.mach.NodeOfLogical(logical)
	if t.Logical != logical {
		s.migrate(t, logical)
	}
	return nil
}

func (s *Scheduler) migrate(t *Thread, to int) {
	from := t.Logical
	cross := s.mach.NodeOfLogical(from) != s.mach.NodeOfLogical(to)
	s.load[from]--
	s.load[to]++
	t.Logical = to
	s.stats.Migrations++
	if cross {
		s.stats.CrossNodeMigrations++
		s.stats.CostNS += s.mach.ThreadMigrationNS
	} else {
		// Same-node migration: context moves through the shared LLC, an
		// order of magnitude cheaper.
		s.stats.CostNS += s.mach.ThreadMigrationNS / 10
	}
}

// Terminate ends a thread and frees its core.
func (s *Scheduler) Terminate(t *Thread) {
	if !t.alive {
		return
	}
	t.alive = false
	s.load[t.Logical]--
	s.stats.Terminated++
}

// TerminateAll ends every live thread.
func (s *Scheduler) TerminateAll() {
	for _, t := range s.threads {
		s.Terminate(t)
	}
}

// ContendedPhysicalCores returns how many physical cores currently host two
// or more live threads — the paper's hyper-thread contention condition
// (§3.3.1: paired logical cores competing for the same L2).
func (s *Scheduler) ContendedPhysicalCores() int {
	perPhys := make([]int, s.mach.PhysicalCores())
	for l, ld := range s.load {
		perPhys[s.mach.PhysicalOfLogical(l)] += ld
	}
	n := 0
	for _, c := range perPhys {
		if c >= 2 {
			n++
		}
	}
	return n
}

// ThreadsOnNode returns the number of live threads per NUMA node.
func (s *Scheduler) ThreadsOnNode() []int {
	out := make([]int, s.mach.NUMANodes)
	for l, ld := range s.load {
		out[s.mach.NodeOfLogical(l)] += ld
	}
	return out
}

// RunObliviousRegions simulates Algorithm 1's thread lifecycle: for each of
// `regions` parallel regions it spawns `threads` threads, optionally binds
// them round-robin to NUMA nodes (a NUMA-aware retrofit of the oblivious
// model, the paper's worst case), and terminates them at the region's
// barrier. It returns the scheduler stats delta.
func (s *Scheduler) RunObliviousRegions(regions, threads int, bindNodes bool) (Stats, error) {
	before := s.stats
	for r := 0; r < regions; r++ {
		pool := s.SpawnN(threads, PlacementRandom)
		if bindNodes {
			for i, t := range pool {
				if err := s.Bind(t, i%s.mach.NUMANodes); err != nil {
					return Stats{}, err
				}
			}
		}
		for _, t := range pool {
			s.Terminate(t)
		}
	}
	return delta(before, s.stats), nil
}

// RunPinnedThreads simulates Algorithm 2's lifecycle: spawn `threads`
// persistent threads once, bind thread i to node i/(threads/nodes) (block
// assignment, matching HiPa's partition placement) and pin it to a distinct
// logical core there. The threads stay alive; callers terminate via
// TerminateAll. It returns the threads and the stats delta.
func (s *Scheduler) RunPinnedThreads(threads int) ([]*Thread, Stats, error) {
	before := s.stats
	if threads > s.mach.LogicalCores() {
		return nil, Stats{}, fmt.Errorf("sched: %d threads exceed %d logical cores", threads, s.mach.LogicalCores())
	}
	pool := s.SpawnN(threads, PlacementRandom)
	perNode := (threads + s.mach.NUMANodes - 1) / s.mach.NUMANodes
	for i, t := range pool {
		node := i / perNode
		if node >= s.mach.NUMANodes {
			node = s.mach.NUMANodes - 1
		}
		// Spread across physical cores first, then fill hyper-thread
		// siblings: thread j on a node takes hyper-thread j/coresPerNode of
		// physical core j%coresPerNode. With 20 threads on a 2x10-core
		// machine every thread owns a whole physical core; with 40 the
		// sibling pairs fill up.
		j := i % perNode
		logical := node*s.mach.LogicalPerNode() +
			(j%s.mach.CoresPerNode)*s.mach.ThreadsPerCore + j/s.mach.CoresPerNode
		if err := s.PinToLogical(t, logical); err != nil {
			return nil, Stats{}, err
		}
	}
	return pool, delta(before, s.stats), nil
}

func delta(before, after Stats) Stats {
	return Stats{
		Spawned:             after.Spawned - before.Spawned,
		Terminated:          after.Terminated - before.Terminated,
		Bindings:            after.Bindings - before.Bindings,
		Migrations:          after.Migrations - before.Migrations,
		CrossNodeMigrations: after.CrossNodeMigrations - before.CrossNodeMigrations,
		CostNS:              after.CostNS - before.CostNS,
	}
}
