package graph

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// referenceBuild is a naive CSR construction: plain sort.Slice per the old
// implementation, with optional self-loop removal and dedup. The parallel
// counting-sort Build must agree with it exactly.
func referenceBuild(n int, edges []Edge, dedup, noSelfLoops bool) (off []int64, out []VertexID) {
	es := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if noSelfLoops && e.Src == e.Dst {
			continue
		}
		es = append(es, e)
	}
	sort.SliceStable(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
	if dedup {
		kept := es[:0]
		for i, e := range es {
			if i == 0 || e != es[i-1] {
				kept = append(kept, e)
			}
		}
		es = kept
	}
	off = make([]int64, n+1)
	out = make([]VertexID, len(es))
	for _, e := range es {
		off[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	for i, e := range es {
		out[i] = e.Dst
	}
	return off, out
}

// TestPropertyBuildMatchesReference: at every parallelism setting, with and
// without dedup and self-loop removal, Builder.Build produces exactly the
// reference CSR — fully sorted adjacency segments, bit-identical arrays.
func TestPropertyBuildMatchesReference(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16, dedup, noLoops bool) bool {
		n := int(nRaw)%80 + 1
		m := int(mRaw) % 700
		rng := rand.New(rand.NewSource(seed))
		edges := make([]Edge, m)
		for i := range edges {
			// A narrow ID range forces duplicates and self-loops.
			edges[i] = Edge{VertexID(rng.Intn(n)), VertexID(rng.Intn(n))}
		}
		wantOff, wantOut := referenceBuild(n, edges, dedup, noLoops)
		for _, par := range []int{1, 3, 8} {
			b := NewBuilder(n)
			b.Dedup = dedup
			b.RemoveSelfLoops = noLoops
			b.Parallelism = par
			b.AddEdges(edges)
			g := b.Build()
			if err := g.Validate(); err != nil {
				t.Logf("parallelism %d: %v", par, err)
				return false
			}
			if len(g.outOffsets) != len(wantOff) || len(g.outEdges) != len(wantOut) {
				t.Logf("parallelism %d: sizes differ", par)
				return false
			}
			for i := range wantOff {
				if g.outOffsets[i] != wantOff[i] {
					t.Logf("parallelism %d: offsets[%d] = %d, want %d", par, i, g.outOffsets[i], wantOff[i])
					return false
				}
			}
			for i := range wantOut {
				if g.outEdges[i] != wantOut[i] {
					t.Logf("parallelism %d: edges[%d] = %d, want %d", par, i, g.outEdges[i], wantOut[i])
					return false
				}
			}
			// Segments sorted ascending (and strictly when deduped).
			for v := 0; v < n; v++ {
				seg := g.OutNeighbors(VertexID(v))
				for i := 1; i < len(seg); i++ {
					if seg[i] < seg[i-1] || (dedup && seg[i] == seg[i-1]) {
						t.Logf("parallelism %d: segment of %d not sorted/deduped: %v", par, v, seg)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildInWorkersIdentical: the CSC arrays are bit-identical at any
// worker count.
func TestBuildInWorkersIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	edges := make([]Edge, 5000)
	n := 300
	for i := range edges {
		edges[i] = Edge{VertexID(rng.Intn(n)), VertexID(rng.Intn(n))}
	}
	var ref *csc
	for _, workers := range []int{1, 2, 3, 8} {
		b := NewBuilder(n)
		b.AddEdges(edges)
		g := b.Build()
		g.BuildInWorkers(workers)
		in := g.in.Load()
		if ref == nil {
			ref = in
			continue
		}
		for i := range ref.offsets {
			if in.offsets[i] != ref.offsets[i] {
				t.Fatalf("workers=%d: inOffsets[%d] differs", workers, i)
			}
		}
		for i := range ref.edges {
			if in.edges[i] != ref.edges[i] {
				t.Fatalf("workers=%d: inEdges[%d] differs", workers, i)
			}
		}
	}
}

// TestConcurrentBuildInTransposeReaders hammers the lazy CSC build from many
// goroutines — concurrent BuildIn, Transpose, Symmetrize, and readers that
// must never observe a half-built form (run under -race in CI). Regression
// test for the race where inOffsets was published before inEdges and
// external callers bypassed the build lock.
func TestConcurrentBuildInTransposeReaders(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 200
		b := NewBuilder(n)
		for i := 0; i < 3000; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				switch w % 4 {
				case 0:
					g.BuildInWorkers(2)
				case 1:
					tr := g.Transpose()
					if tr.NumEdges() != g.NumEdges() {
						t.Error("transpose changed edge count")
					}
				case 2:
					// Reader: whenever the CSC is visible it must be complete
					// and consistent.
					for i := 0; i < 100; i++ {
						if g.HasInEdges() {
							off, in := g.InOffsets(), g.InEdges()
							if int64(len(in)) != off[n] {
								t.Errorf("observed half-built CSC: %d edges, offsets end %d", len(in), off[n])
							}
							var sum int64
							for v := 0; v < n; v++ {
								sum += g.InDegree(VertexID(v))
							}
							if sum != g.NumEdges() {
								t.Errorf("observed inconsistent CSC: in-degree sum %d", sum)
							}
						}
					}
				case 3:
					s := g.Symmetrize()
					if err := s.Validate(); err != nil {
						t.Errorf("symmetrize under concurrency: %v", err)
					}
				}
			}(w)
		}
		close(start)
		wg.Wait()
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTransposeAliasesCSC: Transpose must share the source graph's immutable
// CSC arrays, not deep-copy them.
func TestTransposeAliasesCSC(t *testing.T) {
	g := buildTestGraph(t)
	tr := g.Transpose()
	in := g.in.Load()
	if in == nil {
		t.Fatal("Transpose did not build the CSC form")
	}
	if len(tr.outEdges) > 0 && &tr.outEdges[0] != &in.edges[0] {
		t.Error("transpose copied the CSC edge array instead of aliasing it")
	}
	if &tr.outOffsets[0] != &in.offsets[0] {
		t.Error("transpose copied the CSC offset array instead of aliasing it")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFingerprintMemoizedAndDeterministic: the fingerprint is computed once
// per graph instance (memoized on the graph), is identical across worker
// counts and across content-identical instances, and differs for different
// content.
func TestFingerprintMemoizedAndDeterministic(t *testing.T) {
	build := func() *Graph {
		b := NewBuilder(500)
		for v := 0; v < 500; v++ {
			b.AddEdge(VertexID(v), VertexID((v*7+3)%500))
			b.AddEdge(VertexID(v), VertexID((v*13+1)%500))
		}
		return b.Build()
	}
	g1, g2 := build(), build()
	fp := g1.FingerprintWorkers(1)
	for _, workers := range []int{1, 2, 8} {
		h := build()
		if got := h.FingerprintWorkers(workers); got != fp {
			t.Errorf("workers=%d: fingerprint %x, want %x (must not depend on parallelism)", workers, got, fp)
		}
	}
	if g2.Fingerprint() != fp {
		t.Error("content-identical graphs have different fingerprints")
	}
	// Memoization: mutating the CSR after the first call must not change the
	// value — it was computed exactly once.
	g1.outEdges[0]++
	if g1.Fingerprint() != fp {
		t.Error("fingerprint recomputed instead of memoized")
	}
	g1.outEdges[0]--
	// Different content, different fingerprint.
	b := NewBuilder(500)
	b.AddEdge(0, 1)
	if b.Build().Fingerprint() == fp {
		t.Error("different graphs share a fingerprint")
	}
}

// TestFingerprintConcurrent: concurrent first calls agree (run under -race).
func TestFingerprintConcurrent(t *testing.T) {
	g := buildTestGraph(t)
	got := make([]uint64, 8)
	var wg sync.WaitGroup
	for w := range got {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = g.FingerprintWorkers(w%3 + 1)
		}(w)
	}
	wg.Wait()
	for w := 1; w < len(got); w++ {
		if got[w] != got[0] {
			t.Fatalf("concurrent fingerprints disagree: %x vs %x", got[w], got[0])
		}
	}
}

// TestValidateCatchesBadCSC: a truncated inEdges array or a non-monotone
// inOffsets must fail validation (regression: only inOffsets[n] was checked,
// so a short edge array validated fine and panicked later in InNeighbors).
func TestValidateCatchesBadCSC(t *testing.T) {
	mk := func() *Graph {
		g := buildTestGraph(t)
		g.BuildIn()
		return g
	}
	g := mk()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Truncated edge array.
	bad := mk()
	in := bad.in.Load()
	bad.in.Store(&csc{offsets: in.offsets, edges: in.edges[:len(in.edges)-1]})
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a truncated inEdges array")
	}
	// Non-monotone offsets.
	bad2 := mk()
	in2 := bad2.in.Load()
	off := append([]int64(nil), in2.offsets...)
	off[2], off[3] = off[3], off[2]-1
	bad2.in.Store(&csc{offsets: off, edges: in2.edges})
	if err := bad2.Validate(); err == nil {
		t.Error("Validate accepted non-monotone inOffsets")
	}
	// Out-of-range source.
	bad3 := mk()
	in3 := bad3.in.Load()
	edges := append([]VertexID(nil), in3.edges...)
	edges[0] = VertexID(bad3.numVertices)
	bad3.in.Store(&csc{offsets: in3.offsets, edges: edges})
	if err := bad3.Validate(); err == nil {
		t.Error("Validate accepted an out-of-range in-edge source")
	}
}
