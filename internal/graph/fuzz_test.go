package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList exercises the text parser with arbitrary input: it must
// never panic, and any graph it accepts must validate and round-trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% other\n\n5 5\n")
	f.Add("a b\n")
	f.Add("0\n")
	f.Add("-1 4\n")
	f.Add("4294967295 0\n")
	f.Add("99999999999999999999 1\n")
	f.Add("0 1 extra tokens are fine\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(bytes.NewBufferString(input), 0)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf, g.NumVertices())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count: %d -> %d", g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzReadMutationBatches exercises the mutation-stream parser with
// arbitrary text: it must never panic, and any stream it accepts must
// round-trip through WriteMutationBatches without changing a single batch
// or mutation — the property the reload endpoint and the dynamic-replay
// harness rely on.
func FuzzReadMutationBatches(f *testing.F) {
	f.Add("+ 0 1\n- 1 2\ncommit\n+ 3 4\ncommit\n")
	f.Add("# comment\n% other\n\n+ 5 5\n")
	f.Add("commit\ncommit\n")
	f.Add("+ 1 2\n")
	f.Add("* 1 2\n")
	f.Add("+ -1 4\n")
	f.Add("+ 4294967295 0\n")
	f.Add("+ 99999999999999999999 1\n")
	f.Add("+ 1 2 extra tokens are fine\ncommit\n")
	f.Fuzz(func(t *testing.T, input string) {
		batches, err := ReadMutationBatches(bytes.NewBufferString(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMutationBatches(&buf, batches); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		again, err := ReadMutationBatches(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again) != len(batches) {
			t.Fatalf("round trip changed batch count: %d -> %d", len(batches), len(again))
		}
		for i := range batches {
			if len(again[i]) != len(batches[i]) {
				t.Fatalf("batch %d changed size: %d -> %d", i, len(batches[i]), len(again[i]))
			}
			for j, m := range batches[i] {
				if again[i][j] != m {
					t.Fatalf("batch %d mutation %d changed: %+v -> %+v", i, j, m, again[i][j])
				}
			}
		}
	})
}

// FuzzReadBinary exercises the binary loader with arbitrary bytes: it must
// reject malformed input with an error, never panic or accept an invalid
// graph.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and some mutations.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(2, 0)
	g := b.Build()
	var valid bytes.Buffer
	if err := WriteBinary(&valid, g); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("HGR1"))
	corrupted := append([]byte(nil), valid.Bytes()...)
	if len(corrupted) > 20 {
		corrupted[20] ^= 0xFF
	}
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}
