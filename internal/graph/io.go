package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Binary graph format ("HGR1"):
//
//	magic    [4]byte  "HGR1"
//	version  uint32   1
//	vertices uint64
//	edges    uint64
//	flags    uint32   bit 0: in-edge form present
//	outOffsets [vertices+1]int64
//	outEdges   [edges]uint32
//	(if flag) inOffsets  [vertices+1]int64
//	(if flag) inEdges    [edges]uint32
//
// All integers little-endian.

var binMagic = [4]byte{'H', 'G', 'R', '1'}

const binVersion = 1

// MaxVertices and MaxEdges bound what the loaders will allocate for: a
// malformed or hostile input (a 15-byte edge list naming vertex 2^32-1, a
// corrupted binary header) must fail cleanly instead of exhausting memory.
// Both limits are far above anything this library is used for.
const (
	MaxVertices = 1 << 28 // 268M vertices (2GB of offsets)
	MaxEdges    = 1 << 31 // 2G edges (8GB of endpoints)
	// MaxInferredVertices bounds the graph size a *text* edge list may
	// imply from its largest vertex ID: a few bytes of text must not force
	// hundreds of megabytes of offsets. Pass numVertices explicitly to
	// ReadEdgeList for larger graphs.
	MaxInferredVertices = 1 << 24 // 16M
	// MaxLineBytes is the longest edge-list line ReadEdgeList accepts.
	// bufio.Scanner's 64KB default silently fails on real-world dumps that
	// pack many records per line; lines beyond this cap are a clean error
	// carrying the line number, not an allocation hazard.
	MaxLineBytes = 1 << 26 // 64MB
)

// WriteBinary serialises g in the HGR1 binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	in := g.in.Load()
	var flags uint32
	if in != nil {
		flags |= 1
	}
	for _, v := range []uint64{binVersion, uint64(g.numVertices), uint64(g.numEdges), uint64(flags)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := writeInt64s(bw, g.outOffsets); err != nil {
		return err
	}
	if err := writeUint32s(bw, g.outEdges); err != nil {
		return err
	}
	if in != nil {
		if err := writeInt64s(bw, in.offsets); err != nil {
			return err
		}
		if err := writeUint32s(bw, in.edges); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserialises a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	version, nv, ne, flags := hdr[0], hdr[1], hdr[2], hdr[3]
	if version != binVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	// Cap header sizes so a corrupt or hostile file cannot trigger a huge
	// allocation before any content validation runs.
	if nv > MaxVertices || ne > MaxEdges {
		return nil, fmt.Errorf("graph: implausible header (v=%d e=%d)", nv, ne)
	}
	g := &Graph{numVertices: int(nv), numEdges: int64(ne)}
	var err error
	if g.outOffsets, err = readInt64s(br, int(nv)+1); err != nil {
		return nil, err
	}
	if g.outEdges, err = readUint32s(br, int(ne)); err != nil {
		return nil, err
	}
	if flags&1 != 0 {
		inOff, err := readInt64s(br, int(nv)+1)
		if err != nil {
			return nil, err
		}
		inE, err := readUint32s(br, int(ne))
		if err != nil {
			return nil, err
		}
		g.setIn(inOff, inE)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// SaveBinary writes g to the named file.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a graph from the named file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

func writeInt64s(w io.Writer, xs []int64) error {
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func writeUint32s(w io.Writer, xs []uint32) error {
	var buf [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(buf[:], x)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func readInt64s(r io.Reader, n int) ([]int64, error) {
	xs := make([]int64, n)
	var buf [8]byte
	for i := range xs {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("graph: reading int64 array: %w", err)
		}
		xs[i] = int64(binary.LittleEndian.Uint64(buf[:]))
	}
	return xs, nil
}

func readUint32s(r io.Reader, n int) ([]uint32, error) {
	xs := make([]uint32, n)
	var buf [4]byte
	for i := range xs {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("graph: reading uint32 array: %w", err)
		}
		xs[i] = binary.LittleEndian.Uint32(buf[:])
	}
	return xs, nil
}

// ReadEdgeList parses a whitespace-separated "src dst" edge list, one edge
// per line. Lines beginning with '#' or '%' are comments. Vertex IDs may be
// arbitrary non-negative integers; the graph size is max(id)+1. If
// numVertices > 0 it overrides the inferred size (and out-of-range edges are
// an error).
func ReadEdgeList(r io.Reader, numVertices int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), MaxLineBytes)
	var edges []Edge
	maxID := int64(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst', got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", lineNo, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", lineNo, err)
		}
		if src < 0 || dst < 0 || src >= MaxVertices || dst >= MaxVertices {
			return nil, fmt.Errorf("graph: line %d: vertex id out of range [0,%d)", lineNo, MaxVertices)
		}
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
		edges = append(edges, Edge{VertexID(src), VertexID(dst)})
	}
	if err := sc.Err(); err != nil {
		// Scanner errors (a too-long line, a failing reader) surface on the
		// line after the last one successfully scanned.
		return nil, fmt.Errorf("graph: line %d: %w", lineNo+1, err)
	}
	n := int(maxID + 1)
	if numVertices > 0 {
		if int64(numVertices) <= maxID {
			return nil, fmt.Errorf("graph: numVertices %d too small for max id %d", numVertices, maxID)
		}
		if numVertices > MaxVertices {
			return nil, fmt.Errorf("graph: numVertices %d exceeds limit %d", numVertices, MaxVertices)
		}
		n = numVertices
	} else if maxID >= MaxInferredVertices {
		return nil, fmt.Errorf("graph: inferred vertex count %d exceeds limit %d; pass numVertices explicitly", maxID+1, MaxInferredVertices)
	}
	b := NewBuilder(n)
	b.AddEdges(edges)
	return b.Build(), nil
}

// WriteEdgeList writes g as a "src dst" text edge list.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for v := 0; v < g.NumVertices(); v++ {
		for _, dst := range g.OutNeighbors(VertexID(v)) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, dst); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
