// Text serialization of mutation streams: one mutation per line ("+ src
// dst" inserts, "- src dst" deletes), batches separated by lines containing
// only "commit" (a trailing separator is optional). '#' and '%' start
// comment lines, matching the edge-list reader. hipapr -mutations and
// hipainfo -mutations replay files in this format.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadMutationBatches parses a mutation-stream file into batches.
func ReadMutationBatches(r io.Reader) ([][]Mutation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var batches [][]Mutation
	var cur []Mutation
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		if text == "commit" {
			batches = append(batches, cur)
			cur = nil
			continue
		}
		var opStr string
		var src, dst VertexID
		if _, err := fmt.Sscanf(text, "%s %d %d", &opStr, &src, &dst); err != nil {
			return nil, fmt.Errorf("mutations: line %d: %q: %v", line, text, err)
		}
		var op MutOp
		switch opStr {
		case "+":
			op = InsertEdge
		case "-":
			op = DeleteEdge
		default:
			return nil, fmt.Errorf("mutations: line %d: op %q, want + or -", line, opStr)
		}
		cur = append(cur, Mutation{Op: op, Src: src, Dst: dst})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches, nil
}

// WriteMutationBatches writes batches in the format ReadMutationBatches
// parses, each batch terminated by a "commit" line.
func WriteMutationBatches(w io.Writer, batches [][]Mutation) error {
	bw := bufio.NewWriter(w)
	for _, batch := range batches {
		for _, m := range batch {
			if _, err := fmt.Fprintf(bw, "%s %d %d\n", m.Op, m.Src, m.Dst); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "commit"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
