// Versioned graphs: an immutable CSR snapshot plus an append-only delta log
// of edge mutations, the substrate of the incremental re-rank pipeline. Each
// ApplyBatch call produces a new Version; overlay accessors answer adjacency
// queries at any live version without materializing it, GraphAt folds a
// version into a full immutable Graph on demand, and a compaction policy
// folds the whole log into a fresh snapshot once it grows past a threshold.
//
// The versioned view treats the graph as an edge *set*: inserting an edge
// that already exists and deleting one that does not are both no-ops (they
// do not error and do not grow the log), and a delete removes every parallel
// copy of the edge. Snapshot adjacency rows are expected in the sorted,
// CSR-canonical form Builder.Build produces.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"hipa/internal/par"
)

// MutOp is the kind of one edge mutation.
type MutOp uint8

const (
	// InsertEdge adds a directed edge (no-op if it already exists).
	InsertEdge MutOp = iota
	// DeleteEdge removes a directed edge (no-op if it does not exist).
	DeleteEdge
)

func (op MutOp) String() string {
	if op == InsertEdge {
		return "+"
	}
	return "-"
}

// Mutation is one edge insert or delete.
type Mutation struct {
	Op  MutOp
	Src VertexID
	Dst VertexID
}

// Version numbers the states of a Versioned graph. Version 0 is the state
// the Versioned was created with; every ApplyBatch increments it by one.
type Version int

// vertexOverlay is the cumulative per-vertex delta of the current version
// relative to the snapshot: adds are in the current view but not in the
// snapshot row, dels are in the snapshot row but not in the current view.
// Both are sorted ascending.
type vertexOverlay struct {
	adds []VertexID
	dels []VertexID
}

// mutBatch is one applied batch in the delta log.
type mutBatch struct {
	ver Version
	// Effective mutations, sorted by (Src, Dst). Ineffective ones (duplicate
	// inserts, deletes of absent edges, insert+delete pairs within the batch)
	// are dropped at ApplyBatch time.
	adds []Edge
	dels []Edge
	// touched lists the sorted, unique source vertices whose out-adjacency
	// changed in this batch.
	touched []VertexID
	// edges is the total edge count at this batch's version.
	edges int64
	// chainFP is the version-aware fingerprint at this version: the snapshot
	// fingerprint mixed with every batch content hash up to here. An empty
	// batch inherits the previous version's fingerprint unchanged (the graph
	// content is identical, so artifact caches should keep hitting).
	chainFP uint64
}

// Versioned wraps an immutable snapshot Graph with an append-only mutation
// log. All methods are safe for concurrent use; ApplyBatch serializes
// writers.
type Versioned struct {
	// CompactThreshold is the log size (effective inserts + deletes since the
	// snapshot) past which ApplyBatch folds the log into a fresh snapshot.
	// 0 selects the default max(4096, snapshot edges / 8). Set it before the
	// first ApplyBatch; it is read without synchronization afterwards.
	CompactThreshold int

	mu       sync.RWMutex
	snap     *Graph
	snapVer  Version
	batches  []mutBatch
	overlay  map[VertexID]*vertexOverlay // cumulative, current version
	logSize  int                         // Σ |adds|+|dels| over batches
	compacts int                         // compactions performed

	// matCache memoizes GraphAt per version (the last few only); guarded by mu.
	matCache map[Version]*Graph
}

// NewVersioned wraps g as version 0 of a versioned graph. g must be in
// canonical CSR form (sorted adjacency rows); Builder.Build and the binary
// loader produce it.
func NewVersioned(g *Graph) *Versioned {
	return &Versioned{
		snap:     g,
		overlay:  map[VertexID]*vertexOverlay{},
		matCache: map[Version]*Graph{},
	}
}

// Version returns the current (latest) version.
func (vg *Versioned) Version() Version {
	vg.mu.RLock()
	defer vg.mu.RUnlock()
	return vg.curVersion()
}

func (vg *Versioned) curVersion() Version {
	return vg.snapVer + Version(len(vg.batches))
}

// SnapshotVersion returns the oldest still-addressable version — the one the
// current snapshot represents. Versions before it were folded away by
// compaction.
func (vg *Versioned) SnapshotVersion() Version {
	vg.mu.RLock()
	defer vg.mu.RUnlock()
	return vg.snapVer
}

// Snapshot returns the current immutable snapshot Graph.
func (vg *Versioned) Snapshot() *Graph {
	vg.mu.RLock()
	defer vg.mu.RUnlock()
	return vg.snap
}

// NumVertices returns the (fixed) vertex count. Mutations never add or
// remove vertices.
func (vg *Versioned) NumVertices() int { return vg.snap.NumVertices() }

// Compactions returns how many times the log has been folded into a fresh
// snapshot.
func (vg *Versioned) Compactions() int {
	vg.mu.RLock()
	defer vg.mu.RUnlock()
	return vg.compacts
}

// LogSize returns the number of effective mutations in the delta log since
// the snapshot.
func (vg *Versioned) LogSize() int {
	vg.mu.RLock()
	defer vg.mu.RUnlock()
	return vg.logSize
}

// VersionedStats summarises a Versioned graph for reporting (hipainfo).
type VersionedStats struct {
	Vertices        int     `json:"vertices"`
	SnapshotVersion Version `json:"snapshot_version"`
	SnapshotEdges   int64   `json:"snapshot_edges"`
	Version         Version `json:"version"`
	Edges           int64   `json:"edges"`
	LogBatches      int     `json:"log_batches"`
	LogMutations    int     `json:"log_mutations"`
	Compactions     int     `json:"compactions"`
}

// Stats returns a snapshot of the versioned graph's bookkeeping.
func (vg *Versioned) Stats() VersionedStats {
	vg.mu.RLock()
	defer vg.mu.RUnlock()
	return VersionedStats{
		Vertices:        vg.snap.NumVertices(),
		SnapshotVersion: vg.snapVer,
		SnapshotEdges:   vg.snap.NumEdges(),
		Version:         vg.curVersion(),
		Edges:           vg.edgesLocked(vg.curVersion()),
		LogBatches:      len(vg.batches),
		LogMutations:    vg.logSize,
		Compactions:     vg.compacts,
	}
}

func (vg *Versioned) checkVersion(ver Version) error {
	if ver < vg.snapVer || ver > vg.curVersion() {
		return fmt.Errorf("graph: version %d out of range [%d, %d] (older versions were compacted away)",
			ver, vg.snapVer, vg.curVersion())
	}
	return nil
}

// EdgesAt returns the edge count at ver.
func (vg *Versioned) EdgesAt(ver Version) (int64, error) {
	vg.mu.RLock()
	defer vg.mu.RUnlock()
	if err := vg.checkVersion(ver); err != nil {
		return 0, err
	}
	return vg.edgesLocked(ver), nil
}

func (vg *Versioned) edgesLocked(ver Version) int64 {
	if ver == vg.snapVer {
		return vg.snap.NumEdges()
	}
	return vg.batches[ver-vg.snapVer-1].edges
}

// FingerprintAt returns the version-aware fingerprint of ver: the snapshot's
// content fingerprint chained with every batch's content hash up to ver.
// Distinct versions get distinct fingerprints (so PrepCache keys tell them
// apart), an empty batch inherits its predecessor's fingerprint (identical
// content), and after compaction the new snapshot keeps the chain value, so
// artifacts cached for the compacted version stay valid.
func (vg *Versioned) FingerprintAt(ver Version) (uint64, error) {
	vg.mu.RLock()
	defer vg.mu.RUnlock()
	if err := vg.checkVersion(ver); err != nil {
		return 0, err
	}
	return vg.fingerprintLocked(ver), nil
}

func (vg *Versioned) fingerprintLocked(ver Version) uint64 {
	if ver == vg.snapVer {
		return vg.snap.Fingerprint()
	}
	return vg.batches[ver-vg.snapVer-1].chainFP
}

// OutDegreeAt returns v's out-degree at ver.
func (vg *Versioned) OutDegreeAt(v VertexID, ver Version) (int64, error) {
	vg.mu.RLock()
	defer vg.mu.RUnlock()
	if err := vg.checkVersion(ver); err != nil {
		return 0, err
	}
	return int64(len(vg.neighborsLocked(v, ver, nil))), nil
}

// OutNeighborsAt returns v's out-neighbors at ver, sorted ascending. When v
// was never touched by a logged batch the returned slice aliases the
// snapshot's storage; otherwise it is freshly allocated. Either way it must
// not be modified.
func (vg *Versioned) OutNeighborsAt(v VertexID, ver Version) ([]VertexID, error) {
	vg.mu.RLock()
	defer vg.mu.RUnlock()
	if err := vg.checkVersion(ver); err != nil {
		return nil, err
	}
	return vg.neighborsLocked(v, ver, nil), nil
}

// neighborsLocked merges the snapshot row of v with the logged per-vertex
// deltas of every batch up to ver. scratch, when non-nil, backs the merged
// result to avoid allocation.
func (vg *Versioned) neighborsLocked(v VertexID, ver Version, scratch []VertexID) []VertexID {
	row := vg.snap.OutNeighbors(v)
	upto := int(ver - vg.snapVer)
	touched := false
	for i := 0; i < upto; i++ {
		if vg.batches[i].touches(v) {
			touched = true
			break
		}
	}
	if !touched {
		return row
	}
	// Build the merged set: start from the (deduplicated) snapshot row, then
	// replay each batch's adds and dels for v in order. The set stays sorted
	// throughout because each step rebuilds it by sorted merge.
	cur := append(scratch[:0], row...)
	cur = dedupSortedIDs(cur)
	for i := 0; i < upto; i++ {
		b := &vg.batches[i]
		if !b.touches(v) {
			continue
		}
		for _, d := range b.vertexEdges(b.dels, v) {
			if j, ok := searchID(cur, d); ok {
				cur = append(cur[:j], cur[j+1:]...)
			}
		}
		for _, d := range b.vertexEdges(b.adds, v) {
			if j, ok := searchID(cur, d); !ok {
				cur = append(cur, 0)
				copy(cur[j+1:], cur[j:])
				cur[j] = d
			}
		}
	}
	return cur
}

// touches reports whether the batch changed v's out-adjacency.
func (b *mutBatch) touches(v VertexID) bool {
	_, ok := searchID(b.touched, v)
	return ok
}

// vertexEdges returns the destinations of v's entries in a (Src,Dst)-sorted
// effective-mutation list, as a view of the Dst column.
func (b *mutBatch) vertexEdges(list []Edge, v VertexID) []VertexID {
	lo := sort.Search(len(list), func(i int) bool { return list[i].Src >= v })
	hi := sort.Search(len(list), func(i int) bool { return list[i].Src > v })
	if lo == hi {
		return nil
	}
	dsts := make([]VertexID, hi-lo)
	for i := lo; i < hi; i++ {
		dsts[i-lo] = list[i].Dst
	}
	return dsts
}

// searchID finds x in a sorted slice, returning its index and whether it is
// present (when absent, the index is the insertion point).
func searchID(s []VertexID, x VertexID) (int, bool) {
	i := sort.Search(len(s), func(j int) bool { return s[j] >= x })
	return i, i < len(s) && s[i] == x
}

// dedupSortedIDs removes adjacent duplicates in place from a sorted slice.
func dedupSortedIDs(s []VertexID) []VertexID {
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != s[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// inCurrentView reports whether edge (src,dst) exists in the current
// version, combining the snapshot row with the cumulative overlay.
func (vg *Versioned) inCurrentView(src, dst VertexID) bool {
	if ov, ok := vg.overlay[src]; ok {
		if _, hit := searchID(ov.adds, dst); hit {
			return true
		}
		if _, hit := searchID(ov.dels, dst); hit {
			return false
		}
	}
	row := vg.snap.OutNeighbors(src)
	_, hit := searchID(row, dst)
	return hit
}

// ApplyBatch applies a batch of edge mutations as one new version and
// returns it. Mutations are applied in order, against the batch's own
// pending state — an insert followed by a delete of the same edge within one
// batch cancels out. Ineffective mutations are dropped; an empty (or fully
// cancelled) batch still produces a new version whose content and
// fingerprint equal its predecessor's. ApplyBatch may trigger compaction,
// after which versions older than the new snapshot are no longer
// addressable.
func (vg *Versioned) ApplyBatch(muts []Mutation) (Version, error) {
	n := vg.snap.NumVertices()
	for _, m := range muts {
		if int(m.Src) >= n || int(m.Dst) >= n {
			return 0, fmt.Errorf("graph: mutation %s(%d,%d) out of range for %d vertices", m.Op, m.Src, m.Dst, n)
		}
		if m.Op != InsertEdge && m.Op != DeleteEdge {
			return 0, fmt.Errorf("graph: unknown mutation op %d", m.Op)
		}
	}
	vg.mu.Lock()
	defer vg.mu.Unlock()

	// Net effect per edge within this batch: +1 the edge appears, -1 it
	// disappears, absent/0 no change vs the current version.
	pending := map[Edge]int8{}
	for _, m := range muts {
		e := Edge{m.Src, m.Dst}
		base := vg.inCurrentView(e.Src, e.Dst)
		exists := (base && pending[e] != -1) || pending[e] == +1
		switch m.Op {
		case InsertEdge:
			if exists {
				continue // duplicate insert: no-op
			}
			if base {
				delete(pending, e) // re-insert of an edge deleted earlier in the batch
			} else {
				pending[e] = +1
			}
		case DeleteEdge:
			if !exists {
				continue // delete of a non-existent edge: no-op
			}
			if base {
				pending[e] = -1
			} else {
				delete(pending, e) // delete of an edge inserted earlier in the batch
			}
		}
	}

	b := mutBatch{ver: vg.curVersion() + 1}
	for e, s := range pending {
		if s == +1 {
			b.adds = append(b.adds, e)
		} else if s == -1 {
			b.dels = append(b.dels, e)
		}
	}
	sortEdges(b.adds)
	sortEdges(b.dels)
	for _, e := range b.adds {
		b.touched = append(b.touched, e.Src)
	}
	for _, e := range b.dels {
		b.touched = append(b.touched, e.Src)
	}
	sort.Slice(b.touched, func(i, j int) bool { return b.touched[i] < b.touched[j] })
	b.touched = dedupSortedIDs(b.touched)
	b.edges = vg.edgesLocked(vg.curVersion()) + int64(len(b.adds)) - int64(len(b.dels))
	b.chainFP = chainFingerprint(vg.fingerprintLocked(vg.curVersion()), b.ver, b.adds, b.dels)

	// Fold the batch into the cumulative overlay.
	for _, e := range b.dels {
		ov := vg.overlayFor(e.Src)
		if j, ok := searchID(ov.adds, e.Dst); ok {
			ov.adds = append(ov.adds[:j], ov.adds[j+1:]...)
		} else {
			ov.dels = insertID(ov.dels, e.Dst)
		}
	}
	for _, e := range b.adds {
		ov := vg.overlayFor(e.Src)
		if j, ok := searchID(ov.dels, e.Dst); ok {
			ov.dels = append(ov.dels[:j], ov.dels[j+1:]...)
		} else {
			ov.adds = insertID(ov.adds, e.Dst)
		}
	}

	vg.batches = append(vg.batches, b)
	vg.logSize += len(b.adds) + len(b.dels)
	ver := b.ver

	if vg.logSize > vg.compactThreshold() {
		vg.compactLocked()
	}
	return ver, nil
}

func (vg *Versioned) overlayFor(v VertexID) *vertexOverlay {
	ov, ok := vg.overlay[v]
	if !ok {
		ov = &vertexOverlay{}
		vg.overlay[v] = ov
	}
	return ov
}

func insertID(s []VertexID, x VertexID) []VertexID {
	j, ok := searchID(s, x)
	if ok {
		return s
	}
	s = append(s, 0)
	copy(s[j+1:], s[j:])
	s[j] = x
	return s
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
}

// chainFingerprint extends a version fingerprint with one batch's content.
// An empty batch leaves the fingerprint unchanged: the graph content is
// identical, so artifact caches keyed by it should keep hitting.
func chainFingerprint(prev uint64, ver Version, adds, dels []Edge) uint64 {
	if len(adds) == 0 && len(dels) == 0 {
		return prev
	}
	h := prev
	mix := func(x uint64) {
		h ^= x
		h *= fnvPrime64
	}
	mix(FingerprintVersion)
	mix(uint64(ver))
	mix(uint64(len(adds)))
	for _, e := range adds {
		mix(uint64(e.Src)<<32 | uint64(e.Dst))
	}
	mix(uint64(len(dels)))
	for _, e := range dels {
		mix(uint64(e.Src)<<32 | uint64(e.Dst) | 1<<63)
	}
	return h
}

func (vg *Versioned) compactThreshold() int {
	if vg.CompactThreshold > 0 {
		return vg.CompactThreshold
	}
	t := int(vg.snap.NumEdges() / 8)
	if t < 4096 {
		t = 4096
	}
	return t
}

// compactLocked folds the whole log into a fresh snapshot via a parallel
// build of the current version, keeping the chain fingerprint so cached
// preprocessing artifacts for the compacted version survive.
func (vg *Versioned) compactLocked() {
	cur := vg.curVersion()
	g := vg.materializeLocked(cur)
	vg.snap = g
	vg.snapVer = cur
	vg.batches = nil
	vg.overlay = map[VertexID]*vertexOverlay{}
	vg.logSize = 0
	vg.compacts++
	vg.matCache = map[Version]*Graph{cur: g}
}

// Compact folds the delta log into a fresh snapshot immediately, regardless
// of the threshold. No-op when the log is empty.
func (vg *Versioned) Compact() {
	vg.mu.Lock()
	defer vg.mu.Unlock()
	if len(vg.batches) == 0 {
		return
	}
	vg.compactLocked()
}

// GraphAt materializes the full immutable Graph of ver. The snapshot version
// returns the snapshot itself; other versions are built in parallel (rows of
// untouched vertices are copied from the snapshot, touched rows are merged
// from the log) and memoized, and carry ver's chain fingerprint.
func (vg *Versioned) GraphAt(ver Version) (*Graph, error) {
	vg.mu.Lock()
	defer vg.mu.Unlock()
	if err := vg.checkVersion(ver); err != nil {
		return nil, err
	}
	return vg.materializeLocked(ver), nil
}

func (vg *Versioned) materializeLocked(ver Version) *Graph {
	if ver == vg.snapVer {
		return vg.snap
	}
	if g, ok := vg.matCache[ver]; ok {
		return g
	}
	n := vg.snap.NumVertices()
	off := make([]int64, n+1)
	// Degree pass: untouched vertices keep their snapshot degree; touched
	// rows are merged serially first (their count is bounded by the log
	// size, which compaction keeps small).
	snapOff := vg.snap.OutOffsets()
	touched := vg.touchedUpTo(ver)
	rows := make(map[VertexID][]VertexID, len(touched))
	for _, v := range touched {
		rows[v] = vg.neighborsLocked(v, ver, nil)
	}
	par.Blocks(par.Fit(par.Workers(0), int64(n)), n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if row, ok := rows[VertexID(v)]; ok {
				off[v+1] = int64(len(row))
			} else {
				off[v+1] = snapOff[v+1] - snapOff[v]
			}
		}
	})
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	out := make([]VertexID, off[n])
	snapAdj := vg.snap.OutEdges()
	par.Blocks(par.Fit(par.Workers(0), off[n]), n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if row, ok := rows[VertexID(v)]; ok {
				copy(out[off[v]:off[v+1]], row)
			} else {
				copy(out[off[v]:off[v+1]], snapAdj[snapOff[v]:snapOff[v+1]])
			}
		}
	})
	g := &Graph{
		numVertices: n,
		numEdges:    off[n],
		outOffsets:  off,
		outEdges:    out,
	}
	g.setFingerprint(vg.fingerprintLocked(ver))
	// Keep the cache tiny: the replay loop only ever needs a version and its
	// predecessor (graph.Delta's Prev/Next).
	if len(vg.matCache) >= 2 {
		oldest := ver
		for v := range vg.matCache {
			if v < oldest {
				oldest = v
			}
		}
		delete(vg.matCache, oldest)
	}
	vg.matCache[ver] = g
	return g
}

// touchedUpTo returns the sorted union of touched vertices over all batches
// up to ver.
func (vg *Versioned) touchedUpTo(ver Version) []VertexID {
	var all []VertexID
	for i := 0; i < int(ver-vg.snapVer); i++ {
		all = append(all, vg.batches[i].touched...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return dedupSortedIDs(all)
}

// Delta summarises the change between two versions, with both endpoints
// materialized — the input of Prepared.Advance and of warm-started Exec.
type Delta struct {
	Prev, Next               *Graph
	PrevVersion, NextVersion Version
	// Fingerprint is the chain fingerprint of NextVersion.
	Fingerprint uint64
	// Touched lists the sorted, unique source vertices whose out-adjacency
	// differs between the two versions.
	Touched []VertexID
	// Perturbed is Touched plus the destination endpoints of every inserted
	// or deleted edge — the seed set of the per-vertex frontier.
	Perturbed []VertexID
	// Inserted and Deleted count effective mutations across the range.
	Inserted, Deleted int
}

// DeltaBetween returns the Delta from version `from` to version `to`
// (from <= to, both still addressable).
func (vg *Versioned) DeltaBetween(from, to Version) (*Delta, error) {
	vg.mu.Lock()
	defer vg.mu.Unlock()
	if err := vg.checkVersion(from); err != nil {
		return nil, err
	}
	if err := vg.checkVersion(to); err != nil {
		return nil, err
	}
	if from > to {
		return nil, fmt.Errorf("graph: delta range inverted (%d > %d)", from, to)
	}
	d := &Delta{
		Prev:        vg.materializeLocked(from),
		Next:        vg.materializeLocked(to),
		PrevVersion: from,
		NextVersion: to,
		Fingerprint: vg.fingerprintLocked(to),
	}
	var touched, perturbed []VertexID
	for i := int(from - vg.snapVer); i < int(to-vg.snapVer); i++ {
		b := &vg.batches[i]
		touched = append(touched, b.touched...)
		d.Inserted += len(b.adds)
		d.Deleted += len(b.dels)
		for _, e := range b.adds {
			perturbed = append(perturbed, e.Src, e.Dst)
		}
		for _, e := range b.dels {
			perturbed = append(perturbed, e.Src, e.Dst)
		}
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	d.Touched = dedupSortedIDs(touched)
	sort.Slice(perturbed, func(i, j int) bool { return perturbed[i] < perturbed[j] })
	d.Perturbed = dedupSortedIDs(perturbed)
	return d, nil
}
