// Package graph provides the in-memory graph representation used throughout
// the HiPa reproduction: a Compressed Sparse Row (CSR) encoding of the
// out-edges plus, on demand, a Compressed Sparse Column (CSC) encoding of the
// in-edges.
//
// Vertex identifiers are 32-bit unsigned integers and edge endpoints are
// stored as 4-byte values, matching the paper's experimental setup ("The data
// types for vertices, edges and PageRank value are set to 4 bytes", §4.1).
// Offsets are 64-bit so graphs with more than 2^31 edges are representable.
//
// A Graph is immutable after construction. All query methods are safe for
// concurrent use.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense: a graph with n vertices uses
// IDs 0..n-1.
type VertexID = uint32

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src VertexID
	Dst VertexID
}

// Graph is an immutable directed graph in CSR form.
//
// The out-edge CSR is always present. The in-edge CSC is built lazily by
// BuildIn (or eagerly by the Builder when requested) because pull-based
// engines need it while push-based ones do not.
type Graph struct {
	numVertices int
	numEdges    int64

	// CSR: out-edges of vertex v are outEdges[outOffsets[v]:outOffsets[v+1]].
	outOffsets []int64
	outEdges   []VertexID

	// CSC: in-edges (i.e. sources of edges pointing at v) or nil if not built.
	inOffsets []int64
	inEdges   []VertexID
}

// ErrNoInEdges is returned by methods that require the in-edge (CSC)
// representation when it has not been built.
var ErrNoInEdges = errors.New("graph: in-edge representation not built; call BuildIn or WithInEdges")

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.numVertices }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 { return g.numEdges }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int64 {
	return g.outOffsets[v+1] - g.outOffsets[v]
}

// InDegree returns the in-degree of v. It panics if the CSC form has not
// been built.
func (g *Graph) InDegree(v VertexID) int64 {
	if g.inOffsets == nil {
		panic(ErrNoInEdges)
	}
	return g.inOffsets[v+1] - g.inOffsets[v]
}

// OutNeighbors returns the destinations of v's out-edges. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.outEdges[g.outOffsets[v]:g.outOffsets[v+1]]
}

// InNeighbors returns the sources of v's in-edges. The returned slice aliases
// internal storage and must not be modified. It panics if the CSC form has
// not been built.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	if g.inOffsets == nil {
		panic(ErrNoInEdges)
	}
	return g.inEdges[g.inOffsets[v]:g.inOffsets[v+1]]
}

// OutOffsets exposes the CSR offset array (length NumVertices+1). The slice
// aliases internal storage and must not be modified. It exists for engines
// that traverse edge ranges directly.
func (g *Graph) OutOffsets() []int64 { return g.outOffsets }

// OutEdges exposes the CSR edge array. Read-only.
func (g *Graph) OutEdges() []VertexID { return g.outEdges }

// InOffsets exposes the CSC offset array or nil. Read-only.
func (g *Graph) InOffsets() []int64 { return g.inOffsets }

// InEdges exposes the CSC edge array or nil. Read-only.
func (g *Graph) InEdges() []VertexID { return g.inEdges }

// HasInEdges reports whether the CSC (in-edge) form has been built.
func (g *Graph) HasInEdges() bool { return g.inOffsets != nil }

// BuildIn constructs the in-edge (CSC) representation if absent. It is not
// safe to call concurrently with itself, but once it returns the graph is
// again safe for concurrent readers.
func (g *Graph) BuildIn() {
	if g.inOffsets != nil {
		return
	}
	n := g.numVertices
	inOff := make([]int64, n+1)
	for _, dst := range g.outEdges {
		inOff[dst+1]++
	}
	for v := 0; v < n; v++ {
		inOff[v+1] += inOff[v]
	}
	inE := make([]VertexID, g.numEdges)
	cursor := make([]int64, n)
	for src := 0; src < n; src++ {
		for _, dst := range g.outEdges[g.outOffsets[src]:g.outOffsets[src+1]] {
			inE[inOff[dst]+cursor[dst]] = VertexID(src)
			cursor[dst]++
		}
	}
	g.inOffsets = inOff
	g.inEdges = inE
}

// MaxOutDegree returns the largest out-degree in the graph, 0 for an empty
// graph.
func (g *Graph) MaxOutDegree() int64 {
	var max int64
	for v := 0; v < g.numVertices; v++ {
		if d := g.OutDegree(VertexID(v)); d > max {
			max = d
		}
	}
	return max
}

// DanglingCount returns the number of vertices with out-degree zero. PageRank
// must redistribute the rank of these vertices.
func (g *Graph) DanglingCount() int {
	c := 0
	for v := 0; v < g.numVertices; v++ {
		if g.OutDegree(VertexID(v)) == 0 {
			c++
		}
	}
	return c
}

// Symmetrize returns a new graph containing every edge of g in both
// directions, deduplicated (the undirected closure). Used by algorithms
// that ignore edge direction, such as weakly-connected components.
func (g *Graph) Symmetrize() *Graph {
	b := NewBuilder(g.numVertices)
	b.Dedup = true
	for v := 0; v < g.numVertices; v++ {
		for _, d := range g.OutNeighbors(VertexID(v)) {
			b.AddEdge(VertexID(v), d)
			b.AddEdge(d, VertexID(v))
		}
	}
	return b.Build()
}

// Transpose returns a new graph whose out-edges are this graph's in-edges.
// The result has no CSC form built.
func (g *Graph) Transpose() *Graph {
	g.BuildIn()
	t := &Graph{
		numVertices: g.numVertices,
		numEdges:    g.numEdges,
		outOffsets:  append([]int64(nil), g.inOffsets...),
		outEdges:    append([]VertexID(nil), g.inEdges...),
	}
	return t
}

// Validate checks structural invariants and returns a descriptive error on
// the first violation. It is used by tests and by the binary loader.
func (g *Graph) Validate() error {
	n := g.numVertices
	if n < 0 {
		return fmt.Errorf("graph: negative vertex count %d", n)
	}
	if len(g.outOffsets) != n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.outOffsets), n+1)
	}
	if g.outOffsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.outOffsets[0])
	}
	for v := 0; v < n; v++ {
		if g.outOffsets[v+1] < g.outOffsets[v] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	if g.outOffsets[n] != int64(len(g.outEdges)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.outOffsets[n], len(g.outEdges))
	}
	if g.numEdges != int64(len(g.outEdges)) {
		return fmt.Errorf("graph: numEdges = %d, want %d", g.numEdges, len(g.outEdges))
	}
	for i, dst := range g.outEdges {
		if int(dst) >= n {
			return fmt.Errorf("graph: edge %d destination %d out of range [0,%d)", i, dst, n)
		}
	}
	if g.inOffsets != nil {
		if len(g.inOffsets) != n+1 || g.inOffsets[n] != g.numEdges {
			return errors.New("graph: malformed in-edge offsets")
		}
		for i, src := range g.inEdges {
			if int(src) >= n {
				return fmt.Errorf("graph: in-edge %d source %d out of range", i, src)
			}
		}
	}
	return nil
}

// FromCSR constructs a graph directly from CSR arrays. The arrays are taken
// over (not copied); the caller must not modify them afterwards.
func FromCSR(numVertices int, outOffsets []int64, outEdges []VertexID) (*Graph, error) {
	g := &Graph{
		numVertices: numVertices,
		numEdges:    int64(len(outEdges)),
		outOffsets:  outOffsets,
		outEdges:    outEdges,
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Builder accumulates edges and produces an immutable Graph.
//
// The builder accepts edges in any order; Build sorts them into CSR form.
// Duplicate edges are preserved unless Dedup is set (real-world edge lists
// often contain duplicates; the Graph500 Kronecker generator produces them).
type Builder struct {
	numVertices int
	edges       []Edge
	// Dedup removes duplicate (src,dst) pairs during Build.
	Dedup bool
	// RemoveSelfLoops drops edges with Src == Dst during Build.
	RemoveSelfLoops bool
	// WithIn requests that the in-edge (CSC) form be built eagerly.
	WithIn bool
}

// NewBuilder returns a builder for a graph with numVertices vertices.
func NewBuilder(numVertices int) *Builder {
	return &Builder{numVertices: numVertices}
}

// AddEdge appends a directed edge. It panics if an endpoint is out of range.
func (b *Builder) AddEdge(src, dst VertexID) {
	if int(src) >= b.numVertices || int(dst) >= b.numVertices {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for %d vertices", src, dst, b.numVertices))
	}
	b.edges = append(b.edges, Edge{src, dst})
}

// AddEdges appends a batch of directed edges.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
}

// NumPendingEdges returns the number of edges added so far (before
// dedup/self-loop filtering).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the immutable graph. The builder can be reused afterwards;
// its edge buffer is consumed.
func (b *Builder) Build() *Graph {
	edges := b.edges
	b.edges = nil
	if b.RemoveSelfLoops {
		kept := edges[:0]
		for _, e := range edges {
			if e.Src != e.Dst {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	if b.Dedup {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Src != edges[j].Src {
				return edges[i].Src < edges[j].Src
			}
			return edges[i].Dst < edges[j].Dst
		})
		kept := edges[:0]
		for i, e := range edges {
			if i == 0 || e != edges[i-1] {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	n := b.numVertices
	off := make([]int64, n+1)
	for _, e := range edges {
		off[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	out := make([]VertexID, len(edges))
	cursor := make([]int64, n)
	for _, e := range edges {
		out[off[e.Src]+cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}
	// Keep each adjacency list sorted for deterministic traversal order and
	// better spatial locality (matches how CSR graphs are normally stored).
	if !b.Dedup { // dedup path already sorted globally
		for v := 0; v < n; v++ {
			seg := out[off[v]:off[v+1]]
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		}
	}
	g := &Graph{
		numVertices: n,
		numEdges:    int64(len(edges)),
		outOffsets:  off,
		outEdges:    out,
	}
	if b.WithIn {
		g.BuildIn()
	}
	return g
}

// Stats summarises a graph for reporting (Table 1 of the paper).
type Stats struct {
	NumVertices  int
	NumEdges     int64
	AvgOutDegree float64
	MaxOutDegree int64
	Dangling     int
}

// ComputeStats returns summary statistics.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		NumVertices:  g.NumVertices(),
		NumEdges:     g.NumEdges(),
		MaxOutDegree: g.MaxOutDegree(),
		Dangling:     g.DanglingCount(),
	}
	if s.NumVertices > 0 {
		s.AvgOutDegree = float64(s.NumEdges) / float64(s.NumVertices)
	}
	return s
}
