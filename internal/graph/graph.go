// Package graph provides the in-memory graph representation used throughout
// the HiPa reproduction: a Compressed Sparse Row (CSR) encoding of the
// out-edges plus, on demand, a Compressed Sparse Column (CSC) encoding of the
// in-edges.
//
// Vertex identifiers are 32-bit unsigned integers and edge endpoints are
// stored as 4-byte values, matching the paper's experimental setup ("The data
// types for vertices, edges and PageRank value are set to 4 bytes", §4.1).
// Offsets are 64-bit so graphs with more than 2^31 edges are representable.
//
// A Graph is immutable after construction. All query methods are safe for
// concurrent use, including concurrently with BuildIn: the CSC form is
// published as a single atomic pointer, so readers either see the complete
// in-edge form or none of it.
//
// Construction (Builder.Build, BuildIn, Fingerprint) is parallel by default
// and deterministic at any worker count: every parallel pass writes disjoint
// index ranges computed from prefix sums, so the resulting arrays are
// bit-identical whether built by one worker or many.
package graph

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hipa/internal/par"
)

// VertexID identifies a vertex. IDs are dense: a graph with n vertices uses
// IDs 0..n-1.
type VertexID = uint32

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src VertexID
	Dst VertexID
}

// csc is the in-edge (CSC) form. Both arrays live behind one atomic pointer
// so they are published together: a reader can never observe offsets without
// the matching edge array.
type csc struct {
	// In-edges (sources of edges pointing at v) of vertex v are
	// edges[offsets[v]:offsets[v+1]], sorted ascending.
	offsets []int64
	edges   []VertexID
}

// Graph is an immutable directed graph in CSR form.
//
// The out-edge CSR is always present. The in-edge CSC is built lazily by
// BuildIn (or eagerly by the Builder when requested) because pull-based
// engines need it while push-based ones do not.
type Graph struct {
	numVertices int
	numEdges    int64

	// CSR: out-edges of vertex v are outEdges[outOffsets[v]:outOffsets[v+1]].
	outOffsets []int64
	outEdges   []VertexID

	// in holds the lazily built CSC form. Synchronization lives here, on the
	// graph itself: buildInOnce serializes concurrent builders, and the
	// single atomic publish keeps readers race-free — no external lock table
	// is needed (or allowed; one used to leak graphs).
	in          atomic.Pointer[csc]
	buildInOnce sync.Once

	// fp memoizes Fingerprint on the graph itself, so no global registry
	// pins fingerprinted graphs in memory.
	fp     uint64
	fpOnce sync.Once
}

// ErrNoInEdges is returned by methods that require the in-edge (CSC)
// representation when it has not been built.
var ErrNoInEdges = errors.New("graph: in-edge representation not built; call BuildIn first")

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.numVertices }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 { return g.numEdges }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int64 {
	return g.outOffsets[v+1] - g.outOffsets[v]
}

// InDegree returns the in-degree of v. It panics if the CSC form has not
// been built.
func (g *Graph) InDegree(v VertexID) int64 {
	in := g.in.Load()
	if in == nil {
		panic(ErrNoInEdges)
	}
	return in.offsets[v+1] - in.offsets[v]
}

// OutNeighbors returns the destinations of v's out-edges. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.outEdges[g.outOffsets[v]:g.outOffsets[v+1]]
}

// InNeighbors returns the sources of v's in-edges. The returned slice aliases
// internal storage and must not be modified. It panics if the CSC form has
// not been built.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	in := g.in.Load()
	if in == nil {
		panic(ErrNoInEdges)
	}
	return in.edges[in.offsets[v]:in.offsets[v+1]]
}

// OutOffsets exposes the CSR offset array (length NumVertices+1). The slice
// aliases internal storage and must not be modified. It exists for engines
// that traverse edge ranges directly.
func (g *Graph) OutOffsets() []int64 { return g.outOffsets }

// OutEdges exposes the CSR edge array. Read-only.
func (g *Graph) OutEdges() []VertexID { return g.outEdges }

// InOffsets exposes the CSC offset array or nil. Read-only.
func (g *Graph) InOffsets() []int64 {
	if in := g.in.Load(); in != nil {
		return in.offsets
	}
	return nil
}

// InEdges exposes the CSC edge array or nil. Read-only.
func (g *Graph) InEdges() []VertexID {
	if in := g.in.Load(); in != nil {
		return in.edges
	}
	return nil
}

// InCSR exposes both CSC arrays (offsets, edges) from a single atomic load,
// or (nil, nil) when the in-edge form has not been built. Exec hot paths use
// this instead of separate InOffsets/InEdges calls so the pair is guaranteed
// to come from one publication. Read-only.
func (g *Graph) InCSR() ([]int64, []VertexID) {
	if in := g.in.Load(); in != nil {
		return in.offsets, in.edges
	}
	return nil, nil
}

// HasInEdges reports whether the CSC (in-edge) form has been built.
func (g *Graph) HasInEdges() bool { return g.in.Load() != nil }

// setIn installs an externally constructed CSC form (binary loader). It must
// only be called before the graph is shared.
func (g *Graph) setIn(offsets []int64, edges []VertexID) {
	g.in.Store(&csc{offsets: offsets, edges: edges})
}

// BuildIn constructs the in-edge (CSC) representation if absent, with the
// default parallelism (all cores). Safe for concurrent use: concurrent
// builders serialize on the graph's once-guard, and the form is published
// atomically, so readers either see all of it or none of it.
func (g *Graph) BuildIn() { g.BuildInWorkers(0) }

// BuildInWorkers is BuildIn with an explicit worker count (positive = that
// many workers, 0 = all cores, negative = serial). The CSC arrays are
// bit-identical at any worker count: the parallel fill preserves the serial
// ascending source order within every in-adjacency segment.
func (g *Graph) BuildInWorkers(workers int) {
	if g.in.Load() != nil {
		return
	}
	g.buildInOnce.Do(func() {
		if g.in.Load() != nil { // installed by the loader before sharing
			return
		}
		g.in.Store(buildCSC(g.numVertices, g.outOffsets, g.outEdges, workers))
	})
}

// buildCSC builds the in-edge form from the out-edge CSR: per-worker
// destination counts over contiguous source ranges, column-wise prefix sums
// into absolute write cursors, then a disjoint parallel fill in source order.
func buildCSC(n int, outOff []int64, outE []VertexID, workers int) *csc {
	inOff := make([]int64, n+1)
	inE := make([]VertexID, len(outE))
	if n == 0 || len(outE) == 0 {
		return &csc{offsets: inOff, edges: inE}
	}
	w := par.Fit(par.Workers(workers), int64(len(outE)))
	bounds := par.WeightedBounds(w, outOff)
	counts := make([]int64, w*n)
	par.Run(w, func(i int) {
		c := counts[i*n : (i+1)*n]
		for _, dst := range outE[outOff[bounds[i]]:outOff[bounds[i+1]]] {
			c[dst]++
		}
	})
	cursorsFromCounts(counts, w, n, inOff)
	par.Run(w, func(i int) {
		cur := counts[i*n : (i+1)*n]
		for src := bounds[i]; src < bounds[i+1]; src++ {
			for _, dst := range outE[outOff[src]:outOff[src+1]] {
				inE[cur[dst]] = VertexID(src)
				cur[dst]++
			}
		}
	})
	return &csc{offsets: inOff, edges: inE}
}

// cursorsFromCounts turns per-worker key counts (counts[w*n+k] = occurrences
// of key k in worker w's chunk) into the global offset array off (length
// n+1, off[k] = first index of key k) and, in place, absolute per-worker
// write cursors: after the call counts[w*n+k] is the index where worker w
// writes its first element with key k. Cursor values depend only on the
// counts, so any chunking that preserves element order yields an identical
// final layout.
func cursorsFromCounts(counts []int64, workers, n int, off []int64) {
	par.Blocks(workers, n, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			var sum int64
			for w := 0; w < workers; w++ {
				sum += counts[w*n+k]
			}
			off[k+1] = sum
		}
	})
	for k := 0; k < n; k++ {
		off[k+1] += off[k]
	}
	par.Blocks(workers, n, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			run := off[k]
			for w := 0; w < workers; w++ {
				c := counts[w*n+k]
				counts[w*n+k] = run
				run += c
			}
		}
	})
}

// FingerprintVersion identifies the fingerprint scheme. The version is mixed
// into every fingerprint, so changing the scheme (as the chunked-parallel v2
// rewrite did, and the v3 versioned-graph chain fingerprints do) changes all
// fingerprint values and thereby invalidates every fingerprint-keyed cache,
// such as the engines' preprocessing-artifact cache. v3 adds Versioned's
// chain fingerprints: a version's fingerprint mixes the snapshot fingerprint
// with the content hash of every mutation batch up to that version, so
// artifact-cache keys distinguish graph versions without materializing them.
const FingerprintVersion = 3

// fpChunkElems is the fixed chunk length of the fingerprint. Chunking is
// part of the hash definition — never derived from the worker count — so any
// parallelism produces the same value.
const fpChunkElems = 1 << 16

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint returns a content hash of the graph's CSR arrays, memoized on
// the graph (graphs are immutable, so it is computed at most once per
// instance). Two graphs with identical topology share the fingerprint.
func (g *Graph) Fingerprint() uint64 { return g.FingerprintWorkers(0) }

// FingerprintWorkers is Fingerprint with an explicit worker count for the
// first (memoizing) computation: a keyed FNV-1a hash over fixed-size chunk
// hashes of the offset and edge arrays, computed chunk-parallel.
func (g *Graph) FingerprintWorkers(workers int) uint64 {
	g.fpOnce.Do(func() {
		g.fp = fingerprintCSR(g.numVertices, g.numEdges, g.outOffsets, g.outEdges, workers)
	})
	return g.fp
}

// setFingerprint installs a precomputed fingerprint, defeating the content
// hash. Versioned uses it when compaction folds a delta log into a fresh
// snapshot: the new Graph keeps the chain fingerprint the same version had
// before compaction, so artifact caches keyed by it (common.PrepCache) keep
// hitting — compaction reuses the snapshot artifact instead of invalidating
// it. Must only be called before the graph is shared.
func (g *Graph) setFingerprint(fp uint64) {
	g.fpOnce.Do(func() { g.fp = fp })
}

func fingerprintCSR(nv int, ne int64, off []int64, edges []VertexID, workers int) uint64 {
	offChunks := (len(off) + fpChunkElems - 1) / fpChunkElems
	edgeChunks := (len(edges) + fpChunkElems - 1) / fpChunkElems
	hashes := make([]uint64, offChunks+edgeChunks)
	w := par.Fit(par.Workers(workers), int64(len(off)+len(edges)))
	par.Blocks(w, len(hashes), func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			h := uint64(fnvOffset64)
			if c < offChunks {
				clo := c * fpChunkElems
				chi := min(clo+fpChunkElems, len(off))
				for _, o := range off[clo:chi] {
					h = (h ^ uint64(o)) * fnvPrime64
				}
			} else {
				clo := (c - offChunks) * fpChunkElems
				chi := min(clo+fpChunkElems, len(edges))
				for _, e := range edges[clo:chi] {
					h = (h ^ uint64(e)) * fnvPrime64
				}
			}
			hashes[c] = h
		}
	})
	fp := uint64(fnvOffset64)
	mix := func(x uint64) {
		fp ^= x
		fp *= fnvPrime64
	}
	mix(FingerprintVersion)
	mix(uint64(nv))
	mix(uint64(ne))
	for _, h := range hashes {
		mix(h)
	}
	return fp
}

// MaxOutDegree returns the largest out-degree in the graph, 0 for an empty
// graph.
func (g *Graph) MaxOutDegree() int64 {
	var max int64
	for v := 0; v < g.numVertices; v++ {
		if d := g.OutDegree(VertexID(v)); d > max {
			max = d
		}
	}
	return max
}

// DanglingCount returns the number of vertices with out-degree zero. PageRank
// must redistribute the rank of these vertices.
func (g *Graph) DanglingCount() int {
	c := 0
	for v := 0; v < g.numVertices; v++ {
		if g.OutDegree(VertexID(v)) == 0 {
			c++
		}
	}
	return c
}

// Symmetrize returns a new graph containing every edge of g in both
// directions, deduplicated (the undirected closure). Used by algorithms
// that ignore edge direction, such as weakly-connected components.
func (g *Graph) Symmetrize() *Graph {
	b := NewBuilder(g.numVertices)
	b.Dedup = true
	for v := 0; v < g.numVertices; v++ {
		for _, d := range g.OutNeighbors(VertexID(v)) {
			b.AddEdge(VertexID(v), d)
			b.AddEdge(d, VertexID(v))
		}
	}
	return b.Build()
}

// Transpose returns a new graph whose out-edges are this graph's in-edges.
// The result aliases g's immutable CSC arrays instead of copying them (both
// graphs are immutable, so sharing is safe); it has no CSC form of its own.
func (g *Graph) Transpose() *Graph { return g.TransposeWorkers(0) }

// TransposeWorkers is Transpose with an explicit worker count for the CSC
// build it may trigger.
func (g *Graph) TransposeWorkers(workers int) *Graph {
	g.BuildInWorkers(workers)
	in := g.in.Load()
	return &Graph{
		numVertices: g.numVertices,
		numEdges:    g.numEdges,
		outOffsets:  in.offsets,
		outEdges:    in.edges,
	}
}

// Validate checks structural invariants and returns a descriptive error on
// the first violation. It is used by tests and by the binary loader.
func (g *Graph) Validate() error {
	n := g.numVertices
	if n < 0 {
		return fmt.Errorf("graph: negative vertex count %d", n)
	}
	if len(g.outOffsets) != n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.outOffsets), n+1)
	}
	if g.outOffsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.outOffsets[0])
	}
	for v := 0; v < n; v++ {
		if g.outOffsets[v+1] < g.outOffsets[v] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	if g.outOffsets[n] != int64(len(g.outEdges)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.outOffsets[n], len(g.outEdges))
	}
	if g.numEdges != int64(len(g.outEdges)) {
		return fmt.Errorf("graph: numEdges = %d, want %d", g.numEdges, len(g.outEdges))
	}
	for i, dst := range g.outEdges {
		if int(dst) >= n {
			return fmt.Errorf("graph: edge %d destination %d out of range [0,%d)", i, dst, n)
		}
	}
	if in := g.in.Load(); in != nil {
		if len(in.offsets) != n+1 {
			return fmt.Errorf("graph: in-edge offsets length %d, want %d", len(in.offsets), n+1)
		}
		if in.offsets[0] != 0 {
			return fmt.Errorf("graph: in-edge offsets[0] = %d, want 0", in.offsets[0])
		}
		for v := 0; v < n; v++ {
			if in.offsets[v+1] < in.offsets[v] {
				return fmt.Errorf("graph: in-edge offsets not monotone at vertex %d", v)
			}
		}
		if in.offsets[n] != g.numEdges {
			return fmt.Errorf("graph: in-edge offsets[n] = %d, want %d", in.offsets[n], g.numEdges)
		}
		if int64(len(in.edges)) != g.numEdges {
			return fmt.Errorf("graph: in-edge array length %d, want %d", len(in.edges), g.numEdges)
		}
		for i, src := range in.edges {
			if int(src) >= n {
				return fmt.Errorf("graph: in-edge %d source %d out of range", i, src)
			}
		}
	}
	return nil
}

// FromCSR constructs a graph directly from CSR arrays. The arrays are taken
// over (not copied); the caller must not modify them afterwards.
func FromCSR(numVertices int, outOffsets []int64, outEdges []VertexID) (*Graph, error) {
	g := &Graph{
		numVertices: numVertices,
		numEdges:    int64(len(outEdges)),
		outOffsets:  outOffsets,
		outEdges:    outEdges,
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Builder accumulates edges and produces an immutable Graph.
//
// The builder accepts edges in any order; Build sorts them into CSR form.
// Duplicate edges are preserved unless Dedup is set (real-world edge lists
// often contain duplicates; the Graph500 Kronecker generator produces them).
type Builder struct {
	numVertices int
	edges       []Edge
	// Dedup removes duplicate (src,dst) pairs during Build.
	Dedup bool
	// RemoveSelfLoops drops edges with Src == Dst during Build.
	RemoveSelfLoops bool
	// WithIn requests that the in-edge (CSC) form be built eagerly.
	WithIn bool
	// Parallelism is the worker count Build uses (positive = that many, 0 =
	// all cores, negative = serial). The produced graph is bit-identical at
	// any setting.
	Parallelism int
}

// NewBuilder returns a builder for a graph with numVertices vertices.
func NewBuilder(numVertices int) *Builder {
	return &Builder{numVertices: numVertices}
}

// AddEdge appends a directed edge. It panics if an endpoint is out of range.
func (b *Builder) AddEdge(src, dst VertexID) {
	if int(src) >= b.numVertices || int(dst) >= b.numVertices {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for %d vertices", src, dst, b.numVertices))
	}
	b.edges = append(b.edges, Edge{src, dst})
}

// AddEdges appends a batch of directed edges.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
}

// NumPendingEdges returns the number of edges added so far (before
// dedup/self-loop filtering).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the immutable graph. The builder can be reused afterwards;
// its edge buffer is consumed.
//
// Construction is a pair of stable counting-sort passes (LSD radix over the
// dst then src keys) that leaves the edge list fully sorted by (src, dst):
// each adjacency segment comes out sorted exactly as the old per-segment
// sort.Slice produced, but every pass is O(E+V) and runs parallel over
// contiguous chunks with disjoint writes, so the graph is bit-identical at
// any Parallelism.
func (b *Builder) Build() *Graph {
	edges := b.edges
	b.edges = nil
	if b.RemoveSelfLoops {
		kept := edges[:0]
		for _, e := range edges {
			if e.Src != e.Dst {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	n := b.numVertices
	off := make([]int64, n+1)
	var out []VertexID
	if n > 0 && len(edges) > 0 {
		w := par.Fit(par.Workers(b.Parallelism), int64(len(edges)))
		counts := make([]int64, w*n)
		tmp := make([]Edge, len(edges))
		countingSortEdges(edges, tmp, n, w, true, counts)
		countingSortEdges(tmp, edges, n, w, false, counts)
		if b.Dedup {
			edges = dedupSorted(edges, w)
		}
		// Offsets by a parallel per-source count; the fill is a plain copy
		// because the edges are already in final CSR order.
		clear(counts)
		bounds := par.Bounds(w, len(edges))
		par.Run(w, func(i int) {
			c := counts[i*n : (i+1)*n]
			for _, e := range edges[bounds[i]:bounds[i+1]] {
				c[e.Src]++
			}
		})
		cursorsFromCounts(counts, w, n, off)
		out = make([]VertexID, len(edges))
		par.Blocks(w, len(edges), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = edges[i].Dst
			}
		})
	} else {
		out = make([]VertexID, 0)
	}
	g := &Graph{
		numVertices: n,
		numEdges:    int64(len(out)),
		outOffsets:  off,
		outEdges:    out,
	}
	if b.WithIn {
		g.BuildInWorkers(b.Parallelism)
	}
	return g
}

// countingSortEdges stably sorts src into dst by the Dst key (byDst) or the
// Src key, reusing the caller's per-worker count scratch (length workers*n).
// Per-worker counts over contiguous chunks plus cursorsFromCounts make the
// output identical to a serial stable counting sort at any worker count.
func countingSortEdges(src, dst []Edge, n, workers int, byDst bool, counts []int64) {
	clear(counts)
	bounds := par.Bounds(workers, len(src))
	key := func(e Edge) VertexID { return e.Src }
	if byDst {
		key = func(e Edge) VertexID { return e.Dst }
	}
	par.Run(workers, func(w int) {
		c := counts[w*n : (w+1)*n]
		for _, e := range src[bounds[w]:bounds[w+1]] {
			c[key(e)]++
		}
	})
	off := make([]int64, n+1)
	cursorsFromCounts(counts, workers, n, off)
	par.Run(workers, func(w int) {
		cur := counts[w*n : (w+1)*n]
		for _, e := range src[bounds[w]:bounds[w+1]] {
			k := key(e)
			dst[cur[k]] = e
			cur[k]++
		}
	})
}

// dedupSorted removes duplicates from a (src,dst)-sorted edge list with a
// parallel count-then-compact: keep decisions compare only adjacent
// elements, so they are independent of the chunking.
func dedupSorted(edges []Edge, workers int) []Edge {
	bounds := par.Bounds(workers, len(edges))
	kept := make([]int, workers+1)
	par.Run(workers, func(w int) {
		c := 0
		for i := bounds[w]; i < bounds[w+1]; i++ {
			if i == 0 || edges[i] != edges[i-1] {
				c++
			}
		}
		kept[w+1] = c
	})
	for w := 0; w < workers; w++ {
		kept[w+1] += kept[w]
	}
	out := make([]Edge, kept[workers])
	par.Run(workers, func(w int) {
		o := kept[w]
		for i := bounds[w]; i < bounds[w+1]; i++ {
			if i == 0 || edges[i] != edges[i-1] {
				out[o] = edges[i]
				o++
			}
		}
	})
	return out
}

// Stats summarises a graph for reporting (Table 1 of the paper).
type Stats struct {
	NumVertices  int
	NumEdges     int64
	AvgOutDegree float64
	MaxOutDegree int64
	Dangling     int
}

// ComputeStats returns summary statistics.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		NumVertices:  g.NumVertices(),
		NumEdges:     g.NumEdges(),
		MaxOutDegree: g.MaxOutDegree(),
		Dangling:     g.DanglingCount(),
	}
	if s.NumVertices > 0 {
		s.AvgOutDegree = float64(s.NumEdges) / float64(s.NumVertices)
	}
	return s
}
