package graph

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
)

// buildVersionedTestGraph returns a small graph with a mix of fan-out, a dangling
// vertex, and a self-loop-free ring:
//
//	0 -> 1,2   1 -> 2   2 -> 0   3 (dangling)   4 -> 0,3
func buildVersionedTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(4, 0)
	b.AddEdge(4, 3)
	return b.Build()
}

// refAdj is the brute-force reference: adjacency as per-vertex sets.
type refAdj map[VertexID]map[VertexID]bool

func refFromGraph(g *Graph) refAdj {
	r := refAdj{}
	for v := 0; v < g.NumVertices(); v++ {
		s := map[VertexID]bool{}
		for _, d := range g.OutNeighbors(VertexID(v)) {
			s[d] = true
		}
		r[VertexID(v)] = s
	}
	return r
}

func (r refAdj) apply(muts []Mutation) {
	for _, m := range muts {
		switch m.Op {
		case InsertEdge:
			r[m.Src][m.Dst] = true
		case DeleteEdge:
			delete(r[m.Src], m.Dst)
		}
	}
}

func (r refAdj) neighbors(v VertexID) []VertexID {
	var out []VertexID
	for d := range r[v] {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r refAdj) edges() int64 {
	var n int64
	for _, s := range r {
		n += int64(len(s))
	}
	return n
}

// checkVersionAgainstRef compares every overlay accessor and the
// materialized graph of ver against the reference.
func checkVersionAgainstRef(t *testing.T, vg *Versioned, ver Version, ref refAdj) {
	t.Helper()
	n := vg.NumVertices()
	for v := 0; v < n; v++ {
		got, err := vg.OutNeighborsAt(VertexID(v), ver)
		if err != nil {
			t.Fatalf("OutNeighborsAt(%d, %d): %v", v, ver, err)
		}
		want := ref.neighbors(VertexID(v))
		if len(got) != len(want) {
			t.Fatalf("version %d vertex %d: neighbors %v, want %v", ver, v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("version %d vertex %d: neighbors %v, want %v", ver, v, got, want)
			}
		}
		deg, err := vg.OutDegreeAt(VertexID(v), ver)
		if err != nil || deg != int64(len(want)) {
			t.Fatalf("version %d vertex %d: degree %d (%v), want %d", ver, v, deg, err, len(want))
		}
	}
	if e, err := vg.EdgesAt(ver); err != nil || e != ref.edges() {
		t.Fatalf("version %d: edges %d (%v), want %d", ver, e, err, ref.edges())
	}
	g, err := vg.GraphAt(ver)
	if err != nil {
		t.Fatalf("GraphAt(%d): %v", ver, err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("GraphAt(%d).Validate: %v", ver, err)
	}
	for v := 0; v < n; v++ {
		got := g.OutNeighbors(VertexID(v))
		want := ref.neighbors(VertexID(v))
		if len(got) != len(want) {
			t.Fatalf("materialized version %d vertex %d: %v, want %v", ver, v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("materialized version %d vertex %d: %v, want %v", ver, v, got, want)
			}
		}
	}
	fp, err := vg.FingerprintAt(ver)
	if err != nil {
		t.Fatalf("FingerprintAt(%d): %v", ver, err)
	}
	if g.Fingerprint() != fp {
		t.Fatalf("version %d: materialized fingerprint %x != chain fingerprint %x", ver, g.Fingerprint(), fp)
	}
}

func TestVersionedDuplicateInsertIsNoOp(t *testing.T) {
	vg := NewVersioned(buildVersionedTestGraph(t))
	v0 := vg.Version()
	ver, err := vg.ApplyBatch([]Mutation{
		{InsertEdge, 0, 1}, // already exists in the snapshot
		{InsertEdge, 1, 3},
		{InsertEdge, 1, 3}, // duplicate within the batch
	})
	if err != nil {
		t.Fatal(err)
	}
	if ver != v0+1 {
		t.Fatalf("version %d, want %d", ver, v0+1)
	}
	if vg.LogSize() != 1 {
		t.Fatalf("log size %d, want 1 (duplicate inserts must be dropped)", vg.LogSize())
	}
	ref := refFromGraph(buildVersionedTestGraph(t))
	ref.apply([]Mutation{{InsertEdge, 1, 3}})
	checkVersionAgainstRef(t, vg, ver, ref)
}

func TestVersionedDeleteNonExistentIsNoOp(t *testing.T) {
	vg := NewVersioned(buildVersionedTestGraph(t))
	ver, err := vg.ApplyBatch([]Mutation{
		{DeleteEdge, 3, 0}, // 3 has no out-edges
		{DeleteEdge, 0, 3}, // (0,3) never existed
		{DeleteEdge, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if vg.LogSize() != 1 {
		t.Fatalf("log size %d, want 1 (deletes of absent edges must be dropped)", vg.LogSize())
	}
	ref := refFromGraph(buildVersionedTestGraph(t))
	ref.apply([]Mutation{{DeleteEdge, 0, 1}})
	checkVersionAgainstRef(t, vg, ver, ref)
}

func TestVersionedDanglingAndBack(t *testing.T) {
	vg := NewVersioned(buildVersionedTestGraph(t))
	// Delete both of 0's out-edges: 0 becomes dangling.
	v1, err := vg.ApplyBatch([]Mutation{{DeleteEdge, 0, 1}, {DeleteEdge, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := vg.GraphAt(v1)
	if g1.OutDegree(0) != 0 {
		t.Fatalf("vertex 0 should be dangling at version %d", v1)
	}
	if got, want := g1.DanglingCount(), 2; got != want { // 0 and 3
		t.Fatalf("dangling count %d, want %d", got, want)
	}
	// Re-insert one edge: 0 is no longer dangling.
	v2, err := vg.ApplyBatch([]Mutation{{InsertEdge, 0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := vg.GraphAt(v2)
	if g2.OutDegree(0) != 1 {
		t.Fatalf("vertex 0 out-degree %d at version %d, want 1", g2.OutDegree(0), v2)
	}
	// The intermediate version must still answer correctly.
	ref := refFromGraph(buildVersionedTestGraph(t))
	ref.apply([]Mutation{{DeleteEdge, 0, 1}, {DeleteEdge, 0, 2}})
	checkVersionAgainstRef(t, vg, v1, ref)
}

func TestVersionedEmptyBatchIsNoOpVersion(t *testing.T) {
	vg := NewVersioned(buildVersionedTestGraph(t))
	v0 := vg.Version()
	fp0, _ := vg.FingerprintAt(v0)
	// An empty batch, and a batch that fully cancels itself out.
	for _, muts := range [][]Mutation{
		nil,
		{{InsertEdge, 1, 3}, {DeleteEdge, 1, 3}},
	} {
		ver, err := vg.ApplyBatch(muts)
		if err != nil {
			t.Fatal(err)
		}
		if ver != vg.Version() {
			t.Fatalf("ApplyBatch returned %d, current version %d", ver, vg.Version())
		}
		fp, _ := vg.FingerprintAt(ver)
		if fp != fp0 {
			t.Fatalf("no-op version %d changed the fingerprint: %x != %x", ver, fp, fp0)
		}
		e, _ := vg.EdgesAt(ver)
		if e != buildVersionedTestGraph(t).NumEdges() {
			t.Fatalf("no-op version %d changed the edge count: %d", ver, e)
		}
	}
	if vg.LogSize() != 0 {
		t.Fatalf("log size %d after no-op batches, want 0", vg.LogSize())
	}
}

func TestVersionedFingerprintsDistinguishVersions(t *testing.T) {
	vg := NewVersioned(buildVersionedTestGraph(t))
	seen := map[uint64]Version{}
	fp0, _ := vg.FingerprintAt(vg.Version())
	seen[fp0] = vg.Version()
	muts := [][]Mutation{
		{{InsertEdge, 1, 3}},
		{{DeleteEdge, 1, 3}}, // content equals version 0, fingerprint must not
		{{InsertEdge, 3, 0}},
	}
	for _, m := range muts {
		ver, err := vg.ApplyBatch(m)
		if err != nil {
			t.Fatal(err)
		}
		fp, _ := vg.FingerprintAt(ver)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("version %d shares fingerprint %x with version %d", ver, fp, prev)
		}
		seen[fp] = ver
	}
}

func TestVersionedCompaction(t *testing.T) {
	vg := NewVersioned(buildVersionedTestGraph(t))
	vg.CompactThreshold = 3
	ref := refFromGraph(buildVersionedTestGraph(t))
	batches := [][]Mutation{
		{{InsertEdge, 1, 3}, {InsertEdge, 3, 2}},
		{{DeleteEdge, 0, 1}, {InsertEdge, 3, 4}}, // pushes the log past 3 -> compaction
	}
	for _, m := range batches {
		if _, err := vg.ApplyBatch(m); err != nil {
			t.Fatal(err)
		}
		ref.apply(m)
	}
	if vg.Compactions() != 1 {
		t.Fatalf("compactions %d, want 1", vg.Compactions())
	}
	if vg.LogSize() != 0 {
		t.Fatalf("log size %d after compaction, want 0", vg.LogSize())
	}
	cur := vg.Version()
	if vg.SnapshotVersion() != cur {
		t.Fatalf("snapshot version %d, want %d", vg.SnapshotVersion(), cur)
	}
	// The compacted snapshot must keep the chain fingerprint, and the
	// snapshot itself must be the materialization of the current version.
	fp, _ := vg.FingerprintAt(cur)
	if got := vg.Snapshot().Fingerprint(); got != fp {
		t.Fatalf("compacted snapshot fingerprint %x, want chain fingerprint %x", got, fp)
	}
	checkVersionAgainstRef(t, vg, cur, ref)
	// Old versions are gone.
	if _, err := vg.OutNeighborsAt(0, cur-1); err == nil {
		t.Fatal("expected an error for a compacted-away version")
	}
	// Mutations keep working after compaction.
	v, err := vg.ApplyBatch([]Mutation{{InsertEdge, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	ref.apply([]Mutation{{InsertEdge, 2, 4}})
	checkVersionAgainstRef(t, vg, v, ref)
}

func TestVersionedDeltaBetween(t *testing.T) {
	vg := NewVersioned(buildVersionedTestGraph(t))
	v0 := vg.Version()
	v1, err := vg.ApplyBatch([]Mutation{{InsertEdge, 1, 3}, {DeleteEdge, 4, 0}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := vg.DeltaBetween(v0, v1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 1 || d.Deleted != 1 {
		t.Fatalf("inserted %d deleted %d, want 1/1", d.Inserted, d.Deleted)
	}
	if want := []VertexID{1, 4}; !reflect.DeepEqual(d.Touched, want) {
		t.Fatalf("touched %v, want %v", d.Touched, want)
	}
	if want := []VertexID{0, 1, 3, 4}; !reflect.DeepEqual(d.Perturbed, want) {
		t.Fatalf("perturbed %v, want %v", d.Perturbed, want)
	}
	if d.Prev.NumEdges() != 6 || d.Next.NumEdges() != 6 {
		t.Fatalf("edge counts %d/%d, want 6/6", d.Prev.NumEdges(), d.Next.NumEdges())
	}
	if d.Prev.Fingerprint() == d.Next.Fingerprint() {
		t.Fatal("prev and next fingerprints must differ")
	}
}

// TestBuilderReuseAfterBuild is the regression test for the builder-reuse
// footgun: AddEdge after Build must start a fresh edge buffer — it must
// neither corrupt the already-built graph nor leak the first build's edges
// into the second.
func TestBuilderReuseAfterBuild(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g1 := b.Build()
	if b.NumPendingEdges() != 0 {
		t.Fatalf("builder holds %d edges after Build, want 0", b.NumPendingEdges())
	}
	wantG1 := [][]VertexID{{1}, {}, {3}, {}}
	snapshot := func(g *Graph) [][]VertexID {
		out := make([][]VertexID, g.NumVertices())
		for v := range out {
			out[v] = append([]VertexID{}, g.OutNeighbors(VertexID(v))...)
		}
		return out
	}
	if got := snapshot(g1); !reflect.DeepEqual(got, wantG1) {
		t.Fatalf("first build: %v, want %v", got, wantG1)
	}
	// Reuse: new edges only.
	b.AddEdge(3, 0)
	b.AddEdge(1, 2)
	g2 := b.Build()
	if got, want := snapshot(g2), [][]VertexID{{}, {2}, {}, {0}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("second build: %v, want %v (first build's edges leaked)", got, want)
	}
	// The first graph must be untouched by the second build.
	if got := snapshot(g1); !reflect.DeepEqual(got, wantG1) {
		t.Fatalf("first graph mutated by builder reuse: %v, want %v", got, wantG1)
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMutationBatchRoundTrip(t *testing.T) {
	batches := [][]Mutation{
		{{InsertEdge, 0, 1}, {DeleteEdge, 2, 3}},
		nil, // an empty batch survives the round trip
		{{InsertEdge, 4, 0}},
	}
	var buf bytes.Buffer
	if err := WriteMutationBatches(&buf, batches); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMutationBatches(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batches) {
		t.Fatalf("round trip: %v, want %v", got, batches)
	}
}

// FuzzApplyBatch drives the delta-log overlay with arbitrary mutation
// streams and checks every live version against the brute-force reference.
func FuzzApplyBatch(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 3, 0, 4, 0})
	f.Add([]byte{1, 0, 1, 0, 0, 1, 255, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 8
		b := NewBuilder(n)
		b.AddEdge(0, 1)
		b.AddEdge(1, 2)
		b.AddEdge(2, 0)
		b.AddEdge(5, 6)
		g := b.Build()
		vg := NewVersioned(g)
		vg.CompactThreshold = 6 // exercise compaction under fuzzing
		ref := refFromGraph(g)

		// Decode: 3 bytes per mutation, 4 mutations per batch.
		var muts []Mutation
		flush := func() {
			ver, err := vg.ApplyBatch(muts)
			if err != nil {
				t.Fatalf("ApplyBatch(%v): %v", muts, err)
			}
			ref.apply(muts)
			muts = nil
			checkVersionAgainstRef(t, vg, ver, ref)
		}
		for i := 0; i+2 < len(data); i += 3 {
			m := Mutation{
				Op:  MutOp(data[i] % 2),
				Src: VertexID(data[i+1] % n),
				Dst: VertexID(data[i+2] % n),
			}
			muts = append(muts, m)
			if len(muts) == 4 {
				flush()
			}
		}
		if len(muts) > 0 {
			flush()
		}
	})
}
