package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(5)
	// 0->1, 0->2, 1->2, 2->0, 3->4, 4->3, 4->0
	b.AddEdges([]Edge{{0, 1}, {0, 2}, {1, 2}, {2, 0}, {3, 4}, {4, 3}, {4, 0}})
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := buildTestGraph(t)
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 7 {
		t.Fatalf("NumEdges = %d, want 7", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d := g.OutDegree(0); d != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", d)
	}
	if d := g.OutDegree(3); d != 1 {
		t.Errorf("OutDegree(3) = %d, want 1", d)
	}
	got := g.OutNeighbors(4)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("OutNeighbors(4) = %v, want [0 3] (sorted)", got)
	}
}

func TestBuilderEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.MaxOutDegree() != 0 {
		t.Errorf("MaxOutDegree = %d", g.MaxOutDegree())
	}
}

func TestBuilderNoEdges(t *testing.T) {
	g := NewBuilder(10).Build()
	if g.DanglingCount() != 10 {
		t.Errorf("DanglingCount = %d, want 10", g.DanglingCount())
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestInEdges(t *testing.T) {
	g := buildTestGraph(t)
	if g.HasInEdges() {
		t.Fatal("in-edges should be lazy")
	}
	g.BuildIn()
	if !g.HasInEdges() {
		t.Fatal("BuildIn did not set in-edges")
	}
	if d := g.InDegree(2); d != 2 {
		t.Errorf("InDegree(2) = %d, want 2", d)
	}
	if d := g.InDegree(0); d != 2 {
		t.Errorf("InDegree(0) = %d, want 2", d)
	}
	in := g.InNeighbors(0)
	if len(in) != 2 {
		t.Fatalf("InNeighbors(0) = %v", in)
	}
	// Sum of in-degrees must equal edge count.
	var sum int64
	for v := 0; v < g.NumVertices(); v++ {
		sum += g.InDegree(VertexID(v))
	}
	if sum != g.NumEdges() {
		t.Errorf("sum of in-degrees %d != edges %d", sum, g.NumEdges())
	}
}

func TestInDegreePanicsWithoutCSC(t *testing.T) {
	g := buildTestGraph(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.InDegree(0)
}

func TestTranspose(t *testing.T) {
	g := buildTestGraph(t)
	tr := g.Transpose()
	if tr.NumEdges() != g.NumEdges() || tr.NumVertices() != g.NumVertices() {
		t.Fatal("transpose changed sizes")
	}
	// Every edge (u,v) in g must appear as (v,u) in tr.
	for v := 0; v < g.NumVertices(); v++ {
		for _, dst := range g.OutNeighbors(VertexID(v)) {
			found := false
			for _, back := range tr.OutNeighbors(dst) {
				if back == VertexID(v) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) missing from transpose", v, dst)
			}
		}
	}
	// Double transpose restores out-degrees.
	tt := tr.Transpose()
	for v := 0; v < g.NumVertices(); v++ {
		if tt.OutDegree(VertexID(v)) != g.OutDegree(VertexID(v)) {
			t.Fatalf("double transpose out-degree mismatch at %d", v)
		}
	}
}

func TestDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.Dedup = true
	b.RemoveSelfLoops = true
	b.AddEdges([]Edge{{0, 1}, {0, 1}, {1, 1}, {1, 2}, {0, 1}})
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (dedup + self-loop removal)", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithInEager(t *testing.T) {
	b := NewBuilder(2)
	b.WithIn = true
	b.AddEdge(0, 1)
	g := b.Build()
	if !g.HasInEdges() {
		t.Fatal("WithIn did not build CSC")
	}
}

func TestFromCSR(t *testing.T) {
	g, err := FromCSR(3, []int64{0, 1, 2, 2}, []VertexID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(0) != 1 || g.OutDegree(2) != 0 {
		t.Fatal("bad degrees")
	}
	if _, err := FromCSR(3, []int64{0, 5, 2, 2}, []VertexID{1, 2}); err == nil {
		t.Fatal("expected error for non-monotone offsets")
	}
	if _, err := FromCSR(1, []int64{0, 1}, []VertexID{7}); err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
}

func TestComputeStats(t *testing.T) {
	g := buildTestGraph(t)
	s := ComputeStats(g)
	if s.NumVertices != 5 || s.NumEdges != 7 {
		t.Fatalf("stats sizes wrong: %+v", s)
	}
	if s.MaxOutDegree != 2 {
		t.Errorf("MaxOutDegree = %d, want 2", s.MaxOutDegree)
	}
	if s.Dangling != 0 {
		t.Errorf("Dangling = %d, want 0", s.Dangling)
	}
	if s.AvgOutDegree != 7.0/5.0 {
		t.Errorf("AvgOutDegree = %f", s.AvgOutDegree)
	}
}

func randomGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
	}
	return b.Build()
}

// Property: for any random graph, Validate passes and degree sums match.
func TestPropertyDegreeSums(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%64 + 1
		m := int(mRaw) % 512
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, n, m)
		if err := g.Validate(); err != nil {
			return false
		}
		var outSum int64
		for v := 0; v < n; v++ {
			outSum += g.OutDegree(VertexID(v))
		}
		if outSum != int64(m) {
			return false
		}
		g.BuildIn()
		var inSum int64
		for v := 0; v < n; v++ {
			inSum += g.InDegree(VertexID(v))
		}
		return inSum == int64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSC is the exact inverse relation of CSR.
func TestPropertyInEdgesInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 2
		g := randomGraph(rng, n, rng.Intn(300))
		g.BuildIn()
		// count (u,v) pairs both ways
		fwd := map[[2]VertexID]int{}
		for v := 0; v < n; v++ {
			for _, d := range g.OutNeighbors(VertexID(v)) {
				fwd[[2]VertexID{VertexID(v), d}]++
			}
		}
		bwd := map[[2]VertexID]int{}
		for v := 0; v < n; v++ {
			for _, s := range g.InNeighbors(VertexID(v)) {
				bwd[[2]VertexID{s, VertexID(v)}]++
			}
		}
		if len(fwd) != len(bwd) {
			return false
		}
		for k, c := range fwd {
			if bwd[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := buildTestGraph(t)
	g.BuildIn()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("sizes differ after round trip")
	}
	if !g2.HasInEdges() {
		t.Fatal("in-edges lost in round trip")
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.OutNeighbors(VertexID(v)), g2.OutNeighbors(VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("edge mismatch at %d[%d]", v, i)
			}
		}
	}
}

func TestBinaryRoundTripNoCSC(t *testing.T) {
	g := buildTestGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.HasInEdges() {
		t.Fatal("unexpected in-edges")
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX00000000"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := buildTestGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 3, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("expected error for truncation at %d", cut)
		}
	}
}

func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		g := randomGraph(rng, n, rng.Intn(200))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			a, b := g.OutNeighbors(VertexID(v)), g2.OutNeighbors(VertexID(v))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeList(t *testing.T) {
	src := "# comment\n0 1\n0 2\n% another comment\n2 1\n\n3 0\n"
	g, err := ReadEdgeList(bytes.NewBufferString(src), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListExplicitSize(t *testing.T) {
	g, err := ReadEdgeList(bytes.NewBufferString("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("0 15\n"), 10); err == nil {
		t.Fatal("expected error: explicit size too small")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{"0\n", "a b\n", "0 b\n", "-1 2\n"}
	for _, c := range cases {
		if _, err := ReadEdgeList(bytes.NewBufferString(c), 0); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
}

func TestReadEdgeListLongLine(t *testing.T) {
	// One line far past bufio.Scanner's 64KB default: padding around a valid
	// edge must still parse (regression: the scanner buffer used to cap out
	// and the parse failed on long real-world dump lines).
	var buf bytes.Buffer
	buf.WriteString("# header\n0 1")
	for i := 0; i < 2<<20; i++ {
		buf.WriteByte(' ')
	}
	buf.WriteString("\n1 0\n")
	g, err := ReadEdgeList(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices %d edges, want 2/2", g.NumVertices(), g.NumEdges())
	}
}

// failAfterReader yields its buffered content, then a non-EOF error.
type failAfterReader struct {
	data []byte
	err  error
}

func (r *failAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestReadEdgeListScannerErrorCarriesLine(t *testing.T) {
	boom := errors.New("disk gone")
	_, err := ReadEdgeList(&failAfterReader{data: []byte("0 1\n1 0\n"), err: boom}, 0)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped read failure", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want the failing line number (3)", err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := buildTestGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d != %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestSaveLoadBinaryFile(t *testing.T) {
	g := buildTestGraph(t)
	path := t.TempDir() + "/g.bin"
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("mismatch after file round trip")
	}
	if _, err := LoadBinary(path + ".missing"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestSymmetrize(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdges([]Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 2, Dst: 3}})
	g := b.Build()
	s := g.Symmetrize()
	// 0<->1 deduplicated to 2 edges; 2->3 gains 3->2.
	if s.NumEdges() != 4 {
		t.Fatalf("symmetrized edges = %d, want 4", s.NumEdges())
	}
	for _, e := range []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 2, Dst: 3}, {Src: 3, Dst: 2}} {
		found := false
		for _, d := range s.OutNeighbors(e.Src) {
			if d == e.Dst {
				found = true
			}
		}
		if !found {
			t.Errorf("edge (%d,%d) missing after symmetrize", e.Src, e.Dst)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetrizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, rng.Intn(60)+2, rng.Intn(300))
		s := g.Symmetrize()
		// Every edge has its reverse.
		for v := 0; v < s.NumVertices(); v++ {
			for _, d := range s.OutNeighbors(VertexID(v)) {
				back := false
				for _, r := range s.OutNeighbors(d) {
					if int(r) == v {
						back = true
						break
					}
				}
				if !back {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
