package graph

import (
	"math/rand"
	"testing"
)

// benchWorkerCounts are the parallelism settings every Prepare-stage bench
// compares; outputs are bit-identical across them, so the ratios are pure
// build speedup.
var benchWorkerCounts = []struct {
	name    string
	workers int
}{{"serial", 1}, {"workers8", 8}}

func benchEdges(n, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{VertexID(rng.Intn(n)), VertexID(rng.Intn(n))}
	}
	return edges
}

func benchGraph(n, m int) *Graph {
	b := NewBuilder(n)
	b.AddEdges(benchEdges(n, m, 42))
	return b.Build()
}

// BenchmarkPrepareBuildCSR measures counting-sort CSR construction
// (Builder.Build) from a shuffled edge list.
func BenchmarkPrepareBuildCSR(b *testing.B) {
	const n, m = 1 << 17, 1 << 21
	edges := benchEdges(n, m, 42)
	for _, wc := range benchWorkerCounts {
		b.Run(wc.name, func(b *testing.B) {
			b.SetBytes(int64(m) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bld := NewBuilder(n)
				bld.Parallelism = wc.workers
				bld.AddEdges(edges)
				bld.Build()
			}
		})
	}
}

// BenchmarkPrepareBuildIn measures CSC (in-edge) construction from the CSR.
func BenchmarkPrepareBuildIn(b *testing.B) {
	g := benchGraph(1<<17, 1<<21)
	for _, wc := range benchWorkerCounts {
		b.Run(wc.name, func(b *testing.B) {
			b.SetBytes(g.NumEdges() * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// buildCSC directly: BuildIn memoizes on the graph, which
				// would make every op after the first free.
				buildCSC(g.numVertices, g.outOffsets, g.outEdges, wc.workers)
			}
		})
	}
}

// BenchmarkPrepareFingerprint measures the chunked content hash of the CSR.
func BenchmarkPrepareFingerprint(b *testing.B) {
	g := benchGraph(1<<17, 1<<21)
	for _, wc := range benchWorkerCounts {
		b.Run(wc.name, func(b *testing.B) {
			b.SetBytes(g.NumEdges()*4 + int64(g.NumVertices()+1)*8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// fingerprintCSR directly: Fingerprint memoizes on the graph.
				fingerprintCSR(g.numVertices, g.numEdges, g.outOffsets, g.outEdges, wc.workers)
			}
		})
	}
}
