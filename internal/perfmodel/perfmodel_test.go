package perfmodel

import (
	"math"
	"testing"

	"hipa/internal/machine"
)

func sky() *machine.Machine { return machine.SkylakeSilver4210() }

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(Run{Machine: nil, Threads: []ThreadCost{{}}}); err == nil {
		t.Error("expected error for nil machine")
	}
	if _, err := Estimate(Run{Machine: sky()}); err == nil {
		t.Error("expected error for no threads")
	}
	if _, err := Estimate(Run{Machine: sky(), Threads: []ThreadCost{{Node: 9}}}); err == nil {
		t.Error("expected error for bad node")
	}
}

func TestComputeOnly(t *testing.T) {
	rep, err := Estimate(Run{
		Machine: sky(),
		Threads: []ThreadCost{{Node: 0, ComputeCycles: 2.2e9}}, // 1 second at 2.2GHz
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.EstimatedSeconds-1.0) > 0.01 {
		t.Fatalf("EstimatedSeconds = %f, want ~1.0", rep.EstimatedSeconds)
	}
}

func TestSMTPenaltyApplied(t *testing.T) {
	base := Run{Machine: sky(), Threads: []ThreadCost{{Node: 0, ComputeCycles: 1e9}}}
	solo, _ := Estimate(base)
	base.Threads[0].PhysShared = true
	shared, _ := Estimate(base)
	if ratio := shared.EstimatedSeconds / solo.EstimatedSeconds; math.Abs(ratio-SMTPenalty) > 0.01 {
		t.Fatalf("SMT ratio = %f, want %f", ratio, SMTPenalty)
	}
}

func TestRemoteStreamSlowerThanLocal(t *testing.T) {
	// Paper §2.2: 1GB local = 0.06s, 1GB remote = 0.40s (single stream).
	local, err := Estimate(Run{Machine: sky(), Threads: []ThreadCost{{Node: 0, StreamLocalBytes: 1 << 30}}})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Estimate(Run{Machine: sky(), Threads: []ThreadCost{{Node: 0, StreamRemoteBytes: 1 << 30}}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(local.EstimatedSeconds-0.064) > 0.01 {
		t.Errorf("local 1GB = %fs, want ~0.06", local.EstimatedSeconds)
	}
	if math.Abs(remote.EstimatedSeconds-0.43) > 0.05 {
		t.Errorf("remote 1GB = %fs, want ~0.40", remote.EstimatedSeconds)
	}
}

func TestBandwidthSharing(t *testing.T) {
	// 20 threads streaming 1GB each from one node share the 60GB/s node
	// bandwidth: each sees 3GB/s, so ~0.33s, vs 0.06s for a single stream.
	mk := func(n int) Run {
		ths := make([]ThreadCost, n)
		for i := range ths {
			ths[i] = ThreadCost{Node: 0, StreamLocalBytes: 1 << 30}
		}
		return Run{Machine: sky(), Threads: ths}
	}
	one, _ := Estimate(mk(1))
	twenty, _ := Estimate(mk(20))
	if twenty.EstimatedSeconds < one.EstimatedSeconds*4 {
		t.Fatalf("bandwidth sharing too weak: 1 thread %fs, 20 threads %fs",
			one.EstimatedSeconds, twenty.EstimatedSeconds)
	}
}

func TestRandomAccessLatency(t *testing.T) {
	// 1e6 random local accesses at 85ns / MLPDram(3) ≈ 28ms; random misses
	// are latency-priced only.
	rep, err := Estimate(Run{Machine: sky(), Threads: []ThreadCost{{Node: 0, RandomLocal: 1_000_000}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EstimatedSeconds < 0.02 || rep.EstimatedSeconds > 0.04 {
		t.Fatalf("random access time = %f, want ~0.028", rep.EstimatedSeconds)
	}
	// Remote random must be slower.
	rem, _ := Estimate(Run{Machine: sky(), Threads: []ThreadCost{{Node: 0, RandomRemote: 1_000_000}}})
	if rem.EstimatedSeconds <= rep.EstimatedSeconds {
		t.Error("remote random accesses should cost more than local")
	}
}

func TestSlowestThreadDominates(t *testing.T) {
	rep, err := Estimate(Run{
		Machine: sky(),
		Threads: []ThreadCost{
			{Node: 0, ComputeCycles: 1e9},
			{Node: 1, ComputeCycles: 4e9},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 4e9 / (2.2 * 1e9)
	if math.Abs(rep.EstimatedSeconds-want) > 0.01 {
		t.Fatalf("EstimatedSeconds = %f, want %f (slowest thread)", rep.EstimatedSeconds, want)
	}
	if len(rep.PerThreadSeconds) != 2 || rep.PerThreadSeconds[0] >= rep.PerThreadSeconds[1] {
		t.Errorf("per-thread = %v", rep.PerThreadSeconds)
	}
}

func TestBarrierAndSchedCosts(t *testing.T) {
	base := Run{Machine: sky(), Threads: []ThreadCost{{Node: 0, ComputeCycles: 1e6}}}
	a, _ := Estimate(base)
	base.Barriers = 1000
	base.SchedCostNS = 1e6
	b, _ := Estimate(base)
	wantDelta := 1000*3_000e-9 + 1e6*1e-9
	if math.Abs((b.EstimatedSeconds-a.EstimatedSeconds)-wantDelta) > 1e-6 {
		t.Fatalf("barrier+sched delta = %g, want %g", b.EstimatedSeconds-a.EstimatedSeconds, wantDelta)
	}
}

func TestMApEAndRemoteFraction(t *testing.T) {
	rep, err := Estimate(Run{
		Machine: sky(),
		Threads: []ThreadCost{
			{Node: 0, StreamLocalBytes: 900, StreamRemoteBytes: 100},
		},
		EdgesProcessed: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MApE != 10 {
		t.Errorf("MApE = %f, want 10", rep.MApE)
	}
	if rep.RemoteMApE != 1 {
		t.Errorf("RemoteMApE = %f, want 1", rep.RemoteMApE)
	}
	if math.Abs(rep.RemoteFraction-0.1) > 1e-9 {
		t.Errorf("RemoteFraction = %f, want 0.1", rep.RemoteFraction)
	}
}

func TestRandomAccessesCountAsLineTraffic(t *testing.T) {
	rep, err := Estimate(Run{
		Machine:        sky(),
		Threads:        []ThreadCost{{Node: 0, RandomLocal: 10, RandomRemote: 5}},
		EdgesProcessed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LocalBytes != 640 || rep.RemoteBytes != 320 {
		t.Fatalf("bytes = %d/%d, want 640/320 (64B lines)", rep.LocalBytes, rep.RemoteBytes)
	}
}

func TestWorkingSetLevelSkylake(t *testing.T) {
	m := sky() // L2 1MB, LLC 13.75MB non-inclusive
	cases := []struct {
		ws       int64
		shared   bool
		onNode   int
		want     CacheLevel
		scenario string
	}{
		{384 << 10, false, 20, LevelL2, "256KB partition + buffers, solo"},
		{384 << 10, true, 20, LevelL2, "256KB partition + buffers, HT shared (paper's optimum)"},
		{768 << 10, true, 20, LevelLLC, "512KB partition + buffers, HT shared: spills"},
		{768 << 10, false, 20, LevelL2, "512KB partition + buffers, solo: fits 1MB"},
		{12 << 20, false, 1, LevelLLC, "huge partition, single thread: LLC"},
		{64 << 20, false, 1, LevelDRAM, "bigger than LLC"},
	}
	for _, c := range cases {
		if got := WorkingSetLevel(m, c.ws, c.shared, c.onNode); got != c.want {
			t.Errorf("%s: got %v, want %v", c.scenario, got, c.want)
		}
	}
}

func TestWorkingSetLevelHaswellInclusive(t *testing.T) {
	m := machine.HaswellE52667() // L2 256KB, LLC 20MB inclusive
	// 192KB (128KB partition + buffers) fits 256KB L2 solo but spills when
	// HT-shared.
	if got := WorkingSetLevel(m, 192<<10, false, 16); got != LevelL2 {
		t.Errorf("solo 192KB on Haswell = %v, want L2", got)
	}
	if got := WorkingSetLevel(m, 192<<10, true, 16); got != LevelLLC {
		t.Errorf("shared 192KB on Haswell = %v, want LLC", got)
	}
	// 96KB (64KB partition + buffers) fits even shared (128KB effective L2).
	if got := WorkingSetLevel(m, 96<<10, true, 16); got != LevelL2 {
		t.Errorf("shared 96KB on Haswell = %v, want L2", got)
	}
}

func TestWorkingSetLevelString(t *testing.T) {
	if LevelL2.String() != "L2" || LevelLLC.String() != "LLC" || LevelDRAM.String() != "DRAM" {
		t.Error("bad strings")
	}
}

func TestClassifyPartitionRandom(t *testing.T) {
	m := sky() // L2 1MB, LLC 13.75MB non-inclusive, 10 cores/node
	// Fits L2: 256KB partition, slack 1.5, HT-shared (512KB effective L2).
	if fL2, _, _ := ClassifyPartitionRandom(m, 256<<10, 1.5, true, 20, 0); fL2 != 1 {
		t.Errorf("256KB/1.5 shared should fit L2, fL2 = %f", fL2)
	}
	// Spills L2, fits LLC: 512KB partition shared; demand 768KB*20 = 15.4MB
	// < 23.75MB avail.
	fL2, fLLC, fDRAM := ClassifyPartitionRandom(m, 512<<10, 1.5, true, 20, 0)
	if fL2 != 0 || fLLC != 1 || fDRAM != 0 {
		t.Errorf("512KB shared = (%f,%f,%f), want (0,1,0)", fL2, fLLC, fDRAM)
	}
	// Overcommits LLC: 2MB partitions, 20 threads => 60MB demand.
	_, fLLC, fDRAM = ClassifyPartitionRandom(m, 2<<20, 1.5, true, 20, 0)
	if fDRAM <= 0.5 || fLLC >= 0.5 {
		t.Errorf("2MB x 20 threads should be DRAM-heavy: LLC=%f DRAM=%f", fLLC, fDRAM)
	}
	// The footprint cap rescues it: total attribute bytes 10MB < avail.
	_, fLLC, fDRAM = ClassifyPartitionRandom(m, 2<<20, 1.5, true, 20, 10<<20)
	if fLLC != 1 || fDRAM != 0 {
		t.Errorf("capped demand should fit LLC: LLC=%f DRAM=%f", fLLC, fDRAM)
	}
	// Fractions always sum to 1.
	for _, pb := range []int64{1 << 10, 256 << 10, 1 << 20, 16 << 20} {
		a, b, c := ClassifyPartitionRandom(m, pb, 2.25, false, 10, 0)
		if s := a + b + c; math.Abs(s-1) > 1e-9 {
			t.Errorf("fractions for %d sum to %f", pb, s)
		}
	}
	// Inclusive LLC (Haswell) has no L2 aggregate bonus.
	h := machine.HaswellE52667()
	_, _, dIncl := ClassifyPartitionRandom(h, 4<<20, 1.5, false, 16, 0)
	if dIncl == 0 {
		t.Error("4MB x 16 threads should overcommit the 20MB inclusive LLC")
	}
}
