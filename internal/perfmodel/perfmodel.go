// Package perfmodel turns classified per-thread work counts into estimated
// execution time and memory-traffic metrics for a simulated machine. It is
// the substitute for wall-clock measurements and hardware performance
// counters on the paper's testbeds: the engines count the events their data
// structures actually generate (edges processed, cache-resident accesses,
// local/remote DRAM bytes), and the model prices those events with the
// machine's latencies and bandwidths.
//
// Model structure, per thread:
//
//	time = compute + cache-hit latency + random-DRAM latency (with memory-
//	       level parallelism) + streaming time under shared bandwidth
//
// with per-node DRAM bandwidth shared among that node's streaming threads,
// cross-node streams bounded by the interconnect, an SMT penalty when two
// active threads share a physical core, and per-iteration barrier and
// scheduler (spawn/migration) costs added on top. The run's estimated time
// is the slowest thread's time — the barrier structure of scatter-gather
// makes every phase as slow as its slowest participant.
package perfmodel

import (
	"fmt"

	"hipa/internal/machine"
)

// MLP is the memory-level parallelism for random accesses that hit in the
// cache hierarchy: out-of-order cores keep many such loads in flight, so the
// effective latency is divided by this factor.
const MLP = 8.0

// MLPDram is the (lower) memory-level parallelism for random accesses that
// miss all caches: TLB misses and DRAM row conflicts limit the overlap of
// truly random DRAM reads.
const MLPDram = 3.0

// SMTPenalty multiplies a thread's compute time when its hyper-thread
// sibling is also active (two threads share one core's execution ports;
// combined throughput ≈ 1.3x a single thread).
const SMTPenalty = 1.5

// CacheLevel classifies where a thread's partition-sized working set
// resides.
type CacheLevel int

const (
	// LevelL2 means the working set fits in the thread's share of L2.
	LevelL2 CacheLevel = iota
	// LevelLLC means it spills to the node's shared LLC.
	LevelLLC
	// LevelDRAM means it exceeds even the LLC share.
	LevelDRAM
)

// String names the level.
func (c CacheLevel) String() string {
	switch c {
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	default:
		return "DRAM"
	}
}

// ClassifyPartitionRandom splits a partition-centric thread's random
// accesses across cache levels. Two distinct capacity questions govern the
// split (paper §4.5):
//
//  1. L2 residency: the partition's vertex subset plus the live part of its
//     edge subset and scatter buffer (partBytes × slack) must fit the
//     thread's share of the private L2 (halved when the hyper-thread
//     sibling is active). If it fits, random accesses are L2 hits.
//  2. LLC residency: otherwise the *vertex subsets* of all concurrently
//     active partitions on the node (partBytes × threadsOnNode) compete for
//     the node's LLC (plus the aggregate L2 for a non-inclusive/victim
//     hierarchy). The fit is graceful: the fitting fraction hits LLC, the
//     overflow goes to DRAM.
//
// capBytes, when positive, bounds the aggregate demand: the union of all
// threads' partitions can never exceed the graph's total attribute
// footprint on the node (validated against the exact cache simulator in
// internal/validate).
//
// The returned fractions (fL2, fLLC, fDRAM) sum to 1.
func ClassifyPartitionRandom(m *machine.Machine, partBytes int64, slack float64, physShared bool, threadsOnNode int, capBytes int64) (fL2, fLLC, fDRAM float64) {
	effL2 := int64(m.L2.SizeBytes)
	if physShared {
		effL2 /= 2
	}
	if int64(float64(partBytes)*slack) <= effL2 {
		return 1, 0, 0
	}
	if threadsOnNode < 1 {
		threadsOnNode = 1
	}
	avail := int64(m.LLC.SizeBytes)
	if !m.LLCInclusive {
		avail += int64(m.L2.SizeBytes) * int64(m.CoresPerNode)
	}
	demand := int64(float64(partBytes) * slack * float64(threadsOnNode))
	if capBytes > 0 && demand > capBytes {
		demand = capBytes
	}
	if demand <= avail {
		return 0, 1, 0
	}
	hit := float64(avail) / float64(demand)
	return 0, hit, 1 - hit
}

// WorkingSetLevel decides where a working set of wsBytes per thread lives,
// given whether the thread shares its physical core with another active
// thread (halving the private L2) and how many active threads share the
// node's LLC. For non-inclusive LLCs (Skylake) the spill capacity is LLC +
// L2 (exclusive-ish); for inclusive LLCs (Haswell) it is the LLC alone.
func WorkingSetLevel(m *machine.Machine, wsBytes int64, physShared bool, threadsOnNode int) CacheLevel {
	l2 := int64(m.L2.SizeBytes)
	if physShared {
		l2 /= 2
	}
	if wsBytes <= l2 {
		return LevelL2
	}
	if threadsOnNode < 1 {
		threadsOnNode = 1
	}
	llcShare := int64(m.LLC.SizeBytes) / int64(threadsOnNode)
	if !m.LLCInclusive {
		llcShare += l2
	}
	if wsBytes <= llcShare {
		return LevelLLC
	}
	return LevelDRAM
}

// ThreadCost is the classified work of one thread over the whole run.
type ThreadCost struct {
	// Node is the NUMA node the thread runs on.
	Node int
	// PhysShared marks a thread whose hyper-thread sibling is also active.
	PhysShared bool

	// ComputeCycles covers arithmetic and branch work (≈ cycles/edge).
	ComputeCycles float64

	// Cache-resident accesses by level (L1 hits are folded into compute).
	L2Accesses  int64
	LLCAccesses int64

	// Random DRAM accesses (latency-bound cache-line fills).
	RandomLocal  int64
	RandomRemote int64

	// Streaming DRAM traffic in bytes (bandwidth-bound).
	StreamLocalBytes  int64
	StreamRemoteBytes int64
}

// dramLocalBytes is all local DRAM bytes including random line fills.
func (t ThreadCost) dramLocalBytes(lineBytes int) int64 {
	return t.StreamLocalBytes + t.RandomLocal*int64(lineBytes)
}

func (t ThreadCost) dramRemoteBytes(lineBytes int) int64 {
	return t.StreamRemoteBytes + t.RandomRemote*int64(lineBytes)
}

// Run is the model input for one engine execution.
type Run struct {
	Machine *machine.Machine
	Threads []ThreadCost
	// Barriers is the number of full synchronisation barriers executed.
	Barriers int64
	// SchedCostNS is the scheduler overhead (spawns + migrations) from
	// internal/sched.
	SchedCostNS float64
	// UncoordinatedStreams marks runs whose threads stream unrelated,
	// non-contiguous regions (FCFS partition claiming, per-region thread
	// pools). When more streaming threads than physical cores are active on
	// a node, their interleaved access streams defeat prefetching and cause
	// DRAM row conflicts, cutting the node's effective bandwidth by
	// cores/demanders — the saturation the paper describes in §4.4. HiPa's
	// pinned threads stream contiguous per-group regions (§3.4) and keep
	// full efficiency.
	UncoordinatedStreams bool
	// EdgesProcessed is the total edge-work for MApE normalisation
	// (|E| × iterations / iterations = |E| per iteration; callers pass the
	// per-run total and the iteration count).
	EdgesProcessed int64
	Iterations     int
}

// Report is the model output. The json tags define the stable
// machine-readable form exported by the obs run reports.
type Report struct {
	// EstimatedSeconds is the modelled execution time of the whole run.
	EstimatedSeconds float64 `json:"estimated_seconds"`
	// PerThreadSeconds is each thread's modelled busy time.
	PerThreadSeconds []float64 `json:"per_thread_seconds"`

	// DRAM traffic totals (bytes), including random-access line fills.
	LocalBytes  int64 `json:"local_bytes"`
	RemoteBytes int64 `json:"remote_bytes"`

	// MApE is memory accesses per edge in bytes (Fig. 5): total DRAM bytes
	// divided by (|E| × iterations).
	MApE float64 `json:"mape"`
	// RemoteMApE is the remote portion of MApE.
	RemoteMApE float64 `json:"remote_mape"`
	// RemoteFraction = RemoteBytes / (LocalBytes + RemoteBytes).
	RemoteFraction float64 `json:"remote_fraction"`

	// LLCAccesses is the total modelled LLC traffic (for Fig. 7).
	LLCAccesses int64 `json:"llc_accesses"`
	L2Accesses  int64 `json:"l2_accesses"`
	// RandomDRAMAccesses is the total random accesses that missed all
	// caches; LLCAccesses/(LLCAccesses+RandomDRAMAccesses) approximates the
	// LLC hit ratio the paper reads from hardware counters.
	RandomDRAMAccesses int64 `json:"random_dram_accesses"`

	// Iterations echoes the performed (not configured) iteration count the
	// run was priced for, so tolerance-terminated runs stay auditable
	// against Result.Iterations and the per-iteration statistics.
	Iterations int `json:"iterations"`
}

// LLCHitRatio returns the modelled LLC hit ratio over random accesses.
func (r *Report) LLCHitRatio() float64 {
	t := r.LLCAccesses + r.RandomDRAMAccesses
	if t == 0 {
		return 0
	}
	return float64(r.LLCAccesses) / float64(t)
}

// Estimate prices the run.
func Estimate(r Run) (*Report, error) {
	m := r.Machine
	if m == nil {
		return nil, fmt.Errorf("perfmodel: nil machine")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("perfmodel: %w", err)
	}
	if len(r.Threads) == 0 {
		return nil, fmt.Errorf("perfmodel: no threads")
	}
	line := m.L1.LineBytes

	// Per-node demand for bandwidth sharing.
	localDemanders := make([]int, m.NUMANodes)
	remoteDemanders := make([]int, m.NUMANodes)
	for _, t := range r.Threads {
		if t.Node < 0 || t.Node >= m.NUMANodes {
			return nil, fmt.Errorf("perfmodel: thread on node %d of %d", t.Node, m.NUMANodes)
		}
		if t.StreamLocalBytes > 0 {
			localDemanders[t.Node]++
		}
		if t.StreamRemoteBytes > 0 {
			remoteDemanders[t.Node]++
		}
	}
	totalRemoteDemanders := 0
	for _, d := range remoteDemanders {
		totalRemoteDemanders += d
	}

	rep := &Report{PerThreadSeconds: make([]float64, len(r.Threads)), Iterations: r.Iterations}
	var slowest float64
	for i, t := range r.Threads {
		// Compute.
		comp := t.ComputeCycles / (m.CPUGHz * 1e9)
		if t.PhysShared {
			comp *= SMTPenalty
		}
		// Cache-hit latencies, charged relative to L1 (an L1-resident access
		// is already covered by the compute constants) and overlapped
		// MLP-wide like DRAM misses.
		l2ns := m.L2.LatencyNS - m.L1.LatencyNS
		llcns := m.LLC.LatencyNS - m.L1.LatencyNS
		cache := (float64(t.L2Accesses)*l2ns + float64(t.LLCAccesses)*llcns) / MLP * 1e-9
		// Random DRAM latency with (limited) overlap. Random misses are
		// latency-priced only; their line fills count toward the traffic
		// totals below but not toward stream bandwidth, because a
		// latency-bound access pattern cannot saturate the memory bus.
		random := (float64(t.RandomLocal)*m.LocalLatencyNS + float64(t.RandomRemote)*m.RemoteLatencyNS) / MLPDram * 1e-9
		// Streaming bandwidth, shared per node. Uncoordinated streams from
		// more threads than physical cores defeat prefetching and cause
		// row conflicts, cutting effective bandwidth by cores/demanders
		// (§4.4's saturation); this applies to the node's DRAM controller
		// and to the cross-node interconnect alike.
		lb := float64(t.StreamLocalBytes)
		rb := float64(t.StreamRemoteBytes)
		localBW := m.LocalBandwidth
		if d := localDemanders[t.Node]; d > 0 {
			nodeBW := m.NodeBandwidth
			if r.UncoordinatedStreams && d > m.CoresPerNode {
				nodeBW *= float64(m.CoresPerNode) / float64(d)
			}
			if shared := nodeBW / float64(d); shared < localBW {
				localBW = shared
			}
		}
		remoteBW := m.RemoteBandwidth
		if totalRemoteDemanders > 0 {
			linkBW := m.InterconnectGBps * 1e9
			if r.UncoordinatedStreams && totalRemoteDemanders > m.PhysicalCores() {
				linkBW *= float64(m.PhysicalCores()) / float64(totalRemoteDemanders)
			}
			if shared := linkBW / float64(totalRemoteDemanders); shared < remoteBW {
				remoteBW = shared
			}
		}
		stream := lb/localBW + rb/remoteBW
		sec := comp + cache + random + stream
		rep.PerThreadSeconds[i] = sec
		if sec > slowest {
			slowest = sec
		}
		rep.LocalBytes += t.dramLocalBytes(line)
		rep.RemoteBytes += t.dramRemoteBytes(line)
		rep.LLCAccesses += t.LLCAccesses
		rep.L2Accesses += t.L2Accesses
		rep.RandomDRAMAccesses += t.RandomLocal + t.RandomRemote
	}
	rep.EstimatedSeconds = slowest +
		float64(r.Barriers)*m.SyncBarrierNS*1e-9 +
		r.SchedCostNS*1e-9

	if total := rep.LocalBytes + rep.RemoteBytes; total > 0 {
		rep.RemoteFraction = float64(rep.RemoteBytes) / float64(total)
	}
	if r.EdgesProcessed > 0 {
		rep.MApE = float64(rep.LocalBytes+rep.RemoteBytes) / float64(r.EdgesProcessed)
		rep.RemoteMApE = float64(rep.RemoteBytes) / float64(r.EdgesProcessed)
	}
	return rep, nil
}
