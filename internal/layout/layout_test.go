package layout

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/partition"
)

func buildHierarchy(t testing.TB, g *graph.Graph, partBytes int) *partition.Hierarchy {
	t.Helper()
	h, err := partition.Build(g, partition.Config{
		PartitionBytes: partBytes, BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestFig4Compression(t *testing.T) {
	// Paper Fig. 4: edges (v1,v2) intra; (v1,v6) and (v1,v7) inter to the
	// same partition compress into one message with two destinations.
	// Partitions of 4 vertices: p0 = {0..3}, p1 = {4..7}.
	b := graph.NewBuilder(8)
	b.AddEdges([]graph.Edge{
		{Src: 1, Dst: 2}, // intra
		{Src: 1, Dst: 6}, // inter -> p1
		{Src: 1, Dst: 7}, // inter -> p1 (same message)
	})
	g := b.Build()
	h := buildHierarchy(t, g, 16)
	l, err := Build(g, h, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(g, h); err != nil {
		t.Fatal(err)
	}
	if l.IntraEdges != 1 || l.InterEdges != 2 {
		t.Fatalf("intra=%d inter=%d", l.IntraEdges, l.InterEdges)
	}
	if l.NumMessages() != 1 {
		t.Fatalf("NumMessages = %d, want 1 (compressed)", l.NumMessages())
	}
	if l.MsgSrc[0] != 1 {
		t.Errorf("message source = %d, want 1", l.MsgSrc[0])
	}
	dsts := l.MsgDst[l.MsgDstOff[0]:l.MsgDstOff[1]]
	if len(dsts) != 2 || dsts[0] != 6 || dsts[1] != 7 {
		t.Errorf("message destinations = %v, want [6 7]", dsts)
	}

	// Uncompressed: two messages.
	lu, err := Build(g, h, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := lu.Validate(g, h); err != nil {
		t.Fatal(err)
	}
	if lu.NumMessages() != 2 {
		t.Fatalf("uncompressed NumMessages = %d, want 2", lu.NumMessages())
	}
	if lu.BinBytes() != 8 || l.BinBytes() != 4 {
		t.Errorf("BinBytes: compressed %d, uncompressed %d", l.BinBytes(), lu.BinBytes())
	}
}

func TestBlocksOrderingAndIndexes(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 256, Edges: 3000, OutAlpha: 2.1, InAlpha: 0.8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := buildHierarchy(t, g, 64) // 16 vertices per partition, 16 partitions
	l, err := Build(g, h, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(g, h); err != nil {
		t.Fatal(err)
	}
	// Blocks sorted by (src, dst); SrcBlock ranges consistent.
	for i := 1; i < len(l.Blocks); i++ {
		a, b := l.Blocks[i-1], l.Blocks[i]
		if a.SrcPart > b.SrcPart || (a.SrcPart == b.SrcPart && a.DstPart >= b.DstPart) {
			t.Fatalf("blocks not sorted at %d: %+v then %+v", i, a, b)
		}
		if a.MsgEnd != b.MsgStart {
			t.Fatalf("message ranges not contiguous at block %d", i)
		}
	}
	for p := 0; p < l.NumPartitions; p++ {
		for bi := l.SrcBlockStart[p]; bi < l.SrcBlockEnd[p]; bi++ {
			if int(l.Blocks[bi].SrcPart) != p {
				t.Fatalf("SrcBlock range of %d contains block with src %d", p, l.Blocks[bi].SrcPart)
			}
		}
		for _, bi := range l.DstBlocks[p] {
			if int(l.Blocks[bi].DstPart) != p {
				t.Fatalf("DstBlocks of %d contains block with dst %d", p, l.Blocks[bi].DstPart)
			}
		}
	}
	// Every block is in exactly one DstBlocks list.
	var dstTotal int
	for _, list := range l.DstBlocks {
		dstTotal += len(list)
	}
	if dstTotal != len(l.Blocks) {
		t.Fatalf("DstBlocks cover %d blocks, want %d", dstTotal, len(l.Blocks))
	}
}

// The update multiset delivered by the layout must equal the edge multiset:
// replaying scatter+gather symbolically reproduces every inter-edge exactly
// once and every intra-edge exactly once.
func TestEdgeMultisetPreserved(t *testing.T) {
	for _, compress := range []bool{true, false} {
		g, err := gen.Uniform(300, 4000, 77)
		if err != nil {
			t.Fatal(err)
		}
		h := buildHierarchy(t, g, 128)
		l, err := Build(g, h, compress)
		if err != nil {
			t.Fatal(err)
		}
		got := map[[2]graph.VertexID]int{}
		for m := int64(0); m < l.NumMessages(); m++ {
			src := l.MsgSrc[m]
			for _, d := range l.MsgDst[l.MsgDstOff[m]:l.MsgDstOff[m+1]] {
				got[[2]graph.VertexID{src, d}]++
			}
		}
		for v := 0; v < g.NumVertices(); v++ {
			for _, d := range l.IntraDst[l.IntraOff[v]:l.IntraOff[v+1]] {
				got[[2]graph.VertexID{graph.VertexID(v), d}]++
			}
		}
		want := map[[2]graph.VertexID]int{}
		for v := 0; v < g.NumVertices(); v++ {
			for _, d := range g.OutNeighbors(graph.VertexID(v)) {
				want[[2]graph.VertexID{graph.VertexID(v), d}]++
			}
		}
		if len(got) != len(want) {
			t.Fatalf("compress=%v: %d distinct edges, want %d", compress, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("compress=%v: edge %v delivered %d times, want %d", compress, k, got[k], c)
			}
		}
	}
}

func TestCompressionReducesMessages(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 1024, Edges: 20000, OutAlpha: 2.0, InAlpha: 1.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	h := buildHierarchy(t, g, 256)
	lc, err := Build(g, h, true)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := Build(g, h, false)
	if err != nil {
		t.Fatal(err)
	}
	if lc.NumMessages() >= lu.NumMessages() {
		t.Fatalf("compression did not reduce messages: %d vs %d", lc.NumMessages(), lu.NumMessages())
	}
	if lc.InterEdges != lu.InterEdges || lc.IntraEdges != lu.IntraEdges {
		t.Fatal("edge classification differs between compressed and uncompressed")
	}
}

func TestLargerPartitionsCompressBetter(t *testing.T) {
	// §4.5: "The larger a partition, the better the compression."
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 4096, Edges: 60000, OutAlpha: 2.0, InAlpha: 1.0, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	prevRatio := 0.0
	for _, pb := range []int{64, 256, 1024, 4096} {
		h := buildHierarchy(t, g, pb)
		l, err := Build(g, h, true)
		if err != nil {
			t.Fatal(err)
		}
		if l.InterEdges == 0 {
			continue
		}
		ratio := float64(l.InterEdges) / float64(l.NumMessages()) // edges per message
		if ratio < prevRatio {
			t.Errorf("partition %dB: compression ratio %.2f decreased (prev %.2f)", pb, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio <= 1.0 {
		t.Errorf("final compression ratio %.2f, expected > 1", prevRatio)
	}
}

func TestBuildVertexMismatch(t *testing.T) {
	g1, _ := gen.Uniform(100, 100, 1)
	g2, _ := gen.Uniform(50, 100, 1)
	h := buildHierarchy(t, g1, 64)
	if _, err := Build(g2, h, true); err == nil {
		t.Fatal("expected error for vertex count mismatch")
	}
}

func TestNoInterEdges(t *testing.T) {
	// All edges intra (one partition holds all vertices).
	g, _ := gen.Uniform(32, 500, 2)
	h, err := partition.Build(g, partition.Config{PartitionBytes: 1 << 20, BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g, h, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(g, h); err != nil {
		t.Fatal(err)
	}
	if l.InterEdges != 0 || l.NumMessages() != 0 || len(l.Blocks) != 0 {
		t.Fatalf("expected pure-intra layout: %+v", l)
	}
	if l.IntraEdges != g.NumEdges() {
		t.Fatal("intra edges must cover everything")
	}
}

// Property: layout invariants hold for random graphs, both compression
// modes, and random partition sizes.
func TestPropertyLayoutInvariants(t *testing.T) {
	f := func(seed uint64, pbRaw uint8, compress bool) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := rng.IntN(400) + 10
		m := rng.IntN(3000)
		b := graph.NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.VertexID(rng.IntN(n)), graph.VertexID(rng.IntN(n)))
		}
		g := b.Build()
		pb := (int(pbRaw)%32 + 1) * 16
		h, err := partition.Build(g, partition.Config{
			PartitionBytes: pb, BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 2,
		})
		if err != nil {
			return false
		}
		l, err := Build(g, h, compress)
		if err != nil {
			return false
		}
		return l.Validate(g, h) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
