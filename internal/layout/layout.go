// Package layout builds the partition-centric data layout that HiPa and the
// p-PR baseline iterate over (paper §3.4, Fig. 4): intra-edges kept as a
// local CSR applied inside the owning core's cache, and inter-edges
// compressed into per-(source-partition, destination-partition) message
// blocks — all inter-edges that share a source vertex and a destination
// partition collapse into a single message carrying one rank value, decoded
// into its destination vertices locally during the gather phase.
//
// Messages are stored sorted by (source partition, destination partition,
// source vertex). The scatter phase of the owning thread therefore streams
// sequentially through its blocks while its random reads stay inside the
// cache-resident source partition; the gather phase of the destination
// thread streams sequentially through the blocks targeting its partitions.
//
// The same structure with compression disabled (one message per inter-edge)
// serves as the ablation baseline for the compression optimisation.
package layout

import (
	"fmt"

	"hipa/internal/graph"
	"hipa/internal/par"
	"hipa/internal/partition"
)

// Block is one (source partition → destination partition) run of messages.
type Block struct {
	SrcPart, DstPart int32
	// MsgStart/MsgEnd delimit the block's messages in the layout's global
	// message arrays.
	MsgStart, MsgEnd int64
}

// Messages returns the number of compressed messages in the block.
func (b Block) Messages() int64 { return b.MsgEnd - b.MsgStart }

// Layout is the immutable partition-centric representation of one graph
// under one hierarchical partitioning.
type Layout struct {
	NumPartitions int
	Compressed    bool

	// Blocks sorted by (SrcPart, DstPart).
	Blocks []Block
	// SrcBlocks[p] is the [start,end) range in Blocks of partition p's
	// outgoing blocks.
	SrcBlockStart []int32
	SrcBlockEnd   []int32
	// DstBlocks[q] lists indices into Blocks of the blocks targeting q.
	DstBlocks [][]int32

	// Per-message data: MsgSrc[i] is the source vertex; its destination
	// vertices are MsgDst[MsgDstOff[i]:MsgDstOff[i+1]].
	MsgSrc    []graph.VertexID
	MsgDstOff []int64
	MsgDst    []graph.VertexID

	// Intra-edge CSR over all vertices: destinations of v's intra-partition
	// edges are IntraDst[IntraOff[v]:IntraOff[v+1]].
	IntraOff []int64
	IntraDst []graph.VertexID

	// Totals for reporting and the analytic model.
	IntraEdges int64
	InterEdges int64
}

// NumMessages returns the total compressed message count.
func (l *Layout) NumMessages() int64 { return int64(len(l.MsgSrc)) }

// Build constructs the layout for g under hierarchy h with the default
// parallelism. When compress is false every inter-edge becomes its own
// single-destination message.
func Build(g *graph.Graph, h *partition.Hierarchy, compress bool) (*Layout, error) {
	return BuildWorkers(g, h, compress, 0)
}

// BuildWorkers is Build with an explicit worker count (positive = that many
// workers, 0 = all cores, negative = serial).
//
// All three edge-scanning passes run parallel over source partitions: every
// array cell they touch — a (p,q) row of the pair-count matrices, a vertex's
// intra range, a message inside one of p's blocks — is owned by exactly one
// source partition p, so rows can be processed concurrently with disjoint
// writes, and within a row the serial vertex order is preserved. Rows are
// split by edge weight so one hub partition cannot serialize the build. The
// layout is bit-identical at any worker count.
func BuildWorkers(g *graph.Graph, h *partition.Hierarchy, compress bool, workers int) (*Layout, error) {
	if g.NumVertices() != h.NumVertices {
		return nil, fmt.Errorf("layout: graph has %d vertices, hierarchy %d", g.NumVertices(), h.NumVertices)
	}
	P := h.NumPartitions()
	per := h.VerticesPerPartition
	n := g.NumVertices()
	off := g.OutOffsets()
	adj := g.OutEdges()

	l := &Layout{
		NumPartitions: P,
		Compressed:    compress,
		SrcBlockStart: make([]int32, P),
		SrcBlockEnd:   make([]int32, P),
		DstBlocks:     make([][]int32, P),
		IntraOff:      make([]int64, n+1),
	}

	// Row split: contiguous source-partition ranges of roughly equal edge
	// weight, one per worker.
	w := par.Fit(par.Workers(workers), g.NumEdges())
	partEdges := make([]int64, P+1)
	for p := 0; p < P; p++ {
		partEdges[p+1] = partEdges[p] + h.Partitions[p].EdgeCount
	}
	// rowRange returns the vertex range of source partition p.
	rowRange := func(p int) (int, int) {
		return int(h.Partitions[p].VertexStart), int(h.Partitions[p].VertexEnd)
	}

	// Pass 1: count messages and destinations per (p,q), and intra edges
	// per vertex. The pair matrix is dense; partition counts stay small at
	// realistic partition sizes (P = |V|·4B / partitionBytes).
	msgCount := make([]int64, P*P)
	dstCount := make([]int64, P*P)
	intraPerRow := make([]int64, P)
	par.WeightedBlocks(w, partEdges, func(_, plo, phi int) {
		for p := plo; p < phi; p++ {
			vlo, vhi := rowRange(p)
			for v := vlo; v < vhi; v++ {
				lastQ := -1
				for _, d := range adj[off[v]:off[v+1]] {
					q := int(d) / per
					if q == p {
						l.IntraOff[v+1]++
						intraPerRow[p]++
						continue
					}
					idx := p*P + q
					dstCount[idx]++
					if compress {
						if q != lastQ {
							msgCount[idx]++
							lastQ = q
						}
					} else {
						msgCount[idx]++
					}
				}
			}
		}
	})
	var intraTotal int64
	for _, c := range intraPerRow {
		intraTotal += c
	}
	l.IntraEdges = intraTotal
	l.InterEdges = g.NumEdges() - intraTotal

	// Intra CSR offsets.
	for v := 0; v < n; v++ {
		l.IntraOff[v+1] += l.IntraOff[v]
	}
	l.IntraDst = make([]graph.VertexID, intraTotal)

	// Blocks in (p,q) order with global message/destination prefix sums.
	var totalMsgs, totalDsts int64
	for p := 0; p < P; p++ {
		l.SrcBlockStart[p] = int32(len(l.Blocks))
		for q := 0; q < P; q++ {
			mc := msgCount[p*P+q]
			if mc == 0 {
				continue
			}
			bi := int32(len(l.Blocks))
			l.Blocks = append(l.Blocks, Block{
				SrcPart: int32(p), DstPart: int32(q),
				MsgStart: totalMsgs, MsgEnd: totalMsgs + mc,
			})
			l.DstBlocks[q] = append(l.DstBlocks[q], bi)
			totalMsgs += mc
			totalDsts += dstCount[p*P+q]
		}
		l.SrcBlockEnd[p] = int32(len(l.Blocks))
	}
	l.MsgSrc = make([]graph.VertexID, totalMsgs)
	l.MsgDstOff = make([]int64, totalMsgs+1)
	l.MsgDst = make([]graph.VertexID, totalDsts)

	// Pass 2a: per-message destination counts -> MsgDstOff.
	// Cursor per (p,q) into that block's message range; rows of msgCursor,
	// MsgSrc entries, and dstPerMsg entries all belong to the source
	// partition, so the pass is row-parallel like pass 1.
	msgCursor := make([]int64, P*P)
	blockOf := make([]int32, P*P)
	for i := range blockOf {
		blockOf[i] = -1
	}
	for bi, b := range l.Blocks {
		blockOf[int(b.SrcPart)*P+int(b.DstPart)] = int32(bi)
	}
	// dstPerMsg counts destinations of each message.
	dstPerMsg := make([]int64, totalMsgs)
	par.WeightedBlocks(w, partEdges, func(_, plo, phi int) {
		for p := plo; p < phi; p++ {
			vlo, vhi := rowRange(p)
			for v := vlo; v < vhi; v++ {
				lastQ := -1
				var curMsg int64 = -1
				for _, d := range adj[off[v]:off[v+1]] {
					q := int(d) / per
					if q == p {
						continue
					}
					idx := p*P + q
					newMsg := true
					if compress && q == lastQ {
						newMsg = false
					}
					if newMsg {
						b := l.Blocks[blockOf[idx]]
						curMsg = b.MsgStart + msgCursor[idx]
						msgCursor[idx]++
						l.MsgSrc[curMsg] = graph.VertexID(v)
						lastQ = q
					}
					dstPerMsg[curMsg]++
				}
			}
		}
	})
	for i := int64(0); i < totalMsgs; i++ {
		l.MsgDstOff[i+1] = l.MsgDstOff[i] + dstPerMsg[i]
	}

	// Pass 2b: fill destinations and intra CSR. Row-parallel again; each row
	// resets its own cursor slice before refilling.
	dstFill := make([]int64, totalMsgs) // cursor within each message's dst list
	intraCursor := make([]int64, n)
	par.WeightedBlocks(w, partEdges, func(_, plo, phi int) {
		for p := plo; p < phi; p++ {
			clear(msgCursor[p*P : (p+1)*P])
			vlo, vhi := rowRange(p)
			for v := vlo; v < vhi; v++ {
				lastQ := -1
				var curMsg int64 = -1
				for _, d := range adj[off[v]:off[v+1]] {
					q := int(d) / per
					if q == p {
						l.IntraDst[l.IntraOff[v]+intraCursor[v]] = d
						intraCursor[v]++
						continue
					}
					idx := p*P + q
					newMsg := true
					if compress && q == lastQ {
						newMsg = false
					}
					if newMsg {
						b := l.Blocks[blockOf[idx]]
						curMsg = b.MsgStart + msgCursor[idx]
						msgCursor[idx]++
						lastQ = q
					}
					l.MsgDst[l.MsgDstOff[curMsg]+dstFill[curMsg]] = d
					dstFill[curMsg]++
				}
			}
		}
	})
	return l, nil
}

// Validate checks structural invariants; used by tests.
func (l *Layout) Validate(g *graph.Graph, h *partition.Hierarchy) error {
	per := h.VerticesPerPartition
	// Every message's destinations must live in the block's DstPart, and
	// the source in SrcPart.
	for _, b := range l.Blocks {
		if b.SrcPart == b.DstPart {
			return fmt.Errorf("layout: block %d->%d is intra", b.SrcPart, b.DstPart)
		}
		for m := b.MsgStart; m < b.MsgEnd; m++ {
			if int(l.MsgSrc[m])/per != int(b.SrcPart) {
				return fmt.Errorf("layout: message %d source %d outside partition %d", m, l.MsgSrc[m], b.SrcPart)
			}
			if l.MsgDstOff[m+1] <= l.MsgDstOff[m] {
				return fmt.Errorf("layout: message %d has no destinations", m)
			}
			for _, d := range l.MsgDst[l.MsgDstOff[m]:l.MsgDstOff[m+1]] {
				if int(d)/per != int(b.DstPart) {
					return fmt.Errorf("layout: message %d destination %d outside partition %d", m, d, b.DstPart)
				}
			}
		}
	}
	// Intra edges stay within the source's partition.
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range l.IntraDst[l.IntraOff[v]:l.IntraOff[v+1]] {
			if int(d)/per != v/per {
				return fmt.Errorf("layout: intra edge (%d,%d) crosses partitions", v, d)
			}
		}
	}
	// Edge conservation.
	var dsts int64
	for m := int64(0); m < l.NumMessages(); m++ {
		dsts += l.MsgDstOff[m+1] - l.MsgDstOff[m]
	}
	if dsts != l.InterEdges {
		return fmt.Errorf("layout: %d message destinations, want %d inter-edges", dsts, l.InterEdges)
	}
	if l.IntraEdges+l.InterEdges != g.NumEdges() {
		return fmt.Errorf("layout: intra %d + inter %d != edges %d", l.IntraEdges, l.InterEdges, g.NumEdges())
	}
	if !l.Compressed && l.NumMessages() != l.InterEdges {
		return fmt.Errorf("layout: uncompressed layout must have one message per inter-edge")
	}
	return nil
}

// BinBytes returns the total size of the message value bins (one 4-byte rank
// value per message), the memory the scatter phase writes and the gather
// phase reads each iteration. The compression win of §3.4 is the ratio of
// this number between compressed and uncompressed layouts.
func (l *Layout) BinBytes() int64 { return l.NumMessages() * 4 }
