package layout

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"

	"hipa/internal/graph"
	"hipa/internal/partition"
)

// randomVersioned builds a random graph, applies a few random mutation
// batches, and returns the versioned wrapper.
func randomVersioned(t *testing.T, seed uint64, n, edges int) *graph.Versioned {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0))
	b := graph.NewBuilder(n)
	b.Dedup = true
	for i := 0; i < edges; i++ {
		b.AddEdge(graph.VertexID(rng.IntN(n)), graph.VertexID(rng.IntN(n)))
	}
	return graph.NewVersioned(b.Build())
}

func randomBatch(rng *rand.Rand, n, size int) []graph.Mutation {
	muts := make([]graph.Mutation, size)
	for i := range muts {
		muts[i] = graph.Mutation{
			Op:  graph.MutOp(rng.IntN(2)),
			Src: graph.VertexID(rng.IntN(n)),
			Dst: graph.VertexID(rng.IntN(n)),
		}
	}
	return muts
}

// touchedPartitions maps a delta's touched vertices to sorted partition IDs.
func touchedPartitions(d *graph.Delta, h *partition.Hierarchy) []int {
	seen := map[int]bool{}
	for _, v := range d.Touched {
		seen[h.PartitionOfVertex(v)] = true
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// TestPatchEqualsBuild replays random mutation batches and checks that the
// spliced layout is bit-identical to a cold Build at every version, for both
// compressed and uncompressed layouts and several partition sizes.
func TestPatchEqualsBuild(t *testing.T) {
	const n, edges = 600, 3000
	for _, compress := range []bool{true, false} {
		for _, partBytes := range []int{256, 1024} {
			vg := randomVersioned(t, 42, n, edges)
			rng := rand.New(rand.NewPCG(7, 0))
			cfg := partition.Config{PartitionBytes: partBytes, BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 2}

			prevVer := vg.Version()
			prevG := vg.Snapshot()
			prevH, err := partition.Build(prevG, cfg)
			if err != nil {
				t.Fatal(err)
			}
			prevL, err := Build(prevG, prevH, compress)
			if err != nil {
				t.Fatal(err)
			}
			for batch := 0; batch < 5; batch++ {
				ver, err := vg.ApplyBatch(randomBatch(rng, n, 40))
				if err != nil {
					t.Fatal(err)
				}
				d, err := vg.DeltaBetween(prevVer, ver)
				if err != nil {
					t.Fatal(err)
				}
				h, err := partition.Advance(prevH, d.Next, touchedPartitions(d, prevH))
				if err != nil {
					t.Fatal(err)
				}
				coldH, err := partition.Build(d.Next, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(h, coldH) {
					t.Fatalf("compress=%v partBytes=%d batch %d: advanced hierarchy differs from cold build", compress, partBytes, batch)
				}
				got, err := Patch(prevL, d.Next, h, touchedPartitions(d, prevH))
				if err != nil {
					t.Fatal(err)
				}
				want, err := Build(d.Next, h, compress)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("compress=%v partBytes=%d batch %d: patched layout differs from cold build", compress, partBytes, batch)
				}
				if err := got.Validate(d.Next, h); err != nil {
					t.Fatal(err)
				}
				prevVer, prevG, prevH, prevL = ver, d.Next, h, got
			}
			_ = prevG
		}
	}
}

// TestPatchRejectsBadInput covers the error paths.
func TestPatchRejectsBadInput(t *testing.T) {
	vg := randomVersioned(t, 1, 100, 300)
	g := vg.Snapshot()
	cfg := partition.Config{PartitionBytes: 64, BytesPerVertex: 4, NumNodes: 2}
	h, err := partition.Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(g, h, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Patch(l, g, h, []int{3, 1}); err == nil {
		t.Fatal("unsorted touched list must be rejected")
	}
	if _, err := Patch(l, g, h, []int{h.NumPartitions()}); err == nil {
		t.Fatal("out-of-range partition must be rejected")
	}
}
