package layout

import (
	"fmt"
	"sort"

	"hipa/internal/graph"
	"hipa/internal/partition"
)

// Patch rebuilds the layout for g under h by recomputing only the touched
// source partitions' rows and splicing everything else out of the old
// layout. The result is bit-identical to BuildWorkers(g, h, old.Compressed,
// ·): every message, destination, and intra edge of an untouched source
// partition is copied (with its offsets rebased), and only the touched
// partitions' edges are re-scanned and re-grouped — the incremental-prep
// path behind common.Prepared.Advance.
//
// h must share the old hierarchy's partition geometry (same vertex ranges;
// mutation batches never change it), touched must list the source-partition
// IDs whose vertices' out-adjacency changed, sorted ascending. Partitions
// whose rows merely read differently because a *destination* moved do not
// exist — a mutation (u,v) only changes u's row — so touched is exactly the
// partitions containing mutated sources.
//
// The patch is serial: its cost is the touched partitions' edge scans plus
// a linear splice of the untouched data, and a serial pass is trivially
// deterministic. (Build's parallelism exists for the cold O(E) scan; the
// splice is memcpy-bound.)
func Patch(old *Layout, g *graph.Graph, h *partition.Hierarchy, touched []int) (*Layout, error) {
	if g.NumVertices() != h.NumVertices {
		return nil, fmt.Errorf("layout: patch graph has %d vertices, hierarchy %d", g.NumVertices(), h.NumVertices)
	}
	P := h.NumPartitions()
	if old.NumPartitions != P {
		return nil, fmt.Errorf("layout: patch hierarchy has %d partitions, old layout %d", P, old.NumPartitions)
	}
	if !sort.IntsAreSorted(touched) {
		return nil, fmt.Errorf("layout: touched partitions must be sorted")
	}
	isTouched := make([]bool, P)
	for _, p := range touched {
		if p < 0 || p >= P {
			return nil, fmt.Errorf("layout: touched partition %d out of range [0,%d)", p, P)
		}
		isTouched[p] = true
	}
	compress := old.Compressed
	per := h.VerticesPerPartition
	n := g.NumVertices()
	off := g.OutOffsets()
	adj := g.OutEdges()

	l := &Layout{
		NumPartitions: P,
		Compressed:    compress,
		SrcBlockStart: make([]int32, P),
		SrcBlockEnd:   make([]int32, P),
		DstBlocks:     make([][]int32, P),
		IntraOff:      make([]int64, n+1),
	}

	// Pass 1: per-(p,q) message/destination counts and per-vertex intra
	// counts. Touched partitions re-scan their adjacency rows exactly like
	// Build; untouched partitions read their counts off the old layout.
	msgCount := make([]int64, P*P)
	dstCount := make([]int64, P*P)
	var intraTotal int64
	for p := 0; p < P; p++ {
		vlo, vhi := int(h.Partitions[p].VertexStart), int(h.Partitions[p].VertexEnd)
		if !isTouched[p] {
			for bi := old.SrcBlockStart[p]; bi < old.SrcBlockEnd[p]; bi++ {
				b := old.Blocks[bi]
				idx := p*P + int(b.DstPart)
				msgCount[idx] = b.Messages()
				dstCount[idx] = old.MsgDstOff[b.MsgEnd] - old.MsgDstOff[b.MsgStart]
			}
			for v := vlo; v < vhi; v++ {
				c := old.IntraOff[v+1] - old.IntraOff[v]
				l.IntraOff[v+1] = c
				intraTotal += c
			}
			continue
		}
		for v := vlo; v < vhi; v++ {
			lastQ := -1
			for _, d := range adj[off[v]:off[v+1]] {
				q := int(d) / per
				if q == p {
					l.IntraOff[v+1]++
					intraTotal++
					continue
				}
				idx := p*P + q
				dstCount[idx]++
				if compress {
					if q != lastQ {
						msgCount[idx]++
						lastQ = q
					}
				} else {
					msgCount[idx]++
				}
			}
		}
	}
	l.IntraEdges = intraTotal
	l.InterEdges = g.NumEdges() - intraTotal

	for v := 0; v < n; v++ {
		l.IntraOff[v+1] += l.IntraOff[v]
	}
	l.IntraDst = make([]graph.VertexID, intraTotal)

	// Blocks in (p,q) order with global prefix sums, exactly as Build lays
	// them out.
	var totalMsgs, totalDsts int64
	for p := 0; p < P; p++ {
		l.SrcBlockStart[p] = int32(len(l.Blocks))
		for q := 0; q < P; q++ {
			mc := msgCount[p*P+q]
			if mc == 0 {
				continue
			}
			bi := int32(len(l.Blocks))
			l.Blocks = append(l.Blocks, Block{
				SrcPart: int32(p), DstPart: int32(q),
				MsgStart: totalMsgs, MsgEnd: totalMsgs + mc,
			})
			l.DstBlocks[q] = append(l.DstBlocks[q], bi)
			totalMsgs += mc
			totalDsts += dstCount[p*P+q]
		}
		l.SrcBlockEnd[p] = int32(len(l.Blocks))
	}
	l.MsgSrc = make([]graph.VertexID, totalMsgs)
	l.MsgDstOff = make([]int64, totalMsgs+1)
	l.MsgDst = make([]graph.VertexID, totalDsts)

	// Pass 2a: message sources and per-message destination counts.
	blockOf := make([]int32, P*P)
	for i := range blockOf {
		blockOf[i] = -1
	}
	for bi, b := range l.Blocks {
		blockOf[int(b.SrcPart)*P+int(b.DstPart)] = int32(bi)
	}
	msgCursor := make([]int64, P*P)
	dstPerMsg := make([]int64, totalMsgs)
	for p := 0; p < P; p++ {
		if !isTouched[p] {
			// Splice: p's messages keep their old per-block order; only the
			// global offsets move.
			for bi := old.SrcBlockStart[p]; bi < old.SrcBlockEnd[p]; bi++ {
				ob := old.Blocks[bi]
				nb := l.Blocks[blockOf[p*P+int(ob.DstPart)]]
				copy(l.MsgSrc[nb.MsgStart:nb.MsgEnd], old.MsgSrc[ob.MsgStart:ob.MsgEnd])
				for m := int64(0); m < ob.Messages(); m++ {
					dstPerMsg[nb.MsgStart+m] = old.MsgDstOff[ob.MsgStart+m+1] - old.MsgDstOff[ob.MsgStart+m]
				}
			}
			continue
		}
		vlo, vhi := int(h.Partitions[p].VertexStart), int(h.Partitions[p].VertexEnd)
		for v := vlo; v < vhi; v++ {
			lastQ := -1
			var curMsg int64 = -1
			for _, d := range adj[off[v]:off[v+1]] {
				q := int(d) / per
				if q == p {
					continue
				}
				idx := p*P + q
				newMsg := true
				if compress && q == lastQ {
					newMsg = false
				}
				if newMsg {
					b := l.Blocks[blockOf[idx]]
					curMsg = b.MsgStart + msgCursor[idx]
					msgCursor[idx]++
					l.MsgSrc[curMsg] = graph.VertexID(v)
					lastQ = q
				}
				dstPerMsg[curMsg]++
			}
		}
	}
	for i := int64(0); i < totalMsgs; i++ {
		l.MsgDstOff[i+1] = l.MsgDstOff[i] + dstPerMsg[i]
	}

	// Pass 2b: message destinations and the intra CSR.
	intraCursor := make([]int64, 0)
	for p := 0; p < P; p++ {
		vlo, vhi := int(h.Partitions[p].VertexStart), int(h.Partitions[p].VertexEnd)
		if !isTouched[p] {
			// Intra rows of an untouched partition are one contiguous run.
			copy(l.IntraDst[l.IntraOff[vlo]:l.IntraOff[vhi]],
				old.IntraDst[old.IntraOff[vlo]:old.IntraOff[vhi]])
			for bi := old.SrcBlockStart[p]; bi < old.SrcBlockEnd[p]; bi++ {
				ob := old.Blocks[bi]
				nb := l.Blocks[blockOf[p*P+int(ob.DstPart)]]
				copy(l.MsgDst[l.MsgDstOff[nb.MsgStart]:l.MsgDstOff[nb.MsgEnd]],
					old.MsgDst[old.MsgDstOff[ob.MsgStart]:old.MsgDstOff[ob.MsgEnd]])
			}
			continue
		}
		clear(msgCursor[p*P : (p+1)*P])
		if c := vhi - vlo; cap(intraCursor) < c {
			intraCursor = make([]int64, c)
		}
		ic := intraCursor[:vhi-vlo]
		clear(ic)
		for v := vlo; v < vhi; v++ {
			lastQ := -1
			var curMsg int64 = -1
			var curFill int64
			for _, d := range adj[off[v]:off[v+1]] {
				q := int(d) / per
				if q == p {
					l.IntraDst[l.IntraOff[v]+ic[v-vlo]] = d
					ic[v-vlo]++
					continue
				}
				idx := p*P + q
				newMsg := true
				if compress && q == lastQ {
					newMsg = false
				}
				if newMsg {
					b := l.Blocks[blockOf[idx]]
					curMsg = b.MsgStart + msgCursor[idx]
					msgCursor[idx]++
					lastQ = q
					curFill = 0
				}
				l.MsgDst[l.MsgDstOff[curMsg]+curFill] = d
				curFill++
			}
		}
	}
	return l, nil
}
