// Package polymer implements the Polymer-like framework baseline (§4.1): a
// NUMA-aware vertex-centric graph framework in the style of Zhang et al.'s
// Polymer (PPoPP'15). The graph is sub-partitioned per NUMA node with local
// data placement and node-bound threads, which gives it the lowest remote-
// access ratio of all baselines (§4.3) — but the vertex-centric framework
// overheads (atomic updates, frontier machinery that is redundant for
// PageRank, per-edge virtualisation) make it the slowest overall, matching
// the paper's Table 2.
//
// Exec runs on the shared allocation-free vertex-centric hot path
// (common.ExecVertex): ranks/contributions scratch lives in an arena
// recycled across Execs against one Prepared artifact, so the steady state
// performs zero heap allocations per iteration.
package polymer

import (
	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/machine"
)

// FrontierBytesPerVertex models the framework's frontier bitmaps/queues
// streamed every iteration even though PageRank activates every vertex.
const FrontierBytesPerVertex = 2

// FrameworkCyclesPerEdge is the per-edge cost of Polymer's generality layer
// (virtual function dispatch, work-stealing bookkeeping, double passes).
// Calibrated against the paper's Table 2 ratios.
const FrameworkCyclesPerEdge = 60.0

// SpatialReuseFactor: Polymer's per-node sub-graph construction clusters
// in-edges by source locality, so each fetched contribution line serves
// several nearby edges — the mechanism behind its low MApE despite the
// vertex-centric access pattern (§4.3).
const SpatialReuseFactor = 2.5

// BoundaryRemoteFraction is the share of random misses that touch sub-graph
// boundary vertices owned by the other node, keeping Polymer's remote ratio
// near the paper's ~10%.
const BoundaryRemoteFraction = 0.15

// Engine is the Polymer-like implementation of common.Engine.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return "Polymer" }

func config() common.VertexEngineConfig {
	return common.VertexEngineConfig{
		Name:                   "Polymer",
		DefaultThreads:         func(m *machine.Machine) int { return m.LogicalCores() },
		NUMAAware:              true,
		FrontierBytesPerVertex: FrontierBytesPerVertex,
		FrameworkCyclesPerEdge: FrameworkCyclesPerEdge,
		SpatialReuseFactor:     SpatialReuseFactor,
		BoundaryRemoteFraction: BoundaryRemoteFraction,
		AtomicUpdates:          true,
	}
}

// Run executes the NUMA-aware vertex-centric framework PageRank.
func (Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	return common.RunVertexEngine(g, o, config())
}

// Prepare builds the transpose + degree artifact (shared with v-PR: the
// artifact is machine- and thread-independent, so the two vertex-centric
// engines reuse one cache entry per graph).
func (Engine) Prepare(g *graph.Graph, o common.Options) (*common.Prepared, error) {
	return common.PrepareVertex(g, o, config())
}

// Exec runs the pull iterative phase against a Prepared artifact.
func (Engine) Exec(prep *common.Prepared, o common.Options) (*common.Result, error) {
	return common.ExecVertex(prep, o, config())
}
