// Package gpop implements the GPOP-like framework baseline (§4.1): a
// partition-centric graph processing *framework* in the style of Lakhotia et
// al.'s GPOP (TOPC 2020). Like p-PR it is NUMA-oblivious with per-phase
// thread pools and FCFS partition scheduling, but it carries framework
// baggage the paper calls out:
//
//   - 1MB partitions (the authors' recommended setting, §4.1), which
//     compress inter-edges better but overflow the private L2 and, on small
//     graphs, leave fewer partitions than threads (load imbalance);
//   - per-partition bookkeeping state (Flags, State, §4.5) streamed every
//     phase;
//   - a generality layer on the edge path.
//
// The frontier machinery is disabled for PageRank, as the paper does
// ("we only report the performance of simplified GPOP without frontier").
//
// Exec runs on the shared allocation-free hot path (common.ExecOblivious):
// scratch state lives in an arena recycled across Execs against one Prepared
// artifact, and the superstep loop reuses a persistent worker pool, so the
// steady state performs zero heap allocations per iteration.
package gpop

import (
	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/machine"
)

// PartitionStateBytes models GPOP's per-partition Flags/State fields
// streamed each phase (§4.5).
const PartitionStateBytes = 256

// FrameworkCyclesPerEdge models the generality layer on the edge path
// (user-function dispatch and per-partition scheduling bookkeeping),
// calibrated against Table 2's GPOP/p-PR ratios.
const FrameworkCyclesPerEdge = 8.0

// Engine is the GPOP-like implementation of common.Engine.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return "GPOP" }

func config() common.ObliviousPartitionConfig {
	return common.ObliviousPartitionConfig{
		Name:                   "GPOP",
		DefaultThreads:         func(m *machine.Machine) int { return m.PhysicalCores() },
		DefaultPartitionBytes:  1 << 20,
		ExtraBytesPerPartition: PartitionStateBytes,
		ExtraCyclesPerEdge:     FrameworkCyclesPerEdge,
	}
}

// Run executes the GPOP-like framework PageRank.
func (Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	return common.RunObliviousPartitionEngine(g, o, config())
}

// Prepare builds the flat partition + layout artifact.
func (Engine) Prepare(g *graph.Graph, o common.Options) (*common.Prepared, error) {
	return common.PrepareOblivious(g, o, config())
}

// Exec runs the FCFS iterative phase against a Prepared artifact.
func (Engine) Exec(prep *common.Prepared, o common.Options) (*common.Result, error) {
	return common.ExecOblivious(prep, o, config())
}
