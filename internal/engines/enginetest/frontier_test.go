package enginetest

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hipa/internal/engines/common"
	"hipa/internal/engines/delta"
	"hipa/internal/engines/ec"
	"hipa/internal/engines/nb"
	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/machine"
	"hipa/internal/obs"
	"hipa/internal/platform"
)

var updateFrontierGolden = flag.Bool("update-frontier", false, "rewrite testdata/golden_frontier.json from the current implementation")

// frontierEngines are the frontier-aware engines. They are deliberately
// NOT part of allEngines(): none reproduces the dense engines' bit-exact
// rank vectors (pruning, asynchrony, and delta gating trade exactness for
// skipped work), so they carry their own golden cases and
// convergence-quality gates instead of joining the five-engine
// bit-exactness matrix.
func frontierEngines() []common.Engine {
	return []common.Engine{ec.Engine{}, nb.Engine{}, delta.Engine{}}
}

// frontierTol is the convergence tolerance the golden and quality cases run
// at, and frontierBudget an iteration budget comfortably past the point the
// damping factor alone (0.85^k < 1e-6 at k ≈ 85) guarantees termination.
const (
	frontierTol    = 1e-6
	frontierBudget = 150
)

// frontierGraph is the deterministic fixture of the frontier cases: a ring
// (no dangling vertices) plus LCG-derived extra edges. goldenGraph is
// unsuitable here — its extra-edge degrees all collapse to zero (the seed
// mix leaves the top bits empty), making it a pure ring whose PageRank is
// exactly uniform: every engine "converges" in one iteration and pruning
// never has a chance to stagger. This fixture draws degrees from well-mixed
// LCG bits, so ranks vary, partitions converge at different iterations, and
// early-convergence pruning is observable.
func frontierGraph() *graph.Graph {
	const n = 2000
	b := graph.NewBuilder(n)
	x := uint64(0x9E3779B97F4A7C15)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%n))
		x = x*6364136223846793005 + 1442695040888963407
		deg := int(x >> 61) // 0..7 extra edges
		for j := 0; j < deg; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			b.AddEdge(graph.VertexID(v), graph.VertexID(int(x>>33)%n))
		}
	}
	return b.Build()
}

func frontierGoldenCases() []struct {
	key    string
	engine common.Engine
	opts   common.Options
} {
	base := func(preset func() *machine.Machine) common.Options {
		return common.Options{
			Machine:        machine.Scaled(preset(), 1024),
			Threads:        8,
			Iterations:     frontierBudget,
			Tolerance:      frontierTol,
			PartitionBytes: 256,
		}
	}
	var cases []struct {
		key    string
		engine common.Engine
		opts   common.Options
	}
	// EC-HiPa and Delta-PR are bit-deterministic at any thread count
	// (serial per-partition folds), so both presets pin full multithreaded
	// runs.
	for _, preset := range []struct {
		name string
		mk   func() *machine.Machine
	}{
		{"skylake", machine.SkylakeSilver4210},
		{"haswell", machine.HaswellE52667},
	} {
		cases = append(cases, struct {
			key    string
			engine common.Engine
			opts   common.Options
		}{preset.name + "/" + ec.Name, ec.Engine{}, base(preset.mk)})
		cases = append(cases, struct {
			key    string
			engine common.Engine
			opts   common.Options
		}{preset.name + "/" + delta.Name, delta.Engine{}, base(preset.mk)})
	}
	// NB-PR is only deterministic with a single worker (the asynchrony
	// disappears and the run is a fixed-order chaotic iteration).
	nbOpts := base(machine.SkylakeSilver4210)
	nbOpts.Threads = 1
	cases = append(cases, struct {
		key    string
		engine common.Engine
		opts   common.Options
	}{"skylake/" + nb.Name + "/1thread", nb.Engine{}, nbOpts})
	return cases
}

// frontierGoldenEntry extends goldenEntry with the pruning-effectiveness
// counters: a change to the frontier machinery that alters WHICH work is
// skipped shows up here even if the ranks stay put.
type frontierGoldenEntry struct {
	goldenEntry
	IterationsExecuted int   `json:"iterations_executed"`
	ActivePartIters    int64 `json:"active_partition_iterations"`
	ActiveVertexIters  int64 `json:"active_vertex_iterations"`
	PartitionsSkipped  int64 `json:"partitions_skipped"`
}

// TestFrontierGoldenBitExactness is the refactoring safety net for the two
// frontier-aware engines, mirroring TestGoldenBitExactness: bit-identical
// rank vectors, identical modelled metrics, and identical pruning counters
// across code changes. Regenerate with
// `go test ./internal/engines/enginetest -run FrontierGolden -update-frontier`
// ONLY when an intentional numerical change has been reviewed.
func TestFrontierGoldenBitExactness(t *testing.T) {
	g := frontierGraph()
	got := map[string]frontierGoldenEntry{}
	for _, c := range frontierGoldenCases() {
		res, err := c.engine.Run(g, c.opts)
		if err != nil {
			t.Fatalf("%s: %v", c.key, err)
		}
		if res.Frontier == nil {
			t.Fatalf("%s: frontier-aware engine returned no FrontierReport", c.key)
		}
		got[c.key] = frontierGoldenEntry{
			goldenEntry: goldenEntry{
				RanksFNV64:       ranksFNV64(res.Ranks),
				ModelSecondsBits: fmt.Sprintf("%016x", math.Float64bits(res.Model.EstimatedSeconds)),
				LocalBytes:       res.Model.LocalBytes,
				RemoteBytes:      res.Model.RemoteBytes,
				LLCAccesses:      res.Model.LLCAccesses,
				SchedCostNSBits:  fmt.Sprintf("%016x", math.Float64bits(res.Sched.CostNS)),
				Spawned:          res.Sched.Spawned,
				Migrations:       res.Sched.Migrations,
			},
			IterationsExecuted: res.Frontier.IterationsExecuted,
			ActivePartIters:    res.Frontier.ActivePartitionIterations,
			ActiveVertexIters:  res.Frontier.ActiveVertexIterations,
			PartitionsSkipped:  res.Frontier.PartitionsSkipped,
		}
	}

	path := filepath.Join("testdata", "golden_frontier.json")
	if *updateFrontierGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing frontier golden file (run with -update-frontier to generate): %v", err)
	}
	var want map[string]frontierGoldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cases, run produced %d", len(want), len(got))
	}
	for key, w := range want {
		gi, ok := got[key]
		if !ok {
			t.Errorf("%s: case missing from run", key)
			continue
		}
		if gi != w {
			t.Errorf("%s: drifted from golden:\n got  %+v\n want %+v", key, gi, w)
		}
	}
}

// TestECSkipsPartitionsOnGoldenCase pins the acceptance criterion of the
// early-convergence engine: on a golden case it demonstrably retires at
// least one partition before termination. The skip is asserted twice — on
// the run's FrontierReport and on the per-iteration active-partition counter
// the driver surfaces through obs.
func TestECSkipsPartitionsOnGoldenCase(t *testing.T) {
	g := frontierGraph()
	o := frontierGoldenCases()[0].opts
	rec := &obs.Recorder{Collector: obs.NewCollector()}
	o.Obs = rec
	res, err := (ec.Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Frontier
	if rep == nil {
		t.Fatal("EC-HiPa returned no FrontierReport")
	}
	if rep.PartitionsSkipped < 1 {
		t.Errorf("PartitionsSkipped = %d, want >= 1: pruning never engaged on the golden case", rep.PartitionsSkipped)
	}
	if res.Iterations >= o.Iterations {
		t.Errorf("ran the full %d-iteration budget; tolerance %g should terminate earlier", o.Iterations, frontierTol)
	}
	if frac := rep.ActiveFraction(); frac <= 0 || frac >= 1 {
		t.Errorf("active fraction = %v, want inside (0,1): pruning must save work without emptying instantly", frac)
	}
	if len(res.Iters) != res.Iterations {
		t.Fatalf("recorded %d iteration stats, want %d", len(res.Iters), res.Iterations)
	}
	// The per-iteration counters must start dense, shrink monotonically, and
	// end strictly below the partition total (>= 1 partition retired early).
	first, last := res.Iters[0], res.Iters[len(res.Iters)-1]
	if first.ActivePartitions != rep.TotalPartitions {
		t.Errorf("iteration 0 ran %d partitions, want all %d", first.ActivePartitions, rep.TotalPartitions)
	}
	if last.ActivePartitions >= rep.TotalPartitions {
		t.Errorf("final iteration still ran all %d partitions; expected at least one retired", rep.TotalPartitions)
	}
	prev := first
	for i, st := range res.Iters {
		if st.ActivePartitions > prev.ActivePartitions || st.ActiveVertices > prev.ActiveVertices {
			t.Errorf("iteration %d active set grew (%d/%d -> %d/%d); retirement is one-way",
				i, prev.ActivePartitions, prev.ActiveVertices, st.ActivePartitions, st.ActiveVertices)
		}
		prev = st
	}
}

// exactMaxAbsDiff compares float32 ranks against a long float64 power
// iteration ("exact" ranks for quality purposes).
func exactMaxAbsDiff(g *graph.Graph, got []float32, damping float64) float64 {
	ref := common.ReferencePageRank(g, 200, damping)
	var worst float64
	for v := range ref {
		d := math.Abs(ref[v] - float64(got[v]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestFrontierEnginesConvergenceQuality is the approximation contract:
// neither engine is bit-identical to the dense five, but both must land
// within 10× the run tolerance of the exact ranks. (The geometric tail a
// frozen partition or an early-stopping worker misses is bounded by
// tol/(1−damping) ≈ 6.7×tol at damping 0.85.)
func TestFrontierEnginesConvergenceQuality(t *testing.T) {
	g := frontierGraph()
	for _, e := range frontierEngines() {
		for _, threads := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/%dthreads", e.Name(), threads), func(t *testing.T) {
				o := testOptions(frontierBudget)
				o.Threads = threads
				o.Tolerance = frontierTol
				res, err := e.Run(g, o)
				if err != nil {
					t.Fatal(err)
				}
				if res.Iterations >= frontierBudget {
					t.Errorf("never converged within %d iterations at tolerance %g", frontierBudget, frontierTol)
				}
				if got := common.RankSum(res.Ranks); math.Abs(got-1) > 1e-3 {
					t.Errorf("rank sum = %f, want 1", got)
				}
				if worst := exactMaxAbsDiff(g, res.Ranks, common.DefaultDamping); worst > 10*frontierTol {
					t.Errorf("max abs error vs exact ranks = %g, want <= %g (10x tolerance)", worst, 10*frontierTol)
				}
			})
		}
	}
}

// TestFrontierEnginesWithDanglingVertices repeats the quality gate on a
// dangling-heavy graph: half the vertices have no out-edges, so the frozen
// per-partition (ec) and per-worker (nb) dangling folds carry half the rank
// mass and any staleness bug would blow the sum or the error.
func TestFrontierEnginesWithDanglingVertices(t *testing.T) {
	b := graph.NewBuilder(200)
	for v := 0; v < 100; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+100)) // 100..199 dangle
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%100))
	}
	g := b.Build()
	for _, e := range frontierEngines() {
		t.Run(e.Name(), func(t *testing.T) {
			o := testOptions(frontierBudget)
			o.Tolerance = frontierTol
			res, err := e.Run(g, o)
			if err != nil {
				t.Fatal(err)
			}
			if got := common.RankSum(res.Ranks); math.Abs(got-1) > 1e-3 {
				t.Errorf("rank sum = %f with dangling vertices, want 1", got)
			}
			if worst := exactMaxAbsDiff(g, res.Ranks, common.DefaultDamping); worst > 10*frontierTol {
				t.Errorf("max abs error vs exact ranks = %g, want <= %g", worst, 10*frontierTol)
			}
		})
	}
}

// TestNBTerminationHammer exercises the barrierless engine's two shared-
// memory mechanisms — atomic rank publication and round-based termination —
// under real contention, repeatedly and across worker counts. Run under
// `go test -race` this is the data-race gate for the lock-free hot path; in
// a plain run it still verifies that termination detection fires (no worker
// spins to the budget) and quality holds under chaotic interleavings.
func TestNBTerminationHammer(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 1200, Edges: 15000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions(frontierBudget)
	o.Tolerance = frontierTol
	// Native platform: the workers are real goroutines racing on the rank
	// bits; modelling would only serialize what the test wants contended.
	o.Platform = platform.NewNative(o.Machine)
	prep, err := (nb.Engine{}).Prepare(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 4, 8, 16} {
		for rep := 0; rep < 3; rep++ {
			oo := o
			oo.Threads = threads
			res, err := (nb.Engine{}).Exec(prep, oo)
			if err != nil {
				t.Fatalf("%d threads rep %d: %v", threads, rep, err)
			}
			if res.Iterations >= frontierBudget {
				t.Errorf("%d threads rep %d: termination never detected within %d rounds", threads, rep, frontierBudget)
			}
			if got := common.RankSum(res.Ranks); math.Abs(got-1) > 5e-3 {
				t.Errorf("%d threads rep %d: rank sum = %f", threads, rep, got)
			}
			// The quality gate here is looser than the 10×tol one on
			// frontierGraph: this fixture is a power-law graph whose hubs
			// amplify a sub-tolerance residual by their in-degree weight
			// (Σ 1/deg over in-neighbours ≫ 1), so an L∞-residual stop
			// cannot bound the final error at a small multiple of tol on any
			// engine. The hammer's job is interleaving and termination
			// coverage; 200×tol still catches a wrong fixed point (those
			// were ×10000 off before the staleness window existed).
			if worst := exactMaxAbsDiff(g, res.Ranks, common.DefaultDamping); worst > 200*frontierTol {
				t.Errorf("%d threads rep %d: max abs error %g vs exact, want <= %g", threads, rep, worst, 200*frontierTol)
			}
		}
	}
}

// TestFrontierExecZeroAllocsPerIteration extends the zero-allocs-per-
// iteration gate (see TestExecZeroAllocsPerIteration) to the frontier
// engines. Tolerances are chosen so iteration counts stay fixed and the
// differential is meaningful: ec gets an unreachable tolerance (the frontier
// machinery — converged-bit checks, per-partition folds, Rebuild — runs
// every iteration but never retires anything), nb gets zero (termination
// detection off, every worker runs exactly the round budget).
func TestFrontierExecZeroAllocsPerIteration(t *testing.T) {
	const iterShort, iterLong = 3, 13
	g := allocGraph(t)
	cases := []struct {
		engine common.Engine
		tol    float64
	}{
		{ec.Engine{}, 1e-30},
		{nb.Engine{}, 0},
		// Delta-PR with an unreachable tolerance keeps every vertex active
		// (the gate eps = tol/16 never trips), so the differential spans
		// full dense supersteps of the delta machinery.
		{delta.Engine{}, 1e-30},
	}
	for _, pm := range presetMachines() {
		for _, c := range cases {
			t.Run(pm.name+"/"+c.engine.Name(), func(t *testing.T) {
				o := testOptions(iterShort)
				o.Machine = pm.m
				o.Platform = platform.NewNative(pm.m)
				o.Tolerance = c.tol
				prep, err := c.engine.Prepare(g, o)
				if err != nil {
					t.Fatal(err)
				}
				execN := func(iters int) {
					oo := o
					oo.Iterations = iters
					if _, err := c.engine.Exec(prep, oo); err != nil {
						t.Fatal(err)
					}
				}
				execN(iterLong)
				short := testing.AllocsPerRun(5, func() { execN(iterShort) })
				long := testing.AllocsPerRun(5, func() { execN(iterLong) })
				if extra := long - short; extra != 0 {
					t.Errorf("%g extra allocs across %d extra iterations (%g/iteration); steady-state Exec must not allocate",
						extra, iterLong-iterShort, extra/float64(iterLong-iterShort))
				}
			})
		}
	}
}

// TestFrontierRepeatedExecReusesArena extends the arena-recycling contract
// to the frontier engines: sequential Execs against one Prepared artifact —
// frontier scratch included — draw a single arena.
func TestFrontierRepeatedExecReusesArena(t *testing.T) {
	g := allocGraph(t)
	for _, e := range frontierEngines() {
		t.Run(e.Name(), func(t *testing.T) {
			o := testOptions(4)
			o.Platform = platform.NewNative(o.Machine)
			prep, err := e.Prepare(g, o)
			if err != nil {
				t.Fatal(err)
			}
			const repeats = 5
			for i := 0; i < repeats; i++ {
				if _, err := e.Exec(prep, o); err != nil {
					t.Fatal(err)
				}
			}
			s := prep.ArenaStats()
			if s.Created != 1 || s.Reused != repeats-1 {
				t.Errorf("arena pool stats = %+v after %d sequential Execs, want Created=1 Reused=%d", s, repeats, repeats-1)
			}
		})
	}
}

// TestFrontierEnginesOnEmptyAndTinyGraphs mirrors the dense edge-case
// contract for the new engines.
func TestFrontierEnginesOnEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	for _, e := range frontierEngines() {
		if _, err := e.Run(empty, testOptions(3)); err == nil {
			t.Errorf("%s: expected error for empty graph", e.Name())
		}
	}
	b := graph.NewBuilder(1)
	b.AddEdge(0, 0)
	one := b.Build()
	for _, e := range frontierEngines() {
		res, err := e.Run(one, testOptions(3))
		if err != nil {
			t.Fatalf("%s on 1-vertex graph: %v", e.Name(), err)
		}
		if math.Abs(float64(res.Ranks[0])-1) > 1e-5 {
			t.Errorf("%s: single vertex rank = %f, want 1", e.Name(), res.Ranks[0])
		}
	}
}
