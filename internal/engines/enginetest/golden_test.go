package enginetest

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hipa/internal/engines/common"
	"hipa/internal/engines/hipa"
	"hipa/internal/graph"
	"hipa/internal/machine"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current implementation")

// goldenGraph builds a deterministic graph where every vertex has out-degree
// >= 1 (a ring plus LCG-derived extra edges). The no-dangling property is
// load-bearing: with dangling vertices, FCFS partition claiming groups the
// float64 dangling partials by claim order, which is goroutine-schedule-
// dependent — the ranks would then differ bit-wise between runs. Without
// dangling mass every engine is bit-deterministic.
func goldenGraph() *graph.Graph {
	const n = 2000
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%n))
		x := uint64(v)*2654435761 + 12345
		deg := int(x>>59) % 6
		for j := 0; j < deg; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			b.AddEdge(graph.VertexID(v), graph.VertexID(int(x>>33)%n))
		}
	}
	return b.Build()
}

// goldenEntry pins one engine run down to the bit level: an FNV-1a hash of
// the rank vector's float32 bits, the exact bits of the modelled seconds,
// and the modelled traffic and scheduler totals.
type goldenEntry struct {
	RanksFNV64       string `json:"ranks_fnv64"`
	ModelSecondsBits string `json:"modelled_seconds_bits"`
	LocalBytes       int64  `json:"local_bytes"`
	RemoteBytes      int64  `json:"remote_bytes"`
	LLCAccesses      int64  `json:"llc_accesses"`
	SchedCostNSBits  string `json:"sched_cost_ns_bits"`
	Spawned          int64  `json:"spawned"`
	Migrations       int64  `json:"migrations"`
}

func ranksFNV64(ranks []float32) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, r := range ranks {
		bits := math.Float32bits(r)
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(bits >> s))
			h *= prime64
		}
	}
	return fmt.Sprintf("%016x", h)
}

func goldenCases() []struct {
	key    string
	engine common.Engine
	opts   common.Options
} {
	base := func(preset func() *machine.Machine) common.Options {
		return common.Options{
			Machine:        machine.Scaled(preset(), 1024),
			Threads:        8,
			Iterations:     5,
			PartitionBytes: 256,
		}
	}
	var cases []struct {
		key    string
		engine common.Engine
		opts   common.Options
	}
	for _, preset := range []struct {
		name string
		mk   func() *machine.Machine
	}{
		{"skylake", machine.SkylakeSilver4210},
		{"haswell", machine.HaswellE52667},
	} {
		for _, e := range allEngines() {
			cases = append(cases, struct {
				key    string
				engine common.Engine
				opts   common.Options
			}{preset.name + "/" + e.Name(), e, base(preset.mk)})
		}
	}
	for _, abl := range []struct {
		name string
		mut  func(*common.Options)
	}{
		{"fcfs", func(o *common.Options) { o.FCFS = true }},
		{"no-compress", func(o *common.Options) { o.NoCompress = true }},
		{"vertex-balanced", func(o *common.Options) { o.VertexBalanced = true }},
	} {
		o := base(machine.SkylakeSilver4210)
		abl.mut(&o)
		cases = append(cases, struct {
			key    string
			engine common.Engine
			opts   common.Options
		}{"skylake/HiPa+" + abl.name, hipa.Engine{}, o})
	}
	return cases
}

// TestGoldenBitExactness is the refactoring safety net: for a fixed
// SchedSeed, every engine's Run must keep producing bit-identical rank
// vectors and identical modelled metrics across code changes. Regenerate
// with `go test ./internal/engines/enginetest -run Golden -update` ONLY when
// an intentional numerical change has been reviewed.
func TestGoldenBitExactness(t *testing.T) {
	g := goldenGraph()
	got := map[string]goldenEntry{}
	for _, c := range goldenCases() {
		res, err := c.engine.Run(g, c.opts)
		if err != nil {
			t.Fatalf("%s: %v", c.key, err)
		}
		got[c.key] = goldenEntry{
			RanksFNV64:       ranksFNV64(res.Ranks),
			ModelSecondsBits: fmt.Sprintf("%016x", math.Float64bits(res.Model.EstimatedSeconds)),
			LocalBytes:       res.Model.LocalBytes,
			RemoteBytes:      res.Model.RemoteBytes,
			LLCAccesses:      res.Model.LLCAccesses,
			SchedCostNSBits:  fmt.Sprintf("%016x", math.Float64bits(res.Sched.CostNS)),
			Spawned:          res.Sched.Spawned,
			Migrations:       res.Sched.Migrations,
		}
	}

	path := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to generate): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cases, run produced %d", len(want), len(got))
	}
	for key, w := range want {
		gi, ok := got[key]
		if !ok {
			t.Errorf("%s: case missing from run", key)
			continue
		}
		if gi != w {
			t.Errorf("%s: drifted from golden:\n got  %+v\n want %+v", key, gi, w)
		}
	}
}

// TestGoldenGraphHasNoDanglingVertices guards the property the golden
// fixture depends on (see goldenGraph).
func TestGoldenGraphHasNoDanglingVertices(t *testing.T) {
	g := goldenGraph()
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(graph.VertexID(v)) == 0 {
			t.Fatalf("vertex %d is dangling; the golden fixture must have none", v)
		}
	}
}
