// Serving-pattern contract: a Prepared artifact stays a correct, immutable
// Exec target while Advance patches its successor. hipaserve swaps
// artifacts under live traffic (a reload publishes the advanced artifact
// while queries still run on the old one), so Execs that span the swap must
// be unaffected — bit-identical to an Exec that ran with no Advance in
// sight. Run with -race this also proves the arena hand-off (Advance's
// MoveTo drains the old pool's free list while old-artifact Execs are still
// checking arenas in and out of it) is properly synchronized.
package enginetest

import (
	"sync"
	"testing"

	"hipa/internal/engines/common"
	"hipa/internal/engines/delta"
	"hipa/internal/engines/hipa"
)

// TestConcurrentExecDuringAdvance hammers one artifact with concurrent
// Execs while the main goroutine chains Advance calls off it and runs the
// advanced artifacts too. Every Exec on the old artifact must match the
// pre-hammer reference bit-for-bit, and every advanced artifact must stay
// runnable mid-swap.
func TestConcurrentExecDuringAdvance(t *testing.T) {
	o := dynamicOptions(3)
	g0, steps := dynamicReplay(t, 3, 64)
	for _, eng := range []common.Engine{hipa.Engine{}, delta.Engine{}} {
		t.Run(eng.Name(), func(t *testing.T) {
			prep0, err := eng.Prepare(g0, o)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			ref, err := eng.Exec(prep0, o)
			if err != nil {
				t.Fatalf("reference exec: %v", err)
			}

			const workers = 4
			stop := make(chan struct{})
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						res, err := eng.Exec(prep0, o)
						if err != nil {
							errs <- err
							return
						}
						for i := range res.Ranks {
							if res.Ranks[i] != ref.Ranks[i] {
								t.Errorf("old-artifact exec diverged at vertex %d: %v != %v", i, res.Ranks[i], ref.Ranks[i])
								return
							}
						}
					}
				}()
			}

			// The swap sequence the serving layer performs under load: patch
			// the artifact forward batch by batch, executing each advanced
			// version while the old artifact is still being hammered.
			prev := prep0
			for i, st := range steps {
				adv, err := prev.Advance(st.d, o)
				if err != nil {
					t.Fatalf("step %d: Advance: %v", i, err)
				}
				if _, err := eng.Exec(adv, o); err != nil {
					t.Fatalf("step %d: exec on advanced artifact: %v", i, err)
				}
				prev = adv
			}
			close(stop)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Errorf("concurrent exec: %v", err)
			}

			// The hammered artifact is still bit-stable after all swaps.
			res, err := eng.Exec(prep0, o)
			if err != nil {
				t.Fatalf("post-swap exec: %v", err)
			}
			for i := range res.Ranks {
				if res.Ranks[i] != ref.Ranks[i] {
					t.Fatalf("old artifact changed after Advance chain: vertex %d %v != %v", i, res.Ranks[i], ref.Ranks[i])
				}
			}
		})
	}
}
