package enginetest

import (
	"math"
	"testing"

	"hipa/internal/engines/bppr"
	"hipa/internal/engines/common"
	"hipa/internal/engines/hipa"
	"hipa/internal/graph"
	"hipa/internal/platform"
)

// referencePPR is the float64 ground truth for personalized PageRank with
// an arbitrary restart vector: rank'(v) = (1-d)·r(v) + d·(Σ_{u→v}
// rank(u)/outdeg(u) + S·r(v)), where r is uniform over the seeds (or over
// all vertices when seeds is empty) and S is the dangling mass — teleport
// and dangling redistribution both return to the restart vector.
func referencePPR(g *graph.Graph, seeds []graph.VertexID, iterations int, damping float64) []float64 {
	n := g.NumVertices()
	restart := make([]float64, n)
	if len(seeds) == 0 {
		for v := range restart {
			restart[v] = 1.0 / float64(n)
		}
	} else {
		w := 1.0 / float64(len(seeds))
		for _, s := range seeds {
			restart[s] += w
		}
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	copy(rank, restart)
	for it := 0; it < iterations; it++ {
		var dangling float64
		for v := 0; v < n; v++ {
			next[v] = 0
			if g.OutDegree(graph.VertexID(v)) == 0 {
				dangling += rank[v]
			}
		}
		for v := 0; v < n; v++ {
			if d := g.OutDegree(graph.VertexID(v)); d > 0 {
				contrib := rank[v] / float64(d)
				for _, dst := range g.OutNeighbors(graph.VertexID(v)) {
					next[dst] += contrib
				}
			}
		}
		for v := 0; v < n; v++ {
			next[v] = (1-damping)*restart[v] + damping*(next[v]+dangling*restart[v])
		}
		rank, next = next, rank
	}
	return rank
}

// danglingGraph is a small graph where half the vertices dangle, exercising
// the per-column dangling fold.
func danglingGraph() *graph.Graph {
	b := graph.NewBuilder(200)
	for v := 0; v < 100; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+100)) // 100..199 dangle
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%100))
	}
	return b.Build()
}

// pprSeeds derives a deterministic seed set for query q (LCG-scattered, two
// seeds per query) on an n-vertex graph.
func pprSeeds(q, n int) []graph.VertexID {
	x := uint64(q)*6364136223846793005 + 1442695040888963407
	a := graph.VertexID(int(x>>33) % n)
	x = x*6364136223846793005 + 1442695040888963407
	c := graph.VertexID(int(x>>33) % n)
	if c == a {
		c = graph.VertexID((int(c) + 1) % n)
	}
	return []graph.VertexID{a, c}
}

// TestBPPRUniformMatchesHiPaBitExact is the tentpole golden: a width-1
// uniform batch through the blocked kernel must reproduce the scalar HiPa
// engine bit for bit — same rank bits, same FNV fingerprint — on both
// machine presets.
func TestBPPRUniformMatchesHiPaBitExact(t *testing.T) {
	g := goldenGraph()
	for _, pm := range presetMachines() {
		t.Run(pm.name, func(t *testing.T) {
			o := testOptions(5)
			o.Machine = pm.m
			o.Threads = 8
			want, err := (hipa.Engine{}).Run(g, o)
			if err != nil {
				t.Fatal(err)
			}
			got, err := (bppr.Engine{}).Run(g, o)
			if err != nil {
				t.Fatal(err)
			}
			if d := common.MaxAbsDiff(want.Ranks, got.Ranks); d != 0 {
				t.Fatalf("B=1 batched ranks differ from scalar HiPa by %g; must be bit-identical", d)
			}
			if hw, hg := ranksFNV64(want.Ranks), ranksFNV64(got.Ranks); hw != hg {
				t.Fatalf("rank fingerprints differ: HiPa %s, B-PPR %s", hw, hg)
			}
		})
	}
}

// TestBPPRBatchSizeIndependence pins per-column batch invariance: each
// query's rank vector and executed-iteration count inside a mixed width-8
// batch must be bitwise the ones its solo width-1 run produces — including
// columns that retire mid-batch (the run is long enough, with the default
// tolerance, for the seeded columns to converge at different supersteps).
func TestBPPRBatchSizeIndependence(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"golden", goldenGraph()},
		{"dangling", danglingGraph()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.g.NumVertices()
			queries := []bppr.Query{
				{}, // uniform
				{Seeds: pprSeeds(1, n)},
				{Seeds: pprSeeds(2, n)},
				{Seeds: []graph.VertexID{0}},
				{Seeds: pprSeeds(4, n)},
				{}, // second uniform column
				{Seeds: pprSeeds(6, n)},
				{Seeds: pprSeeds(7, n)},
			}
			o := testOptions(80)
			o.Threads = 8
			prep, err := (bppr.Engine{}).Prepare(tc.g, o)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := bppr.ExecBatch(prep, o, queries)
			if err != nil {
				t.Fatal(err)
			}
			var retired int
			for q, query := range queries {
				solo, err := bppr.ExecBatch(prep, o, []bppr.Query{query})
				if err != nil {
					t.Fatalf("query %d solo: %v", q, err)
				}
				if d := common.MaxAbsDiff(batch.Ranks[q], solo.Ranks[0]); d != 0 {
					t.Errorf("query %d: batched ranks differ from solo by %g; columns must be batch-size independent", q, d)
				}
				if batch.Iterations[q] != solo.Supersteps {
					t.Errorf("query %d: executed %d iterations in batch, %d solo", q, batch.Iterations[q], solo.Supersteps)
				}
				if batch.Iterations[q] < batch.Supersteps {
					retired++
				}
			}
			if retired == 0 {
				t.Errorf("no column retired before the batch finished (%d supersteps) — the fixture no longer exercises per-column convergence", batch.Supersteps)
			}
		})
	}
}

// TestBPPRWorkerCountDeterminism: identical bits at any thread count, also
// with dangling mass in flight (all folds are serial in global
// partition/column order).
func TestBPPRWorkerCountDeterminism(t *testing.T) {
	g := danglingGraph()
	n := g.NumVertices()
	queries := []bppr.Query{{}, {Seeds: pprSeeds(1, n)}, {Seeds: pprSeeds(2, n)}, {Seeds: []graph.VertexID{7}}}
	var base *bppr.BatchResult
	var baseThreads int
	for _, threads := range []int{2, 8, 40} {
		o := testOptions(20)
		o.Threads = threads
		prep, err := (bppr.Engine{}).Prepare(g, o)
		if err != nil {
			t.Fatal(err)
		}
		br, err := bppr.ExecBatch(prep, o, queries)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if base == nil {
			base, baseThreads = br, threads
			continue
		}
		for q := range queries {
			if d := common.MaxAbsDiff(base.Ranks[q], br.Ranks[q]); d != 0 {
				t.Errorf("query %d: ranks differ by %g between %d and %d threads", q, d, baseThreads, threads)
			}
		}
	}
}

// TestBPPRBatchZeroAllocsPerIteration extends the steady-state allocation
// gate to the batched path at width 16: the differential allocation count
// across extra supersteps must be zero (stack-resident per-partition
// scratch, arena-backed blocks, stored kernel method values).
func TestBPPRBatchZeroAllocsPerIteration(t *testing.T) {
	const iterShort, iterLong = 3, 13
	g := allocGraph(t)
	n := g.NumVertices()
	queries := make([]bppr.Query, 16)
	for q := 1; q < len(queries); q++ {
		queries[q] = bppr.Query{Seeds: pprSeeds(q, n)}
	}
	o := testOptions(iterShort)
	o.Platform = platform.NewNative(o.Machine)
	o.Tolerance = 1e-30 // keep every column active so supersteps stay exact
	prep, err := (bppr.Engine{}).Prepare(g, o)
	if err != nil {
		t.Fatal(err)
	}
	execN := func(iters int) {
		oo := o
		oo.Iterations = iters
		if _, err := bppr.ExecBatch(prep, oo, queries); err != nil {
			t.Fatal(err)
		}
	}
	execN(iterLong)
	short := testing.AllocsPerRun(5, func() { execN(iterShort) })
	long := testing.AllocsPerRun(5, func() { execN(iterLong) })
	if extra := long - short; extra != 0 {
		t.Errorf("%g extra allocs across %d extra supersteps (%g/iteration); the batched Exec must not allocate per iteration",
			extra, iterLong-iterShort, extra/float64(iterLong-iterShort))
	}
}

// TestBPPRSeededMatchesReference checks the personalized columns against
// the float64 restart-vector reference, on a dangling graph so the
// seed-directed dangling redistribution is exercised too.
func TestBPPRSeededMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"golden", goldenGraph()},
		{"dangling", danglingGraph()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.g.NumVertices()
			const iters = 25
			queries := []bppr.Query{{}, {Seeds: pprSeeds(3, n)}, {Seeds: []graph.VertexID{1, 5, 9}}}
			o := testOptions(iters)
			o.Tolerance = 1e-30 // run all iters so the reference iteration counts line up
			prep, err := (bppr.Engine{}).Prepare(tc.g, o)
			if err != nil {
				t.Fatal(err)
			}
			br, err := bppr.ExecBatch(prep, o, queries)
			if err != nil {
				t.Fatal(err)
			}
			for q, query := range queries {
				ref := referencePPR(tc.g, query.Seeds, iters, common.DefaultDamping)
				if got := common.RankSum(br.Ranks[q]); math.Abs(got-1) > 1e-3 {
					t.Errorf("query %d: rank sum = %f, want 1", q, got)
				}
				var worst float64
				for v := range ref {
					d := math.Abs(ref[v] - float64(br.Ranks[q][v]))
					scale := ref[v]
					if scale < 1e-12 {
						scale = 1e-12
					}
					if d/scale > worst {
						worst = d / scale
					}
				}
				if worst > 1e-3 {
					t.Errorf("query %d: worst relative error vs float64 reference = %g", q, worst)
				}
			}
		})
	}
}

// TestBPPRModeledAmortization sanity-checks the traffic story the bench
// gate enforces at paper scale: on the modelled platform, bytes-moved-per-
// query at width 16 must come in well under the width-1 cost (the full ≥4×
// gate, on the harness datasets, lives in the bench baseline).
func TestBPPRModeledAmortization(t *testing.T) {
	g := allocGraph(t)
	n := g.NumVertices()
	o := testOptions(10)
	o.Tolerance = 1e-30 // equal supersteps at both widths
	prep, err := (bppr.Engine{}).Prepare(g, o)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := bppr.ExecBatch(prep, o, []bppr.Query{{Seeds: pprSeeds(0, n)}})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]bppr.Query, 16)
	for q := range queries {
		queries[q] = bppr.Query{Seeds: pprSeeds(q, n)}
	}
	batch, err := bppr.ExecBatch(prep, o, queries)
	if err != nil {
		t.Fatal(err)
	}
	if solo.BytesPerQuery <= 0 || batch.BytesPerQuery <= 0 {
		t.Fatalf("modelled bytes/query not populated: solo %g, batch %g", solo.BytesPerQuery, batch.BytesPerQuery)
	}
	if ratio := solo.BytesPerQuery / batch.BytesPerQuery; ratio < 2 {
		t.Errorf("bytes/query at B=16 only %.2fx lower than B=1 (want >= 2x on this small graph; the bench gate demands 4x at paper scale)", ratio)
	}
}

// TestBPPRValidation covers the engine's request validation: out-of-range
// and duplicate seeds, empty and oversized batches, FCFS/Warm rejection.
func TestBPPRValidation(t *testing.T) {
	g := danglingGraph()
	o := testOptions(3)
	prep, err := (bppr.Engine{}).Prepare(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bppr.ExecBatch(prep, o, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := bppr.ExecBatch(prep, o, make([]bppr.Query, bppr.MaxBatch+1)); err == nil {
		t.Error("oversized batch accepted")
	}
	if _, err := bppr.ExecBatch(prep, o, []bppr.Query{{Seeds: []graph.VertexID{9999}}}); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if _, err := bppr.ExecBatch(prep, o, []bppr.Query{{Seeds: []graph.VertexID{3, 3}}}); err == nil {
		t.Error("duplicate seed accepted")
	}
	bad := o
	bad.FCFS = true
	if _, err := bppr.ExecBatch(prep, bad, []bppr.Query{{}}); err == nil {
		t.Error("FCFS accepted")
	}
	warm := o
	warm.Warm = &common.WarmStart{Ranks: make([]float32, g.NumVertices())}
	if _, err := bppr.ExecBatch(prep, warm, []bppr.Query{{}}); err == nil {
		t.Error("warm start accepted")
	}
}
