package enginetest

import (
	"testing"

	"hipa/internal/engines/common"
	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/platform"
)

// allocGraph is a small dangling-free graph shared by the allocation
// regression tests; one package-level build keeps the tests fast.
func allocGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 1200, Edges: 15000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestExecZeroAllocsPerIteration pins the tentpole property of the Exec hot
// path: once the scratch arena and worker pool exist, each additional
// superstep performs zero heap allocations, for every engine on both
// machine presets. The measurement is differential — allocations of an Exec
// at iterLong minus one at iterShort — so the per-Exec fixed cost (pool
// spawn, kernel/Result construction, the one rank copy-out) cancels and any
// per-iteration allocation shows up multiplied by iterLong-iterShort.
//
// The Native platform is used because Modeled's scheduler simulation
// intentionally allocates per simulated region (proportional to
// iterations); the real execution path shared by both platforms is what
// must stay allocation-free.
func TestExecZeroAllocsPerIteration(t *testing.T) {
	const iterShort, iterLong = 3, 13
	g := allocGraph(t)
	for _, pm := range presetMachines() {
		for _, e := range allEngines() {
			t.Run(pm.name+"/"+e.Name(), func(t *testing.T) {
				o := testOptions(iterShort)
				o.Machine = pm.m
				o.Platform = platform.NewNative(pm.m)
				prep, err := e.Prepare(g, o)
				if err != nil {
					t.Fatal(err)
				}
				execN := func(iters int) {
					oo := o
					oo.Iterations = iters
					if _, err := e.Exec(prep, oo); err != nil {
						t.Fatal(err)
					}
				}
				// Warm the arena pool and the runtime's goroutine free list so
				// the measured runs reuse instead of creating.
				execN(iterLong)
				short := testing.AllocsPerRun(5, func() { execN(iterShort) })
				long := testing.AllocsPerRun(5, func() { execN(iterLong) })
				if extra := long - short; extra != 0 {
					t.Errorf("%g extra allocs across %d extra iterations (%g/iteration); steady-state Exec must not allocate",
						extra, iterLong-iterShort, extra/float64(iterLong-iterShort))
				}
			})
		}
	}
}

// TestRepeatedExecReusesArena pins the cross-Exec half of the memory model:
// sequential Execs against one Prepared artifact recycle a single scratch
// arena instead of growing the pool.
func TestRepeatedExecReusesArena(t *testing.T) {
	g := allocGraph(t)
	for _, e := range allEngines() {
		t.Run(e.Name(), func(t *testing.T) {
			o := testOptions(4)
			o.Platform = platform.NewNative(o.Machine)
			prep, err := e.Prepare(g, o)
			if err != nil {
				t.Fatal(err)
			}
			const repeats = 5
			for i := 0; i < repeats; i++ {
				if _, err := e.Exec(prep, o); err != nil {
					t.Fatal(err)
				}
			}
			s := prep.ArenaStats()
			if s.Created != 1 || s.Reused != repeats-1 {
				t.Errorf("arena pool stats = %+v after %d sequential Execs, want Created=1 Reused=%d", s, repeats, repeats-1)
			}
		})
	}
}

// TestConcurrentExecArenasAreDistinct pins the other half: concurrent Execs
// each draw their own arena (no sharing of mutable state), and the pool's
// peak size equals the peak concurrency, not the total Exec count.
func TestConcurrentExecArenasAreDistinct(t *testing.T) {
	g := allocGraph(t)
	e := allEngines()[0]
	o := testOptions(4)
	o.Platform = platform.NewNative(o.Machine)
	prep, err := e.Prepare(g, o)
	if err != nil {
		t.Fatal(err)
	}
	const conc = 4
	errs := make(chan error, conc)
	for i := 0; i < conc; i++ {
		go func() {
			_, err := e.Exec(prep, o)
			errs <- err
		}()
	}
	for i := 0; i < conc; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	s := prep.ArenaStats()
	if s.Created > conc {
		t.Errorf("pool created %d arenas for %d concurrent Execs", s.Created, conc)
	}
	if s.Created+s.Reused != conc {
		t.Errorf("stats = %+v, want Created+Reused = %d", s, conc)
	}
	// After all Execs returned, the pool serves the next run warm.
	if _, err := e.Exec(prep, o); err != nil {
		t.Fatal(err)
	}
	if s2 := prep.ArenaStats(); s2.Created != s.Created {
		t.Errorf("sequential Exec after drain created a new arena: %+v -> %+v", s, s2)
	}
}

// TestCommonExecMatchesModeledBits guards the Native-platform alloc tests'
// blind spot: the kernels must produce the same bits under both platforms
// (the platform only changes scheduling simulation, never arithmetic).
func TestCommonExecMatchesModeledBits(t *testing.T) {
	g := allocGraph(t)
	for _, e := range allEngines() {
		t.Run(e.Name(), func(t *testing.T) {
			o := testOptions(4)
			native := o
			native.Platform = platform.NewNative(o.Machine)
			rm, err := e.Run(g, o)
			if err != nil {
				t.Fatal(err)
			}
			rn, err := e.Run(g, native)
			if err != nil {
				t.Fatal(err)
			}
			if d := common.MaxAbsDiff(rm.Ranks, rn.Ranks); d != 0 {
				t.Errorf("native and modeled ranks differ by %g; platforms must not change arithmetic", d)
			}
		})
	}
}
