// Package enginetest cross-validates the five PageRank engines: identical
// rank vectors (within float32 tolerance) against the float64 reference, on
// every catalog dataset shape, across thread counts, partition sizes, and
// option combinations.
package enginetest

import (
	"math"
	"testing"

	"hipa/internal/engines/common"
	"hipa/internal/engines/gpop"
	"hipa/internal/engines/hipa"
	"hipa/internal/engines/polymer"
	"hipa/internal/engines/ppr"
	"hipa/internal/engines/vpr"
	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/machine"
)

func allEngines() []common.Engine {
	return []common.Engine{hipa.Engine{}, ppr.Engine{}, vpr.Engine{}, gpop.Engine{}, polymer.Engine{}}
}

// testOptions returns small, fast options on a scaled machine.
func testOptions(iters int) common.Options {
	return common.Options{
		Machine:        machine.Scaled(machine.SkylakeSilver4210(), 1024),
		Iterations:     iters,
		PartitionBytes: 256, // 64 vertices per partition
	}
}

// presetMachines are the modelled microarchitectures the cross-engine
// contracts run on (scaled so tests stay fast).
func presetMachines() []struct {
	name string
	m    *machine.Machine
} {
	return []struct {
		name string
		m    *machine.Machine
	}{
		{"skylake", machine.Scaled(machine.SkylakeSilver4210(), 1024)},
		{"haswell", machine.Scaled(machine.HaswellE52667(), 1024)},
	}
}

func refAsFloat32Diff(t *testing.T, g *graph.Graph, got []float32, iters int, damping float64) float64 {
	t.Helper()
	ref := common.ReferencePageRank(g, iters, damping)
	var worst float64
	for i := range ref {
		d := math.Abs(ref[i] - float64(got[i]))
		// Relative to the rank magnitude, floored at 1/n scale.
		scale := ref[i]
		if scale < 1e-12 {
			scale = 1e-12
		}
		if d/scale > worst {
			worst = d / scale
		}
	}
	return worst
}

func TestAllEnginesMatchReference(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 3000, Edges: 40000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions(10)
	for _, e := range allEngines() {
		res, err := e.Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Engine != e.Name() {
			t.Errorf("%s: result engine = %q", e.Name(), res.Engine)
		}
		if got := common.RankSum(res.Ranks); math.Abs(got-1) > 1e-3 {
			t.Errorf("%s: rank sum = %f, want 1", e.Name(), got)
		}
		if worst := refAsFloat32Diff(t, g, res.Ranks, 10, common.DefaultDamping); worst > 1e-3 {
			t.Errorf("%s: worst relative error vs reference = %g", e.Name(), worst)
		}
		if res.Model == nil || res.Model.EstimatedSeconds <= 0 {
			t.Errorf("%s: missing model estimate", e.Name())
		}
		if res.WallSeconds <= 0 {
			t.Errorf("%s: wall time not measured", e.Name())
		}
	}
}

func TestEnginesAgreePairwise(t *testing.T) {
	g, err := gen.Uniform(2000, 24000, 33)
	if err != nil {
		t.Fatal(err)
	}
	for _, pm := range presetMachines() {
		t.Run(pm.name, func(t *testing.T) {
			o := testOptions(8)
			o.Machine = pm.m
			var first []float32
			var firstName string
			for _, e := range allEngines() {
				res, err := e.Run(g, o)
				if err != nil {
					t.Fatalf("%s: %v", e.Name(), err)
				}
				if first == nil {
					first, firstName = res.Ranks, e.Name()
					continue
				}
				if d := common.MaxAbsDiff(first, res.Ranks); d > 1e-6 {
					t.Errorf("%s vs %s: max abs diff %g", firstName, e.Name(), d)
				}
			}
		})
	}
}

func TestEnginesWithDanglingVertices(t *testing.T) {
	// Half the vertices dangle; dangling-mass redistribution must agree.
	b := graph.NewBuilder(200)
	for v := 0; v < 100; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+100)) // 100..199 dangle
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%100))
	}
	g := b.Build()
	o := testOptions(15)
	for _, e := range allEngines() {
		res, err := e.Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if got := common.RankSum(res.Ranks); math.Abs(got-1) > 1e-3 {
			t.Errorf("%s: rank sum = %f with dangling vertices", e.Name(), got)
		}
		if worst := refAsFloat32Diff(t, g, res.Ranks, 15, common.DefaultDamping); worst > 1e-3 {
			t.Errorf("%s: worst relative error %g", e.Name(), worst)
		}
	}
}

func TestEnginesAcrossThreadCounts(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 1500, Edges: 15000, OutAlpha: 2.2, InAlpha: 0.8, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	ref := common.ReferencePageRank(g, 6, common.DefaultDamping)
	_ = ref
	for _, threads := range []int{2, 4, 8, 16, 20, 32, 40} {
		o := testOptions(6)
		o.Threads = threads
		for _, e := range allEngines() {
			res, err := e.Run(g, o)
			if err != nil {
				t.Fatalf("%s @ %d threads: %v", e.Name(), threads, err)
			}
			if worst := refAsFloat32Diff(t, g, res.Ranks, 6, common.DefaultDamping); worst > 1e-3 {
				t.Errorf("%s @ %d threads: worst relative error %g", e.Name(), threads, worst)
			}
		}
	}
}

func TestEnginesAcrossPartitionSizes(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 2000, Edges: 20000, OutAlpha: 2.0, InAlpha: 1.0, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	for _, pb := range []int{64, 128, 512, 2048, 16384} {
		o := testOptions(5)
		o.PartitionBytes = pb
		for _, e := range []common.Engine{hipa.Engine{}, ppr.Engine{}, gpop.Engine{}} {
			res, err := e.Run(g, o)
			if err != nil {
				t.Fatalf("%s @ %dB: %v", e.Name(), pb, err)
			}
			if worst := refAsFloat32Diff(t, g, res.Ranks, 5, common.DefaultDamping); worst > 1e-3 {
				t.Errorf("%s @ %dB partitions: worst relative error %g", e.Name(), pb, worst)
			}
		}
	}
}

func TestHiPaAblations(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 2000, Edges: 20000, OutAlpha: 2.0, InAlpha: 1.0, Seed: 66})
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		mut  func(*common.Options)
	}{
		{"no-compress", func(o *common.Options) { o.NoCompress = true }},
		{"vertex-balanced", func(o *common.Options) { o.VertexBalanced = true }},
		{"fcfs", func(o *common.Options) { o.FCFS = true }},
	} {
		o := testOptions(8)
		variant.mut(&o)
		res, err := (hipa.Engine{}).Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", variant.name, err)
		}
		if worst := refAsFloat32Diff(t, g, res.Ranks, 8, common.DefaultDamping); worst > 1e-3 {
			t.Errorf("ablation %s: worst relative error %g (correctness must be invariant)", variant.name, worst)
		}
	}
}

// TestGoParallelismRankInvariant: capping real goroutines must not change
// results — every engine (including the FCFS claimers, where the cap used
// to be silently dropped) produces bit-identical ranks at GoParallelism 1.
func TestGoParallelismRankInvariant(t *testing.T) {
	g, err := gen.Uniform(1500, 18000, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range allEngines() {
		o := testOptions(6)
		base, err := e.Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		o.GoParallelism = 1
		capped, err := e.Run(g, o)
		if err != nil {
			t.Fatalf("%s capped: %v", e.Name(), err)
		}
		if d := common.MaxAbsDiff(base.Ranks, capped.Ranks); d != 0 {
			t.Errorf("%s: GoParallelism=1 changed ranks by %g (must be bit-identical)", e.Name(), d)
		}
		if capped.Model.EstimatedSeconds != base.Model.EstimatedSeconds {
			t.Errorf("%s: GoParallelism changed the modelled estimate (%g vs %g) — it is a host knob, not a simulated one",
				e.Name(), capped.Model.EstimatedSeconds, base.Model.EstimatedSeconds)
		}
	}
}

func TestEnginesOnEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	for _, e := range allEngines() {
		if _, err := e.Run(empty, testOptions(3)); err == nil {
			t.Errorf("%s: expected error for empty graph", e.Name())
		}
	}
	// Single vertex with a self loop.
	b := graph.NewBuilder(1)
	b.AddEdge(0, 0)
	one := b.Build()
	for _, e := range allEngines() {
		res, err := e.Run(one, testOptions(3))
		if err != nil {
			t.Fatalf("%s on 1-vertex graph: %v", e.Name(), err)
		}
		if math.Abs(float64(res.Ranks[0])-1) > 1e-5 {
			t.Errorf("%s: single vertex rank = %f, want 1", e.Name(), res.Ranks[0])
		}
	}
}

func TestHiPaMigrationBound(t *testing.T) {
	// Algorithm 2's promise: migrations <= thread count; spawns == threads.
	g, err := gen.Uniform(1000, 8000, 7)
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions(10)
	o.Threads = 40
	res, err := (hipa.Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sched.Spawned != 40 {
		t.Errorf("HiPa spawned %d threads, want 40 (persistent)", res.Sched.Spawned)
	}
	if res.Sched.Migrations > 40 {
		t.Errorf("HiPa migrations = %d, must be <= 40", res.Sched.Migrations)
	}
	// Oblivious baseline spawns a pool per phase.
	resP, err := (ppr.Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if resP.Sched.Spawned != int64(40*10*2) {
		t.Errorf("p-PR spawned %d, want %d (Algorithm 1)", resP.Sched.Spawned, 40*10*2)
	}
}

func TestEngineDefaults(t *testing.T) {
	g, err := gen.Uniform(500, 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Paper defaults: HiPa/v-PR/Polymer use 40 threads, p-PR/GPOP use 20.
	o := common.Options{Machine: machine.Scaled(machine.SkylakeSilver4210(), 1024), Iterations: 2, PartitionBytes: 256}
	for _, tc := range []struct {
		e    common.Engine
		want int
	}{
		{hipa.Engine{}, 40}, {vpr.Engine{}, 40}, {polymer.Engine{}, 40},
		{ppr.Engine{}, 20}, {gpop.Engine{}, 20},
	} {
		res, err := tc.e.Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", tc.e.Name(), err)
		}
		if res.Threads != tc.want {
			t.Errorf("%s default threads = %d, want %d", tc.e.Name(), res.Threads, tc.want)
		}
	}
}
