package enginetest

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"hipa/internal/engines/common"
	"hipa/internal/engines/gpop"
	"hipa/internal/engines/hipa"
	"hipa/internal/engines/polymer"
	"hipa/internal/engines/ppr"
	"hipa/internal/engines/vpr"
	"hipa/internal/gen"
	"hipa/internal/obs"
)

// spawnModel classifies an engine's simulated thread lifecycle (see
// internal/sched): Algorithm 2 spawns T persistent pinned threads;
// Algorithm 1 spawns a fresh pool per phase (2 per iteration), either
// unbound (p-PR, v-PR, GPOP) or node-bound (Polymer).
type spawnModel int

const (
	pinnedOnce    spawnModel = iota // Algorithm 2
	perPhase                        // Algorithm 1, unbound
	perPhaseBound                   // Algorithm 1, bound to nodes
)

// TestResultInvariants checks, for every engine, the Result contract: rank
// sum ≈ 1, Iterations/Threads echoing the options, and scheduler stats
// consistent with the engine's spawn model.
func TestResultInvariants(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 2000, Edges: 24000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	const threads, iters = 8, 7
	for _, tc := range []struct {
		e     common.Engine
		model spawnModel
	}{
		{hipa.Engine{}, pinnedOnce},
		{ppr.Engine{}, perPhase},
		{vpr.Engine{}, perPhase},
		{gpop.Engine{}, perPhase},
		{polymer.Engine{}, perPhaseBound},
	} {
		o := testOptions(iters)
		o.Threads = threads
		res, err := tc.e.Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", tc.e.Name(), err)
		}
		if got := common.RankSum(res.Ranks); math.Abs(got-1) > 1e-3 {
			t.Errorf("%s: rank sum = %f, want ≈1", tc.e.Name(), got)
		}
		if res.Iterations != iters {
			t.Errorf("%s: Iterations = %d, want %d", tc.e.Name(), res.Iterations, iters)
		}
		if res.Threads != threads {
			t.Errorf("%s: Threads = %d, want %d", tc.e.Name(), res.Threads, threads)
		}
		s := res.Sched
		switch tc.model {
		case pinnedOnce:
			// Algorithm 2: T persistent threads, at most one migration each
			// (the pin at spawn), no per-phase respawning.
			if s.Spawned != threads {
				t.Errorf("%s: spawned %d, want %d (persistent threads)", tc.e.Name(), s.Spawned, threads)
			}
			if s.Migrations > threads {
				t.Errorf("%s: migrations %d > thread count %d", tc.e.Name(), s.Migrations, threads)
			}
		case perPhase:
			// Algorithm 1 unbound: a fresh pool per phase, 2 phases per
			// iteration; never bound, so never migrated.
			if want := int64(threads * iters * 2); s.Spawned != want {
				t.Errorf("%s: spawned %d, want %d (pool per phase)", tc.e.Name(), s.Spawned, want)
			}
			if s.Bindings != 0 || s.Migrations != 0 {
				t.Errorf("%s: bindings=%d migrations=%d, want 0/0 (unbound threads cannot migrate)",
					tc.e.Name(), s.Bindings, s.Migrations)
			}
		case perPhaseBound:
			// Polymer: Algorithm-1 pools with node binding — every spawn is
			// bound, and wrong-node spawns migrate (the §3.3.2 storm).
			if want := int64(threads * iters * 2); s.Spawned != want {
				t.Errorf("%s: spawned %d, want %d (pool per phase)", tc.e.Name(), s.Spawned, want)
			}
			if s.Bindings != s.Spawned {
				t.Errorf("%s: bindings=%d, want %d (every spawned thread bound)", tc.e.Name(), s.Bindings, s.Spawned)
			}
			if s.Migrations == 0 || s.Migrations > s.Bindings {
				t.Errorf("%s: migrations=%d, want in (0, %d] (binding storm)", tc.e.Name(), s.Migrations, s.Bindings)
			}
		}
		if res.Iters != nil {
			t.Errorf("%s: Result.Iters populated without a recorder", tc.e.Name())
		}
	}
}

// TestEngineTelemetry runs every engine with a Recorder attached and checks
// the observability contract: per-iteration stats for every iteration,
// model-consistent traffic annotation, pipeline spans on the trace, and a
// trace export that parses.
func TestEngineTelemetry(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 2000, Edges: 24000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 6
	for _, e := range allEngines() {
		rec := obs.NewRecorder()
		o := testOptions(iters)
		o.Threads = 8
		o.Obs = rec
		res, err := e.Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}

		// Per-iteration stats: one record per iteration, positive wall
		// time, decreasing residual trend, full traffic annotation.
		if len(res.Iters) != iters {
			t.Fatalf("%s: got %d IterationStats, want %d", e.Name(), len(res.Iters), iters)
		}
		var localSum, remoteSum int64
		for i, it := range res.Iters {
			if it.Iter != i {
				t.Errorf("%s: iteration %d has Iter=%d", e.Name(), i, it.Iter)
			}
			if it.WallSeconds <= 0 {
				t.Errorf("%s: iteration %d wall = %g", e.Name(), i, it.WallSeconds)
			}
			if it.Residual <= 0 {
				t.Errorf("%s: iteration %d residual = %g", e.Name(), i, it.Residual)
			}
			if it.LocalAccesses <= 0 {
				t.Errorf("%s: iteration %d local accesses = %d", e.Name(), i, it.LocalAccesses)
			}
			localSum += it.LocalBytes
			remoteSum += it.RemoteBytes
		}
		if res.Iters[iters-1].Residual >= res.Iters[0].Residual {
			t.Errorf("%s: residual did not decrease: first %g, last %g",
				e.Name(), res.Iters[0].Residual, res.Iters[iters-1].Residual)
		}
		// The per-iteration annotation partitions the model totals (up to
		// integer division remainders < iters bytes).
		if res.Model != nil {
			if diff := res.Model.LocalBytes - localSum; diff < 0 || diff >= iters {
				t.Errorf("%s: per-iteration local bytes sum %d vs model %d", e.Name(), localSum, res.Model.LocalBytes)
			}
			if diff := res.Model.RemoteBytes - remoteSum; diff < 0 || diff >= iters {
				t.Errorf("%s: per-iteration remote bytes sum %d vs model %d", e.Name(), remoteSum, res.Model.RemoteBytes)
			}
		}
		var migSum int64
		for _, it := range res.Iters {
			migSum += it.SchedMigrations
		}
		if migSum != res.Sched.Migrations {
			t.Errorf("%s: per-iteration migrations sum %d != sched total %d", e.Name(), migSum, res.Sched.Migrations)
		}

		// Collector: the standard counters and gauges must be present.
		counters := rec.C().Counters()
		for _, name := range []string{"graph.vertices", "graph.edges", "run.iterations", "run.threads", "sched.spawns"} {
			if _, ok := counters[name]; !ok {
				t.Errorf("%s: counter %q missing", e.Name(), name)
			}
		}
		if rs := rec.C().Gauges()["rank_sum"]; math.Abs(rs-1) > 1e-3 {
			t.Errorf("%s: rank_sum gauge = %g", e.Name(), rs)
		}
		phases := rec.C().Phases()
		if phases[common.PhasePrep] <= 0 || phases[common.PhaseRun] <= 0 {
			t.Errorf("%s: phase timers = %v, want prep and iterations > 0", e.Name(), phases)
		}

		// Trace: scatter and gather spans for every iteration on worker
		// lanes, and the export parses as trace_event JSON.
		var buf bytes.Buffer
		if err := rec.T().WriteJSON(&buf); err != nil {
			t.Fatalf("%s: trace export: %v", e.Name(), err)
		}
		var tf struct {
			TraceEvents []struct {
				Name string `json:"name"`
				Ph   string `json:"ph"`
				TID  int    `json:"tid"`
				Args struct {
					Iter *int64 `json:"iter"`
				} `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
			t.Fatalf("%s: trace is not valid JSON: %v", e.Name(), err)
		}
		scatterIters := map[int64]bool{}
		lanes := map[int]bool{}
		var gathers, preps int
		for _, ev := range tf.TraceEvents {
			switch {
			case ev.Ph == "M":
				lanes[ev.TID] = true
			case ev.Name == common.SpanScatter && ev.Args.Iter != nil:
				scatterIters[*ev.Args.Iter] = true
			case ev.Name == common.SpanGather:
				gathers++
			case ev.Name == common.SpanPrepPartition || ev.Name == common.SpanPrepLayout || ev.Name == common.SpanPrepIndex:
				preps++
			}
		}
		if len(scatterIters) != iters {
			t.Errorf("%s: scatter spans cover %d iterations, want %d", e.Name(), len(scatterIters), iters)
		}
		if gathers == 0 || preps == 0 {
			t.Errorf("%s: gather spans = %d, prep spans = %d, want both > 0", e.Name(), gathers, preps)
		}
		if len(lanes) != res.Threads+1 {
			t.Errorf("%s: %d trace lanes, want %d workers + runner", e.Name(), len(lanes), res.Threads+1)
		}
	}
}

// TestTelemetryWithTolerance checks that early termination and telemetry
// agree: the recorded iterations match the performed count and the last
// residual is below the tolerance.
func TestTelemetryWithTolerance(t *testing.T) {
	g, err := gen.Uniform(1500, 18000, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range allEngines() {
		rec := obs.NewRecorder()
		o := testOptions(50)
		o.Threads = 4
		o.Tolerance = 1e-4
		o.Obs = rec
		res, err := e.Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Iterations >= 50 {
			t.Errorf("%s: no early termination (%d iterations)", e.Name(), res.Iterations)
		}
		if len(res.Iters) != res.Iterations {
			t.Errorf("%s: %d IterationStats for %d iterations", e.Name(), len(res.Iters), res.Iterations)
		}
		last := res.Iters[len(res.Iters)-1]
		if last.Residual >= 1e-4 {
			t.Errorf("%s: final residual %g not below tolerance", e.Name(), last.Residual)
		}
	}
}
