// Dynamic-graph contracts: Prepared.Advance must be indistinguishable from a
// cold Prepare of the mutated graph, and the warm-start execution paths
// (HiPa dense resume, Delta-PR sparse delta seeding) must land within the
// frontier engines' quality bound of a cold run at every version of a
// mutation replay, at several worker counts.
package enginetest

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"hipa/internal/engines/common"
	"hipa/internal/engines/delta"
	"hipa/internal/engines/ec"
	"hipa/internal/engines/gpop"
	"hipa/internal/engines/hipa"
	"hipa/internal/engines/nb"
	"hipa/internal/engines/polymer"
	"hipa/internal/engines/ppr"
	"hipa/internal/engines/vpr"
	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/machine"
)

// dynamicOptions mirrors the frontier golden options with an explicit worker
// count for both prep and exec, so the Advance/warm differential runs at
// 1, 3, and 8 workers.
func dynamicOptions(workers int) common.Options {
	return common.Options{
		Machine:         machine.Scaled(machine.SkylakeSilver4210(), 1024),
		Threads:         workers,
		PrepParallelism: workers,
		Iterations:      frontierBudget,
		Tolerance:       frontierTol,
		PartitionBytes:  256,
	}
}

// dynamicStep is one version transition of a mutation replay: the delta from
// the previous version and the materialised graph it leads to.
type dynamicStep struct {
	d *graph.Delta
	g *graph.Graph
}

// dynamicReplay applies deterministic mutation batches to a versioned copy
// of the frontier graph and returns the base graph plus one step per batch.
// The same (batches, batchSize) arguments always produce the same steps, so
// worker-count subtests replay identical histories.
func dynamicReplay(t *testing.T, batches, batchSize int) (*graph.Graph, []dynamicStep) {
	t.Helper()
	g0 := frontierGraph()
	vg := graph.NewVersioned(g0)
	stream, err := gen.NewMutationStream(vg, 42, batchSize)
	if err != nil {
		t.Fatalf("mutation stream: %v", err)
	}
	prev := vg.Version()
	_, versions, err := stream.Batches(batches)
	if err != nil {
		t.Fatalf("applying batches: %v", err)
	}
	steps := make([]dynamicStep, 0, batches)
	for _, ver := range versions {
		d, err := vg.DeltaBetween(prev, ver)
		if err != nil {
			t.Fatalf("delta %d→%d: %v", prev, ver, err)
		}
		steps = append(steps, dynamicStep{d: d, g: d.Next})
		prev = ver
	}
	return g0, steps
}

func maxAbsDiff32(a, b []float32) float64 {
	var worst float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestAdvanceEqualsColdPrepare is the incremental-prep correctness contract:
// patching an artifact forward through a chain of small deltas must yield
// payloads (hierarchy, layout, 1/outdeg) and prep key bit-identical to a
// cold Prepare of each mutated graph, for both artifact kinds that Advance
// patches (partition-centric via HiPa, and Delta-PR which shares the same
// artifact shape).
func TestAdvanceEqualsColdPrepare(t *testing.T) {
	o := dynamicOptions(3)
	g0, steps := dynamicReplay(t, 4, 64)
	for _, eng := range []common.Engine{hipa.Engine{}, delta.Engine{}} {
		t.Run(eng.Name(), func(t *testing.T) {
			prev, err := eng.Prepare(g0, o)
			if err != nil {
				t.Fatalf("cold prepare of base graph: %v", err)
			}
			for i, st := range steps {
				adv, err := prev.Advance(st.d, o)
				if err != nil {
					t.Fatalf("step %d: Advance: %v", i, err)
				}
				if !adv.Incremental {
					t.Fatalf("step %d: Advance took the cold-rebuild fallback on a small batch", i)
				}
				cold, err := eng.Prepare(st.g, o)
				if err != nil {
					t.Fatalf("step %d: cold prepare: %v", i, err)
				}
				if !reflect.DeepEqual(adv.Key(), cold.Key()) {
					t.Fatalf("step %d: advanced key %+v != cold key %+v", i, adv.Key(), cold.Key())
				}
				if !reflect.DeepEqual(adv.Partition().Hier, cold.Partition().Hier) {
					t.Fatalf("step %d: advanced hierarchy differs from cold build", i)
				}
				if !reflect.DeepEqual(adv.Partition().Lay, cold.Partition().Lay) {
					t.Fatalf("step %d: advanced layout differs from cold build", i)
				}
				if !reflect.DeepEqual(adv.Partition().Inv, cold.Partition().Inv) {
					t.Fatalf("step %d: advanced 1/outdeg differs from cold build", i)
				}
				prev = adv
			}
		})
	}
}

// TestAdvanceFallsBackToColdOnHeavyBatch drives one partition far past the
// edge-growth budget: Advance must rebuild cold (Incremental false) and the
// result must still match a from-scratch Prepare bit-for-bit.
func TestAdvanceFallsBackToColdOnHeavyBatch(t *testing.T) {
	o := dynamicOptions(3)
	g0 := frontierGraph()
	vg := graph.NewVersioned(g0)
	prep, err := hipa.Engine{}.Prepare(g0, o)
	if err != nil {
		t.Fatalf("cold prepare: %v", err)
	}
	// Concentrate thousands of inserts on the first 64 vertices — one
	// 256-byte partition — so its edge count blows past 2× + slack.
	var muts []graph.Mutation
	for i := 0; i < 3000; i++ {
		muts = append(muts, graph.Mutation{
			Op:  graph.InsertEdge,
			Src: graph.VertexID(i % 64),
			Dst: graph.VertexID(100 + i/64),
		})
	}
	from := vg.Version()
	ver, err := vg.ApplyBatch(muts)
	if err != nil {
		t.Fatalf("apply heavy batch: %v", err)
	}
	d, err := vg.DeltaBetween(from, ver)
	if err != nil {
		t.Fatalf("delta: %v", err)
	}
	adv, err := prep.Advance(d, o)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if adv.Incremental {
		t.Fatal("heavy batch should trigger the cold-rebuild fallback, got an incremental patch")
	}
	cold, err := hipa.Engine{}.Prepare(d.Next, o)
	if err != nil {
		t.Fatalf("cold prepare of mutated graph: %v", err)
	}
	if !reflect.DeepEqual(adv.Partition(), cold.Partition()) {
		t.Fatal("fallback rebuild differs from a cold Prepare")
	}
}

// TestWarmStartDifferentialReplay is the acceptance contract for the warm
// execution paths: replaying a mutation stream, at every version the
// HiPa-dense and Delta-PR-sparse warm results must sit within 10× the
// tolerance of a cold Run on the mutated graph — at 1, 3, and 8 workers —
// the warm runs must spend strictly fewer total iterations than the cold
// runs, and Delta-PR's warm ranks must be bit-identical across worker
// counts.
func TestWarmStartDifferentialReplay(t *testing.T) {
	g0, steps := dynamicReplay(t, 3, 96)
	hipaEng, deltaEng := hipa.Engine{}, delta.Engine{}
	limit := 10 * frontierTol
	// deltaByStep[i] holds the 1-worker warm Delta-PR ranks of step i; the
	// 3- and 8-worker subtests must reproduce them bit-for-bit.
	deltaByStep := make([][]float32, len(steps))
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("%dworkers", workers), func(t *testing.T) {
			o := dynamicOptions(workers)
			hipaPrep, err := hipaEng.Prepare(g0, o)
			if err != nil {
				t.Fatalf("hipa prepare: %v", err)
			}
			deltaPrep, err := deltaEng.Prepare(g0, o)
			if err != nil {
				t.Fatalf("delta prepare: %v", err)
			}
			hipaBase, err := hipaEng.Exec(hipaPrep, o)
			if err != nil {
				t.Fatalf("hipa base run: %v", err)
			}
			deltaBase, err := deltaEng.Exec(deltaPrep, o)
			if err != nil {
				t.Fatalf("delta base run: %v", err)
			}
			warmHipa, warmDelta := hipaBase.Ranks, deltaBase.Ranks
			var warmIters, coldIters int
			for i, st := range steps {
				hipaPrep, err = hipaPrep.Advance(st.d, o)
				if err != nil {
					t.Fatalf("step %d: hipa Advance: %v", i, err)
				}
				deltaPrep, err = deltaPrep.Advance(st.d, o)
				if err != nil {
					t.Fatalf("step %d: delta Advance: %v", i, err)
				}
				cold, err := hipaEng.Run(st.g, o)
				if err != nil {
					t.Fatalf("step %d: cold run: %v", i, err)
				}
				oW := o
				oW.Warm = &common.WarmStart{Ranks: warmHipa}
				wh, err := hipaEng.Exec(hipaPrep, oW)
				if err != nil {
					t.Fatalf("step %d: warm hipa: %v", i, err)
				}
				oD := o
				oD.Warm = &common.WarmStart{Ranks: warmDelta, Delta: st.d}
				wd, err := deltaEng.Exec(deltaPrep, oD)
				if err != nil {
					t.Fatalf("step %d: warm delta: %v", i, err)
				}
				if d := maxAbsDiff32(wh.Ranks, cold.Ranks); d > limit {
					t.Errorf("step %d: warm hipa drifted %.3g from cold (limit %.3g)", i, d, limit)
				}
				if d := maxAbsDiff32(wd.Ranks, cold.Ranks); d > limit {
					t.Errorf("step %d: warm delta drifted %.3g from cold (limit %.3g)", i, d, limit)
				}
				warmIters += wh.Iterations
				coldIters += cold.Iterations
				if workers == 1 {
					deltaByStep[i] = wd.Ranks
				} else if !reflect.DeepEqual(wd.Ranks, deltaByStep[i]) {
					t.Errorf("step %d: warm delta ranks at %d workers differ from the 1-worker run", i, workers)
				}
				warmHipa, warmDelta = wh.Ranks, wd.Ranks
			}
			if warmIters >= coldIters {
				t.Errorf("warm hipa spent %d iterations across the replay, cold spent %d — warm starts should converge faster", warmIters, coldIters)
			}
		})
	}
}

// TestWarmStartRejectedByStaticEngines pins the failure mode of handing a
// warm start to an engine that cannot honor it: a clear error, not a
// silently-cold run.
func TestWarmStartRejectedByStaticEngines(t *testing.T) {
	g := frontierGraph()
	o := testOptions(5)
	warm := &common.WarmStart{Ranks: make([]float32, g.NumVertices())}
	for _, eng := range []common.Engine{ppr.Engine{}, vpr.Engine{}, gpop.Engine{}, polymer.Engine{}, ec.Engine{}, nb.Engine{}} {
		t.Run(eng.Name(), func(t *testing.T) {
			prep, err := eng.Prepare(g, o)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			oW := o
			oW.Warm = warm
			if _, err := eng.Exec(prep, oW); err == nil {
				t.Fatalf("%s accepted a warm start", eng.Name())
			} else if !strings.Contains(err.Error(), "warm starts are not supported") {
				t.Fatalf("%s rejected the warm start with the wrong error: %v", eng.Name(), err)
			}
		})
	}
}

// TestWarmStartLengthValidation pins the rank-vector length check of both
// warm-capable engines.
func TestWarmStartLengthValidation(t *testing.T) {
	g := frontierGraph()
	o := dynamicOptions(3)
	for _, eng := range []common.Engine{hipa.Engine{}, delta.Engine{}} {
		t.Run(eng.Name(), func(t *testing.T) {
			prep, err := eng.Prepare(g, o)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			oW := o
			oW.Warm = &common.WarmStart{Ranks: make([]float32, 7)}
			if _, err := eng.Exec(prep, oW); err == nil {
				t.Fatalf("%s accepted a warm rank vector of the wrong length", eng.Name())
			} else if !strings.Contains(err.Error(), "warm-start ranks") {
				t.Fatalf("%s rejected with the wrong error: %v", eng.Name(), err)
			}
		})
	}
}
