package enginetest

import (
	"testing"

	"hipa/internal/engines/common"
	"hipa/internal/engines/gpop"
	"hipa/internal/engines/polymer"
	"hipa/internal/engines/ppr"
	"hipa/internal/engines/vpr"
	"hipa/internal/gen"
	"hipa/internal/machine"
)

// Baseline-specific behaviours (beyond the cross-engine equivalence suite).

func TestObliviousEnginesRemoteNearHalf(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 3000, Edges: 40000, OutAlpha: 2.0, InAlpha: 0.9, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions(5)
	for _, e := range []common.Engine{ppr.Engine{}, gpop.Engine{}, vpr.Engine{}} {
		res, err := e.Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if f := res.Model.RemoteFraction; f < 0.4 || f > 0.6 {
			t.Errorf("%s: remote fraction %.3f, want ~0.5 (interleaved data)", e.Name(), f)
		}
	}
}

func TestPolymerLowRemoteButSlow(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 4000, Edges: 60000, OutAlpha: 2.0, InAlpha: 0.9, Seed: 94})
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions(5)
	poly, err := (polymer.Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	v, err := (vpr.Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §4.3: Polymer's remote ratio is far below v-PR's, yet its total
	// execution is slower (framework overheads).
	if poly.Model.RemoteFraction >= v.Model.RemoteFraction {
		t.Errorf("Polymer remote %.3f should be below v-PR %.3f",
			poly.Model.RemoteFraction, v.Model.RemoteFraction)
	}
	if poly.Model.EstimatedSeconds <= v.Model.EstimatedSeconds {
		t.Errorf("Polymer (%.5fs) should be slower than v-PR (%.5fs) on journal-sized graphs",
			poly.Model.EstimatedSeconds, v.Model.EstimatedSeconds)
	}
}

func TestGPOPPartitionDefaultLargerThanPPR(t *testing.T) {
	// GPOP's 1MB default produces fewer, bigger partitions => better
	// compression => lower MApE than p-PR on large graphs (paper §4.3), at
	// the price of worse cache behaviour. Compare at paper defaults.
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 8000, Edges: 160000, OutAlpha: 2.0, InAlpha: 1.0, Seed: 95})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Scaled(machine.SkylakeSilver4210(), 1024)
	gp, err := (gpop.Engine{}).Run(g, common.Options{Machine: m, Iterations: 5, PartitionBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := (ppr.Engine{}).Run(g, common.Options{Machine: m, Iterations: 5, PartitionBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if gp.Model.MApE >= pp.Model.MApE {
		t.Errorf("GPOP MApE %.2f should be below p-PR %.2f (larger partitions compress better)",
			gp.Model.MApE, pp.Model.MApE)
	}
}

func TestVertexEngineThreadClamp(t *testing.T) {
	// More threads than vertices: the vertex engines clamp.
	g, err := gen.Uniform(10, 40, 96)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (vpr.Engine{}).Run(g, testOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads > 10 {
		t.Errorf("threads = %d for a 10-vertex graph", res.Threads)
	}
}

func TestAlgorithmOneSpawnCounts(t *testing.T) {
	// Algorithm 1's thread lifecycle: iterations x 2 phases x threads
	// spawns for every oblivious engine (§3.3.2's counting argument).
	g, err := gen.Uniform(500, 4000, 97)
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions(10)
	o.Threads = 8
	for _, e := range []common.Engine{ppr.Engine{}, gpop.Engine{}, vpr.Engine{}, polymer.Engine{}} {
		res, err := e.Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		want := int64(10 * 2 * res.Threads)
		if res.Sched.Spawned != want {
			t.Errorf("%s: spawned %d threads, want %d (Algorithm 1)", e.Name(), res.Sched.Spawned, want)
		}
	}
}

func TestPolymerBindingMigrations(t *testing.T) {
	// Polymer binds its per-region threads to nodes, so it pays bindings
	// and (some) migrations every region; v-PR binds nothing.
	g, err := gen.Uniform(500, 4000, 98)
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions(10)
	poly, err := (polymer.Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	v, err := (vpr.Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if poly.Sched.Bindings == 0 {
		t.Error("Polymer should bind threads to nodes")
	}
	if v.Sched.Bindings != 0 {
		t.Error("v-PR should not bind threads")
	}
	if poly.Sched.Migrations <= v.Sched.Migrations {
		t.Errorf("Polymer migrations (%d) should exceed v-PR's (%d)",
			poly.Sched.Migrations, v.Sched.Migrations)
	}
}

func TestToleranceEarlyTermination(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 2000, Edges: 24000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range allEngines() {
		o := testOptions(100)
		o.Tolerance = 1e-6
		res, err := e.Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Iterations >= 100 {
			t.Errorf("%s: did not converge early (iterations = %d)", e.Name(), res.Iterations)
		}
		if res.Iterations < 3 {
			t.Errorf("%s: converged implausibly fast (%d iterations)", e.Name(), res.Iterations)
		}
		// Result must approximate the converged fixed point.
		ref := common.ReferencePageRank(g, 100, common.DefaultDamping)
		var worst float64
		for v := range ref {
			dv := ref[v] - float64(res.Ranks[v])
			if dv < 0 {
				dv = -dv
			}
			if dv > worst {
				worst = dv
			}
		}
		if worst > 1e-4 {
			t.Errorf("%s: converged result off by %g", e.Name(), worst)
		}
	}
	// Negative tolerance rejected.
	o := testOptions(5)
	o.Tolerance = -1
	if _, err := allEngines()[0].Run(g, o); err == nil {
		t.Error("expected error for negative tolerance")
	}
}
