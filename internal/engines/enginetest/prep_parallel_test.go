package enginetest

import (
	"reflect"
	"testing"

	"hipa/internal/gen"
	"hipa/internal/graph"
)

// TestPrepareBitIdenticalAcrossParallelism: for every engine, the Prepared
// artifact built serially equals — field for field, element for element —
// the one built with many workers. This is the contract that keeps
// PrepParallelism out of the prep-cache key and the golden 13-case results
// unchanged by the parallel Prepare pipeline.
func TestPrepareBitIdenticalAcrossParallelism(t *testing.T) {
	// Content-identical instances: the CSC form and memoized fingerprint live
	// on the Graph, so each parallelism setting gets its own instance to
	// exercise its own build path.
	build := func() *graph.Graph {
		g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 2500, Edges: 30000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	for _, e := range allEngines() {
		oSerial := testOptions(2)
		oSerial.PrepParallelism = 1
		gSerial := build()
		pSerial, err := e.Prepare(gSerial, oSerial)
		if err != nil {
			t.Fatalf("%s: serial Prepare: %v", e.Name(), err)
		}
		for _, workers := range []int{3, 8} {
			oPar := testOptions(2)
			oPar.PrepParallelism = workers
			gPar := build()
			pPar, err := e.Prepare(gPar, oPar)
			if err != nil {
				t.Fatalf("%s: Prepare at %d workers: %v", e.Name(), workers, err)
			}
			if pSerial.Key() != pPar.Key() {
				t.Errorf("%s: prep keys differ across parallelism: %+v vs %+v", e.Name(), pSerial.Key(), pPar.Key())
			}
			if a, b := pSerial.Partition(), pPar.Partition(); (a == nil) != (b == nil) {
				t.Fatalf("%s: artifact kinds differ", e.Name())
			} else if a != nil {
				if !reflect.DeepEqual(a.Hier, b.Hier) {
					t.Errorf("%s: partition hierarchy differs at %d workers", e.Name(), workers)
				}
				if !reflect.DeepEqual(a.Lay, b.Lay) {
					t.Errorf("%s: message layout differs at %d workers", e.Name(), workers)
				}
				if !reflect.DeepEqual(a.Inv, b.Inv) {
					t.Errorf("%s: inverse-degree array differs at %d workers", e.Name(), workers)
				}
			}
			if a, b := pSerial.Vertex(), pPar.Vertex(); a != nil && b != nil {
				if !reflect.DeepEqual(a.Inv, b.Inv) {
					t.Errorf("%s: inverse-degree array differs at %d workers", e.Name(), workers)
				}
				if !reflect.DeepEqual(gSerial.InOffsets(), gPar.InOffsets()) ||
					!reflect.DeepEqual(gSerial.InEdges(), gPar.InEdges()) {
					t.Errorf("%s: CSC arrays differ at %d workers", e.Name(), workers)
				}
			}
		}
	}
}
