package enginetest

import (
	"sync"
	"testing"

	"hipa/internal/engines/common"
	"hipa/internal/gen"
	"hipa/internal/machine"
)

// TestPrepareExecMatchesRun: for every engine on every modelled preset,
// Prepare followed by Exec is bit-identical to Run — same ranks, iteration
// counts, and model estimate.
func TestPrepareExecMatchesRun(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 2500, Edges: 30000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, pm := range presetMachines() {
		t.Run(pm.name, func(t *testing.T) {
			o := testOptions(8)
			o.Machine = pm.m
			for _, e := range allEngines() {
				run, err := e.Run(g, o)
				if err != nil {
					t.Fatalf("%s: Run: %v", e.Name(), err)
				}
				prep, err := e.Prepare(g, o)
				if err != nil {
					t.Fatalf("%s: Prepare: %v", e.Name(), err)
				}
				if prep.Engine() != e.Name() {
					t.Errorf("%s: prepared artifact labelled %q", e.Name(), prep.Engine())
				}
				if prep.PrepSeconds <= 0 || prep.BuildSeconds <= 0 {
					t.Errorf("%s: prep timings not measured: prep=%g build=%g",
						e.Name(), prep.PrepSeconds, prep.BuildSeconds)
				}
				res, err := e.Exec(prep, o)
				if err != nil {
					t.Fatalf("%s: Exec: %v", e.Name(), err)
				}
				if len(res.Ranks) != len(run.Ranks) {
					t.Fatalf("%s: rank vector length %d vs Run's %d", e.Name(), len(res.Ranks), len(run.Ranks))
				}
				for i := range run.Ranks {
					if res.Ranks[i] != run.Ranks[i] {
						t.Fatalf("%s: rank[%d] = %g via Prepare+Exec, %g via Run (must be bit-identical)",
							e.Name(), i, res.Ranks[i], run.Ranks[i])
					}
				}
				if res.Iterations != run.Iterations {
					t.Errorf("%s: iterations %d vs Run's %d", e.Name(), res.Iterations, run.Iterations)
				}
				if res.Model.EstimatedSeconds != run.Model.EstimatedSeconds {
					t.Errorf("%s: model estimate %g vs Run's %g",
						e.Name(), res.Model.EstimatedSeconds, run.Model.EstimatedSeconds)
				}
				if res.Model.LocalBytes != run.Model.LocalBytes || res.Model.RemoteBytes != run.Model.RemoteBytes {
					t.Errorf("%s: model traffic (%d,%d) vs Run's (%d,%d)", e.Name(),
						res.Model.LocalBytes, res.Model.RemoteBytes, run.Model.LocalBytes, run.Model.RemoteBytes)
				}
			}
		})
	}
}

// TestConcurrentExecShared: one Prepared artifact, many concurrent Exec
// calls (run under -race in CI). Every execution must produce the same
// rank vector.
func TestConcurrentExecShared(t *testing.T) {
	g, err := gen.Uniform(1500, 18000, 99)
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions(6)
	for _, e := range allEngines() {
		prep, err := e.Prepare(g, o)
		if err != nil {
			t.Fatalf("%s: Prepare: %v", e.Name(), err)
		}
		const workers = 5
		results := make([]*common.Result, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				results[w], errs[w] = e.Exec(prep, o)
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				t.Fatalf("%s: concurrent Exec %d: %v", e.Name(), w, errs[w])
			}
			if d := common.MaxAbsDiff(results[0].Ranks, results[w].Ranks); d != 0 {
				t.Errorf("%s: concurrent Exec %d diverged by %g", e.Name(), w, d)
			}
		}
	}
}

// TestExecRejectsMismatches: Exec validates artifact/engine/options
// compatibility instead of silently computing with the wrong layout.
func TestExecRejectsMismatches(t *testing.T) {
	g, err := gen.Uniform(800, 8000, 5)
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions(4)
	hipaE := allEngines()[0]
	pprE := allEngines()[1]
	prep, err := hipaE.Prepare(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pprE.Exec(prep, o); err == nil {
		t.Error("p-PR accepted a HiPa artifact")
	}
	bad := o
	bad.PartitionBytes = o.PartitionBytes * 2
	if _, err := hipaE.Exec(prep, bad); err == nil {
		t.Error("Exec accepted a partition-size mismatch")
	}
	badC := o
	badC.NoCompress = true
	if _, err := hipaE.Exec(prep, badC); err == nil {
		t.Error("Exec accepted a compression mismatch")
	}
	if _, err := hipaE.Exec(nil, o); err == nil {
		t.Error("Exec accepted a nil artifact")
	}
	// Different thread counts are NOT a mismatch: the thread-dependent group
	// stage is recomputed per Exec.
	more := o
	more.Threads = 4
	if _, err := hipaE.Exec(prep, more); err != nil {
		t.Errorf("Exec rejected a thread-count change: %v", err)
	}
}

// TestPrepCacheSharedArtifact: with a shared cache, the five engines build
// four artifacts (v-PR and Polymer share the vertex artifact) and every
// second Prepare is a hit.
func TestPrepCacheSharedArtifact(t *testing.T) {
	g, err := gen.Uniform(1200, 14000, 44)
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions(4)
	o.PrepCache = common.NewPrepCache(16)
	for _, e := range allEngines() {
		p1, err := e.Prepare(g, o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		p2, err := e.Prepare(g, o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if !p2.FromCache {
			t.Errorf("%s: second Prepare missed the cache", e.Name())
		}
		if p1.Key() != p2.Key() {
			t.Errorf("%s: keys differ across identical Prepares", e.Name())
		}
		res, err := e.Exec(p2, o)
		if err != nil {
			t.Fatalf("%s: Exec on cached artifact: %v", e.Name(), err)
		}
		if !res.PrepFromCache {
			t.Errorf("%s: Result.PrepFromCache = false for a cached artifact", e.Name())
		}
	}
	s := o.PrepCache.Stats()
	// Artifacts are content-keyed, not engine-keyed: with identical options,
	// p-PR and GPOP share one NUMA-oblivious partition artifact, and v-PR
	// and Polymer share one vertex artifact. HiPa's key differs (NUMA node
	// count): 3 builds, 7 hits (5 second-Prepares + GPOP's and Polymer's
	// first Prepares landing on shared entries).
	if s.Misses != 3 {
		t.Errorf("builds = %d, want 3 (structurally identical artifacts must share)", s.Misses)
	}
	if s.Hits != 7 {
		t.Errorf("hits = %d, want 7", s.Hits)
	}
	if s.Evictions != 0 {
		t.Errorf("evictions = %d, want 0", s.Evictions)
	}
}

// TestPrepCacheGeometryNoCollision: with PartitionBytes defaulted, the
// partition size is derived from the machine's cache geometry
// (TunedPartitionBytes), so a cache shared between Skylake (non-inclusive
// 1MB L2 → 256KB partitions) and Haswell (inclusive 256KB L2 → 128KB) must
// hold two distinct entries — regression test for geometry being absent
// from the prep key and one machine's layout silently serving the other.
func TestPrepCacheGeometryNoCollision(t *testing.T) {
	g, err := gen.Uniform(1200, 14000, 44)
	if err != nil {
		t.Fatal(err)
	}
	cache := common.NewPrepCache(16)
	e := allEngines()[0] // HiPa
	oSky := common.Options{Machine: machine.SkylakeSilver4210(), Iterations: 2, PrepCache: cache}
	oHas := common.Options{Machine: machine.HaswellE52667(), Iterations: 2, PrepCache: cache}
	pSky, err := e.Prepare(g, oSky)
	if err != nil {
		t.Fatal(err)
	}
	pHas, err := e.Prepare(g, oHas)
	if err != nil {
		t.Fatal(err)
	}
	if pSky.Key() == pHas.Key() {
		t.Fatalf("Skylake and Haswell default preps share key %+v", pSky.Key())
	}
	if pHas.FromCache {
		t.Error("Haswell Prepare was served the Skylake artifact")
	}
	if s := cache.Stats(); s.Misses != 2 || s.Hits != 0 {
		t.Errorf("stats = %+v, want 2 misses / 0 hits (one entry per geometry)", s)
	}
	// Each machine hits its own entry on re-prepare.
	for _, o := range []common.Options{oSky, oHas} {
		p, err := e.Prepare(g, o)
		if err != nil {
			t.Fatal(err)
		}
		if !p.FromCache {
			t.Errorf("re-Prepare on %s missed its own entry", o.Machine.Name)
		}
	}
}

// TestToleranceIterationAgreement: with early termination, the executed
// iteration count, the model's priced iteration count, and the recorded
// per-iteration stats must agree for every engine — traffic is attributed
// to iterations that actually ran.
func TestToleranceIterationAgreement(t *testing.T) {
	g, err := gen.Uniform(1000, 12000, 11)
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions(50)
	o.Tolerance = 1e-4
	for _, e := range allEngines() {
		res, err := e.Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Iterations >= 50 {
			t.Errorf("%s: tolerance did not terminate early (%d iterations)", e.Name(), res.Iterations)
		}
		if res.Model.Iterations != res.Iterations {
			t.Errorf("%s: model priced %d iterations, engine ran %d",
				e.Name(), res.Model.Iterations, res.Iterations)
		}
	}
}
