// Package ppr implements p-PR, the paper's hand-optimized partition-centric
// PageRank baseline (§4.1): a re-implementation of the PCPM methodology
// (Lakhotia et al., USENIX ATC'18) with finely tuned parameters — 256KB
// partitions and 20 threads — but no NUMA-awareness. Data is effectively
// interleaved across nodes, threads are spawned per phase and claim
// partitions first-come-first-serve.
//
// Exec runs on the shared allocation-free hot path (common.ExecOblivious):
// scratch state lives in an arena recycled across Execs against one Prepared
// artifact, and the superstep loop reuses a persistent worker pool, so the
// steady state performs zero heap allocations per iteration.
package ppr

import (
	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/machine"
)

// Engine is the p-PR implementation of common.Engine.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return "p-PR" }

func config() common.ObliviousPartitionConfig {
	return common.ObliviousPartitionConfig{
		Name: "p-PR",
		// The paper tunes p-PR to half the logical cores (§4.1): using all
		// 40 would double L2 contention (§3.3.1).
		DefaultThreads:        func(m *machine.Machine) int { return m.PhysicalCores() },
		DefaultPartitionBytes: 256 << 10,
	}
}

// Run executes NUMA-oblivious partition-centric PageRank.
func (Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	return common.RunObliviousPartitionEngine(g, o, config())
}

// Prepare builds the flat partition + layout artifact.
func (Engine) Prepare(g *graph.Graph, o common.Options) (*common.Prepared, error) {
	return common.PrepareOblivious(g, o, config())
}

// Exec runs the FCFS iterative phase against a Prepared artifact.
func (Engine) Exec(prep *common.Prepared, o common.Options) (*common.Result, error) {
	return common.ExecOblivious(prep, o, config())
}
