// Package nb implements NB-PR: a barrierless non-blocking PageRank after
// Eedi et al. (PAPERS.md), the second engine shape the frontier-aware
// driver refactor enables. Where every other engine is bulk-synchronous —
// scatter and gather phases separated by barriers — NB-PR spawns one worker
// per thread and lets each proceed through its vertex chunk round after
// round with no barriers: ranks are published with atomic stores and pulled
// with atomic loads, so a worker mid-round reads a mix of current- and
// recent-round ranks from its neighbours (chaotic/asynchronous iteration,
// with staleness bounded by a small pacing window — see
// common.RunAsyncRounds). Termination is round-based: a worker whose own round moved no
// rank by the tolerance votes to stop only once every worker's published
// round has caught up to its own and every published residual is below
// tolerance (common.RunAsyncRounds).
//
// The fold order of a vertex's pull is fixed by the CSC layout, but *which
// round's* rank a load observes depends on real scheduling, so multithreaded
// NB-PR is not bit-deterministic — it carries convergence-quality gates
// (MaxAbsDiff vs exact ranks) instead of bit-exactness, plus a
// single-threaded golden case (with one worker the asynchrony disappears
// and the run is exactly Gauss–Seidel-flavoured and deterministic). The
// analytic model is fed per-worker round counts (workers run unequal round
// counts) and zero barriers.
package nb

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"hipa/internal/engines/common"
	"hipa/internal/execbuf"
	"hipa/internal/graph"
	"hipa/internal/machine"
	"hipa/internal/platform"
)

// Name is the engine's registry name.
const Name = "NB-PR"

var cfg = common.VertexEngineConfig{
	Name:           Name,
	DefaultThreads: func(m *machine.Machine) int { return m.LogicalCores() },
}

// Engine is the NB-PR implementation of common.Engine.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return Name }

// Run executes barrierless PageRank: Prepare followed by Exec.
func (e Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	return common.PrepareAndExec(e, g, o)
}

// Prepare builds the vertex-centric artifact (CSC form + 1/outdeg), shared
// with v-PR and Polymer through the prep cache.
func (Engine) Prepare(g *graph.Graph, o common.Options) (*common.Prepared, error) {
	return common.PrepareVertex(g, o, cfg)
}

// nbState is the barrierless round kernel: one instance shared by all
// workers, with all cross-worker traffic through the atomic rank bits and
// the padded publication lanes. round is handed to RunAsyncRounds as a
// stored method value; the body performs no allocation.
type nbState struct {
	bounds []int
	bits   []uint32 // float32 rank bits, atomically published
	inv    []float32
	inOff  []int64
	inAdj  []graph.VertexID
	base   float32
	d      float32
	n      int
	dang   []execbuf.PadU64 // per-worker dangling-mass bits (float64)
}

// redis computes the worker's current view of the redistribution term by
// summing every worker's published dangling mass. Workers sample this at
// their own round boundaries, so the view mixes rounds — the same
// asynchrony the rank loads have.
func (s *nbState) redis() (redis float32, mass float64) {
	var sum float64
	for i := range s.dang {
		sum += math.Float64frombits(s.dang[i].V.Load())
	}
	return s.d * float32(sum/float64(s.n)), sum
}

// round advances worker tid's chunk one round: pull over in-edges with
// atomic rank loads, publish new ranks with atomic stores, track the local
// L∞ change, and republish the chunk's dangling mass. Returns the local L∞.
func (s *nbState) round(tid, _ int) float64 {
	redis, _ := s.redis()
	base, d := s.base, s.d
	bits, inv := s.bits, s.inv
	inOff, inAdj := s.inOff, s.inAdj
	var res float64
	var dangling float64
	for v := s.bounds[tid]; v < s.bounds[tid+1]; v++ {
		lo, hi := inOff[v], inOff[v+1]
		in := inAdj[lo:hi:hi]
		var acc float32
		for _, u := range in {
			acc += math.Float32frombits(atomic.LoadUint32(&bits[u])) * inv[u]
		}
		old := math.Float32frombits(atomic.LoadUint32(&bits[v]))
		nv := base + d*acc + redis
		atomic.StoreUint32(&bits[v], math.Float32bits(nv))
		if inv[v] == 0 {
			dangling += float64(nv)
		}
		diff := float64(nv - old)
		if diff < 0 {
			diff = -diff
		}
		if diff > res {
			res = diff
		}
	}
	s.dang[tid].V.Store(math.Float64bits(dangling))
	return res
}

// danglingMass is the stats view of the published dangling lanes.
func (s *nbState) danglingMass() float64 {
	_, mass := s.redis()
	return mass
}

// Exec runs the barrierless iterative phase against a Prepared artifact.
// Options.Iterations bounds each worker's round count; Options.Tolerance
// enables round-based termination detection. Safe for concurrent calls
// sharing one artifact.
func (Engine) Exec(prep *common.Prepared, o common.Options) (*common.Result, error) {
	if err := prep.CheckExec(Name, common.PrepVertex); err != nil {
		return nil, err
	}
	o = o.ResolveMachine(prep.Machine())
	m := o.Machine
	o = o.WithDefaults(cfg.DefaultThreads(m))
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.Warm != nil {
		return nil, fmt.Errorf("nb: warm starts are not supported — use HiPa or the delta engine for incremental re-ranking")
	}
	g := prep.Graph()
	n := g.NumVertices()
	threads := o.Threads
	if threads > n {
		threads = n
	}
	rec := o.Obs
	common.RecordGraphCounters(rec.C(), n, g.NumEdges())

	bounds := common.SplitByWeight(g.InOffsets(), threads)

	// Workers are spawned once and never respawned (one region); they are
	// not node-bound — the engine is NUMA-oblivious like v-PR.
	pf := o.Platform
	pool, err := pf.SpawnOblivious(o.SchedSeed, 1, threads, false)
	if err != nil {
		return nil, fmt.Errorf("nb: %w", err)
	}
	pool.SetLanes(rec.T())

	arena := prep.AcquireArena()
	defer prep.ReleaseArena(arena)
	inOff, inAdj := g.InCSR()
	lanes := arena.Atomics(3 * threads)
	st := &nbState{
		bounds: bounds,
		bits:   arena.RankBits(n),
		inv:    prep.Vertex().Inv,
		inOff:  inOff,
		inAdj:  inAdj,
		base:   float32((1 - o.Damping) / float64(n)),
		d:      float32(o.Damping),
		n:      n,
		dang:   lanes[2*threads : 3*threads],
	}
	init := math.Float32bits(float32(1) / float32(n))
	for v := range st.bits {
		st.bits[v] = init
	}
	// Seed each worker's published dangling mass from the initial ranks.
	for t := 0; t < threads; t++ {
		var dangling float64
		for v := bounds[t]; v < bounds[t+1]; v++ {
			if st.inv[v] == 0 {
				dangling += float64(math.Float32frombits(st.bits[v]))
			}
		}
		st.dang[t].V.Store(math.Float64bits(dangling))
	}

	stopRun := rec.C().Phase(common.PhaseRun)
	wallStart := time.Now()
	maxRounds, _ := common.RunAsyncRounds(common.AsyncConfig{
		Engine:       Name,
		Threads:      threads,
		Rounds:       o.Iterations,
		Tolerance:    o.Tolerance,
		Residuals:    lanes[0:threads],
		RoundCounts:  lanes[threads : 2*threads],
		DanglingMass: st.danglingMass,
		Rec:          rec,
	}, st.round)
	wall := time.Since(wallStart)
	stopRun()
	o.Iterations = maxRounds

	// Per-worker round counts: the accounting input (unequal rounds, zero
	// barriers) and the edges-processed total.
	threadIters := make([]int64, threads)
	var edgesProcessed int64
	for t := 0; t < threads; t++ {
		threadIters[t] = int64(lanes[threads+t].V.Load())
		edgesProcessed += (inOff[bounds[t+1]] - inOff[bounds[t]]) * threadIters[t]
	}

	// Work report, with each worker's chunk in the partition role: workers
	// run unequal round counts, so rounds a worker never reached count as
	// skipped work relative to the slowest worker's round total.
	report := &common.FrontierReport{
		TotalPartitions:    threads,
		TotalVertices:      int64(n),
		IterationsExecuted: maxRounds,
	}
	for t := 0; t < threads; t++ {
		report.ActivePartitionIterations += threadIters[t]
		report.ActiveVertexIterations += int64(bounds[t+1]-bounds[t]) * threadIters[t]
	}
	report.PartitionsSkipped = int64(maxRounds)*int64(threads) - report.ActivePartitionIterations

	acct := pf.NewAccounting(pool)
	if pf.Modeled() {
		if err := acct.AddVertexRun(platform.VertexRun{
			G:             g,
			Bounds:        bounds,
			AtomicUpdates: true,
			Iterations:    maxRounds,
			ThreadIters:   threadIters,
		}); err != nil {
			return nil, fmt.Errorf("nb: %w", err)
		}
	}
	rep, err := pf.Finalize(acct, platform.RunShape{
		Iterations:           maxRounds,
		EdgesProcessed:       edgesProcessed,
		UncoordinatedStreams: true,
	})
	if err != nil {
		return nil, fmt.Errorf("nb: %w", err)
	}

	ranks := make([]float32, n)
	for v := range ranks {
		ranks[v] = math.Float32frombits(st.bits[v])
	}
	res := &common.Result{
		Engine:           Name,
		Ranks:            ranks,
		Iterations:       maxRounds,
		Threads:          threads,
		WallSeconds:      wall.Seconds(),
		PrepSeconds:      prep.PrepSeconds,
		PrepBuildSeconds: prep.BuildSeconds,
		PrepFromCache:    prep.FromCache,
		Model:            rep,
		Sched:            pool.Stats,
		Frontier:         report,
	}
	common.FinishRun(rec, res, m, false)
	return res, nil
}
