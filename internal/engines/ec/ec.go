// Package ec implements EC-HiPa: early-convergence HiPa, the first
// frontier-aware engine. It keeps HiPa's entire execution shape —
// hierarchical partitioning, compressed inter-edge messages, pinned
// persistent threads (Algorithm 2) — and adds partition-granular pruning on
// top of the frontier-aware superstep driver: once every vertex of a
// partition changes by less than the tolerance in one gather, the whole
// partition is retired from the active work list and neither phase touches
// it again. The PCPM streaming argument (Lakhotia et al.) then holds per
// *active* partition: each iteration streams exactly the active partitions'
// vertex and message data, and the analytic traffic model is fed the
// per-partition executed-iteration counts so modelled bytes scale with the
// active set.
//
// Freezing a partition is numerically safe by construction (see
// common.PartitionFrontier); the cost is approximation — a frozen
// partition's ranks stop responding to still-moving in-neighbours, bounding
// the final error near the tolerance rather than at float32 exactness.
// EC-HiPa is therefore not bit-identical to HiPa and carries its own golden
// cases plus convergence-quality gates (MaxAbsDiff vs exact ranks ≤ 10× the
// tolerance) instead of joining the five-engine bit-exactness matrix. The
// per-partition dangling fold is serial and in partition order, so results
// are bit-deterministic at any thread count for a given partitioning.
package ec

import (
	"fmt"
	"time"

	"hipa/internal/engines/common"
	"hipa/internal/engines/hipa"
	"hipa/internal/graph"
	"hipa/internal/partition"
	"hipa/internal/platform"
)

// Name is the engine's registry name.
const Name = "EC-HiPa"

// DefaultTolerance is the partition-retirement threshold used when
// Options.Tolerance is zero. Pruning is the engine's point, so unlike the
// dense engines a zero tolerance selects a default instead of disabling
// convergence checks; runs still stop at Options.Iterations regardless.
const DefaultTolerance = 1e-7

// Engine is the EC-HiPa implementation of common.Engine.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return Name }

// Run executes PageRank with early partition convergence: Prepare followed
// by Exec.
func (e Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	return common.PrepareAndExec(e, g, o)
}

// Prepare builds the same node-level hierarchy and compressed layout as
// HiPa (the artifacts are byte-identical and share prep-cache payloads),
// stamped with this engine's name.
func (Engine) Prepare(g *graph.Graph, o common.Options) (*common.Prepared, error) {
	return hipa.PrepareArtifact(Name, g, o)
}

// Exec runs the pinned iterative phase with partition pruning against a
// Prepared artifact. Safe for concurrent calls sharing one artifact.
func (Engine) Exec(prep *common.Prepared, o common.Options) (*common.Result, error) {
	if err := prep.CheckExec(Name, common.PrepPartition); err != nil {
		return nil, err
	}
	o = o.ResolveMachine(prep.Machine())
	m := o.Machine
	if o.PartitionBytes == 0 {
		o.PartitionBytes = prep.Key().PartitionBytes
	}
	o = o.WithDefaults(m.LogicalCores())
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.FCFS {
		return nil, fmt.Errorf("ec: FCFS scheduling is not supported — partition pruning relies on the pinned thread-data mapping")
	}
	if o.Warm != nil {
		return nil, fmt.Errorf("ec: warm starts are not supported — use HiPa or the delta engine for incremental re-ranking")
	}
	if o.PartitionBytes != prep.Key().PartitionBytes {
		return nil, fmt.Errorf("ec: artifact was prepared with %dB partitions, not %dB", prep.Key().PartitionBytes, o.PartitionBytes)
	}
	if !o.NoCompress != prep.Key().Compress {
		return nil, fmt.Errorf("ec: artifact compression does not match NoCompress=%v", o.NoCompress)
	}
	if o.VertexBalanced != prep.Key().VertexBalanced {
		return nil, fmt.Errorf("ec: artifact was prepared with VertexBalanced=%v", prep.Key().VertexBalanced)
	}
	if m.NUMANodes != prep.Key().Nodes {
		return nil, fmt.Errorf("ec: artifact was prepared for %d NUMA nodes, machine has %d", prep.Key().Nodes, m.NUMANodes)
	}
	tol := o.Tolerance
	if tol == 0 {
		tol = DefaultTolerance
	}
	g := prep.Graph()

	nodes := m.NUMANodes
	threads, groupsPerNode := hipa.RoundThreads(o.Threads, nodes)
	if threads > m.LogicalCores() {
		return nil, fmt.Errorf("ec: %d threads exceed the machine's %d logical cores", threads, m.LogicalCores())
	}

	rec := o.Obs
	tr := rec.T()
	common.RecordGraphCounters(rec.C(), g.NumVertices(), g.NumEdges())
	if threads != o.Threads {
		rec.C().Set("hipa.threads.requested", float64(o.Threads))
		rec.C().Set("hipa.threads.effective", float64(threads))
	}

	hier := partition.Regroup(prep.Partition().Hier, groupsPerNode)
	lookup := partition.BuildLookup(hier)
	rec.C().Add("partition.groups", int64(len(hier.Groups)))

	pf := o.Platform
	pool, err := pf.SpawnPinned(o.SchedSeed, threads)
	if err != nil {
		return nil, fmt.Errorf("ec: %w", err)
	}
	pool.SetLanes(tr)

	arena := prep.AcquireArena()
	defer prep.ReleaseArena(arena)
	state := common.NewSGStateArena(g, hier, prep.Partition().Lay, prep.Partition().Inv, o.Damping, threads, arena)
	frontier := common.NewPartitionFrontier(state, tol, arena)
	kernels := frontier.Kernels(hier.Groups)
	stopRun := rec.C().Phase(common.PhaseRun)
	wallStart := time.Now()
	o.Iterations = common.RunSupersteps(common.SuperstepConfig{
		Engine:      Name,
		Threads:     threads,
		Parallelism: o.GoParallelism,
		Iterations:  o.Iterations,
		Tolerance:   tol,
		Frontier:    frontier,
		Rec:         rec,
	}, kernels)
	wall := time.Since(wallStart)
	stopRun()

	report := frontier.Report()
	rec.C().Add("frontier.partitions_skipped", report.PartitionsSkipped)
	rec.C().Set("frontier.active_fraction", report.ActiveFraction())

	// Cost accounting: each partition is charged only the iterations it
	// executed, so modelled traffic scales with the active set. Edges
	// processed follow the same per-partition counts.
	partIters := frontier.PartIters()
	var edgesProcessed int64
	for p, part := range hier.Partitions {
		edgesProcessed += part.EdgeCount * int64(partIters[p])
	}
	acct := pf.NewAccounting(pool)
	if pf.Modeled() {
		if err := acct.AddPartitionRun(platform.PartitionRun{
			Hier: hier, Lay: prep.Partition().Lay, Lookup: lookup,
			PartThread: lookup.PartThread,
			NUMAAware:  true,
			Iterations: o.Iterations,
			PartIters:  partIters,
		}); err != nil {
			return nil, fmt.Errorf("ec: %w", err)
		}
	}
	rep, err := pf.Finalize(acct, platform.RunShape{
		Iterations:     o.Iterations,
		EdgesProcessed: edgesProcessed,
	})
	if err != nil {
		return nil, fmt.Errorf("ec: %w", err)
	}

	ranks := make([]float32, len(state.Ranks))
	copy(ranks, state.Ranks)
	res := &common.Result{
		Engine:           Name,
		Ranks:            ranks,
		Iterations:       o.Iterations,
		Threads:          threads,
		WallSeconds:      wall.Seconds(),
		PrepSeconds:      prep.PrepSeconds,
		PrepBuildSeconds: prep.BuildSeconds,
		PrepFromCache:    prep.FromCache,
		Model:            rep,
		Sched:            pool.Stats,
		Frontier:         report,
	}
	common.FinishRun(rec, res, m, true)
	return res, nil
}
