// Package vpr implements v-PR, the paper's hand-optimized pull-based
// vertex-centric PageRank baseline (§4.1): every vertex pulls the
// contributions of its in-neighbors, so all columns of the adjacency matrix
// are traversed asynchronously in parallel with no atomics and no partial
// sums. It is NUMA-oblivious: data is effectively interleaved and threads
// are unbound.
//
// Exec runs on the shared allocation-free vertex-centric hot path
// (common.ExecVertex): ranks/contributions scratch lives in an arena
// recycled across Execs against one Prepared artifact, so the steady state
// performs zero heap allocations per iteration.
package vpr

import (
	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/machine"
)

// Engine is the v-PR implementation of common.Engine.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return "v-PR" }

func config() common.VertexEngineConfig {
	return common.VertexEngineConfig{
		Name:           "v-PR",
		DefaultThreads: func(m *machine.Machine) int { return m.LogicalCores() },
	}
}

// Run executes pull-based vertex-centric PageRank.
func (Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	return common.RunVertexEngine(g, o, config())
}

// Prepare builds the transpose + degree artifact (shared with Polymer).
func (Engine) Prepare(g *graph.Graph, o common.Options) (*common.Prepared, error) {
	return common.PrepareVertex(g, o, config())
}

// Exec runs the pull iterative phase against a Prepared artifact.
func (Engine) Exec(prep *common.Prepared, o common.Options) (*common.Result, error) {
	return common.ExecVertex(prep, o, config())
}
