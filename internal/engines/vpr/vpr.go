// Package vpr implements v-PR, the paper's hand-optimized pull-based
// vertex-centric PageRank baseline (§4.1): every vertex pulls the
// contributions of its in-neighbors, so all columns of the adjacency matrix
// are traversed asynchronously in parallel with no atomics and no partial
// sums. It is NUMA-oblivious: data is effectively interleaved and threads
// are unbound.
package vpr

import (
	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/machine"
)

// Engine is the v-PR implementation of common.Engine.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return "v-PR" }

// Run executes pull-based vertex-centric PageRank.
func (Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	return common.RunVertexEngine(g, o, common.VertexEngineConfig{
		Name:           "v-PR",
		DefaultThreads: func(m *machine.Machine) int { return m.LogicalCores() },
	})
}
