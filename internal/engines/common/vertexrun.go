package common

import (
	"fmt"
	"time"

	"hipa/internal/graph"
	"hipa/internal/machine"
	"hipa/internal/obs"
	"hipa/internal/perfmodel"
)

// VertexEngineConfig parameterises the two vertex-centric engines (v-PR and
// the Polymer-like framework), which share the pull-based execution: per
// iteration, one parallel pass computes contributions, a second pulls them
// over in-edges.
type VertexEngineConfig struct {
	Name           string
	DefaultThreads func(m *machine.Machine) int
	// NUMAAware assigns thread vertex ranges node-major with local data
	// placement and node-bound threads (Polymer); otherwise ranges are
	// plain edge-balanced chunks over interleaved data (v-PR).
	NUMAAware bool
	// FrontierBytesPerVertex and FrameworkCyclesPerEdge / AtomicUpdates
	// model framework overheads (0/0/false for hand-coded v-PR).
	FrontierBytesPerVertex int64
	FrameworkCyclesPerEdge float64
	AtomicUpdates          bool
	// SpatialReuseFactor and BoundaryRemoteFraction forward to the vertex
	// cost model (see VertexModelSpec).
	SpatialReuseFactor     float64
	BoundaryRemoteFraction float64
}

// RunVertexEngine executes a pull-based vertex-centric PageRank per cfg:
// PrepareVertex followed by ExecVertex.
func RunVertexEngine(g *graph.Graph, o Options, cfg VertexEngineConfig) (*Result, error) {
	prep, err := PrepareVertex(g, o, cfg)
	if err != nil {
		return nil, err
	}
	return ExecVertex(prep, o, cfg)
}

// PrepareVertex builds the preprocessing artifact of a vertex-centric
// engine: the in-edge (CSC) form on the graph plus the 1/outdeg array. The
// artifact is machine- and thread-independent, so v-PR and Polymer share
// cache entries for the same graph.
func PrepareVertex(g *graph.Graph, o Options, cfg VertexEngineConfig) (*Prepared, error) {
	if o.Machine == nil {
		o.Machine = machine.SkylakeSilver4210()
	}
	m := o.Machine
	o = o.WithDefaults(cfg.DefaultThreads(m))
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("%s: empty graph", cfg.Name)
	}
	rec := o.Obs
	key := PrepKey{Kind: PrepVertex}
	return MakePrepared(cfg.Name, g, m, o, key, func() (any, error) {
		start := time.Now()
		BuildInSerialized(g)
		inv := InvOutDegrees(g)
		if tr := rec.T(); tr != nil {
			tr.Span(RunnerLane(o.Threads), SpanPrepIndex, -1, start)
		}
		return &VertexArtifact{Inv: inv}, nil
	}, func() {
		// A cache hit built the payload from a content-identical graph; this
		// pointer still needs its own CSC form.
		BuildInSerialized(g)
	})
}

// ExecVertex runs the pull-based iterative phase of a vertex-centric engine
// against a Prepared artifact. Safe for concurrent calls sharing one
// artifact.
func ExecVertex(prep *Prepared, o Options, cfg VertexEngineConfig) (*Result, error) {
	if err := prep.CheckExec(cfg.Name, PrepVertex); err != nil {
		return nil, err
	}
	if o.Machine == nil {
		o.Machine = prep.Machine()
	}
	m := o.Machine
	o = o.WithDefaults(cfg.DefaultThreads(m))
	if err := o.Validate(); err != nil {
		return nil, err
	}
	g := prep.Graph()
	n := g.NumVertices()
	threads := o.Threads
	if threads > n {
		threads = n
	}
	rec := o.Obs
	tr := rec.T()
	RecordGraphCounters(rec.C(), n, g.NumEdges())

	// Thread vertex ranges are thread-count-dependent, so they are computed
	// per Exec on top of the artifact's CSC form (cheap: O(V)).
	var bounds []int
	if cfg.NUMAAware {
		// Split vertices across nodes edge-balanced, then across each
		// node's threads — Polymer's sub-graph-per-node structure.
		perNode := threads / m.NUMANodes
		if perNode < 1 {
			perNode = 1
			threads = m.NUMANodes
		} else {
			threads = perNode * m.NUMANodes
		}
		nodeBounds := SplitByWeight(g.InOffsets(), m.NUMANodes)
		bounds = []int{0}
		inOff := g.InOffsets()
		for nd := 0; nd < m.NUMANodes; nd++ {
			lo, hi := nodeBounds[nd], nodeBounds[nd+1]
			// Edge-balanced split of [lo,hi) into perNode ranges.
			sub := make([]int64, hi-lo+1)
			for i := range sub {
				sub[i] = inOff[lo+i] - inOff[lo]
			}
			sb := SplitByWeight(sub, perNode)
			for _, b := range sb[1:] {
				bounds = append(bounds, lo+b)
			}
		}
	} else {
		bounds = SplitByWeight(g.InOffsets(), threads)
	}

	// Simulated scheduling: Algorithm-1 pools per phase; Polymer binds its
	// threads to nodes (and pays the migrations), v-PR does not.
	regions := o.Iterations * 2
	schedStats, placementNodes, placementShared, err := obliviousSchedule(m, o.SchedSeed, regions, threads, cfg.NUMAAware)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}
	if cfg.NUMAAware {
		// The model's locality accounting keys off the thread's node, which
		// for Polymer is determined by its vertex range, not the random
		// placement snapshot.
		perNode := threads / m.NUMANodes
		for t := range placementNodes {
			placementNodes[t] = t / perNode
			if placementNodes[t] >= m.NUMANodes {
				placementNodes[t] = m.NUMANodes - 1
			}
		}
	}
	SetNodeLanes(tr, placementNodes)

	// Real execution.
	ranks := InitRanks(n)
	contrib := make([]float32, n)
	inv := prep.vert.Inv
	base := float32((1 - o.Damping) / float64(n))
	d := float32(o.Damping)
	partials := make([]padF64, threads)
	inOff := g.InOffsets()
	inAdj := g.InEdges()

	stopRun := rec.C().Phase(PhaseRun)
	wallStart := time.Now()
	var redis float32
	performed := 0
	runner := RunnerLane(threads)
	needResidual := o.Tolerance > 0 || rec != nil
	residuals := make([]padF64, threads)
	for it := 0; it < o.Iterations; it++ {
		performed++
		var itStart time.Time
		if rec != nil {
			itStart = time.Now()
		}
		// Region 1: contributions + dangling partials.
		RunThreads(threads, func(tid int) {
			var spanStart time.Time
			if tr != nil {
				spanStart = time.Now()
			}
			var dangling float64
			for v := bounds[tid]; v < bounds[tid+1]; v++ {
				iv := inv[v]
				if iv == 0 {
					dangling += float64(ranks[v])
					contrib[v] = 0
					continue
				}
				contrib[v] = ranks[v] * iv
			}
			partials[tid].v = dangling
			if tr != nil {
				tr.Span(tid, SpanScatter, it, spanStart)
			}
		})
		var serialStart time.Time
		if tr != nil {
			serialStart = time.Now()
		}
		var sum float64
		for i := range partials {
			sum += partials[i].v
		}
		redis = d * float32(sum/float64(n))
		if tr != nil {
			tr.Span(runner, SpanReduce, it, serialStart)
		}
		// Region 2: pull.
		RunThreads(threads, func(tid int) {
			var spanStart time.Time
			if tr != nil {
				spanStart = time.Now()
			}
			res := residuals[tid].v
			for v := bounds[tid]; v < bounds[tid+1]; v++ {
				var acc float32
				for _, u := range inAdj[inOff[v]:inOff[v+1]] {
					acc += contrib[u]
				}
				old := ranks[v]
				nv := base + d*acc + redis
				ranks[v] = nv
				diff := float64(nv - old)
				if diff < 0 {
					diff = -diff
				}
				if diff > res {
					res = diff
				}
			}
			residuals[tid].v = res
			if tr != nil {
				tr.Span(tid, SpanGather, it, spanStart)
			}
		})
		if needResidual {
			if tr != nil {
				serialStart = time.Now()
			}
			var maxRes float64
			for i := range residuals {
				if residuals[i].v > maxRes {
					maxRes = residuals[i].v
				}
				residuals[i].v = 0
			}
			if tr != nil {
				tr.Span(runner, SpanApply, it, serialStart)
			}
			if rec != nil {
				rec.RecordIteration(obs.IterationStats{
					Iter:         it,
					WallSeconds:  time.Since(itStart).Seconds(),
					Residual:     maxRes,
					DanglingMass: sum,
				})
			}
			if o.Tolerance > 0 && maxRes < o.Tolerance {
				break
			}
		}
	}
	o.Iterations = performed
	wall := time.Since(wallStart)
	stopRun()

	// Analytic model.
	costs, barriers, err := BuildVertexModel(VertexModelSpec{
		Machine: m, G: g,
		ThreadNode: placementNodes, ThreadShared: placementShared,
		Bounds:                 bounds,
		NUMAAware:              cfg.NUMAAware,
		FrontierBytesPerVertex: cfg.FrontierBytesPerVertex,
		FrameworkCyclesPerEdge: cfg.FrameworkCyclesPerEdge,
		SpatialReuseFactor:     cfg.SpatialReuseFactor,
		BoundaryRemoteFraction: cfg.BoundaryRemoteFraction,
		AtomicUpdates:          cfg.AtomicUpdates,
		Iterations:             o.Iterations,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}
	rep, err := perfmodel.Estimate(perfmodel.Run{
		Machine: m, Threads: costs,
		Barriers:             barriers,
		SchedCostNS:          schedStats.CostNS,
		EdgesProcessed:       g.NumEdges() * int64(o.Iterations),
		Iterations:           o.Iterations,
		UncoordinatedStreams: true,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}

	res := &Result{
		Engine:           cfg.Name,
		Ranks:            ranks,
		Iterations:       o.Iterations,
		Threads:          threads,
		WallSeconds:      wall.Seconds(),
		PrepSeconds:      prep.PrepSeconds,
		PrepBuildSeconds: prep.BuildSeconds,
		PrepFromCache:    prep.FromCache,
		Model:            rep,
		Sched:            schedStats,
	}
	FinishRun(rec, res, m, false)
	return res, nil
}
