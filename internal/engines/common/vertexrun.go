package common

import (
	"fmt"
	"time"

	"hipa/internal/graph"
	"hipa/internal/machine"
	"hipa/internal/platform"
)

// VertexEngineConfig parameterises the two vertex-centric engines (v-PR and
// the Polymer-like framework), which share the pull-based execution: per
// iteration, one parallel pass computes contributions, a second pulls them
// over in-edges.
type VertexEngineConfig struct {
	Name           string
	DefaultThreads func(m *machine.Machine) int
	// NUMAAware assigns thread vertex ranges node-major with local data
	// placement and node-bound threads (Polymer); otherwise ranges are
	// plain edge-balanced chunks over interleaved data (v-PR).
	NUMAAware bool
	// FrontierBytesPerVertex and FrameworkCyclesPerEdge / AtomicUpdates
	// model framework overheads (0/0/false for hand-coded v-PR).
	FrontierBytesPerVertex int64
	FrameworkCyclesPerEdge float64
	AtomicUpdates          bool
	// SpatialReuseFactor and BoundaryRemoteFraction forward to the vertex
	// cost accounting (see platform.VertexRun).
	SpatialReuseFactor     float64
	BoundaryRemoteFraction float64
}

// RunVertexEngine executes a pull-based vertex-centric PageRank per cfg:
// PrepareVertex followed by ExecVertex.
func RunVertexEngine(g *graph.Graph, o Options, cfg VertexEngineConfig) (*Result, error) {
	prep, err := PrepareVertex(g, o, cfg)
	if err != nil {
		return nil, err
	}
	return ExecVertex(prep, o, cfg)
}

// PrepareVertex builds the preprocessing artifact of a vertex-centric
// engine: the in-edge (CSC) form on the graph plus the 1/outdeg array. The
// artifact is machine- and thread-independent, so v-PR and Polymer share
// cache entries for the same graph.
func PrepareVertex(g *graph.Graph, o Options, cfg VertexEngineConfig) (*Prepared, error) {
	o = o.ResolveMachine(nil)
	m := o.Machine
	o = o.WithDefaults(cfg.DefaultThreads(m))
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("%s: empty graph", cfg.Name)
	}
	rec := o.Obs
	key := PrepKey{Kind: PrepVertex}
	return MakePrepared(cfg.Name, g, m, o, key, func() (any, error) {
		start := time.Now()
		stopIdx := rec.C().Phase(PhasePrepIndex)
		g.BuildInWorkers(o.PrepParallelism)
		inv := InvOutDegreesWorkers(g, o.PrepParallelism)
		stopIdx()
		if tr := rec.T(); tr != nil {
			tr.Span(RunnerLane(o.Threads), SpanPrepIndex, -1, start)
		}
		return &VertexArtifact{Inv: inv}, nil
	}, func() {
		// A cache hit built the payload from a content-identical graph; this
		// pointer still needs its own CSC form.
		g.BuildInWorkers(o.PrepParallelism)
	})
}

// vertexKernels builds the phase kernels of a pull-based vertex-centric
// engine over static per-thread vertex ranges: the contribution pass maps
// to Scatter, the pull pass to Gather.
type vertexKernels struct {
	bounds    []int
	ranks     []float32
	contrib   []float32
	inv       []float32
	inOff     []int64
	inAdj     []graph.VertexID
	base      float32
	d         float32
	redis     float32
	sum       float64 // dangling mass of the last Reduce
	n         int
	partials  []padF64
	residuals []padF64
}

func (k *vertexKernels) scatter(tid int) {
	var dangling float64
	for v := k.bounds[tid]; v < k.bounds[tid+1]; v++ {
		iv := k.inv[v]
		if iv == 0 {
			dangling += float64(k.ranks[v])
			k.contrib[v] = 0
			continue
		}
		k.contrib[v] = k.ranks[v] * iv
	}
	k.partials[tid].v = dangling
}

func (k *vertexKernels) reduce() {
	var sum float64
	for i := range k.partials {
		sum += k.partials[i].v
	}
	k.sum = sum
	k.redis = k.d * float32(sum/float64(k.n))
}

func (k *vertexKernels) gather(tid int) {
	res := k.residuals[tid].v
	redis := k.redis
	for v := k.bounds[tid]; v < k.bounds[tid+1]; v++ {
		var acc float32
		for _, u := range k.inAdj[k.inOff[v]:k.inOff[v+1]] {
			acc += k.contrib[u]
		}
		old := k.ranks[v]
		nv := k.base + k.d*acc + redis
		k.ranks[v] = nv
		diff := float64(nv - old)
		if diff < 0 {
			diff = -diff
		}
		if diff > res {
			res = diff
		}
	}
	k.residuals[tid].v = res
}

func (k *vertexKernels) residual() float64 {
	var maxRes float64
	for i := range k.residuals {
		if k.residuals[i].v > maxRes {
			maxRes = k.residuals[i].v
		}
		k.residuals[i].v = 0
	}
	return maxRes
}

// ExecVertex runs the pull-based iterative phase of a vertex-centric engine
// against a Prepared artifact. Safe for concurrent calls sharing one
// artifact.
func ExecVertex(prep *Prepared, o Options, cfg VertexEngineConfig) (*Result, error) {
	if err := prep.CheckExec(cfg.Name, PrepVertex); err != nil {
		return nil, err
	}
	o = o.ResolveMachine(prep.Machine())
	m := o.Machine
	o = o.WithDefaults(cfg.DefaultThreads(m))
	if err := o.Validate(); err != nil {
		return nil, err
	}
	g := prep.Graph()
	n := g.NumVertices()
	threads := o.Threads
	if threads > n {
		threads = n
	}
	rec := o.Obs
	RecordGraphCounters(rec.C(), n, g.NumEdges())

	// Thread vertex ranges are thread-count-dependent, so they are computed
	// per Exec on top of the artifact's CSC form (cheap: O(V)).
	var bounds []int
	if cfg.NUMAAware {
		// Split vertices across nodes edge-balanced, then across each
		// node's threads — Polymer's sub-graph-per-node structure.
		perNode := threads / m.NUMANodes
		if perNode < 1 {
			perNode = 1
			threads = m.NUMANodes
		} else {
			threads = perNode * m.NUMANodes
		}
		nodeBounds := SplitByWeight(g.InOffsets(), m.NUMANodes)
		bounds = []int{0}
		inOff := g.InOffsets()
		for nd := 0; nd < m.NUMANodes; nd++ {
			lo, hi := nodeBounds[nd], nodeBounds[nd+1]
			// Edge-balanced split of [lo,hi) into perNode ranges.
			sub := make([]int64, hi-lo+1)
			for i := range sub {
				sub[i] = inOff[lo+i] - inOff[lo]
			}
			sb := SplitByWeight(sub, perNode)
			for _, b := range sb[1:] {
				bounds = append(bounds, lo+b)
			}
		}
	} else {
		bounds = SplitByWeight(g.InOffsets(), threads)
	}

	// Platform thread lifecycle: Algorithm-1 pools per phase; Polymer binds
	// its threads to nodes (and pays the migrations), v-PR does not.
	pf := o.Platform
	regions := o.Iterations * 2
	pool, err := pf.SpawnOblivious(o.SchedSeed, regions, threads, cfg.NUMAAware)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}
	if cfg.NUMAAware && pool.Nodes != nil {
		// The accounting's locality keys off the thread's node, which for
		// Polymer is determined by its vertex range, not the random
		// placement snapshot.
		perNode := threads / m.NUMANodes
		for t := range pool.Nodes {
			pool.Nodes[t] = t / perNode
			if pool.Nodes[t] >= m.NUMANodes {
				pool.Nodes[t] = m.NUMANodes - 1
			}
		}
	}
	pool.SetLanes(rec.T())

	// Real execution through the shared superstep driver.
	k := &vertexKernels{
		bounds:    bounds,
		ranks:     InitRanks(n),
		contrib:   make([]float32, n),
		inv:       prep.vert.Inv,
		inOff:     g.InOffsets(),
		inAdj:     g.InEdges(),
		base:      float32((1 - o.Damping) / float64(n)),
		d:         float32(o.Damping),
		n:         n,
		partials:  make([]padF64, threads),
		residuals: make([]padF64, threads),
	}
	stopRun := rec.C().Phase(PhaseRun)
	wallStart := time.Now()
	performed := RunSupersteps(SuperstepConfig{
		Threads:     threads,
		Parallelism: o.GoParallelism,
		Iterations:  o.Iterations,
		Tolerance:   o.Tolerance,
		Rec:         rec,
	}, PhaseKernels{
		Scatter:      k.scatter,
		Reduce:       k.reduce,
		Gather:       k.gather,
		Residual:     k.residual,
		DanglingMass: func() float64 { return k.sum },
	})
	o.Iterations = performed
	wall := time.Since(wallStart)
	stopRun()

	// Cost accounting on the platform.
	acct := pf.NewAccounting(pool)
	if pf.Modeled() {
		if err := acct.AddVertexRun(platform.VertexRun{
			G:                      g,
			Bounds:                 bounds,
			NUMAAware:              cfg.NUMAAware,
			FrontierBytesPerVertex: cfg.FrontierBytesPerVertex,
			FrameworkCyclesPerEdge: cfg.FrameworkCyclesPerEdge,
			SpatialReuseFactor:     cfg.SpatialReuseFactor,
			BoundaryRemoteFraction: cfg.BoundaryRemoteFraction,
			AtomicUpdates:          cfg.AtomicUpdates,
			Iterations:             o.Iterations,
		}); err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
	}
	rep, err := pf.Finalize(acct, platform.RunShape{
		Iterations:           o.Iterations,
		EdgesProcessed:       g.NumEdges() * int64(o.Iterations),
		UncoordinatedStreams: true,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}

	res := &Result{
		Engine:           cfg.Name,
		Ranks:            k.ranks,
		Iterations:       o.Iterations,
		Threads:          threads,
		WallSeconds:      wall.Seconds(),
		PrepSeconds:      prep.PrepSeconds,
		PrepBuildSeconds: prep.BuildSeconds,
		PrepFromCache:    prep.FromCache,
		Model:            rep,
		Sched:            pool.Stats,
	}
	FinishRun(rec, res, m, false)
	return res, nil
}
