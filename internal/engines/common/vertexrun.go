package common

import (
	"fmt"
	"time"

	"hipa/internal/execbuf"
	"hipa/internal/graph"
	"hipa/internal/machine"
	"hipa/internal/platform"
)

// VertexEngineConfig parameterises the two vertex-centric engines (v-PR and
// the Polymer-like framework), which share the pull-based execution: per
// iteration, one parallel pass computes contributions, a second pulls them
// over in-edges.
type VertexEngineConfig struct {
	Name           string
	DefaultThreads func(m *machine.Machine) int
	// NUMAAware assigns thread vertex ranges node-major with local data
	// placement and node-bound threads (Polymer); otherwise ranges are
	// plain edge-balanced chunks over interleaved data (v-PR).
	NUMAAware bool
	// FrontierBytesPerVertex and FrameworkCyclesPerEdge / AtomicUpdates
	// model framework overheads (0/0/false for hand-coded v-PR).
	FrontierBytesPerVertex int64
	FrameworkCyclesPerEdge float64
	AtomicUpdates          bool
	// SpatialReuseFactor and BoundaryRemoteFraction forward to the vertex
	// cost accounting (see platform.VertexRun).
	SpatialReuseFactor     float64
	BoundaryRemoteFraction float64
}

// RunVertexEngine executes a pull-based vertex-centric PageRank per cfg:
// PrepareVertex followed by ExecVertex.
func RunVertexEngine(g *graph.Graph, o Options, cfg VertexEngineConfig) (*Result, error) {
	prep, err := PrepareVertex(g, o, cfg)
	if err != nil {
		return nil, err
	}
	return ExecVertex(prep, o, cfg)
}

// PrepareVertex builds the preprocessing artifact of a vertex-centric
// engine: the in-edge (CSC) form on the graph plus the 1/outdeg array. The
// artifact is machine- and thread-independent, so v-PR and Polymer share
// cache entries for the same graph.
func PrepareVertex(g *graph.Graph, o Options, cfg VertexEngineConfig) (*Prepared, error) {
	o = o.ResolveMachine(nil)
	m := o.Machine
	o = o.WithDefaults(cfg.DefaultThreads(m))
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("%s: empty graph", cfg.Name)
	}
	rec := o.Obs
	key := PrepKey{Kind: PrepVertex}
	return MakePrepared(cfg.Name, g, m, o, key, func() (any, error) {
		start := time.Now()
		stopIdx := rec.C().Phase(PhasePrepIndex)
		g.BuildInWorkers(o.PrepParallelism)
		inv := InvOutDegreesWorkers(g, o.PrepParallelism)
		stopIdx()
		ObservePrepStage(SpanPrepIndex, time.Since(start).Seconds())
		if tr := rec.T(); tr != nil {
			tr.Span(RunnerLane(o.Threads), SpanPrepIndex, -1, start)
		}
		return &VertexArtifact{Inv: inv}, nil
	}, func() {
		// A cache hit built the payload from a content-identical graph; this
		// pointer still needs its own CSC form.
		g.BuildInWorkers(o.PrepParallelism)
	})
}

// vertexKernels builds the phase kernels of a pull-based vertex-centric
// engine over static per-thread vertex ranges: the contribution pass maps
// to Scatter, the pull pass to Gather. The dangling sum is fused into the
// gather pass, which re-sums its own range's dangling mass from the ranks
// it just wrote — bit-identical to the scatter-side sum it replaces because
// both fold the same vertices in the same order per thread. seedDangling
// establishes the invariant for iteration zero.
type vertexKernels struct {
	bounds    []int
	ranks     []float32
	contrib   []float32
	inv       []float32
	inOff     []int64
	inAdj     []graph.VertexID
	base      float32
	d         float32
	redis     float32
	sum       float64 // dangling mass of the last Reduce
	n         int
	partials  []execbuf.PadF64
	residuals []execbuf.PadF64
}

// seedDangling computes each thread's iteration-zero dangling partial over
// its own vertex range, exactly as the fused gather will keep doing.
func (k *vertexKernels) seedDangling() {
	for tid := 0; tid+1 < len(k.bounds); tid++ {
		var dangling float64
		for v := k.bounds[tid]; v < k.bounds[tid+1]; v++ {
			if k.inv[v] == 0 {
				dangling += float64(k.ranks[v])
			}
		}
		k.partials[tid].V = dangling
	}
}

func (k *vertexKernels) scatter(tid int) {
	ranks := k.ranks
	inv := k.inv
	lo, hi := k.bounds[tid], k.bounds[tid+1]
	contrib := k.contrib[lo:hi:hi]
	for i, r := range ranks[lo:hi:hi] {
		// Dangling vertices (inv 0) contribute 0; their mass was folded into
		// the partials by the previous gather (or seedDangling).
		contrib[i] = r * inv[lo+i]
	}
}

func (k *vertexKernels) reduce() {
	var sum float64
	for i := range k.partials {
		sum += k.partials[i].V
	}
	k.sum = sum
	k.redis = k.d * float32(sum/float64(k.n))
}

func (k *vertexKernels) gather(tid int) {
	res := k.residuals[tid].V
	base, d, redis := k.base, k.d, k.redis
	ranks, contrib, inv := k.ranks, k.contrib, k.inv
	inOff, inAdj := k.inOff, k.inAdj
	var dangling float64
	for v := k.bounds[tid]; v < k.bounds[tid+1]; v++ {
		lo, hi := inOff[v], inOff[v+1]
		in := inAdj[lo:hi:hi]
		var acc float32
		// 4-way unrolled pull with the adds kept strictly sequential — the
		// float32 fold order defines the result bits and must not change.
		i := 0
		for ; i+4 <= len(in); i += 4 {
			acc += contrib[in[i]]
			acc += contrib[in[i+1]]
			acc += contrib[in[i+2]]
			acc += contrib[in[i+3]]
		}
		for ; i < len(in); i++ {
			acc += contrib[in[i]]
		}
		old := ranks[v]
		nv := base + d*acc + redis
		ranks[v] = nv
		if inv[v] == 0 {
			dangling += float64(nv)
		}
		diff := float64(nv - old)
		if diff < 0 {
			diff = -diff
		}
		if diff > res {
			res = diff
		}
	}
	k.residuals[tid].V = res
	k.partials[tid].V = dangling
}

func (k *vertexKernels) residual() float64 {
	var maxRes float64
	for i := range k.residuals {
		if k.residuals[i].V > maxRes {
			maxRes = k.residuals[i].V
		}
		k.residuals[i].V = 0
	}
	return maxRes
}

// ExecVertex runs the pull-based iterative phase of a vertex-centric engine
// against a Prepared artifact. Safe for concurrent calls sharing one
// artifact.
func ExecVertex(prep *Prepared, o Options, cfg VertexEngineConfig) (*Result, error) {
	if err := prep.CheckExec(cfg.Name, PrepVertex); err != nil {
		return nil, err
	}
	o = o.ResolveMachine(prep.Machine())
	m := o.Machine
	o = o.WithDefaults(cfg.DefaultThreads(m))
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.Warm != nil {
		return nil, fmt.Errorf("%s: warm starts are not supported — use HiPa or the delta engine for incremental re-ranking", cfg.Name)
	}
	g := prep.Graph()
	n := g.NumVertices()
	threads := o.Threads
	if threads > n {
		threads = n
	}
	rec := o.Obs
	RecordGraphCounters(rec.C(), n, g.NumEdges())

	// Thread vertex ranges are thread-count-dependent, so they are computed
	// per Exec on top of the artifact's CSC form (cheap: O(V)).
	var bounds []int
	if cfg.NUMAAware {
		// Split vertices across nodes edge-balanced, then across each
		// node's threads — Polymer's sub-graph-per-node structure.
		perNode := threads / m.NUMANodes
		if perNode < 1 {
			perNode = 1
			threads = m.NUMANodes
		} else {
			threads = perNode * m.NUMANodes
		}
		nodeBounds := SplitByWeight(g.InOffsets(), m.NUMANodes)
		bounds = []int{0}
		inOff := g.InOffsets()
		for nd := 0; nd < m.NUMANodes; nd++ {
			lo, hi := nodeBounds[nd], nodeBounds[nd+1]
			// Edge-balanced split of [lo,hi) into perNode ranges.
			sub := make([]int64, hi-lo+1)
			for i := range sub {
				sub[i] = inOff[lo+i] - inOff[lo]
			}
			sb := SplitByWeight(sub, perNode)
			for _, b := range sb[1:] {
				bounds = append(bounds, lo+b)
			}
		}
	} else {
		bounds = SplitByWeight(g.InOffsets(), threads)
	}

	// Platform thread lifecycle: Algorithm-1 pools per phase; Polymer binds
	// its threads to nodes (and pays the migrations), v-PR does not.
	pf := o.Platform
	regions := o.Iterations * 2
	pool, err := pf.SpawnOblivious(o.SchedSeed, regions, threads, cfg.NUMAAware)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}
	if cfg.NUMAAware && pool.Nodes != nil {
		// The accounting's locality keys off the thread's node, which for
		// Polymer is determined by its vertex range, not the random
		// placement snapshot.
		perNode := threads / m.NUMANodes
		for t := range pool.Nodes {
			pool.Nodes[t] = t / perNode
			if pool.Nodes[t] >= m.NUMANodes {
				pool.Nodes[t] = m.NUMANodes - 1
			}
		}
	}
	pool.SetLanes(rec.T())

	// Real execution through the shared superstep driver, on scratch buffers
	// drawn from the artifact's arena pool (warm across repeated Execs).
	arena := prep.AcquireArena()
	defer prep.ReleaseArena(arena)
	inOff, inAdj := g.InCSR()
	k := &vertexKernels{
		bounds:    bounds,
		ranks:     arena.Ranks(n),
		contrib:   arena.Contrib(n),
		inv:       prep.vert.Inv,
		inOff:     inOff,
		inAdj:     inAdj,
		base:      float32((1 - o.Damping) / float64(n)),
		d:         float32(o.Damping),
		n:         n,
		partials:  arena.Partials(threads),
		residuals: arena.Residuals(threads),
	}
	FillInitRanks(k.ranks)
	k.seedDangling()
	stopRun := rec.C().Phase(PhaseRun)
	wallStart := time.Now()
	performed := RunSupersteps(SuperstepConfig{
		Engine:      cfg.Name,
		Threads:     threads,
		Parallelism: o.GoParallelism,
		Iterations:  o.Iterations,
		Tolerance:   o.Tolerance,
		Rec:         rec,
	}, PhaseKernels{
		Scatter:      k.scatter,
		Reduce:       k.reduce,
		Gather:       k.gather,
		Residual:     k.residual,
		DanglingMass: func() float64 { return k.sum },
	})
	o.Iterations = performed
	wall := time.Since(wallStart)
	stopRun()

	// Cost accounting on the platform.
	acct := pf.NewAccounting(pool)
	if pf.Modeled() {
		if err := acct.AddVertexRun(platform.VertexRun{
			G:                      g,
			Bounds:                 bounds,
			NUMAAware:              cfg.NUMAAware,
			FrontierBytesPerVertex: cfg.FrontierBytesPerVertex,
			FrameworkCyclesPerEdge: cfg.FrameworkCyclesPerEdge,
			SpatialReuseFactor:     cfg.SpatialReuseFactor,
			BoundaryRemoteFraction: cfg.BoundaryRemoteFraction,
			AtomicUpdates:          cfg.AtomicUpdates,
			Iterations:             o.Iterations,
		}); err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
	}
	rep, err := pf.Finalize(acct, platform.RunShape{
		Iterations:           o.Iterations,
		EdgesProcessed:       g.NumEdges() * int64(o.Iterations),
		UncoordinatedStreams: true,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}

	// The arena (and with it k.ranks) is recycled by the next Exec; the
	// result keeps its own copy — the single per-Exec allocation.
	ranks := make([]float32, n)
	copy(ranks, k.ranks)
	res := &Result{
		Engine:           cfg.Name,
		Ranks:            ranks,
		Iterations:       o.Iterations,
		Threads:          threads,
		WallSeconds:      wall.Seconds(),
		PrepSeconds:      prep.PrepSeconds,
		PrepBuildSeconds: prep.BuildSeconds,
		PrepFromCache:    prep.FromCache,
		Model:            rep,
		Sched:            pool.Stats,
	}
	FinishRun(rec, res, m, false)
	return res, nil
}
