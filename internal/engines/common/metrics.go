package common

import (
	"strings"
	"sync"

	"hipa/internal/obs"
)

// This file wires the engines into the process-wide obs registry. The
// per-run Collector (obs.go in internal/obs) answers "what happened in this
// run"; the registry series here answer "what has this process been doing",
// continuously scrapeable at /metrics while a -repeat loop or a server is
// live. Handles are resolved once per Exec (NewSuperstepLoop) and recording
// is pure atomics, so the superstep loop stays at zero allocations per
// iteration.

// Registry metric families recorded by the engine layer.
const (
	MetricSuperstepSeconds = "hipa_superstep_seconds"
	MetricPhaseSeconds     = "hipa_phase_seconds"
	MetricResidual         = "hipa_residual"
	MetricIterationsTotal  = "hipa_iterations_total"
	MetricLocalBytesTotal  = "hipa_model_local_bytes_total"
	MetricRemoteBytesTotal = "hipa_model_remote_bytes_total"
	MetricPrepStageSeconds = "hipa_prep_stage_seconds"
	// Frontier series, recorded only by active-set engines (the dense five
	// never emit them).
	MetricActiveFraction         = "hipa_frontier_active_fraction"
	MetricPartitionsSkippedTotal = "hipa_frontier_partitions_skipped_total"
)

var engineHelpOnce sync.Once

func registerEngineHelp() {
	engineHelpOnce.Do(func() {
		reg := obs.Default()
		reg.SetHelp(MetricSuperstepSeconds, "Wall time of one complete superstep (scatter, reduce, gather, apply), per engine.")
		reg.SetHelp(MetricPhaseSeconds, "Wall time of one parallel phase of a superstep, per engine and phase.")
		reg.SetHelp(MetricResidual, "Per-superstep L-infinity rank change, per engine.")
		reg.SetHelp(MetricIterationsTotal, "Supersteps executed, per engine.")
		reg.SetHelp(MetricLocalBytesTotal, "Modelled NUMA-local DRAM traffic of finished runs, per engine.")
		reg.SetHelp(MetricRemoteBytesTotal, "Modelled NUMA-remote DRAM traffic of finished runs, per engine.")
		reg.SetHelp(MetricPrepStageSeconds, "Wall time of one preprocessing stage (partition, layout, index, fingerprint).")
		reg.SetHelp(MetricActiveFraction, "Per-iteration active-vertex fraction of a frontier-aware engine (1.0 = dense).")
		reg.SetHelp(MetricPartitionsSkippedTotal, "Partition-iterations skipped by frontier pruning, per engine.")
	})
}

// engineMetrics are one engine's registry handles, resolved once and cached
// for the process lifetime so a repeat loop re-resolves nothing.
type engineMetrics struct {
	superstep      *obs.Histogram
	scatter        *obs.Histogram
	gather         *obs.Histogram
	residual       *obs.Histogram
	activeFraction *obs.Histogram
	iterations     *obs.Counter
	localBytes     *obs.Counter
	remoteBytes    *obs.Counter
	partsSkipped   *obs.Counter
}

var engineMetricsCache sync.Map // engine name -> *engineMetrics

// metricsFor returns the cached registry handles for the named engine, or
// nil when no engine name is set (anonymous SuperstepLoop uses — tests,
// future engines — record nothing process-wide).
func metricsFor(engine string) *engineMetrics {
	if engine == "" {
		return nil
	}
	if v, ok := engineMetricsCache.Load(engine); ok {
		return v.(*engineMetrics)
	}
	registerEngineHelp()
	reg := obs.Default()
	em := &engineMetrics{
		superstep:      reg.Histogram(MetricSuperstepSeconds, "engine", engine),
		scatter:        reg.Histogram(MetricPhaseSeconds, "engine", engine, "phase", SpanScatter),
		gather:         reg.Histogram(MetricPhaseSeconds, "engine", engine, "phase", SpanGather),
		residual:       reg.Histogram(MetricResidual, "engine", engine),
		activeFraction: reg.Histogram(MetricActiveFraction, "engine", engine),
		iterations:     reg.Counter(MetricIterationsTotal, "engine", engine),
		localBytes:     reg.Counter(MetricLocalBytesTotal, "engine", engine),
		remoteBytes:    reg.Counter(MetricRemoteBytesTotal, "engine", engine),
		partsSkipped:   reg.Counter(MetricPartitionsSkippedTotal, "engine", engine),
	}
	v, _ := engineMetricsCache.LoadOrStore(engine, em)
	return v.(*engineMetrics)
}

var prepStageCache sync.Map // stage span name -> *obs.Histogram

// ObservePrepStage records one preprocessing stage's duration into the
// process-wide prep-stage histogram. stage is a prep span/phase name
// (SpanPrepPartition, ...); the "prep:" prefix becomes the stage label.
func ObservePrepStage(stage string, seconds float64) {
	if v, ok := prepStageCache.Load(stage); ok {
		v.(*obs.Histogram).Observe(seconds)
		return
	}
	registerEngineHelp()
	h := obs.Default().Histogram(MetricPrepStageSeconds, "stage", strings.TrimPrefix(stage, "prep:"))
	v, _ := prepStageCache.LoadOrStore(stage, h)
	v.(*obs.Histogram).Observe(seconds)
}
