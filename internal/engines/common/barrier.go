package common

import "sync"

// Barrier is a reusable synchronisation barrier for a fixed party count,
// mirroring the per-phase synchronisation of the scatter-gather model
// (Algorithm 2 line 4). It is safe for repeated use across iterations.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     uint64
}

// NewBarrier returns a barrier for n parties. n must be >= 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("common: barrier needs at least one party")
	}
	b := &Barrier{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties have called Wait, then releases them all.
// The returned value is true for exactly one caller per generation (the last
// arriver), which can perform serial work; note the serial work then happens
// *after* release, so use Wait's return only for idempotent bookkeeping, or
// call WaitLeader for pre-release serial sections.
func (b *Barrier) Wait() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return true
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	return false
}

// WaitLeader blocks all parties; the last arriver runs fn while everyone is
// still parked, then releases the barrier. This is the reduction hook used
// for the per-iteration dangling-mass sum.
func (b *Barrier) WaitLeader(fn func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		if fn != nil {
			fn()
		}
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}
