package common

import (
	"fmt"
	"time"

	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/partition"
	"hipa/internal/platform"
)

// ObliviousPartitionConfig parameterises the two NUMA-oblivious
// partition-centric engines (p-PR and the GPOP-like framework), which share
// the Algorithm-1 execution structure: per-phase thread pools and FCFS
// partition claiming over an interleaved data layout.
type ObliviousPartitionConfig struct {
	Name string
	// DefaultThreads is the paper's tuned thread count (20 for both p-PR
	// and GPOP on the Skylake testbed — half the logical cores, §4.1).
	DefaultThreads func(m *machine.Machine) int
	// DefaultPartitionBytes is the engine's tuned partition size (256KB for
	// p-PR, 1MB for GPOP).
	DefaultPartitionBytes int
	// ExtraBytesPerPartition and ExtraCyclesPerEdge model framework
	// overheads (GPOP's per-partition Flags/State and generality layer).
	ExtraBytesPerPartition int64
	ExtraCyclesPerEdge     float64
}

// RunObliviousPartitionEngine executes a NUMA-oblivious partition-centric
// PageRank per cfg: PrepareOblivious followed by ExecOblivious.
func RunObliviousPartitionEngine(g *graph.Graph, o Options, cfg ObliviousPartitionConfig) (*Result, error) {
	prep, err := PrepareOblivious(g, o, cfg)
	if err != nil {
		return nil, err
	}
	return ExecOblivious(prep, o, cfg)
}

// PrepareOblivious builds the preprocessing artifact of a NUMA-oblivious
// partition-centric engine: a single flat list of cache-able partitions (no
// node assignment, no pinned groups) plus the compressed message layout.
func PrepareOblivious(g *graph.Graph, o Options, cfg ObliviousPartitionConfig) (*Prepared, error) {
	o = o.ResolveMachine(nil)
	m := o.Machine
	if o.PartitionBytes == 0 {
		o.PartitionBytes = cfg.DefaultPartitionBytes
	}
	o = o.WithDefaults(cfg.DefaultThreads(m))
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("%s: empty graph", cfg.Name)
	}
	rec := o.Obs
	runner := RunnerLane(o.Threads)
	key := PrepKey{
		Kind:           PrepPartition,
		PartitionBytes: o.PartitionBytes,
		BytesPerVertex: 4,
		Compress:       !o.NoCompress,
		Nodes:          1,
	}
	prep, err := MakePrepared(cfg.Name, g, m, o, key, func() (any, error) {
		tr := rec.T()
		partStart := time.Now()
		stopPart := rec.C().Phase(PhasePrepPartition)
		hier, err := partition.BuildWorkers(g, partition.Config{
			PartitionBytes: o.PartitionBytes,
			BytesPerVertex: 4,
			NumNodes:       1,
			GroupsPerNode:  1,
		}, o.PrepParallelism)
		stopPart()
		ObservePrepStage(SpanPrepPartition, time.Since(partStart).Seconds())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		if tr != nil {
			tr.Span(runner, SpanPrepPartition, -1, partStart)
		}
		layStart := time.Now()
		stopLay := rec.C().Phase(PhasePrepLayout)
		lay, err := layout.BuildWorkers(g, hier, !o.NoCompress, o.PrepParallelism)
		stopLay()
		ObservePrepStage(SpanPrepLayout, time.Since(layStart).Seconds())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		if tr != nil {
			tr.Span(runner, SpanPrepLayout, -1, layStart)
		}
		return &PartArtifact{Hier: hier, Lay: lay, Inv: InvOutDegreesWorkers(g, o.PrepParallelism)}, nil
	}, nil)
	if err != nil {
		return nil, err
	}
	rec.C().Add("partition.partitions", int64(prep.part.Hier.NumPartitions()))
	rec.C().Add("layout.messages", int64(prep.part.Lay.NumMessages()))
	return prep, nil
}

// ExecOblivious runs the FCFS iterative phase of a NUMA-oblivious
// partition-centric engine against a Prepared artifact. Safe for concurrent
// calls sharing one artifact.
func ExecOblivious(prep *Prepared, o Options, cfg ObliviousPartitionConfig) (*Result, error) {
	if err := prep.CheckExec(cfg.Name, PrepPartition); err != nil {
		return nil, err
	}
	o = o.ResolveMachine(prep.Machine())
	m := o.Machine
	if o.PartitionBytes == 0 {
		o.PartitionBytes = prep.Key().PartitionBytes
	}
	o = o.WithDefaults(cfg.DefaultThreads(m))
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.PartitionBytes != prep.Key().PartitionBytes {
		return nil, fmt.Errorf("%s: artifact was prepared with %dB partitions, not %dB", cfg.Name, prep.Key().PartitionBytes, o.PartitionBytes)
	}
	if !o.NoCompress != prep.Key().Compress {
		return nil, fmt.Errorf("%s: artifact compression does not match NoCompress=%v", cfg.Name, o.NoCompress)
	}
	if o.Warm != nil {
		return nil, fmt.Errorf("%s: warm starts are not supported — use HiPa or the delta engine for incremental re-ranking", cfg.Name)
	}
	g := prep.Graph()
	hier, lay := prep.part.Hier, prep.part.Lay
	rec := o.Obs
	RecordGraphCounters(rec.C(), g.NumVertices(), g.NumEdges())

	// Platform thread lifecycle: Algorithm 1 — a fresh pool per phase,
	// threads placed arbitrarily by the OS, no binding.
	pf := o.Platform
	regions := o.Iterations * 2
	pool, err := pf.SpawnOblivious(o.SchedSeed, regions, o.Threads, false)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}
	pool.SetLanes(rec.T())

	// Real execution through the shared superstep driver, on scratch buffers
	// drawn from the artifact's arena pool (warm across repeated Execs).
	arena := prep.AcquireArena()
	defer prep.ReleaseArena(arena)
	state := NewSGStateArena(g, hier, lay, prep.part.Inv, o.Damping, o.Threads, arena)
	stopRun := rec.C().Phase(PhaseRun)
	wallStart := time.Now()
	performed := RunSupersteps(SuperstepConfig{
		Engine:      cfg.Name,
		Threads:     o.Threads,
		Parallelism: o.GoParallelism,
		Iterations:  o.Iterations,
		Tolerance:   o.Tolerance,
		Rec:         rec,
	}, FCFSKernels(state))
	wall := time.Since(wallStart)
	stopRun()
	o.Iterations = performed

	// Cost accounting on the platform.
	acct := pf.NewAccounting(pool)
	if pf.Modeled() {
		lookup := partition.BuildLookup(hier)
		if err := acct.AddPartitionRun(platform.PartitionRun{
			Hier: hier, Lay: lay, Lookup: lookup,
			PartThread: platform.FCFSAssignment(hier, o.Threads),
			NUMAAware:  false,
			Iterations: o.Iterations,

			ExtraBytesPerPartition: cfg.ExtraBytesPerPartition,
			ExtraCyclesPerEdge:     cfg.ExtraCyclesPerEdge,
			WorkingSetSlack:        platform.FCFSWorkingSetSlack,
		}); err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
	}
	rep, err := pf.Finalize(acct, platform.RunShape{
		Iterations:           o.Iterations,
		EdgesProcessed:       g.NumEdges() * int64(o.Iterations),
		UncoordinatedStreams: true,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}

	// The arena (and with it state.Ranks) is recycled by the next Exec; the
	// result keeps its own copy — the single per-Exec allocation.
	ranks := make([]float32, len(state.Ranks))
	copy(ranks, state.Ranks)
	res := &Result{
		Engine:           cfg.Name,
		Ranks:            ranks,
		Iterations:       o.Iterations,
		Threads:          o.Threads,
		WallSeconds:      wall.Seconds(),
		PrepSeconds:      prep.PrepSeconds,
		PrepBuildSeconds: prep.BuildSeconds,
		PrepFromCache:    prep.FromCache,
		Model:            rep,
		Sched:            pool.Stats,
	}
	FinishRun(rec, res, m, false)
	return res, nil
}
