package common

import (
	"fmt"
	"time"

	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/partition"
	"hipa/internal/perfmodel"
	"hipa/internal/sched"
)

// FCFSWorkingSetSlack is the working-set factor for first-come-first-serve
// partition processing: threads hop across non-contiguous partitions and
// keep more live bin pages resident than HiPa's pinned threads over the
// contiguous per-group layout (§3.4), so their resident set per partition is
// larger. This is the mechanism behind the oblivious engines' degradation
// beyond the physical core count (Fig. 6).
const FCFSWorkingSetSlack = 2.25

// ObliviousPartitionConfig parameterises the two NUMA-oblivious
// partition-centric engines (p-PR and the GPOP-like framework), which share
// the Algorithm-1 execution structure: per-phase thread pools and FCFS
// partition claiming over an interleaved data layout.
type ObliviousPartitionConfig struct {
	Name string
	// DefaultThreads is the paper's tuned thread count (20 for both p-PR
	// and GPOP on the Skylake testbed — half the logical cores, §4.1).
	DefaultThreads func(m *machine.Machine) int
	// DefaultPartitionBytes is the engine's tuned partition size (256KB for
	// p-PR, 1MB for GPOP).
	DefaultPartitionBytes int
	// ExtraBytesPerPartition and ExtraCyclesPerEdge model framework
	// overheads (GPOP's per-partition Flags/State and generality layer).
	ExtraBytesPerPartition int64
	ExtraCyclesPerEdge     float64
}

// RunObliviousPartitionEngine executes a NUMA-oblivious partition-centric
// PageRank per cfg: PrepareOblivious followed by ExecOblivious.
func RunObliviousPartitionEngine(g *graph.Graph, o Options, cfg ObliviousPartitionConfig) (*Result, error) {
	prep, err := PrepareOblivious(g, o, cfg)
	if err != nil {
		return nil, err
	}
	return ExecOblivious(prep, o, cfg)
}

// PrepareOblivious builds the preprocessing artifact of a NUMA-oblivious
// partition-centric engine: a single flat list of cache-able partitions (no
// node assignment, no pinned groups) plus the compressed message layout.
func PrepareOblivious(g *graph.Graph, o Options, cfg ObliviousPartitionConfig) (*Prepared, error) {
	if o.Machine == nil {
		o.Machine = machine.SkylakeSilver4210()
	}
	m := o.Machine
	if o.PartitionBytes == 0 {
		o.PartitionBytes = cfg.DefaultPartitionBytes
	}
	o = o.WithDefaults(cfg.DefaultThreads(m))
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("%s: empty graph", cfg.Name)
	}
	rec := o.Obs
	runner := RunnerLane(o.Threads)
	key := PrepKey{
		Kind:           PrepPartition,
		PartitionBytes: o.PartitionBytes,
		Compress:       !o.NoCompress,
		Nodes:          1,
	}
	prep, err := MakePrepared(cfg.Name, g, m, o, key, func() (any, error) {
		tr := rec.T()
		partStart := time.Now()
		hier, err := partition.Build(g, partition.Config{
			PartitionBytes: o.PartitionBytes,
			BytesPerVertex: 4,
			NumNodes:       1,
			GroupsPerNode:  1,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		if tr != nil {
			tr.Span(runner, SpanPrepPartition, -1, partStart)
		}
		layStart := time.Now()
		lay, err := layout.Build(g, hier, !o.NoCompress)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		if tr != nil {
			tr.Span(runner, SpanPrepLayout, -1, layStart)
		}
		return &PartArtifact{Hier: hier, Lay: lay, Inv: InvOutDegrees(g)}, nil
	}, nil)
	if err != nil {
		return nil, err
	}
	rec.C().Add("partition.partitions", int64(prep.part.Hier.NumPartitions()))
	rec.C().Add("layout.messages", int64(prep.part.Lay.NumMessages()))
	return prep, nil
}

// ExecOblivious runs the FCFS iterative phase of a NUMA-oblivious
// partition-centric engine against a Prepared artifact. Safe for concurrent
// calls sharing one artifact.
func ExecOblivious(prep *Prepared, o Options, cfg ObliviousPartitionConfig) (*Result, error) {
	if err := prep.CheckExec(cfg.Name, PrepPartition); err != nil {
		return nil, err
	}
	if o.Machine == nil {
		o.Machine = prep.Machine()
	}
	m := o.Machine
	if o.PartitionBytes == 0 {
		o.PartitionBytes = prep.Key().PartitionBytes
	}
	o = o.WithDefaults(cfg.DefaultThreads(m))
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.PartitionBytes != prep.Key().PartitionBytes {
		return nil, fmt.Errorf("%s: artifact was prepared with %dB partitions, not %dB", cfg.Name, prep.Key().PartitionBytes, o.PartitionBytes)
	}
	if !o.NoCompress != prep.Key().Compress {
		return nil, fmt.Errorf("%s: artifact compression does not match NoCompress=%v", cfg.Name, o.NoCompress)
	}
	g := prep.Graph()
	hier, lay := prep.part.Hier, prep.part.Lay
	rec := o.Obs
	tr := rec.T()
	RecordGraphCounters(rec.C(), g.NumVertices(), g.NumEdges())
	lookup := partition.BuildLookup(hier)

	// Simulated scheduling: Algorithm 1 — a fresh pool per phase, threads
	// placed arbitrarily by the OS, no binding.
	regions := o.Iterations * 2
	schedStats, placementNodes, placementShared, err := obliviousSchedule(m, o.SchedSeed, regions, o.Threads, false)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}
	SetNodeLanes(tr, placementNodes)

	// Real execution.
	state := NewSGStateWithInv(g, hier, lay, prep.part.Inv, o.Damping, o.Threads)
	stopRun := rec.C().Phase(PhaseRun)
	wallStart := time.Now()
	performed := RunFCFS(state, o.Iterations, o.Threads, o.Tolerance, rec)
	wall := time.Since(wallStart)
	stopRun()
	o.Iterations = performed

	// Analytic model.
	costs, barriers, err := BuildPartitionModel(PartitionModelSpec{
		Machine: m, Hier: hier, Lay: lay, Lookup: lookup,
		ThreadNode: placementNodes, ThreadShared: placementShared,
		PartThread: ModelFCFSAssignment(hier, o.Threads),
		NUMAAware:  false,
		Iterations: o.Iterations,

		ExtraBytesPerPartition: cfg.ExtraBytesPerPartition,
		ExtraCyclesPerEdge:     cfg.ExtraCyclesPerEdge,
		WorkingSetSlack:        FCFSWorkingSetSlack,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}
	rep, err := perfmodel.Estimate(perfmodel.Run{
		Machine: m, Threads: costs,
		Barriers:             barriers,
		SchedCostNS:          schedStats.CostNS,
		EdgesProcessed:       g.NumEdges() * int64(o.Iterations),
		Iterations:           o.Iterations,
		UncoordinatedStreams: true,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cfg.Name, err)
	}

	res := &Result{
		Engine:           cfg.Name,
		Ranks:            state.Ranks,
		Iterations:       o.Iterations,
		Threads:          o.Threads,
		WallSeconds:      wall.Seconds(),
		PrepSeconds:      prep.PrepSeconds,
		PrepBuildSeconds: prep.BuildSeconds,
		PrepFromCache:    prep.FromCache,
		Model:            rep,
		Sched:            schedStats,
	}
	FinishRun(rec, res, m, false)
	return res, nil
}

// obliviousSchedule simulates Algorithm 1's thread lifecycle and returns the
// scheduler stats plus a representative placement (the first region's pool)
// for the cost model. bindNodes retrofits NUMA binding onto the oblivious
// model (Polymer-style), triggering the migration storm of §3.3.2.
func obliviousSchedule(m *machine.Machine, seed uint64, regions, threads int, bindNodes bool) (sched.Stats, []int, []bool, error) {
	// Placement snapshot from an identical-seed scheduler's first pool.
	snap := sched.New(m, seed)
	pool := snap.SpawnN(threads, sched.PlacementRandom)
	if bindNodes {
		for i, t := range pool {
			if err := snap.Bind(t, i%m.NUMANodes); err != nil {
				return sched.Stats{}, nil, nil, err
			}
		}
	}
	nodes, shared := ThreadPlacement(pool, m)

	// Full lifecycle stats.
	sc := sched.New(m, seed)
	stats, err := sc.RunObliviousRegions(regions, threads, bindNodes)
	if err != nil {
		return sched.Stats{}, nil, nil, err
	}
	return stats, nodes, shared, nil
}
