package common

import (
	"testing"

	"hipa/internal/execbuf"
	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/partition"
)

func allocTestState(t *testing.T, threads int, arena *execbuf.Arena) (*graph.Graph, *SGState) {
	t.Helper()
	g, err := gen.Uniform(800, 9000, 5)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := partition.Build(g, partition.Config{PartitionBytes: 256, BytesPerVertex: 4, NumNodes: 1, GroupsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := layout.Build(g, hier, true)
	if err != nil {
		t.Fatal(err)
	}
	return g, NewSGStateArena(g, hier, lay, InvOutDegrees(g), 0.85, threads, arena)
}

// TestSuperstepLoopRunIsAllocationFree is the exact form of the tentpole
// guarantee, measured at the driver: with the worker pool spawned and the
// kernels built, one superstep over real scatter-gather state performs
// exactly zero heap allocations.
func TestSuperstepLoopRunIsAllocationFree(t *testing.T) {
	const threads = 4
	_, state := allocTestState(t, threads, nil)
	loop := NewSuperstepLoop(SuperstepConfig{Threads: threads, Iterations: 1}, FCFSKernels(state))
	defer loop.Close()
	loop.Run(1) // warm the runtime (timer, barrier paths)
	if allocs := testing.AllocsPerRun(10, func() { loop.Run(1) }); allocs != 0 {
		t.Errorf("loop.Run(1) allocated %g times; the superstep loop must be allocation-free", allocs)
	}
}

// TestSuperstepLoopRunWithToleranceIsAllocationFree covers the convergence
// branch too: the residual fold must not allocate either.
func TestSuperstepLoopRunWithToleranceIsAllocationFree(t *testing.T) {
	const threads = 4
	_, state := allocTestState(t, threads, nil)
	loop := NewSuperstepLoop(SuperstepConfig{Threads: threads, Iterations: 1, Tolerance: 1e-30}, FCFSKernels(state))
	defer loop.Close()
	loop.Run(1)
	if allocs := testing.AllocsPerRun(10, func() { loop.Run(1) }); allocs != 0 {
		t.Errorf("loop.Run(1) with tolerance allocated %g times", allocs)
	}
}

// TestSGStateRebuildDoesNotGrowArena pins the arena contract behind
// repeated Exec calls: constructing same-shaped state on a warm arena
// reuses every buffer (no growth), and the footprint stays constant.
func TestSGStateRebuildDoesNotGrowArena(t *testing.T) {
	arena := &execbuf.Arena{}
	_, s1 := allocTestState(t, 4, arena)
	grows, foot := arena.Grows(), arena.Footprint()
	if grows == 0 || foot == 0 {
		t.Fatalf("cold construction reported grows=%d footprint=%d", grows, foot)
	}
	RunSupersteps(SuperstepConfig{Threads: 4, Iterations: 3}, FCFSKernels(s1))
	_, s2 := allocTestState(t, 4, arena)
	if g2 := arena.Grows(); g2 != grows {
		t.Errorf("warm reconstruction grew the arena: %d -> %d buffer allocations", grows, g2)
	}
	if f2 := arena.Footprint(); f2 != foot {
		t.Errorf("footprint changed on warm reconstruction: %d -> %d bytes", foot, f2)
	}
	RunSupersteps(SuperstepConfig{Threads: 4, Iterations: 3}, FCFSKernels(s2))
	if g3 := arena.Grows(); g3 != grows {
		t.Errorf("execution grew the arena: %d -> %d buffer allocations", grows, g3)
	}
}

// TestSeedDanglingMatchesGatherFold locks the bit-exactness argument of the
// fused dangling sum on a graph WITH dangling vertices: after any gather
// round under pinned grouping, the partials must hold exactly what
// SeedDangling computes from the current ranks — i.e. the fused fold and
// the explicit per-group fold are the same function.
func TestSeedDanglingMatchesGatherFold(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 600, Edges: 3000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := partition.Build(g, partition.Config{PartitionBytes: 256, BytesPerVertex: 4, NumNodes: 1, GroupsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := layout.Build(g, hier, true)
	if err != nil {
		t.Fatal(err)
	}
	dangling := 0
	inv := InvOutDegrees(g)
	for _, iv := range inv {
		if iv == 0 {
			dangling++
		}
	}
	if dangling == 0 {
		t.Skip("generator produced no dangling vertices; test needs them")
	}
	threads := len(hier.Groups)
	s := NewSGStateArena(g, hier, lay, inv, 0.85, threads, nil)
	RunSupersteps(SuperstepConfig{Threads: threads, Iterations: 3}, PinnedKernels(s, hier.Groups))
	got := make([]float64, threads)
	for i := range s.partials {
		got[i] = s.partials[i].V
	}
	s.SeedDangling(hier.Groups)
	for i := range s.partials {
		if s.partials[i].V != got[i] {
			t.Errorf("partial[%d]: fused gather fold %v != explicit seed fold %v", i, got[i], s.partials[i].V)
		}
	}
}
