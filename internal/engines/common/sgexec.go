package common

import (
	"hipa/internal/execbuf"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/partition"
)

// SGState is the mutable state of a partition-centric scatter-gather
// PageRank execution, shared by the HiPa engine (pinned threads) and the
// FCFS engines (p-PR, GPOP). Partition-level methods are safe to call
// concurrently as long as each partition is processed by exactly one thread
// per phase and scatter/gather phases are separated by barriers.
//
// All mutable buffers live in an execbuf.Arena, so an Exec that draws its
// arena from the Prepared pool allocates nothing per iteration and reuses
// the buffers across repeated Execs. The dangling sum is fused into the
// gather phase: GatherPartition accumulates the dangling mass of the ranks
// it writes, so when an iteration starts its partials already hold the
// current distribution's dangling mass and the scatter phase stays
// branch-free. The constructor (and, for pinned engines, SeedDangling)
// establishes that invariant for iteration zero.
type SGState struct {
	G    *graph.Graph
	Lay  *layout.Layout
	Hier *partition.Hierarchy

	Ranks []float32 // current ranks; overwritten in the gather phase
	Acc   []float32 // per-vertex accumulators, zeroed after each gather
	Bins  []float32 // one slot per compressed message
	Inv   []float32 // 1/outdeg, 0 for dangling

	Damping float64
	base    float32 // (1-d)/n
	redis   float32 // d * danglingSum/n, set by ReduceDangling

	partials     []execbuf.PadF64 // per-thread dangling partials
	residuals    []execbuf.PadF64 // per-thread L∞ rank-change partials
	lastDangling float64          // raw dangling sum of the last ReduceDangling
}

// LastDanglingMass returns the summed dangling rank folded by the most
// recent ReduceDangling — the redistribution mass of the current iteration.
// Call it under the same serialization as ReduceDangling (barrier leader or
// between parallel regions).
func (s *SGState) LastDanglingMass() float64 { return s.lastDangling }

// MaxResidual folds and resets the per-thread residual partials: the L∞
// rank change of the last gather phase. Call from one thread between
// iterations (barrier leader).
func (s *SGState) MaxResidual() float64 {
	var max float64
	for i := range s.residuals {
		if s.residuals[i].V > max {
			max = s.residuals[i].V
		}
		s.residuals[i].V = 0
	}
	return max
}

// NewSGState allocates the execution state for threads workers.
func NewSGState(g *graph.Graph, hier *partition.Hierarchy, lay *layout.Layout, damping float64, threads int) *SGState {
	return NewSGStateArena(g, hier, lay, InvOutDegrees(g), damping, threads, nil)
}

// NewSGStateWithInv is NewSGState with a precomputed 1/outdeg array, shared
// read-only from a Prepared artifact so concurrent Execs skip the O(V)
// recomputation.
func NewSGStateWithInv(g *graph.Graph, hier *partition.Hierarchy, lay *layout.Layout, inv []float32, damping float64, threads int) *SGState {
	return NewSGStateArena(g, hier, lay, inv, damping, threads, nil)
}

// NewSGStateArena builds the execution state on top of a scratch arena so
// repeated Execs reuse buffers instead of reallocating them; a nil arena
// gets a private one. The returned state starts at the uniform distribution
// with its dangling partials seeded (flat, into partial 0) — pinned engines
// re-seed group-accurately via SeedDangling.
func NewSGStateArena(g *graph.Graph, hier *partition.Hierarchy, lay *layout.Layout, inv []float32, damping float64, threads int, arena *execbuf.Arena) *SGState {
	if arena == nil {
		arena = &execbuf.Arena{}
	}
	n := g.NumVertices()
	s := &SGState{
		G: g, Lay: lay, Hier: hier,
		Ranks:     arena.Ranks(n),
		Acc:       arena.Acc(n),
		Bins:      arena.Bins(int(lay.NumMessages())),
		Inv:       inv,
		Damping:   damping,
		base:      float32((1 - damping) / float64(n)),
		partials:  arena.Partials(threads),
		residuals: arena.Residuals(threads),
	}
	FillInitRanks(s.Ranks)
	var dangling float64
	for v, iv := range inv {
		if iv == 0 {
			dangling += float64(s.Ranks[v])
		}
	}
	s.partials[0].V = dangling
	return s
}

// SetRanks replaces the initial uniform distribution with a warm-start rank
// vector and re-establishes the iteration-zero dangling invariant for the
// new ranks (flat, into partial 0 — pinned engines re-seed group-accurately
// via SeedDangling afterwards, exactly as after the constructor). The slice
// is copied; the caller's buffer is never retained.
func (s *SGState) SetRanks(warm []float32) {
	copy(s.Ranks, warm)
	for i := range s.partials {
		s.partials[i].V = 0
	}
	var dangling float64
	for v, iv := range s.Inv {
		if iv == 0 {
			dangling += float64(s.Ranks[v])
		}
	}
	s.partials[0].V = dangling
}

// SeedDangling re-seeds the iteration-zero dangling partials with the exact
// per-thread, per-partition grouping the pinned gather phase will keep using
// — each thread's partial is the ordered fold of its partitions' local sums,
// matching the fused accumulation in GatherPartition bit for bit.
func (s *SGState) SeedDangling(groups []partition.Group) {
	for i := range s.partials {
		s.partials[i].V = 0
	}
	for tid := range groups {
		for p := groups[tid].PartStart; p < groups[tid].PartEnd; p++ {
			part := s.Hier.Partitions[p]
			var local float64
			for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
				if s.Inv[v] == 0 {
					local += float64(s.Ranks[v])
				}
			}
			s.partials[tid].V += local
		}
	}
}

// ScatterPartition runs the scatter phase for partition p on behalf of
// thread tid: applies each source vertex's contribution to the local
// accumulators over the intra-edges and writes one compressed value per
// outgoing message. Dangling vertices have no out-edges, so their zero
// contribution (Inv is 0) touches nothing and the loop stays branch-free;
// their mass was already folded into the partials by the previous gather.
func (s *SGState) ScatterPartition(p int, tid int) {
	_ = tid
	part := s.Hier.Partitions[p]
	lay := s.Lay
	ranks, inv := s.Ranks, s.Inv
	acc := s.Acc
	intraOff := lay.IntraOff

	for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
		contrib := ranks[v] * inv[v]
		lo, hi := intraOff[v], intraOff[v+1]
		dst := lay.IntraDst[lo:hi:hi]
		for _, d := range dst {
			acc[d] += contrib
		}
	}

	// Compressed messages, streamed block by block with hoisted bounds.
	for bi := lay.SrcBlockStart[p]; bi < lay.SrcBlockEnd[p]; bi++ {
		b := lay.Blocks[bi]
		src := lay.MsgSrc[b.MsgStart:b.MsgEnd:b.MsgEnd]
		bins := s.Bins[b.MsgStart:b.MsgEnd:b.MsgEnd]
		for i, u := range src {
			bins[i] = ranks[u] * inv[u]
		}
	}
}

// ReduceDangling folds the per-thread dangling partials into the
// redistribution term for this iteration and resets the partials. Call from
// exactly one thread between the scatter and gather phases (barrier leader).
func (s *SGState) ReduceDangling() {
	var sum float64
	for i := range s.partials {
		sum += s.partials[i].V
		s.partials[i].V = 0
	}
	s.lastDangling = sum
	n := s.G.NumVertices()
	if n > 0 {
		s.redis = float32(s.Damping * sum / float64(n))
	}
}

// GatherPartition runs the gather phase for partition p: decodes the
// messages targeting p into the accumulators, then recomputes the ranks of
// p's vertices and clears the accumulators, tracking the thread's L∞ rank
// change for convergence checks. The partition's dangling mass under the
// new ranks is folded into the thread's partial (one local sum per
// partition, accumulated in partition order), so the next iteration's
// ReduceDangling sees exactly what a scatter-side pass would have produced.
func (s *SGState) GatherPartition(p int, tid int) {
	lay := s.Lay
	acc := s.Acc
	for _, bi := range lay.DstBlocks[p] {
		b := lay.Blocks[bi]
		bins := s.Bins[b.MsgStart:b.MsgEnd:b.MsgEnd]
		msgOff := lay.MsgDstOff[b.MsgStart : b.MsgEnd+1 : b.MsgEnd+1]
		for i, val := range bins {
			lo, hi := msgOff[i], msgOff[i+1]
			dst := lay.MsgDst[lo:hi:hi]
			for _, d := range dst {
				acc[d] += val
			}
		}
	}

	part := s.Hier.Partitions[p]
	ranks := s.Ranks
	inv := s.Inv
	d := float32(s.Damping)
	base, redis := s.base, s.redis
	res := s.residuals[tid].V
	var dangling float64
	lo, hi := int(part.VertexStart), int(part.VertexEnd)
	v := lo
	// 4-way unrolled rank update. Each vertex is independent, the residual
	// max is order-insensitive, and the dangling adds stay in vertex order,
	// so the unroll is bit-identical to the scalar loop.
	for ; v+4 <= hi; v += 4 {
		old0, old1, old2, old3 := ranks[v], ranks[v+1], ranks[v+2], ranks[v+3]
		nv0 := base + d*acc[v] + redis
		nv1 := base + d*acc[v+1] + redis
		nv2 := base + d*acc[v+2] + redis
		nv3 := base + d*acc[v+3] + redis
		ranks[v], ranks[v+1], ranks[v+2], ranks[v+3] = nv0, nv1, nv2, nv3
		acc[v], acc[v+1], acc[v+2], acc[v+3] = 0, 0, 0, 0
		if inv[v] == 0 {
			dangling += float64(nv0)
		}
		if inv[v+1] == 0 {
			dangling += float64(nv1)
		}
		if inv[v+2] == 0 {
			dangling += float64(nv2)
		}
		if inv[v+3] == 0 {
			dangling += float64(nv3)
		}
		res = maxAbsDiff4(res, nv0, old0, nv1, old1, nv2, old2, nv3, old3)
	}
	for ; v < hi; v++ {
		old := ranks[v]
		nv := base + d*acc[v] + redis
		ranks[v] = nv
		acc[v] = 0
		if inv[v] == 0 {
			dangling += float64(nv)
		}
		diff := float64(nv - old)
		if diff < 0 {
			diff = -diff
		}
		if diff > res {
			res = diff
		}
	}
	s.residuals[tid].V = res
	s.partials[tid].V += dangling
}

// maxAbsDiff4 folds four |new-old| rank deltas into a running maximum.
func maxAbsDiff4(res float64, n0, o0, n1, o1, n2, o2, n3, o3 float32) float64 {
	d0 := float64(n0 - o0)
	if d0 < 0 {
		d0 = -d0
	}
	d1 := float64(n1 - o1)
	if d1 < 0 {
		d1 = -d1
	}
	d2 := float64(n2 - o2)
	if d2 < 0 {
		d2 = -d2
	}
	d3 := float64(n3 - o3)
	if d3 < 0 {
		d3 = -d3
	}
	if d0 > res {
		res = d0
	}
	if d1 > res {
		res = d1
	}
	if d2 > res {
		res = d2
	}
	if d3 > res {
		res = d3
	}
	return res
}
