package common

import (
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/partition"
)

// padF64 avoids false sharing between per-thread partial sums.
type padF64 struct {
	v float64
	_ [7]int64
}

// SGState is the mutable state of a partition-centric scatter-gather
// PageRank execution, shared by the HiPa engine (pinned threads) and the
// FCFS engines (p-PR, GPOP). Partition-level methods are safe to call
// concurrently as long as each partition is processed by exactly one thread
// per phase and scatter/gather phases are separated by barriers.
type SGState struct {
	G    *graph.Graph
	Lay  *layout.Layout
	Hier *partition.Hierarchy

	Ranks []float32 // current ranks; overwritten in the gather phase
	Acc   []float32 // per-vertex accumulators, zeroed after each gather
	Bins  []float32 // one slot per compressed message
	Inv   []float32 // 1/outdeg, 0 for dangling

	Damping float64
	base    float32 // (1-d)/n
	redis   float32 // d * danglingSum/n, set by ReduceDangling

	partials     []padF64 // per-thread dangling partials
	residuals    []padF64 // per-thread L∞ rank-change partials
	lastDangling float64  // raw dangling sum of the last ReduceDangling
}

// LastDanglingMass returns the summed dangling rank folded by the most
// recent ReduceDangling — the redistribution mass of the current iteration.
// Call it under the same serialization as ReduceDangling (barrier leader or
// between parallel regions).
func (s *SGState) LastDanglingMass() float64 { return s.lastDangling }

// MaxResidual folds and resets the per-thread residual partials: the L∞
// rank change of the last gather phase. Call from one thread between
// iterations (barrier leader).
func (s *SGState) MaxResidual() float64 {
	var max float64
	for i := range s.residuals {
		if s.residuals[i].v > max {
			max = s.residuals[i].v
		}
		s.residuals[i].v = 0
	}
	return max
}

// NewSGState allocates the execution state for threads workers.
func NewSGState(g *graph.Graph, hier *partition.Hierarchy, lay *layout.Layout, damping float64, threads int) *SGState {
	return NewSGStateWithInv(g, hier, lay, InvOutDegrees(g), damping, threads)
}

// NewSGStateWithInv is NewSGState with a precomputed 1/outdeg array, shared
// read-only from a Prepared artifact so concurrent Execs skip the O(V)
// recomputation.
func NewSGStateWithInv(g *graph.Graph, hier *partition.Hierarchy, lay *layout.Layout, inv []float32, damping float64, threads int) *SGState {
	n := g.NumVertices()
	return &SGState{
		G: g, Lay: lay, Hier: hier,
		Ranks:     InitRanks(n),
		Acc:       make([]float32, n),
		Bins:      make([]float32, lay.NumMessages()),
		Inv:       inv,
		Damping:   damping,
		base:      float32((1 - damping) / float64(n)),
		partials:  make([]padF64, threads),
		residuals: make([]padF64, threads),
	}
}

// ScatterPartition runs the scatter phase for partition p on behalf of
// thread tid: computes each source vertex's contribution, applies
// intra-edges to the local accumulators, writes one compressed value per
// outgoing message, and accumulates the thread's dangling partial from the
// old ranks.
func (s *SGState) ScatterPartition(p int, tid int) {
	part := s.Hier.Partitions[p]
	lay := s.Lay

	// Intra-edges + dangling, iterating the partition's vertices in order.
	var dangling float64
	for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
		inv := s.Inv[v]
		if inv == 0 {
			dangling += float64(s.Ranks[v])
			continue
		}
		contrib := s.Ranks[v] * inv
		for _, d := range lay.IntraDst[lay.IntraOff[v]:lay.IntraOff[v+1]] {
			s.Acc[d] += contrib
		}
	}
	s.partials[tid].v += dangling

	// Compressed messages, streamed block by block.
	for bi := lay.SrcBlockStart[p]; bi < lay.SrcBlockEnd[p]; bi++ {
		b := lay.Blocks[bi]
		for m := b.MsgStart; m < b.MsgEnd; m++ {
			src := lay.MsgSrc[m]
			s.Bins[m] = s.Ranks[src] * s.Inv[src]
		}
	}
}

// ReduceDangling folds the per-thread dangling partials into the
// redistribution term for this iteration and resets the partials. Call from
// exactly one thread between the scatter and gather phases (barrier leader).
func (s *SGState) ReduceDangling() {
	var sum float64
	for i := range s.partials {
		sum += s.partials[i].v
		s.partials[i].v = 0
	}
	s.lastDangling = sum
	n := s.G.NumVertices()
	if n > 0 {
		s.redis = float32(s.Damping * sum / float64(n))
	}
}

// GatherPartition runs the gather phase for partition p: decodes the
// messages targeting p into the accumulators, then recomputes the ranks of
// p's vertices and clears the accumulators, tracking the thread's L∞ rank
// change for convergence checks.
func (s *SGState) GatherPartition(p int, tid int) {
	lay := s.Lay
	for _, bi := range lay.DstBlocks[p] {
		b := lay.Blocks[bi]
		for m := b.MsgStart; m < b.MsgEnd; m++ {
			val := s.Bins[m]
			for _, d := range lay.MsgDst[lay.MsgDstOff[m]:lay.MsgDstOff[m+1]] {
				s.Acc[d] += val
			}
		}
	}
	part := s.Hier.Partitions[p]
	d := float32(s.Damping)
	res := s.residuals[tid].v
	for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
		old := s.Ranks[v]
		nv := s.base + d*s.Acc[v] + s.redis
		s.Ranks[v] = nv
		s.Acc[v] = 0
		diff := float64(nv - old)
		if diff < 0 {
			diff = -diff
		}
		if diff > res {
			res = diff
		}
	}
	s.residuals[tid].v = res
}
