package common

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"hipa/internal/gen"
	"hipa/internal/graph"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults(40)
	if o.Machine == nil || o.Threads != 40 || o.Iterations != DefaultIterations ||
		o.Damping != DefaultDamping || o.PartitionBytes != DefaultPartitionBytes {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.GoParallelism < 1 || o.SchedSeed == 0 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Threads: 0, Iterations: 1, Damping: 0.5, PartitionBytes: 64},
		{Threads: 1, Iterations: 0, Damping: 0.5, PartitionBytes: 64},
		{Threads: 1, Iterations: 1, Damping: 1.5, PartitionBytes: 64},
		{Threads: 1, Iterations: 1, Damping: 0.5, PartitionBytes: 2},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBarrier(t *testing.T) {
	const parties = 8
	b := NewBarrier(parties)
	var phase atomic.Int64
	counts := make([]int64, parties)
	RunThreads(parties, func(tid int) {
		for i := 0; i < 50; i++ {
			// Everyone must observe the same phase before the barrier.
			counts[tid] = phase.Load()
			b.WaitLeader(func() { phase.Add(1) })
		}
	})
	if phase.Load() != 50 {
		t.Fatalf("phase = %d, want 50", phase.Load())
	}
}

func TestBarrierLeaderExactlyOne(t *testing.T) {
	const parties = 5
	b := NewBarrier(parties)
	var leaders atomic.Int64
	RunThreads(parties, func(tid int) {
		for i := 0; i < 20; i++ {
			if b.Wait() {
				leaders.Add(1)
			}
		}
	})
	if leaders.Load() != 20 {
		t.Fatalf("leaders = %d, want 20 (one per generation)", leaders.Load())
	}
}

func TestNewBarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 parties")
		}
	}()
	NewBarrier(0)
}

func TestInitRanksAndSum(t *testing.T) {
	r := InitRanks(1000)
	if s := RankSum(r); math.Abs(s-1) > 1e-4 {
		t.Fatalf("initial rank sum = %f", s)
	}
	if len(InitRanks(0)) != 0 {
		t.Fatal("empty init")
	}
}

func TestInvOutDegrees(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Build()
	inv := InvOutDegrees(g)
	if inv[0] != 0.5 || inv[1] != 0 || inv[2] != 0 {
		t.Fatalf("inv = %v", inv)
	}
}

func TestDanglingSum(t *testing.T) {
	ranks := []float32{0.25, 0.25, 0.25, 0.25}
	inv := []float32{0.5, 0, 0, 1}
	if s := DanglingSum(ranks, inv, 0, 4); math.Abs(s-0.5) > 1e-9 {
		t.Fatalf("dangling = %f, want 0.5", s)
	}
	if s := DanglingSum(ranks, inv, 1, 2); math.Abs(s-0.25) > 1e-9 {
		t.Fatalf("partial dangling = %f", s)
	}
}

func TestReferencePageRankProperties(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 500, Edges: 5000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := ReferencePageRank(g, 30, 0.85)
	var sum float64
	for _, x := range r {
		if x <= 0 {
			t.Fatal("non-positive rank")
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rank sum = %.12f, want 1 (dangling mass redistributed)", sum)
	}
}

func TestReferencePageRankKnownValues(t *testing.T) {
	// Two-vertex cycle: symmetric, ranks must both be 0.5.
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	r := ReferencePageRank(b.Build(), 50, 0.85)
	if math.Abs(r[0]-0.5) > 1e-12 || math.Abs(r[1]-0.5) > 1e-12 {
		t.Fatalf("cycle ranks = %v, want [0.5 0.5]", r)
	}
	// Star: 1,2,3 -> 0. Vertex 0 collects; vertices 1-3 identical.
	b2 := graph.NewBuilder(4)
	b2.AddEdge(1, 0)
	b2.AddEdge(2, 0)
	b2.AddEdge(3, 0)
	r2 := ReferencePageRank(b2.Build(), 80, 0.85)
	if !(r2[0] > r2[1]) || math.Abs(r2[1]-r2[2]) > 1e-12 || math.Abs(r2[2]-r2[3]) > 1e-12 {
		t.Fatalf("star ranks = %v", r2)
	}
	var sum float64
	for _, x := range r2 {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("star rank sum = %f (vertex 0 is dangling)", sum)
	}
}

func TestSplitByWeight(t *testing.T) {
	// Weights 1,1,1,1,10: 2 parts should split before the heavy item.
	prefix := []int64{0, 1, 2, 3, 4, 14}
	b := SplitByWeight(prefix, 2)
	if len(b) != 3 || b[0] != 0 || b[2] != 5 {
		t.Fatalf("bounds = %v", b)
	}
	if b[1] != 4 {
		t.Fatalf("split at %d, want 4 (half of 14 is 7, first prefix >= 7 is index 4)", b[1])
	}
}

func TestSplitByWeightProperty(t *testing.T) {
	f := func(raw []uint8, partsRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		parts := int(partsRaw)%8 + 1
		prefix := make([]int64, len(raw)+1)
		for i, w := range raw {
			prefix[i+1] = prefix[i] + int64(w%10)
		}
		b := SplitByWeight(prefix, parts)
		if len(b) != parts+1 || b[0] != 0 || b[parts] != len(raw) {
			return false
		}
		for i := 1; i <= parts; i++ {
			if b[i] < b[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if d := MaxAbsDiff([]float32{1, 2}, []float32{1, 2.5}); math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("diff = %f", d)
	}
	if d := MaxAbsDiff(nil, nil); d != 0 {
		t.Fatalf("empty vectors: diff = %f, want 0", d)
	}
}

func TestMaxAbsDiffLengthMismatch(t *testing.T) {
	// A length mismatch is not a numeric distance: it must be +Inf so it
	// can never be confused with (or compared against) a real residual.
	for _, pair := range [][2][]float32{
		{{1}, {1, 2}},
		{{1, 2}, {1}},
		{nil, {1}},
		{{1}, nil},
	} {
		d := MaxAbsDiff(pair[0], pair[1])
		if !math.IsInf(d, 1) {
			t.Errorf("MaxAbsDiff(len %d, len %d) = %v, want +Inf", len(pair[0]), len(pair[1]), d)
		}
	}
}
