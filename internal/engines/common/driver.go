package common

import (
	"sync"
	"sync/atomic"
	"time"

	"hipa/internal/obs"
	"hipa/internal/partition"
)

// PhaseKernels are the engine-specific bodies of one superstep. The driver
// owns everything else: phase fan-out, the serial sections between phases,
// convergence checking, and telemetry. Scatter and Gather run on every
// worker (tid in [0,threads)); the rest run serially between phases.
//
// Vertex-centric engines map their contribution pass to Scatter and their
// pull pass to Gather, so traces from all five engines line up.
type PhaseKernels struct {
	// StartIteration, when non-nil, runs serially before each iteration's
	// scatter phase (FCFS engines reset their claim counter here).
	StartIteration func(it int)
	// Scatter is the first parallel phase of an iteration.
	Scatter func(tid int)
	// Reduce folds the per-thread dangling partials between the phases.
	Reduce func()
	// Gather is the second parallel phase.
	Gather func(tid int)
	// Residual folds and resets the per-thread L∞ rank-change partials.
	// Called only when convergence checking or telemetry needs it.
	Residual func() float64
	// DanglingMass returns the dangling mass folded by the last Reduce, for
	// per-iteration statistics.
	DanglingMass func() float64
}

// FrontierStats describes the active set of one iteration of a
// frontier-aware engine: how much of the graph actually executes. The dense
// engines have no frontier; their conceptual stats are Active == Total.
type FrontierStats struct {
	ActivePartitions int
	TotalPartitions  int
	ActiveVertices   int64
	TotalVertices    int64
}

// ActiveFraction is the active-vertex share of the iteration (1.0 = dense,
// 0 when the graph is empty).
func (s FrontierStats) ActiveFraction() float64 {
	if s.TotalVertices == 0 {
		return 0
	}
	return float64(s.ActiveVertices) / float64(s.TotalVertices)
}

// Frontier is the optional active-set contract of the superstep driver. A
// frontier-aware engine passes one in SuperstepConfig; its kernels consult
// the frontier's converged set during the parallel phases, and the driver
// calls Rebuild serially between iterations — after the residual fold,
// before the convergence check — to retire newly converged work and rebuild
// the active work list for the next iteration. A nil Frontier reproduces
// the dense driver exactly: same phases, same barrier count, same fold
// orders, which is why the golden five engines run bit-identically through
// the generalized loop.
//
// Rebuild must not allocate — the zero-allocations-per-iteration guarantee
// of the loop extends to frontier maintenance (bitmaps and work lists live
// in the execbuf arena).
type Frontier interface {
	// Stats reports the active set of the upcoming iteration.
	Stats() FrontierStats
	// Rebuild retires partitions that converged during iteration `it`,
	// rebuilds the active work list, and reports the next iteration's stats.
	// done=true terminates the loop: nothing is left to schedule.
	Rebuild(it int) (next FrontierStats, done bool)
}

// SuperstepConfig parameterises RunSupersteps.
type SuperstepConfig struct {
	// Engine names the engine driving the loop; when set, per-superstep
	// latency, phase latency, and residual distributions are recorded into
	// the process-wide obs registry under that engine label. Empty disables
	// registry recording.
	Engine string
	// Threads is the logical worker count (tid space).
	Threads int
	// Parallelism caps the real goroutines executing a phase
	// (Options.GoParallelism); <= 0 or >= Threads runs one goroutine per
	// tid.
	Parallelism int
	// Iterations is the requested iteration count.
	Iterations int
	// Tolerance > 0 enables convergence-based early termination on the
	// folded residual.
	Tolerance float64
	// Frontier, when non-nil, makes the loop active-set aware: per-iteration
	// active counts are recorded, and the frontier is rebuilt serially after
	// each iteration's residual fold. Nil runs the dense loop unchanged.
	Frontier Frontier
	// Rec receives per-iteration statistics and phase spans; nil disables
	// all instrumentation.
	Rec *obs.Recorder
}

// SuperstepLoop is the reusable superstep executor behind all five engines.
// NewSuperstepLoop spawns a persistent worker pool once; Run then drives any
// number of scatter → reduce → gather → apply iterations over it without
// allocating: phases are dispatched to the parked workers through a pair of
// reusable barriers, worker tids are claimed from an atomic counter, and the
// kernel function values are stored in fields rather than fresh closures.
// With telemetry disabled the steady state performs zero heap allocations
// per iteration (the execbuf arena owns all scratch memory), which the
// AllocsPerRun regression tests in enginetest pin for every engine.
//
// A loop is driven from one goroutine at a time; Close releases the workers
// and must be called exactly once after the last Run.
type SuperstepLoop struct {
	cfg     SuperstepConfig
	k       PhaseKernels
	em      *engineMetrics // registry handles; nil when cfg.Engine is empty
	workers int

	// Per-phase dispatch state, written by the driver before releasing the
	// start barrier (the barrier's mutex publishes them to the workers).
	phase func(tid int)
	span  string
	it    int
	next  atomic.Int64
	stop  bool

	start, done *Barrier
	wg          sync.WaitGroup
}

// NewSuperstepLoop validates cfg, spawns the worker pool, and returns the
// parked loop. The pool size is min(cfg.Parallelism, cfg.Threads) real
// goroutines (all of them when the cap is unset), each claiming tids from a
// shared counter so every tid runs exactly once per phase regardless of the
// cap; per-tid kernel state is disjoint in every engine, so results do not
// depend on the tid-to-goroutine mapping.
func NewSuperstepLoop(cfg SuperstepConfig, k PhaseKernels) *SuperstepLoop {
	workers := cfg.Threads
	if cfg.Parallelism > 0 && cfg.Parallelism < workers {
		workers = cfg.Parallelism
	}
	l := &SuperstepLoop{
		cfg:     cfg,
		k:       k,
		em:      metricsFor(cfg.Engine),
		workers: workers,
		start:   NewBarrier(workers + 1),
		done:    NewBarrier(workers + 1),
	}
	l.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go l.worker()
	}
	return l
}

// worker is the persistent body of one pool goroutine: park on the start
// barrier, drain claimed tids through the current phase kernel, park on the
// done barrier, repeat until Close.
func (l *SuperstepLoop) worker() {
	defer l.wg.Done()
	tr := l.cfg.Rec.T()
	for {
		l.start.Wait()
		if l.stop {
			return
		}
		for {
			tid := int(l.next.Add(1)) - 1
			if tid >= l.cfg.Threads {
				break
			}
			if tr != nil {
				spanStart := time.Now()
				l.phase(tid)
				tr.Span(tid, l.span, l.it, spanStart)
			} else {
				l.phase(tid)
			}
		}
		l.done.Wait()
	}
}

// runPhase fans one parallel phase out over the worker tids. fn must be a
// stored function value (a kernel field), not a fresh closure — the zero
// allocation guarantee of the loop depends on it.
func (l *SuperstepLoop) runPhase(span string, it int, fn func(tid int)) {
	l.phase, l.span, l.it = fn, span, it
	l.next.Store(0)
	l.start.Wait() // releases the workers; barrier mutex publishes the fields
	l.done.Wait()  // all tids drained
}

// Run executes up to iterations supersteps, with the convergence check,
// span recording, and per-iteration statistics in one place. It returns the
// number of iterations performed and may be called again to continue on the
// same kernel state.
func (l *SuperstepLoop) Run(iterations int) int {
	cfg, k := l.cfg, &l.k
	rec := cfg.Rec
	em := l.em
	tr := rec.T()
	runner := RunnerLane(cfg.Threads)
	f := cfg.Frontier
	needResidual := cfg.Tolerance > 0 || rec != nil || em != nil || f != nil
	var cur FrontierStats
	if f != nil {
		cur = f.Stats()
	}
	performed := 0
	for it := 0; it < iterations; it++ {
		performed++
		var itStart, phaseStart time.Time
		if rec != nil || em != nil {
			itStart = time.Now()
		}
		if k.StartIteration != nil {
			k.StartIteration(it)
		}
		if em != nil {
			phaseStart = time.Now()
		}
		l.runPhase(SpanScatter, it, k.Scatter)
		if em != nil {
			em.scatter.Observe(time.Since(phaseStart).Seconds())
		}
		var serialStart time.Time
		if tr != nil {
			serialStart = time.Now()
		}
		k.Reduce()
		if tr != nil {
			tr.Span(runner, SpanReduce, it, serialStart)
		}
		if em != nil {
			phaseStart = time.Now()
		}
		l.runPhase(SpanGather, it, k.Gather)
		if em != nil {
			em.gather.Observe(time.Since(phaseStart).Seconds())
		}
		if !needResidual {
			continue
		}
		if tr != nil {
			serialStart = time.Now()
		}
		res := k.Residual()
		if tr != nil {
			tr.Span(runner, SpanApply, it, serialStart)
		}
		if em != nil {
			// Pure atomics — the loop's zero-allocations-per-iteration
			// invariant holds with registry recording enabled.
			em.superstep.Observe(time.Since(itStart).Seconds())
			em.residual.Observe(res)
			em.iterations.Inc()
			if f != nil {
				em.activeFraction.Observe(cur.ActiveFraction())
				em.partsSkipped.Add(int64(cur.TotalPartitions - cur.ActivePartitions))
			}
		}
		if rec != nil {
			st := obs.IterationStats{
				Iter:         it,
				WallSeconds:  time.Since(itStart).Seconds(),
				Residual:     res,
				DanglingMass: k.DanglingMass(),
			}
			if f != nil {
				st.ActiveVertices = cur.ActiveVertices
				st.ActivePartitions = cur.ActivePartitions
			}
			rec.RecordIteration(st)
		}
		if f != nil {
			// Serial frontier maintenance: retire partitions that converged
			// this iteration and rebuild the active work list. An empty next
			// frontier terminates the loop even with Tolerance unset.
			next, done := f.Rebuild(it)
			cur = next
			if done {
				break
			}
		}
		if cfg.Tolerance > 0 && res < cfg.Tolerance {
			break
		}
	}
	return performed
}

// Close releases and joins the worker pool. The loop must not be used
// afterwards.
func (l *SuperstepLoop) Close() {
	l.stop = true
	l.start.Wait()
	l.wg.Wait()
}

// RunSupersteps is the single-shot form of the superstep driver: spawn the
// pool, run cfg.Iterations supersteps, release the pool. Returns the number
// of iterations performed.
func RunSupersteps(cfg SuperstepConfig, k PhaseKernels) int {
	l := NewSuperstepLoop(cfg, k)
	defer l.Close()
	return l.Run(cfg.Iterations)
}

// FCFSKernels are the phase kernels of the NUMA-oblivious scatter-gather
// engines (Algorithm 1): partitions are claimed first-come-first-serve from
// a shared atomic counter, the execution style of p-PR and GPOP (and HiPa's
// FCFS ablation).
func FCFSKernels(s *SGState) PhaseKernels {
	P := s.Hier.NumPartitions()
	var next atomic.Int64
	claim := func(tid int, phase func(p, tid int)) {
		for {
			p := int(next.Add(1)) - 1
			if p >= P {
				return
			}
			phase(p, tid)
		}
	}
	return PhaseKernels{
		StartIteration: func(int) { next.Store(0) },
		Scatter:        func(tid int) { claim(tid, s.ScatterPartition) },
		Reduce: func() {
			s.ReduceDangling()
			next.Store(0)
		},
		Gather:       func(tid int) { claim(tid, s.GatherPartition) },
		Residual:     s.MaxResidual,
		DanglingMass: s.LastDanglingMass,
	}
}

// PinnedKernels are the phase kernels of HiPa's pinned execution
// (Algorithm 2): thread tid processes exactly the partitions of its group,
// every iteration — the one-to-many thread-data mapping.
func PinnedKernels(s *SGState, groups []partition.Group) PhaseKernels {
	s.SeedDangling(groups)
	scatter := &groupPhase{s: s, groups: groups, phase: (*SGState).ScatterPartition}
	gather := &groupPhase{s: s, groups: groups, phase: (*SGState).GatherPartition}
	return PhaseKernels{
		Scatter:      scatter.run,
		Reduce:       s.ReduceDangling,
		Gather:       gather.run,
		Residual:     s.MaxResidual,
		DanglingMass: s.LastDanglingMass,
	}
}

// groupPhase walks one thread's pinned partition group through a
// partition-level kernel; a pair of these backs PinnedKernels with method
// values created once per Exec.
type groupPhase struct {
	s      *SGState
	groups []partition.Group
	phase  func(s *SGState, p, tid int)
}

func (g *groupPhase) run(tid int) {
	gr := g.groups[tid]
	for p := gr.PartStart; p < gr.PartEnd; p++ {
		g.phase(g.s, p, tid)
	}
}
