package common

import (
	"sync/atomic"
	"time"

	"hipa/internal/obs"
	"hipa/internal/partition"
)

// PhaseKernels are the engine-specific bodies of one superstep. The driver
// owns everything else: phase fan-out, the serial sections between phases,
// convergence checking, and telemetry. Scatter and Gather run on every
// worker (tid in [0,threads)); the rest run serially between phases.
//
// Vertex-centric engines map their contribution pass to Scatter and their
// pull pass to Gather, so traces from all five engines line up.
type PhaseKernels struct {
	// StartIteration, when non-nil, runs serially before each iteration's
	// scatter phase (FCFS engines reset their claim counter here).
	StartIteration func(it int)
	// Scatter is the first parallel phase of an iteration.
	Scatter func(tid int)
	// Reduce folds the per-thread dangling partials between the phases.
	Reduce func()
	// Gather is the second parallel phase.
	Gather func(tid int)
	// Residual folds and resets the per-thread L∞ rank-change partials.
	// Called only when convergence checking or telemetry needs it.
	Residual func() float64
	// DanglingMass returns the dangling mass folded by the last Reduce, for
	// per-iteration statistics.
	DanglingMass func() float64
}

// SuperstepConfig parameterises RunSupersteps.
type SuperstepConfig struct {
	// Threads is the logical worker count (tid space).
	Threads int
	// Parallelism caps the real goroutines executing a phase
	// (Options.GoParallelism); <= 0 or >= Threads runs one goroutine per
	// tid.
	Parallelism int
	// Iterations is the requested iteration count.
	Iterations int
	// Tolerance > 0 enables convergence-based early termination on the
	// folded residual.
	Tolerance float64
	// Rec receives per-iteration statistics and phase spans; nil disables
	// all instrumentation.
	Rec *obs.Recorder
}

// RunSupersteps is the single superstep driver behind all five engines: it
// runs scatter → reduce → gather → apply for up to cfg.Iterations
// iterations, with the convergence check, span recording, and per-iteration
// statistics in one place. Returns the number of iterations performed.
func RunSupersteps(cfg SuperstepConfig, k PhaseKernels) int {
	rec := cfg.Rec
	tr := rec.T()
	runner := RunnerLane(cfg.Threads)
	needResidual := cfg.Tolerance > 0 || rec != nil
	performed := 0
	for it := 0; it < cfg.Iterations; it++ {
		performed++
		var itStart time.Time
		if rec != nil {
			itStart = time.Now()
		}
		if k.StartIteration != nil {
			k.StartIteration(it)
		}
		runPhase(cfg, tr, SpanScatter, it, k.Scatter)
		var serialStart time.Time
		if tr != nil {
			serialStart = time.Now()
		}
		k.Reduce()
		if tr != nil {
			tr.Span(runner, SpanReduce, it, serialStart)
		}
		runPhase(cfg, tr, SpanGather, it, k.Gather)
		if !needResidual {
			continue
		}
		if tr != nil {
			serialStart = time.Now()
		}
		res := k.Residual()
		if tr != nil {
			tr.Span(runner, SpanApply, it, serialStart)
		}
		if rec != nil {
			rec.RecordIteration(obs.IterationStats{
				Iter:         it,
				WallSeconds:  time.Since(itStart).Seconds(),
				Residual:     res,
				DanglingMass: k.DanglingMass(),
			})
		}
		if cfg.Tolerance > 0 && res < cfg.Tolerance {
			break
		}
	}
	return performed
}

// runPhase fans one parallel phase out over the worker tids, recording one
// span per worker.
func runPhase(cfg SuperstepConfig, tr *obs.Trace, span string, it int, fn func(tid int)) {
	RunThreadsCapped(cfg.Threads, cfg.Parallelism, func(tid int) {
		var spanStart time.Time
		if tr != nil {
			spanStart = time.Now()
		}
		fn(tid)
		if tr != nil {
			tr.Span(tid, span, it, spanStart)
		}
	})
}

// FCFSKernels are the phase kernels of the NUMA-oblivious scatter-gather
// engines (Algorithm 1): partitions are claimed first-come-first-serve from
// a shared atomic counter, the execution style of p-PR and GPOP (and HiPa's
// FCFS ablation).
func FCFSKernels(s *SGState) PhaseKernels {
	P := s.Hier.NumPartitions()
	var next atomic.Int64
	claim := func(tid int, phase func(p, tid int)) {
		for {
			p := int(next.Add(1)) - 1
			if p >= P {
				return
			}
			phase(p, tid)
		}
	}
	return PhaseKernels{
		StartIteration: func(int) { next.Store(0) },
		Scatter:        func(tid int) { claim(tid, s.ScatterPartition) },
		Reduce: func() {
			s.ReduceDangling()
			next.Store(0)
		},
		Gather:       func(tid int) { claim(tid, s.GatherPartition) },
		Residual:     s.MaxResidual,
		DanglingMass: s.LastDanglingMass,
	}
}

// PinnedKernels are the phase kernels of HiPa's pinned execution
// (Algorithm 2): thread tid processes exactly the partitions of its group,
// every iteration — the one-to-many thread-data mapping.
func PinnedKernels(s *SGState, groups []partition.Group) PhaseKernels {
	return PhaseKernels{
		Scatter: func(tid int) {
			gr := groups[tid]
			for p := gr.PartStart; p < gr.PartEnd; p++ {
				s.ScatterPartition(p, tid)
			}
		},
		Reduce: s.ReduceDangling,
		Gather: func(tid int) {
			gr := groups[tid]
			for p := gr.PartStart; p < gr.PartEnd; p++ {
				s.GatherPartition(p, tid)
			}
		},
		Residual:     s.MaxResidual,
		DanglingMass: s.LastDanglingMass,
	}
}
