package common

import (
	"sync/atomic"
	"time"

	"hipa/internal/obs"
	"hipa/internal/partition"
)

// RunFCFS executes the NUMA-oblivious scatter-gather model (Algorithm 1):
// every phase of every iteration is its own parallel region with a fresh
// pool of `threads` workers, and partitions are claimed first-come-first-
// serve from a shared atomic counter. This is the execution style of p-PR
// and GPOP. With tolerance > 0 the loop stops once the L∞ rank change
// falls below it; the performed iteration count is returned. A non-nil rec
// receives per-iteration statistics and per-thread phase spans.
func RunFCFS(s *SGState, iterations, threads int, tolerance float64, rec *obs.Recorder) int {
	P := s.Hier.NumPartitions()
	tr := rec.T()
	runner := RunnerLane(threads)
	for it := 0; it < iterations; it++ {
		var itStart time.Time
		if rec != nil {
			itStart = time.Now()
		}
		var next atomic.Int64
		RunThreads(threads, func(tid int) {
			var spanStart time.Time
			if tr != nil {
				spanStart = time.Now()
			}
			for {
				p := int(next.Add(1)) - 1
				if p >= P {
					break
				}
				s.ScatterPartition(p, tid)
			}
			if tr != nil {
				tr.Span(tid, SpanScatter, it, spanStart)
			}
		})
		var serialStart time.Time
		if tr != nil {
			serialStart = time.Now()
		}
		s.ReduceDangling()
		if tr != nil {
			tr.Span(runner, SpanReduce, it, serialStart)
		}
		next.Store(0)
		RunThreads(threads, func(tid int) {
			var spanStart time.Time
			if tr != nil {
				spanStart = time.Now()
			}
			for {
				p := int(next.Add(1)) - 1
				if p >= P {
					break
				}
				s.GatherPartition(p, tid)
			}
			if tr != nil {
				tr.Span(tid, SpanGather, it, spanStart)
			}
		})
		if tr != nil {
			serialStart = time.Now()
		}
		res := s.MaxResidual()
		if tr != nil {
			tr.Span(runner, SpanApply, it, serialStart)
		}
		if rec != nil {
			rec.RecordIteration(obs.IterationStats{
				Iter:         it,
				WallSeconds:  time.Since(itStart).Seconds(),
				Residual:     res,
				DanglingMass: s.LastDanglingMass(),
			})
		}
		if tolerance > 0 && res < tolerance {
			return it + 1
		}
	}
	return iterations
}

// ModelFCFSAssignment models the steady-state outcome of first-come-first-
// serve partition claiming for the analytic cost model: dynamic scheduling
// approximates a greedy least-loaded assignment, so each partition (in
// order) goes to the thread with the least accumulated edge work. With many
// small partitions this is near-perfectly balanced; with fewer partitions
// than threads (GPOP's 1MB partitions on a small graph) the imbalance the
// paper observes emerges naturally.
func ModelFCFSAssignment(h *partition.Hierarchy, threads int) []int32 {
	out := make([]int32, h.NumPartitions())
	load := make([]int64, threads)
	for p, part := range h.Partitions {
		best := 0
		for t := 1; t < threads; t++ {
			if load[t] < load[best] {
				best = t
			}
		}
		out[p] = int32(best)
		load[best] += part.EdgeCount + 1
	}
	return out
}
