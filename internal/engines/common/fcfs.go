package common

import (
	"sync/atomic"

	"hipa/internal/partition"
)

// RunFCFS executes the NUMA-oblivious scatter-gather model (Algorithm 1):
// every phase of every iteration is its own parallel region with a fresh
// pool of `threads` workers, and partitions are claimed first-come-first-
// serve from a shared atomic counter. This is the execution style of p-PR
// and GPOP. With tolerance > 0 the loop stops once the L∞ rank change
// falls below it; the performed iteration count is returned.
func RunFCFS(s *SGState, iterations, threads int, tolerance float64) int {
	P := s.Hier.NumPartitions()
	for it := 0; it < iterations; it++ {
		var next atomic.Int64
		RunThreads(threads, func(tid int) {
			for {
				p := int(next.Add(1)) - 1
				if p >= P {
					return
				}
				s.ScatterPartition(p, tid)
			}
		})
		s.ReduceDangling()
		next.Store(0)
		RunThreads(threads, func(tid int) {
			for {
				p := int(next.Add(1)) - 1
				if p >= P {
					return
				}
				s.GatherPartition(p, tid)
			}
		})
		if res := s.MaxResidual(); tolerance > 0 && res < tolerance {
			return it + 1
		}
	}
	return iterations
}

// ModelFCFSAssignment models the steady-state outcome of first-come-first-
// serve partition claiming for the analytic cost model: dynamic scheduling
// approximates a greedy least-loaded assignment, so each partition (in
// order) goes to the thread with the least accumulated edge work. With many
// small partitions this is near-perfectly balanced; with fewer partitions
// than threads (GPOP's 1MB partitions on a small graph) the imbalance the
// paper observes emerges naturally.
func ModelFCFSAssignment(h *partition.Hierarchy, threads int) []int32 {
	out := make([]int32, h.NumPartitions())
	load := make([]int64, threads)
	for p, part := range h.Partitions {
		best := 0
		for t := 1; t < threads; t++ {
			if load[t] < load[best] {
				best = t
			}
		}
		out[p] = int32(best)
		load[best] += part.EdgeCount + 1
	}
	return out
}
