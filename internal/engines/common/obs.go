package common

import (
	"hipa/internal/machine"
	"hipa/internal/obs"
)

// Span names of the engine pipeline, shared by all five engines so traces
// from different engines line up in a viewer: preprocessing (partitioning,
// layout/index construction), then per iteration scatter → reduce
// (dangling-mass fold) → gather → apply (residual fold + convergence
// check). Vertex-centric engines map their contribution pass to SpanScatter
// and their pull pass to SpanGather.
const (
	SpanPrepPartition = "prep:partition"
	SpanPrepLayout    = "prep:layout"
	SpanPrepIndex     = "prep:index"
	SpanScatter       = "scatter"
	SpanReduce        = "reduce"
	SpanGather        = "gather"
	SpanApply         = "apply"
	// SpanRound is one worker round of the barrierless engine, which has no
	// phase structure to break a superstep into.
	SpanRound = "round"
)

// Collector phase-timer names shared by the engines. The prep:* stage timers
// break PhasePrep down so `-stats` shows where Prepare time goes; they reuse
// the span names, keeping traces and counters aligned.
const (
	PhasePrep            = "prep"
	PhasePrepPartition   = SpanPrepPartition
	PhasePrepLayout      = SpanPrepLayout
	PhasePrepIndex       = SpanPrepIndex
	PhasePrepFingerprint = "prep:fingerprint"
	PhaseRun             = "iterations"
)

// RunnerLane is the trace lane for serial work done between parallel
// regions (reductions, convergence checks, preprocessing): one past the
// last worker lane.
func RunnerLane(threads int) int { return threads }

// RecordGraphCounters feeds the standard graph-shape counters every engine
// reports.
func RecordGraphCounters(c *obs.Collector, vertices int, edges int64) {
	c.Add("graph.vertices", int64(vertices))
	c.Add("graph.edges", edges)
}

// FinishRun finalizes a run's telemetry once the Result is assembled:
// standard counters and gauges on the collector, model-derived annotation
// of the per-iteration statistics (equal traffic share per iteration;
// migrations charged to iteration 0 for pinned engines, spread for
// per-phase pools), and Result.Iters. No-op without a recorder.
func FinishRun(rec *obs.Recorder, res *Result, m *machine.Machine, pinned bool) {
	// The registry half runs recorder or not: bytes-moved totals accumulate
	// process-wide for every finished run.
	if em := metricsFor(res.Engine); em != nil && res.Model != nil {
		em.localBytes.Add(res.Model.LocalBytes)
		em.remoteBytes.Add(res.Model.RemoteBytes)
	}
	if rec == nil {
		return
	}
	c := rec.C()
	c.Add("run.iterations", int64(res.Iterations))
	c.Add("run.threads", int64(res.Threads))
	c.Add("sched.spawns", res.Sched.Spawned)
	c.Add("sched.bindings", res.Sched.Bindings)
	c.Add("sched.migrations", res.Sched.Migrations)
	c.Add("sched.cross_node_migrations", res.Sched.CrossNodeMigrations)
	c.Set("rank_sum", RankSum(res.Ranks))
	c.Set("wall_seconds", res.WallSeconds)
	c.Set("prep_seconds", res.PrepSeconds)
	c.Set("prep_build_seconds", res.PrepBuildSeconds)
	line := 64
	if m != nil && m.L1.LineBytes > 0 {
		line = m.L1.LineBytes
	}
	var localBytes, remoteBytes int64
	if res.Model != nil {
		localBytes, remoteBytes = res.Model.LocalBytes, res.Model.RemoteBytes
		c.Add("model.local_bytes", localBytes)
		c.Add("model.remote_bytes", remoteBytes)
		c.Add("model.llc_accesses", res.Model.LLCAccesses)
		c.Set("model.estimated_seconds", res.Model.EstimatedSeconds)
		c.Set("model.mape", res.Model.MApE)
		c.Set("model.remote_fraction", res.Model.RemoteFraction)
	}
	rec.AnnotateModel(localBytes, remoteBytes, line, res.Sched.Migrations, pinned)
	res.Iters = rec.IterationStats()
}
