package common

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hipa/internal/execbuf"
	"hipa/internal/obs"
)

// asyncStaleWindow bounds how many rounds any worker may lead the slowest
// worker still running. Unbounded chaotic iteration is wrong on a real
// scheduler: rounds are microseconds, so an early-spawned worker can exhaust
// its whole round budget against the *initial* ranks of chunks whose workers
// were not yet scheduled, then exit — leaving its chunk permanently stale
// and steering the rest of the fleet to a wrong fixed point. A small
// staleness window keeps every chunk's published ranks at most a few rounds
// old while preserving the barrierless character: a leading worker spins on
// runtime.Gosched (never a barrier, never a lock) until the stragglers have
// published, and the fast path — workers within the window — never waits at
// all.
const asyncStaleWindow = 4

// AsyncConfig parameterises RunAsyncRounds, the barrierless counterpart of
// RunSupersteps: one goroutine per worker, no barriers between rounds, and
// round-based termination detection over atomically published per-worker
// progress (Eedi et al.'s non-blocking PageRank shape).
type AsyncConfig struct {
	// Engine names the engine for process-wide registry recording; empty
	// disables it.
	Engine string
	// Threads is the worker count. Unlike the superstep loop there is no
	// Parallelism cap: a capped pool would serialize whole worker bodies,
	// not phases, changing the algorithm.
	Threads int
	// Rounds bounds each worker's round count.
	Rounds int
	// Tolerance > 0 enables round-based termination detection: when every
	// published residual is below tolerance a confirmation epoch is armed,
	// and the fleet terminates only after every worker has advanced a full
	// staleness window past the arm point with no residual rising back above
	// tolerance (a rise aborts the epoch). The confirmation is what makes
	// detection sound: with bounded staleness, workers converge against
	// snapshots of each other and residuals dip below tolerance transiently
	// before a neighbour's fresh updates arrive and push them back up.
	Tolerance float64
	// Residuals and RoundCounts are the per-worker publication lanes
	// (arena-backed, cache-line padded), written by RunAsyncRounds itself:
	// after worker t finishes round r it stores its L∞ as float64 bits in
	// Residuals[t] and r in RoundCounts[t]. Both must have Threads entries.
	Residuals   []execbuf.PadU64
	RoundCounts []execbuf.PadU64
	// DanglingMass, when non-nil, is sampled by worker 0 for per-round
	// statistics (the engine's view of the current redistribution mass).
	DanglingMass func() float64
	// Rec receives worker 0's per-round statistics and all workers' round
	// spans; nil disables instrumentation.
	Rec *obs.Recorder
}

// RunAsyncRounds drives cfg.Threads workers through up to cfg.Rounds calls
// of round(tid, r) each, with no barriers between workers — each publishes
// its progress through the atomic lanes, polls the shared termination flag
// between rounds, and paces itself against the slowest worker's published
// round (asyncStaleWindow). round must be safe for concurrent
// invocation across tids (the barrierless engines use atomic rank
// publication for exactly this) and must return the worker's local L∞ rank
// change for the round.
//
// Termination is round-based in the spirit of Eedi et al., hardened with an
// epoch confirmation (see AsyncConfig.Tolerance): a converged worker arms a
// candidate epoch when every published residual is below tolerance, any
// worker whose next round moves a rank by tolerance or more aborts it, and
// the flag is raised only once the slowest worker has advanced a full
// staleness window past the arm point with the epoch still live. Workers
// that already converged keep iterating (keeping their chunk current) until
// the flag is up, so nothing ever blocks. Returns the maximum and summed
// rounds executed across workers; per-worker counts stay readable from
// cfg.RoundCounts.
//
// With telemetry disabled the steady state allocates nothing per round —
// spawn-time costs (goroutines, closures) are per-Exec.
func RunAsyncRounds(cfg AsyncConfig, round func(tid, r int) float64) (maxRounds int, totalRounds int64) {
	em := metricsFor(cfg.Engine)
	rec := cfg.Rec
	var term atomic.Bool
	// epoch is the termination candidate: 0 when none is armed, otherwise
	// the fleet-minimum round count every worker must reach — with no
	// residual rising back above tolerance in the meantime — before the
	// fleet may stop.
	var epoch atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		go func(tid int) {
			defer wg.Done()
			tr := rec.T()
			instrument := tr != nil || (tid == 0 && (rec != nil || em != nil))
			for r := 0; r < cfg.Rounds; r++ {
				if term.Load() {
					break
				}
				// Bounded staleness: yield until executing round r would not
				// lead the slowest published worker by more than the window.
				// The spin re-checks the termination flag so a converged fleet
				// releases a waiting leader immediately.
				for r >= asyncStaleWindow {
					min := cfg.RoundCounts[0].V.Load()
					for w := 1; w < cfg.Threads; w++ {
						if c := cfg.RoundCounts[w].V.Load(); c < min {
							min = c
						}
					}
					if uint64(r) < min+asyncStaleWindow || term.Load() {
						break
					}
					runtime.Gosched()
				}
				if term.Load() {
					break
				}
				var start time.Time
				if instrument {
					start = time.Now()
				}
				res := round(tid, r)
				cfg.Residuals[tid].V.Store(math.Float64bits(res))
				cfg.RoundCounts[tid].V.Store(uint64(r + 1))
				if tr != nil {
					tr.Span(tid, SpanRound, r, start)
				}
				if tid == 0 {
					if em != nil {
						em.superstep.Observe(time.Since(start).Seconds())
						em.residual.Observe(res)
						em.iterations.Inc()
					}
					if rec != nil {
						st := obs.IterationStats{
							Iter:        r,
							WallSeconds: time.Since(start).Seconds(),
							Residual:    res,
						}
						if cfg.DanglingMass != nil {
							st.DanglingMass = cfg.DanglingMass()
						}
						rec.RecordIteration(st)
					}
				}
				if cfg.Tolerance > 0 {
					if res >= cfg.Tolerance {
						// This chunk is still moving: abort any pending epoch.
						// The abort is ordered after the residual store above,
						// so no peer can confirm against the stale low value.
						epoch.Store(0)
					} else {
						fleetLow := true
						minRound := cfg.RoundCounts[0].V.Load()
						for w := 0; w < cfg.Threads; w++ {
							if math.Float64frombits(cfg.Residuals[w].V.Load()) >= cfg.Tolerance {
								fleetLow = false
								break
							}
							if c := cfg.RoundCounts[w].V.Load(); c < minRound {
								minRound = c
							}
						}
						if fleetLow {
							if cand := epoch.Load(); cand == 0 {
								epoch.CompareAndSwap(0, minRound+asyncStaleWindow)
							} else if minRound >= cand {
								term.Store(true)
								break
							}
						}
					}
				}
			}
		}(t)
	}
	wg.Wait()
	for t := 0; t < cfg.Threads; t++ {
		r := int(cfg.RoundCounts[t].V.Load())
		totalRounds += int64(r)
		if r > maxRounds {
			maxRounds = r
		}
	}
	return maxRounds, totalRounds
}
