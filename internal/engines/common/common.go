// Package common holds the engine interface, options, result types, and the
// shared numerical and concurrency infrastructure used by all five PageRank
// implementations (HiPa, p-PR, v-PR, GPOP-like, Polymer-like).
//
// Every engine computes the same damped PageRank with dangling-mass
// redistribution:
//
//	rank'(v) = (1-d)/|V| + d·( Σ_{u→v} rank(u)/outdeg(u) + S/|V| )
//
// where S is the summed rank of dangling (outdeg-0) vertices. Initial ranks
// are 1/|V|; the rank vector sums to 1 after every iteration. Rank storage
// is float32 (the paper's 4-byte values); global reductions use float64.
//
// Each engine produces two timings: the real wall-clock of its parallel Go
// execution on the host, and a modelled execution time from
// internal/perfmodel driven by the engine's actual data-structure event
// counts on the simulated machine. Paper-shape comparisons use the model;
// the wall clock documents that the implementations really run in parallel.
package common

import (
	"fmt"
	"math"
	"runtime"

	"hipa/internal/graph"
	"hipa/internal/machine"
	"hipa/internal/obs"
	"hipa/internal/perfmodel"
	"hipa/internal/platform"
	"hipa/internal/sched"
)

// DefaultIterations matches the paper's timed runs (§4.1).
const DefaultIterations = 20

// DefaultDamping is the standard PageRank damping factor.
const DefaultDamping = 0.85

// DefaultPartitionBytes is the paper's tuned partition size on Skylake.
// Options.PartitionBytes defaults to the machine-derived
// Machine.TunedPartitionBytes (equal to this constant on the Skylake
// preset); the constant documents the paper's headline number.
const DefaultPartitionBytes = 256 << 10

// Options configures an engine run.
type Options struct {
	// Machine is the simulated machine; nil selects the Platform's machine,
	// or the Skylake preset when Platform is also nil. When both Machine and
	// Platform are set they must agree (Validate rejects a mismatch).
	Machine *machine.Machine
	// Platform is the execution substrate (scheduling simulation, NUMA
	// placement, cost accounting). nil derives a modelled platform from
	// Machine; platform.NewNative gives pure wall-clock runs with all
	// modelled metrics reported as zero.
	Platform platform.Platform
	// Threads is the number of worker threads; 0 selects the engine's paper
	// default (all 40 logical cores for HiPa/v-PR/Polymer, 20 for p-PR and
	// GPOP). HiPa needs one group list per NUMA node, so it adjusts the
	// requested count to a feasible one — bumped to at least the node count,
	// then rounded down to a node multiple (the paper's per-node thread
	// split) — and reports the adjustment on the obs Collector as the gauges
	// "hipa.threads.requested" and "hipa.threads.effective";
	// Result.Threads always carries the effective count.
	Threads int
	// Iterations of PageRank; 0 means DefaultIterations.
	Iterations int
	// Damping factor; 0 means DefaultDamping.
	Damping float64
	// Tolerance enables convergence-based early termination: the run stops
	// once the L∞ rank change of an iteration falls below it (checked at
	// the iteration barrier), or after Iterations, whichever first. 0 runs
	// exactly Iterations iterations (the paper's fixed-20 methodology).
	Tolerance float64
	// PartitionBytes for partition-centric engines; 0 means the engine
	// default (256KB; 1MB for GPOP, per its authors' instruction §4.1).
	PartitionBytes int
	// NoCompress disables inter-edge compression (ablation).
	NoCompress bool
	// VertexBalanced switches NUMA partitioning to the naive vertex split
	// (ablation, HiPa only).
	VertexBalanced bool
	// FCFS forces first-come-first-serve partition scheduling instead of
	// thread-data pinning (ablation, HiPa only).
	FCFS bool
	// SchedSeed seeds the simulated OS scheduler. 0 is a sentinel for the
	// default seed 0xC0FFEE (WithDefaults coerces it), so seed 0 itself is
	// not selectable; pass any other value for a distinct deterministic
	// schedule.
	SchedSeed uint64
	// GoParallelism caps real goroutines; 0 means min(Threads, GOMAXPROCS).
	GoParallelism int
	// PrepParallelism is the worker count of the Prepare pipeline (CSC
	// build, fingerprint, partition hierarchy, message layout): positive =
	// that many workers, 0 = all cores. Artifacts are bit-identical at any
	// setting, so the knob is not part of the prep-cache key. Negative is
	// rejected by Validate; callers wanting a serial build pass 1.
	PrepParallelism int
	// PrepCache, when non-nil, lets Prepare — and therefore Run — reuse
	// preprocessing artifacts across runs. Artifacts are keyed by graph
	// content plus the prep-relevant options (PartitionBytes, NoCompress,
	// VertexBalanced, node count); thread count is not part of the key, so a
	// whole thread sweep shares one artifact. nil disables reuse: every run
	// pays a cold build, as before the two-phase lifecycle.
	PrepCache *PrepCache
	// Obs receives the run's telemetry (counters, phase timers, trace
	// spans, per-iteration statistics). nil disables all instrumentation;
	// the hot paths then pay only a pointer test.
	Obs *obs.Recorder
	// Warm, when non-nil, starts the iterative phase from a previous rank
	// vector instead of the uniform distribution — the incremental re-rank
	// path of versioned graphs. Supported by HiPa (dense warm restart) and
	// the delta engine (sparse incremental propagation); every other engine
	// rejects a warm start with an explicit error rather than silently
	// running cold.
	Warm *WarmStart
}

// WarmStart carries the state of a previous converged run into a new Exec.
type WarmStart struct {
	// Ranks is the starting rank vector; its length must match the graph.
	// Exec copies it — the caller's slice is never retained or mutated.
	Ranks []float32
	// Delta, when non-nil, describes the mutation batch separating the graph
	// the ranks converged on from the graph being executed. The delta engine
	// uses it to seed a sparse frontier from the perturbed vertices; dense
	// warm engines ignore it.
	Delta *graph.Delta
}

// ResolveMachine fills only the Machine field, so engine-specific defaults
// (which depend on the topology) can be computed before WithDefaults: an
// explicit Platform supplies its machine, then fallback (an Exec's prepared
// artifact machine; may be nil), then the Skylake preset.
func (o Options) ResolveMachine(fallback *machine.Machine) Options {
	if o.Machine != nil {
		return o
	}
	switch {
	case o.Platform != nil:
		o.Machine = o.Platform.Machine()
	case fallback != nil:
		o.Machine = fallback
	default:
		o.Machine = machine.SkylakeSilver4210()
	}
	return o
}

// WithDefaults fills zero fields. defaultThreads is engine-specific.
func (o Options) WithDefaults(defaultThreads int) Options {
	o = o.ResolveMachine(nil)
	if o.Platform == nil {
		o.Platform = platform.NewModeled(o.Machine)
	}
	if o.Threads == 0 {
		o.Threads = defaultThreads
	}
	if o.Iterations == 0 {
		o.Iterations = DefaultIterations
	}
	if o.Damping == 0 {
		o.Damping = DefaultDamping
	}
	if o.PartitionBytes == 0 {
		// Cache-geometry-derived: the tuned partition size differs between
		// the Skylake and Haswell presets, so default-option artifacts built
		// on different machines never collide in a PrepCache.
		o.PartitionBytes = o.Machine.TunedPartitionBytes()
	}
	if o.GoParallelism == 0 {
		o.GoParallelism = o.Threads
		if p := runtime.GOMAXPROCS(0); p < o.GoParallelism {
			o.GoParallelism = p
		}
	}
	if o.SchedSeed == 0 {
		o.SchedSeed = 0xC0FFEE
	}
	return o
}

// Validate rejects unusable option combinations.
func (o Options) Validate() error {
	if o.Platform != nil && o.Machine != nil && o.Platform.Machine() != o.Machine {
		return fmt.Errorf("engines: Options.Machine does not match Options.Platform's machine (%s vs %s)",
			o.Machine.Name, o.Platform.Machine().Name)
	}
	if o.Threads < 1 {
		return fmt.Errorf("engines: need at least 1 thread, got %d", o.Threads)
	}
	if o.Iterations < 1 {
		return fmt.Errorf("engines: need at least 1 iteration, got %d", o.Iterations)
	}
	if o.Damping <= 0 || o.Damping >= 1 {
		return fmt.Errorf("engines: damping must be in (0,1), got %g", o.Damping)
	}
	if o.PartitionBytes < 4 {
		return fmt.Errorf("engines: partition bytes %d too small", o.PartitionBytes)
	}
	if o.Tolerance < 0 {
		return fmt.Errorf("engines: negative tolerance %g", o.Tolerance)
	}
	if o.PrepParallelism < 0 {
		return fmt.Errorf("engines: negative prep parallelism %d (use 1 for serial)", o.PrepParallelism)
	}
	return nil
}

// Result is the outcome of one engine run.
type Result struct {
	Engine     string
	Ranks      []float32
	Iterations int
	Threads    int

	// WallSeconds is the real elapsed time of the iterations (excluding
	// preprocessing).
	WallSeconds float64
	// PrepSeconds is the real elapsed time of the Prepare call whose
	// artifact this run executed against (partitioning, layout, placement —
	// the paper's "overhead", §4.2 — excluding graph loading). Near zero
	// when the artifact came from a PrepCache; see PrepBuildSeconds for the
	// cold cost.
	PrepSeconds float64
	// PrepBuildSeconds is the artifact's cold construction cost, preserved
	// across cache hits — the honest §4.2 overhead number for amortization.
	PrepBuildSeconds float64
	// PrepFromCache reports whether the artifact was served from a
	// PrepCache rather than built for this run.
	PrepFromCache bool

	// Model is the simulated-machine estimate (time, MApE, LLC traffic).
	// Always non-nil; on a Native platform it is zero-valued apart from
	// Iterations — modelled metrics are reported as zero, not fabricated.
	Model *perfmodel.Report
	// Sched is the simulated scheduler activity (spawns, migrations).
	Sched sched.Stats

	// Iters holds per-iteration statistics (wall time, residual, dangling
	// mass, modelled local/remote accesses, migrations). Populated only
	// when Options.Obs was set for the run.
	Iters []obs.IterationStats

	// Frontier summarises pruning effectiveness for frontier-aware engines
	// (active-set sizes, partition-iterations skipped); nil for the dense
	// engines, which execute the full graph every iteration.
	Frontier *FrontierReport
}

// Engine is one PageRank implementation with a two-phase lifecycle:
// Prepare builds the immutable preprocessing artifact, Exec runs the
// iterative phase against it, and Run is their composition. All five
// engines produce bit-identical rank vectors via Run and Prepare+Exec.
type Engine interface {
	// Name returns the paper's name for the implementation.
	Name() string
	// Run executes PageRank on g: Prepare followed by Exec.
	Run(g *graph.Graph, o Options) (*Result, error)
	// Prepare builds the engine's preprocessing artifact for g — partition
	// hierarchy, compressed layout and lookup inputs for partition-centric
	// engines; transpose and degree arrays for vertex-centric ones. The
	// artifact is immutable and honors o.PrepCache.
	Prepare(g *graph.Graph, o Options) (*Prepared, error)
	// Exec runs the iterative scatter-gather phase against a previously
	// Prepared artifact. Iteration-phase options (Threads, Iterations,
	// Damping, Tolerance, FCFS, SchedSeed, Obs) come from o; prep-determined
	// options must be zero or match the artifact. Safe for concurrent calls
	// sharing one artifact.
	Exec(prep *Prepared, o Options) (*Result, error)
}

// PrepareAndExec composes the two lifecycle phases; engines implement Run
// with it.
func PrepareAndExec(e Engine, g *graph.Graph, o Options) (*Result, error) {
	prep, err := e.Prepare(g, o)
	if err != nil {
		return nil, err
	}
	return e.Exec(prep, o)
}

// RankSum returns the sum of ranks (should be ~1).
func RankSum(ranks []float32) float64 {
	var s float64
	for _, r := range ranks {
		s += float64(r)
	}
	return s
}

// MaxAbsDiff returns the L∞ distance between two rank vectors, or +Inf if
// the vectors differ in length.
func MaxAbsDiff(a, b []float32) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var m float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
