package common

import (
	"runtime"
	"testing"
	"time"

	"hipa/internal/graph"
)

// TestFingerprintedGraphsAreCollectable: fingerprinting a graph must not pin
// it in memory. Regression test for the package-level sync.Maps (graphFPs,
// buildInLocks) that held strong *graph.Graph keys forever, leaking every
// graph ever fingerprinted in a long-lived process.
func TestFingerprintedGraphsAreCollectable(t *testing.T) {
	collected := make(chan struct{})
	func() {
		b := graph.NewBuilder(2000)
		for v := 0; v < 2000; v++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%2000))
		}
		g := b.Build()
		if GraphFingerprint(g) == 0 {
			t.Log("fingerprint is zero (unlikely but legal)")
		}
		g.BuildIn() // the old lock side-map also pinned graphs
		runtime.SetFinalizer(g, func(*graph.Graph) { close(collected) })
	}()
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-deadline:
			t.Fatal("fingerprinted graph was never garbage-collected; something still holds a strong reference")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestFingerprintStableAcrossInstancesAndWorkers: the prep-cache key must not
// depend on which instance computed it or at what parallelism.
func TestFingerprintStableAcrossInstancesAndWorkers(t *testing.T) {
	build := func() *graph.Graph {
		b := graph.NewBuilder(1000)
		for v := 0; v < 1000; v++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID((v*31+7)%1000))
		}
		return b.Build()
	}
	want := build().FingerprintWorkers(1)
	for _, workers := range []int{2, 5, 16} {
		if got := build().FingerprintWorkers(workers); got != want {
			t.Fatalf("fingerprint at %d workers = %x, want %x", workers, got, want)
		}
	}
	if got := GraphFingerprint(build()); got != want {
		t.Fatalf("GraphFingerprint wrapper = %x, want %x", got, want)
	}
}
