package common

import (
	"fmt"

	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/partition"
	"hipa/internal/perfmodel"
)

// Cycle cost constants for the analytic model. They set the compute
// component of the estimate (absolute scale); the memory components come
// from the machine parameters.
const (
	// CyclesPerEdge covers the add/multiply plus index arithmetic of one
	// edge traversal.
	CyclesPerEdge = 5.0
	// CyclesPerMessage covers encoding/decoding one compressed inter-edge
	// message.
	CyclesPerMessage = 4.0
	// CyclesPerVertex covers the per-vertex rank recomputation.
	CyclesPerVertex = 10.0
	// AtomicPenaltyCycles is the extra cost of an atomic read-modify-write
	// on a contended line (the Polymer-style frameworks' push updates).
	AtomicPenaltyCycles = 12.0
	// WorkingSetSlack scales a partition's vertex bytes to its full cache
	// working set: vertex subset + resident part of the edge subset + the
	// scatter buffer must co-reside in L2 (§4.5: "the size of a vertex
	// subset is supposed to be smaller than the L2 cache size, so that the
	// edge subset and buffer are co-located").
	WorkingSetSlack = 1.5
)

// PartitionModelSpec feeds BuildPartitionModel with everything the analytic
// model needs about a partition-centric run (HiPa, p-PR, GPOP).
type PartitionModelSpec struct {
	Machine *machine.Machine
	Hier    *partition.Hierarchy
	Lay     *layout.Layout
	Lookup  *partition.LookupTable

	// ThreadNode[t] is the NUMA node thread t runs on; ThreadShared[t]
	// reports whether its hyper-thread sibling is also active. Both come
	// from the scheduler simulation.
	ThreadNode   []int
	ThreadShared []bool
	// PartThread[p] is the thread that processes partition p (the pinned
	// assignment for HiPa, or the modelled average assignment for FCFS
	// engines).
	PartThread []int32

	// NUMAAware marks data placed on the owning node (HiPa); otherwise
	// arrays are effectively interleaved across nodes and a 1/NUMANodes
	// fraction of traffic is local.
	NUMAAware bool

	Iterations int
	// ExtraBytesPerPartition models per-partition framework state streamed
	// each phase (GPOP's Flags/State fields, §4.5).
	ExtraBytesPerPartition int64
	// ExtraCyclesPerEdge models framework bookkeeping on the edge path
	// (GPOP's generality layer; 0 for the hand-coded engines).
	ExtraCyclesPerEdge float64
	// WorkingSetSlack overrides the default WorkingSetSlack factor when
	// non-zero. Pinned threads over the contiguous per-group layout (§3.4)
	// keep a tight resident set (default 1.5×); FCFS threads hop across
	// non-contiguous partitions and keep more live bin pages resident, so
	// the oblivious engines pass a larger factor — this is the L2
	// contention that makes them degrade past the physical core count
	// (§3.3.1, Fig. 6).
	WorkingSetSlack float64
}

// BuildPartitionModel classifies the memory events of a partition-centric
// scatter-gather run and returns the per-thread costs plus the barrier
// count. Event counts are exact (driven by the real layout); placement
// classification is exact for NUMA-aware runs and expectation-based for
// interleaved ones.
func BuildPartitionModel(s PartitionModelSpec) ([]perfmodel.ThreadCost, int64, error) {
	if len(s.ThreadNode) == 0 {
		return nil, 0, fmt.Errorf("common: no threads in model spec")
	}
	if len(s.PartThread) != s.Hier.NumPartitions() {
		return nil, 0, fmt.Errorf("common: PartThread has %d entries for %d partitions", len(s.PartThread), s.Hier.NumPartitions())
	}
	nThreads := len(s.ThreadNode)
	m := s.Machine
	costs := make([]perfmodel.ThreadCost, nThreads)
	for t, nd := range s.ThreadNode {
		costs[t].Node = nd
		costs[t].PhysShared = s.ThreadShared[t]
	}
	// LLC demand counts only *active* threads (those owning at least one
	// partition); a huge partition size can leave most threads idle.
	active := make([]bool, nThreads)
	for _, t := range s.PartThread {
		if int(t) >= 0 && int(t) < nThreads {
			active[t] = true
		}
	}
	threadsOnNode := make([]int, m.NUMANodes)
	for t, nd := range s.ThreadNode {
		if active[t] {
			threadsOnNode[nd]++
		}
	}

	// Per-partition aggregates from the layout.
	P := s.Hier.NumPartitions()
	msgsOut := make([]int64, P)
	dstsOut := make([]int64, P)
	msgsIn := make([]int64, P)
	dstsIn := make([]int64, P)
	for _, b := range s.Lay.Blocks {
		nm := b.Messages()
		nd := s.Lay.MsgDstOff[b.MsgEnd] - s.Lay.MsgDstOff[b.MsgStart]
		msgsOut[b.SrcPart] += nm
		dstsOut[b.SrcPart] += nd
		msgsIn[b.DstPart] += nm
		dstsIn[b.DstPart] += nd
	}

	slack := s.WorkingSetSlack
	if slack == 0 {
		slack = WorkingSetSlack
	}
	partBytes := int64(s.Hier.VerticesPerPartition * s.Hier.Config.BytesPerVertex)

	// addStream splits bytes into local/remote for a thread given the node
	// the data lives on (dataNode < 0 means interleaved).
	addStream := func(t int, dataNode int, bytes int64) {
		if bytes == 0 {
			return
		}
		c := &costs[t]
		if dataNode >= 0 {
			if dataNode == c.Node {
				c.StreamLocalBytes += bytes
			} else {
				c.StreamRemoteBytes += bytes
			}
			return
		}
		local := bytes / int64(m.NUMANodes)
		c.StreamLocalBytes += local
		c.StreamRemoteBytes += bytes - local
	}
	// The aggregate LLC demand can never exceed the per-node footprint of
	// the vertex attribute arrays (rank + accumulator); without this cap
	// the model overstates DRAM spill for large partitions on small graphs
	// (cross-checked against the exact simulator in internal/validate).
	capBytes := int64(s.Hier.NumVertices) * int64(s.Hier.Config.BytesPerVertex) * 2 / int64(m.NUMANodes)
	// addRandom classifies `count` random accesses within the thread's
	// partition working set across L2/LLC/DRAM fractions.
	addRandom := func(t int, dataNode int, count int64) {
		if count == 0 {
			return
		}
		c := &costs[t]
		fL2, fLLC, fDRAM := perfmodel.ClassifyPartitionRandom(m, partBytes, slack, c.PhysShared, threadsOnNode[c.Node], capBytes)
		c.L2Accesses += int64(float64(count) * fL2)
		c.LLCAccesses += int64(float64(count) * fLLC)
		dram := int64(float64(count) * fDRAM)
		if dram == 0 {
			return
		}
		if dataNode < 0 {
			local := dram / int64(m.NUMANodes)
			c.RandomLocal += local
			c.RandomRemote += dram - local
		} else if dataNode == c.Node {
			c.RandomLocal += dram
		} else {
			c.RandomRemote += dram
		}
	}

	iters := int64(s.Iterations)
	vb := int64(s.Hier.Config.BytesPerVertex)
	for p := 0; p < P; p++ {
		t := int(s.PartThread[p])
		if t < 0 || t >= nThreads {
			return nil, 0, fmt.Errorf("common: partition %d assigned to thread %d of %d", p, t, nThreads)
		}
		part := s.Hier.Partitions[p]
		vp := int64(part.Vertices())
		intra := s.Lay.IntraOff[part.VertexEnd] - s.Lay.IntraOff[part.VertexStart]

		// Where p's data lives: its own node when NUMA-aware, interleaved
		// otherwise.
		dataNode := -1
		if s.NUMAAware {
			dataNode = int(s.Lookup.PartNode[p])
		}

		// --- Scatter phase (per iteration) ---
		// Stream: rank slice, intra-edge structure, message sources.
		addStream(t, dataNode, iters*(vp*vb+intra*4+msgsOut[p]*4))
		// Bin writes: bins live with the *destination* partition when
		// NUMA-aware, so cross-node messages are the remote traffic of the
		// scatter phase (Fig. 1's "node 2 sends out updated data").
		if s.NUMAAware {
			for bi := s.Lay.SrcBlockStart[p]; bi < s.Lay.SrcBlockEnd[p]; bi++ {
				b := s.Lay.Blocks[bi]
				addStream(t, int(s.Lookup.PartNode[b.DstPart]), iters*b.Messages()*4)
			}
		} else {
			addStream(t, -1, iters*msgsOut[p]*4)
		}
		// Random: intra-edge accumulator updates stay inside the cached
		// partition.
		addRandom(t, dataNode, iters*intra)

		// --- Gather phase (per iteration) ---
		// Stream: bins targeting q (local when NUMA-aware), destination
		// lists, rank recompute (read accumulator + write rank).
		addStream(t, dataNode, iters*(msgsIn[p]*4+dstsIn[p]*4+vp*vb*2))
		// Random: decoded destination updates within the cached partition.
		addRandom(t, dataNode, iters*dstsIn[p])

		// Framework per-partition state (GPOP), streamed each phase.
		if s.ExtraBytesPerPartition > 0 {
			addStream(t, -1, iters*2*s.ExtraBytesPerPartition)
		}

		// Compute.
		costs[t].ComputeCycles += float64(iters) * ((CyclesPerEdge+s.ExtraCyclesPerEdge)*float64(intra+dstsIn[p]) +
			CyclesPerVertex*2*float64(vp) +
			CyclesPerMessage*float64(msgsOut[p]+msgsIn[p]))
	}
	// Three barriers per iteration: after scatter, after gather, after the
	// dangling-mass reduction.
	return costs, iters * 3, nil
}

// VertexModelSpec feeds BuildVertexModel for vertex-centric runs (v-PR,
// Polymer).
type VertexModelSpec struct {
	Machine *machine.Machine
	G       *graph.Graph

	ThreadNode   []int
	ThreadShared []bool
	// Bounds are the per-thread destination vertex ranges (len threads+1).
	Bounds []int

	// NUMAAware places each thread's in-edge structure and rank slice on
	// its node and counts true source-locality (Polymer); otherwise
	// interleaved.
	NUMAAware bool
	// FrontierBytesPerVertex models framework frontier machinery streamed
	// per vertex per iteration (Polymer; 0 for hand-coded v-PR).
	FrontierBytesPerVertex int64
	// AtomicUpdates adds the atomic-operation penalty per edge (Polymer's
	// push-style updates; §4.3 "suffering from atomic operations").
	AtomicUpdates bool
	// FrameworkCyclesPerEdge models per-edge framework overhead (virtual
	// dispatch, work-stealing bookkeeping). 0 for the hand-coded v-PR;
	// calibrated against Table 2 for the Polymer-like framework.
	FrameworkCyclesPerEdge float64
	// SpatialReuseFactor divides the random-miss count: a NUMA-aware
	// framework that clusters each node's in-edges by source locality
	// (Polymer's sub-graph construction) reuses each fetched line for
	// several nearby edges. 0 or 1 means no reuse (v-PR's global pull).
	SpatialReuseFactor float64
	// BoundaryRemoteFraction is the share of random misses that cross
	// nodes in a NUMA-aware engine (sub-graph boundary vertices fetched
	// from the owning node). Ignored when NUMAAware is false.
	BoundaryRemoteFraction float64

	Iterations int
}

// BuildVertexModel classifies the events of a pull/push vertex-centric run.
func BuildVertexModel(s VertexModelSpec) ([]perfmodel.ThreadCost, int64, error) {
	nThreads := len(s.ThreadNode)
	if nThreads == 0 || len(s.Bounds) != nThreads+1 {
		return nil, 0, fmt.Errorf("common: bad vertex model spec (threads=%d bounds=%d)", nThreads, len(s.Bounds))
	}
	if !s.G.HasInEdges() {
		return nil, 0, fmt.Errorf("common: vertex model needs in-edges")
	}
	m := s.Machine
	costs := make([]perfmodel.ThreadCost, nThreads)
	threadsOnNode := make([]int, m.NUMANodes)
	for t, nd := range s.ThreadNode {
		costs[t].Node = nd
		costs[t].PhysShared = s.ThreadShared[t]
		threadsOnNode[nd]++
	}

	n := s.G.NumVertices()
	inOff := s.G.InOffsets()
	iters := int64(s.Iterations)

	// Real pull engines schedule vertex chunks dynamically, so the load
	// balance approaches the LPT bound: every thread gets ≈ |E|/T in-edges,
	// floored by the largest single vertex (a vertex's pull cannot be split
	// without atomics). The static Bounds drive locality and vertex counts;
	// edge loads use the dynamic-balance estimate.
	totalIn := inOff[n]
	evenE := totalIn / int64(nThreads)
	var maxIn int64
	for v := 0; v < n; v++ {
		if d := inOff[v+1] - inOff[v]; d > maxIn {
			maxIn = d
		}
	}
	slowestE := evenE
	if maxIn > slowestE {
		slowestE = maxIn
	}
	// Distribute the remainder so totals stay exact: thread 0 carries the
	// hub-bound load, others share the rest evenly.
	restE := totalIn - slowestE
	otherE := int64(0)
	if nThreads > 1 {
		otherE = restE / int64(nThreads-1)
	}
	edgesOf := func(t int) int64 {
		if t == 0 {
			return slowestE
		}
		if t == nThreads-1 {
			return restE - otherE*int64(nThreads-2)
		}
		return otherE
	}

	// The random-read working set: the contribution array spans all
	// vertices for an oblivious engine; a NUMA-aware engine's references
	// concentrate on its own node's slice (Polymer's sub-graphs), shrinking
	// the effective working set per node.
	for t := 0; t < nThreads; t++ {
		lo, hi := s.Bounds[t], s.Bounds[t+1]
		verts := int64(hi - lo)
		inEdges := edgesOf(t)
		c := &costs[t]

		dataNode := -1
		if s.NUMAAware {
			dataNode = c.Node
		}
		// Streams: in-edge structure (4B per edge + 8B offsets per vertex),
		// contribution write + rank write (4B each per vertex).
		stream := iters * (inEdges*4 + verts*8 + verts*8)
		if s.FrontierBytesPerVertex > 0 {
			stream += iters * verts * s.FrontierBytesPerVertex
		}
		if dataNode >= 0 {
			c.StreamLocalBytes += stream
		} else {
			local := stream / int64(m.NUMANodes)
			c.StreamLocalBytes += local
			c.StreamRemoteBytes += stream - local
		}

		// Random contribution reads: one per in-edge. The effective cache
		// for one thread's random reads is its node's LLC plus its own L2.
		ws := int64(n) * 4
		llcCap := int64(m.LLC.SizeBytes) + int64(m.L2.SizeBytes)
		if s.NUMAAware && m.NUMANodes > 0 {
			// Polymer-style sub-graphs: each node holds a local replica of
			// the contribution slice it reads, so the random working set is
			// the per-node share.
			ws /= int64(m.NUMANodes)
		}
		pHit := 1.0
		if ws > llcCap {
			pHit = float64(llcCap) / float64(ws)
		}
		hits := int64(float64(iters*inEdges) * pHit)
		misses := iters*inEdges - hits
		if s.SpatialReuseFactor > 1 {
			// Clustered in-edges reuse each fetched line for several edges.
			misses = int64(float64(misses) / s.SpatialReuseFactor)
		}
		c.LLCAccesses += hits
		if s.NUMAAware {
			// Misses go to the node-local replica except for sub-graph
			// boundary vertices fetched from the owning node; the replicas
			// are merged once per iteration (4 bytes per remote vertex over
			// the interconnect).
			remote := int64(float64(misses) * s.BoundaryRemoteFraction)
			c.RandomLocal += misses - remote
			c.RandomRemote += remote
			c.StreamRemoteBytes += iters * verts * 4 * int64(m.NUMANodes-1)
		} else {
			lm := misses / int64(m.NUMANodes)
			c.RandomLocal += lm
			c.RandomRemote += misses - lm
		}

		// Compute. The pull path has a dependent load per edge, costing more
		// than the partition engines' streamed edge work.
		perEdge := 2*CyclesPerEdge + s.FrameworkCyclesPerEdge
		if s.AtomicUpdates {
			perEdge += AtomicPenaltyCycles
		}
		cyc := float64(iters) * (perEdge*float64(inEdges) + CyclesPerVertex*float64(verts))
		c.ComputeCycles += cyc
	}
	// Two barriers per iteration (contribution pass, rank pass).
	return costs, iters * 2, nil
}
