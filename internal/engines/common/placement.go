package common

import (
	"hipa/internal/machine"
	"hipa/internal/sched"
)

// ThreadPlacement derives the model inputs from a simulated thread pool:
// each thread's NUMA node and whether it shares a physical core with another
// pool thread (the hyper-thread contention condition).
func ThreadPlacement(pool []*sched.Thread, m *machine.Machine) (nodes []int, shared []bool) {
	nodes = make([]int, len(pool))
	shared = make([]bool, len(pool))
	perPhys := make([]int, m.PhysicalCores())
	for _, t := range pool {
		perPhys[m.PhysicalOfLogical(t.Logical)]++
	}
	for i, t := range pool {
		nodes[i] = m.NodeOfLogical(t.Logical)
		shared[i] = perPhys[m.PhysicalOfLogical(t.Logical)] >= 2
	}
	return nodes, shared
}
