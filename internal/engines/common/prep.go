package common

import (
	"fmt"
	"time"

	"hipa/internal/execbuf"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/partition"
)

// PrepKind distinguishes the two preprocessing artifact families.
type PrepKind uint8

const (
	// PrepPartition artifacts carry a partition hierarchy + compressed
	// layout (HiPa, p-PR, GPOP).
	PrepPartition PrepKind = iota + 1
	// PrepVertex artifacts carry the transpose (CSC) and degree arrays
	// (v-PR, Polymer).
	PrepVertex
)

// PrepKey identifies one preprocessing artifact by graph content and the
// complete set of machine and option fields that reach the build: partition
// size (itself cache-geometry-derived when defaulted), bytes per vertex,
// compression, balance flags, and the NUMA node count of the node-level
// split. Thread count is deliberately absent: the thread-dependent group
// stage is recomputed cheaply on top of the cached node-level split
// (partition.Regroup), so all thread counts of a sweep share one artifact.
// No other machine field shapes the artifact, so structurally identical
// artifacts legitimately share entries across machines (Table 3 builds one
// artifact per partition size, not per microarchitecture).
type PrepKey struct {
	GraphFP        uint64
	Kind           PrepKind
	PartitionBytes int  // 0 for vertex artifacts
	BytesPerVertex int  // rank bytes per vertex in the partitioner; 0 for vertex artifacts
	Compress       bool // inter-edge compression (partition artifacts)
	VertexBalanced bool // NUMA-level vertex balancing ablation
	Nodes          int  // NUMA node count of the node-level split; 0 for vertex artifacts
}

// PartArtifact is the immutable preprocessing payload of the
// partition-centric engines: the node-level hierarchy (groups are
// thread-dependent and recomputed per Exec), the compressed message layout,
// and the 1/outdeg array. All fields are shared read-only across Execs.
type PartArtifact struct {
	Hier *partition.Hierarchy
	Lay  *layout.Layout
	Inv  []float32
}

// VertexArtifact is the immutable preprocessing payload of the
// vertex-centric engines. The transpose itself lives on the Graph (BuildIn);
// the artifact carries the 1/outdeg array.
type VertexArtifact struct {
	Inv []float32
}

// Prepared is an engine's preprocessing artifact: everything that depends
// only on the graph and the prep-relevant options (partition size,
// compression, balance flags, node count), built once by Prepare and reused
// by any number of Exec calls — including concurrent ones; the artifact is
// immutable after Prepare returns.
type Prepared struct {
	engine  string
	key     PrepKey
	g       *graph.Graph
	machine *machine.Machine
	part    *PartArtifact
	vert    *VertexArtifact
	arenas  execbuf.Pool

	// PrepSeconds is the real elapsed time of the Prepare call that produced
	// this value — the full cold build, or a near-zero cache fetch.
	PrepSeconds float64
	// BuildSeconds is the artifact's cold construction cost, preserved
	// across cache hits (the honest §4.2 overhead).
	BuildSeconds float64
	// FromCache reports whether the artifact was served from a PrepCache
	// rather than built by this call.
	FromCache bool
	// Incremental reports that this artifact was produced by Advance's patch
	// path (partition.Advance + layout.Patch) rather than a cold build —
	// false for Prepare results and for Advance's budget-violation fallback.
	Incremental bool
}

// Engine returns the name of the engine that prepared the artifact; Exec
// rejects artifacts prepared by a different engine.
func (p *Prepared) Engine() string { return p.engine }

// Graph returns the graph the artifact was built for.
func (p *Prepared) Graph() *graph.Graph { return p.g }

// Machine returns the machine the artifact was prepared against; Exec uses
// it when Options.Machine is nil.
func (p *Prepared) Machine() *machine.Machine { return p.machine }

// Key returns the artifact's cache identity.
func (p *Prepared) Key() PrepKey { return p.key }

// AcquireArena draws an Exec scratch arena from the artifact's pool — warm
// when a previous Exec against this artifact returned one, fresh otherwise.
// Pair with ReleaseArena when the Exec no longer touches arena buffers.
func (p *Prepared) AcquireArena() *execbuf.Arena { return p.arenas.Get() }

// ReleaseArena returns an arena to the artifact's pool for the next Exec.
func (p *Prepared) ReleaseArena(a *execbuf.Arena) { p.arenas.Put(a) }

// ArenaStats reports the artifact's arena-pool traffic: Created counts cold
// arenas (peak Exec concurrency), Reused counts warm acquisitions.
func (p *Prepared) ArenaStats() execbuf.PoolStats { return p.arenas.Stats() }

// Partition returns the partition-centric payload, or nil for a vertex
// artifact.
func (p *Prepared) Partition() *PartArtifact { return p.part }

// Vertex returns the vertex-centric payload, or nil for a partition
// artifact.
func (p *Prepared) Vertex() *VertexArtifact { return p.vert }

// CheckExec validates that the artifact can back an Exec for the named
// engine with the given kind. Shared by all engine Exec implementations.
func (p *Prepared) CheckExec(engine string, kind PrepKind) error {
	if p == nil {
		return fmt.Errorf("%s: Exec needs a non-nil Prepared artifact", engine)
	}
	if p.engine != engine {
		return fmt.Errorf("%s: artifact was prepared by %s", engine, p.engine)
	}
	if p.key.Kind != kind || (kind == PrepPartition && p.part == nil) || (kind == PrepVertex && p.vert == nil) {
		return fmt.Errorf("%s: artifact carries no payload of the required kind", engine)
	}
	return nil
}

// MakePrepared assembles a Prepared artifact for an engine's Prepare
// implementation: it stamps the graph fingerprint into key, builds (or
// fetches from o.PrepCache) the payload under the prep phase timer, and
// records cache traffic on the collector. ensure, when non-nil, runs after
// the payload is available even on a cache hit — vertex engines use it to
// guarantee this graph pointer's CSC exists when the payload was built from
// a content-identical but distinct Graph.
func MakePrepared(engine string, g *graph.Graph, m *machine.Machine, o Options, key PrepKey, build func() (any, error), ensure func()) (*Prepared, error) {
	rec := o.Obs
	stop := rec.C().Phase(PhasePrep)
	start := time.Now()
	fpStart := time.Now()
	stopFP := rec.C().Phase(PhasePrepFingerprint)
	key.GraphFP = g.FingerprintWorkers(o.PrepParallelism)
	stopFP()
	ObservePrepStage(PhasePrepFingerprint, time.Since(fpStart).Seconds())
	payload, buildSeconds, fromCache, err := o.PrepCache.getOrBuild(key, build)
	if err != nil {
		stop()
		return nil, err
	}
	if ensure != nil {
		ensure()
	}
	stop()
	if o.PrepCache != nil {
		if fromCache {
			rec.C().Add("prep.cache.hits", 1)
		} else {
			rec.C().Add("prep.cache.misses", 1)
		}
	}
	p := &Prepared{
		engine: engine, key: key, g: g, machine: m,
		BuildSeconds: buildSeconds,
		FromCache:    fromCache,
	}
	switch a := payload.(type) {
	case *PartArtifact:
		p.part = a
	case *VertexArtifact:
		p.vert = a
	default:
		return nil, fmt.Errorf("%s: unknown prep payload %T", engine, payload)
	}
	p.PrepSeconds = time.Since(start).Seconds()
	return p, nil
}

// advanceFallbackFactor bounds the patch path: a touched partition whose
// edge count more than doubled (plus a small absolute slack for tiny
// partitions) has effectively been rewritten, so splicing buys nothing over
// rebuilding — Advance falls back to a cold parallel build. The rule is
// relative to each partition's own previous size, so power-law hub
// partitions never trip it on proportionate growth.
const (
	advanceFallbackFactor = 2
	advanceFallbackSlack  = 64
)

// Advance derives the artifact for the next graph version from this one by
// patching only what the mutation batch touched: the 1/outdeg entries of
// the mutated sources, the touched partitions' edge counts and layout rows
// (partition.Advance + layout.Patch — proven bit-identical to a cold
// build), and nothing else. The warm arena pool moves to the new artifact,
// so a dynamic replay keeps recycling one set of Exec buffers across
// versions. When a touched partition grew past the fallback budget the
// whole prep is rebuilt cold (Incremental stays false); either way the
// result is bit-identical to Prepare on d.Next, with PrepSeconds the cost
// of this call and BuildSeconds carried over as the honest cold baseline.
//
// The receiver must be the artifact of d.Prev. The new key's GraphFP is
// d.Fingerprint — the versioned chain fingerprint — so PrepCache entries of
// distinct versions never collide.
func (p *Prepared) Advance(d *graph.Delta, o Options) (*Prepared, error) {
	if p == nil {
		return nil, fmt.Errorf("engines: Advance on a nil Prepared artifact")
	}
	if d == nil || d.Prev == nil || d.Next == nil {
		return nil, fmt.Errorf("%s: Advance needs a complete graph delta", p.engine)
	}
	if d.Prev != p.g && d.Prev.Fingerprint() != p.key.GraphFP {
		return nil, fmt.Errorf("%s: delta starts at version %d whose graph does not match this artifact", p.engine, d.PrevVersion)
	}
	start := time.Now()
	np := &Prepared{
		engine: p.engine, key: p.key, g: d.Next, machine: p.machine,
		BuildSeconds: p.BuildSeconds,
	}
	np.key.GraphFP = d.Fingerprint
	switch p.key.Kind {
	case PrepVertex:
		d.Next.BuildInWorkers(o.PrepParallelism)
		np.vert = &VertexArtifact{Inv: patchInv(p.vert.Inv, d)}
		np.Incremental = true
	case PrepPartition:
		hier := p.part.Hier
		touched := touchedPartitionsOf(d, hier)
		off := d.Next.OutOffsets()
		incremental := true
		for _, pid := range touched {
			part := hier.Partitions[pid]
			newEdges := off[part.VertexEnd] - off[part.VertexStart]
			if newEdges > advanceFallbackFactor*part.EdgeCount+advanceFallbackSlack {
				incremental = false
				break
			}
		}
		var (
			nh  *partition.Hierarchy
			nl  *layout.Layout
			err error
		)
		if incremental {
			nh, err = partition.Advance(hier, d.Next, touched)
			if err == nil {
				nl, err = layout.Patch(p.part.Lay, d.Next, nh, touched)
			}
		} else {
			nh, err = partition.BuildWorkers(d.Next, hier.Config, o.PrepParallelism)
			if err == nil {
				nl, err = layout.BuildWorkers(d.Next, nh, p.part.Lay.Compressed, o.PrepParallelism)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("%s: advance: %w", p.engine, err)
		}
		np.part = &PartArtifact{Hier: nh, Lay: nl, Inv: patchInv(p.part.Inv, d)}
		np.Incremental = incremental
	default:
		return nil, fmt.Errorf("%s: artifact carries no payload to advance", p.engine)
	}
	p.arenas.MoveTo(&np.arenas)
	np.PrepSeconds = time.Since(start).Seconds()
	return np, nil
}

// patchInv clones the 1/outdeg array and recomputes only the mutated
// sources' entries, matching InvOutDegrees on the new graph bit for bit
// (same 1/float64 rounding).
func patchInv(old []float32, d *graph.Delta) []float32 {
	inv := append([]float32(nil), old...)
	for _, v := range d.Touched {
		if deg := d.Next.OutDegree(v); deg > 0 {
			inv[v] = float32(1.0 / float64(deg))
		} else {
			inv[v] = 0
		}
	}
	return inv
}

// touchedPartitionsOf maps the delta's mutated sources to the sorted list
// of source-partition IDs whose layout rows must be recomputed. d.Touched
// is sorted and partitions are contiguous vertex ranges, so the mapped IDs
// arrive in order.
func touchedPartitionsOf(d *graph.Delta, h *partition.Hierarchy) []int {
	out := make([]int, 0, len(d.Touched))
	last := -1
	for _, v := range d.Touched {
		p := h.PartitionOfVertex(v)
		if p != last {
			out = append(out, p)
			last = p
		}
	}
	return out
}

// GraphFingerprint returns a content hash of g's CSR arrays. It is a thin
// wrapper over (*graph.Graph).Fingerprint, which memoizes the value on the
// graph itself — no package-level registry pins fingerprinted graphs in
// memory anymore. Two graphs with identical topology share prep-cache
// entries.
func GraphFingerprint(g *graph.Graph) uint64 { return g.Fingerprint() }
