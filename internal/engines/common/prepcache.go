package common

import (
	"container/list"
	"sync"
	"time"
)

// DefaultPrepCacheCapacity is the entry bound used when NewPrepCache is
// given a non-positive capacity.
const DefaultPrepCacheCapacity = 16

// PrepStats counts PrepCache traffic. Misses equals the number of artifact
// builds: every Prepare either reuses an entry (or joins a build already in
// flight) — a hit — or triggers exactly one build — a miss.
type PrepStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// PrepCache is a small content-keyed LRU cache of preprocessing artifacts,
// shared by all engines: entries are keyed by graph fingerprint plus the
// prep-relevant options (PrepKey), so a Fig. 6 thread sweep builds each
// (graph, partition-size) artifact once, and v-PR and Polymer share one
// vertex artifact per graph. Concurrent Prepare calls for the same key are
// coalesced into a single build. Safe for concurrent use; a nil *PrepCache
// is valid and disables reuse.
type PrepCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List                // of *prepEntry; front = most recent
	entries  map[PrepKey]*list.Element // resident artifacts
	inflight map[PrepKey]*prepInflight // builds in progress
	stats    PrepStats
}

type prepEntry struct {
	key          PrepKey
	payload      any // *PartArtifact or *VertexArtifact
	buildSeconds float64
}

type prepInflight struct {
	done chan struct{}
	e    *prepEntry
	err  error
}

// NewPrepCache returns a cache bounded to capacity artifacts
// (DefaultPrepCacheCapacity if capacity <= 0), evicting least-recently-used
// entries.
func NewPrepCache(capacity int) *PrepCache {
	if capacity <= 0 {
		capacity = DefaultPrepCacheCapacity
	}
	return &PrepCache{
		capacity: capacity,
		order:    list.New(),
		entries:  map[PrepKey]*list.Element{},
		inflight: map[PrepKey]*prepInflight{},
	}
}

// Stats returns a snapshot of the cache counters. Nil-safe.
func (c *PrepCache) Stats() PrepStats {
	if c == nil {
		return PrepStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of resident artifacts. Nil-safe.
func (c *PrepCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// getOrBuild returns the payload for key, building it at most once per
// concurrent wave of callers. It reports the payload's cold build cost and
// whether this caller was served without building. A nil receiver builds
// directly.
func (c *PrepCache) getOrBuild(key PrepKey, build func() (any, error)) (payload any, buildSeconds float64, fromCache bool, err error) {
	if c == nil {
		start := time.Now()
		payload, err = build()
		return payload, time.Since(start).Seconds(), false, err
	}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		e := el.Value.(*prepEntry)
		c.mu.Unlock()
		return e.payload, e.buildSeconds, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, 0, false, fl.err
		}
		c.mu.Lock()
		c.stats.Hits++
		c.mu.Unlock()
		return fl.e.payload, fl.e.buildSeconds, true, nil
	}
	fl := &prepInflight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.stats.Misses++
	c.mu.Unlock()

	start := time.Now()
	payload, err = build()
	e := &prepEntry{key: key, payload: payload, buildSeconds: time.Since(start).Seconds()}

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.entries[key] = c.order.PushFront(e)
		for c.order.Len() > c.capacity {
			old := c.order.Back()
			c.order.Remove(old)
			delete(c.entries, old.Value.(*prepEntry).key)
			c.stats.Evictions++
		}
	}
	c.mu.Unlock()

	fl.e, fl.err = e, err
	close(fl.done)
	if err != nil {
		return nil, 0, false, err
	}
	return payload, e.buildSeconds, false, nil
}
