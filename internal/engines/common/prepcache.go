package common

import (
	"container/list"
	"sync"
	"time"

	"hipa/internal/obs"
)

// DefaultPrepCacheCapacity is the entry bound used when NewPrepCache is
// given a non-positive capacity.
const DefaultPrepCacheCapacity = 16

// PrepStats counts PrepCache traffic. Misses equals the number of artifact
// builds: every Prepare either reuses an entry (or joins a build already in
// flight) — a hit — or triggers exactly one build — a miss. Coalesced is
// the subset of hits that joined an in-flight build instead of finding a
// resident entry (the singleflight savings).
type PrepStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Coalesced int64
}

// PrepCache is a small content-keyed LRU cache of preprocessing artifacts,
// shared by all engines: entries are keyed by graph fingerprint plus the
// prep-relevant options (PrepKey), so a Fig. 6 thread sweep builds each
// (graph, partition-size) artifact once, and v-PR and Polymer share one
// vertex artifact per graph. Concurrent Prepare calls for the same key are
// coalesced into a single build. Safe for concurrent use; a nil *PrepCache
// is valid and disables reuse.
type PrepCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List                // of *prepEntry; front = most recent
	entries  map[PrepKey]*list.Element // resident artifacts
	inflight map[PrepKey]*prepInflight // builds in progress
	stats    PrepStats
	metrics  *prepCacheMetrics // registry counters; nil until Instrument
}

// prepCacheMetrics are the cache's process-wide registry handles.
type prepCacheMetrics struct {
	hits, misses, evictions, coalesced *obs.Counter
}

// Registry metric families exported by an instrumented PrepCache.
const (
	MetricPrepCacheHits      = "hipa_prep_cache_hits_total"
	MetricPrepCacheMisses    = "hipa_prep_cache_misses_total"
	MetricPrepCacheEvictions = "hipa_prep_cache_evictions_total"
	MetricPrepCacheCoalesced = "hipa_prep_cache_coalesced_total"
)

// Instrument mirrors the cache's traffic counters into reg (obs.Default()
// when nil) from this call on; earlier traffic is not backfilled. Nil-safe.
func (c *PrepCache) Instrument(reg *obs.Registry) {
	if c == nil {
		return
	}
	if reg == nil {
		reg = obs.Default()
	}
	reg.SetHelp(MetricPrepCacheHits, "Prepare calls served from the preprocessing-artifact cache.")
	reg.SetHelp(MetricPrepCacheMisses, "Prepare calls that built a preprocessing artifact.")
	reg.SetHelp(MetricPrepCacheEvictions, "Preprocessing artifacts evicted by the LRU bound.")
	reg.SetHelp(MetricPrepCacheCoalesced, "Prepare calls coalesced onto an in-flight artifact build.")
	m := &prepCacheMetrics{
		hits:      reg.Counter(MetricPrepCacheHits),
		misses:    reg.Counter(MetricPrepCacheMisses),
		evictions: reg.Counter(MetricPrepCacheEvictions),
		coalesced: reg.Counter(MetricPrepCacheCoalesced),
	}
	c.mu.Lock()
	c.metrics = m
	c.mu.Unlock()
}

type prepEntry struct {
	key          PrepKey
	payload      any // *PartArtifact or *VertexArtifact
	buildSeconds float64
}

type prepInflight struct {
	done chan struct{}
	e    *prepEntry
	err  error
}

// NewPrepCache returns a cache bounded to capacity artifacts
// (DefaultPrepCacheCapacity if capacity <= 0), evicting least-recently-used
// entries.
func NewPrepCache(capacity int) *PrepCache {
	if capacity <= 0 {
		capacity = DefaultPrepCacheCapacity
	}
	return &PrepCache{
		capacity: capacity,
		order:    list.New(),
		entries:  map[PrepKey]*list.Element{},
		inflight: map[PrepKey]*prepInflight{},
	}
}

// Stats returns a snapshot of the cache counters. Nil-safe.
func (c *PrepCache) Stats() PrepStats {
	if c == nil {
		return PrepStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of resident artifacts. Nil-safe.
func (c *PrepCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// getOrBuild returns the payload for key, building it at most once per
// concurrent wave of callers. It reports the payload's cold build cost and
// whether this caller was served without building. A nil receiver builds
// directly.
func (c *PrepCache) getOrBuild(key PrepKey, build func() (any, error)) (payload any, buildSeconds float64, fromCache bool, err error) {
	if c == nil {
		start := time.Now()
		payload, err = build()
		return payload, time.Since(start).Seconds(), false, err
	}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		if m := c.metrics; m != nil {
			m.hits.Inc()
		}
		e := el.Value.(*prepEntry)
		c.mu.Unlock()
		return e.payload, e.buildSeconds, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, 0, false, fl.err
		}
		c.mu.Lock()
		c.stats.Hits++
		c.stats.Coalesced++
		if m := c.metrics; m != nil {
			m.hits.Inc()
			m.coalesced.Inc()
		}
		c.mu.Unlock()
		return fl.e.payload, fl.e.buildSeconds, true, nil
	}
	fl := &prepInflight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.stats.Misses++
	if m := c.metrics; m != nil {
		m.misses.Inc()
	}
	c.mu.Unlock()

	start := time.Now()
	payload, err = build()
	e := &prepEntry{key: key, payload: payload, buildSeconds: time.Since(start).Seconds()}

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.entries[key] = c.order.PushFront(e)
		for c.order.Len() > c.capacity {
			old := c.order.Back()
			c.order.Remove(old)
			delete(c.entries, old.Value.(*prepEntry).key)
			c.stats.Evictions++
			if m := c.metrics; m != nil {
				m.evictions.Inc()
			}
		}
	}
	c.mu.Unlock()

	fl.e, fl.err = e, err
	close(fl.done)
	if err != nil {
		return nil, 0, false, err
	}
	return payload, e.buildSeconds, false, nil
}
