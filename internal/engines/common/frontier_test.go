package common

import (
	"testing"

	"hipa/internal/execbuf"
	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/partition"
)

func frontierTestState(t *testing.T, groupsPerNode int, arena *execbuf.Arena) (*graph.Graph, *partition.Hierarchy, *SGState) {
	t.Helper()
	g, err := gen.Uniform(800, 9000, 5)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := partition.Build(g, partition.Config{PartitionBytes: 256, BytesPerVertex: 4, NumNodes: 1, GroupsPerNode: groupsPerNode})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := layout.Build(g, hier, true)
	if err != nil {
		t.Fatal(err)
	}
	threads := len(hier.Groups)
	return g, hier, NewSGStateArena(g, hier, lay, InvOutDegrees(g), 0.85, threads, arena)
}

// TestConvergedPartitionNeverRescheduled is the core frontier contract: once
// a partition is retired, neither phase touches it again — its executed-
// iteration counter stays frozen while the rest of the graph keeps going.
func TestConvergedPartitionNeverRescheduled(t *testing.T) {
	_, hier, state := frontierTestState(t, 4, nil)
	threads := len(hier.Groups)
	f := NewPartitionFrontier(state, 1e-9, nil)
	P := hier.NumPartitions()
	if P < 2 {
		t.Fatalf("need at least 2 partitions, got %d", P)
	}

	// Retire partition `victim` by hand before any iteration: give every
	// other partition a large last-gather residual, then rebuild.
	victim := P / 2
	for p := 0; p < P; p++ {
		f.partRes[p] = 1
	}
	f.partRes[victim] = 0
	st, done := f.Rebuild(0)
	if done {
		t.Fatal("rebuild with one retired partition reported done")
	}
	if st.ActivePartitions != P-1 {
		t.Fatalf("active partitions after retiring one: got %d, want %d", st.ActivePartitions, P-1)
	}
	if !f.converged(victim) {
		t.Fatal("victim partition's converged bit is not set")
	}

	const iters = 6
	performed := RunSupersteps(SuperstepConfig{
		Threads:    threads,
		Iterations: iters,
		Frontier:   f,
	}, f.Kernels(hier.Groups))
	if performed != iters {
		t.Fatalf("performed %d iterations, want %d (tolerance tight enough to never converge)", performed, iters)
	}
	if got := f.PartIters()[victim]; got != 0 {
		t.Errorf("retired partition was scheduled %d times; a converged partition must never run again", got)
	}
	for p := 0; p < P; p++ {
		if p == victim {
			continue
		}
		if got := f.PartIters()[p]; got != iters {
			t.Errorf("active partition %d executed %d iterations, want %d", p, got, iters)
		}
	}
	rep := f.Report()
	if rep.IterationsExecuted != iters {
		t.Errorf("report iterations: got %d, want %d", rep.IterationsExecuted, iters)
	}
	if want := int64(iters) * int64(P-1); rep.ActivePartitionIterations != want {
		t.Errorf("active partition-iterations: got %d, want %d", rep.ActivePartitionIterations, want)
	}
	if want := int64(iters); rep.PartitionsSkipped != want {
		t.Errorf("partitions skipped: got %d, want %d", rep.PartitionsSkipped, want)
	}
}

// TestFrontierRetiresAndTerminates runs the frontier end to end with a
// realistic tolerance: partitions retire over time (monotonically shrinking
// active set), retired partitions never run again, and the loop terminates
// on an empty frontier before the iteration budget.
func TestFrontierRetiresAndTerminates(t *testing.T) {
	_, hier, state := frontierTestState(t, 4, nil)
	threads := len(hier.Groups)
	const tol = 1e-6
	f := NewPartitionFrontier(state, tol, nil)
	const budget = 500
	performed := RunSupersteps(SuperstepConfig{
		Threads:    threads,
		Iterations: budget,
		Tolerance:  tol,
		Frontier:   f,
	}, f.Kernels(hier.Groups))
	if performed >= budget {
		t.Fatalf("frontier never emptied within %d iterations", budget)
	}
	if st := f.Stats(); st.ActivePartitions != 0 || st.ActiveVertices != 0 {
		t.Errorf("final frontier not empty: %+v", st)
	}
	rep := f.Report()
	if rep.IterationsExecuted != performed {
		t.Errorf("report iterations %d != performed %d", rep.IterationsExecuted, performed)
	}
	// Every partition's executed count is bounded by the total and at least
	// one partition retired strictly early (skipped work happened).
	if rep.PartitionsSkipped <= 0 {
		t.Error("no partition-iterations were skipped; pruning never engaged")
	}
	for p, it := range f.PartIters() {
		if int(it) > performed {
			t.Errorf("partition %d executed %d > total %d iterations", p, it, performed)
		}
	}
	if frac := rep.ActiveFraction(); frac <= 0 || frac > 1 {
		t.Errorf("active fraction %v out of (0,1]", frac)
	}
}

// TestFrontierBitDeterministicAcrossThreadCounts pins the determinism claim
// of the early-convergence engine: the per-partition dangling fold is
// serial in partition order, so the same partitioning produces bit-identical
// ranks at any group/thread count.
func TestFrontierBitDeterministicAcrossThreadCounts(t *testing.T) {
	run := func(groupsPerNode int) []float32 {
		_, hier, state := frontierTestState(t, groupsPerNode, nil)
		threads := len(hier.Groups)
		f := NewPartitionFrontier(state, 1e-6, nil)
		RunSupersteps(SuperstepConfig{
			Threads:    threads,
			Iterations: 200,
			Tolerance:  1e-6,
			Frontier:   f,
		}, f.Kernels(hier.Groups))
		out := make([]float32, len(state.Ranks))
		copy(out, state.Ranks)
		return out
	}
	a, b := run(1), run(4)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("rank[%d] differs across thread counts: %v vs %v", v, a[v], b[v])
		}
	}
}

// TestFrontierLoopIsAllocationFree extends the driver's zero-allocation
// guarantee to the frontier path: phases with converged-bit checks, the
// per-partition folds, and the serial Rebuild all run without allocating.
func TestFrontierLoopIsAllocationFree(t *testing.T) {
	_, hier, state := frontierTestState(t, 4, nil)
	threads := len(hier.Groups)
	// Unreachable tolerance: the frontier machinery runs every iteration
	// (counters, folds, rebuild scan) but never empties.
	f := NewPartitionFrontier(state, 1e-30, nil)
	loop := NewSuperstepLoop(SuperstepConfig{
		Threads:    threads,
		Iterations: 1,
		Tolerance:  1e-30,
		Frontier:   f,
	}, f.Kernels(hier.Groups))
	defer loop.Close()
	loop.Run(1)
	if allocs := testing.AllocsPerRun(10, func() { loop.Run(1) }); allocs != 0 {
		t.Errorf("frontier loop.Run(1) allocated %g times; frontier maintenance must be allocation-free", allocs)
	}
}

// TestFrontierArenaReuse pins the arena contract for the frontier scratch:
// rebuilding same-shaped frontier state on a warm arena grows nothing.
func TestFrontierArenaReuse(t *testing.T) {
	arena := &execbuf.Arena{}
	_, hier, s1 := frontierTestState(t, 4, arena)
	f1 := NewPartitionFrontier(s1, 1e-6, arena)
	grows, foot := arena.Grows(), arena.Footprint()
	RunSupersteps(SuperstepConfig{Threads: len(hier.Groups), Iterations: 50, Tolerance: 1e-6, Frontier: f1}, f1.Kernels(hier.Groups))
	_, hier2, s2 := frontierTestState(t, 4, arena)
	f2 := NewPartitionFrontier(s2, 1e-6, arena)
	if g2 := arena.Grows(); g2 != grows {
		t.Errorf("warm frontier reconstruction grew the arena: %d -> %d", grows, g2)
	}
	if ft := arena.Footprint(); ft != foot {
		t.Errorf("footprint changed on warm reconstruction: %d -> %d bytes", foot, ft)
	}
	RunSupersteps(SuperstepConfig{Threads: len(hier2.Groups), Iterations: 50, Tolerance: 1e-6, Frontier: f2}, f2.Kernels(hier2.Groups))
	if g3 := arena.Grows(); g3 != grows {
		t.Errorf("frontier execution grew the arena: %d -> %d", grows, g3)
	}
}
