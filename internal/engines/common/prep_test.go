package common

import (
	"errors"
	"sync"
	"testing"

	"hipa/internal/gen"
	"hipa/internal/obs"
)

func TestSchedSeedSentinel(t *testing.T) {
	// 0 is documented as "use the paper's default seed", so runs that never
	// set SchedSeed are reproducible — and identical to runs that set the
	// default explicitly.
	o := Options{}.WithDefaults(4)
	if o.SchedSeed != 0xC0FFEE {
		t.Errorf("zero SchedSeed defaulted to %#x, want 0xC0FFEE", o.SchedSeed)
	}
	o = Options{SchedSeed: 42}.WithDefaults(4)
	if o.SchedSeed != 42 {
		t.Errorf("explicit SchedSeed rewritten to %d, want 42", o.SchedSeed)
	}
	o = Options{SchedSeed: 0xC0FFEE}.WithDefaults(4)
	if o.SchedSeed != 0xC0FFEE {
		t.Errorf("explicit default seed rewritten to %#x", o.SchedSeed)
	}
}

func TestGraphFingerprint(t *testing.T) {
	g1, err := gen.Uniform(500, 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gen.Uniform(500, 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := gen.Uniform(500, 4000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if GraphFingerprint(g1) != GraphFingerprint(g1) {
		t.Error("fingerprint not stable for one graph")
	}
	if GraphFingerprint(g1) != GraphFingerprint(g2) {
		t.Error("content-identical graphs fingerprint differently")
	}
	if GraphFingerprint(g1) == GraphFingerprint(g3) {
		t.Error("different graphs share a fingerprint")
	}
}

func TestPrepCacheLRUAndStats(t *testing.T) {
	c := NewPrepCache(2)
	// Mirror traffic into a private registry so the assertions also cover
	// the /metrics wiring (Instrument) without touching the process default.
	reg := obs.NewRegistry()
	c.Instrument(reg)
	key := func(pb int) PrepKey { return PrepKey{Kind: PrepPartition, PartitionBytes: pb} }
	builds := 0
	build := func() (any, error) { builds++; return &PartArtifact{}, nil }

	for _, pb := range []int{1, 2, 1, 2} { // two builds, then two hits
		if _, _, _, err := c.getOrBuild(key(pb), build); err != nil {
			t.Fatal(err)
		}
	}
	if builds != 2 {
		t.Fatalf("builds = %d, want 2", builds)
	}
	// Insert a third key: capacity 2 evicts the least recently used, key 1
	// (the access order was 1, 2, 1, 2, leaving key 1 older).
	if _, _, _, err := c.getOrBuild(key(3), build); err != nil {
		t.Fatal(err)
	}
	if _, _, fromCache, err := c.getOrBuild(key(2), build); err != nil || !fromCache {
		t.Errorf("recently used key evicted (fromCache=%v, err=%v)", fromCache, err)
	}
	if _, _, fromCache, err := c.getOrBuild(key(1), build); err != nil || fromCache {
		t.Errorf("LRU key survived eviction (fromCache=%v, err=%v)", fromCache, err)
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	if s.Misses != int64(builds) {
		t.Errorf("Misses = %d but %d builds ran", s.Misses, builds)
	}
	if c.Len() > 2 {
		t.Errorf("cache holds %d entries, capacity 2", c.Len())
	}
	// The registry mirror agrees with the native stats, counter for counter.
	if hits := reg.Counter(MetricPrepCacheHits).Value(); hits != s.Hits {
		t.Errorf("registry hits = %d, stats say %d", hits, s.Hits)
	}
	if misses := reg.Counter(MetricPrepCacheMisses).Value(); misses != s.Misses {
		t.Errorf("registry misses = %d, stats say %d", misses, s.Misses)
	}
	if ev := reg.Counter(MetricPrepCacheEvictions).Value(); ev != s.Evictions {
		t.Errorf("registry evictions = %d, stats say %d", ev, s.Evictions)
	}
	if co := reg.Counter(MetricPrepCacheCoalesced).Value(); co != 0 || s.Coalesced != 0 {
		t.Errorf("serial traffic coalesced %d/%d builds, want 0", co, s.Coalesced)
	}
}

func TestPrepCacheBuildErrorNotCached(t *testing.T) {
	c := NewPrepCache(4)
	boom := errors.New("boom")
	calls := 0
	failing := func() (any, error) { calls++; return nil, boom }
	k := PrepKey{Kind: PrepVertex}
	if _, _, _, err := c.getOrBuild(k, failing); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not poison the key: a later build succeeds.
	if _, _, fromCache, err := c.getOrBuild(k, func() (any, error) { return &VertexArtifact{}, nil }); err != nil || fromCache {
		t.Fatalf("retry after failed build: fromCache=%v err=%v", fromCache, err)
	}
	if calls != 1 {
		t.Fatalf("failing builder ran %d times, want 1", calls)
	}
}

func TestPrepCacheSingleflight(t *testing.T) {
	c := NewPrepCache(4)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	var mu sync.Mutex
	builds := 0
	gate := make(chan struct{})
	build := func() (any, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		<-gate
		return &PartArtifact{}, nil
	}
	k := PrepKey{Kind: PrepPartition, PartitionBytes: 64}
	const workers = 8
	var wg sync.WaitGroup
	started := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			if _, _, _, err := c.getOrBuild(k, build); err != nil {
				t.Error(err)
			}
		}()
	}
	for i := 0; i < workers; i++ {
		<-started
	}
	close(gate)
	wg.Wait()
	if builds != 1 {
		t.Errorf("concurrent getOrBuild ran %d builds, want 1 (singleflight)", builds)
	}
	// Every non-builder was served without building — a hit, whether it
	// joined the in-flight build or (rarely, if scheduled late) found the
	// resident entry. The registry mirror must agree exactly.
	s := c.Stats()
	if s.Hits != workers-1 || s.Misses != 1 {
		t.Errorf("stats hits/misses = %d/%d, want %d/1", s.Hits, s.Misses, workers-1)
	}
	if hits := reg.Counter(MetricPrepCacheHits).Value(); hits != s.Hits {
		t.Errorf("registry hits = %d, stats say %d", hits, s.Hits)
	}
	if co := reg.Counter(MetricPrepCacheCoalesced).Value(); co != s.Coalesced {
		t.Errorf("registry coalesced = %d, stats say %d", co, s.Coalesced)
	}
}

// TestPrepCacheCoalescedAccounting pins the coalesced counter exactly: the
// in-flight entry is planted by hand (same package), so every waiter must
// take the join path — no scheduling luck involved, unlike the racing
// singleflight test above.
func TestPrepCacheCoalescedAccounting(t *testing.T) {
	c := NewPrepCache(4)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	k := PrepKey{Kind: PrepPartition, PartitionBytes: 128}
	want := &PartArtifact{}
	fl := &prepInflight{done: make(chan struct{}), e: &prepEntry{key: k, payload: want}}
	c.mu.Lock()
	c.inflight[k] = fl
	c.mu.Unlock()

	const waiters = 7
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload, _, fromCache, err := c.getOrBuild(k, func() (any, error) {
				t.Error("waiter built despite an in-flight entry")
				return nil, nil
			})
			if err != nil || !fromCache || payload != want {
				t.Errorf("join returned payload=%v fromCache=%v err=%v", payload, fromCache, err)
			}
		}()
	}
	close(fl.done) // the "build" completes; all waiters join it
	wg.Wait()

	s := c.Stats()
	if s.Coalesced != waiters || s.Hits != waiters {
		t.Errorf("stats = %+v, want %d coalesced hits", s, waiters)
	}
	if co := reg.Counter(MetricPrepCacheCoalesced).Value(); co != waiters {
		t.Errorf("registry coalesced = %d, want %d", co, waiters)
	}
}

func TestNilPrepCacheBuildsDirectly(t *testing.T) {
	var c *PrepCache
	builds := 0
	build := func() (any, error) { builds++; return &PartArtifact{}, nil }
	for i := 0; i < 3; i++ {
		_, _, fromCache, err := c.getOrBuild(PrepKey{}, build)
		if err != nil || fromCache {
			t.Fatalf("nil cache: fromCache=%v err=%v", fromCache, err)
		}
	}
	if builds != 3 {
		t.Errorf("nil cache ran %d builds, want 3 (no caching)", builds)
	}
	if s := c.Stats(); s != (PrepStats{}) {
		t.Errorf("nil cache stats = %+v, want zero", s)
	}
	if c.Len() != 0 {
		t.Errorf("nil cache Len = %d", c.Len())
	}
}
