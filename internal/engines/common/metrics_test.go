package common

import (
	"testing"

	"hipa/internal/obs"
	"hipa/internal/perfmodel"
)

// TestSuperstepLoopRecordsRegistryMetrics pins the tentpole wiring: a
// SuperstepConfig with an Engine name must land superstep/phase/residual
// distributions and the iteration counter in the process-wide registry,
// while an anonymous config records nothing.
func TestSuperstepLoopRecordsRegistryMetrics(t *testing.T) {
	// Engine names are process-global registry labels; a test-unique name
	// keeps this independent of any other test that runs engines.
	const name = "test-wiring"
	const iters = 3
	kernels := PhaseKernels{
		Scatter:      func(int) {},
		Reduce:       func() {},
		Gather:       func(int) {},
		Residual:     func() float64 { return 0.5 },
		DanglingMass: func() float64 { return 0 },
	}
	if performed := RunSupersteps(SuperstepConfig{
		Engine:     name,
		Threads:    4,
		Iterations: iters,
	}, kernels); performed != iters {
		t.Fatalf("performed = %d, want %d", performed, iters)
	}

	reg := obs.Default()
	if got := reg.Histogram(MetricSuperstepSeconds, "engine", name).Count(); got != iters {
		t.Errorf("superstep histogram count = %d, want %d", got, iters)
	}
	for _, phase := range []string{SpanScatter, SpanGather} {
		if got := reg.Histogram(MetricPhaseSeconds, "engine", name, "phase", phase).Count(); got != iters {
			t.Errorf("%s phase histogram count = %d, want %d", phase, got, iters)
		}
	}
	res := reg.Histogram(MetricResidual, "engine", name).Snapshot()
	if res.Count != iters || res.Min != 0.5 || res.Max != 0.5 {
		t.Errorf("residual histogram = count %d min %g max %g, want %d/0.5/0.5", res.Count, res.Min, res.Max, iters)
	}
	if got := reg.Counter(MetricIterationsTotal, "engine", name).Value(); got != iters {
		t.Errorf("iterations counter = %d, want %d", got, iters)
	}

	// The anonymous form stays out of the registry entirely (and the loop
	// must not pay for handles it does not have).
	if metricsFor("") != nil {
		t.Error("metricsFor(\"\") != nil; anonymous loops must not record")
	}
}

func TestFinishRunAccumulatesBytesMoved(t *testing.T) {
	const name = "test-wiring-bytes"
	res := &Result{
		Engine: name,
		Model:  &perfmodel.Report{LocalBytes: 1000, RemoteBytes: 250},
	}
	FinishRun(nil, res, nil, false)
	FinishRun(nil, res, nil, false)
	reg := obs.Default()
	if got := reg.Counter(MetricLocalBytesTotal, "engine", name).Value(); got != 2000 {
		t.Errorf("local bytes counter = %d, want 2000", got)
	}
	if got := reg.Counter(MetricRemoteBytesTotal, "engine", name).Value(); got != 500 {
		t.Errorf("remote bytes counter = %d, want 500", got)
	}
}

func TestObservePrepStage(t *testing.T) {
	ObservePrepStage("prep:teststage", 0.25)
	ObservePrepStage("prep:teststage", 0.75)
	snap := obs.Default().Histogram(MetricPrepStageSeconds, "stage", "teststage").Snapshot()
	if snap.Count != 2 || snap.Min != 0.25 || snap.Max != 0.75 {
		t.Errorf("prep stage histogram = count %d min %g max %g, want 2/0.25/0.75", snap.Count, snap.Min, snap.Max)
	}
}
