package common

import (
	"hipa/internal/execbuf"
	"hipa/internal/partition"
)

// FrontierReport summarises the pruning effectiveness of one frontier-aware
// Exec: how much of the iteration space actually executed. Attached to
// Result.Frontier by the active-set engines; nil for the dense five.
type FrontierReport struct {
	// TotalPartitions / TotalVertices describe the full graph.
	TotalPartitions int   `json:"total_partitions"`
	TotalVertices   int64 `json:"total_vertices"`
	// IterationsExecuted is the number of supersteps the driver ran.
	IterationsExecuted int `json:"iterations_executed"`
	// ActivePartitionIterations / ActiveVertexIterations are the summed
	// active-set sizes over all executed iterations (a dense engine would
	// accrue IterationsExecuted × Total each).
	ActivePartitionIterations int64 `json:"active_partition_iterations"`
	ActiveVertexIterations    int64 `json:"active_vertex_iterations"`
	// PartitionsSkipped is the partition-iterations pruned away:
	// IterationsExecuted × TotalPartitions − ActivePartitionIterations.
	PartitionsSkipped int64 `json:"partitions_skipped"`
}

// ActiveFraction is the executed share of the dense vertex-iteration space;
// 1.0 means no pruning happened.
func (r *FrontierReport) ActiveFraction() float64 {
	denom := int64(r.IterationsExecuted) * r.TotalVertices
	if denom == 0 {
		return 0
	}
	return float64(r.ActiveVertexIterations) / float64(denom)
}

// PartitionFrontier is the Frontier implementation of the early-convergence
// engine: HiPa's partition hierarchy reused as the pruning granularity. A
// partition whose gather-phase L∞ rank change drops below the tolerance is
// retired — its converged bit is set and it is dropped from the active work
// list, so neither phase touches it again. Freezing is numerically safe by
// construction: a skipped scatter leaves the partition's outgoing message
// bins frozen consistent with its frozen ranks, a skipped gather leaves its
// accumulator entries zero (intra-edges never cross partitions), and its
// per-partition dangling entry stays frozen at the mass of its frozen ranks.
//
// All scratch (bitmap, work list, per-partition residual/dangling/iteration
// arrays) lives in the execbuf arena, and Rebuild compacts the work list in
// place — frontier maintenance allocates nothing.
//
// The per-partition dangling masses are summed serially in partition order
// by the Reduce kernel, so the fold order is independent of the thread
// count: the engine is bit-deterministic for a given partitioning.
type PartitionFrontier struct {
	s   *SGState
	tol float64

	conv      []uint64 // converged bitmap, one bit per partition
	active    []int32  // active partition ids, first nActive entries valid
	nActive   int
	partRes   []float32 // per-partition L∞ of the last gather
	partDang  []float64 // per-partition dangling mass under current ranks
	partIters []int32   // executed iterations per partition

	totalVerts  int64
	activeVerts int64

	// Accumulated effectiveness counters, folded into Report.
	iterations      int
	activePartIters int64
	activeVertIters int64
	skipped         int64
}

// NewPartitionFrontier builds a dense initial frontier (every partition
// active) over the state's hierarchy, drawing all scratch from the arena.
// tol is the per-partition retirement threshold and must be positive for
// pruning to ever occur. The per-partition dangling masses are seeded
// serially from the initial ranks, establishing the Reduce invariant for
// iteration zero.
func NewPartitionFrontier(s *SGState, tol float64, arena *execbuf.Arena) *PartitionFrontier {
	if arena == nil {
		arena = &execbuf.Arena{}
	}
	P := s.Hier.NumPartitions()
	f := &PartitionFrontier{
		s:         s,
		tol:       tol,
		conv:      arena.Bitmap(P),
		active:    arena.WorkList(P),
		nActive:   P,
		partRes:   arena.PartResiduals(P),
		partDang:  arena.PartDangling(P),
		partIters: arena.PartIters(P),
	}
	for p := 0; p < P; p++ {
		f.active[p] = int32(p)
		part := s.Hier.Partitions[p]
		var local float64
		for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
			if s.Inv[v] == 0 {
				local += float64(s.Ranks[v])
			}
		}
		f.partDang[p] = local
	}
	f.totalVerts = int64(s.G.NumVertices())
	f.activeVerts = f.totalVerts
	return f
}

// converged reports partition p's bitmap bit.
func (f *PartitionFrontier) converged(p int) bool {
	return f.conv[p>>6]&(1<<(uint(p)&63)) != 0
}

// Stats implements Frontier.
func (f *PartitionFrontier) Stats() FrontierStats {
	return FrontierStats{
		ActivePartitions: f.nActive,
		TotalPartitions:  f.s.Hier.NumPartitions(),
		ActiveVertices:   f.activeVerts,
		TotalVertices:    f.totalVerts,
	}
}

// Rebuild implements Frontier: retire partitions whose last gather moved no
// rank by tol or more, compact the work list in place, and recount the
// active vertices. Runs serially between iterations; done when nothing is
// left to schedule.
func (f *PartitionFrontier) Rebuild(int) (FrontierStats, bool) {
	kept := 0
	var verts int64
	for i := 0; i < f.nActive; i++ {
		p := f.active[i]
		if float64(f.partRes[p]) < f.tol {
			f.conv[p>>6] |= 1 << (uint(p) & 63)
			continue
		}
		f.active[kept] = p
		kept++
		part := f.s.Hier.Partitions[p]
		verts += int64(part.VertexEnd - part.VertexStart)
	}
	f.nActive = kept
	f.activeVerts = verts
	return f.Stats(), kept == 0
}

// beginIteration accrues the effectiveness counters for the iteration about
// to run (the current active set executes it).
func (f *PartitionFrontier) beginIteration(int) {
	f.iterations++
	f.activePartIters += int64(f.nActive)
	f.activeVertIters += f.activeVerts
	f.skipped += int64(f.s.Hier.NumPartitions() - f.nActive)
}

// reduce folds the per-partition dangling masses — all of them, frozen
// entries included — in partition order into the redistribution term. The
// fold order never depends on the thread count or the active set, which is
// what makes the engine bit-deterministic.
func (f *PartitionFrontier) reduce() {
	s := f.s
	var sum float64
	for p := range f.partDang {
		sum += f.partDang[p]
	}
	s.lastDangling = sum
	n := s.G.NumVertices()
	if n > 0 {
		s.redis = float32(s.Damping * sum / float64(n))
	}
}

// residual returns the max per-partition L∞ over the active set, without
// resetting — Rebuild consumes the same array immediately afterwards.
func (f *PartitionFrontier) residual() float64 {
	var max float64
	for i := 0; i < f.nActive; i++ {
		if r := float64(f.partRes[f.active[i]]); r > max {
			max = r
		}
	}
	return max
}

func (f *PartitionFrontier) danglingMass() float64 { return f.s.lastDangling }

// gatherPartition is GatherPartition with the per-thread folds replaced by
// per-partition ones: the L∞ rank change lands in partRes[p], the dangling
// mass overwrites partDang[p], and the partition's executed-iteration count
// advances. The rank arithmetic is identical to the dense gather.
func (f *PartitionFrontier) gatherPartition(p int) {
	s := f.s
	lay := s.Lay
	acc := s.Acc
	for _, bi := range lay.DstBlocks[p] {
		b := lay.Blocks[bi]
		bins := s.Bins[b.MsgStart:b.MsgEnd:b.MsgEnd]
		msgOff := lay.MsgDstOff[b.MsgStart : b.MsgEnd+1 : b.MsgEnd+1]
		for i, val := range bins {
			lo, hi := msgOff[i], msgOff[i+1]
			dst := lay.MsgDst[lo:hi:hi]
			for _, d := range dst {
				acc[d] += val
			}
		}
	}

	part := s.Hier.Partitions[p]
	ranks := s.Ranks
	inv := s.Inv
	d := float32(s.Damping)
	base, redis := s.base, s.redis
	var res float64
	var dangling float64
	lo, hi := int(part.VertexStart), int(part.VertexEnd)
	v := lo
	for ; v+4 <= hi; v += 4 {
		old0, old1, old2, old3 := ranks[v], ranks[v+1], ranks[v+2], ranks[v+3]
		nv0 := base + d*acc[v] + redis
		nv1 := base + d*acc[v+1] + redis
		nv2 := base + d*acc[v+2] + redis
		nv3 := base + d*acc[v+3] + redis
		ranks[v], ranks[v+1], ranks[v+2], ranks[v+3] = nv0, nv1, nv2, nv3
		acc[v], acc[v+1], acc[v+2], acc[v+3] = 0, 0, 0, 0
		if inv[v] == 0 {
			dangling += float64(nv0)
		}
		if inv[v+1] == 0 {
			dangling += float64(nv1)
		}
		if inv[v+2] == 0 {
			dangling += float64(nv2)
		}
		if inv[v+3] == 0 {
			dangling += float64(nv3)
		}
		res = maxAbsDiff4(res, nv0, old0, nv1, old1, nv2, old2, nv3, old3)
	}
	for ; v < hi; v++ {
		old := ranks[v]
		nv := base + d*acc[v] + redis
		ranks[v] = nv
		acc[v] = 0
		if inv[v] == 0 {
			dangling += float64(nv)
		}
		diff := float64(nv - old)
		if diff < 0 {
			diff = -diff
		}
		if diff > res {
			res = diff
		}
	}
	f.partRes[p] = float32(res)
	f.partDang[p] = dangling
	f.partIters[p]++
}

// frontierPhase walks one thread's pinned partition group through a phase,
// skipping converged partitions; the pinned-execution analogue of
// groupPhase with the frontier consulted per partition.
type frontierPhase struct {
	f      *PartitionFrontier
	groups []partition.Group
	gather bool
}

func (g *frontierPhase) run(tid int) {
	f := g.f
	gr := g.groups[tid]
	for p := gr.PartStart; p < gr.PartEnd; p++ {
		if f.converged(p) {
			continue
		}
		if g.gather {
			f.gatherPartition(p)
		} else {
			f.s.ScatterPartition(p, tid)
		}
	}
}

// Kernels returns the frontier-aware pinned phase kernels: thread tid
// processes the non-converged partitions of its group every iteration. The
// per-thread partial arrays of SGState are unused — all folds are
// per-partition so pruning never perturbs a fold order.
func (f *PartitionFrontier) Kernels(groups []partition.Group) PhaseKernels {
	scatter := &frontierPhase{f: f, groups: groups}
	gather := &frontierPhase{f: f, groups: groups, gather: true}
	return PhaseKernels{
		StartIteration: f.beginIteration,
		Scatter:        scatter.run,
		Reduce:         f.reduce,
		Gather:         gather.run,
		Residual:       f.residual,
		DanglingMass:   f.danglingMass,
	}
}

// PartIters exposes the per-partition executed-iteration counters — the
// active-set input of the traffic model (platform.PartitionRun.PartIters).
func (f *PartitionFrontier) PartIters() []int32 { return f.partIters }

// Report summarises the run's pruning effectiveness.
func (f *PartitionFrontier) Report() *FrontierReport {
	P := f.s.Hier.NumPartitions()
	return &FrontierReport{
		TotalPartitions:           P,
		TotalVertices:             f.totalVerts,
		IterationsExecuted:        f.iterations,
		ActivePartitionIterations: f.activePartIters,
		ActiveVertexIterations:    f.activeVertIters,
		PartitionsSkipped:         f.skipped,
	}
}
