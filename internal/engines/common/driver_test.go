package common

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestGoParallelismDefaultsToGOMAXPROCS: the documented default —
// min(Threads, GOMAXPROCS) — must hold regardless of how the process is
// capped (regression: the FCFS path used to ignore the option entirely, so
// nothing pinned the resolved value).
func TestGoParallelismDefaultsToGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	o := Options{}.WithDefaults(40)
	if o.GoParallelism != 2 {
		t.Fatalf("GoParallelism = %d, want 2 (GOMAXPROCS) for 40 simulated threads", o.GoParallelism)
	}
	o = Options{Threads: 1}.WithDefaults(40)
	if o.GoParallelism != 1 {
		t.Fatalf("GoParallelism = %d, want 1 (Threads < GOMAXPROCS)", o.GoParallelism)
	}
	o = Options{GoParallelism: 7}.WithDefaults(40)
	if o.GoParallelism != 7 {
		t.Fatalf("explicit GoParallelism rewritten to %d, want 7", o.GoParallelism)
	}
}

// concurrencyProbe runs fn under RunThreadsCapped and reports the peak
// number of simultaneously live calls and which tids ran.
func concurrencyProbe(threads, parallelism int) (peak int64, ran []bool) {
	var cur, hi atomic.Int64
	seen := make([]atomic.Bool, threads)
	RunThreadsCapped(threads, parallelism, func(tid int) {
		c := cur.Add(1)
		for {
			p := hi.Load()
			if c <= p || hi.CompareAndSwap(p, c) {
				break
			}
		}
		seen[tid].Store(true)
		runtime.Gosched()
		cur.Add(-1)
	})
	ran = make([]bool, threads)
	for i := range seen {
		ran[i] = seen[i].Load()
	}
	return hi.Load(), ran
}

func TestRunThreadsCappedHighWaterMark(t *testing.T) {
	const threads = 32
	for _, par := range []int{1, 2, 4} {
		peak, ran := concurrencyProbe(threads, par)
		if peak > int64(par) {
			t.Errorf("parallelism %d: observed %d concurrent bodies", par, peak)
		}
		for tid, ok := range ran {
			if !ok {
				t.Errorf("parallelism %d: tid %d never ran", par, tid)
			}
		}
	}
	// Degenerate cases fall through to plain RunThreads: every tid still runs.
	for _, par := range []int{0, -1, threads, threads + 5} {
		_, ran := concurrencyProbe(threads, par)
		for tid, ok := range ran {
			if !ok {
				t.Errorf("parallelism %d: tid %d never ran", par, tid)
			}
		}
	}
}

// TestRunSuperstepsHonorsParallelism: the driver must thread the cap into
// every parallel phase — this is the fix for GoParallelism being silently
// dropped on the FCFS path.
func TestRunSuperstepsHonorsParallelism(t *testing.T) {
	const threads, par = 16, 2
	var cur, hi atomic.Int64
	probe := func(int) {
		c := cur.Add(1)
		for {
			p := hi.Load()
			if c <= p || hi.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
	}
	performed := RunSupersteps(SuperstepConfig{
		Threads:     threads,
		Parallelism: par,
		Iterations:  3,
	}, PhaseKernels{Scatter: probe, Reduce: func() {}, Gather: probe})
	if performed != 3 {
		t.Fatalf("performed = %d, want 3", performed)
	}
	if hi.Load() > par {
		t.Errorf("observed %d concurrent kernel bodies, cap is %d", hi.Load(), par)
	}
}
