package common

import (
	"sync"
	"sync/atomic"

	"hipa/internal/graph"
	"hipa/internal/par"
)

// InitRanks returns the uniform initial rank vector 1/|V|.
func InitRanks(n int) []float32 {
	r := make([]float32, n)
	FillInitRanks(r)
	return r
}

// FillInitRanks writes the uniform 1/n starting distribution into r,
// allocation-free for arena-backed buffers.
func FillInitRanks(r []float32) {
	if len(r) == 0 {
		return
	}
	v := float32(1.0 / float64(len(r)))
	for i := range r {
		r[i] = v
	}
}

// InvOutDegrees returns 1/outdeg(v) as float32, with 0 for dangling
// vertices; engines multiply instead of dividing on the hot path.
func InvOutDegrees(g *graph.Graph) []float32 {
	return InvOutDegreesWorkers(g, -1)
}

// InvOutDegreesWorkers is InvOutDegrees with an explicit worker count
// (positive = that many workers, 0 = all cores, negative = serial). Each
// entry depends only on its own vertex, so the output is identical at any
// setting.
func InvOutDegreesWorkers(g *graph.Graph, workers int) []float32 {
	n := g.NumVertices()
	inv := make([]float32, n)
	par.Blocks(par.Fit(par.Workers(workers), int64(n)), n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if d := g.OutDegree(graph.VertexID(v)); d > 0 {
				inv[v] = float32(1.0 / float64(d))
			}
		}
	})
	return inv
}

// DanglingSum returns the summed rank of vertices in [lo,hi) with zero
// out-degree; used for per-thread partial reductions.
func DanglingSum(ranks []float32, inv []float32, lo, hi int) float64 {
	var s float64
	for v := lo; v < hi; v++ {
		if inv[v] == 0 {
			s += float64(ranks[v])
		}
	}
	return s
}

// ReferencePageRank is a sequential float64 implementation used as the
// ground truth for all engines. It follows the identical formulation:
// rank'(v) = (1-d)/n + d(Σ_{u→v} rank(u)/outdeg(u) + S/n).
func ReferencePageRank(g *graph.Graph, iterations int, damping float64) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return rank
	}
	for v := range rank {
		rank[v] = 1.0 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iterations; it++ {
		var dangling float64
		for v := 0; v < n; v++ {
			next[v] = 0
			if g.OutDegree(graph.VertexID(v)) == 0 {
				dangling += rank[v]
			}
		}
		for v := 0; v < n; v++ {
			if d := g.OutDegree(graph.VertexID(v)); d > 0 {
				contrib := rank[v] / float64(d)
				for _, dst := range g.OutNeighbors(graph.VertexID(v)) {
					next[dst] += contrib
				}
			}
		}
		redis := dangling / float64(n)
		for v := 0; v < n; v++ {
			next[v] = base + damping*(next[v]+redis)
		}
		rank, next = next, rank
	}
	return rank
}

// RunThreads runs fn(tid) for tid in [0,threads), one goroutine per tid;
// the Go runtime multiplexes them onto GOMAXPROCS cores.
func RunThreads(threads int, fn func(tid int)) {
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer wg.Done()
			fn(tid)
		}(t)
	}
	wg.Wait()
}

// RunThreadsCapped runs fn(tid) for tid in [0,threads) on at most
// `parallelism` concurrent goroutines (Options.GoParallelism): workers claim
// tids from a shared counter, so every tid runs exactly once regardless of
// the cap. parallelism <= 0 or >= threads degenerates to RunThreads. The
// tid-to-goroutine mapping is not deterministic, but every engine's
// per-tid state is disjoint, so results do not depend on it.
func RunThreadsCapped(threads, parallelism int, fn func(tid int)) {
	if parallelism <= 0 || parallelism >= threads {
		RunThreads(threads, fn)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for {
				tid := int(next.Add(1)) - 1
				if tid >= threads {
					return
				}
				fn(tid)
			}
		}()
	}
	wg.Wait()
}

// SplitByWeight cuts [0,n) into `parts` contiguous ranges with approximately
// equal total weight, where weight(i) is given by the prefix-sum array
// prefix (len n+1, prefix[0]=0). Returns part boundaries of length parts+1.
// Used for edge-balanced vertex chunking in the vertex-centric engines.
func SplitByWeight(prefix []int64, parts int) []int {
	n := len(prefix) - 1
	bounds := make([]int, parts+1)
	bounds[parts] = n
	total := prefix[n]
	for p := 1; p < parts; p++ {
		target := total * int64(p) / int64(parts)
		lo, hi := bounds[p-1], n
		for lo < hi {
			mid := (lo + hi) / 2
			if prefix[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		// lo is the first boundary at or past the target; stepping back one
		// may be closer (a single heavy item should not be pulled into the
		// earlier part when that overshoots more than undershooting).
		if lo > bounds[p-1] && prefix[lo]-target > target-prefix[lo-1] {
			lo--
		}
		bounds[p] = lo
	}
	return bounds
}
