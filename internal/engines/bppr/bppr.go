// Package bppr implements B-PPR: batched multi-source personalized
// PageRank on HiPa's execution substrate. One Exec advances up to
// algorithms.MaxBatch rank columns in lockstep through the blocked
// scatter-gather kernel (algorithms.BlockSG) over the unmodified HiPa
// Prepared artifact — hierarchical partitioning, compressed inter-edge
// messages, pinned persistent threads, the shared superstep driver — so the
// graph structure is streamed once per superstep and its cost amortizes
// across the batch (the multi-RHS form of the PCPM traffic argument).
//
// Each query is a restart vector: an empty seed set is the uniform global
// PageRank column, a non-empty one teleports (and redistributes dangling
// mass) to its seeds only. Columns are numerically independent — a column's
// trajectory, iteration count included, is bitwise the one it would have at
// any other batch width, and a uniform column at B=1 reproduces the scalar
// HiPa engine bit for bit (pinned by the enginetest goldens). All folds are
// serial in global partition/column order, so results are bit-deterministic
// at any worker count.
//
// The issue sketch places this under internal/engines/ppr; that package
// name already belongs to the scalar p-PR baseline, hence bppr.
package bppr

import (
	"fmt"
	"time"

	"hipa/internal/algorithms"
	"hipa/internal/engines/common"
	"hipa/internal/engines/hipa"
	"hipa/internal/graph"
	"hipa/internal/partition"
	"hipa/internal/perfmodel"
	"hipa/internal/platform"
	"hipa/internal/sched"
)

// Name is the engine's registry name.
const Name = "B-PPR"

// MaxBatch re-exports the widest supported batch.
const MaxBatch = algorithms.MaxBatch

// DefaultTolerance is the per-column retirement threshold used when
// Options.Tolerance is zero. Per-column convergence is the engine's point
// (a finished query must stop paying for its batch-mates), so like EC-HiPa
// a zero tolerance selects a default instead of disabling the check; runs
// still stop at Options.Iterations regardless.
const DefaultTolerance = 1e-7

// Query is one personalized PageRank request: rank with teleportation to
// the uniform restart vector over Seeds (empty = the global uniform
// vector, i.e. plain PageRank). Seeds must be in range and duplicate-free.
type Query struct {
	Seeds []graph.VertexID
}

// BatchResult is the outcome of one batched Exec.
type BatchResult struct {
	Engine string
	// Ranks[q] is query q's full rank vector.
	Ranks [][]float32
	// Iterations[q] is the iteration count column q actually executed
	// before retiring (== Supersteps if it never converged).
	Iterations []int
	// Supersteps is the number of driver iterations the batch ran.
	Supersteps int
	Threads    int

	WallSeconds      float64
	PrepSeconds      float64
	PrepBuildSeconds float64
	PrepFromCache    bool

	// Model is the simulated-machine estimate for the whole batch; zero-
	// valued (never nil) on a Native platform.
	Model *perfmodel.Report
	Sched sched.Stats

	// BytesPerQuery is the modelled DRAM traffic of the batch divided by
	// the batch width — the amortization figure the bench gate tracks.
	// Zero on a Native platform.
	BytesPerQuery float64

	// ColSteps/LineSteps echo the kernel's work accounting (Σ active
	// columns per superstep, Σ rank-block lines per superstep).
	ColSteps  int64
	LineSteps int64
}

// Engine is the B-PPR implementation of common.Engine: the single-query
// adapter over ExecBatch, so the engine joins the registry-wide lifecycle
// and allocation gates.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return Name }

// Run executes uniform PageRank as a width-1 batch: Prepare then Exec.
func (e Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	return common.PrepareAndExec(e, g, o)
}

// Prepare builds the same node-level hierarchy and compressed layout as
// HiPa (byte-identical artifacts sharing prep-cache payloads), stamped with
// this engine's name.
func (Engine) Prepare(g *graph.Graph, o common.Options) (*common.Prepared, error) {
	return hipa.PrepareArtifact(Name, g, o)
}

// Exec runs a width-1 batch holding the single uniform query and adapts it
// to the scalar result shape. Bit-identical to the HiPa engine's Exec.
func (Engine) Exec(prep *common.Prepared, o common.Options) (*common.Result, error) {
	br, err := ExecBatch(prep, o, []Query{{}})
	if err != nil {
		return nil, err
	}
	return &common.Result{
		Engine:           Name,
		Ranks:            br.Ranks[0],
		Iterations:       br.Supersteps,
		Threads:          br.Threads,
		WallSeconds:      br.WallSeconds,
		PrepSeconds:      br.PrepSeconds,
		PrepBuildSeconds: br.PrepBuildSeconds,
		PrepFromCache:    br.PrepFromCache,
		Model:            br.Model,
		Sched:            br.Sched,
	}, nil
}

// ExecBatch runs one batched iterative phase for queries (width
// len(queries), 1..MaxBatch) against a Prepared artifact. Safe for
// concurrent calls sharing one artifact.
func ExecBatch(prep *common.Prepared, o common.Options, queries []Query) (*BatchResult, error) {
	if err := prep.CheckExec(Name, common.PrepPartition); err != nil {
		return nil, err
	}
	if len(queries) < 1 || len(queries) > MaxBatch {
		return nil, fmt.Errorf("bppr: batch width %d outside [1,%d]", len(queries), MaxBatch)
	}
	o = o.ResolveMachine(prep.Machine())
	m := o.Machine
	if o.PartitionBytes == 0 {
		o.PartitionBytes = prep.Key().PartitionBytes
	}
	o = o.WithDefaults(m.LogicalCores())
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.FCFS {
		return nil, fmt.Errorf("bppr: FCFS scheduling is not supported — the blocked kernel relies on the pinned thread-data mapping")
	}
	if o.Warm != nil {
		return nil, fmt.Errorf("bppr: warm starts are not supported — every column starts at its restart vector")
	}
	if o.PartitionBytes != prep.Key().PartitionBytes {
		return nil, fmt.Errorf("bppr: artifact was prepared with %dB partitions, not %dB", prep.Key().PartitionBytes, o.PartitionBytes)
	}
	if !o.NoCompress != prep.Key().Compress {
		return nil, fmt.Errorf("bppr: artifact compression does not match NoCompress=%v", o.NoCompress)
	}
	if o.VertexBalanced != prep.Key().VertexBalanced {
		return nil, fmt.Errorf("bppr: artifact was prepared with VertexBalanced=%v", prep.Key().VertexBalanced)
	}
	if m.NUMANodes != prep.Key().Nodes {
		return nil, fmt.Errorf("bppr: artifact was prepared for %d NUMA nodes, machine has %d", prep.Key().Nodes, m.NUMANodes)
	}
	g := prep.Graph()
	n := g.NumVertices()
	seedSets := make([][]graph.VertexID, len(queries))
	for q, query := range queries {
		seen := make(map[graph.VertexID]struct{}, len(query.Seeds))
		for _, v := range query.Seeds {
			if int(v) >= n {
				return nil, fmt.Errorf("bppr: query %d seed %d outside graph of %d vertices", q, v, n)
			}
			if _, dup := seen[v]; dup {
				return nil, fmt.Errorf("bppr: query %d has duplicate seed %d", q, v)
			}
			seen[v] = struct{}{}
		}
		seedSets[q] = query.Seeds
	}
	tol := o.Tolerance
	if tol == 0 {
		tol = DefaultTolerance
	}

	nodes := m.NUMANodes
	threads, groupsPerNode := hipa.RoundThreads(o.Threads, nodes)
	if threads > m.LogicalCores() {
		return nil, fmt.Errorf("bppr: %d threads exceed the machine's %d logical cores", threads, m.LogicalCores())
	}

	rec := o.Obs
	tr := rec.T()
	common.RecordGraphCounters(rec.C(), g.NumVertices(), g.NumEdges())
	if threads != o.Threads {
		rec.C().Set("hipa.threads.requested", float64(o.Threads))
		rec.C().Set("hipa.threads.effective", float64(threads))
	}
	rec.C().Set("bppr.batch", float64(len(queries)))

	hier := partition.Regroup(prep.Partition().Hier, groupsPerNode)
	lookup := partition.BuildLookup(hier)
	rec.C().Add("partition.groups", int64(len(hier.Groups)))

	pf := o.Platform
	pool, err := pf.SpawnPinned(o.SchedSeed, threads)
	if err != nil {
		return nil, fmt.Errorf("bppr: %w", err)
	}
	pool.SetLanes(tr)

	arena := prep.AcquireArena()
	defer prep.ReleaseArena(arena)
	state, err := algorithms.NewBlockSG(g, hier, prep.Partition().Lay, prep.Partition().Inv,
		o.Damping, tol, threads, seedSets, arena)
	if err != nil {
		return nil, fmt.Errorf("bppr: %w", err)
	}
	kernels := state.PinnedKernels(hier.Groups)
	stopRun := rec.C().Phase(common.PhaseRun)
	wallStart := time.Now()
	performed := common.RunSupersteps(common.SuperstepConfig{
		Engine:      Name,
		Threads:     threads,
		Parallelism: o.GoParallelism,
		Iterations:  o.Iterations,
		Tolerance:   tol,
		Rec:         rec,
	}, kernels)
	wall := time.Since(wallStart)
	stopRun()

	rec.C().Set("bppr.col_steps", float64(state.ColSteps()))
	rec.C().Set("bppr.active_columns", float64(state.ActiveColumns()))

	acct := pf.NewAccounting(pool)
	if pf.Modeled() {
		if err := acct.AddBatchRun(platform.BatchRun{
			Hier: hier, Lay: prep.Partition().Lay, Lookup: lookup,
			PartThread: lookup.PartThread,
			NUMAAware:  true,
			Batch:      len(queries),
			Supersteps: performed,
			ColSteps:   state.ColSteps(),
			LineSteps:  state.LineSteps(),
		}); err != nil {
			return nil, fmt.Errorf("bppr: %w", err)
		}
	}
	rep, err := pf.Finalize(acct, platform.RunShape{
		Iterations:     performed,
		EdgesProcessed: g.NumEdges() * int64(performed),
	})
	if err != nil {
		return nil, fmt.Errorf("bppr: %w", err)
	}

	// The arena (and with it the rank block) is recycled by the next Exec;
	// the result de-interleaves its own per-query copies.
	ranks := make([][]float32, len(queries))
	iters := make([]int, len(queries))
	for q := range queries {
		col := make([]float32, n)
		state.CopyColumn(q, col)
		ranks[q] = col
		iters[q] = int(state.ColumnIterations()[q])
	}
	res := &BatchResult{
		Engine:           Name,
		Ranks:            ranks,
		Iterations:       iters,
		Supersteps:       performed,
		Threads:          threads,
		WallSeconds:      wall.Seconds(),
		PrepSeconds:      prep.PrepSeconds,
		PrepBuildSeconds: prep.BuildSeconds,
		PrepFromCache:    prep.FromCache,
		Model:            rep,
		Sched:            pool.Stats,
		ColSteps:         state.ColSteps(),
		LineSteps:        state.LineSteps(),
	}
	if total := rep.LocalBytes + rep.RemoteBytes; total > 0 {
		res.BytesPerQuery = float64(total) / float64(len(queries))
	}
	// FinishRun wants the scalar result shape; feed it the first column so
	// run reports and counters stay populated for batched runs too.
	common.FinishRun(rec, &common.Result{
		Engine: Name, Ranks: ranks[0], Iterations: performed, Threads: threads,
		WallSeconds: wall.Seconds(), Model: rep, Sched: pool.Stats,
	}, m, true)
	return res, nil
}
