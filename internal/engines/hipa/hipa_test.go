package hipa

import (
	"testing"

	"hipa/internal/engines/common"
	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/machine"
)

func testMachine() *machine.Machine {
	return machine.Scaled(machine.SkylakeSilver4210(), 1024)
}

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 2000, Edges: 24000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestThreadRounding(t *testing.T) {
	g := testGraph(t)
	// 7 threads on 2 nodes rounds down to 6 (3 groups per node).
	res, err := (Engine{}).Run(g, common.Options{Machine: testMachine(), Threads: 7, Iterations: 2, PartitionBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 6 {
		t.Errorf("Threads = %d, want 6 (rounded to node multiple)", res.Threads)
	}
	// 1 thread on 2 nodes rounds up to the node count.
	res, err = (Engine{}).Run(g, common.Options{Machine: testMachine(), Threads: 1, Iterations: 2, PartitionBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 2 {
		t.Errorf("Threads = %d, want 2 (at least one per node)", res.Threads)
	}
}

func TestTooManyThreads(t *testing.T) {
	g := testGraph(t)
	_, err := (Engine{}).Run(g, common.Options{Machine: testMachine(), Threads: 42, Iterations: 1, PartitionBytes: 256})
	if err == nil {
		t.Fatal("expected error for threads > logical cores")
	}
}

func TestEmptyGraphError(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	if _, err := (Engine{}).Run(empty, common.Options{Machine: testMachine()}); err == nil {
		t.Fatal("expected error for empty graph")
	}
}

func TestBadOptionsPropagate(t *testing.T) {
	g := testGraph(t)
	if _, err := (Engine{}).Run(g, common.Options{Machine: testMachine(), Iterations: -1}); err == nil {
		t.Fatal("expected error for negative iterations")
	}
	if _, err := (Engine{}).Run(g, common.Options{Machine: testMachine(), Damping: 1.5}); err == nil {
		t.Fatal("expected error for damping out of range")
	}
}

func TestFCFSAblationRaisesRemote(t *testing.T) {
	g := testGraph(t)
	o := common.Options{Machine: testMachine(), Iterations: 5, PartitionBytes: 256}
	pinned, err := (Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	o.FCFS = true
	fcfs, err := (Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if fcfs.Model.RemoteFraction <= pinned.Model.RemoteFraction {
		t.Errorf("FCFS remote %.3f should exceed pinned %.3f",
			fcfs.Model.RemoteFraction, pinned.Model.RemoteFraction)
	}
	if fcfs.Model.EstimatedSeconds <= pinned.Model.EstimatedSeconds {
		t.Errorf("FCFS (%.5fs) should be slower than pinned (%.5fs)",
			fcfs.Model.EstimatedSeconds, pinned.Model.EstimatedSeconds)
	}
}

func TestNoCompressRaisesTraffic(t *testing.T) {
	g := testGraph(t)
	o := common.Options{Machine: testMachine(), Iterations: 5, PartitionBytes: 256}
	comp, err := (Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	o.NoCompress = true
	nc, err := (Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if nc.Model.MApE <= comp.Model.MApE {
		t.Errorf("uncompressed MApE %.2f should exceed compressed %.2f", nc.Model.MApE, comp.Model.MApE)
	}
}

func TestDeterministicModel(t *testing.T) {
	g := testGraph(t)
	o := common.Options{Machine: testMachine(), Iterations: 3, PartitionBytes: 256, SchedSeed: 9}
	a, err := (Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (Engine{}).Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Model.EstimatedSeconds != b.Model.EstimatedSeconds {
		t.Error("model estimate not deterministic for fixed seed")
	}
	if a.Model.MApE != b.Model.MApE || a.Sched.Migrations != b.Sched.Migrations {
		t.Error("model metrics not deterministic")
	}
}
