// Package hipa implements the paper's contribution: hierarchically
// partitioned, NUMA- and cache-aware PageRank with thread-data pinning
// (Algorithm 2).
//
// Execution structure:
//
//   - The graph is partitioned twice (internal/partition): edge-balanced
//     whole-partition assignment to NUMA nodes, then edge-balanced groups of
//     cache-able partitions, one group per thread.
//   - Inter-edges are compressed into per-partition-pair messages
//     (internal/layout).
//   - Threads are persistent: each one is (simulatedly) pinned to a distinct
//     logical core on the node that owns its group's data and runs the whole
//     iterative scatter-gather loop, synchronising at phase barriers. All
//     logical cores are usable because each thread's working set is a
//     quarter of the L2, so hyper-thread siblings co-reside (§3.3, §4.5).
package hipa

import (
	"fmt"
	"time"

	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/obs"
	"hipa/internal/partition"
	"hipa/internal/perfmodel"
	"hipa/internal/sched"
)

// Engine is the HiPa implementation of common.Engine.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return "HiPa" }

// Run executes PageRank on g with HiPa's hierarchical partitioning.
func (Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	if o.Machine == nil {
		o.Machine = machine.SkylakeSilver4210()
	}
	m := o.Machine
	o = o.WithDefaults(m.LogicalCores())
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("hipa: empty graph")
	}

	// Thread count must be a multiple of the node count (one group list per
	// node); round down like the paper's per-node thread split.
	nodes := m.NUMANodes
	threads := o.Threads
	if threads < nodes {
		threads = nodes
	}
	groupsPerNode := threads / nodes
	threads = groupsPerNode * nodes
	if threads > m.LogicalCores() {
		return nil, fmt.Errorf("hipa: %d threads exceed the machine's %d logical cores", threads, m.LogicalCores())
	}

	rec := o.Obs
	tr := rec.T()
	common.RecordGraphCounters(rec.C(), g.NumVertices(), g.NumEdges())
	runner := common.RunnerLane(threads)

	// Preprocessing: hierarchical partitioning + layout construction. This
	// is the overhead the paper amortises over iterations (§4.2).
	stopPrep := rec.C().Phase(common.PhasePrep)
	prepStart := time.Now()
	hier, err := partition.Build(g, partition.Config{
		PartitionBytes: o.PartitionBytes,
		BytesPerVertex: 4,
		NumNodes:       nodes,
		GroupsPerNode:  groupsPerNode,
		VertexBalanced: o.VertexBalanced,
	})
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}
	if tr != nil {
		tr.Span(runner, common.SpanPrepPartition, -1, prepStart)
	}
	layStart := time.Now()
	lay, err := layout.Build(g, hier, !o.NoCompress)
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}
	if tr != nil {
		tr.Span(runner, common.SpanPrepLayout, -1, layStart)
	}
	lookup := partition.BuildLookup(hier)
	prep := time.Since(prepStart)
	stopPrep()
	rec.C().Add("partition.partitions", int64(hier.NumPartitions()))
	rec.C().Add("partition.groups", int64(len(hier.Groups)))
	rec.C().Add("layout.messages", int64(lay.NumMessages()))

	// Simulated scheduling: persistent threads spawned once and pinned
	// (Algorithm 2). At most `threads` migrations can occur.
	scheduler := sched.New(m, o.SchedSeed)
	pool, schedStats, err := scheduler.RunPinnedThreads(threads)
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}
	common.SetPinnedLanes(tr, pool, m)

	// Real parallel execution.
	state := common.NewSGState(g, hier, lay, o.Damping, threads)
	stopRun := rec.C().Phase(common.PhaseRun)
	wallStart := time.Now()
	if o.FCFS {
		// Ablation: keep HiPa's layout and placement but let threads claim
		// partitions first-come-first-serve instead of the pinned one-to-
		// many assignment.
		o.Iterations = common.RunFCFS(state, o.Iterations, threads, o.Tolerance, rec)
	} else {
		bar := common.NewBarrier(threads)
		performed := 0
		stop := false
		// itStart is only touched by barrier leaders, whose callbacks are
		// serialized under the barrier's mutex.
		itStart := wallStart
		common.RunThreads(threads, func(tid int) {
			gr := hier.Groups[tid]
			for it := 0; it < o.Iterations; it++ {
				var spanStart time.Time
				if tr != nil {
					spanStart = time.Now()
				}
				for p := gr.PartStart; p < gr.PartEnd; p++ {
					state.ScatterPartition(p, tid)
				}
				if tr != nil {
					tr.Span(tid, common.SpanScatter, it, spanStart)
				}
				bar.WaitLeader(func() {
					var serialStart time.Time
					if tr != nil {
						serialStart = time.Now()
					}
					state.ReduceDangling()
					if tr != nil {
						tr.Span(runner, common.SpanReduce, it, serialStart)
					}
				})
				if tr != nil {
					spanStart = time.Now()
				}
				for p := gr.PartStart; p < gr.PartEnd; p++ {
					state.GatherPartition(p, tid)
				}
				if tr != nil {
					tr.Span(tid, common.SpanGather, it, spanStart)
				}
				bar.WaitLeader(func() {
					performed++
					var serialStart time.Time
					if tr != nil {
						serialStart = time.Now()
					}
					res := state.MaxResidual()
					if o.Tolerance > 0 && res < o.Tolerance {
						stop = true
					}
					if tr != nil {
						tr.Span(runner, common.SpanApply, it, serialStart)
					}
					if rec != nil {
						now := time.Now()
						rec.RecordIteration(obs.IterationStats{
							Iter:         it,
							WallSeconds:  now.Sub(itStart).Seconds(),
							Residual:     res,
							DanglingMass: state.LastDanglingMass(),
						})
						itStart = now
					}
				})
				if stop {
					return
				}
			}
		})
		o.Iterations = performed
	}
	wall := time.Since(wallStart)
	stopRun()

	// Analytic model on the simulated machine.
	threadNode, threadShared := common.ThreadPlacement(pool, m)
	partThread := lookup.PartThread
	var slack float64
	if o.FCFS {
		partThread = common.ModelFCFSAssignment(hier, threads)
		slack = common.FCFSWorkingSetSlack
	}
	costs, barriers, err := common.BuildPartitionModel(common.PartitionModelSpec{
		Machine: m, Hier: hier, Lay: lay, Lookup: lookup,
		ThreadNode: threadNode, ThreadShared: threadShared,
		PartThread:      partThread,
		NUMAAware:       true,
		Iterations:      o.Iterations,
		WorkingSetSlack: slack,
	})
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}
	rep, err := perfmodel.Estimate(perfmodel.Run{
		Machine: m, Threads: costs,
		Barriers:       barriers,
		SchedCostNS:    schedStats.CostNS,
		EdgesProcessed: g.NumEdges() * int64(o.Iterations),
		Iterations:     o.Iterations,
	})
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}

	res := &common.Result{
		Engine:      "HiPa",
		Ranks:       state.Ranks,
		Iterations:  o.Iterations,
		Threads:     threads,
		WallSeconds: wall.Seconds(),
		PrepSeconds: prep.Seconds(),
		Model:       rep,
		Sched:       schedStats,
	}
	// Algorithm 2 binds once at spawn, so per-iteration migration
	// attribution charges iteration 0 — also for the FCFS ablation, which
	// keeps the pinned thread lifecycle.
	common.FinishRun(rec, res, m, true)
	return res, nil
}
