// Package hipa implements the paper's contribution: hierarchically
// partitioned, NUMA- and cache-aware PageRank with thread-data pinning
// (Algorithm 2).
//
// Execution structure:
//
//   - The graph is partitioned twice (internal/partition): edge-balanced
//     whole-partition assignment to NUMA nodes, then edge-balanced groups of
//     cache-able partitions, one group per thread.
//   - Inter-edges are compressed into per-partition-pair messages
//     (internal/layout).
//   - Threads are persistent: each one is (simulatedly) pinned to a distinct
//     logical core on the node that owns its group's data and runs the whole
//     iterative scatter-gather loop, synchronising at phase barriers. All
//     logical cores are usable because each thread's working set is a
//     quarter of the L2, so hyper-thread siblings co-reside (§3.3, §4.5).
//
// The lifecycle is two-phase: Prepare builds the node-level hierarchy and
// compressed layout (the §4.2 overhead, reusable across thread counts
// because the thread-dependent group stage is recomputed by Exec via
// partition.Regroup), Exec runs the pinned iterative phase, and Run is
// their composition.
package hipa

import (
	"fmt"
	"time"

	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/obs"
	"hipa/internal/partition"
	"hipa/internal/perfmodel"
	"hipa/internal/sched"
)

// Engine is the HiPa implementation of common.Engine.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return "HiPa" }

// roundThreads returns HiPa's effective thread count for the requested one:
// at least one thread per NUMA node (one group list per node), rounded down
// to a node multiple, like the paper's per-node thread split.
func roundThreads(requested, nodes int) (threads, groupsPerNode int) {
	threads = requested
	if threads < nodes {
		threads = nodes
	}
	groupsPerNode = threads / nodes
	return groupsPerNode * nodes, groupsPerNode
}

// Run executes PageRank on g with HiPa's hierarchical partitioning:
// Prepare followed by Exec.
func (e Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	return common.PrepareAndExec(e, g, o)
}

// Prepare builds HiPa's preprocessing artifact: the node-level hierarchical
// partitioning (level 0 cache-able partitions + level 1 NUMA assignment)
// and the compressed inter-edge layout. The thread-dependent group level is
// left to Exec, so one artifact serves every thread count on the same
// machine topology.
func (Engine) Prepare(g *graph.Graph, o common.Options) (*common.Prepared, error) {
	if o.Machine == nil {
		o.Machine = machine.SkylakeSilver4210()
	}
	m := o.Machine
	o = o.WithDefaults(m.LogicalCores())
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("hipa: empty graph")
	}
	nodes := m.NUMANodes
	threads, _ := roundThreads(o.Threads, nodes)
	if threads > m.LogicalCores() {
		return nil, fmt.Errorf("hipa: %d threads exceed the machine's %d logical cores", threads, m.LogicalCores())
	}
	rec := o.Obs
	runner := common.RunnerLane(threads)
	key := common.PrepKey{
		Kind:           common.PrepPartition,
		PartitionBytes: o.PartitionBytes,
		Compress:       !o.NoCompress,
		VertexBalanced: o.VertexBalanced,
		Nodes:          nodes,
	}
	prep, err := common.MakePrepared("HiPa", g, m, o, key, func() (any, error) {
		tr := rec.T()
		partStart := time.Now()
		hier, err := partition.Build(g, partition.Config{
			PartitionBytes: o.PartitionBytes,
			BytesPerVertex: 4,
			NumNodes:       nodes,
			GroupsPerNode:  0, // one group per node; Exec regroups per thread count
			VertexBalanced: o.VertexBalanced,
		})
		if err != nil {
			return nil, fmt.Errorf("hipa: %w", err)
		}
		if tr != nil {
			tr.Span(runner, common.SpanPrepPartition, -1, partStart)
		}
		layStart := time.Now()
		lay, err := layout.Build(g, hier, !o.NoCompress)
		if err != nil {
			return nil, fmt.Errorf("hipa: %w", err)
		}
		if tr != nil {
			tr.Span(runner, common.SpanPrepLayout, -1, layStart)
		}
		return &common.PartArtifact{Hier: hier, Lay: lay, Inv: common.InvOutDegrees(g)}, nil
	}, nil)
	if err != nil {
		return nil, err
	}
	rec.C().Add("partition.partitions", int64(prep.Partition().Hier.NumPartitions()))
	rec.C().Add("layout.messages", int64(prep.Partition().Lay.NumMessages()))
	return prep, nil
}

// Exec runs HiPa's pinned iterative phase (Algorithm 2) against a Prepared
// artifact: the thread-count-dependent group level is recomputed on the
// artifact's node-level split, then persistent pinned threads run the
// scatter-gather loop. Safe for concurrent calls sharing one artifact.
func (Engine) Exec(prep *common.Prepared, o common.Options) (*common.Result, error) {
	if err := prep.CheckExec("HiPa", common.PrepPartition); err != nil {
		return nil, err
	}
	if o.Machine == nil {
		o.Machine = prep.Machine()
	}
	m := o.Machine
	if o.PartitionBytes == 0 {
		o.PartitionBytes = prep.Key().PartitionBytes
	}
	o = o.WithDefaults(m.LogicalCores())
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.PartitionBytes != prep.Key().PartitionBytes {
		return nil, fmt.Errorf("hipa: artifact was prepared with %dB partitions, not %dB", prep.Key().PartitionBytes, o.PartitionBytes)
	}
	if !o.NoCompress != prep.Key().Compress {
		return nil, fmt.Errorf("hipa: artifact compression does not match NoCompress=%v", o.NoCompress)
	}
	if o.VertexBalanced != prep.Key().VertexBalanced {
		return nil, fmt.Errorf("hipa: artifact was prepared with VertexBalanced=%v", prep.Key().VertexBalanced)
	}
	if m.NUMANodes != prep.Key().Nodes {
		return nil, fmt.Errorf("hipa: artifact was prepared for %d NUMA nodes, machine has %d", prep.Key().Nodes, m.NUMANodes)
	}
	g := prep.Graph()

	// Thread count must be a multiple of the node count (one group list per
	// node); round down like the paper's per-node thread split.
	nodes := m.NUMANodes
	threads, groupsPerNode := roundThreads(o.Threads, nodes)
	if threads > m.LogicalCores() {
		return nil, fmt.Errorf("hipa: %d threads exceed the machine's %d logical cores", threads, m.LogicalCores())
	}

	rec := o.Obs
	tr := rec.T()
	common.RecordGraphCounters(rec.C(), g.NumVertices(), g.NumEdges())
	if threads != o.Threads {
		// The silent adjustment, made visible (see Options.Threads).
		rec.C().Set("hipa.threads.requested", float64(o.Threads))
		rec.C().Set("hipa.threads.effective", float64(threads))
	}
	runner := common.RunnerLane(threads)

	// Cache-aware group level on top of the artifact's node-level split —
	// identical to building the full hierarchy at this thread count, but
	// O(partitions) instead of O(V + E).
	hier := partition.Regroup(prep.Partition().Hier, groupsPerNode)
	lookup := partition.BuildLookup(hier)
	rec.C().Add("partition.groups", int64(len(hier.Groups)))

	// Simulated scheduling: persistent threads spawned once and pinned
	// (Algorithm 2). At most `threads` migrations can occur.
	scheduler := sched.New(m, o.SchedSeed)
	pool, schedStats, err := scheduler.RunPinnedThreads(threads)
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}
	common.SetPinnedLanes(tr, pool, m)

	// Real parallel execution.
	state := common.NewSGStateWithInv(g, hier, prep.Partition().Lay, prep.Partition().Inv, o.Damping, threads)
	stopRun := rec.C().Phase(common.PhaseRun)
	wallStart := time.Now()
	if o.FCFS {
		// Ablation: keep HiPa's layout and placement but let threads claim
		// partitions first-come-first-serve instead of the pinned one-to-
		// many assignment.
		o.Iterations = common.RunFCFS(state, o.Iterations, threads, o.Tolerance, rec)
	} else {
		bar := common.NewBarrier(threads)
		performed := 0
		stop := false
		// itStart is only touched by barrier leaders, whose callbacks are
		// serialized under the barrier's mutex.
		itStart := wallStart
		common.RunThreads(threads, func(tid int) {
			gr := hier.Groups[tid]
			for it := 0; it < o.Iterations; it++ {
				var spanStart time.Time
				if tr != nil {
					spanStart = time.Now()
				}
				for p := gr.PartStart; p < gr.PartEnd; p++ {
					state.ScatterPartition(p, tid)
				}
				if tr != nil {
					tr.Span(tid, common.SpanScatter, it, spanStart)
				}
				bar.WaitLeader(func() {
					var serialStart time.Time
					if tr != nil {
						serialStart = time.Now()
					}
					state.ReduceDangling()
					if tr != nil {
						tr.Span(runner, common.SpanReduce, it, serialStart)
					}
				})
				if tr != nil {
					spanStart = time.Now()
				}
				for p := gr.PartStart; p < gr.PartEnd; p++ {
					state.GatherPartition(p, tid)
				}
				if tr != nil {
					tr.Span(tid, common.SpanGather, it, spanStart)
				}
				bar.WaitLeader(func() {
					performed++
					var serialStart time.Time
					if tr != nil {
						serialStart = time.Now()
					}
					res := state.MaxResidual()
					if o.Tolerance > 0 && res < o.Tolerance {
						stop = true
					}
					if tr != nil {
						tr.Span(runner, common.SpanApply, it, serialStart)
					}
					if rec != nil {
						now := time.Now()
						rec.RecordIteration(obs.IterationStats{
							Iter:         it,
							WallSeconds:  now.Sub(itStart).Seconds(),
							Residual:     res,
							DanglingMass: state.LastDanglingMass(),
						})
						itStart = now
					}
				})
				if stop {
					return
				}
			}
		})
		o.Iterations = performed
	}
	wall := time.Since(wallStart)
	stopRun()

	// Analytic model on the simulated machine.
	threadNode, threadShared := common.ThreadPlacement(pool, m)
	partThread := lookup.PartThread
	var slack float64
	if o.FCFS {
		partThread = common.ModelFCFSAssignment(hier, threads)
		slack = common.FCFSWorkingSetSlack
	}
	costs, barriers, err := common.BuildPartitionModel(common.PartitionModelSpec{
		Machine: m, Hier: hier, Lay: prep.Partition().Lay, Lookup: lookup,
		ThreadNode: threadNode, ThreadShared: threadShared,
		PartThread:      partThread,
		NUMAAware:       true,
		Iterations:      o.Iterations,
		WorkingSetSlack: slack,
	})
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}
	rep, err := perfmodel.Estimate(perfmodel.Run{
		Machine: m, Threads: costs,
		Barriers:       barriers,
		SchedCostNS:    schedStats.CostNS,
		EdgesProcessed: g.NumEdges() * int64(o.Iterations),
		Iterations:     o.Iterations,
	})
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}

	res := &common.Result{
		Engine:           "HiPa",
		Ranks:            state.Ranks,
		Iterations:       o.Iterations,
		Threads:          threads,
		WallSeconds:      wall.Seconds(),
		PrepSeconds:      prep.PrepSeconds,
		PrepBuildSeconds: prep.BuildSeconds,
		PrepFromCache:    prep.FromCache,
		Model:            rep,
		Sched:            schedStats,
	}
	// Algorithm 2 binds once at spawn, so per-iteration migration
	// attribution charges iteration 0 — also for the FCFS ablation, which
	// keeps the pinned thread lifecycle.
	common.FinishRun(rec, res, m, true)
	return res, nil
}
