// Package hipa implements the paper's contribution: hierarchically
// partitioned, NUMA- and cache-aware PageRank with thread-data pinning
// (Algorithm 2).
//
// Execution structure:
//
//   - The graph is partitioned twice (internal/partition): edge-balanced
//     whole-partition assignment to NUMA nodes, then edge-balanced groups of
//     cache-able partitions, one group per thread.
//   - Inter-edges are compressed into per-partition-pair messages
//     (internal/layout).
//   - Threads are persistent: each one is (simulatedly) pinned to a distinct
//     logical core on the node that owns its group's data and runs the whole
//     iterative scatter-gather loop, synchronising at phase barriers. All
//     logical cores are usable because each thread's working set is a
//     quarter of the L2, so hyper-thread siblings co-reside (§3.3, §4.5).
//
// The lifecycle is two-phase: Prepare builds the node-level hierarchy and
// compressed layout (the §4.2 overhead, reusable across thread counts
// because the thread-dependent group stage is recomputed by Exec via
// partition.Regroup), Exec runs the pinned iterative phase, and Run is
// their composition.
package hipa

import (
	"fmt"
	"time"

	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/partition"
	"hipa/internal/platform"
)

// Engine is the HiPa implementation of common.Engine.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return "HiPa" }

// RoundThreads returns HiPa's effective thread count for the requested one:
// at least one thread per NUMA node (one group list per node), rounded down
// to a node multiple, like the paper's per-node thread split. Exported for
// engines that share HiPa's execution shape (the early-convergence engine).
func RoundThreads(requested, nodes int) (threads, groupsPerNode int) {
	threads = requested
	if threads < nodes {
		threads = nodes
	}
	groupsPerNode = threads / nodes
	return groupsPerNode * nodes, groupsPerNode
}

// Run executes PageRank on g with HiPa's hierarchical partitioning:
// Prepare followed by Exec.
func (e Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	return common.PrepareAndExec(e, g, o)
}

// Prepare builds HiPa's preprocessing artifact: the node-level hierarchical
// partitioning (level 0 cache-able partitions + level 1 NUMA assignment)
// and the compressed inter-edge layout. The thread-dependent group level is
// left to Exec, so one artifact serves every thread count on the same
// machine topology.
func (Engine) Prepare(g *graph.Graph, o common.Options) (*common.Prepared, error) {
	return PrepareArtifact("HiPa", g, o)
}

// PrepareArtifact is HiPa's Prepare with the artifact's engine stamp
// parameterised, so engines sharing HiPa's execution shape (the
// early-convergence engine) build byte-identical artifacts under their own
// name. The prep-cache key carries no engine field, so the underlying
// hierarchy/layout payload is still shared across such engines.
func PrepareArtifact(name string, g *graph.Graph, o common.Options) (*common.Prepared, error) {
	o = o.ResolveMachine(nil)
	m := o.Machine
	o = o.WithDefaults(m.LogicalCores())
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("hipa: empty graph")
	}
	nodes := m.NUMANodes
	threads, _ := RoundThreads(o.Threads, nodes)
	if threads > m.LogicalCores() {
		return nil, fmt.Errorf("hipa: %d threads exceed the machine's %d logical cores", threads, m.LogicalCores())
	}
	rec := o.Obs
	runner := common.RunnerLane(threads)
	key := common.PrepKey{
		Kind:           common.PrepPartition,
		PartitionBytes: o.PartitionBytes,
		BytesPerVertex: 4,
		Compress:       !o.NoCompress,
		VertexBalanced: o.VertexBalanced,
		Nodes:          nodes,
	}
	prep, err := common.MakePrepared(name, g, m, o, key, func() (any, error) {
		tr := rec.T()
		partStart := time.Now()
		stopPart := rec.C().Phase(common.PhasePrepPartition)
		hier, err := partition.BuildWorkers(g, partition.Config{
			PartitionBytes: o.PartitionBytes,
			BytesPerVertex: 4,
			NumNodes:       nodes,
			GroupsPerNode:  0, // one group per node; Exec regroups per thread count
			VertexBalanced: o.VertexBalanced,
		}, o.PrepParallelism)
		stopPart()
		common.ObservePrepStage(common.SpanPrepPartition, time.Since(partStart).Seconds())
		if err != nil {
			return nil, fmt.Errorf("hipa: %w", err)
		}
		if tr != nil {
			tr.Span(runner, common.SpanPrepPartition, -1, partStart)
		}
		layStart := time.Now()
		stopLay := rec.C().Phase(common.PhasePrepLayout)
		lay, err := layout.BuildWorkers(g, hier, !o.NoCompress, o.PrepParallelism)
		stopLay()
		common.ObservePrepStage(common.SpanPrepLayout, time.Since(layStart).Seconds())
		if err != nil {
			return nil, fmt.Errorf("hipa: %w", err)
		}
		if tr != nil {
			tr.Span(runner, common.SpanPrepLayout, -1, layStart)
		}
		return &common.PartArtifact{Hier: hier, Lay: lay, Inv: common.InvOutDegreesWorkers(g, o.PrepParallelism)}, nil
	}, nil)
	if err != nil {
		return nil, err
	}
	rec.C().Add("partition.partitions", int64(prep.Partition().Hier.NumPartitions()))
	rec.C().Add("layout.messages", int64(prep.Partition().Lay.NumMessages()))
	return prep, nil
}

// Exec runs HiPa's pinned iterative phase (Algorithm 2) against a Prepared
// artifact: the thread-count-dependent group level is recomputed on the
// artifact's node-level split, then persistent pinned threads run the
// scatter-gather loop. Safe for concurrent calls sharing one artifact.
func (Engine) Exec(prep *common.Prepared, o common.Options) (*common.Result, error) {
	if err := prep.CheckExec("HiPa", common.PrepPartition); err != nil {
		return nil, err
	}
	o = o.ResolveMachine(prep.Machine())
	m := o.Machine
	if o.PartitionBytes == 0 {
		o.PartitionBytes = prep.Key().PartitionBytes
	}
	o = o.WithDefaults(m.LogicalCores())
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.PartitionBytes != prep.Key().PartitionBytes {
		return nil, fmt.Errorf("hipa: artifact was prepared with %dB partitions, not %dB", prep.Key().PartitionBytes, o.PartitionBytes)
	}
	if !o.NoCompress != prep.Key().Compress {
		return nil, fmt.Errorf("hipa: artifact compression does not match NoCompress=%v", o.NoCompress)
	}
	if o.VertexBalanced != prep.Key().VertexBalanced {
		return nil, fmt.Errorf("hipa: artifact was prepared with VertexBalanced=%v", prep.Key().VertexBalanced)
	}
	if m.NUMANodes != prep.Key().Nodes {
		return nil, fmt.Errorf("hipa: artifact was prepared for %d NUMA nodes, machine has %d", prep.Key().Nodes, m.NUMANodes)
	}
	g := prep.Graph()

	// Thread count must be a multiple of the node count (one group list per
	// node); round down like the paper's per-node thread split.
	nodes := m.NUMANodes
	threads, groupsPerNode := RoundThreads(o.Threads, nodes)
	if threads > m.LogicalCores() {
		return nil, fmt.Errorf("hipa: %d threads exceed the machine's %d logical cores", threads, m.LogicalCores())
	}

	rec := o.Obs
	tr := rec.T()
	common.RecordGraphCounters(rec.C(), g.NumVertices(), g.NumEdges())
	if threads != o.Threads {
		// The silent adjustment, made visible (see Options.Threads).
		rec.C().Set("hipa.threads.requested", float64(o.Threads))
		rec.C().Set("hipa.threads.effective", float64(threads))
	}

	// Cache-aware group level on top of the artifact's node-level split —
	// identical to building the full hierarchy at this thread count, but
	// O(partitions) instead of O(V + E).
	hier := partition.Regroup(prep.Partition().Hier, groupsPerNode)
	lookup := partition.BuildLookup(hier)
	rec.C().Add("partition.groups", int64(len(hier.Groups)))

	// Platform thread lifecycle: persistent threads spawned once and pinned
	// (Algorithm 2). At most `threads` migrations can occur.
	pf := o.Platform
	pool, err := pf.SpawnPinned(o.SchedSeed, threads)
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}
	pool.SetLanes(tr)

	// Real parallel execution through the shared superstep driver. The FCFS
	// ablation keeps HiPa's layout and placement but lets threads claim
	// partitions first-come-first-serve instead of the pinned one-to-many
	// assignment.
	arena := prep.AcquireArena()
	defer prep.ReleaseArena(arena)
	state := common.NewSGStateArena(g, hier, prep.Partition().Lay, prep.Partition().Inv, o.Damping, threads, arena)
	if o.Warm != nil {
		// Dense warm restart: start from the previous version's converged
		// ranks instead of the uniform distribution. PinnedKernels re-seeds
		// the dangling partials group-accurately from the warm ranks below.
		if len(o.Warm.Ranks) != g.NumVertices() {
			return nil, fmt.Errorf("hipa: warm-start ranks have %d entries, graph has %d vertices", len(o.Warm.Ranks), g.NumVertices())
		}
		state.SetRanks(o.Warm.Ranks)
	}
	kernels := common.PinnedKernels(state, hier.Groups)
	if o.FCFS {
		kernels = common.FCFSKernels(state)
	}
	stopRun := rec.C().Phase(common.PhaseRun)
	wallStart := time.Now()
	o.Iterations = common.RunSupersteps(common.SuperstepConfig{
		Engine:      "HiPa",
		Threads:     threads,
		Parallelism: o.GoParallelism,
		Iterations:  o.Iterations,
		Tolerance:   o.Tolerance,
		Rec:         rec,
	}, kernels)
	wall := time.Since(wallStart)
	stopRun()

	// Cost accounting on the platform.
	acct := pf.NewAccounting(pool)
	if pf.Modeled() {
		partThread := lookup.PartThread
		var slack float64
		if o.FCFS {
			partThread = platform.FCFSAssignment(hier, threads)
			slack = platform.FCFSWorkingSetSlack
		}
		if err := acct.AddPartitionRun(platform.PartitionRun{
			Hier: hier, Lay: prep.Partition().Lay, Lookup: lookup,
			PartThread:      partThread,
			NUMAAware:       true,
			Iterations:      o.Iterations,
			WorkingSetSlack: slack,
		}); err != nil {
			return nil, fmt.Errorf("hipa: %w", err)
		}
	}
	rep, err := pf.Finalize(acct, platform.RunShape{
		Iterations:     o.Iterations,
		EdgesProcessed: g.NumEdges() * int64(o.Iterations),
	})
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}

	// The arena (and with it state.Ranks) is recycled by the next Exec; the
	// result keeps its own copy — the single per-Exec allocation.
	ranks := make([]float32, len(state.Ranks))
	copy(ranks, state.Ranks)
	res := &common.Result{
		Engine:           "HiPa",
		Ranks:            ranks,
		Iterations:       o.Iterations,
		Threads:          threads,
		WallSeconds:      wall.Seconds(),
		PrepSeconds:      prep.PrepSeconds,
		PrepBuildSeconds: prep.BuildSeconds,
		PrepFromCache:    prep.FromCache,
		Model:            rep,
		Sched:            pool.Stats,
	}
	// Algorithm 2 binds once at spawn, so per-iteration migration
	// attribution charges iteration 0 — also for the FCFS ablation, which
	// keeps the pinned thread lifecycle.
	common.FinishRun(rec, res, m, true)
	return res, nil
}
