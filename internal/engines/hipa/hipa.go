// Package hipa implements the paper's contribution: hierarchically
// partitioned, NUMA- and cache-aware PageRank with thread-data pinning
// (Algorithm 2).
//
// Execution structure:
//
//   - The graph is partitioned twice (internal/partition): edge-balanced
//     whole-partition assignment to NUMA nodes, then edge-balanced groups of
//     cache-able partitions, one group per thread.
//   - Inter-edges are compressed into per-partition-pair messages
//     (internal/layout).
//   - Threads are persistent: each one is (simulatedly) pinned to a distinct
//     logical core on the node that owns its group's data and runs the whole
//     iterative scatter-gather loop, synchronising at phase barriers. All
//     logical cores are usable because each thread's working set is a
//     quarter of the L2, so hyper-thread siblings co-reside (§3.3, §4.5).
package hipa

import (
	"fmt"
	"time"

	"hipa/internal/engines/common"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/machine"
	"hipa/internal/partition"
	"hipa/internal/perfmodel"
	"hipa/internal/sched"
)

// Engine is the HiPa implementation of common.Engine.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return "HiPa" }

// Run executes PageRank on g with HiPa's hierarchical partitioning.
func (Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	if o.Machine == nil {
		o.Machine = machine.SkylakeSilver4210()
	}
	m := o.Machine
	o = o.WithDefaults(m.LogicalCores())
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("hipa: empty graph")
	}

	// Thread count must be a multiple of the node count (one group list per
	// node); round down like the paper's per-node thread split.
	nodes := m.NUMANodes
	threads := o.Threads
	if threads < nodes {
		threads = nodes
	}
	groupsPerNode := threads / nodes
	threads = groupsPerNode * nodes
	if threads > m.LogicalCores() {
		return nil, fmt.Errorf("hipa: %d threads exceed the machine's %d logical cores", threads, m.LogicalCores())
	}

	// Preprocessing: hierarchical partitioning + layout construction. This
	// is the overhead the paper amortises over iterations (§4.2).
	prepStart := time.Now()
	hier, err := partition.Build(g, partition.Config{
		PartitionBytes: o.PartitionBytes,
		BytesPerVertex: 4,
		NumNodes:       nodes,
		GroupsPerNode:  groupsPerNode,
		VertexBalanced: o.VertexBalanced,
	})
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}
	lay, err := layout.Build(g, hier, !o.NoCompress)
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}
	lookup := partition.BuildLookup(hier)
	prep := time.Since(prepStart)

	// Simulated scheduling: persistent threads spawned once and pinned
	// (Algorithm 2). At most `threads` migrations can occur.
	scheduler := sched.New(m, o.SchedSeed)
	pool, schedStats, err := scheduler.RunPinnedThreads(threads)
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}

	// Real parallel execution.
	state := common.NewSGState(g, hier, lay, o.Damping, threads)
	wallStart := time.Now()
	if o.FCFS {
		// Ablation: keep HiPa's layout and placement but let threads claim
		// partitions first-come-first-serve instead of the pinned one-to-
		// many assignment.
		o.Iterations = common.RunFCFS(state, o.Iterations, threads, o.Tolerance)
	} else {
		bar := common.NewBarrier(threads)
		performed := 0
		stop := false
		common.RunThreads(threads, func(tid int) {
			gr := hier.Groups[tid]
			for it := 0; it < o.Iterations; it++ {
				for p := gr.PartStart; p < gr.PartEnd; p++ {
					state.ScatterPartition(p, tid)
				}
				bar.WaitLeader(state.ReduceDangling)
				for p := gr.PartStart; p < gr.PartEnd; p++ {
					state.GatherPartition(p, tid)
				}
				bar.WaitLeader(func() {
					performed++
					if res := state.MaxResidual(); o.Tolerance > 0 && res < o.Tolerance {
						stop = true
					}
				})
				if stop {
					return
				}
			}
		})
		o.Iterations = performed
	}
	wall := time.Since(wallStart)

	// Analytic model on the simulated machine.
	threadNode, threadShared := common.ThreadPlacement(pool, m)
	partThread := lookup.PartThread
	var slack float64
	if o.FCFS {
		partThread = common.ModelFCFSAssignment(hier, threads)
		slack = common.FCFSWorkingSetSlack
	}
	costs, barriers, err := common.BuildPartitionModel(common.PartitionModelSpec{
		Machine: m, Hier: hier, Lay: lay, Lookup: lookup,
		ThreadNode: threadNode, ThreadShared: threadShared,
		PartThread:      partThread,
		NUMAAware:       true,
		Iterations:      o.Iterations,
		WorkingSetSlack: slack,
	})
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}
	rep, err := perfmodel.Estimate(perfmodel.Run{
		Machine: m, Threads: costs,
		Barriers:       barriers,
		SchedCostNS:    schedStats.CostNS,
		EdgesProcessed: g.NumEdges() * int64(o.Iterations),
		Iterations:     o.Iterations,
	})
	if err != nil {
		return nil, fmt.Errorf("hipa: %w", err)
	}

	return &common.Result{
		Engine:      "HiPa",
		Ranks:       state.Ranks,
		Iterations:  o.Iterations,
		Threads:     threads,
		WallSeconds: wall.Seconds(),
		PrepSeconds: prep.Seconds(),
		Model:       rep,
		Sched:       schedStats,
	}, nil
}
