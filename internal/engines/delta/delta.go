// Package delta implements Delta-PR: the delta-propagation PageRank of
// algorithms.PageRankDelta promoted to a registered engine on HiPa's
// partitioned substrate. Each iteration propagates only the rank *changes*
// (deltas) of vertices whose |delta| exceeds a gate derived from the
// tolerance, over the same hierarchical partitioning, compressed inter-edge
// messages, and pinned persistent threads as HiPa (the artifacts are
// byte-identical and share prep-cache payloads).
//
// The engine maintains a vertex-granular frontier: a vertex is active while
// its gated send value is non-zero, and a partition whose active count is
// zero is skipped by the scatter phase entirely. The gather phase stays
// dense — it decodes the (mostly zero) message bins, applies the delta
// recurrence, and regates every vertex — which keeps every fold
// per-partition and in partition order, so results are bit-deterministic at
// any thread count for a given partitioning.
//
// Delta-PR is the warm-start engine of versioned graphs: given
// Options.Warm it resumes from a previous version's converged ranks, and
// when the WarmStart carries the graph delta it seeds the frontier sparsely
// from the perturbed vertices alone — the first superstep then computes
// exactly P_new(w) − P_old(w) per vertex (the operator difference under the
// old ranks) and the change propagates outward only as far as it remains
// above the gate.
package delta

import (
	"fmt"
	"time"

	"hipa/internal/engines/common"
	"hipa/internal/engines/hipa"
	"hipa/internal/graph"
	"hipa/internal/layout"
	"hipa/internal/partition"
	"hipa/internal/platform"
)

// Name is the engine's registry name.
const Name = "Delta-PR"

// DefaultTolerance is the convergence threshold used when Options.Tolerance
// is zero. Delta propagation without a gate degenerates to dense PageRank,
// so like the other frontier-aware engines a zero tolerance selects a
// default instead of disabling convergence; runs still stop at
// Options.Iterations regardless.
const DefaultTolerance = 1e-7

// epsDivisor derives the per-vertex propagation gate from the tolerance:
// eps = tol/16. The gate must sit well below the termination threshold so
// gating error never masquerades as convergence — deltas between eps and
// tol still propagate and show up in the residual.
const epsDivisor = 16

// Engine is the Delta-PR implementation of common.Engine.
type Engine struct{}

// Name implements common.Engine.
func (Engine) Name() string { return Name }

// Run executes delta-propagation PageRank: Prepare followed by Exec.
func (e Engine) Run(g *graph.Graph, o common.Options) (*common.Result, error) {
	return common.PrepareAndExec(e, g, o)
}

// Prepare builds the same node-level hierarchy and compressed layout as
// HiPa, stamped with this engine's name (the payload is shared through the
// prep cache).
func (Engine) Prepare(g *graph.Graph, o common.Options) (*common.Prepared, error) {
	return hipa.PrepareArtifact(Name, g, o)
}

// state is the mutable execution state of one Delta-PR Exec, drawn from the
// artifact's arena. send[v] is the gated outgoing delta contribution
// delta(v)·inv(v) — non-zero iff v is active — and partCounts[p] is the
// number of active vertices in partition p, maintained by the gather phase
// and consulted by the scatter phase to skip quiescent partitions.
type state struct {
	g    *graph.Graph
	hier *partition.Hierarchy
	lay  *layout.Layout
	inv  []float32

	ranks []float32
	acc   []float32
	send  []float32
	bins  []float32

	partRes    []float32
	partDang   []float64
	partIters  []int32
	partCounts []int32

	damping float64
	d       float32 // float32 damping for the hot loop
	base    float32 // (1-d)/n
	eps     float32 // propagation gate
	redis   float32 // d·danglingDelta/n, set by reduce
	first   bool    // first superstep: apply the base−rank correction
	correct bool    // whether the first superstep applies that correction

	lastDangling float64
	totalVerts   int64
	activeVerts  int64

	iterations      int
	activePartIters int64
	activeVertIters int64
	skipped         int64
}

// scatterPartition streams partition p's active sends: intra-edges add into
// the local accumulators, inter-edges write the compressed message bins.
// Bins were zeroed by the gather that consumed them, so only non-zero sends
// need writing; a partition with no active vertex is skipped by the caller.
func (s *state) scatterPartition(p int) {
	part := s.hier.Partitions[p]
	send := s.send
	acc := s.acc
	lay := s.lay
	intraOff := lay.IntraOff
	for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
		c := send[v]
		if c == 0 {
			continue
		}
		lo, hi := intraOff[v], intraOff[v+1]
		dst := lay.IntraDst[lo:hi:hi]
		for _, d := range dst {
			acc[d] += c
		}
	}
	for bi := lay.SrcBlockStart[p]; bi < lay.SrcBlockEnd[p]; bi++ {
		b := lay.Blocks[bi]
		src := lay.MsgSrc[b.MsgStart:b.MsgEnd:b.MsgEnd]
		bins := s.bins[b.MsgStart:b.MsgEnd:b.MsgEnd]
		for i, u := range src {
			if c := send[u]; c != 0 {
				bins[i] = c
			}
		}
	}
}

// gatherPartition decodes the messages targeting p (consuming each bin back
// to zero), applies the delta recurrence to p's vertices, and regates them:
//
//	nd(v)   = d·acc(v) + redis  (+ base − rank(v) on the first superstep)
//	rank(v) += nd(v)
//	send(v) = nd(v)·inv(v) if |nd(v)| > eps, else 0
//
// folding p's new dangling delta, residual, and active count into the
// per-partition arrays — every fold is partition-local, so thread count
// never perturbs an order.
func (s *state) gatherPartition(p int) {
	acc := s.acc
	lay := s.lay
	for _, bi := range lay.DstBlocks[p] {
		b := lay.Blocks[bi]
		bins := s.bins[b.MsgStart:b.MsgEnd:b.MsgEnd]
		msgOff := lay.MsgDstOff[b.MsgStart : b.MsgEnd+1 : b.MsgEnd+1]
		for i, val := range bins {
			if val == 0 {
				continue
			}
			bins[i] = 0
			lo, hi := msgOff[i], msgOff[i+1]
			dst := lay.MsgDst[lo:hi:hi]
			for _, d := range dst {
				acc[d] += val
			}
		}
	}

	part := s.hier.Partitions[p]
	ranks, send, inv := s.ranks, s.send, s.inv
	d, base, redis, eps := s.d, s.base, s.redis, s.eps
	first := s.first && s.correct
	var res float64
	var dangling float64
	var active int32
	for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
		nd := d*acc[v] + redis
		if first {
			// First superstep of a cold or dense-warm run: delta_0 is the
			// full starting rank, so the recurrence swaps the starting mass
			// for the stationary base term (algorithms.PageRankDelta's
			// it==0 correction, per-vertex so warm starts are exact).
			nd += base - ranks[v]
		}
		acc[v] = 0
		ranks[v] += nd
		ad := float64(nd)
		if ad < 0 {
			ad = -ad
		}
		if ad > res {
			res = ad
		}
		if inv[v] == 0 {
			dangling += float64(nd)
			send[v] = 0
			continue
		}
		if float32(ad) > eps {
			send[v] = nd * inv[v]
			active++
		} else {
			send[v] = 0
		}
	}
	s.partRes[p] = float32(res)
	s.partDang[p] = dangling
	s.partCounts[p] = active
	s.partIters[p]++
}

// reduce folds the per-partition dangling deltas in partition order into
// the redistribution term — the fold never depends on thread count.
func (s *state) reduce() {
	var sum float64
	for p := range s.partDang {
		sum += s.partDang[p]
	}
	s.lastDangling = sum
	if n := s.g.NumVertices(); n > 0 {
		s.redis = float32(s.damping * sum / float64(n))
	}
}

// residual returns the max per-partition |delta| of the last gather.
func (s *state) residual() float64 {
	var max float64
	for p := range s.partRes {
		if r := float64(s.partRes[p]); r > max {
			max = r
		}
	}
	return max
}

func (s *state) danglingMass() float64 { return s.lastDangling }

// startIteration marks the first superstep (for the correction term) and
// accrues the frontier-effectiveness counters for the iteration about to
// run.
func (s *state) startIteration(it int) {
	s.first = it == 0
	s.iterations++
	var parts int
	for p := range s.partCounts {
		if s.partCounts[p] > 0 {
			parts++
		}
	}
	s.activePartIters += int64(parts)
	s.activeVertIters += s.activeVerts
	s.skipped += int64(len(s.partCounts) - parts)
}

// Stats implements common.Frontier.
func (s *state) Stats() common.FrontierStats {
	var parts int
	for p := range s.partCounts {
		if s.partCounts[p] > 0 {
			parts++
		}
	}
	return common.FrontierStats{
		ActivePartitions: parts,
		TotalPartitions:  len(s.partCounts),
		ActiveVertices:   s.activeVerts,
		TotalVertices:    s.totalVerts,
	}
}

// Rebuild implements common.Frontier: recount the active set the last
// gather produced; the run is done when nothing is active and no dangling
// delta is pending redistribution (the pending mass sits in partDang and
// would feed the next iteration's redistribution term).
func (s *state) Rebuild(int) (common.FrontierStats, bool) {
	var verts int64
	for p := range s.partCounts {
		verts += int64(s.partCounts[p])
	}
	s.activeVerts = verts
	var pending float64
	for p := range s.partDang {
		pending += s.partDang[p]
	}
	st := s.Stats()
	return st, verts == 0 && pending == 0
}

// report summarises the run's frontier effectiveness.
func (s *state) report() *common.FrontierReport {
	return &common.FrontierReport{
		TotalPartitions:           len(s.partCounts),
		TotalVertices:             s.totalVerts,
		IterationsExecuted:        s.iterations,
		ActivePartitionIterations: s.activePartIters,
		ActiveVertexIterations:    s.activeVertIters,
		PartitionsSkipped:         s.skipped,
	}
}

// deltaPhase walks one thread's pinned partition group through a phase —
// scatter skips quiescent partitions, gather is dense.
type deltaPhase struct {
	s      *state
	groups []partition.Group
	gather bool
}

func (g *deltaPhase) run(tid int) {
	s := g.s
	gr := g.groups[tid]
	for p := gr.PartStart; p < gr.PartEnd; p++ {
		if g.gather {
			s.gatherPartition(p)
		} else if s.partCounts[p] > 0 {
			s.scatterPartition(p)
		}
	}
}

// seedCold gates the uniform initial mass as delta_0 = 1/n for every vertex
// and seeds the per-partition dangling masses — the engine's cold start,
// also used (with ranks = w) for a dense warm start without a graph delta.
func (s *state) seedCold() {
	for p := range s.hier.Partitions {
		part := s.hier.Partitions[p]
		var dangling float64
		var active int32
		for v := int(part.VertexStart); v < int(part.VertexEnd); v++ {
			dv := s.ranks[v]
			if s.inv[v] == 0 {
				dangling += float64(dv)
				s.send[v] = 0
				continue
			}
			ad := dv
			if ad < 0 {
				ad = -ad
			}
			if ad > s.eps {
				s.send[v] = dv * s.inv[v]
				active++
			} else {
				s.send[v] = 0
			}
		}
		s.partDang[p] = dangling
		s.partCounts[p] = active
	}
	s.correct = true
}

// seedWarmDelta seeds the sparse incremental frontier from a graph delta:
// the accumulators are pre-loaded serially with the operator difference
//
//	Σ_{u→v new} w(u)·inv_new(u) − Σ_{u→v old} w(u)·inv_old(u)
//
// over the mutated sources only, and the dangling seed is the dangling-mass
// shift of sources whose dangling status flipped. The first gather then
// computes nd_1(v) = P_new(w)(v) − P_old(w)(v) exactly; since w is the old
// version's converged fixpoint, P_old(w) ≈ w within that run's residual,
// and the change propagates outward from the perturbed vertices alone.
func (s *state) seedWarmDelta(d *graph.Delta, w []float32) {
	var danglingSeed float64
	for _, u := range d.Touched {
		wu := w[u]
		newDeg := s.g.OutDegree(u)
		oldDeg := d.Prev.OutDegree(u)
		if newDeg > 0 {
			c := wu * s.inv[u]
			for _, v := range s.g.OutNeighbors(u) {
				s.acc[v] += c
			}
		}
		if oldDeg > 0 {
			c := wu * float32(1.0/float64(oldDeg))
			for _, v := range d.Prev.OutNeighbors(u) {
				s.acc[v] -= c
			}
		}
		switch {
		case oldDeg > 0 && newDeg == 0:
			danglingSeed += float64(wu)
		case oldDeg == 0 && newDeg > 0:
			danglingSeed -= float64(wu)
		}
	}
	// The first reduce folds partDang as usual; the seed rides in slot 0
	// (gather overwrites every slot afterwards).
	s.partDang[0] = danglingSeed
	s.correct = false
	// Nothing scatters in superstep 0 — the seed already sits in the
	// accumulators — but the perturbed vertices count as active so the
	// frontier statistics reflect the seeded work.
	for _, v := range d.Perturbed {
		s.partCounts[s.hier.PartitionOfVertex(v)]++
	}
	s.activeVerts = int64(len(d.Perturbed))
}

// Exec runs the delta-propagation iterative phase against a Prepared
// artifact. Safe for concurrent calls sharing one artifact.
func (Engine) Exec(prep *common.Prepared, o common.Options) (*common.Result, error) {
	if err := prep.CheckExec(Name, common.PrepPartition); err != nil {
		return nil, err
	}
	o = o.ResolveMachine(prep.Machine())
	m := o.Machine
	if o.PartitionBytes == 0 {
		o.PartitionBytes = prep.Key().PartitionBytes
	}
	o = o.WithDefaults(m.LogicalCores())
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.FCFS {
		return nil, fmt.Errorf("delta: FCFS scheduling is not supported — frontier maintenance relies on the pinned thread-data mapping")
	}
	if o.PartitionBytes != prep.Key().PartitionBytes {
		return nil, fmt.Errorf("delta: artifact was prepared with %dB partitions, not %dB", prep.Key().PartitionBytes, o.PartitionBytes)
	}
	if !o.NoCompress != prep.Key().Compress {
		return nil, fmt.Errorf("delta: artifact compression does not match NoCompress=%v", o.NoCompress)
	}
	if o.VertexBalanced != prep.Key().VertexBalanced {
		return nil, fmt.Errorf("delta: artifact was prepared with VertexBalanced=%v", prep.Key().VertexBalanced)
	}
	if m.NUMANodes != prep.Key().Nodes {
		return nil, fmt.Errorf("delta: artifact was prepared for %d NUMA nodes, machine has %d", prep.Key().Nodes, m.NUMANodes)
	}
	tol := o.Tolerance
	if tol == 0 {
		tol = DefaultTolerance
	}
	g := prep.Graph()
	n := g.NumVertices()
	if o.Warm != nil {
		if len(o.Warm.Ranks) != n {
			return nil, fmt.Errorf("delta: warm-start ranks have %d entries, graph has %d vertices", len(o.Warm.Ranks), n)
		}
		if d := o.Warm.Delta; d != nil {
			if d.Next != g && d.Fingerprint != prep.Key().GraphFP {
				return nil, fmt.Errorf("delta: warm-start delta ends at a graph that does not match this artifact")
			}
			if d.Prev == nil {
				return nil, fmt.Errorf("delta: warm-start delta carries no previous graph")
			}
		}
	}

	nodes := m.NUMANodes
	threads, groupsPerNode := hipa.RoundThreads(o.Threads, nodes)
	if threads > m.LogicalCores() {
		return nil, fmt.Errorf("delta: %d threads exceed the machine's %d logical cores", threads, m.LogicalCores())
	}

	rec := o.Obs
	tr := rec.T()
	common.RecordGraphCounters(rec.C(), n, g.NumEdges())
	if threads != o.Threads {
		rec.C().Set("hipa.threads.requested", float64(o.Threads))
		rec.C().Set("hipa.threads.effective", float64(threads))
	}

	hier := partition.Regroup(prep.Partition().Hier, groupsPerNode)
	lookup := partition.BuildLookup(hier)
	rec.C().Add("partition.groups", int64(len(hier.Groups)))

	pf := o.Platform
	pool, err := pf.SpawnPinned(o.SchedSeed, threads)
	if err != nil {
		return nil, fmt.Errorf("delta: %w", err)
	}
	pool.SetLanes(tr)

	arena := prep.AcquireArena()
	defer prep.ReleaseArena(arena)
	lay := prep.Partition().Lay
	P := hier.NumPartitions()
	s := &state{
		g: g, hier: hier, lay: lay,
		inv:        prep.Partition().Inv,
		ranks:      arena.Ranks(n),
		acc:        arena.Acc(n),
		send:       arena.Contrib(n),
		bins:       arena.Bins(int(lay.NumMessages())),
		partRes:    arena.PartResiduals(P),
		partDang:   arena.PartDangling(P),
		partIters:  arena.PartIters(P),
		partCounts: arena.PartCounts(P),
		damping:    o.Damping,
		d:          float32(o.Damping),
		base:       float32((1 - o.Damping) / float64(n)),
		eps:        float32(tol / epsDivisor),
		totalVerts: int64(n),
	}
	switch {
	case o.Warm == nil:
		common.FillInitRanks(s.ranks)
		s.seedCold()
		s.activeVerts = s.totalVerts
	case o.Warm.Delta == nil:
		copy(s.ranks, o.Warm.Ranks)
		s.seedCold()
		s.activeVerts = s.totalVerts
	default:
		copy(s.ranks, o.Warm.Ranks)
		clear(s.send)
		s.seedWarmDelta(o.Warm.Delta, o.Warm.Ranks)
	}

	scatter := &deltaPhase{s: s, groups: hier.Groups}
	gather := &deltaPhase{s: s, groups: hier.Groups, gather: true}
	kernels := common.PhaseKernels{
		StartIteration: s.startIteration,
		Scatter:        scatter.run,
		Reduce:         s.reduce,
		Gather:         gather.run,
		Residual:       s.residual,
		DanglingMass:   s.danglingMass,
	}
	stopRun := rec.C().Phase(common.PhaseRun)
	wallStart := time.Now()
	o.Iterations = common.RunSupersteps(common.SuperstepConfig{
		Engine:      Name,
		Threads:     threads,
		Parallelism: o.GoParallelism,
		Iterations:  o.Iterations,
		Tolerance:   tol,
		Frontier:    s,
		Rec:         rec,
	}, kernels)
	wall := time.Since(wallStart)
	stopRun()

	report := s.report()
	rec.C().Add("frontier.partitions_skipped", report.PartitionsSkipped)
	rec.C().Set("frontier.active_fraction", report.ActiveFraction())

	acct := pf.NewAccounting(pool)
	if pf.Modeled() {
		if err := acct.AddPartitionRun(platform.PartitionRun{
			Hier: hier, Lay: lay, Lookup: lookup,
			PartThread: lookup.PartThread,
			NUMAAware:  true,
			Iterations: o.Iterations,
			PartIters:  s.partIters,
		}); err != nil {
			return nil, fmt.Errorf("delta: %w", err)
		}
	}
	rep, err := pf.Finalize(acct, platform.RunShape{
		Iterations:     o.Iterations,
		EdgesProcessed: g.NumEdges() * int64(o.Iterations),
	})
	if err != nil {
		return nil, fmt.Errorf("delta: %w", err)
	}

	ranks := make([]float32, n)
	copy(ranks, s.ranks)
	res := &common.Result{
		Engine:           Name,
		Ranks:            ranks,
		Iterations:       o.Iterations,
		Threads:          threads,
		WallSeconds:      wall.Seconds(),
		PrepSeconds:      prep.PrepSeconds,
		PrepBuildSeconds: prep.BuildSeconds,
		PrepFromCache:    prep.FromCache,
		Model:            rep,
		Sched:            pool.Stats,
		Frontier:         report,
	}
	common.FinishRun(rec, res, m, true)
	return res, nil
}
