// Package serve is the long-running PageRank service behind cmd/hipaserve:
// a registry of graphs loaded from a config, each held hot as a
// common.Prepared artifact, queried for ranks / top-k / neighborhoods under
// real concurrency, and mutated in place through graceful reloads.
//
// The serving concurrency model has three layers:
//
//   - Every graph serves from an immutable *snapshot* (graph version +
//     Prepared artifact + lazily computed rank vector) published through an
//     atomic pointer. Queries load the pointer once and work against that
//     snapshot for their whole lifetime, so a reload never changes data
//     under a running request.
//   - Rank computation is a per-snapshot singleflight: identical in-flight
//     recomputes coalesce into one Exec (the prep cache's coalescing,
//     generalized to the iterative phase). The first caller runs the
//     engine; everyone who arrives while it runs waits for the same result.
//   - Actual Execs pass through a process-wide semaphore sized to the
//     machine (default GOMAXPROCS), bounding how many execbuf arenas are in
//     flight at once — a traffic burst queues instead of allocating
//     O(V)-sized scratch per request.
//
// Reload (POST /v1/admin/reload) applies a mutation stream through
// graph.Versioned, patches the artifact forward with Prepared.Advance
// (bit-identical to a cold Prepare; cold rebuild as fallback), re-ranks
// warm from the previous snapshot's converged ranks, and atomically swaps
// the new snapshot in. In-flight queries on the old snapshot complete
// untouched.
package serve

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hipa/internal/engines/bppr"
	"hipa/internal/engines/common"
	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/harness"
	"hipa/internal/machine"
	"hipa/internal/obs"
	"hipa/internal/platform"
)

// Defaults for Config zero fields.
const (
	// DefaultIterations caps a serving Exec; with the default tolerance the
	// engines converge long before the cap on every catalog graph.
	DefaultIterations = 100
	// DefaultTolerance is the serving convergence tolerance. Serving wants
	// "converged", not the paper's fixed-20-iterations timing methodology;
	// warm reload re-ranks finish in a handful of iterations at this
	// setting.
	DefaultTolerance = 1e-7
	// DefaultPrepCacheCapacity bounds the shared artifact cache.
	DefaultPrepCacheCapacity = 16
	// DefaultPreset is the machine preset whose topology drives
	// partitioning decisions.
	DefaultPreset = "skylake"
	// DefaultEngine serves with HiPa — the paper's engine, and one of the
	// two that support warm restarts after a reload.
	DefaultEngine = "hipa"
)

// GraphSpec names one graph of the serving registry: either a binary HGR1
// file (Path) or a generated catalog analog (Dataset + Divisor).
type GraphSpec struct {
	// Name is the registry key queries address the graph by.
	Name string `json:"name"`
	// Path is a binary HGR1 graph file to load.
	Path string `json:"path,omitempty"`
	// Dataset generates a catalog analog instead of loading a file
	// (journal, pld, wiki, kron, twitter, mpi).
	Dataset string `json:"dataset,omitempty"`
	// Divisor scales the generated dataset and the machine the options are
	// derived from; 0 means 1 for Path graphs and gen.DefaultDivisor for
	// Dataset graphs.
	Divisor int `json:"divisor,omitempty"`
}

// Config is the hipaserve configuration, loadable from JSON.
type Config struct {
	// Listen is the HTTP listen address (cmd/hipaserve's concern; the
	// Service itself only builds the handler).
	Listen string `json:"listen,omitempty"`
	// Engine picks the serving engine by harness name or alias; engines
	// that cannot warm-start re-rank cold after reloads. Default "hipa".
	Engine string `json:"engine,omitempty"`
	// Preset is the machine preset partitioning geometry derives from.
	Preset string `json:"preset,omitempty"`
	// Iterations caps each Exec (default DefaultIterations).
	Iterations int `json:"iterations,omitempty"`
	// Damping is the PageRank damping factor (default 0.85).
	Damping float64 `json:"damping,omitempty"`
	// Tolerance is the convergence tolerance (default DefaultTolerance).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Threads is the per-Exec worker count (default GOMAXPROCS — serving
	// runs on the real machine, not the simulated one).
	Threads int `json:"threads,omitempty"`
	// MaxConcurrentExecs bounds Execs in flight across all graphs (default
	// GOMAXPROCS). Queued Execs wait; their wait time is observed on
	// hipa_serve_exec_wait_seconds.
	MaxConcurrentExecs int `json:"max_concurrent_execs,omitempty"`
	// BatchMaxSize flushes a /v1/ppr batch at this width (default
	// DefaultBatchMaxSize, clamped to bppr.MaxBatch).
	BatchMaxSize int `json:"batch_max_size,omitempty"`
	// BatchFlushMs is the /v1/ppr flush deadline in milliseconds: how long
	// the first request of a batch waits for batch-mates (default
	// DefaultBatchFlushMs).
	BatchFlushMs int `json:"batch_flush_ms,omitempty"`
	// BatchQueueDepth bounds queued /v1/ppr requests per graph; a full queue
	// rejects with 503 (default DefaultBatchQueueDepth).
	BatchQueueDepth int `json:"batch_queue_depth,omitempty"`
	// PrepCacheCapacity bounds the shared preprocessing-artifact cache.
	PrepCacheCapacity int `json:"prep_cache_capacity,omitempty"`
	// Graphs is the serving registry. At least one entry is required.
	Graphs []GraphSpec `json:"graphs"`
	// Registry receives the serving metrics (obs.Default() when nil).
	// Injected by tests; not part of the JSON config.
	Registry *obs.Registry `json:"-"`
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Engine == "" {
		c.Engine = DefaultEngine
	}
	if c.Preset == "" {
		c.Preset = DefaultPreset
	}
	if c.Iterations == 0 {
		c.Iterations = DefaultIterations
	}
	if c.Damping == 0 {
		c.Damping = common.DefaultDamping
	}
	if c.Tolerance == 0 {
		c.Tolerance = DefaultTolerance
	}
	if c.Threads == 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.MaxConcurrentExecs == 0 {
		c.MaxConcurrentExecs = runtime.GOMAXPROCS(0)
	}
	if c.PrepCacheCapacity == 0 {
		c.PrepCacheCapacity = DefaultPrepCacheCapacity
	}
	if c.BatchMaxSize == 0 {
		c.BatchMaxSize = DefaultBatchMaxSize
	}
	if c.BatchMaxSize > bppr.MaxBatch {
		c.BatchMaxSize = bppr.MaxBatch
	}
	if c.BatchFlushMs == 0 {
		c.BatchFlushMs = DefaultBatchFlushMs
	}
	if c.BatchQueueDepth == 0 {
		c.BatchQueueDepth = DefaultBatchQueueDepth
	}
	return c
}

// Service is the serving core: the graph registry, the engine, the Exec
// semaphore, and the metrics. Build with New, mount Handler on a server.
type Service struct {
	cfg    Config
	engine common.Engine
	prep   *common.PrepCache
	sem    chan struct{}

	// done stops the per-graph batching collectors; closed by Close.
	done      chan struct{}
	closeOnce sync.Once

	mu     sync.Mutex
	order  []string // registry listing order = config order
	graphs map[string]*servingGraph

	metrics *serveMetrics
	started time.Time
}

// Close stops the service's background goroutines (the /v1/ppr batching
// collectors); pending queued requests fail with an error. Safe to call more
// than once. The HTTP server's lifecycle is the caller's concern.
func (s *Service) Close() {
	s.closeOnce.Do(func() { close(s.done) })
}

// servingGraph is one registry entry: a versioned graph and the atomically
// swapped serving snapshot. Reloads are serialized per graph.
type servingGraph struct {
	name string
	spec GraphSpec
	opts common.Options
	vg   *graph.Versioned
	cur  atomic.Pointer[snapshot]

	// pprCh feeds the graph's /v1/ppr batching collector, started on first
	// use by pprOnce (see queue.go).
	pprCh   chan *pprReq
	pprOnce sync.Once

	reloadMu sync.Mutex
	reloads  atomic.Int64
}

// snapshot is an immutable serving state: one graph version, its Prepared
// artifact, and the (lazily computed, singleflight-coalesced) rank vector.
// Only the rank cache behind mu mutates after publication.
type snapshot struct {
	ver  graph.Version
	g    *graph.Graph
	prep *common.Prepared
	// warmRanks/warmDelta seed this snapshot's Exec from the previous
	// version's converged ranks (nil = cold start). Only set when the
	// engine supports warm starts.
	warmRanks []float32
	warmDelta *graph.Delta

	mu     sync.Mutex
	ranks  *rankResult
	flight *rankFlight

	// pprPrep is the B-PPR artifact of this snapshot's version, built at
	// most once on first /v1/ppr demand (see queue.go).
	pprOnce sync.Once
	pprPrep *common.Prepared
	pprErr  error
}

// rankResult is one completed Exec's outcome, shared by every request that
// hit the cache or coalesced onto the run.
type rankResult struct {
	Ranks      []float32
	Iterations int
	Seconds    float64
}

// rankFlight is an in-progress Exec other callers can join.
type rankFlight struct {
	done chan struct{}
	res  *rankResult
	err  error
}

// New builds the service: loads or generates every configured graph,
// prepares its artifact (hot from the first request), and wires the
// metrics. Rank vectors are computed on first demand.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Graphs) == 0 {
		return nil, fmt.Errorf("serve: config lists no graphs")
	}
	eng, err := harness.EngineByName(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	s := &Service{
		cfg:     cfg,
		engine:  eng,
		prep:    common.NewPrepCache(cfg.PrepCacheCapacity),
		sem:     make(chan struct{}, cfg.MaxConcurrentExecs),
		done:    make(chan struct{}),
		graphs:  map[string]*servingGraph{},
		metrics: newServeMetrics(reg),
		started: time.Now(),
	}
	s.prep.Instrument(reg)
	for _, spec := range cfg.Graphs {
		if spec.Name == "" {
			return nil, fmt.Errorf("serve: graph spec without a name")
		}
		if _, dup := s.graphs[spec.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate graph name %q", spec.Name)
		}
		sg, err := s.loadGraph(spec)
		if err != nil {
			return nil, fmt.Errorf("serve: graph %q: %w", spec.Name, err)
		}
		s.graphs[spec.Name] = sg
		s.order = append(s.order, spec.Name)
		s.metrics.version(spec.Name).Set(float64(sg.cur.Load().ver))
	}
	return s, nil
}

// loadGraph materializes one GraphSpec into a serving entry with a prepared
// artifact.
func (s *Service) loadGraph(spec GraphSpec) (*servingGraph, error) {
	var (
		g   *graph.Graph
		err error
	)
	divisor := spec.Divisor
	switch {
	case spec.Path != "" && spec.Dataset != "":
		return nil, fmt.Errorf("spec has both path and dataset")
	case spec.Path != "":
		if divisor == 0 {
			divisor = 1
		}
		g, err = graph.LoadBinary(spec.Path)
	case spec.Dataset != "":
		if divisor == 0 {
			divisor = gen.DefaultDivisor
		}
		g, err = gen.GenerateByName(spec.Dataset, divisor)
	default:
		return nil, fmt.Errorf("spec needs a path or a dataset")
	}
	if err != nil {
		return nil, err
	}
	mk, ok := machine.Presets[s.cfg.Preset]
	if !ok {
		return nil, fmt.Errorf("unknown machine preset %q", s.cfg.Preset)
	}
	m := machine.Scaled(mk(), divisor)
	opts := common.Options{
		Machine:    m,
		Platform:   platform.NewNative(m), // serving is real wall-clock, not simulation
		Iterations: s.cfg.Iterations,
		Damping:    s.cfg.Damping,
		Tolerance:  s.cfg.Tolerance,
		Threads:    s.cfg.Threads,
		PrepCache:  s.prep,
	}
	prep, err := s.engine.Prepare(g, opts)
	if err != nil {
		return nil, err
	}
	sg := &servingGraph{
		name: spec.Name, spec: spec, opts: opts, vg: graph.NewVersioned(g),
		pprCh: make(chan *pprReq, s.cfg.BatchQueueDepth),
	}
	sg.cur.Store(&snapshot{ver: sg.vg.Version(), g: g, prep: prep})
	return sg, nil
}

// EngineName reports the serving engine's registry name.
func (s *Service) EngineName() string { return s.engine.Name() }

// graph resolves a registry entry by name.
func (s *Service) graph(name string) (*servingGraph, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sg, ok := s.graphs[name]
	if !ok {
		return nil, fmt.Errorf("unknown graph %q", name)
	}
	return sg, nil
}

// graphNames returns the registry names in config order.
func (s *Service) graphNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// warmable reports whether the serving engine accepts Options.Warm (HiPa
// dense restart, Delta-PR sparse); the others reject warm starts loudly and
// re-rank cold after reloads.
func (s *Service) warmable() bool {
	switch s.engine.Name() {
	case "HiPa", "Delta-PR":
		return true
	}
	return false
}

// ranksFor returns snap's rank vector, computing it at most once per
// concurrent wave: the caller either hits the snapshot cache, joins an
// in-flight Exec (coalesced), or runs the Exec itself under the process
// semaphore. recompute bypasses the cache but still coalesces with any
// run already in flight — N identical concurrent recomputes execute once.
func (s *Service) ranksFor(sg *servingGraph, snap *snapshot, recompute bool) (*rankResult, error) {
	snap.mu.Lock()
	if snap.ranks != nil && !recompute {
		res := snap.ranks
		snap.mu.Unlock()
		s.metrics.rankCacheHits(sg.name).Inc()
		return res, nil
	}
	if fl := snap.flight; fl != nil {
		snap.mu.Unlock()
		s.metrics.execCoalesced(sg.name).Inc()
		<-fl.done
		return fl.res, fl.err
	}
	fl := &rankFlight{done: make(chan struct{})}
	snap.flight = fl
	snap.mu.Unlock()

	res, err := s.execSnapshot(sg, snap)

	snap.mu.Lock()
	snap.flight = nil
	if err == nil {
		snap.ranks = res
	}
	snap.mu.Unlock()
	fl.res, fl.err = res, err
	close(fl.done)
	return res, err
}

// execSnapshot runs one engine Exec for snap under the concurrency
// semaphore, warm-seeded when the snapshot carries a previous version's
// ranks and the engine supports it.
func (s *Service) execSnapshot(sg *servingGraph, snap *snapshot) (*rankResult, error) {
	wait := time.Now()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	s.metrics.execWait.Observe(time.Since(wait).Seconds())

	o := sg.opts
	if snap.warmRanks != nil && s.warmable() {
		o.Warm = &common.WarmStart{Ranks: snap.warmRanks, Delta: snap.warmDelta}
	}
	res, err := s.engine.Exec(snap.prep, o)
	if err != nil {
		return nil, err
	}
	s.metrics.execs(sg.name).Inc()
	return &rankResult{Ranks: res.Ranks, Iterations: res.Iterations, Seconds: res.WallSeconds}, nil
}

// ReloadReport summarizes one applied mutation stream.
type ReloadReport struct {
	Graph       string        `json:"graph"`
	FromVersion graph.Version `json:"from_version"`
	ToVersion   graph.Version `json:"to_version"`
	Batches     int           `json:"batches"`
	Inserted    int           `json:"inserted"`
	Deleted     int           `json:"deleted"`
	Perturbed   int           `json:"perturbed"`
	// Prep is "patched" when every batch advanced incrementally, "rebuilt"
	// when any step fell back to a cold build.
	Prep        string  `json:"prep"`
	PrepSeconds float64 `json:"prep_seconds"`
	// Iterations/ExecSeconds describe the eager warm re-rank (0 when the
	// old snapshot had no computed ranks — the new one stays lazy too).
	Iterations  int     `json:"iterations"`
	ExecSeconds float64 `json:"exec_seconds"`
	// Warm reports whether the re-rank was seeded from the previous
	// version's ranks.
	Warm bool `json:"warm"`
}

// Reload applies a mutation stream to the named graph and swaps the serving
// snapshot: each batch advances the versioned graph, the Prepared artifact
// is patched forward (cold rebuild on fallback), the new version is
// re-ranked warm from the previous snapshot's converged ranks, and the new
// snapshot is published atomically. In-flight queries keep the snapshot
// they started with; requests arriving after the swap see the new version.
// Reloads of one graph are serialized; different graphs reload in parallel.
func (s *Service) Reload(name string, r io.Reader) (*ReloadReport, error) {
	batches, err := graph.ReadMutationBatches(r)
	if err != nil {
		return nil, fmt.Errorf("mutation stream: %w", err)
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("mutation stream holds no batches (finish each batch with a 'commit' line)")
	}
	sg, err := s.graph(name)
	if err != nil {
		return nil, err
	}

	sg.reloadMu.Lock()
	defer sg.reloadMu.Unlock()
	start := time.Now()
	cur := sg.cur.Load()
	rep := &ReloadReport{Graph: name, FromVersion: cur.ver, Batches: len(batches), Prep: "patched"}
	prep := cur.prep
	incremental := true
	for i, b := range batches {
		from := sg.vg.Version()
		ver, err := sg.vg.ApplyBatch(b)
		if err != nil {
			// ApplyBatch validates before mutating, so the graph is
			// unchanged by the failing batch; earlier batches of this
			// request stay applied but unpublished — the serving snapshot
			// still points at the pre-reload version, and the next
			// successful reload folds them in.
			return nil, fmt.Errorf("batch %d: %w", i+1, err)
		}
		d, derr := sg.vg.DeltaBetween(from, ver)
		var np *common.Prepared
		if derr == nil {
			np, err = prep.Advance(d, sg.opts)
			rep.Inserted += d.Inserted
			rep.Deleted += d.Deleted
		}
		if derr != nil || err != nil {
			// Compaction invalidated the delta base, or the patch path
			// refused — rebuild cold at the new version.
			g, gerr := sg.vg.GraphAt(ver)
			if gerr != nil {
				return nil, fmt.Errorf("batch %d: %w", i+1, gerr)
			}
			if np, err = s.engine.Prepare(g, sg.opts); err != nil {
				return nil, fmt.Errorf("batch %d: cold rebuild: %w", i+1, err)
			}
			incremental = false
		} else if !np.Incremental {
			incremental = false
		}
		prep = np
	}
	if !incremental {
		rep.Prep = "rebuilt"
	}
	rep.ToVersion = sg.vg.Version()
	rep.PrepSeconds = time.Since(start).Seconds()

	next := &snapshot{ver: rep.ToVersion, g: prep.Graph(), prep: prep}
	cur.mu.Lock()
	prevRanks := cur.ranks
	cur.mu.Unlock()
	if prevRanks != nil && s.warmable() {
		next.warmRanks = prevRanks.Ranks
		// The combined delta seeds Delta-PR's sparse frontier; when it is
		// unavailable (compaction) the warm start is dense.
		if d, err := sg.vg.DeltaBetween(rep.FromVersion, rep.ToVersion); err == nil {
			next.warmDelta = d
		}
		rep.Perturbed = perturbedOf(next.warmDelta)
	}
	// Re-rank eagerly when the old snapshot was serving ranks, so the swap
	// never exposes a cold-start latency cliff to rank/topk traffic; a
	// never-queried graph stays lazy.
	if prevRanks != nil {
		res, err := s.ranksFor(sg, next, false)
		if err != nil {
			return nil, fmt.Errorf("re-rank at version %d: %w", rep.ToVersion, err)
		}
		rep.Iterations = res.Iterations
		rep.ExecSeconds = res.Seconds
		rep.Warm = next.warmRanks != nil
	}
	sg.cur.Store(next)
	sg.reloads.Add(1)
	s.metrics.reloads(name).Inc()
	s.metrics.version(name).Set(float64(rep.ToVersion))
	s.metrics.reloadSeconds.Observe(time.Since(start).Seconds())
	return rep, nil
}

func perturbedOf(d *graph.Delta) int {
	if d == nil {
		return 0
	}
	return len(d.Perturbed)
}

// topKOf selects the k highest-ranked vertices (ties broken by lower vertex
// ID) in O(V log k) with a small insertion-sorted tail — k is request-bound
// and tiny next to V.
func topKOf(ranks []float32, k int) []int32 {
	if k > len(ranks) {
		k = len(ranks)
	}
	if k <= 0 {
		return nil
	}
	top := make([]int32, 0, k)
	less := func(a, b int32) bool { // is a ranked below b
		if ranks[a] != ranks[b] {
			return ranks[a] < ranks[b]
		}
		return a > b
	}
	for v := range ranks {
		id := int32(v)
		if len(top) == k && !less(top[k-1], id) {
			continue
		}
		pos := sort.Search(len(top), func(i int) bool { return less(top[i], id) })
		if len(top) < k {
			top = append(top, 0)
		}
		copy(top[pos+1:], top[pos:len(top)-1])
		if pos < len(top) {
			top[pos] = id
		}
	}
	return top
}
