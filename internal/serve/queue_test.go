package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/obs"
)

type pprDoc struct {
	Graph      string        `json:"graph"`
	Version    graph.Version `json:"version"`
	Seeds      []int32       `json:"seeds"`
	K          int           `json:"k"`
	Batch      int           `json:"batch"`
	Iterations int           `json:"iterations"`
	Top        []struct {
		Vertex int32   `json:"vertex"`
		Rank   float64 `json:"rank"`
	} `json:"top"`
}

// TestPPRDeadlineFlush: a lone request must not wait for batch-mates beyond
// the flush deadline — it comes back as a width-1 batch.
func TestPPRDeadlineFlush(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(reg)
	cfg.BatchFlushMs = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var doc pprDoc
	if code := getJSON(t, srv.URL+"/v1/ppr?seeds=3&k=5", &doc); code != http.StatusOK {
		t.Fatalf("/v1/ppr = %d", code)
	}
	if doc.Graph != "wiki" || doc.Batch != 1 || doc.K != 5 || len(doc.Top) != 5 || doc.Iterations == 0 {
		t.Errorf("ppr doc = %+v", doc)
	}
	// Personalization sanity: the seed dominates its own restart vector.
	if doc.Top[0].Vertex != 3 {
		t.Errorf("seed 3 is not the top-ranked vertex: %+v", doc.Top)
	}
	if got := reg.Counter(MetricPPRBatches, "graph", "wiki").Value(); got != 1 {
		t.Errorf("batches = %d, want 1", got)
	}
	if got := reg.Counter(MetricPPRQueries, "graph", "wiki").Value(); got != 1 {
		t.Errorf("queries = %d, want 1", got)
	}
}

// TestPPRFullBatchFlush: with a flush deadline far beyond the test's
// patience, a burst of BatchMaxSize requests must flush on width alone, and
// every response must report the full batch width.
func TestPPRFullBatchFlush(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(reg)
	cfg.BatchMaxSize = 4
	cfg.BatchFlushMs = 60_000 // only a width-triggered flush can finish in time
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	docs := make([]pprDoc, 4)
	codes := make([]int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = getJSON(t, fmt.Sprintf("%s/v1/ppr?seeds=%d&k=3", srv.URL, i), &docs[i])
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("burst did not flush on batch width (deadline flush is 60s away)")
	}
	for i := range docs {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d = %d", i, codes[i])
		}
		if docs[i].Batch != 4 {
			t.Errorf("request %d served in a width-%d batch, want 4", i, docs[i].Batch)
		}
		if docs[i].Top[0].Vertex != int32(i) {
			t.Errorf("request %d: top vertex %d, want its seed %d", i, docs[i].Top[0].Vertex, i)
		}
	}
	if got := reg.Counter(MetricPPRBatches, "graph", "wiki").Value(); got != 1 {
		t.Errorf("batches = %d, want 1", got)
	}
}

// TestPPRQueueFullRejects: with the collector never started and a depth-1
// queue pre-filled, the endpoint must shed load with 503 instead of
// blocking.
func TestPPRQueueFullRejects(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(reg)
	cfg.BatchQueueDepth = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sg, err := s.graph("wiki")
	if err != nil {
		t.Fatal(err)
	}
	// Burn the collector's Once so nothing drains the queue, then fill it.
	sg.pprOnce.Do(func() {})
	if !s.enqueuePPR(sg, &pprReq{snap: sg.cur.Load(), k: 1, resp: make(chan pprResp, 1)}) {
		t.Fatal("first enqueue rejected on an empty depth-1 queue")
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if code := getJSON(t, srv.URL+"/v1/ppr?seeds=1", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("full queue = %d, want 503", code)
	}
	if got := reg.Counter(MetricPPRRejected, "graph", "wiki").Value(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
}

// TestPPRReloadMidBatchKeepsPinnedSnapshot: a request collected before a
// reload must be served on the snapshot it pinned at arrival, and a request
// arriving after the swap must flush the stale batch rather than join it.
func TestPPRReloadMidBatchKeepsPinnedSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(reg)
	cfg.BatchMaxSize = 8
	cfg.BatchFlushMs = 60_000 // batches only flush on width or snapshot change
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	sg, err := s.graph("wiki")
	if err != nil {
		t.Fatal(err)
	}

	var oldDoc pprDoc
	oldCode := 0
	oldDone := make(chan struct{})
	go func() {
		defer close(oldDone)
		oldCode = getJSON(t, srv.URL+"/v1/ppr?seeds=2&k=3", &oldDoc)
	}()
	// Wait until the collector holds the request in its open batch.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Counter(MetricPPRQueries, "graph", "wiki").Value() < 1 || len(sg.pprCh) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the collector")
		}
		time.Sleep(time.Millisecond)
	}

	mirror := graph.NewVersioned(sg.cur.Load().g)
	stream, err := gen.NewMutationStream(mirror, 42, 64)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/admin/reload?graph=wiki", "text/plain", reloadBody(t, mirror, stream))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d", resp.StatusCode)
	}

	// The newcomer pins version 1, which must flush the version-0 batch.
	var newDoc pprDoc
	newCode := 0
	newDone := make(chan struct{})
	go func() {
		defer close(newDone)
		newCode = getJSON(t, srv.URL+"/v1/ppr?seeds=5&k=3", &newDoc)
	}()
	select {
	case <-oldDone:
	case <-time.After(30 * time.Second):
		t.Fatal("pre-reload request was not flushed by the snapshot change")
	}
	if oldCode != http.StatusOK || oldDoc.Version != 0 || oldDoc.Batch != 1 {
		t.Fatalf("pre-reload request = %d %+v, want 200 on version 0 in a width-1 batch", oldCode, oldDoc)
	}

	// The new batch has no width or snapshot trigger left; a burst of
	// batch-mates on the new snapshot fills it to the flush width.
	var wg sync.WaitGroup
	for i := 0; i < 7; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			getJSON(t, fmt.Sprintf("%s/v1/ppr?seeds=%d", srv.URL, 10+i), nil)
		}(i)
	}
	wg.Wait()
	<-newDone
	if newCode != http.StatusOK || newDoc.Version != 1 {
		t.Fatalf("post-reload request = %d version %d, want 200 on version 1", newCode, newDoc.Version)
	}
}

// TestPPRValidationAndErrors: malformed queries must be rejected before they
// can poison a batch.
func TestPPRValidationAndErrors(t *testing.T) {
	s := newTestService(t, nil)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/v1/ppr?graph=nope", http.StatusNotFound},
		{"/v1/ppr?seeds=abc", http.StatusBadRequest},
		{"/v1/ppr?seeds=1,1", http.StatusBadRequest},
		{"/v1/ppr?seeds=-1", http.StatusBadRequest},
		{"/v1/ppr?seeds=99999999", http.StatusBadRequest},
		{"/v1/ppr?seeds=1&k=0", http.StatusBadRequest},
		{"/v1/ppr?seeds=1&k=x", http.StatusBadRequest},
	} {
		if code := getJSON(t, srv.URL+tc.url, nil); code != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.url, code, tc.want)
		}
	}
	if resp, err := http.Post(srv.URL+"/v1/ppr?seeds=1", "text/plain", nil); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /v1/ppr = %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestPPRUnderReloadHammer drives concurrent personalized queries while
// reloads swap the snapshot underneath: every accepted query must complete,
// accounting must balance, and (with -race) the queue must be data-race
// free.
func TestPPRUnderReloadHammer(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(reg)
	cfg.BatchMaxSize = 4
	cfg.BatchFlushMs = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	sg, err := s.graph("wiki")
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker, reloads = 4, 12, 3
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var doc pprDoc
				url := fmt.Sprintf("%s/v1/ppr?seeds=%d&k=2", srv.URL, (w*perWorker+i)%50)
				if code := getJSON(t, url, &doc); code != http.StatusOK {
					errs <- fmt.Sprintf("%s = %d", url, code)
				} else if doc.Batch < 1 || doc.Iterations < 1 {
					errs <- fmt.Sprintf("%s: bad doc %+v", url, doc)
				}
			}
		}(w)
	}
	mirror := graph.NewVersioned(sg.cur.Load().g)
	stream, err := gen.NewMutationStream(mirror, 7, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reloads; i++ {
		resp, err := http.Post(srv.URL+"/v1/admin/reload", "text/plain", reloadBody(t, mirror, stream))
		if err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d = %d", i, resp.StatusCode)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	queries := reg.Counter(MetricPPRQueries, "graph", "wiki").Value()
	batches := reg.Counter(MetricPPRBatches, "graph", "wiki").Value()
	if queries != workers*perWorker {
		t.Errorf("query counter = %d, want %d", queries, workers*perWorker)
	}
	if batches < 1 || batches > queries {
		t.Errorf("batch counter = %d for %d queries", batches, queries)
	}
}
