package serve

import (
	"fmt"
	"time"

	"hipa/internal/engines/bppr"
	"hipa/internal/engines/common"
	"hipa/internal/graph"
)

// The /v1/ppr endpoint batches personalized-PageRank queries: requests
// enqueue on a bounded per-graph channel, a per-graph collector goroutine
// (started on first use) coalesces them into one bppr.ExecBatch, and the
// batch flushes when it reaches Config.BatchMaxSize, when the flush deadline
// (Config.BatchFlushMs after the batch opened) expires, or when a request
// arrives for a different snapshot than the open batch's. Every request pins
// the snapshot current at its arrival, so a reload mid-batch never mixes
// graph versions inside one Exec: the open batch keeps its snapshot and the
// newcomer opens the next one. A full queue rejects immediately (HTTP 503)
// instead of blocking the handler — backpressure the load balancer can see.

// Batching defaults for Config zero fields.
const (
	// DefaultBatchMaxSize flushes a batch at this width — the B=16 point the
	// bench gate pins as >=4x cheaper per query than B=1.
	DefaultBatchMaxSize = 16
	// DefaultBatchFlushMs bounds how long the first request of a batch waits
	// for batch-mates.
	DefaultBatchFlushMs = 2
	// DefaultBatchQueueDepth bounds queued-but-uncollected requests per
	// graph; beyond it the endpoint sheds load with 503s.
	DefaultBatchQueueDepth = 256
)

// pprReq is one enqueued personalized-PageRank query. The snapshot is pinned
// at arrival; resp is buffered so the executing goroutine never blocks on a
// caller that gave up.
type pprReq struct {
	seeds []graph.VertexID
	k     int
	snap  *snapshot
	resp  chan pprResp
}

// pprResp is one query's outcome: its rank column and per-column iteration
// count, plus the width of the batch that served it.
type pprResp struct {
	ranks      []float32
	iterations int
	batch      int
	err        error
}

// enqueuePPR hands req to g's collector, starting it on first use. It
// reports false when the queue is full (the caller replies 503).
func (s *Service) enqueuePPR(sg *servingGraph, req *pprReq) bool {
	sg.pprOnce.Do(func() { go s.pprCollector(sg) })
	select {
	case sg.pprCh <- req:
		s.metrics.pprQueueDepth(sg.name).Set(float64(len(sg.pprCh)))
		return true
	default:
		s.metrics.pprRejected(sg.name).Inc()
		return false
	}
}

// pprCollector is g's batching loop: it owns the open batch and its flush
// timer, and dispatches each flush to its own goroutine (bounded by the
// process Exec semaphore) so collection never stalls behind an Exec.
func (s *Service) pprCollector(sg *servingGraph) {
	delay := time.Duration(s.cfg.BatchFlushMs) * time.Millisecond
	var (
		batch []*pprReq
		snap  *snapshot
		timer *time.Timer
		timeC <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timeC = nil, nil
		}
		if len(batch) == 0 {
			return
		}
		b, sn := batch, snap
		batch, snap = nil, nil
		go s.execPPRBatch(sg, sn, b)
	}
	for {
		select {
		case <-s.done:
			for _, r := range batch {
				r.resp <- pprResp{err: fmt.Errorf("service closed")}
			}
			return
		case req := <-sg.pprCh:
			s.metrics.pprQueueDepth(sg.name).Set(float64(len(sg.pprCh)))
			if len(batch) > 0 && req.snap != snap {
				// A reload swapped the snapshot mid-batch: the open batch
				// keeps the version its requests pinned, the newcomer opens
				// the next batch on the new one.
				flush()
			}
			if len(batch) == 0 {
				snap = req.snap
				timer = time.NewTimer(delay)
				timeC = timer.C
			}
			batch = append(batch, req)
			if len(batch) >= s.cfg.BatchMaxSize {
				flush()
			}
		case <-timeC:
			timer, timeC = nil, nil
			flush()
		}
	}
}

// execPPRBatch runs one flushed batch under the Exec semaphore and fans the
// per-column results back out to the waiting handlers.
func (s *Service) execPPRBatch(sg *servingGraph, snap *snapshot, batch []*pprReq) {
	start := time.Now()
	s.metrics.pprBatches(sg.name).Inc()
	s.metrics.pprBatchSize.Observe(float64(len(batch)))
	fail := func(err error) {
		for _, r := range batch {
			r.resp <- pprResp{err: err}
		}
	}
	prep, err := snap.bpprPrep(sg.opts)
	if err != nil {
		fail(err)
		return
	}
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	queries := make([]bppr.Query, len(batch))
	for i, r := range batch {
		queries[i] = bppr.Query{Seeds: r.seeds}
	}
	br, err := bppr.ExecBatch(prep, sg.opts, queries)
	if err != nil {
		fail(err)
		return
	}
	s.metrics.pprExecs(sg.name).Inc()
	for i, r := range batch {
		r.resp <- pprResp{ranks: br.Ranks[i], iterations: br.Iterations[i], batch: len(batch)}
	}
	s.metrics.pprFlushSeconds.Observe(time.Since(start).Seconds())
}

// bpprPrep returns the snapshot's B-PPR artifact, built at most once per
// snapshot on first demand. It shares the scalar artifact's prep-cache and
// build pipeline; only the engine stamp differs.
func (snap *snapshot) bpprPrep(opts common.Options) (*common.Prepared, error) {
	snap.pprOnce.Do(func() {
		snap.pprPrep, snap.pprErr = bppr.Engine{}.Prepare(snap.g, opts)
	})
	return snap.pprPrep, snap.pprErr
}
