package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"hipa/internal/engines/common"
	"hipa/internal/gen"
	"hipa/internal/graph"
	"hipa/internal/obs"
)

// testConfig is a small single-graph registry that keeps every test's
// Prepare and Exec in the tens of milliseconds.
func testConfig(reg *obs.Registry) Config {
	return Config{
		Graphs:   []GraphSpec{{Name: "wiki", Dataset: "wiki", Divisor: 8192}},
		Threads:  2,
		Registry: reg,
	}
}

func newTestService(t *testing.T, reg *obs.Registry) *Service {
	t.Helper()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s, err := New(testConfig(reg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("GET %s: not JSON: %v\n%s", url, err, b)
		}
	}
	return resp.StatusCode
}

type rankDoc struct {
	Graph      string        `json:"graph"`
	Version    graph.Version `json:"version"`
	Vertex     int64         `json:"vertex"`
	Rank       float64       `json:"rank"`
	Iterations int           `json:"iterations"`
}

type topkDoc struct {
	Version graph.Version `json:"version"`
	K       int           `json:"k"`
	Top     []struct {
		Vertex int32   `json:"vertex"`
		Rank   float64 `json:"rank"`
	} `json:"top"`
}

func TestServiceEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestService(t, reg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Registry listing before any rank traffic: version 0, not yet ranked.
	var graphs struct {
		Engine string `json:"engine"`
		Graphs []struct {
			Name     string        `json:"name"`
			Version  graph.Version `json:"version"`
			Vertices int           `json:"vertices"`
			Edges    int64         `json:"edges"`
			Ranked   bool          `json:"ranked"`
		} `json:"graphs"`
	}
	if code := getJSON(t, srv.URL+"/v1/graphs", &graphs); code != http.StatusOK {
		t.Fatalf("/v1/graphs = %d", code)
	}
	if graphs.Engine != "HiPa" || len(graphs.Graphs) != 1 {
		t.Fatalf("/v1/graphs = %+v", graphs)
	}
	g := graphs.Graphs[0]
	if g.Name != "wiki" || g.Version != 0 || g.Vertices == 0 || g.Edges == 0 || g.Ranked {
		t.Errorf("registry entry = %+v", g)
	}

	// First rank query computes; the graph name is optional with one graph.
	var rank rankDoc
	if code := getJSON(t, srv.URL+"/v1/rank?vertex=1", &rank); code != http.StatusOK {
		t.Fatalf("/v1/rank = %d", code)
	}
	if rank.Graph != "wiki" || rank.Vertex != 1 || rank.Rank <= 0 || rank.Iterations == 0 {
		t.Errorf("rank doc = %+v", rank)
	}
	// Second query must be a cache hit, not another Exec.
	var rank2 rankDoc
	getJSON(t, srv.URL+"/v1/rank?graph=wiki&vertex=1", &rank2)
	if rank2.Rank != rank.Rank {
		t.Errorf("cached rank %v != first rank %v", rank2.Rank, rank.Rank)
	}
	if hits := reg.Counter(MetricRankCacheHits, "graph", "wiki").Value(); hits == 0 {
		t.Error("second identical query did not hit the snapshot rank cache")
	}
	if execs := reg.Counter(MetricExecs, "graph", "wiki").Value(); execs != 1 {
		t.Errorf("execs after two queries = %d, want 1", execs)
	}

	var topk topkDoc
	if code := getJSON(t, srv.URL+"/v1/topk?k=5", &topk); code != http.StatusOK {
		t.Fatalf("/v1/topk = %d", code)
	}
	if topk.K != 5 || len(topk.Top) != 5 {
		t.Fatalf("topk = %+v", topk)
	}
	for i := 1; i < len(topk.Top); i++ {
		if topk.Top[i].Rank > topk.Top[i-1].Rank {
			t.Errorf("topk not descending at %d: %v", i, topk.Top)
		}
	}

	var nb struct {
		Dir       string  `json:"dir"`
		Degree    int     `json:"degree"`
		Neighbors []int32 `json:"neighbors"`
	}
	if code := getJSON(t, srv.URL+"/v1/neighbors?vertex=0&dir=out", &nb); code != http.StatusOK {
		t.Fatalf("/v1/neighbors = %d", code)
	}
	if nb.Dir != "out" || nb.Degree != len(nb.Neighbors) {
		t.Errorf("neighbors doc = %+v", nb)
	}
	var lim struct {
		Degree    int     `json:"degree"`
		Neighbors []int32 `json:"neighbors"`
	}
	getJSON(t, srv.URL+"/v1/neighbors?vertex=0&limit=1", &lim)
	if lim.Degree != nb.Degree || len(lim.Neighbors) > 1 {
		t.Errorf("limited neighbors = %+v (full degree %d)", lim, nb.Degree)
	}

	// Error paths.
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/v1/rank?graph=nope&vertex=0", http.StatusNotFound},
		{"/v1/rank?vertex=-1", http.StatusBadRequest},
		{"/v1/rank?vertex=99999999", http.StatusBadRequest},
		{"/v1/rank", http.StatusBadRequest},
		{"/v1/topk?k=0", http.StatusBadRequest},
		{"/v1/neighbors?vertex=0&dir=sideways", http.StatusBadRequest},
		{"/v1/neighbors?vertex=0&limit=-2", http.StatusBadRequest},
		{"/no/such", http.StatusNotFound},
	} {
		if code := getJSON(t, srv.URL+tc.url, nil); code != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.url, code, tc.want)
		}
	}
	if resp, err := http.Post(srv.URL+"/v1/rank?vertex=0", "text/plain", nil); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /v1/rank = %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The telemetry surface rides on the same listener, and the serving
	// metrics show up in the exposition.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{MetricExecs, MetricRankCacheHits, MetricHTTPSeconds, MetricHTTPRequests, "hipa_prep_cache_misses_total"} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}
	if code := getJSON(t, srv.URL+"/", nil); code != http.StatusOK {
		t.Errorf("index = %d", code)
	}
}

func TestServiceLoadsBinaryGraphFromPath(t *testing.T) {
	g, err := gen.GenerateByName("kron", 8192)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "kron.hgr")
	if err := graph.SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Graphs:   []GraphSpec{{Name: "disk", Path: path, Divisor: 8192}},
		Threads:  2,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := s.graph("disk")
	if err != nil {
		t.Fatal(err)
	}
	if got := sg.cur.Load().g.NumVertices(); got != g.NumVertices() {
		t.Errorf("loaded %d vertices, want %d", got, g.NumVertices())
	}
}

func TestConfigValidation(t *testing.T) {
	reg := obs.NewRegistry()
	for name, cfg := range map[string]Config{
		"no graphs":       {Registry: reg},
		"unnamed spec":    {Registry: reg, Graphs: []GraphSpec{{Dataset: "wiki", Divisor: 8192}}},
		"duplicate names": {Registry: reg, Graphs: []GraphSpec{{Name: "a", Dataset: "wiki", Divisor: 8192}, {Name: "a", Dataset: "kron", Divisor: 8192}}},
		"path and dataset": {Registry: reg, Graphs: []GraphSpec{
			{Name: "a", Path: "/no/such.hgr", Dataset: "wiki"}}},
		"neither":         {Registry: reg, Graphs: []GraphSpec{{Name: "a"}}},
		"unknown dataset": {Registry: reg, Graphs: []GraphSpec{{Name: "a", Dataset: "friendster"}}},
		"unknown preset":  {Registry: reg, Preset: "m1max", Graphs: []GraphSpec{{Name: "a", Dataset: "wiki", Divisor: 8192}}},
		"unknown engine":  {Registry: reg, Engine: "dijkstra", Graphs: []GraphSpec{{Name: "a", Dataset: "wiki", Divisor: 8192}}},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted a bad config", name)
		}
	}
}

func TestTopKOfMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	ranks := make([]float32, 500)
	for i := range ranks {
		ranks[i] = float32(rng.IntN(40)) / 40 // plenty of ties
	}
	for _, k := range []int{0, 1, 7, 499, 500, 900} {
		want := make([]int32, len(ranks))
		for i := range want {
			want[i] = int32(i)
		}
		sort.SliceStable(want, func(a, b int) bool {
			if ranks[want[a]] != ranks[want[b]] {
				return ranks[want[a]] > ranks[want[b]]
			}
			return want[a] < want[b]
		})
		wantK := want[:min(k, len(want))]
		got := topKOf(ranks, k)
		if len(got) != len(wantK) {
			t.Fatalf("k=%d: got %d ids, want %d", k, len(got), len(wantK))
		}
		for i := range got {
			if got[i] != wantK[i] {
				t.Fatalf("k=%d: topKOf[%d] = %d, want %d", k, i, got[i], wantK[i])
			}
		}
	}
}

// gatedEngine wraps the real engine with a gate inside Exec: the first
// caller signals entered and then blocks until release, so a test can hold
// an Exec in flight while more requests pile onto the same snapshot.
type gatedEngine struct {
	common.Engine
	mu      sync.Mutex
	entered chan struct{}
	release chan struct{}
	execs   int
}

func (e *gatedEngine) Exec(prep *common.Prepared, o common.Options) (*common.Result, error) {
	e.mu.Lock()
	e.execs++
	first := e.execs == 1
	e.mu.Unlock()
	if first {
		close(e.entered)
		<-e.release
	}
	return e.Engine.Exec(prep, o)
}

// TestRecomputeCoalescing is the serving singleflight contract: N identical
// recompute requests arriving while an Exec is in flight coalesce onto that
// one run — one engine execution, N-1 coalesced joins, identical results.
func TestRecomputeCoalescing(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestService(t, reg)
	ge := &gatedEngine{Engine: s.engine, entered: make(chan struct{}), release: make(chan struct{})}
	s.engine = ge
	sg, err := s.graph("wiki")
	if err != nil {
		t.Fatal(err)
	}
	snap := sg.cur.Load()

	const joiners = 8
	results := make(chan *rankResult, joiners+1)
	errs := make(chan error, joiners+1)
	go func() {
		res, err := s.ranksFor(sg, snap, true)
		results <- res
		errs <- err
	}()
	<-ge.entered // the first Exec now holds the flight slot
	for i := 0; i < joiners; i++ {
		go func() {
			res, err := s.ranksFor(sg, snap, true)
			results <- res
			errs <- err
		}()
	}
	// Wait until every joiner has coalesced onto the flight, then let the
	// gated Exec finish.
	coalesced := reg.Counter(MetricExecCoalesced, "graph", "wiki")
	deadline := time.Now().Add(10 * time.Second)
	for coalesced.Value() < joiners {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests coalesced", coalesced.Value(), joiners)
		}
		time.Sleep(time.Millisecond)
	}
	close(ge.release)

	var first *rankResult
	for i := 0; i < joiners+1; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		res := <-results
		if first == nil {
			first = res
		} else if res != first {
			t.Errorf("request %d got a different result object — did not join the flight", i)
		}
	}
	if ge.execs != 1 {
		t.Errorf("engine ran %d Execs for %d concurrent recomputes, want 1", ge.execs, joiners+1)
	}
	if execs := reg.Counter(MetricExecs, "graph", "wiki").Value(); execs != 1 {
		t.Errorf("exec counter = %d, want 1", execs)
	}
}

// reloadBody serializes the next mirror batch as a mutation-stream request
// body, applying it to the mirror so subsequent batches stay consistent
// with what the service will have applied.
func reloadBody(t *testing.T, mirror *graph.Versioned, stream *gen.MutationStream) *bytes.Buffer {
	t.Helper()
	b := stream.Next()
	if _, err := mirror.ApplyBatch(b); err != nil {
		t.Fatalf("mirror ApplyBatch: %v", err)
	}
	var buf bytes.Buffer
	if err := graph.WriteMutationBatches(&buf, [][]graph.Mutation{b}); err != nil {
		t.Fatalf("WriteMutationBatches: %v", err)
	}
	return &buf
}

// TestReloadSwapsSnapshotAndStaysCorrect: a reload must advance the served
// version, re-rank warm, and produce ranks matching a cold run on the
// mutated graph within the warm-start quality bound (10x the convergence
// tolerance, the bound the dynamic replay tests use).
func TestReloadSwapsSnapshotAndStaysCorrect(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestService(t, reg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	sg, err := s.graph("wiki")
	if err != nil {
		t.Fatal(err)
	}

	// Rank once so the reload has converged ranks to warm-start from.
	var before rankDoc
	if code := getJSON(t, srv.URL+"/v1/rank?vertex=3", &before); code != http.StatusOK {
		t.Fatalf("initial rank = %d", code)
	}

	mirror := graph.NewVersioned(sg.cur.Load().g)
	stream, err := gen.NewMutationStream(mirror, 42, 64)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/admin/reload?graph=wiki", "text/plain", reloadBody(t, mirror, stream))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d: %s", resp.StatusCode, body)
	}
	var rep ReloadReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("reload report not JSON: %v\n%s", err, body)
	}
	if rep.FromVersion != 0 || rep.ToVersion != 1 || rep.Batches != 1 {
		t.Errorf("report versions = %+v", rep)
	}
	if rep.Prep != "patched" {
		t.Errorf("64-mutation reload fell back to a cold rebuild: %+v", rep)
	}
	if !rep.Warm || rep.Iterations == 0 {
		t.Errorf("reload did not warm re-rank: %+v", rep)
	}
	if v := reg.Gauge(MetricGraphVersion, "graph", "wiki").Value(); v != 1 {
		t.Errorf("version gauge = %v, want 1", v)
	}

	// The snapshot swapped: new queries see version 1 without recomputing.
	var after rankDoc
	if code := getJSON(t, srv.URL+"/v1/rank?vertex=3", &after); code != http.StatusOK {
		t.Fatalf("post-reload rank = %d", code)
	}
	if after.Version != 1 {
		t.Errorf("post-reload query served version %d, want 1", after.Version)
	}

	// Warm result vs a cold run on the same mutated graph.
	served, err := s.ranksFor(sg, sg.cur.Load(), false)
	if err != nil {
		t.Fatal(err)
	}
	mutated, err := mirror.GraphAt(mirror.Version())
	if err != nil {
		t.Fatal(err)
	}
	coldPrep, err := s.engine.Prepare(mutated, sg.opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.engine.Exec(coldPrep, sg.opts)
	if err != nil {
		t.Fatal(err)
	}
	bound := 10 * s.cfg.Tolerance
	if d := common.MaxAbsDiff(served.Ranks, cold.Ranks); d > bound {
		t.Errorf("warm-reloaded ranks diverge from cold run: L-inf %g > %g", d, bound)
	}
}

// TestReloadUnderLoad hammers the query endpoints while reloads swap the
// snapshot underneath them: every response must succeed (a request always
// completes on the snapshot it started with), and the served version must
// reach the last reload's. Run with -race this is the serving-layer
// equivalent of the dynamic-replay contract.
func TestReloadUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestService(t, reg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	sg, err := s.graph("wiki")
	if err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, srv.URL+"/v1/rank?vertex=0", nil); code != http.StatusOK {
		t.Fatalf("warmup rank = %d", code)
	}

	const reloads = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	type failure struct {
		url  string
		code int
	}
	fails := make(chan failure, 128)
	paths := []string{"/v1/rank?vertex=5", "/v1/topk?k=3", "/v1/neighbors?vertex=9", "/v1/graphs"}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := srv.URL + paths[(w+i)%len(paths)]
				resp, err := http.Get(url)
				if err != nil {
					select {
					case fails <- failure{url, -1}:
					default:
					}
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					select {
					case fails <- failure{url, resp.StatusCode}:
					default:
					}
				}
			}
		}(w)
	}

	mirror := graph.NewVersioned(sg.cur.Load().g)
	stream, err := gen.NewMutationStream(mirror, 7, 48)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reloads; i++ {
		resp, err := http.Post(srv.URL+"/v1/admin/reload", "text/plain", reloadBody(t, mirror, stream))
		if err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d = %d: %s", i, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()
	close(fails)
	for f := range fails {
		t.Errorf("query failed during reloads: %s -> %d", f.url, f.code)
	}
	var final rankDoc
	if code := getJSON(t, srv.URL+"/v1/rank?vertex=5", &final); code != http.StatusOK {
		t.Fatalf("final rank = %d", code)
	}
	if final.Version != graph.Version(reloads) {
		t.Errorf("final served version = %d, want %d", final.Version, reloads)
	}
	if got := reg.Counter(MetricReloads, "graph", "wiki").Value(); got != reloads {
		t.Errorf("reload counter = %d, want %d", got, reloads)
	}
}

// TestReloadRejectsBadStreams: malformed or out-of-range mutation streams
// must fail without changing the served version.
func TestReloadRejectsBadStreams(t *testing.T) {
	s := newTestService(t, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for name, body := range map[string]string{
		"empty":        "",
		"comment only": "# nothing here\n",
		"garbage":      "insert 0 1\ncommit\n",
		"out of range": "+ 0 99999999\ncommit\n",
		"negative":     "+ -4 1\ncommit\n",
		"unknownended": "+ 0\ncommit\n",
	} {
		resp, err := http.Post(srv.URL+"/v1/admin/reload?graph=wiki", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: reload = %d, want 400", name, resp.StatusCode)
		}
	}
	var rank rankDoc
	getJSON(t, srv.URL+"/v1/rank?vertex=0", &rank)
	if rank.Version != 0 {
		t.Errorf("failed reloads advanced the served version to %d", rank.Version)
	}
	if resp, _ := http.Get(srv.URL + "/v1/admin/reload"); resp != nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET reload = %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func ExampleService() {
	s, err := New(Config{
		Graphs:   []GraphSpec{{Name: "kron", Dataset: "kron", Divisor: 8192}},
		Threads:  2,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/graphs")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	var doc struct {
		Engine string `json:"engine"`
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	fmt.Println(doc.Engine)
	// Output: HiPa
}
