package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hipa/internal/graph"
	"hipa/internal/obs/telemetry"
)

// Handler returns the service's full routing table: the /v1 query and admin
// endpoints plus the telemetry surface (/metrics, /healthz, /runs,
// /debug/pprof/) on the same listener, every endpoint wrapped in the
// latency/status instrumentation.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/rank", s.instrument("rank", s.handleRank))
	mux.Handle("/v1/ppr", s.instrument("ppr", s.handlePPR))
	mux.Handle("/v1/topk", s.instrument("topk", s.handleTopK))
	mux.Handle("/v1/neighbors", s.instrument("neighbors", s.handleNeighbors))
	mux.Handle("/v1/graphs", s.instrument("graphs", s.handleGraphs))
	mux.Handle("/v1/admin/reload", s.instrument("reload", s.handleReload))

	tele := telemetry.NewMux(s.metrics.reg, nil)
	mux.Handle("/metrics", s.instrument("metrics", tele.ServeHTTP))
	mux.Handle("/healthz", tele)
	mux.Handle("/runs", tele)
	mux.Handle("/debug/pprof/", tele)
	mux.HandleFunc("/", s.handleIndex)
	return mux
}

// statusWriter captures the response code for the request counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps an endpoint with the per-endpoint latency histogram, the
// per-status request counter, and the in-flight gauge.
func (s *Service) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.httpSeconds(endpoint).Observe(time.Since(start).Seconds())
		s.metrics.httpRequests(endpoint, strconv.Itoa(sw.code)).Inc()
	})
}

// httpError replies with a JSON error document.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

// writeJSON replies 200 with an indented JSON document.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// requestGraph resolves the ?graph= parameter, defaulting to the registry's
// only entry when the config serves exactly one graph.
func (s *Service) requestGraph(r *http.Request) (*servingGraph, error) {
	name := r.URL.Query().Get("graph")
	if name == "" {
		if names := s.graphNames(); len(names) == 1 {
			name = names[0]
		} else {
			return nil, fmt.Errorf("?graph= is required (serving %d graphs)", len(names))
		}
	}
	return s.graph(name)
}

// parseVertex parses the ?vertex= parameter and bounds-checks it against g.
func parseVertex(r *http.Request, g *graph.Graph) (graph.VertexID, error) {
	raw := r.URL.Query().Get("vertex")
	if raw == "" {
		return 0, fmt.Errorf("?vertex= is required")
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q", raw)
	}
	if v < 0 || v >= int64(g.NumVertices()) {
		return 0, fmt.Errorf("vertex %d out of range [0, %d)", v, g.NumVertices())
	}
	return graph.VertexID(v), nil
}

// handleRank serves GET /v1/rank?graph=NAME&vertex=V: one vertex's PageRank
// under the snapshot current at arrival. ?recompute=1 forces a fresh Exec
// (still coalescing with any identical in-flight run) — the knob the smoke
// test leans on to demonstrate Exec coalescing under load.
func (s *Service) handleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sg, err := s.requestGraph(r)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	snap := sg.cur.Load()
	v, err := parseVertex(r, snap.g)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	recompute := r.URL.Query().Get("recompute") == "1"
	res, err := s.ranksFor(sg, snap, recompute)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "exec: %v", err)
		return
	}
	writeJSON(w, struct {
		Graph      string        `json:"graph"`
		Version    graph.Version `json:"version"`
		Vertex     int64         `json:"vertex"`
		Rank       float64       `json:"rank"`
		Iterations int           `json:"iterations"`
	}{sg.name, snap.ver, int64(v), float64(res.Ranks[v]), res.Iterations})
}

// parseSeeds parses the ?seeds= parameter (comma-separated vertex IDs,
// empty = the uniform restart vector) and validates against g: in range,
// duplicate-free — ExecBatch would reject the whole batch otherwise, so a
// malformed query must never reach its batch-mates.
func parseSeeds(r *http.Request, g *graph.Graph) ([]graph.VertexID, error) {
	raw := r.URL.Query().Get("seeds")
	if raw == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	seeds := make([]graph.VertexID, 0, len(parts))
	seen := make(map[graph.VertexID]struct{}, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", p)
		}
		if v < 0 || v >= int64(g.NumVertices()) {
			return nil, fmt.Errorf("seed %d out of range [0, %d)", v, g.NumVertices())
		}
		id := graph.VertexID(v)
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("duplicate seed %d", v)
		}
		seen[id] = struct{}{}
		seeds = append(seeds, id)
	}
	return seeds, nil
}

// handlePPR serves GET /v1/ppr?graph=NAME&seeds=1,2,3&k=K: the K
// highest-ranked vertices of a personalized PageRank restarted at the seed
// set (empty seeds = plain PageRank). Requests enqueue on the graph's
// batching queue and are served as one batched B-PPR Exec per flush; a full
// queue replies 503 immediately. The response reports the version the query
// pinned at arrival and the width of the batch that served it.
func (s *Service) handlePPR(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sg, err := s.requestGraph(r)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	snap := sg.cur.Load()
	seeds, err := parseSeeds(r, snap.g)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		if k, err = strconv.Atoi(raw); err != nil || k <= 0 {
			httpError(w, http.StatusBadRequest, "bad k %q", raw)
			return
		}
	}
	req := &pprReq{seeds: seeds, k: k, snap: snap, resp: make(chan pprResp, 1)}
	if !s.enqueuePPR(sg, req) {
		httpError(w, http.StatusServiceUnavailable, "ppr queue full (depth %d)", cap(sg.pprCh))
		return
	}
	s.metrics.pprQueries(sg.name).Inc()
	var resp pprResp
	select {
	case resp = <-req.resp:
	case <-s.done:
		httpError(w, http.StatusServiceUnavailable, "service shutting down")
		return
	}
	if resp.err != nil {
		httpError(w, http.StatusInternalServerError, "exec: %v", resp.err)
		return
	}
	type entry struct {
		Vertex int32   `json:"vertex"`
		Rank   float64 `json:"rank"`
	}
	ids := topKOf(resp.ranks, k)
	top := make([]entry, len(ids))
	for i, id := range ids {
		top[i] = entry{id, float64(resp.ranks[id])}
	}
	writeJSON(w, struct {
		Graph      string           `json:"graph"`
		Version    graph.Version    `json:"version"`
		Seeds      []graph.VertexID `json:"seeds"`
		K          int              `json:"k"`
		Batch      int              `json:"batch"`
		Iterations int              `json:"iterations"`
		Top        []entry          `json:"top"`
	}{sg.name, snap.ver, seeds, len(top), resp.batch, resp.iterations, top})
}

// handleTopK serves GET /v1/topk?graph=NAME&k=K: the K highest-ranked
// vertices with their scores, highest first.
func (s *Service) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sg, err := s.requestGraph(r)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		if k, err = strconv.Atoi(raw); err != nil || k <= 0 {
			httpError(w, http.StatusBadRequest, "bad k %q", raw)
			return
		}
	}
	snap := sg.cur.Load()
	res, err := s.ranksFor(sg, snap, false)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "exec: %v", err)
		return
	}
	type entry struct {
		Vertex int32   `json:"vertex"`
		Rank   float64 `json:"rank"`
	}
	ids := topKOf(res.Ranks, k)
	top := make([]entry, len(ids))
	for i, id := range ids {
		top[i] = entry{id, float64(res.Ranks[id])}
	}
	writeJSON(w, struct {
		Graph      string        `json:"graph"`
		Version    graph.Version `json:"version"`
		K          int           `json:"k"`
		Iterations int           `json:"iterations"`
		Top        []entry       `json:"top"`
	}{sg.name, snap.ver, len(top), res.Iterations, top})
}

// handleNeighbors serves GET /v1/neighbors?graph=NAME&vertex=V&dir=out: one
// vertex's adjacency under the current snapshot (dir out|in, default out;
// ?limit= truncates the listing, degree always reports the full count).
func (s *Service) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sg, err := s.requestGraph(r)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	snap := sg.cur.Load()
	v, err := parseVertex(r, snap.g)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var adj []graph.VertexID
	dir := r.URL.Query().Get("dir")
	switch dir {
	case "", "out":
		dir = "out"
		adj = snap.g.OutNeighbors(v)
	case "in":
		adj = snap.g.InNeighbors(v)
	default:
		httpError(w, http.StatusBadRequest, "bad dir %q (want out or in)", dir)
		return
	}
	degree := len(adj)
	if raw := r.URL.Query().Get("limit"); raw != "" {
		limit, err := strconv.Atoi(raw)
		if err != nil || limit < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q", raw)
			return
		}
		if limit < len(adj) {
			adj = adj[:limit]
		}
	}
	writeJSON(w, struct {
		Graph     string           `json:"graph"`
		Version   graph.Version    `json:"version"`
		Vertex    int64            `json:"vertex"`
		Dir       string           `json:"dir"`
		Degree    int              `json:"degree"`
		Neighbors []graph.VertexID `json:"neighbors"`
	}{sg.name, snap.ver, int64(v), dir, degree, adj})
}

// handleGraphs serves GET /v1/graphs: the registry listing with per-graph
// size, version, and reload count.
func (s *Service) handleGraphs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type entry struct {
		Name     string        `json:"name"`
		Version  graph.Version `json:"version"`
		Vertices int           `json:"vertices"`
		Edges    int64         `json:"edges"`
		Reloads  int64         `json:"reloads"`
		Ranked   bool          `json:"ranked"`
	}
	var out []entry
	for _, name := range s.graphNames() {
		sg, err := s.graph(name)
		if err != nil {
			continue
		}
		snap := sg.cur.Load()
		snap.mu.Lock()
		ranked := snap.ranks != nil
		snap.mu.Unlock()
		out = append(out, entry{name, snap.ver, snap.g.NumVertices(), snap.g.NumEdges(), sg.reloads.Load(), ranked})
	}
	writeJSON(w, struct {
		Engine string  `json:"engine"`
		Graphs []entry `json:"graphs"`
	}{s.engine.Name(), out})
}

// handleReload serves POST /v1/admin/reload?graph=NAME with a mutation
// stream body ("+ src dst" / "- src dst" / "commit" lines): the versioned
// graph advances, the artifact is patched, and the serving snapshot swaps
// atomically. In-flight queries complete on the snapshot they started with.
func (s *Service) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a mutation stream")
		return
	}
	name := r.URL.Query().Get("graph")
	if name == "" {
		if names := s.graphNames(); len(names) == 1 {
			name = names[0]
		} else {
			httpError(w, http.StatusBadRequest, "?graph= is required")
			return
		}
	}
	rep, err := s.Reload(name, r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reload: %v", err)
		return
	}
	writeJSON(w, rep)
}

func (s *Service) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		httpError(w, http.StatusNotFound, "no such endpoint %q", r.URL.Path)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "hipaserve (%s engine, up %s)\n", s.engine.Name(), time.Since(s.started).Round(time.Second))
	fmt.Fprintln(w, "  GET  /v1/rank?graph=&vertex=[&recompute=1]  one vertex's PageRank")
	fmt.Fprintln(w, "  GET  /v1/ppr?graph=&seeds=1,2,3&k=          batched personalized PageRank")
	fmt.Fprintln(w, "  GET  /v1/topk?graph=&k=                     highest-ranked vertices")
	fmt.Fprintln(w, "  GET  /v1/neighbors?graph=&vertex=[&dir=]    adjacency listing")
	fmt.Fprintln(w, "  GET  /v1/graphs                             serving registry")
	fmt.Fprintln(w, "  POST /v1/admin/reload?graph=                apply a mutation stream")
	fmt.Fprintln(w, "  /metrics /healthz /runs /debug/pprof/       telemetry")
}
