package serve

import "hipa/internal/obs"

// Registry metric families exported by the serving layer. The hipa_serve_*
// families describe the compute side (Execs, coalescing, reloads); the
// hipa_http_* families describe the transport side per endpoint.
const (
	MetricExecs         = "hipa_serve_execs_total"
	MetricExecCoalesced = "hipa_serve_exec_coalesced_total"
	MetricRankCacheHits = "hipa_serve_rank_cache_hits_total"
	MetricExecWait      = "hipa_serve_exec_wait_seconds"
	MetricReloads       = "hipa_serve_reloads_total"
	MetricReloadSecs    = "hipa_serve_reload_seconds"
	MetricGraphVersion  = "hipa_serve_graph_version"

	MetricHTTPSeconds  = "hipa_http_request_seconds"
	MetricHTTPRequests = "hipa_http_requests_total"
	MetricHTTPInflight = "hipa_http_inflight"

	// The hipa_serve_ppr_* families describe the /v1/ppr batching queue.
	MetricPPRQueries    = "hipa_serve_ppr_queries_total"
	MetricPPRBatches    = "hipa_serve_ppr_batches_total"
	MetricPPRExecs      = "hipa_serve_ppr_execs_total"
	MetricPPRRejected   = "hipa_serve_ppr_rejected_total"
	MetricPPRQueueDepth = "hipa_serve_ppr_queue_depth"
	MetricPPRBatchSize  = "hipa_serve_ppr_batch_size"
	MetricPPRFlushSecs  = "hipa_serve_ppr_flush_seconds"
)

// serveMetrics holds the service's registry handles. Per-graph and
// per-endpoint series are materialized on first touch through the registry's
// own interning, so the accessor methods are cheap enough for request paths.
type serveMetrics struct {
	reg             *obs.Registry
	execWait        *obs.Histogram
	reloadSeconds   *obs.Histogram
	inflight        *obs.Gauge
	pprBatchSize    *obs.Histogram
	pprFlushSeconds *obs.Histogram
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	reg.SetHelp(MetricExecs, "Engine Execs run by the serving layer.")
	reg.SetHelp(MetricExecCoalesced, "Rank requests coalesced onto an in-flight Exec.")
	reg.SetHelp(MetricRankCacheHits, "Rank requests served from a snapshot's cached vector.")
	reg.SetHelp(MetricExecWait, "Seconds rank computations waited for an Exec slot.")
	reg.SetHelp(MetricReloads, "Mutation-stream reloads applied per graph.")
	reg.SetHelp(MetricReloadSecs, "Seconds spent applying a reload (prep patch + warm re-rank).")
	reg.SetHelp(MetricGraphVersion, "Currently served graph version.")
	reg.SetHelp(MetricHTTPSeconds, "HTTP request latency per endpoint.")
	reg.SetHelp(MetricHTTPRequests, "HTTP requests per endpoint and status code.")
	reg.SetHelp(MetricHTTPInflight, "HTTP requests currently being handled.")
	reg.SetHelp(MetricPPRQueries, "Personalized-PageRank queries accepted by the batching queue.")
	reg.SetHelp(MetricPPRBatches, "Batches flushed by the /v1/ppr collector.")
	reg.SetHelp(MetricPPRExecs, "Batched B-PPR Execs completed.")
	reg.SetHelp(MetricPPRRejected, "Queries rejected because the /v1/ppr queue was full.")
	reg.SetHelp(MetricPPRQueueDepth, "Queued /v1/ppr requests awaiting collection.")
	reg.SetHelp(MetricPPRBatchSize, "Width of flushed /v1/ppr batches.")
	reg.SetHelp(MetricPPRFlushSecs, "Seconds from batch flush to responses fanned out.")
	return &serveMetrics{
		reg:             reg,
		execWait:        reg.Histogram(MetricExecWait),
		reloadSeconds:   reg.Histogram(MetricReloadSecs),
		inflight:        reg.Gauge(MetricHTTPInflight),
		pprBatchSize:    reg.Histogram(MetricPPRBatchSize),
		pprFlushSeconds: reg.Histogram(MetricPPRFlushSecs),
	}
}

func (m *serveMetrics) execs(graph string) *obs.Counter {
	return m.reg.Counter(MetricExecs, "graph", graph)
}

func (m *serveMetrics) execCoalesced(graph string) *obs.Counter {
	return m.reg.Counter(MetricExecCoalesced, "graph", graph)
}

func (m *serveMetrics) rankCacheHits(graph string) *obs.Counter {
	return m.reg.Counter(MetricRankCacheHits, "graph", graph)
}

func (m *serveMetrics) reloads(graph string) *obs.Counter {
	return m.reg.Counter(MetricReloads, "graph", graph)
}

func (m *serveMetrics) version(graph string) *obs.Gauge {
	return m.reg.Gauge(MetricGraphVersion, "graph", graph)
}

func (m *serveMetrics) pprQueries(graph string) *obs.Counter {
	return m.reg.Counter(MetricPPRQueries, "graph", graph)
}

func (m *serveMetrics) pprBatches(graph string) *obs.Counter {
	return m.reg.Counter(MetricPPRBatches, "graph", graph)
}

func (m *serveMetrics) pprExecs(graph string) *obs.Counter {
	return m.reg.Counter(MetricPPRExecs, "graph", graph)
}

func (m *serveMetrics) pprRejected(graph string) *obs.Counter {
	return m.reg.Counter(MetricPPRRejected, "graph", graph)
}

func (m *serveMetrics) pprQueueDepth(graph string) *obs.Gauge {
	return m.reg.Gauge(MetricPPRQueueDepth, "graph", graph)
}

func (m *serveMetrics) httpSeconds(endpoint string) *obs.Histogram {
	return m.reg.Histogram(MetricHTTPSeconds, "endpoint", endpoint)
}

func (m *serveMetrics) httpRequests(endpoint, code string) *obs.Counter {
	return m.reg.Counter(MetricHTTPRequests, "endpoint", endpoint, "code", code)
}
