package partition

import (
	"fmt"

	"hipa/internal/graph"
)

// Advance returns a fresh Hierarchy for g, reusing h's fixed partition
// geometry and recomputing only what a mutation batch can change: the edge
// counts of the touched partitions (an O(1) offset difference each), the
// edge-balanced node assignment, and the thread groups. Partition vertex
// ranges never move — mutations are edge-only, so |V| and the fixed-size
// cache partitions are invariant — which is what makes the patch equal to a
// cold Build on g: Build derives everything downstream of the partition
// array from the per-partition edge counts, and those are recomputed here
// from the same offsets a cold Build would read.
//
// touched lists the partition IDs whose vertices' out-adjacency changed;
// IDs outside [0, len(h.Partitions)) are rejected.
func Advance(h *Hierarchy, g *graph.Graph, touched []int) (*Hierarchy, error) {
	if g.NumVertices() != h.NumVertices {
		return nil, fmt.Errorf("partition: advance graph has %d vertices, hierarchy %d", g.NumVertices(), h.NumVertices)
	}
	nh := &Hierarchy{
		Config:               h.Config,
		NumVertices:          h.NumVertices,
		NumEdges:             g.NumEdges(),
		VerticesPerPartition: h.VerticesPerPartition,
		Partitions:           append([]Partition(nil), h.Partitions...),
	}
	off := g.OutOffsets()
	for _, p := range touched {
		if p < 0 || p >= len(nh.Partitions) {
			return nil, fmt.Errorf("partition: advance touched partition %d out of range [0,%d)", p, len(nh.Partitions))
		}
		part := &nh.Partitions[p]
		part.EdgeCount = off[part.VertexEnd] - off[part.VertexStart]
	}
	nh.Nodes = assignNodes(nh.Partitions, nh.Config, nh.NumEdges, nh.NumVertices)
	if nh.Config.GroupsPerNode > 0 {
		nh.Groups = assignGroups(nh.Partitions, nh.Nodes, nh.Config.GroupsPerNode)
	} else {
		for _, na := range nh.Nodes {
			nh.Groups = append(nh.Groups, Group{
				Node: na.Node, IndexInNode: 0, ThreadID: na.Node,
				PartStart: na.PartStart, PartEnd: na.PartEnd, EdgeCount: na.EdgeCount,
			})
		}
	}
	return nh, nil
}
