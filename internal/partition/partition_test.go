package partition

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hipa/internal/gen"
	"hipa/internal/graph"
)

// lineGraph returns a graph with n vertices where vertex v has degree v%5.
func degGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for k := 0; k < v%5; k++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID((v+k+1)%n))
		}
	}
	return b.Build()
}

func smallConfig(nodes, groups int) Config {
	// 16 vertices per partition (64B partitions of 4B vertices).
	return Config{PartitionBytes: 64, BytesPerVertex: 4, NumNodes: nodes, GroupsPerNode: groups}
}

func TestBuildBasicInvariants(t *testing.T) {
	g := degGraph(t, 100)
	h, err := Build(g, smallConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.VerticesPerPartition != 16 {
		t.Errorf("VerticesPerPartition = %d, want 16", h.VerticesPerPartition)
	}
	if h.NumPartitions() != 7 { // ceil(100/16)
		t.Errorf("NumPartitions = %d, want 7", h.NumPartitions())
	}
	if len(h.Nodes) != 2 || len(h.Groups) != 4 {
		t.Errorf("nodes=%d groups=%d", len(h.Nodes), len(h.Groups))
	}
}

func TestPartitionSizesMultipleOfP(t *testing.T) {
	// Paper Eq. 3: |Vi| = n_i * |P| for all but the last node.
	g := degGraph(t, 1000)
	h, err := Build(g, smallConfig(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, na := range h.Nodes {
		if i == len(h.Nodes)-1 {
			continue
		}
		verts := int(na.VertexHigh - na.VertexLow)
		if verts%h.VerticesPerPartition != 0 {
			t.Errorf("node %d has %d vertices, not a multiple of |P|=%d", i, verts, h.VerticesPerPartition)
		}
	}
}

func TestEdgeBalancedAssignment(t *testing.T) {
	// Heavily skewed: first 16 vertices own ~all edges. Edge balancing
	// should give node 0 few partitions and node 1 many.
	b := graph.NewBuilder(320)
	for v := 0; v < 16; v++ {
		for k := 0; k < 50; k++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID((v+k+17)%320))
		}
	}
	for v := 16; v < 320; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%320))
	}
	g := b.Build()
	h, err := Build(g, smallConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Nodes[0].Partitions() >= h.Nodes[1].Partitions() {
		t.Errorf("edge balancing should give the hot node fewer partitions: %d vs %d",
			h.Nodes[0].Partitions(), h.Nodes[1].Partitions())
	}
	// Whole-partition granularity bounds how balanced a single hot
	// partition can be (§3.2's loosened condition): one partition holds 800
	// of 1104 edges here, so 800/552 ≈ 1.45 is the best achievable split.
	if bal := h.EdgeBalance(); bal > 1.46 {
		t.Errorf("edge balance %.3f too poor", bal)
	}

	// Vertex-balanced ablation: same graph, much worse edge balance.
	cfg := smallConfig(2, 1)
	cfg.VertexBalanced = true
	hv, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := hv.Validate(); err != nil {
		t.Fatal(err)
	}
	if hv.EdgeBalance() <= h.EdgeBalance() {
		t.Errorf("vertex-balanced should be less edge-balanced: %.3f vs %.3f",
			hv.EdgeBalance(), h.EdgeBalance())
	}
}

func TestGroupsEdgeBalancedWithinNode(t *testing.T) {
	// Fig. 2 scenario: partitions with unequal edge counts; groups get
	// unequal partition counts but near-equal edges.
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 4096, Edges: 60000, OutAlpha: 2.0, InAlpha: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(g, Config{PartitionBytes: 256, BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if bal := h.GroupEdgeBalance(); bal > 1.5 {
		t.Errorf("group edge balance %.3f too poor", bal)
	}
	// Groups within one node must own different partition counts when the
	// edge distribution is skewed (the paper's m1=3, m2=2, m3=1, m4=1
	// example shape) — at minimum, not all equal for a power-law graph.
	counts := map[int]bool{}
	for _, gr := range h.Groups {
		counts[gr.Partitions()] = true
	}
	if len(counts) < 2 {
		t.Logf("note: all groups had equal partition counts (%v); acceptable but unexpected for skew", counts)
	}
}

func TestFig2Example(t *testing.T) {
	// Reproduce Fig. 2 exactly: 7 partitions, P0-2 hold 10 edges each,
	// P3-4 hold 15, P5-6 hold 30. Total 110 edges. 2 nodes: node 0 should
	// take P0..P4 (n1=5, 65 edges), node 1 P5-6 (n2=2, 60 edges). With 4
	// groups on node 0... the paper's example uses 4 cores on node 0 giving
	// m = [3,2,1,1]? The figure's groups are: core0={P0,P1,P2} core1={P3,P4}
	// on node 0 (2 cores), and node 1's cores get P5, P6.
	perPart := 4
	b := graph.NewBuilder(7 * perPart)
	addEdges := func(part, count int) {
		v := graph.VertexID(part * perPart)
		for k := 0; k < count; k++ {
			b.AddEdge(v, graph.VertexID((int(v)+k+1)%(7*perPart)))
		}
	}
	for p, c := range map[int]int{0: 10, 1: 10, 2: 10, 3: 15, 4: 15, 5: 30, 6: 30} {
		addEdges(p, c)
	}
	g := b.Build()
	h, err := Build(g, Config{PartitionBytes: perPart * 4, BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Nodes[0].Partitions() != 5 || h.Nodes[1].Partitions() != 2 {
		t.Fatalf("node partition counts = %d,%d; want 5,2 (Fig. 2)",
			h.Nodes[0].Partitions(), h.Nodes[1].Partitions())
	}
	// Node 0 has 60 edges in P0-4 (10+10+10+15+15); 2 groups -> 30 edges
	// each: {P0,P1,P2} and {P3,P4}.
	if h.Groups[0].Partitions() != 3 || h.Groups[1].Partitions() != 2 {
		t.Fatalf("node 0 groups = %d,%d partitions; want 3,2 (Fig. 2: m1=3, m2=2)",
			h.Groups[0].Partitions(), h.Groups[1].Partitions())
	}
	// Node 1: one partition per group.
	if h.Groups[2].Partitions() != 1 || h.Groups[3].Partitions() != 1 {
		t.Fatalf("node 1 groups = %d,%d; want 1,1", h.Groups[2].Partitions(), h.Groups[3].Partitions())
	}
}

func TestBuildErrors(t *testing.T) {
	g := degGraph(t, 10)
	bad := []Config{
		{PartitionBytes: 0, BytesPerVertex: 4, NumNodes: 1},
		{PartitionBytes: 64, BytesPerVertex: 0, NumNodes: 1},
		{PartitionBytes: 64, BytesPerVertex: 4, NumNodes: 0},
		{PartitionBytes: 64, BytesPerVertex: 4, NumNodes: 1, GroupsPerNode: -1},
		{PartitionBytes: 2, BytesPerVertex: 4, NumNodes: 1}, // no vertex fits
	}
	for i, cfg := range bad {
		if _, err := Build(g, cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
	empty := graph.NewBuilder(0).Build()
	if _, err := Build(empty, smallConfig(1, 1)); err == nil {
		t.Error("expected error for empty graph")
	}
}

func TestMoreNodesThanPartitions(t *testing.T) {
	g := degGraph(t, 20) // 2 partitions of 16
	h, err := Build(g, smallConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Some nodes are empty; total partitions still covered.
	total := 0
	for _, na := range h.Nodes {
		total += na.Partitions()
	}
	if total != h.NumPartitions() {
		t.Fatalf("nodes cover %d partitions, want %d", total, h.NumPartitions())
	}
}

func TestLookupQueries(t *testing.T) {
	g := degGraph(t, 100)
	h, err := Build(g, smallConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	lt := BuildLookup(h)
	if lt.NumThreads() != 4 || lt.NumPartitions() != 7 {
		t.Fatalf("lookup dims: threads=%d parts=%d", lt.NumThreads(), lt.NumPartitions())
	}
	for v := 0; v < 100; v++ {
		vid := graph.VertexID(v)
		p := lt.PartitionOf(vid)
		if p != h.PartitionOfVertex(vid) {
			t.Fatalf("PartitionOf(%d) = %d vs %d", v, p, h.PartitionOfVertex(vid))
		}
		if lt.NodeOf(vid) != h.NodeOfVertex(vid) {
			t.Fatalf("NodeOf(%d) mismatch", v)
		}
		if lt.ThreadOf(vid) != h.ThreadOfVertex(vid) {
			t.Fatalf("ThreadOf(%d) mismatch", v)
		}
		// Vertex must lie in its partition's range.
		if vid < lt.PartVertexStart[p] || vid >= lt.PartVertexEnd[p] {
			t.Fatalf("vertex %d outside partition %d range", v, p)
		}
		// Partition must lie in its thread's range.
		th := lt.ThreadOf(vid)
		if int32(p) < lt.ThreadPartStart[th] || int32(p) >= lt.ThreadPartEnd[th] {
			t.Fatalf("partition %d outside thread %d range", p, th)
		}
	}
}

func TestRankBoundsBytes(t *testing.T) {
	g := degGraph(t, 100)
	h, err := Build(g, smallConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	bounds := h.RankBoundsBytes(4)
	if len(bounds) != 2 {
		t.Fatalf("bounds = %v", bounds)
	}
	if bounds[1] != 400 {
		t.Errorf("final bound = %d, want 400 (100 vertices x 4B)", bounds[1])
	}
	if bounds[0] <= 0 || bounds[0] >= bounds[1] {
		t.Errorf("bounds not monotone: %v", bounds)
	}
	if bounds[0] != int64(h.Nodes[0].VertexHigh)*4 {
		t.Errorf("bound 0 = %d, want %d", bounds[0], int64(h.Nodes[0].VertexHigh)*4)
	}
}

func TestComputeEdgeLocality(t *testing.T) {
	// 2 partitions of 16 vertices. Edges: 0->1 (intra), 0->17 (inter),
	// 0->18 (inter, same dest partition: compresses with 0->17), 20->21
	// (intra).
	b := graph.NewBuilder(32)
	b.AddEdges([]graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 17}, {Src: 0, Dst: 18}, {Src: 20, Dst: 21},
	})
	g := b.Build()
	h, err := Build(g, smallConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	loc := ComputeEdgeLocality(g, h)
	if loc.IntraEdges != 2 || loc.InterEdges != 2 {
		t.Fatalf("locality = %+v", loc)
	}
	if loc.CompressedInter != 1 {
		t.Fatalf("CompressedInter = %d, want 1 (two inter-edges to one partition)", loc.CompressedInter)
	}
	if loc.IntraPerPartition != 1.0 || loc.InterPerPartition != 1.0 {
		t.Fatalf("per-partition averages: %+v", loc)
	}
}

func TestLocalityLargerPartitionsMoreIntra(t *testing.T) {
	// Paper §4.5: "The larger a partition, the better the compression" and
	// the more intra-edges.
	g, err := gen.PowerLaw(gen.PowerLawConfig{Vertices: 8192, Edges: 80000, OutAlpha: 2.1, InAlpha: 0.9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	prevIntra := int64(-1)
	for _, pb := range []int{256, 1024, 4096, 16384} {
		h, err := Build(g, Config{PartitionBytes: pb, BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 2})
		if err != nil {
			t.Fatal(err)
		}
		loc := ComputeEdgeLocality(g, h)
		if loc.IntraEdges+loc.InterEdges != g.NumEdges() {
			t.Fatalf("locality does not cover all edges: %+v", loc)
		}
		if loc.IntraEdges < prevIntra {
			t.Errorf("intra-edges decreased when partition grew to %dB", pb)
		}
		prevIntra = loc.IntraEdges
	}
}

// Property: invariants hold for arbitrary random graphs and configs.
func TestPropertyBuildInvariants(t *testing.T) {
	f := func(seed uint64, nRaw, pbRaw uint8, nodesRaw, groupsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := int(nRaw)%500 + 1
		pb := (int(pbRaw)%16 + 1) * 8 // 8..128 bytes => 2..32 vertices/partition
		nodes := int(nodesRaw)%4 + 1
		groups := int(groupsRaw) % 5 // 0..4
		b := graph.NewBuilder(n)
		m := rng.IntN(2000)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.VertexID(rng.IntN(n)), graph.VertexID(rng.IntN(n)))
		}
		g := b.Build()
		h, err := Build(g, Config{PartitionBytes: pb, BytesPerVertex: 4, NumNodes: nodes, GroupsPerNode: groups})
		if err != nil {
			return false
		}
		if h.Validate() != nil {
			return false
		}
		lt := BuildLookup(h)
		// Spot-check lookup consistency.
		for i := 0; i < 20; i++ {
			v := graph.VertexID(rng.IntN(n))
			if lt.NodeOf(v) != h.NodeOfVertex(v) || lt.ThreadOf(v) != h.ThreadOfVertex(v) {
				return false
			}
		}
		loc := ComputeEdgeLocality(g, h)
		if loc.IntraEdges+loc.InterEdges != g.NumEdges() {
			return false
		}
		if loc.CompressedInter > loc.InterEdges {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the loosened condition of §3.2 — every group's edge count is
// >= |Ei|/C only for groups that are not edge-starved by construction; at
// minimum, group ranges are contiguous and non-overlapping (covered by
// Validate), and the last group absorbs leftovers.
func TestPropertyLastGroupAbsorbsLeftovers(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := rng.IntN(300) + 50
		b := graph.NewBuilder(n)
		for i := 0; i < rng.IntN(1500); i++ {
			b.AddEdge(graph.VertexID(rng.IntN(n)), graph.VertexID(rng.IntN(n)))
		}
		g := b.Build()
		h, err := Build(g, Config{PartitionBytes: 32, BytesPerVertex: 4, NumNodes: 2, GroupsPerNode: 3})
		if err != nil {
			return false
		}
		for _, na := range h.Nodes {
			var last *Group
			for i := range h.Groups {
				if h.Groups[i].Node == na.Node {
					last = &h.Groups[i]
				}
			}
			if last == nil || last.PartEnd != na.PartEnd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRegroupMatchesBuild: Regroup on a node-level hierarchy (GroupsPerNode
// 0) must reproduce exactly what a full Build with that group count
// produces — this is what lets the two-phase engine lifecycle cache the
// thread-independent levels and recompute only the group stage per Exec.
func TestRegroupMatchesBuild(t *testing.T) {
	g := degGraph(t, 200)
	base, err := Build(g, smallConfig(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, gpn := range []int{1, 2, 3, 5} {
		full, err := Build(g, smallConfig(2, gpn))
		if err != nil {
			t.Fatal(err)
		}
		re := Regroup(base, gpn)
		if err := re.Validate(); err != nil {
			t.Fatalf("gpn=%d: regrouped hierarchy invalid: %v", gpn, err)
		}
		if len(re.Groups) != len(full.Groups) {
			t.Fatalf("gpn=%d: %d groups via Regroup, %d via Build", gpn, len(re.Groups), len(full.Groups))
		}
		for i := range full.Groups {
			if re.Groups[i] != full.Groups[i] {
				t.Errorf("gpn=%d: group %d = %+v via Regroup, %+v via Build",
					gpn, i, re.Groups[i], full.Groups[i])
			}
		}
		if re.Config.GroupsPerNode != gpn {
			t.Errorf("gpn=%d: Config.GroupsPerNode = %d", gpn, re.Config.GroupsPerNode)
		}
	}
	// Regroup must not mutate its input (Build at GroupsPerNode 0 emits one
	// group per node; those must survive untouched).
	if base.Config.GroupsPerNode != 0 || len(base.Groups) != len(base.Nodes) {
		t.Error("Regroup mutated the base hierarchy")
	}
}
